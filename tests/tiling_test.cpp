#include <gtest/gtest.h>

#include <set>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "transform/minimizer.h"
#include "transform/tiling.h"
#include "transform/unimodular.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(TiledOrder, IsAPermutationOfTheIterationSpace) {
  LoopNest nest = codes::example_2(6, 7);
  auto order = tiled_order(nest, IntMat::identity(2), {3, 4});
  EXPECT_EQ(static_cast<Int>(order.size()), nest.iteration_count());
  std::set<std::vector<Int>> seen;
  for (const auto& p : order) {
    EXPECT_TRUE(nest.bounds().contains(p));
    EXPECT_TRUE(seen.insert(p.data()).second) << "duplicate " << p.str();
  }
}

TEST(TiledOrder, FullTileEqualsLexOrder) {
  // One tile covering everything reproduces lexicographic order.
  LoopNest nest = codes::example_2(5, 5);
  auto order = tiled_order(nest, IntMat::identity(2), {100, 100});
  ASSERT_EQ(order.size(), 25u);
  EXPECT_EQ(order.front(), (IntVec{1, 1}));
  EXPECT_EQ(order.back(), (IntVec{5, 5}));
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_TRUE(order[i - 1].lex_less(order[i]));
  }
}

TEST(TiledOrder, UnitTilesAlsoLexOrder) {
  LoopNest nest = codes::example_2(4, 4);
  auto a = tiled_order(nest, IntMat::identity(2), {1, 1});
  auto b = tiled_order(nest, IntMat::identity(2), {100, 100});
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(TiledOrder, GroupsByTile) {
  // 4x4 space, 2x2 tiles: first four iterations are the top-left tile.
  
  LoopNest nest = codes::example_2(4, 4);
  auto order = tiled_order(nest, IntMat::identity(2), {2, 2});
  std::set<std::vector<Int>> first_tile(
      {{1, 1}, {1, 2}, {2, 1}, {2, 2}});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(first_tile.count(order[static_cast<size_t>(i)].data()))
        << order[static_cast<size_t>(i)].str();
  }
}

TEST(Tiling, PreservesDistinctAndAccessCounts) {
  LoopNest nest = codes::example_8();
  TraceStats plain = simulate(nest);
  TilingReport rep = analyze_tiling(nest, IntMat::identity(2), {5, 5});
  EXPECT_EQ(rep.stats.distinct_total, plain.distinct_total);
  EXPECT_EQ(rep.stats.total_accesses, plain.total_accesses);
  EXPECT_EQ(rep.stats.iterations, plain.iterations);
}

TEST(Tiling, ReportCountsTiles) {
  LoopNest nest = codes::example_2(6, 6);
  TilingReport rep = analyze_tiling(nest, IntMat::identity(2), {3, 3});
  EXPECT_EQ(rep.tiles, 4);
  EXPECT_EQ(rep.max_tile_iterations, 9);
  // Each 3x3 tile of A[i][j] = A[i-1][j+2] touches at most 18 elements.
  EXPECT_LE(rep.max_tile_footprint, 18);
  EXPECT_GE(rep.max_tile_footprint, 9);
}

TEST(Tiling, FootprintShrinksWithTileSize) {
  LoopNest nest = codes::kernel_matmult(8);
  TilingReport big = analyze_tiling(nest, IntMat::identity(3), {8, 8, 8});
  TilingReport small = analyze_tiling(nest, IntMat::identity(3), {2, 2, 2});
  EXPECT_GT(big.max_tile_footprint, small.max_tile_footprint);
  // A 2x2x2 matmult tile touches 3 blocks of 4 elements each.
  EXPECT_EQ(small.max_tile_footprint, 12);
}

TEST(Tiling, TileableTransformKeepsBlockedWindowSmall) {
  // Example 8 with its paper transformation: the tiled execution in the
  // transformed space must still beat the untiled original window.
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  auto deps = analyze_dependences(nest).distance_vectors(true);
  ASSERT_TRUE(is_tileable(res->transform, deps));
  TilingReport rep = analyze_tiling(nest, res->transform, {4, 4});
  EXPECT_LT(rep.mws_tiled, simulate(nest).mws_total);
}

TEST(Tiling, RejectsBadArguments) {
  LoopNest nest = codes::example_2(4, 4);
  EXPECT_THROW(analyze_tiling(nest, IntMat::identity(2), {2}), InvalidArgument);
  EXPECT_THROW(analyze_tiling(nest, IntMat::identity(2), {0, 2}), InvalidArgument);
  EXPECT_THROW(analyze_tiling(nest, IntMat{{2, 0}, {0, 1}}, {2, 2}), InvalidArgument);
}

TEST(Tiling, DepthThree) {
  LoopNest nest = codes::kernel_matmult(4);
  TilingReport rep = analyze_tiling(nest, IntMat::identity(3), {2, 4, 2});
  EXPECT_EQ(rep.tiles, 2 * 1 * 2);
  EXPECT_EQ(rep.stats.distinct_total, simulate(nest).distinct_total);
}

TEST(SimulateOrder, MatchesLexWhenOrderIsLex) {
  LoopNest nest = codes::example_2(5, 6);
  std::vector<IntVec> order;
  for (Int i = 1; i <= 5; ++i) {
    for (Int j = 1; j <= 6; ++j) order.push_back(IntVec{i, j});
  }
  TraceStats a = simulate(nest);
  TraceStats b = simulate_order(nest, order);
  EXPECT_EQ(a.mws_total, b.mws_total);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
}

TEST(SimulateOrder, RejectsOutOfBoundsIteration) {
  LoopNest nest = codes::example_2(3, 3);
  EXPECT_THROW(simulate_order(nest, {IntVec{0, 1}}), InvalidArgument);
}

}  // namespace
}  // namespace lmre
