#include <gtest/gtest.h>

#include "analysis/lifetime.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "transform/minimizer.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(OrdinalDistance, Basics) {
  IntBox box = IntBox::from_upper_bounds({10, 20, 30});
  EXPECT_EQ(ordinal_distance(IntVec{0, 0, 1}, box), 1);
  EXPECT_EQ(ordinal_distance(IntVec{0, 1, 0}, box), 30);
  EXPECT_EQ(ordinal_distance(IntVec{1, 0, 0}, box), 600);
  EXPECT_EQ(ordinal_distance(IntVec{1, 3, -3}, box), 600 + 90 - 3);
  // Lex-negative inputs are normalized.
  EXPECT_EQ(ordinal_distance(IntVec{-1, -3, 3}, box), 687);
}

TEST(OrdinalDistance, MatchesTraceOnChain) {
  // A[2i+5j+1] over 25x10: reuse step (5,-2), ordinal distance 5*10-2 = 48.
  LoopNest nest = codes::example_4();  // 20x10, reuse (5,-2): 5*10-2 = 48
  EXPECT_EQ(ordinal_distance(IntVec{5, -2}, nest.bounds()), 48);
}

TEST(Lifetime, ExactChainNest) {
  // for i in 1..6: A[i] = A[i-1]: element A[i] (1<=i<=5) lives exactly one
  // iteration.
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId a = b.array("A", {7});
  b.statement().write(a, {{1}}, {0}).read(a, {{1}}, {-1});
  LifetimeReport rep = lifetime_report(b.build());
  EXPECT_EQ(rep.total.elements, 7);
  EXPECT_EQ(rep.total.live_elements, 5);
  EXPECT_EQ(rep.total.max_lifetime, 1);
  EXPECT_EQ(rep.total.total_lifetime, 5);
}

TEST(Lifetime, FullyLiveArray) {
  // B[j] read on every i-row: lifetime (rows-1) * row length.
  NestBuilder b;
  b.loop("i", 1, 4).loop("j", 1, 5);
  ArrayId arr = b.array("B", {5});
  b.statement().read(arr, {{0, 1}}, {0});
  LifetimeReport rep = lifetime_report(b.build());
  EXPECT_EQ(rep.total.elements, 5);
  EXPECT_EQ(rep.total.max_lifetime, 3 * 5);  // first (1,j) .. last (4,j)
}

TEST(Lifetime, PerArraySplit) {
  LoopNest nest = codes::kernel_matmult(4);
  LifetimeReport rep = lifetime_report(nest);
  ASSERT_EQ(rep.per_array.size(), 3u);
  // B[k][j] spans nearly the whole execution; C's accumulation spans the k
  // loop only; lifetimes must reflect that ordering.
  EXPECT_GT(rep.per_array.at(2).max_lifetime, rep.per_array.at(0).max_lifetime);
}

TEST(Lifetime, TransformationShortensLifetimes) {
  // Example 8's optimal transformation makes reuses consecutive: maximum
  // lifetime collapses along with the window.
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  LifetimeReport before = lifetime_report(nest);
  LifetimeReport after = lifetime_report_transformed(nest, res->transform);
  EXPECT_LT(after.total.max_lifetime, before.total.max_lifetime);
  EXPECT_LT(after.total.total_lifetime, before.total.total_lifetime);
}

TEST(Lifetime, EstimateMatchesExactOnSingleRefKernel) {
  // Example 4: chain step (5,-2) with 2 hops possible? |5*2|=10 > 19? no:
  // (10,-4): |10|<=19, |-4|<=9 -> realizable; (15,-6): |15|<=19 ok, so 3
  // hops... verify against the measured max lifetime instead of hand
  // counting.
  LoopNest nest = codes::example_4();
  auto est = estimate_max_lifetime(nest, 0);
  ASSERT_TRUE(est.has_value());
  LifetimeReport rep = lifetime_report(nest);
  EXPECT_EQ(*est, rep.total.max_lifetime);
}

TEST(Lifetime, EstimateExample5) {
  LoopNest nest = codes::example_5();
  auto est = estimate_max_lifetime(nest, 0);
  ASSERT_TRUE(est.has_value());
  LifetimeReport rep = lifetime_report(nest);
  EXPECT_EQ(*est, rep.total.max_lifetime);
}

TEST(Lifetime, WindowCapHoldsOnExamples) {
  for (auto nest : {codes::example_1b(), codes::example_4(), codes::example_5(),
                    codes::example_7()}) {
    auto cap = lifetime_window_cap(nest, 0);
    ASSERT_TRUE(cap.has_value());
    EXPECT_LE(simulate(nest).mws_total, *cap);
  }
}

TEST(Lifetime, WindowCapNulloptWhenNotSingleRef) {
  EXPECT_FALSE(lifetime_window_cap(codes::example_8(), 0).has_value());
  EXPECT_FALSE(lifetime_window_cap(codes::example_3(), 0).has_value());
}

TEST(Lifetime, NonUniformGivesNullopt) {
  EXPECT_FALSE(estimate_max_lifetime(codes::example_6(), 0).has_value());
}

TEST(Lifetime, MeanLifetime) {
  LifetimeStats s;
  s.elements = 4;
  s.total_lifetime = 10;
  EXPECT_DOUBLE_EQ(s.mean_lifetime(), 2.5);
  LifetimeStats zero;
  EXPECT_DOUBLE_EQ(zero.mean_lifetime(), 0.0);
}

}  // namespace
}  // namespace lmre
