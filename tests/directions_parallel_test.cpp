#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "dependence/directions.h"
#include <algorithm>

#include "ir/builder.h"
#include "transform/minimizer.h"
#include "transform/parallel.h"
#include "transform/unimodular.h"
#include "support/error.h"

namespace lmre {
namespace {

ArrayRef ref1d(IntMat access, IntVec offset, AccessKind k = AccessKind::kRead) {
  return ArrayRef{0, k, std::move(access), std::move(offset)};
}

TEST(Directions, Strings) {
  EXPECT_EQ(direction_vector_string({Dir::kLt, Dir::kAny}), "(<, *)");
  EXPECT_EQ(direction_vector_string({Dir::kEq, Dir::kGt}), "(=, >)");
}

TEST(Directions, ConstantDistancePair) {
  // A[i][j] vs A[i-1][j+2]: the only dependence direction is (<, >).
  IntBox box = IntBox::from_upper_bounds({10, 10});
  ArrayRef w = ref1d(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}, AccessKind::kWrite);
  ArrayRef r = ref1d(IntMat{{1, 0}, {0, 1}}, IntVec{-1, 2});
  auto dirs = feasible_direction_vectors(w, r, box);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(direction_vector_string(dirs[0]), "(<, >)");
}

TEST(Directions, SelfPairIsAllEquals) {
  IntBox box = IntBox::from_upper_bounds({5, 5});
  ArrayRef a = ref1d(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0});
  auto dirs = feasible_direction_vectors(a, a, box);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(direction_vector_string(dirs[0]), "(=, =)");
}

TEST(Directions, KernelReusePairHasSymmetricDirections) {
  // A[2i+5j] vs itself: solutions along (5,-2) in both orientations plus
  // the trivial (=,=).
  IntBox box = IntBox::from_upper_bounds({20, 10});
  ArrayRef a = ref1d(IntMat{{2, 5}}, IntVec{0});
  auto dirs = feasible_direction_vectors(a, a, box);
  std::vector<std::string> strs;
  for (const auto& d : dirs) strs.push_back(direction_vector_string(d));
  EXPECT_NE(std::find(strs.begin(), strs.end(), "(=, =)"), strs.end());
  EXPECT_NE(std::find(strs.begin(), strs.end(), "(<, >)"), strs.end());
  EXPECT_NE(std::find(strs.begin(), strs.end(), "(>, <)"), strs.end());
  EXPECT_EQ(dirs.size(), 3u);
}

TEST(Directions, NonUniformPairRefinement) {
  // Example 6's pair: dependences exist in several directions; every
  // reported vector must individually satisfy the constrained test.
  IntBox box = IntBox::from_upper_bounds({20, 20});
  ArrayRef f1 = ref1d(IntMat{{3, 7}}, IntVec{-10});
  ArrayRef f2 = ref1d(IntMat{{4, -3}}, IntVec{60});
  auto dirs = feasible_direction_vectors(f1, f2, box);
  EXPECT_FALSE(dirs.empty());
  for (const auto& d : dirs) {
    EXPECT_TRUE(depends_with_directions(f1, f2, box, d))
        << direction_vector_string(d);
  }
}

TEST(Directions, InfeasibleConstraintRejected) {
  // The (1,-2)-distance pair admits no (=, *) dependence.
  IntBox box = IntBox::from_upper_bounds({10, 10});
  ArrayRef w = ref1d(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}, AccessKind::kWrite);
  ArrayRef r = ref1d(IntMat{{1, 0}, {0, 1}}, IntVec{-1, 2});
  EXPECT_FALSE(depends_with_directions(w, r, box, {Dir::kEq, Dir::kAny}));
  EXPECT_TRUE(depends_with_directions(w, r, box, {Dir::kLt, Dir::kAny}));
}

TEST(Parallel, StencilLevels) {
  // A[i][j] = A[i-1][j]: the dependence (1,0) is carried by i; j is
  // parallel.
  LoopNest nest = codes::kernel_two_point(8);
  auto par = parallel_loops(nest);
  ASSERT_EQ(par.size(), 2u);
  EXPECT_FALSE(par[0]);
  EXPECT_TRUE(par[1]);
  EXPECT_EQ(outer_parallel_depth(par), 0);
}

TEST(Parallel, InterchangeMovesParallelismOutward) {
  LoopNest nest = codes::kernel_two_point(8);
  auto par = parallel_loops_after(nest, interchange(2, 0, 1));
  EXPECT_TRUE(par[0]);   // j now outer, carries nothing
  EXPECT_FALSE(par[1]);  // i inner, carries (0,1)-transformed dependence
  EXPECT_EQ(outer_parallel_depth(par), 1);
}

TEST(Parallel, ReadOnlyNestFullyParallel) {
  LoopNest nest = codes::example_7();  // only an input dependence
  auto par = parallel_loops(nest);
  EXPECT_TRUE(par[0]);
  EXPECT_TRUE(par[1]);
  EXPECT_EQ(outer_parallel_depth(par), 2);
}

TEST(Parallel, WindowVsParallelismTradeoff) {
  // Example 8's window-optimal transform carries all reuse innermost: the
  // outer transformed loop becomes parallel while the inner serializes.
  LoopNest nest = codes::example_8();
  auto before = parallel_loops(nest);
  EXPECT_FALSE(before[0]);  // (3,-2),(2,0),(5,-2) all carried by i
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  auto after = parallel_loops_after(nest, res->transform);
  EXPECT_FALSE(after[1]);  // reuse now carried innermost
}

TEST(Parallel, IllegalTransformRejected) {
  LoopNest nest = codes::example_2();  // dependence (1,-2)
  EXPECT_THROW(parallel_loops_after(nest, interchange(2, 0, 1)), InvalidArgument);
}

TEST(Parallel, MatmultKLevelSerial) {
  LoopNest nest = codes::kernel_matmult(6);
  auto par = parallel_loops(nest);
  EXPECT_TRUE(par[0]);   // i
  EXPECT_TRUE(par[1]);   // j
  EXPECT_FALSE(par[2]);  // k carries the accumulation
  EXPECT_EQ(outer_parallel_depth(par), 2);
}

}  // namespace
}  // namespace lmre
