#include <gtest/gtest.h>

#include <algorithm>

#include "codes/examples.h"
#include "dependence/dependence.h"
#include "dependence/lattice.h"
#include "ir/builder.h"

namespace lmre {
namespace {

bool has_distance(const std::vector<IntVec>& ds, const IntVec& d) {
  return std::find(ds.begin(), ds.end(), d) != ds.end();
}

bool has_dep(const DependenceInfo& info, DepKind kind, const IntVec& d) {
  for (const auto& dep : info.deps) {
    if (dep.kind == kind && dep.distance == d) return true;
  }
  return false;
}

TEST(Lattice, RealizableSolutionsOfExample8Flow) {
  // 2x + 5y == -4 within a 25 x 10 box: (3,-2), (8,-4), ...
  IntBox box = IntBox::from_upper_bounds({25, 10});
  auto sols = realizable_solutions(IntMat{{2, 5}}, IntVec{-4}, box);
  EXPECT_TRUE(std::find(sols.begin(), sols.end(), IntVec{3, -2}) != sols.end());
  EXPECT_TRUE(std::find(sols.begin(), sols.end(), IntVec{8, -4}) != sols.end());
  for (const auto& s : sols) {
    EXPECT_EQ(2 * s[0] + 5 * s[1], -4);
    EXPECT_LE(checked_abs(s[0]), 24);
    EXPECT_LE(checked_abs(s[1]), 9);
  }
}

TEST(Lattice, LexminPositive) {
  IntBox box = IntBox::from_upper_bounds({25, 10});
  auto d = lexmin_positive_solution(IntMat{{2, 5}}, IntVec{-4}, box);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, (IntVec{3, -2}));
  d = lexmin_positive_solution(IntMat{{2, 5}}, IntVec{4}, box);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, (IntVec{2, 0}));
}

TEST(Lattice, UniqueSolutionCase) {
  // Identity access: A d == c has the unique solution c.
  IntBox box = IntBox::from_upper_bounds({10, 10});
  auto sols = realizable_solutions(IntMat{{1, 0}, {0, 1}}, IntVec{3, -2}, box);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], (IntVec{3, -2}));
  // Out of the realizable range: empty.
  EXPECT_TRUE(realizable_solutions(IntMat{{1, 0}, {0, 1}}, IntVec{10, 0}, box).empty());
}

TEST(Lattice, NoIntegerSolution) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  EXPECT_TRUE(realizable_solutions(IntMat{{2, 4}}, IntVec{3}, box).empty());
}

TEST(Dependence, Example8FullSet) {
  // Paper: distances (3,-2) flow, (2,0) anti, (5,-2) output.
  DependenceInfo info = analyze_dependences(codes::example_8());
  EXPECT_TRUE(has_dep(info, DepKind::kFlow, IntVec{3, -2}));
  EXPECT_TRUE(has_dep(info, DepKind::kAnti, IntVec{2, 0}));
  EXPECT_TRUE(has_dep(info, DepKind::kOutput, IntVec{5, -2}));
  EXPECT_TRUE(has_dep(info, DepKind::kInput, IntVec{5, -2}));
  // Distance vector sets.
  auto all = info.distance_vectors(true);
  EXPECT_EQ(all.size(), 3u);  // (5,-2) deduplicated across kinds
  EXPECT_TRUE(has_distance(all, IntVec{3, -2}));
  EXPECT_TRUE(has_distance(all, IntVec{2, 0}));
  EXPECT_TRUE(has_distance(all, IntVec{5, -2}));
  auto memory = info.distance_vectors(false);
  EXPECT_EQ(memory.size(), 3u);
}

TEST(Dependence, Example7SingleInputReuse) {
  DependenceInfo info = analyze_dependences(codes::example_7());
  ASSERT_EQ(info.deps.size(), 1u);
  EXPECT_EQ(info.deps[0].kind, DepKind::kInput);
  EXPECT_EQ(info.deps[0].distance, (IntVec{3, 2}));
  EXPECT_EQ(info.deps[0].level(), 1);
  // No memory dependences in a read-only nest.
  EXPECT_TRUE(info.distance_vectors(false).empty());
}

TEST(Dependence, Example2SingleFlow) {
  DependenceInfo info = analyze_dependences(codes::example_2());
  ASSERT_EQ(info.deps.size(), 1u);
  EXPECT_EQ(info.deps[0].kind, DepKind::kFlow);
  EXPECT_EQ(info.deps[0].distance, (IntVec{1, -2}));
}

TEST(Dependence, Example3InputLattice) {
  // Four reads; distances from S1 to the others: (1,0), (0,1), (1,1).
  DependenceInfo info = analyze_dependences(codes::example_3());
  auto ds = info.distance_vectors(true);
  EXPECT_TRUE(has_distance(ds, IntVec{1, 0}));
  EXPECT_TRUE(has_distance(ds, IntVec{0, 1}));
  EXPECT_TRUE(has_distance(ds, IntVec{1, 1}));
  // S2->S3 distance (1,-1) also exists in the pairwise set.
  EXPECT_TRUE(has_distance(ds, IntVec{1, -1}));
  for (const auto& dep : info.deps) EXPECT_EQ(dep.kind, DepKind::kInput);
}

TEST(Dependence, NonUniformFlagged) {
  DependenceInfo info = analyze_dependences(codes::example_6());
  ASSERT_EQ(info.nonuniform_arrays.size(), 1u);
  EXPECT_TRUE(info.has_nonuniform());
  EXPECT_TRUE(info.deps.empty());
}

TEST(Dependence, LevelsReported) {
  // A nest where the dependence is carried by the inner loop.
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId a = b.array("A", {10, 11});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {0, -1});  // A[i][j-1]
  DependenceInfo info = analyze_dependences(b.build());
  ASSERT_EQ(info.deps.size(), 1u);
  EXPECT_EQ(info.deps[0].distance, (IntVec{0, 1}));
  EXPECT_EQ(info.deps[0].level(), 2);
}

TEST(Dependence, ClassifyMatrix) {
  EXPECT_EQ(classify(AccessKind::kWrite, AccessKind::kRead), DepKind::kFlow);
  EXPECT_EQ(classify(AccessKind::kRead, AccessKind::kWrite), DepKind::kAnti);
  EXPECT_EQ(classify(AccessKind::kWrite, AccessKind::kWrite), DepKind::kOutput);
  EXPECT_EQ(classify(AccessKind::kRead, AccessKind::kRead), DepKind::kInput);
}

TEST(Dependence, UnrealizableDistanceExcluded) {
  // Offset difference larger than the iteration space: no dependence.
  NestBuilder b;
  b.loop("i", 1, 5).loop("j", 1, 5);
  ArrayId a = b.array("A", {30, 5});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-20, 0});  // A[i-20][j]: 20 > 4
  DependenceInfo info = analyze_dependences(b.build());
  EXPECT_TRUE(info.deps.empty());
}

TEST(Dependence, DistancesAreLexPositive) {
  for (auto nest : {codes::example_1a(), codes::example_3(), codes::example_8(),
                    codes::example_sec23()}) {
    DependenceInfo info = analyze_dependences(nest);
    for (const auto& d : info.deps) {
      EXPECT_TRUE(d.distance.lex_positive()) << d.distance.str();
    }
  }
}

TEST(Dependence, DirectionStrings) {
  EXPECT_EQ(direction_string(IntVec{3, -2}), "(<, >)");
  EXPECT_EQ(direction_string(IntVec{0, 1}), "(=, <)");
  EXPECT_EQ(direction_string(IntVec{1, 0, -3}), "(<, =, >)");
}

TEST(Dependence, SummaryRendersAllEdges) {
  DependenceInfo info = analyze_dependences(codes::example_8());
  std::string s = summarize_dependences(info);
  EXPECT_NE(s.find("flow (3, -2) (<, >) level 1"), std::string::npos);
  EXPECT_NE(s.find("anti (2, 0) (<, =) level 1"), std::string::npos);
  EXPECT_NE(s.find("output (5, -2)"), std::string::npos);
  std::string nu = summarize_dependences(analyze_dependences(codes::example_6()));
  EXPECT_NE(nu.find("non-uniformly generated"), std::string::npos);
}

TEST(Dependence, Sec23TwoArrays) {
  DependenceInfo info = analyze_dependences(codes::example_sec23());
  // X has offsets 2 and 3 with access (2,3): 2dx+3dy = +/-1 has solutions
  // like (2,-1) and (-1,1)->(1,-1); kernel (3,-2) output/input reuse.
  auto ds = info.distance_vectors(true);
  EXPECT_TRUE(has_distance(ds, IntVec{3, -2}));  // X kernel reuse
  EXPECT_TRUE(has_distance(ds, IntVec{1, -1}));  // Y pair: dx+dy = +/-1
  EXPECT_FALSE(info.has_nonuniform());
}

}  // namespace
}  // namespace lmre
