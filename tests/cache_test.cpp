#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "cachesim/cache.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "layout/spatial.h"
#include "runtime/cache.h"
#include "support/error.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(Cache, BasicHitAndMiss) {
  Cache c(CacheConfig{4, 1, 0});
  EXPECT_FALSE(c.access(10));  // cold
  EXPECT_TRUE(c.access(10));   // hit
  EXPECT_FALSE(c.access(11));
  EXPECT_TRUE(c.access(11));
  EXPECT_EQ(c.stats().accesses, 4);
  EXPECT_EQ(c.stats().hits, 2);
  EXPECT_EQ(c.stats().cold_misses, 2);
}

TEST(Cache, LruEviction) {
  Cache c(CacheConfig{2, 1, 0});  // fully associative, 2 lines
  c.access(1);
  c.access(2);
  c.access(3);                 // evicts 1
  EXPECT_FALSE(c.access(1));   // capacity miss
  EXPECT_TRUE(c.access(3));    // still resident
}

TEST(Cache, LineGranularity) {
  Cache c(CacheConfig{8, 4, 0});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(3));   // same line
  EXPECT_FALSE(c.access(4));  // next line
  EXPECT_TRUE(c.access(7));
}

TEST(Cache, SetMapping) {
  // 4 lines, 2-way: 2 sets; lines 0 and 2 share set 0.
  Cache c(CacheConfig{4, 1, 2});
  EXPECT_EQ(c.sets(), 2);
  EXPECT_EQ(c.ways(), 2);
  c.access(0);
  c.access(1);                // set 1
  c.access(2);
  c.access(4);                // set 0 again: evicts line 0
  EXPECT_FALSE(c.access(0));  // conflict miss in set 0
  EXPECT_TRUE(c.access(1));   // set 1 undisturbed
}

TEST(Cache, NegativeAddressesWork) {
  Cache c(CacheConfig{4, 2, 2});
  EXPECT_FALSE(c.access(-3));
  EXPECT_TRUE(c.access(-4));  // same line floor(-3/2) == floor(-4/2) == -2
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(Cache(CacheConfig{0, 1, 0}), InvalidArgument);
  EXPECT_THROW(Cache(CacheConfig{4, 0, 0}), InvalidArgument);
}

// ---- ResultCache disk-header hardening (runtime/cache.h) -------------------

// Writes a raw cache file for `key` under `dir` with exactly the given
// bytes, bypassing ResultCache::put.
void write_cache_file(const std::string& dir, std::uint64_t key,
                      const std::string& bytes) {
  std::filesystem::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.lmre",
                static_cast<unsigned long long>(key));
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(ResultCacheDisk, WellFormedHeaderRoundTrips) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_ok";
  std::filesystem::remove_all(dir);
  write_cache_file(dir, 1, "lmre-cache v1 status=3\n{\"x\":1}");
  ResultCache c(4, dir);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 3);
  EXPECT_EQ(entry->payload, "{\"x\":1}");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheDisk, RejectsCorruptHeadersAsMisses) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_bad";
  std::filesystem::remove_all(dir);
  // Each deviation from "lmre-cache v1 status=<int>" must read as a miss:
  // a permissive sscanf once accepted the trailing-garbage forms.
  const std::string bad[] = {
      "lmre-cache v1 status=0 trailing\n{}",   // bytes after the status
      "lmre-cache v1 status=0x10\n{}",         // non-decimal suffix
      "lmre-cache v1 status=\n{}",             // empty status
      "lmre-cache v1 status=abc\n{}",          // non-numeric status
      "lmre-cache v1 status=-2\n{}",           // negative status
      "lmre-cache v2 status=0\n{}",            // wrong version
      "lmre-cache v1\n{}",                     // missing field
      "LMRE-CACHE v1 status=0\n{}",            // wrong case
      "",                                      // empty file
  };
  std::uint64_t key = 10;
  for (const std::string& bytes : bad) {
    write_cache_file(dir, key, bytes);
    ResultCache c(4, dir);
    EXPECT_FALSE(c.get(key).has_value()) << "accepted: " << bytes;
    EXPECT_EQ(c.misses(), 1) << bytes;
    ++key;
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheDisk, PutProducesStrictlyParseableFiles) {
  // The writer and the hardened reader must agree on the format.
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_rt";
  std::filesystem::remove_all(dir);
  {
    ResultCache writer(4, dir);
    writer.put(42, {4, "payload with\nnewlines"});
  }
  ResultCache reader(4, dir);
  auto entry = reader.get(42);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 4);
  EXPECT_EQ(entry->payload, "payload with\nnewlines");
  EXPECT_EQ(reader.disk_hits(), 1);
  std::filesystem::remove_all(dir);
}

TEST(CacheSim, WindowSizedCacheCapturesAllReuse) {
  // Cache >= MWS (+ slack for the element/iteration granularity): every
  // non-cold access hits.
  LoopNest nest = codes::example_8();
  TraceStats t = simulate(nest);
  CacheConfig cfg{t.mws_total + 8, 1, 0};
  CacheStats s = simulate_cache(nest, default_layouts(nest), cfg);
  EXPECT_EQ(s.misses, s.cold_misses);
  EXPECT_EQ(s.cold_misses, t.distinct_total);
}

TEST(CacheSim, TinyCacheThrashes) {
  LoopNest nest = codes::example_8();
  CacheStats s = simulate_cache(nest, default_layouts(nest), CacheConfig{2, 1, 0});
  EXPECT_GT(s.misses, s.cold_misses);  // capacity misses appear
}

TEST(CacheSim, TransformRecoversHitsUnderSmallCache) {
  // With a cache smaller than the original window but larger than the
  // transformed one, the transformation turns capacity misses into hits.
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  CacheConfig cfg{30, 1, 0};  // between 21 (after) and 44 (before)
  auto layouts = default_layouts(nest);
  CacheStats before = simulate_cache(nest, layouts, cfg);
  CacheStats after = simulate_cache(nest, layouts, cfg, &res->transform);
  EXPECT_LT(after.misses, before.misses);
  EXPECT_EQ(after.misses, after.cold_misses);  // all reuse captured
}

TEST(CacheSim, ColdMissesEqualDistinctLines) {
  LoopNest nest = codes::kernel_two_point(12);
  auto layouts = default_layouts(nest);
  CacheConfig cfg{4096, 4, 0};
  CacheStats s = simulate_cache(nest, layouts, cfg);
  SpatialStats lines = simulate_lines(nest, layouts, 4);
  EXPECT_EQ(s.cold_misses, lines.distinct_lines);
}

TEST(CacheSim, ArraysDoNotShareLines) {
  // Two arrays whose touched regions would collide if packed naively; the
  // aligned bases keep their lines disjoint, so cold misses add up exactly.
  LoopNest nest = codes::kernel_matmult(4);
  auto layouts = default_layouts(nest);
  CacheStats s = simulate_cache(nest, layouts, CacheConfig{1024, 4, 0});
  SpatialStats lines = simulate_lines(nest, layouts, 4);
  EXPECT_EQ(s.cold_misses, lines.distinct_lines);
}

}  // namespace
}  // namespace lmre
