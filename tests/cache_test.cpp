#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "cachesim/cache.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "layout/spatial.h"
#include "runtime/cache.h"
#include "support/error.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(Cache, BasicHitAndMiss) {
  Cache c(CacheConfig{4, 1, 0});
  EXPECT_FALSE(c.access(10));  // cold
  EXPECT_TRUE(c.access(10));   // hit
  EXPECT_FALSE(c.access(11));
  EXPECT_TRUE(c.access(11));
  EXPECT_EQ(c.stats().accesses, 4);
  EXPECT_EQ(c.stats().hits, 2);
  EXPECT_EQ(c.stats().cold_misses, 2);
}

TEST(Cache, LruEviction) {
  Cache c(CacheConfig{2, 1, 0});  // fully associative, 2 lines
  c.access(1);
  c.access(2);
  c.access(3);                 // evicts 1
  EXPECT_FALSE(c.access(1));   // capacity miss
  EXPECT_TRUE(c.access(3));    // still resident
}

TEST(Cache, LineGranularity) {
  Cache c(CacheConfig{8, 4, 0});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(3));   // same line
  EXPECT_FALSE(c.access(4));  // next line
  EXPECT_TRUE(c.access(7));
}

TEST(Cache, SetMapping) {
  // 4 lines, 2-way: 2 sets; lines 0 and 2 share set 0.
  Cache c(CacheConfig{4, 1, 2});
  EXPECT_EQ(c.sets(), 2);
  EXPECT_EQ(c.ways(), 2);
  c.access(0);
  c.access(1);                // set 1
  c.access(2);
  c.access(4);                // set 0 again: evicts line 0
  EXPECT_FALSE(c.access(0));  // conflict miss in set 0
  EXPECT_TRUE(c.access(1));   // set 1 undisturbed
}

TEST(Cache, NegativeAddressesWork) {
  Cache c(CacheConfig{4, 2, 2});
  EXPECT_FALSE(c.access(-3));
  EXPECT_TRUE(c.access(-4));  // same line floor(-3/2) == floor(-4/2) == -2
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(Cache(CacheConfig{0, 1, 0}), InvalidArgument);
  EXPECT_THROW(Cache(CacheConfig{4, 0, 0}), InvalidArgument);
}

// ---- ResultCache disk-header hardening (runtime/cache.h) -------------------

// Writes a raw cache file for `key` under `dir` with exactly the given
// bytes, bypassing ResultCache::put.
void write_cache_file(const std::string& dir, std::uint64_t key,
                      const std::string& bytes) {
  std::filesystem::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.lmre",
                static_cast<unsigned long long>(key));
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(ResultCacheDisk, WellFormedHeaderRoundTrips) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_ok";
  std::filesystem::remove_all(dir);
  write_cache_file(dir, 1, "lmre-cache v1 status=3\n{\"x\":1}");
  ResultCache c(4, dir);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 3);
  EXPECT_EQ(entry->payload, "{\"x\":1}");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheDisk, RejectsCorruptHeadersAsMisses) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_bad";
  std::filesystem::remove_all(dir);
  // Each deviation from "lmre-cache v1 status=<int>" must read as a miss:
  // a permissive sscanf once accepted the trailing-garbage forms.
  const std::string bad[] = {
      "lmre-cache v1 status=0 trailing\n{}",   // bytes after the status
      "lmre-cache v1 status=0x10\n{}",         // non-decimal suffix
      "lmre-cache v1 status=\n{}",             // empty status
      "lmre-cache v1 status=abc\n{}",          // non-numeric status
      "lmre-cache v1 status=-2\n{}",           // negative status
      "lmre-cache v2 status=0\n{}",            // wrong version
      "lmre-cache v1\n{}",                     // missing field
      "LMRE-CACHE v1 status=0\n{}",            // wrong case
      "",                                      // empty file
  };
  std::uint64_t key = 10;
  for (const std::string& bytes : bad) {
    write_cache_file(dir, key, bytes);
    ResultCache c(4, dir);
    EXPECT_FALSE(c.get(key).has_value()) << "accepted: " << bytes;
    EXPECT_EQ(c.misses(), 1) << bytes;
    ++key;
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheDisk, PutProducesStrictlyParseableFiles) {
  // The writer and the hardened reader must agree on the format.
  const std::string dir = ::testing::TempDir() + "lmre_cache_header_rt";
  std::filesystem::remove_all(dir);
  {
    ResultCache writer(4, dir);
    writer.put(42, {4, "payload with\nnewlines"});
  }
  ResultCache reader(4, dir);
  auto entry = reader.get(42);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 4);
  EXPECT_EQ(entry->payload, "payload with\nnewlines");
  EXPECT_EQ(reader.disk_hits(), 1);
  std::filesystem::remove_all(dir);
}

// ---- ResultCache residency policy (shards / TTL / byte budget) -------------

std::string payload_of(size_t bytes) { return std::string(bytes, 'p'); }

TEST(ResultCachePolicy, CompatCtorIsSingleShardWithNoExpiry) {
  ResultCache c(8);
  EXPECT_EQ(c.shard_count(), 1u);
  EXPECT_EQ(c.config().capacity, 8u);
  EXPECT_DOUBLE_EQ(c.config().ttl_seconds, 0.0);
  EXPECT_EQ(c.config().byte_budget, 0u);
}

TEST(ResultCachePolicy, ShardCountRoundsUpToPowerOfTwoAndClamps) {
  ResultCacheConfig cfg;
  cfg.shards = 6;
  EXPECT_EQ(ResultCache(cfg).shard_count(), 8u);
  cfg.shards = 0;
  EXPECT_EQ(ResultCache(cfg).shard_count(), 1u);
  cfg.shards = 1000;
  EXPECT_EQ(ResultCache(cfg).shard_count(), 256u);
}

TEST(ResultCachePolicy, ShardsPartitionKeysByLowBits) {
  ResultCacheConfig cfg;
  cfg.capacity = 64;
  cfg.shards = 4;
  ResultCache c(cfg);
  for (std::uint64_t key = 0; key < 64; ++key) {
    c.put(key, {0, payload_of(8)});
  }
  // Sequential keys land round-robin on the 4 shards: 16 entries each, no
  // shard over its 16-entry slice, nothing evicted.
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(c.evictions(), 0);
  EXPECT_EQ(c.shard_entries_max(), 16u);
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_TRUE(c.get(key).has_value()) << "key " << key;
  }
}

TEST(ResultCachePolicy, PerShardCapacityEvictsLruWithinTheShard) {
  ResultCacheConfig cfg;
  cfg.capacity = 4;  // 2 shards x 2 entries
  cfg.shards = 2;
  ResultCache c(cfg);
  // Keys 0,2,4 all hash to shard 0 (low bit clear): the third insert
  // evicts that shard's LRU tail even though the cache as a whole has
  // room elsewhere.
  c.put(0, {0, "a"});
  c.put(2, {0, "b"});
  c.put(4, {0, "c"});
  EXPECT_EQ(c.evictions(), 1);
  EXPECT_FALSE(c.get(0).has_value());  // shard-0 LRU victim
  EXPECT_TRUE(c.get(2).has_value());
  EXPECT_TRUE(c.get(4).has_value());
}

TEST(ResultCachePolicy, ByteBudgetEvictsOldestAndRejectsOversized) {
  ResultCacheConfig cfg;
  cfg.capacity = 100;
  cfg.byte_budget = 100;
  ResultCache c(cfg);
  c.put(1, {0, payload_of(60)});
  EXPECT_EQ(c.bytes(), 60u);
  c.put(2, {0, payload_of(60)});  // 120 > 100: LRU key 1 is evicted
  EXPECT_EQ(c.bytes(), 60u);
  EXPECT_EQ(c.evictions(), 1);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_TRUE(c.get(2).has_value());
  // An entry larger than the whole budget is refused outright rather than
  // flushing everything for nothing.
  c.put(3, {0, payload_of(150)});
  EXPECT_EQ(c.admission_rejects(), 1);
  EXPECT_FALSE(c.get(3).has_value());
  EXPECT_TRUE(c.get(2).has_value());  // resident set untouched
}

TEST(ResultCachePolicy, TtlExpiresMemoryAndDiskEntries) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_ttl";
  std::filesystem::remove_all(dir);
  ResultCacheConfig cfg;
  cfg.disk_dir = dir;
  cfg.ttl_seconds = 0.05;
  ResultCache c(cfg);
  c.put(7, {0, "fresh"});
  ASSERT_TRUE(c.get(7).has_value());  // within the TTL
  EXPECT_EQ(c.expired(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Past the TTL both layers refuse: the resident entry is dropped and
  // the disk file (expired by mtime) is removed, so this is a true miss.
  EXPECT_FALSE(c.get(7).has_value());
  EXPECT_GE(c.expired(), 1);
  EXPECT_EQ(c.misses(), 1);
  EXPECT_EQ(c.size(), 0u);
  ResultCache fresh_reader(ResultCacheConfig{4, dir});
  EXPECT_FALSE(fresh_reader.get(7).has_value()) << "expired disk file survived";
  std::filesystem::remove_all(dir);
}

TEST(ResultCachePolicy, RefreshingAKeyReplacesBytesExactly) {
  ResultCacheConfig cfg;
  cfg.capacity = 4;
  cfg.byte_budget = 1000;
  ResultCache c(cfg);
  c.put(9, {0, payload_of(100)});
  c.put(9, {0, payload_of(40)});  // refresh with a smaller payload
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.bytes(), 40u);
  auto entry = c.get(9);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->payload.size(), 40u);
}

TEST(CacheSim, WindowSizedCacheCapturesAllReuse) {
  // Cache >= MWS (+ slack for the element/iteration granularity): every
  // non-cold access hits.
  LoopNest nest = codes::example_8();
  TraceStats t = simulate(nest);
  CacheConfig cfg{t.mws_total + 8, 1, 0};
  CacheStats s = simulate_cache(nest, default_layouts(nest), cfg);
  EXPECT_EQ(s.misses, s.cold_misses);
  EXPECT_EQ(s.cold_misses, t.distinct_total);
}

TEST(CacheSim, TinyCacheThrashes) {
  LoopNest nest = codes::example_8();
  CacheStats s = simulate_cache(nest, default_layouts(nest), CacheConfig{2, 1, 0});
  EXPECT_GT(s.misses, s.cold_misses);  // capacity misses appear
}

TEST(CacheSim, TransformRecoversHitsUnderSmallCache) {
  // With a cache smaller than the original window but larger than the
  // transformed one, the transformation turns capacity misses into hits.
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  CacheConfig cfg{30, 1, 0};  // between 21 (after) and 44 (before)
  auto layouts = default_layouts(nest);
  CacheStats before = simulate_cache(nest, layouts, cfg);
  CacheStats after = simulate_cache(nest, layouts, cfg, &res->transform);
  EXPECT_LT(after.misses, before.misses);
  EXPECT_EQ(after.misses, after.cold_misses);  // all reuse captured
}

TEST(CacheSim, ColdMissesEqualDistinctLines) {
  LoopNest nest = codes::kernel_two_point(12);
  auto layouts = default_layouts(nest);
  CacheConfig cfg{4096, 4, 0};
  CacheStats s = simulate_cache(nest, layouts, cfg);
  SpatialStats lines = simulate_lines(nest, layouts, 4);
  EXPECT_EQ(s.cold_misses, lines.distinct_lines);
}

TEST(CacheSim, ArraysDoNotShareLines) {
  // Two arrays whose touched regions would collide if packed naively; the
  // aligned bases keep their lines disjoint, so cold misses add up exactly.
  LoopNest nest = codes::kernel_matmult(4);
  auto layouts = default_layouts(nest);
  CacheStats s = simulate_cache(nest, layouts, CacheConfig{1024, 4, 0});
  SpatialStats lines = simulate_lines(nest, layouts, 4);
  EXPECT_EQ(s.cold_misses, lines.distinct_lines);
}

}  // namespace
}  // namespace lmre
