#include <gtest/gtest.h>

#include <random>

#include "linalg/completion.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Completion, SingleRowBasic) {
  IntMat m = complete_row_to_unimodular(IntVec{2, 5});
  ASSERT_TRUE(m.is_unimodular());
  EXPECT_EQ(m.row(0), (IntVec{2, 5}));
}

TEST(Completion, SingleRowNegativeEntries) {
  IntMat m = complete_row_to_unimodular(IntVec{2, -3});
  ASSERT_TRUE(m.is_unimodular());
  EXPECT_EQ(m.row(0), (IntVec{2, -3}));
}

TEST(Completion, SingleRowLonger) {
  IntMat m = complete_row_to_unimodular(IntVec{3, 5, 7});
  ASSERT_TRUE(m.is_unimodular());
  EXPECT_EQ(m.row(0), (IntVec{3, 5, 7}));
}

TEST(Completion, RejectsNonPrimitiveRow) {
  EXPECT_THROW(complete_row_to_unimodular(IntVec{2, 4}), InvalidArgument);
  EXPECT_THROW(complete_row_to_unimodular(IntVec{0, 0}), InvalidArgument);
}

TEST(Completion, Example10AccessMatrix) {
  // Section 4.3: T's first two rows must equal the data reference matrix.
  IntMat access{{3, 0, 1}, {0, 1, 1}};
  auto m = complete_rows_to_unimodular(access);
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(m->is_unimodular());
  EXPECT_EQ(m->row(0), (IntVec{3, 0, 1}));
  EXPECT_EQ(m->row(1), (IntVec{0, 1, 1}));
}

TEST(Completion, NonPrimitiveLatticeReturnsNullopt) {
  // Rows generate an index-2 sublattice: no unimodular extension exists.
  EXPECT_FALSE(complete_rows_to_unimodular(IntMat{{2, 0}, {0, 2}}).has_value());
  EXPECT_FALSE(complete_rows_to_unimodular(IntMat{{2, 0, 0}}).has_value());
}

TEST(Completion, FullRankSquareIsItself) {
  IntMat t{{2, 3}, {1, 1}};
  auto m = complete_rows_to_unimodular(t);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, t);
}

TEST(Completion, RandomizedPrimitiveRows) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<Int> dist(-7, 7);
  int done = 0;
  for (int iter = 0; iter < 200 && done < 60; ++iter) {
    size_t n = 2 + iter % 3;
    IntVec row(n);
    for (size_t i = 0; i < n; ++i) row[i] = dist(rng);
    if (row.is_zero() || row.content() != 1) continue;
    ++done;
    IntMat m = complete_row_to_unimodular(row);
    ASSERT_TRUE(m.is_unimodular());
    EXPECT_EQ(m.row(0), row);
  }
  EXPECT_GE(done, 40);
}

TEST(Completion, RandomizedTwoRowBlocks) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<Int> dist(-5, 5);
  int completed = 0;
  for (int iter = 0; iter < 200; ++iter) {
    IntMat rows(2, 3);
    for (size_t r = 0; r < 2; ++r)
      for (size_t c = 0; c < 3; ++c) rows(r, c) = dist(rng);
    auto m = complete_rows_to_unimodular(rows);
    if (!m) continue;  // not extendable; fine
    ++completed;
    ASSERT_TRUE(m->is_unimodular());
    for (size_t r = 0; r < 2; ++r) EXPECT_EQ(m->row(r), rows.row(r));
  }
  EXPECT_GT(completed, 50);  // most random primitive pairs extend
}

}  // namespace
}  // namespace lmre
