// Compile-and-smoke test for the public facade: everything a downstream
// user needs -- parse, analyze, verify, codegen, session, wire -- must be
// reachable through api/lmre.h alone, with no internal headers leaking in.

#include <gtest/gtest.h>

#include "api/lmre.h"

namespace lmre {
namespace {

const char* kFir =
    "array X[528]; array Y[512];\n"
    "for i = 1 to 512\n"
    "  for j = 1 to 16\n"
    "    Y[i] = X[i + j];\n";

TEST(ApiFacade, EndToEndThroughOneHeader) {
  LoopNest nest = parse_nest(kFir);
  TraceStats stats = simulate(nest);
  EXPECT_GT(stats.mws_total, 0);

  // Identity-order lowering through the facade's codegen surface.
  CodegenResult cg = emit_c(nest, VerifyPlan{});
  EXPECT_FALSE(cg.c_source.empty());
  EXPECT_EQ(cg.mws_total, stats.mws_total);
  EXPECT_LT(cg.footprint_ratio(), 1.0);

  // Typed request through the session, kind registry included.
  AnalysisSession session;
  AnalysisRequest req{kFir, "<facade>",
                      AnalysisRequest::Codegen{"", false, ""}};
  EXPECT_EQ(req.kind(), AnalysisRequest::Kind::kCodegen);
  AnalysisResult res = session.run(req);
  EXPECT_EQ(res.status, ExitCode::kSuccess);
  EXPECT_EQ(kind_from_string("codegen"), AnalysisRequest::Kind::kCodegen);

  // Wire parsing is part of the promised surface.
  ServerRequest sreq;
  std::string error;
  EXPECT_TRUE(parse_request(
      R"({"schema_version": 2, "kind": "lint", "source": "x"})", &sreq,
      &error))
      << error;
}

}  // namespace
}  // namespace lmre
