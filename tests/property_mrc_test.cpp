// Property suite for the MRC subsystem (src/mrc) and the dense-engine
// stack-distance port (src/exact/stack_distance.h): on ~200 random 2-/3-
// deep nests (fixed seeds, failures reproduce),
//   (a) histogram totals equal the oracle's access counts and cold misses
//       equal its distinct-element counts,
//   (b) the miss curve is monotone non-increasing in capacity and reaches
//       the cold-miss floor at the knee,
//   (c) the sampled curve stays within the declared error bound of the
//       exact one at rates 0.1 and 0.01,
//   (d) results are byte-identical across arena reuse, thread counts, and
//       cold vs warm session caches,
// and the dense Fenwick stack-distance path reproduces the retained
// MRU-list reference engine bin for bin, in original and transformed order.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "exact/oracle.h"
#include "exact/stack_distance.h"
#include "exact/trace_engine.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "mrc/mrc.h"
#include "runtime/session.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xD15EA5E + seed); }

// Same nest generators as property_oracle_test: a write/read pair plus a
// reduction-style target (2-deep), a skewed affine access (3-deep).
LoopNest random_nest2(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 11), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 6, n2 + 6});
  ArrayId s = b.array("S", {n1 + n2 + 10});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3})
      .read(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3});
  b.statement().write(s, IntMat{{1, 1}}, IntVec{3}).read(s, IntMat{{1, 1}},
                                                         {off(rng) + 3});
  return b.build();
}

LoopNest random_nest3(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 7), coef(0, 2), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng), n3 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2).loop("k", 1, n3);
  ArrayId a = b.array("A", {60, 60});
  ArrayId s = b.array("S", {40});
  Int c1 = coef(rng), c2 = coef(rng) + 1;
  b.statement().read(a, IntMat{{1, 0, c1}, {0, 1, c2}},
                     {off(rng) + 5, off(rng) + 5});
  b.statement().write(s, IntMat{{1, 1, 0}}, IntVec{4});
  return b.build();
}

std::vector<IntMat> transforms_for(size_t depth) {
  if (depth == 2) {
    return {IntMat::identity(2), IntMat{{0, 1}, {1, 0}}, IntMat{{-1, 0}, {0, 1}},
            IntMat{{1, 1}, {0, 1}}};
  }
  if (depth == 3) {
    return {IntMat::identity(3), IntMat{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}},
            IntMat{{1, 0, 0}, {1, 1, 0}, {0, 0, 1}}};
  }
  return {IntMat::identity(depth)};
}

void expect_profile_eq(const StackDistanceProfile& got,
                       const StackDistanceProfile& want,
                       const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(got.cold_accesses, want.cold_accesses);
  EXPECT_EQ(got.total_accesses, want.total_accesses);
  EXPECT_EQ(got.histogram, want.histogram);
}

// (a) + (b) + dense-vs-reference differential on one nest.
void check_exact_properties(const LoopNest& nest, const std::string& what) {
  SCOPED_TRACE(what);
  TraceStats oracle = simulate(nest);
  MrcResult m = compute_mrc(nest);

  // (a) totals: every access lands in exactly one bin or the cold count,
  // and in exact mode cold misses ARE the oracle's distinct elements.
  EXPECT_EQ(static_cast<Int>(m.aggregate.total), oracle.total_accesses);
  EXPECT_EQ(static_cast<Int>(m.aggregate.cold), oracle.distinct_total);
  double binned = 0;
  for (const auto& [d, w] : m.aggregate.bins) {
    EXPECT_GE(d, 1);
    binned += w;
  }
  EXPECT_DOUBLE_EQ(binned + m.aggregate.cold, m.aggregate.total);
  double array_total = 0, array_cold = 0;
  for (const MrcArrayCurve& a : m.arrays) {
    array_total += a.hist.total;
    array_cold += a.hist.cold;
  }
  EXPECT_DOUBLE_EQ(array_total, m.aggregate.total);
  EXPECT_DOUBLE_EQ(array_cold, m.aggregate.cold);
  EXPECT_EQ(m.error_bound, 0.0);
  EXPECT_EQ(m.knee, m.aggregate.max_distance());

  // (b) monotone non-increasing curve reaching the cold floor at the knee;
  // the histogram's misses and the profile's lru_misses agree in exact mode.
  StackDistanceProfile profile = stack_distances(nest);
  expect_profile_eq(profile, stack_distances_reference(nest), "vs reference");
  double prev = m.aggregate.misses(0);
  for (Int c = 0; c <= m.knee + 2; ++c) {
    double misses = m.aggregate.misses(c);
    EXPECT_LE(misses, prev) << "capacity " << c;
    EXPECT_EQ(static_cast<Int>(misses), profile.lru_misses(c))
        << "capacity " << c;
    prev = misses;
  }
  EXPECT_DOUBLE_EQ(m.aggregate.misses(m.knee), m.aggregate.cold);
  EXPECT_EQ(profile.lru_misses(oracle.distinct_total), profile.cold_accesses);

  // Dense engine == MRU-list reference under every transform.
  for (const IntMat& t : transforms_for(nest.depth())) {
    expect_profile_eq(stack_distances(nest, &t),
                      stack_distances_reference(nest, &t), "t=" + t.str());
  }
}

// (c) the sampled curve honors the declared error bound against the exact
// curve at every capacity on the default sweep, under the contract metric
// (mrc_curve_error: vertical error after the capacity axis flexes by the
// sampling jitter -- see DESIGN.md §14).  Ratios themselves always stay in
// [0, 1] thanks to the misses() clamp, so the raw pointwise gap never
// exceeds 1 either.
void check_sampled_error(const LoopNest& nest, double rate,
                         const std::string& what) {
  SCOPED_TRACE(what + " rate=" + std::to_string(rate));
  MrcResult exact = compute_mrc(nest);
  MrcOptions opts;
  opts.sample_rate = rate;
  MrcResult sampled = compute_mrc(nest, opts);
  EXPECT_EQ(sampled.sample_rate, rate);
  EXPECT_GT(sampled.error_bound, 0.0);
  EXPECT_LE(sampled.error_bound, 1.0);
  // Totals stay exact regardless of the sample.
  EXPECT_DOUBLE_EQ(sampled.aggregate.total, exact.aggregate.total);
  std::vector<Int> caps = default_mrc_capacities(exact);
  caps.push_back(0);
  for (Int c : caps) {
    EXPECT_LE(mrc_curve_error(sampled, exact, c), sampled.error_bound)
        << "capacity " << c;
    EXPECT_GE(sampled.aggregate.miss_ratio(c), 0.0) << "capacity " << c;
    EXPECT_LE(sampled.aggregate.miss_ratio(c), 1.0) << "capacity " << c;
  }
}

// (d) determinism: same inputs, same bytes -- fresh arena vs reused arena,
// and repeated sampled runs with one seed.
void check_determinism(const LoopNest& nest, TraceArena& shared,
                       const std::string& what) {
  SCOPED_TRACE(what);
  MrcOptions opts;
  std::vector<Int> caps = default_mrc_capacities(compute_mrc(nest));
  const std::string fresh = mrc_json(compute_mrc(nest), caps).dump();
  const std::string warm = mrc_json(compute_mrc(nest, opts, shared), caps).dump();
  EXPECT_EQ(fresh, warm);
  opts.sample_rate = 0.1;
  const std::string s1 = mrc_json(compute_mrc(nest, opts, shared), caps).dump();
  const std::string s2 = mrc_json(compute_mrc(nest, opts, shared), caps).dump();
  EXPECT_EQ(s1, s2);
}

class MrcProperty : public ::testing::TestWithParam<int> {};

TEST_P(MrcProperty, ExactHistogramAndCurve2Deep) {
  auto rng = rng_for(GetParam());
  check_exact_properties(random_nest2(rng),
                         "seed " + std::to_string(GetParam()));
}

TEST_P(MrcProperty, ExactHistogramAndCurve3Deep) {
  auto rng = rng_for(1000 + GetParam());
  check_exact_properties(random_nest3(rng),
                         "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrcProperty, ::testing::Range(0, 100));

// The sampled/determinism sweeps run on fewer seeds (they recompute the
// exact curve as the baseline), still fixed and reproducible.
class MrcSampledProperty : public ::testing::TestWithParam<int> {};

TEST_P(MrcSampledProperty, SampledWithinDeclaredBound) {
  auto rng = rng_for(2000 + GetParam());
  LoopNest nest = GetParam() % 2 == 0 ? random_nest2(rng) : random_nest3(rng);
  const std::string what = "seed " + std::to_string(GetParam());
  check_sampled_error(nest, 0.1, what);
  check_sampled_error(nest, 0.01, what);
}

TEST_P(MrcSampledProperty, DeterministicAcrossArenaReuse) {
  auto rng = rng_for(3000 + GetParam());
  TraceArena shared;
  LoopNest nest = GetParam() % 2 == 0 ? random_nest2(rng) : random_nest3(rng);
  check_determinism(nest, shared, "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrcSampledProperty, ::testing::Range(0, 25));

// (d) at the session level: the "mrc" payload is byte-identical at 1 vs N
// threads and cold vs warm cache (the determinism contract the cache key
// deliberately excludes threads from).
TEST(MrcSession, PayloadByteIdenticalAcrossThreadsAndCache) {
  const char* source =
      "# paper example 8\n"
      "array X[106];\n"
      "for i = 1 to 25\n  for j = 1 to 10\n"
      "    X[2*i + 5*j + 1] = X[2*i + 5*j + 5];\n";
  AnalysisRequest::Mrc mopt;
  mopt.capacities = {0, 1, 8, 44, 106};
  AnalysisRequest req{source, "x.loop", mopt};

  AnalysisSession serial;
  AnalysisResult cold = serial.run(req);
  AnalysisResult warm = serial.run(req);
  EXPECT_EQ(cold.status, ExitCode::kSuccess);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.payload, warm.payload);

  SessionOptions threaded_opts;
  threaded_opts.run.threads = 4;
  AnalysisSession threaded(threaded_opts);
  AnalysisResult parallel = threaded.run(req);
  EXPECT_FALSE(parallel.cache_hit);
  EXPECT_EQ(parallel.payload, cold.payload);
  EXPECT_EQ(serial.request_key(req), threaded.request_key(req));
}

// The "mrc" kind rides run_batch like every other kind: results line up
// with the request order and match serial one-at-a-time runs byte for byte.
TEST(MrcSession, BatchFanOutMatchesSerialRuns) {
  const char* fir =
      "array y[40];\narray x[48];\narray h[8];\n"
      "for i = 1 to 40\n  for k = 1 to 8\n"
      "    y[i] = y[i] + x[i + k] + h[k];\n";
  const char* ex8 =
      "array X[106];\n"
      "for i = 1 to 25\n  for j = 1 to 10\n"
      "    X[2*i + 5*j + 1] = X[2*i + 5*j + 5];\n";
  AnalysisRequest::Mrc sampled;
  sampled.sample_rate = 0.25;
  std::vector<AnalysisRequest> requests = {
      {fir, "fir.loop", AnalysisRequest::Mrc{}},
      {ex8, "ex8.loop", sampled},
      {fir, "fir2.loop", AnalysisRequest::Mrc{}},  // same content as [0]
  };
  SessionOptions opts;
  opts.run.threads = 0;  // all cores
  AnalysisSession batch(opts);
  std::vector<AnalysisResult> results = batch.run_batch(requests);
  ASSERT_EQ(results.size(), requests.size());

  AnalysisSession serial;
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(results[i].status, ExitCode::kSuccess) << i;
    EXPECT_EQ(results[i].payload, serial.run(requests[i]).payload) << i;
  }
  EXPECT_EQ(results[0].payload, results[2].payload);  // one cache entry
}

// Sampling options are part of the result, so they must be part of the key.
TEST(MrcSession, SampleRateAndCapacitiesSaltTheCacheKey) {
  const char* source =
      "array X[106];\n"
      "for i = 1 to 25\n  for j = 1 to 10\n"
      "    X[2*i + 5*j + 1] = X[2*i + 5*j + 5];\n";
  AnalysisSession s;
  AnalysisRequest exact{source, "x.loop", AnalysisRequest::Mrc{}};
  AnalysisRequest::Mrc sampled_opt;
  sampled_opt.sample_rate = 0.5;
  AnalysisRequest sampled{source, "x.loop", sampled_opt};
  AnalysisRequest::Mrc caps_opt;
  caps_opt.capacities = {1, 44};
  AnalysisRequest capped{source, "x.loop", caps_opt};
  AnalysisRequest::Mrc plan_opt;
  plan_opt.plan = "0 1; 1 0";
  AnalysisRequest planned{source, "x.loop", plan_opt};

  EXPECT_NE(s.request_key(exact), s.request_key(sampled));
  EXPECT_NE(s.request_key(exact), s.request_key(capped));
  EXPECT_NE(s.request_key(exact), s.request_key(planned));
  EXPECT_NE(s.request_key(sampled), s.request_key(capped));

  AnalysisResult a = s.run(exact);
  AnalysisResult b = s.run(sampled);
  EXPECT_EQ(a.status, ExitCode::kSuccess);
  EXPECT_EQ(b.status, ExitCode::kSuccess);
  EXPECT_NE(a.payload, b.payload);
}

// Input validation surfaces as typed error payloads, not exceptions.
TEST(MrcSession, RejectsBadRateCapacitiesAndTiledPlans) {
  const char* source =
      "array X[106];\n"
      "for i = 1 to 25\n  for j = 1 to 10\n"
      "    X[2*i + 5*j + 1] = X[2*i + 5*j + 5];\n";
  AnalysisSession s;
  AnalysisRequest::Mrc bad_rate;
  bad_rate.sample_rate = 1.5;
  AnalysisResult r1 = s.run({source, "x.loop", bad_rate});
  EXPECT_EQ(r1.status, ExitCode::kUsage);
  EXPECT_NE(r1.payload.find("bad_sample_rate"), std::string::npos);

  AnalysisRequest::Mrc bad_caps;
  bad_caps.capacities = {-1};
  AnalysisResult r2 = s.run({source, "x.loop", bad_caps});
  EXPECT_EQ(r2.status, ExitCode::kUsage);
  EXPECT_NE(r2.payload.find("bad_capacities"), std::string::npos);

  AnalysisRequest::Mrc tiled;
  tiled.plan = "0 1; 1 0 | tile:4,4";
  AnalysisResult r3 = s.run({source, "x.loop", tiled});
  EXPECT_EQ(r3.status, ExitCode::kUsage);
  EXPECT_NE(r3.payload.find("bad_plan"), std::string::npos);
}

// The miss-ratio objective: never worse than the identity order at the
// target capacity (the identity is always a candidate), and the optimize
// envelope names the objective.
TEST(MrcObjective, NeverWorseThanIdentityAndNamedInEnvelope) {
  const char* source =
      "# paper example 10\n"
      "array A[61][51];\n"
      "for i = 1 to 10\n  for j = 1 to 20\n    for k = 1 to 30\n"
      "      use A[3*i + k][j + k];\n";
  AnalysisRequest::Optimize oopt;
  oopt.objective = "miss-ratio:64";
  AnalysisSession s;
  AnalysisResult r = s.run({source, "x.loop", oopt});
  ASSERT_EQ(r.status, ExitCode::kSuccess);
  EXPECT_NE(r.payload.find("\"objective\":\"miss-ratio\""), std::string::npos);
  EXPECT_NE(r.payload.find("\"objective_capacity\":64"), std::string::npos);
  EXPECT_NE(r.payload.find("\"miss_ratio_before\""), std::string::npos);
  EXPECT_NE(r.payload.find("\"miss_ratio_after\""), std::string::npos);

  LoopNest nest = parse_nest(source);
  TraceArena arena;
  std::optional<MissRatioPlan> mr =
      optimize_miss_ratio(nest, 64, MinimizerOptions{}, arena);
  ASSERT_TRUE(mr.has_value());
  EXPECT_LE(mr->miss_ratio_after, mr->miss_ratio_before + 1e-12);
  EXPECT_GT(mr->candidates, 0);

  // The default objective still reports mws.
  AnalysisResult mws = s.run({source, "x.loop", AnalysisRequest::Kind::kOptimize});
  ASSERT_EQ(mws.status, ExitCode::kSuccess);
  EXPECT_NE(mws.payload.find("\"objective\":\"mws\""), std::string::npos);
  EXPECT_NE(mws.payload.find("\"objective_value\""), std::string::npos);
}

TEST(MrcObjective, ParserAcceptsAndRejects) {
  EXPECT_TRUE(parse_objective_spec(""));
  EXPECT_FALSE(parse_objective_spec("")->miss_ratio);
  EXPECT_TRUE(parse_objective_spec("mws"));
  auto mr = parse_objective_spec("miss-ratio:540");
  ASSERT_TRUE(mr);
  EXPECT_TRUE(mr->miss_ratio);
  EXPECT_EQ(mr->capacity, 540);
  EXPECT_FALSE(parse_objective_spec("miss-ratio:"));
  EXPECT_FALSE(parse_objective_spec("miss-ratio:-1"));
  EXPECT_FALSE(parse_objective_spec("miss-ratio:12x"));
  EXPECT_FALSE(parse_objective_spec("bogus"));
}

}  // namespace
}  // namespace lmre
