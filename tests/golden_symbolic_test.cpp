// Golden-file tests for `lmre analyze --symbolic --json`: the enveloped
// documents for the paper's Example 6 and Example 10 nests must match
// tests/golden/symbolic_example{6,10}.json byte for byte (after
// normalizing the probed source-root prefix out of diagnostic file
// names).  Example 10 pins the Section 3.2 / 4.3 closed forms verbatim
// (distinct = N1*N2*N3 - (N1-1)(N2-3)(N3-3), reuse 4131, the chain
// window evaluating to 540); Example 6 pins the decline contract for
// non-uniformly generated references (LMRE-E017, exit kDiagnostics)
// rather than a formula the paper never derives.  Regenerate with
// scripts/regen_golden.sh after an intentional schema change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
std::string source_root() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    if (!read_file(std::string(base) + "tests/golden/example10.loop").empty()) {
      return base;
    }
  }
  return "?";
}

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

// Runs `lmre analyze --symbolic --json` on tests/golden/<stem>.loop and
// compares against tests/golden/<golden>, normalizing the path prefix.
void check_golden(const std::string& stem, const std::string& golden_name,
                  ExitCode want_rc) {
  std::string root = source_root();
  if (root == "?") GTEST_SKIP() << "source tree not found from test cwd";
  std::string golden = read_file(root + "tests/golden/" + golden_name);
  ASSERT_FALSE(golden.empty()) << "tests/golden/" << golden_name << " missing";

  std::ostringstream out, err;
  ExitCode rc = run_cli(
      {"analyze", "--symbolic", "--json", root + "tests/golden/" + stem + ".loop"},
      out, err);
  EXPECT_EQ(rc, want_rc) << err.str();

  std::string normalized =
      replace_all(out.str(), root + "tests/golden/", "tests/golden/");
  EXPECT_EQ(normalized, golden)
      << "analyze --symbolic --json output drifted from the golden; if "
         "intentional, regenerate with scripts/regen_golden.sh";
}

TEST(GoldenSymbolic, Example10MatchesPaperFormulas) {
  check_golden("example10", "symbolic_example10.json", ExitCode::kSuccess);
}

TEST(GoldenSymbolic, Example6DeclinesNonUniform) {
  check_golden("example6", "symbolic_example6.json", ExitCode::kDiagnostics);
}

}  // namespace
}  // namespace lmre::tools
