#include <gtest/gtest.h>

#include <sstream>

#include "support/error.h"
#include "support/json.h"
#include "tools/commands.h"

namespace lmre {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(Int{-42}).dump(), "-42");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
}

TEST(Json, Escaping) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("line\nbreak\t"), "line\\nbreak\\t");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectCompact) {
  Json j = Json::object().set("b", Int{2}).set("a", "x");
  // std::map keeps keys sorted.
  EXPECT_EQ(j.dump(), "{\"a\":\"x\",\"b\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, ArrayCompact) {
  Json j = Json::array();
  j.push(Int{1}).push("two").push(Json::boolean(false));
  EXPECT_EQ(j.dump(), "[1,\"two\",false]");
}

TEST(Json, NestedIndented) {
  Json j = Json::object();
  j.set("list", Json::array().push(Int{1}).push(Int{2}));
  std::string s = j.dump(2);
  EXPECT_EQ(s,
            "{\n  \"list\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(2), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Int{1}), InvalidArgument);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(Int{1}), InvalidArgument);
}

TEST(Json, OverwriteKey) {
  Json j = Json::object().set("k", Int{1});
  j.set("k", Int{2});
  EXPECT_EQ(j.dump(), "{\"k\":2}");
}

TEST(Json, RawSplicesPreSerializedText) {
  // Json::raw lets the batch emitter embed an already-serialized cached
  // payload without reparsing; the text is emitted verbatim.
  Json j = Json::object().set("result", Json::raw("{\"mws\":21}"));
  EXPECT_EQ(j.dump(), "{\"result\":{\"mws\":21}}");
  Json arr = Json::array();
  arr.push(Json::raw("[1,2]")).push(Int{3});
  EXPECT_EQ(arr.dump(), "[[1,2],3]");
}

TEST(Json, EnvelopeShape) {
  Json env = json_envelope("analyze", Json::object().set("x", Int{1}));
  EXPECT_EQ(env.dump(),
            "{\"command\":\"analyze\",\"result\":{\"x\":1},"
            "\"schema_version\":2,\"tool\":\"lmre\"}");
}

TEST(CliJson, AnalyzeEmitsWellFormedDocument) {
  std::ostringstream out;
  ExitCode rc = tools::cmd_analyze_json(R"(
    for i = 1 to 25
      for j = 1 to 10
        X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
  )",
                                        out);
  EXPECT_EQ(rc, ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(s.find("\"tool\": \"lmre\""), std::string::npos);
  EXPECT_NE(s.find("\"mws_exact\": 44"), std::string::npos);
  EXPECT_NE(s.find("\"distinct_exact\": 94"), std::string::npos);
  EXPECT_NE(s.find("\"kind\": \"flow\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(CliJson, OptimizeEmitsTransform) {
  std::ostringstream out;
  ExitCode rc = tools::cmd_optimize_json(R"(
    for i = 1 to 25
      for j = 1 to 10
        X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
  )",
                                         out);
  EXPECT_EQ(rc, ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("\"method\": \"row-minimizer\""), std::string::npos);
  EXPECT_NE(s.find("\"mws_before\": 44"), std::string::npos);
  EXPECT_NE(s.find("\"mws_after\": 21"), std::string::npos);
}

TEST(CliJson, DispatcherFlag) {
  std::ostringstream out, err;
  // Write a temp file through stdin-less path: use '-' is awkward in tests;
  // rely on the unreadable-file path keeping exit codes sane instead.
  EXPECT_EQ(tools::run_cli({"analyze", "--json"}, out, err), ExitCode::kUsage);
}

}  // namespace
}  // namespace lmre
