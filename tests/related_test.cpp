#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "exact/oracle.h"
#include "related/ferrante.h"
#include "related/li_pingali.h"
#include "related/refwindow.h"
#include "related/wolf_lam.h"
#include "transform/minimizer.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(RefWindow, Example7CostMatchesEisenbeis) {
  // Eisenbeis et al. quote a window cost of 89 for Example 7; the
  // per-dependence model estimates 3*30+2 = 92 with an exact in-flight peak
  // close by.
  LoopNest nest = codes::example_7();
  auto windows = dependence_windows(nest);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].estimate, 92);
  EXPECT_GE(windows[0].exact, 80);
  EXPECT_LE(windows[0].exact, 92);
}

TEST(RefWindow, PerDependenceSumOvercountsSharedElements) {
  // The paper's Section 6 claim: combining per-dependence windows loses
  // precision.  Example 8's three distances each carry a window, but the
  // elements overlap; the per-array exact MWS is far below the sum.
  LoopNest nest = codes::example_8();
  Int sum = per_dependence_cost(nest);
  Int exact = simulate(nest).mws_total;
  EXPECT_GT(sum, exact);
  EXPECT_GE(sum, 2 * exact);  // the loss is large here, not marginal
}

TEST(RefWindow, ExactNeverExceedsEstimate) {
  for (auto nest : {codes::example_2(), codes::example_4(), codes::example_7(),
                    codes::example_8()}) {
    for (const auto& w : dependence_windows(nest)) {
      EXPECT_LE(w.exact, w.estimate + 1) << w.dep.distance.str();
    }
  }
}

TEST(RefWindow, SingleDependenceAgreesWithArrayWindow) {
  // With exactly one dependence the two models coincide (no combination
  // needed): per-dep exact == per-array exact.
  LoopNest nest = codes::example_2();  // single flow dependence (1,-2)
  auto windows = dependence_windows(nest);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].exact, simulate(nest).mws_total);
}

TEST(WolfLam, PrefersDeeperReuseLevels) {
  // Column stencil: reuse (1,0); interchanging makes it (0,1) - level 2.
  LoopNest nest = codes::kernel_two_point(8);
  IntMat identity = IntMat::identity(2);
  IntMat inter = interchange(2, 0, 1);
  EXPECT_GT(wolf_lam_score(nest, inter), wolf_lam_score(nest, identity));
  auto best = wolf_lam_best_permutation(nest);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, inter);
}

TEST(WolfLam, LegalOnly) {
  // Example 2's dependence (1,-2) forbids interchange; the ranker must keep
  // the identity.
  auto best = wolf_lam_best_permutation(codes::example_2());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, IntMat::identity(2));
}

TEST(WolfLam, NoReuseNothingToRank) {
  
  LoopNest nest = [] {
    NestBuilder b;
    b.loop("i", 1, 4).loop("j", 1, 4);
    ArrayId a = b.array("A", {4, 4});
    b.statement().write(a, {{1, 0}, {0, 1}}, {0, 0});
    return b.build();
  }();
  EXPECT_FALSE(wolf_lam_best_permutation(nest).has_value());
}

TEST(WolfLam, BoundsFreeScoreCanMisrank) {
  // rasta_flt: permutations that carry the tap reuse innermost all score
  // identically regardless of whether frames or bands sit outermost, though
  // their exact windows differ -- the bounds-free imprecision the paper
  // notes.  Our bound-aware optimizer must do at least as well.
  LoopNest nest = codes::kernel_rasta_flt(20, 6, 3);
  auto wl = wolf_lam_best_permutation(nest);
  ASSERT_TRUE(wl.has_value());
  Int wl_window = simulate_transformed(nest, *wl).mws_total;
  OptimizeResult ours = optimize_locality(nest);
  Int our_window = simulate_transformed(nest, ours.transform).mws_total;
  EXPECT_LE(our_window, wl_window);
}

TEST(Ferrante, ExactForLoneIndependentReference) {
  // A single A[i][j]: per-dim ranges x strides give the exact count.
  LoopNest nest = [] {
    NestBuilder b;
    b.loop("i", 1, 7).loop("j", 1, 9);
    ArrayId a = b.array("A", {7, 9});
    b.statement().write(a, {{1, 0}, {0, 1}}, {0, 0});
    return b.build();
  }();
  FerranteEstimate fe = ferrante_estimate(nest, 0);
  EXPECT_EQ(fe.distinct, 63);
  EXPECT_FALSE(fe.coupled);
  EXPECT_EQ(fe.distinct, simulate(nest).distinct_total);
}

TEST(Ferrante, MultipleReferencesOverestimated) {
  // Example 3 (four shifted reads): ranges merge to 11x11 = 121 -- here the
  // range union HAPPENS to be exact; Example 8's linearized pair is not.
  FerranteEstimate fe3 = ferrante_estimate(codes::example_3(), 0);
  EXPECT_EQ(fe3.distinct, 121);
  FerranteEstimate fe8 = ferrante_estimate(codes::example_8(), 0);
  EXPECT_TRUE(fe8.coupled);
  // Range [8,105], stride gcd(2,5)=1: 98 -- but only 94 are reachable.
  EXPECT_EQ(fe8.distinct, 98);
  EXPECT_GT(fe8.distinct, simulate(codes::example_8()).distinct_total);
}

TEST(Ferrante, CoupledSubscriptsFlagged) {
  FerranteEstimate fe = ferrante_estimate(codes::example_5(), 0);
  EXPECT_TRUE(fe.coupled);
  // (3i+k) x (j+k) ranges: 57 * 49 = 2793 vs exact 1869.
  EXPECT_EQ(fe.distinct, 2793);
  EXPECT_GT(fe.distinct, 1869);
}

TEST(LiPingali, RecoversExample7Optimum) {
  // "Even though the technique in [14] can be used to derive this
  // transformation..." -- Example 7's compound transform comes straight from
  // the access row (2,-3).
  LoopNest nest = codes::example_7();
  auto res = li_pingali_transform(nest, 0);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->transform.is_unimodular());
  EXPECT_EQ(res->seeded_row.primitive(), res->seeded_row);
  EXPECT_EQ(simulate_transformed(nest, res->transform).mws_total, 1);
}

TEST(LiPingali, FailsOnExample8) {
  // The paper's central comparison: rows (2,5) and (-2,5) are both illegal,
  // so no completion exists.
  EXPECT_FALSE(li_pingali_transform(codes::example_8(), 0).has_value());
}

TEST(LiPingali, OurMinimizerStillSolvesExample8) {
  LoopNest nest = codes::example_8();
  ASSERT_FALSE(li_pingali_transform(nest, 0).has_value());
  auto ours = minimize_mws_2d(nest);
  ASSERT_TRUE(ours.has_value());
  EXPECT_EQ(simulate_transformed(nest, ours->transform).mws_total, 21);
}

TEST(LiPingali, NotApplicableCases) {
  EXPECT_FALSE(li_pingali_transform(codes::example_5(), 0).has_value());  // depth 3
  EXPECT_FALSE(li_pingali_transform(codes::example_3(), 0).has_value());  // 2-d array
  EXPECT_FALSE(li_pingali_transform(codes::example_6(), 0).has_value());  // non-uniform
}

}  // namespace
}  // namespace lmre
