#include <gtest/gtest.h>

#include "analysis/nonuniform.h"
#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/builder.h"

namespace lmre {
namespace {

TEST(SubscriptRange, IntervalArithmetic) {
  IntBox box = IntBox::from_upper_bounds({20, 20});
  auto [lo1, hi1] = subscript_range(IntVec{3, 7}, -10, box);
  EXPECT_EQ(lo1, 0);    // 3+7-10
  EXPECT_EQ(hi1, 190);  // 60+140-10
  auto [lo2, hi2] = subscript_range(IntVec{4, -3}, 60, box);
  EXPECT_EQ(lo2, 4);    // 4-60+60
  EXPECT_EQ(hi2, 137);  // 80-3+60
}

TEST(SubscriptRange, NegativeBoundsBox) {
  IntBox box({Range{-4, 4}, Range{1, 3}});
  auto [lo, hi] = subscript_range(IntVec{2, -1}, 0, box);
  EXPECT_EQ(lo, -11);
  EXPECT_EQ(hi, 7);
}

TEST(NonUniform, Example6MatchesPaper) {
  NonUniformBounds b = nonuniform_bounds(codes::example_6(), 0);
  EXPECT_EQ(b.lb_min, 0);
  EXPECT_EQ(b.ub_max, 190);
  EXPECT_EQ(b.upper, 191);
  EXPECT_EQ(b.lower_paper, 179);         // 191 - (3-1)(7-1)
  EXPECT_EQ(b.lower_conservative, 173);  // 191 - 12 - 6
}

TEST(NonUniform, BoundsBracketActual) {
  LoopNest nest = codes::example_6();
  NonUniformBounds b = nonuniform_bounds(nest, 0);
  Int actual = simulate(nest).distinct_total;
  EXPECT_LE(actual, b.upper);
  EXPECT_GE(actual, b.lower_conservative);
  // Note: the paper quotes "actual 181"; our oracle measures 182 for the
  // loop as printed -- both inside [lower, upper].
  EXPECT_EQ(actual, 182);
}

TEST(NonUniform, UpperBoundIsSoundOnRandomPairs) {
  // Sweep a family of non-uniform reference pairs; the range upper bound
  // must always hold.
  for (Int a1 : {2, 3, 5}) {
    for (Int b1 : {3, 7}) {
      for (Int a2 : {4, 1}) {
        NestBuilder nb;
        nb.loop("i", 1, 12).loop("j", 1, 9);
        ArrayId arr = nb.array("A", {400});
        nb.statement().read(arr, {{a1, b1}}, {5});
        nb.statement().read(arr, {{a2, -3}}, {60});
        LoopNest nest = nb.build();
        NonUniformBounds b = nonuniform_bounds(nest, 0);
        Int actual = simulate(nest).distinct_total;
        EXPECT_LE(actual, b.upper)
            << "a1=" << a1 << " b1=" << b1 << " a2=" << a2;
      }
    }
  }
}

TEST(NonUniform, SingleCoefficientRefHasNoGapTerm) {
  NestBuilder nb;
  nb.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId arr = nb.array("A", {40});
  nb.statement().read(arr, {{3, 0}}, {0});   // 3i: stride-3 progression
  nb.statement().read(arr, {{0, 2}}, {0});   // 2j
  LoopNest nest = nb.build();
  NonUniformBounds b = nonuniform_bounds(nest, 0);
  EXPECT_EQ(b.upper, b.lower_paper);  // gap term 0 for 1-coefficient rows
}

TEST(NonUniform, NonCoprimePairSkipsGapTerm) {
  NestBuilder nb;
  nb.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId arr = nb.array("A", {70});
  nb.statement().read(arr, {{2, 4}}, {0});
  nb.statement().read(arr, {{3, 1}}, {0});
  LoopNest nest = nb.build();
  NonUniformBounds b = nonuniform_bounds(nest, 0);
  // Gap count for (2,4) would be bogus; only (3,1) contributes (0 as well
  // since (1-1)(3-1)=0).
  EXPECT_EQ(b.lower_paper, b.upper);
}

TEST(NonUniform, MultiDimUsesProductOfRanges) {
  NestBuilder nb;
  nb.loop("i", 1, 5).loop("j", 1, 5);
  ArrayId arr = nb.array("A", {10, 10});
  nb.statement().read(arr, {{1, 0}, {0, 1}}, {0, 0});
  nb.statement().read(arr, {{0, 1}, {1, 1}}, {0, 0});
  LoopNest nest = nb.build();
  NonUniformBounds b = nonuniform_bounds(nest, 0);
  // dim 0 range [1,5], dim 1 range [1,10] -> 5 * 10.
  EXPECT_EQ(b.upper, 50);
  Int actual = simulate(nest).distinct_total;
  EXPECT_LE(actual, b.upper);
}

}  // namespace
}  // namespace lmre
