#include <gtest/gtest.h>

#include <set>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "layout/layout.h"
#include "layout/spatial.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Layout, RowMajorAddressing) {
  LayoutSpec l = LayoutSpec::row_major(IntVec{0, 0}, {3, 4});
  EXPECT_EQ(l.size(), 12);
  EXPECT_EQ(l.address(IntVec{0, 0}), 0);
  EXPECT_EQ(l.address(IntVec{0, 3}), 3);
  EXPECT_EQ(l.address(IntVec{1, 0}), 4);
  EXPECT_EQ(l.address(IntVec{2, 3}), 11);
}

TEST(Layout, ColMajorAddressing) {
  LayoutSpec l = LayoutSpec::col_major(IntVec{0, 0}, {3, 4});
  EXPECT_EQ(l.address(IntVec{0, 0}), 0);
  EXPECT_EQ(l.address(IntVec{1, 0}), 1);
  EXPECT_EQ(l.address(IntVec{0, 1}), 3);
  EXPECT_EQ(l.address(IntVec{2, 3}), 11);
}

TEST(Layout, OriginShift) {
  LayoutSpec l = LayoutSpec::row_major(IntVec{-2, 3}, {3, 4});
  EXPECT_EQ(l.address(IntVec{-2, 3}), 0);
  EXPECT_EQ(l.address(IntVec{0, 6}), 11);
  EXPECT_THROW(l.address(IntVec{-3, 3}), InvalidArgument);
  EXPECT_THROW(l.address(IntVec{1, 3}), InvalidArgument);
}

TEST(Layout, AddressesAreABijection) {
  for (auto l : {LayoutSpec::row_major(IntVec{0, 0}, {5, 7}),
                 LayoutSpec::col_major(IntVec{0, 0}, {5, 7}),
                 LayoutSpec::blocked(IntVec{0, 0}, {5, 7}, {2, 3})}) {
    std::set<Int> seen;
    for (Int i = 0; i < 5; ++i) {
      for (Int j = 0; j < 7; ++j) {
        Int a = l.address(IntVec{i, j});
        EXPECT_GE(a, 0) << l.str();
        EXPECT_TRUE(seen.insert(a).second) << l.str() << " collision at (" << i
                                           << "," << j << ")";
      }
    }
  }
}

TEST(Layout, BlockedKeepsBlockContiguous) {
  LayoutSpec l = LayoutSpec::blocked(IntVec{0, 0}, {4, 4}, {2, 2});
  // All four elements of block (0,0) occupy addresses 0..3.
  std::set<Int> block0 = {l.address(IntVec{0, 0}), l.address(IntVec{0, 1}),
                          l.address(IntVec{1, 0}), l.address(IntVec{1, 1})};
  EXPECT_EQ(block0, (std::set<Int>{0, 1, 2, 3}));
}

TEST(Layout, FitCoversAllTouchedIndices) {
  LoopNest nest = codes::example_1a();  // offsets reach A[-2][3]
  LayoutSpec l = LayoutSpec::fit(nest, 0);
  // Every touched index must address without throwing.
  visit_iterations(nest, nullptr, [&](Int, const IntVec& iter) {
    for (const auto& ref : nest.all_refs()) {
      EXPECT_NO_THROW(l.address(ref.index_at(iter)));
    }
  });
}

TEST(Layout, KindNames) {
  EXPECT_EQ(to_string(LayoutKind::kRowMajor), "row-major");
  EXPECT_EQ(to_string(LayoutKind::kColMajor), "col-major");
  EXPECT_EQ(to_string(LayoutKind::kBlocked), "blocked");
}

TEST(Spatial, LineSizeOneMatchesElementWindow) {
  LoopNest nest = codes::example_8();
  SpatialStats s = simulate_lines(nest, default_layouts(nest), 1);
  TraceStats t = simulate(nest);
  EXPECT_EQ(s.mws_lines, t.mws_total);
  EXPECT_EQ(s.distinct_lines, t.distinct_total);
}

TEST(Spatial, LargerLinesNeverIncreaseLineCount) {
  LoopNest nest = codes::kernel_two_point(16);
  auto layouts = default_layouts(nest);
  Int prev = simulate_lines(nest, layouts, 1).distinct_lines;
  for (Int line : {2, 4, 8}) {
    Int cur = simulate_lines(nest, layouts, line).distinct_lines;
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(Spatial, LayoutMattersForColumnStencil) {
  // A[i][j] = A[i-1][j]: the live set at any instant is (part of) two
  // consecutive i-rows.  Row-major lines cover it with ~2*n/L lines;
  // column-major scatters it across every column (~n lines).
  LoopNest nest = codes::kernel_two_point(16);
  std::map<ArrayId, LayoutSpec> row, col;
  row.emplace(0, LayoutSpec::fit(nest, 0, LayoutKind::kRowMajor));
  col.emplace(0, LayoutSpec::fit(nest, 0, LayoutKind::kColMajor));
  Int line = 8;
  Int row_window = simulate_lines(nest, row, line).mws_lines;
  Int col_window = simulate_lines(nest, col, line).mws_lines;
  EXPECT_LT(row_window, col_window);
}

TEST(Spatial, ChooseLayoutsPicksTheBetterOne) {
  LoopNest nest = codes::kernel_two_point(16);
  LayoutChoice choice = choose_layouts(nest, 8);
  EXPECT_EQ(choice.layouts.at(0).kind(), LayoutKind::kRowMajor);
  // And its window equals the direct measurement.
  SpatialStats direct = simulate_lines(nest, choice.layouts, 8);
  EXPECT_EQ(direct.mws_lines, choice.stats.mws_lines);
}

TEST(Spatial, ChooseLayoutsMultipleArrays) {
  LoopNest nest = codes::kernel_matmult(8);
  LayoutChoice choice = choose_layouts(nest, 4);
  // Must be no worse than all-row-major.
  SpatialStats base = simulate_lines(nest, default_layouts(nest), 4);
  EXPECT_LE(choice.stats.mws_lines, base.mws_lines);
}

TEST(Spatial, TransformedOrderSupported) {
  LoopNest nest = codes::kernel_two_point(12);
  IntMat inter{{0, 1}, {1, 0}};
  auto layouts = default_layouts(nest);
  Int before = simulate_lines(nest, layouts, 4).mws_lines;
  Int after = simulate_lines(nest, layouts, 4, &inter).mws_lines;
  // The temporal/spatial tension: interchange shrinks the ELEMENT window
  // (reuse becomes consecutive) but strides across row-major lines, so the
  // LINE window grows -- layout and order must be chosen together.
  EXPECT_GT(after, before);
  EXPECT_LT(simulate_transformed(nest, inter).mws_total, simulate(nest).mws_total);
}

TEST(Spatial, RejectsBadLineSize) {
  LoopNest nest = codes::example_2(3, 3);
  EXPECT_THROW(simulate_lines(nest, default_layouts(nest), 0), InvalidArgument);
}

}  // namespace
}  // namespace lmre
