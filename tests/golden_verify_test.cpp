// Golden-file tests for `lmre verify --json`: the enveloped certificate
// documents must match tests/golden/verify_*.json byte for byte (after
// normalizing the probed source-root prefix out of diagnostic file names).
//
//   verify_example10.json         audit mode -- the optimizer's own plan
//                                 for Example 10, certified (exit 0);
//   verify_example6.json          interchange of Example 6's non-uniform
//                                 references -- the direction-vector path
//                                 (LMRE-W020), certified but untileable;
//   verify_example8_witness.json  a hand-built i-reversal of Example 8 --
//                                 refuted with concrete iteration-pair
//                                 witnesses (LMRE-E019, exit kDiagnostics).
//
// Regenerate with scripts/regen_golden.sh after an intentional schema
// change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
std::string source_root() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    if (!read_file(std::string(base) + "tests/golden/example10.loop").empty()) {
      return base;
    }
  }
  return "?";
}

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

// Runs `lmre verify --json [args...] <root+input>` and compares against
// tests/golden/<golden_name>, normalizing the path prefix.
void check_golden(const std::vector<std::string>& plan_args,
                  const std::string& input, const std::string& golden_name,
                  ExitCode want_rc) {
  std::string root = source_root();
  if (root == "?") GTEST_SKIP() << "source tree not found from test cwd";
  std::string golden = read_file(root + "tests/golden/" + golden_name);
  ASSERT_FALSE(golden.empty()) << "tests/golden/" << golden_name << " missing";

  std::vector<std::string> args = {"verify", "--json"};
  args.insert(args.end(), plan_args.begin(), plan_args.end());
  args.push_back(root + input);
  std::ostringstream out, err;
  ExitCode rc = run_cli(args, out, err);
  EXPECT_EQ(rc, want_rc) << err.str();

  std::string normalized = replace_all(out.str(), root + "tests/", "tests/");
  normalized = replace_all(normalized, root + "examples/", "examples/");
  EXPECT_EQ(normalized, golden)
      << "verify --json output drifted from the golden; if intentional, "
         "regenerate with scripts/regen_golden.sh";
}

TEST(GoldenVerify, Example10AuditCertifiesOptimizerPlan) {
  check_golden({}, "tests/golden/example10.loop", "verify_example10.json",
               ExitCode::kSuccess);
}

TEST(GoldenVerify, Example6InterchangeUsesDirectionGranularity) {
  check_golden({"--plan=0 1; 1 0"}, "tests/golden/example6.loop",
               "verify_example6.json", ExitCode::kSuccess);
}

TEST(GoldenVerify, Example8ReversalRefutedWithWitnesses) {
  check_golden({"--plan=-1 0; 0 1"}, "examples/loops/example8.loop",
               "verify_example8_witness.json", ExitCode::kDiagnostics);
}

}  // namespace
}  // namespace lmre::tools
