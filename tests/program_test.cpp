#include <gtest/gtest.h>

#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "program/program.h"
#include "support/error.h"

namespace lmre {
namespace {

LoopNest producer(Int n) {
  NestBuilder b;
  b.loop("i", 1, n);
  ArrayId a = b.array("A", {n});
  b.statement().write(a, {{1}}, {0});
  return b.build();
}

LoopNest consumer(Int n) {
  NestBuilder b;
  b.loop("i", 1, n);
  ArrayId a = b.array("A", {n});
  ArrayId out = b.array("B", {n});
  b.statement().write(out, {{1}}, {0}).read(a, {{1}}, {0});
  return b.build();
}

TEST(Program, ProducerConsumerHandoff) {
  Program p;
  p.add_phase("produce", producer(8));
  p.add_phase("consume", consumer(8));
  ProgramStats s = p.simulate();
  EXPECT_EQ(s.iterations, 16);
  ASSERT_EQ(s.handoff.size(), 2u);
  EXPECT_EQ(s.handoff[0], 0);
  // All 8 produced values cross the boundary into the consumer.
  EXPECT_EQ(s.handoff[1], 8);
  EXPECT_EQ(s.mws_total, 8);
  EXPECT_EQ(s.distinct.at("A"), 8);
  EXPECT_EQ(s.distinct.at("B"), 8);
}

TEST(Program, PhaseWindowsTracked) {
  Program p;
  p.add_phase("produce", producer(8));
  p.add_phase("consume", consumer(8));
  ProgramStats s = p.simulate();
  ASSERT_EQ(s.phase_mws.size(), 2u);
  // The window builds up during production and drains during consumption;
  // at the consumer's first iteration one value is already consumed, so its
  // in-phase peak is 7 while the handoff into it is the full 8.
  EXPECT_EQ(s.phase_mws[0], 8);
  EXPECT_EQ(s.phase_mws[1], 7);
  EXPECT_EQ(s.handoff[1], 8);
}

TEST(Program, SinglePhaseMatchesOracle) {
  Program p;
  LoopNest nest = codes::kernel_two_point(8);
  p.add_phase("only", nest);
  ProgramStats s = p.simulate();
  TraceStats t = simulate(nest);
  EXPECT_EQ(s.mws_total, t.mws_total);
  EXPECT_EQ(s.distinct_total, t.distinct_total);
  EXPECT_EQ(s.iterations, t.iterations);
}

TEST(Program, IndependentPhasesDoNotInteract) {
  // Two phases on disjoint arrays: the global window never exceeds the max
  // of the per-phase windows.
  Program p;
  p.add_phase("a", codes::kernel_two_point(8));
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId z = b.array("Z", {7});
  b.statement().write(z, {{1}}, {0}).read(z, {{1}}, {-1});
  p.add_phase("b", b.build());
  ProgramStats s = p.simulate();
  Int w1 = simulate(codes::kernel_two_point(8)).mws_total;
  EXPECT_EQ(s.mws_total, w1);
  EXPECT_EQ(s.handoff[1], 0);  // nothing crosses the boundary
}

TEST(Program, ArraysUnifiedByName) {
  Program p;
  p.add_phase("produce", producer(8));
  p.add_phase("consume", consumer(8));
  // A declared in both phases (same extents) counts once in default memory:
  // A (8) + B (8).
  EXPECT_EQ(p.simulate().default_memory, 16);
}

TEST(Program, ExtentMismatchRejected) {
  Program p;
  p.add_phase("produce", producer(8));
  EXPECT_THROW(p.add_phase("bad", producer(9)), InvalidArgument);
}

TEST(Program, EmptyProgramRejected) {
  Program p;
  EXPECT_THROW(p.simulate(), InvalidArgument);
}

TEST(Program, ThreePhasePipelineReusesBuffer) {
  // produce A -> A to B -> B to C: at any instant only one handoff buffer
  // is live, so the whole-program window is ~n, not 2n.
  Int n = 10;
  Program p;
  p.add_phase("p1", producer(n));
  p.add_phase("p2", consumer(n));  // writes B from A
  NestBuilder b;
  b.loop("i", 1, n);
  ArrayId bb = b.array("B", {n});
  ArrayId cc = b.array("C", {n});
  b.statement().write(cc, {{1}}, {0}).read(bb, {{1}}, {0});
  p.add_phase("p3", b.build());
  ProgramStats s = p.simulate();
  EXPECT_EQ(s.handoff[1], n);  // A crosses into p2
  EXPECT_EQ(s.handoff[2], n);  // B crosses into p3
  EXPECT_LE(s.mws_total, n + 2);
}

TEST(Program, AccessorsAndBounds) {
  Program p;
  p.add_phase("one", producer(4));
  EXPECT_EQ(p.phase_count(), 1u);
  EXPECT_EQ(p.phase_name(0), "one");
  EXPECT_EQ(p.phase_nest(0).depth(), 1u);
  EXPECT_THROW(p.phase_name(1), InvalidArgument);
}

}  // namespace
}  // namespace lmre
