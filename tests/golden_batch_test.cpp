// Golden-file test for `lmre batch --json` over the shipped corpus: the
// enveloped document must match tests/golden/batch_loops.json byte for
// byte (after normalizing the corpus path prefix out of the "file"
// fields).  This pins the schema_version-1 batch output shape; regenerate
// the golden with scripts/regen_golden.sh after an intentional change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
std::string source_root() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    if (!read_file(std::string(base) + "examples/loops/matmult.loop").empty()) {
      return base;
    }
  }
  return "?";
}

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

TEST(GoldenBatch, JsonDocumentMatchesGolden) {
  std::string root = source_root();
  if (root == "?") GTEST_SKIP() << "source tree not found from test cwd";
  std::string golden = read_file(root + "tests/golden/batch_loops.json");
  ASSERT_FALSE(golden.empty()) << "tests/golden/batch_loops.json missing";

  std::ostringstream out, err;
  ExitCode rc = run_cli({"batch", "--json", root + "examples/loops"}, out, err);
  EXPECT_EQ(rc, ExitCode::kSuccess) << err.str();

  // The "file" fields carry the probed path prefix; normalize it away so
  // the golden is independent of the build layout.
  std::string normalized =
      replace_all(out.str(), root + "examples/loops/", "examples/loops/");
  EXPECT_EQ(normalized, golden)
      << "batch --json output drifted from the golden; if intentional, "
         "regenerate with scripts/regen_golden.sh and bump schema notes";
}

}  // namespace
}  // namespace lmre::tools
