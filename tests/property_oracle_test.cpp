// Differential property suite for the dense-address trace engine: on random
// nests, the paper kernels, and the shipped .loop corpus, every public
// oracle entry point must reproduce the retained reference (hash-map)
// implementation field for field -- TraceStats, LivenessStats, lifetime
// reports, and window series; serial and slab-parallel; original and
// transformed order; dense, sparse, and overflow-fallback storage paths.
// ~200 random nests per run (100 seeds x 2 depths), fixed seeds so failures
// reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "exact/liveness.h"
#include "exact/oracle.h"
#include "exact/reference.h"
#include "exact/trace_engine.h"
#include "ir/builder.h"
#include "ir/parser.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xD15EA5E + seed); }

void expect_trace_eq(const TraceStats& got, const TraceStats& want,
                     const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.total_accesses, want.total_accesses);
  EXPECT_EQ(got.distinct_total, want.distinct_total);
  EXPECT_EQ(got.distinct, want.distinct);
  EXPECT_EQ(got.reuse_total, want.reuse_total);
  EXPECT_EQ(got.reuse, want.reuse);
  EXPECT_EQ(got.mws_total, want.mws_total);
  EXPECT_EQ(got.mws, want.mws);
}

void expect_liveness_eq(const LivenessStats& got, const LivenessStats& want,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(got.max_live, want.max_live);
  EXPECT_EQ(got.per_array, want.per_array);
  EXPECT_EQ(got.input_elements, want.input_elements);
}

void expect_lifetimes_eq(const LifetimeReport& got, const LifetimeReport& want,
                         const std::string& what) {
  SCOPED_TRACE(what);
  auto eq = [](const LifetimeStats& a, const LifetimeStats& b) {
    EXPECT_EQ(a.elements, b.elements);
    EXPECT_EQ(a.live_elements, b.live_elements);
    EXPECT_EQ(a.max_lifetime, b.max_lifetime);
    EXPECT_EQ(a.total_lifetime, b.total_lifetime);
  };
  ASSERT_EQ(got.per_array.size(), want.per_array.size());
  auto gi = got.per_array.begin();
  auto wi = want.per_array.begin();
  for (; gi != got.per_array.end(); ++gi, ++wi) {
    EXPECT_EQ(gi->first, wi->first);
    eq(gi->second, wi->second);
  }
  eq(got.total, want.total);
}

// Depth-matched unimodular transforms to exercise the composed (T^-1)
// stepping: identity, interchange, reversal, skew.
std::vector<IntMat> transforms_for(size_t depth) {
  if (depth == 2) {
    return {IntMat::identity(2), IntMat{{0, 1}, {1, 0}}, IntMat{{-1, 0}, {0, 1}},
            IntMat{{1, 0}, {1, 1}}, IntMat{{1, 1}, {0, 1}}};
  }
  if (depth == 3) {
    return {IntMat::identity(3), IntMat{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}},
            IntMat{{1, 0, 0}, {1, 1, 0}, {0, 0, 1}}};
  }
  return {IntMat::identity(depth)};
}

// Every entry point, engine vs reference, on one nest.
void expect_engine_matches_reference(const LoopNest& nest,
                                     const std::string& what) {
  expect_trace_eq(simulate(nest), reference::simulate(nest), what + " serial");
  for (int threads : {2, 4, 0}) {
    expect_trace_eq(simulate(nest, threads), reference::simulate(nest, threads),
                    what + " threads=" + std::to_string(threads));
  }
  expect_liveness_eq(min_memory_liveness(nest),
                     reference::min_memory_liveness(nest), what + " liveness");
  expect_lifetimes_eq(lifetime_report(nest), reference::lifetime_report(nest),
                      what + " lifetimes");
  for (const IntMat& t : transforms_for(nest.depth())) {
    const std::string tag = what + " t=" + t.str();
    expect_trace_eq(simulate_transformed(nest, t),
                    reference::simulate_transformed(nest, t), tag);
    EXPECT_EQ(window_series(nest, t), reference::window_series(nest, t)) << tag;
    expect_liveness_eq(min_memory_liveness(nest, &t),
                       reference::min_memory_liveness(nest, &t),
                       tag + " liveness");
    expect_lifetimes_eq(lifetime_report_transformed(nest, t),
                        reference::lifetime_report_transformed(nest, t),
                        tag + " lifetimes");
  }
}

// Random 2-deep nest: a write/read pair on a 2-d array plus a 1-d
// reduction-style target, random small offsets.
LoopNest random_nest2(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 11), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 6, n2 + 6});
  ArrayId s = b.array("S", {n1 + n2 + 10});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3})
      .read(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3});
  b.statement().write(s, IntMat{{1, 1}}, IntVec{3}).read(s, IntMat{{1, 1}},
                                                         {off(rng) + 3});
  return b.build();
}

// Random 3-deep nest over a 2-d array with a skewed affine access.
LoopNest random_nest3(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 7), coef(0, 2), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng), n3 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2).loop("k", 1, n3);
  ArrayId a = b.array("A", {60, 60});
  ArrayId s = b.array("S", {40});
  Int c1 = coef(rng), c2 = coef(rng) + 1;
  b.statement().read(a, IntMat{{1, 0, c1}, {0, 1, c2}},
                     {off(rng) + 5, off(rng) + 5});
  b.statement().write(s, IntMat{{1, 1, 0}}, IntVec{4});
  return b.build();
}

class OracleEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(OracleEngineProperty, MatchesReference2Deep) {
  auto rng = rng_for(GetParam());
  expect_engine_matches_reference(random_nest2(rng),
                                  "seed " + std::to_string(GetParam()));
}

TEST_P(OracleEngineProperty, MatchesReference3Deep) {
  auto rng = rng_for(1000 + GetParam());
  expect_engine_matches_reference(random_nest3(rng),
                                  "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleEngineProperty, ::testing::Range(0, 100));

// A huge stride blows the element box far past the access count, forcing
// the sparse linear-probe path; results must not change.
TEST(OracleEngineStorage, SparseTableMatchesReference) {
  constexpr Int kStride = Int{1} << 19;
  NestBuilder b;
  b.loop("i", 1, 24).loop("j", 1, 24);
  ArrayId a = b.array("A", {Int{1} << 34});
  b.statement()
      .write(a, IntMat{{kStride, 1}}, IntVec{0})
      .read(a, IntMat{{kStride, 1}}, IntVec{1});
  LoopNest nest = b.build();

  TraceArena arena;
  expect_trace_eq(simulate(nest, 1, arena), reference::simulate(nest), "sparse");
  EXPECT_GT(arena.stats().sparse_stores, 0);
  EXPECT_EQ(arena.stats().fallback_runs, 0);
  expect_engine_matches_reference(nest, "sparse all entry points");
}

// Coefficients big enough that the element-box volume overflows the
// engine's address bound: plan construction must fail and every entry point
// must fall back to the reference engine transparently.
TEST(OracleEngineStorage, OverflowFallsBackToReference) {
  constexpr Int kHuge = Int{1} << 35;
  NestBuilder b;
  b.loop("i", 1, 4).loop("j", 1, 4);
  ArrayId a = b.array("A", {Int{1} << 40, Int{1} << 40});
  b.statement()
      .write(a, IntMat{{kHuge, 0}, {0, kHuge}}, IntVec{0, 0})
      .read(a, IntMat{{kHuge, 0}, {0, kHuge}}, IntVec{0, 1});
  LoopNest nest = b.build();

  TraceArena arena;
  expect_trace_eq(simulate(nest, 1, arena), reference::simulate(nest),
                  "overflow fallback");
  EXPECT_GT(arena.stats().fallback_runs, 0);
  EXPECT_EQ(arena.stats().runs, 0);
  expect_liveness_eq(min_memory_liveness(nest),
                     reference::min_memory_liveness(nest),
                     "overflow fallback liveness");
}

// One arena reused across different nests, transforms, and entry points
// must keep producing fresh-arena results (buffer reuse may not leak state
// between runs).
TEST(OracleEngineArena, ReuseAcrossNestsIsStateless) {
  TraceArena arena;
  for (int seed = 0; seed < 12; ++seed) {
    auto rng = rng_for(5000 + seed);
    LoopNest nest = seed % 2 == 0 ? random_nest2(rng) : random_nest3(rng);
    const std::string what = "arena seed " + std::to_string(seed);
    expect_trace_eq(simulate(nest, 1, arena), reference::simulate(nest), what);
    expect_trace_eq(simulate(nest, 4, arena),
                    reference::simulate(nest, 4), what + " threads=4");
    for (const IntMat& t : transforms_for(nest.depth())) {
      expect_trace_eq(simulate_transformed(nest, t, arena),
                      reference::simulate_transformed(nest, t),
                      what + " t=" + t.str());
      expect_liveness_eq(min_memory_liveness(nest, &t, arena),
                         reference::min_memory_liveness(nest, &t),
                         what + " liveness t=" + t.str());
      EXPECT_EQ(window_series(nest, t, arena), reference::window_series(nest, t))
          << what;
    }
    expect_lifetimes_eq(lifetime_report(nest, arena),
                        reference::lifetime_report(nest), what + " lifetimes");
  }
  EXPECT_GT(arena.stats().runs, 0);
  EXPECT_GT(arena.stats().arena_high_water_bytes, 0);
}

TEST(OracleEngineOrder, SimulateOrderMatchesReference) {
  auto rng = rng_for(424242);
  LoopNest nest = random_nest2(rng);
  // Reverse-lexicographic replay: a legal order the incremental stepping
  // cannot shortcut.
  std::vector<IntVec> order;
  visit_iterations(nest, nullptr, [&](Int, const IntVec& iter) {
    order.push_back(iter);
  });
  std::reverse(order.begin(), order.end());
  expect_trace_eq(simulate_order(nest, order),
                  reference::simulate_order(nest, order), "reverse order");
}

TEST(OracleEngineEdge, EmptyAndDegenerateNests) {
  {
    // Empty iteration space (the builder refuses empty ranges; build the IR
    // directly).
    LoopNest nest({"i", "j"}, IntBox({Range{1, 0}, Range{1, 5}}),
                  {Array{"A", {10}}},
                  {Statement{{ArrayRef{0, AccessKind::kWrite, IntMat{{1, 0}},
                                       IntVec{0}}}}});
    expect_engine_matches_reference(nest, "empty box");
  }
  {
    NestBuilder b;
    b.loop("i", 1, 1).loop("j", 1, 1);  // single iteration
    ArrayId a = b.array("A", {4});
    b.statement().write(a, IntMat{{1, 1}}, IntVec{0}).read(a, IntMat{{1, 1}},
                                                           IntVec{0});
    LoopNest nest = b.build();
    expect_engine_matches_reference(nest, "single iteration");
  }
}

TEST(OraclePaperKernels, Figure2SuiteMatchesReference) {
  for (auto& e : codes::figure2_suite()) {
    expect_trace_eq(simulate(e.nest), reference::simulate(e.nest), e.name);
    expect_trace_eq(simulate(e.nest, 4), reference::simulate(e.nest, 4),
                    e.name + " threads=4");
    expect_liveness_eq(min_memory_liveness(e.nest),
                       reference::min_memory_liveness(e.nest),
                       e.name + " liveness");
  }
}

TEST(OraclePaperKernels, ExtraSuiteMatchesReference) {
  for (auto& [name, nest] : codes::extra_suite()) {
    expect_trace_eq(simulate(nest), reference::simulate(nest), name);
    expect_trace_eq(simulate(nest, 4), reference::simulate(nest, 4),
                    name + " threads=4");
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; the loop files live in the
// source tree.  Probe a couple of plausible roots.
std::string loops_dir() {
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (!read_file(std::string(base) + "matmult.loop").empty()) return base;
  }
  return "";
}

TEST(OracleLoopCorpus, EveryShippedFileMatchesReference) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    std::string source = read_file(entry.path().string());
    ASSERT_FALSE(source.empty()) << entry.path();
    Program program = parse_program(source);
    for (size_t k = 0; k < program.phase_count(); ++k) {
      const LoopNest& nest = program.phase_nest(k);
      if (nest.iteration_count() > 2'000'000) continue;
      const std::string what =
          entry.path().filename().string() + " phase " + std::to_string(k);
      expect_trace_eq(simulate(nest), reference::simulate(nest), what);
      expect_liveness_eq(min_memory_liveness(nest),
                         reference::min_memory_liveness(nest),
                         what + " liveness");
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace lmre
