// Differential test suite for the parallel design-space search: every
// thread count must produce results bit-identical to threads=1 -- the same
// transform, the same analytic estimate, the same candidate count, and the
// same exact-oracle statistics.  The corpus is the paper's worked examples
// (7-10) plus every shipped .loop file that parses to a small single nest.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/parser.h"
#include "support/parallel_for.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

constexpr int kThreadCounts[] = {2, 3, 4, 0};  // 0 = hardware concurrency

void expect_same_stats(const TraceStats& serial, const TraceStats& parallel,
                       const std::string& what) {
  EXPECT_EQ(serial.iterations, parallel.iterations) << what;
  EXPECT_EQ(serial.total_accesses, parallel.total_accesses) << what;
  EXPECT_EQ(serial.distinct_total, parallel.distinct_total) << what;
  EXPECT_EQ(serial.distinct, parallel.distinct) << what;
  EXPECT_EQ(serial.reuse_total, parallel.reuse_total) << what;
  EXPECT_EQ(serial.reuse, parallel.reuse) << what;
  EXPECT_EQ(serial.mws_total, parallel.mws_total) << what;
  EXPECT_EQ(serial.mws, parallel.mws) << what;
}

// The full differential check for one nest: chunked simulation, the row
// minimizer under every strategy, and the end-to-end driver.
void check_nest(const LoopNest& nest, const std::string& name) {
  TraceStats serial = simulate(nest);
  for (int threads : kThreadCounts) {
    expect_same_stats(serial, simulate(nest, threads),
                      name + " simulate threads=" + std::to_string(threads));
  }

  using Strategy = MinimizerOptions::Strategy;
  for (Strategy strategy :
       {Strategy::kExhaustive, Strategy::kGreedyW, Strategy::kBranchAndBound}) {
    MinimizerOptions ref;
    ref.strategy = strategy;
    ref.threads = 1;
    auto serial_min = minimize_mws_2d(nest, ref);
    for (int threads : kThreadCounts) {
      MinimizerOptions par = ref;
      par.threads = threads;
      auto parallel_min = minimize_mws_2d(nest, par);
      std::string what = name + " minimize strategy=" +
                         std::to_string(static_cast<int>(strategy)) +
                         " threads=" + std::to_string(threads);
      ASSERT_EQ(serial_min.has_value(), parallel_min.has_value()) << what;
      if (!serial_min) continue;
      EXPECT_EQ(serial_min->transform, parallel_min->transform) << what;
      EXPECT_EQ(serial_min->predicted_mws, parallel_min->predicted_mws) << what;
      EXPECT_EQ(serial_min->candidates, parallel_min->candidates) << what;
    }
  }

  MinimizerOptions ref;
  ref.threads = 1;
  OptimizeResult serial_opt = optimize_locality(nest, ref);
  for (int threads : kThreadCounts) {
    MinimizerOptions par = ref;
    par.threads = threads;
    OptimizeResult parallel_opt = optimize_locality(nest, par);
    std::string what = name + " optimize threads=" + std::to_string(threads);
    EXPECT_EQ(serial_opt.transform, parallel_opt.transform) << what;
    EXPECT_EQ(serial_opt.method, parallel_opt.method) << what;
    EXPECT_EQ(serial_opt.predicted_mws, parallel_opt.predicted_mws) << what;
    expect_same_stats(simulate_transformed(nest, serial_opt.transform),
                      simulate_transformed(nest, parallel_opt.transform), what);
  }
}

TEST(ParallelSearch, PaperExample7) { check_nest(codes::example_7(), "ex7"); }
TEST(ParallelSearch, PaperExample8) { check_nest(codes::example_8(), "ex8"); }
TEST(ParallelSearch, PaperExample9Nonuniform) {
  // Example 6/9 family: non-uniform references exercise the driver's
  // permutation path rather than the row minimizer.
  check_nest(codes::example_6(), "ex6");
}
TEST(ParallelSearch, PaperExample10ThreeDeep) {
  check_nest(codes::example_5(), "ex10");
}

// ---------------------------------------------------------------------------
// Every shipped .loop file that parses to a single nest of depth <= 3 with
// small bounds joins the corpus.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string loops_dir() {
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (!read_file(std::string(base) + "matmult.loop").empty()) return base;
  }
  return "";
}

TEST(ParallelSearch, ShippedLoopFileCorpus) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  constexpr Int kIterationCap = 40'000;
  int covered = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    std::string name = entry.path().filename().string();
    Program program = parse_program(read_file(entry.path().string()));
    if (program.phase_count() != 1) continue;  // differential corpus: one nest
    const LoopNest& nest = program.phase_nest(0);
    if (nest.depth() > 3 || nest.iteration_count() > kIterationCap) continue;
    check_nest(nest, name);
    ++covered;
  }
  // The shipped set must keep feeding the corpus; a handful of files are
  // expected to qualify today (fir, iir, 2point, example8, row_sum, ...).
  EXPECT_GE(covered, 5) << "corpus shrank: too few .loop files qualified";
}

// ---------------------------------------------------------------------------
// The threading layer itself.

TEST(ParallelSearch, ParallelChunksPartitionsInOrder) {
  std::vector<std::pair<Int, Int>> ranges(8, {-1, -1});
  parallel_chunks(100, 4, 1, [&](size_t chunk, Int begin, Int end) {
    ranges[chunk] = {begin, end};
  });
  Int expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    if (begin < 0) continue;
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 100);
}

TEST(ParallelSearch, ParallelChunksSerialFallback) {
  int calls = 0;
  parallel_chunks(10, 1, 1, [&](size_t chunk, Int begin, Int end) {
    ++calls;
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelSearch, ParallelChunksPropagatesLowestChunkError) {
  try {
    parallel_chunks(64, 4, 1, [&](size_t chunk, Int, Int) {
      if (chunk >= 1) throw std::runtime_error("chunk " + std::to_string(chunk));
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");  // lowest failing chunk wins
  }
}

TEST(ParallelSearch, ParallelMapOrdersResults) {
  auto squares = parallel_map<Int>(257, 4, [](Int i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (Int i = 0; i < 257; ++i) EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
}

TEST(ParallelSearch, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
  EXPECT_EQ(resolve_threads(-3), 1);
}

}  // namespace
}  // namespace lmre
