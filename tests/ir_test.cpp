#include <gtest/gtest.h>

#include "codes/examples.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "support/error.h"

namespace lmre {
namespace {

LoopNest two_ref_nest() {
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 20);
  ArrayId a = b.array("A", {10, 20});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 2});
  return b.build();
}

TEST(Builder, BuildsValidNest) {
  LoopNest nest = two_ref_nest();
  EXPECT_EQ(nest.depth(), 2u);
  EXPECT_EQ(nest.iteration_count(), 200);
  EXPECT_EQ(nest.arrays().size(), 1u);
  EXPECT_EQ(nest.statements().size(), 1u);
  EXPECT_EQ(nest.all_refs().size(), 2u);
  EXPECT_EQ(nest.refs_to(0).size(), 2u);
}

TEST(Builder, RejectsEmptyLoopRange) {
  NestBuilder b;
  EXPECT_THROW(b.loop("i", 5, 4), InvalidArgument);
}

TEST(Builder, RejectsBadExtent) {
  NestBuilder b;
  b.loop("i", 1, 4);
  EXPECT_THROW(b.array("A", {0}), InvalidArgument);
}

TEST(Builder, RejectsNoLoops) {
  NestBuilder b;
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(Validation, AccessMatrixShapeChecked) {
  NestBuilder b;
  b.loop("i", 1, 4).loop("j", 1, 4);
  ArrayId a = b.array("A", {4});  // 1-d array
  // 2-row access matrix for a 1-d array: invalid.
  b.statement().read(a, {{1, 0}, {0, 1}}, {0, 0});
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(Validation, AccessMatrixColsChecked) {
  NestBuilder b;
  b.loop("i", 1, 4);
  ArrayId a = b.array("A", {4});
  b.statement().read(a, {{1, 0}}, {0});  // 2 cols for a 1-deep nest
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(Validation, OffsetLengthChecked) {
  NestBuilder b;
  b.loop("i", 1, 4).loop("j", 1, 4);
  ArrayId a = b.array("A", {4, 4});
  b.statement().read(a, {{1, 0}, {0, 1}}, {0});  // short offset
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(ArrayRef, IndexAt) {
  LoopNest nest = two_ref_nest();
  ArrayRef read = nest.all_refs()[1];  // all_refs() returns by value
  EXPECT_EQ(read.index_at(IntVec{5, 7}), (IntVec{4, 9}));
}

TEST(ArrayRef, UniformlyGeneratedWith) {
  LoopNest nest = two_ref_nest();
  auto refs = nest.all_refs();
  EXPECT_TRUE(refs[0].uniformly_generated_with(refs[1]));
  LoopNest nu = codes::example_6();
  auto nrefs = nu.all_refs();
  EXPECT_FALSE(nrefs[0].uniformly_generated_with(nrefs[1]));
}

TEST(Array, DeclaredSize) {
  Array a{"A", {10, 20}};
  EXPECT_EQ(a.declared_size(), 200);
  Array b{"B", {5}};
  EXPECT_EQ(b.declared_size(), 5);
}

TEST(LoopNest, DefaultMemoryCountsReferencedArraysOnce) {
  NestBuilder b;
  b.loop("i", 1, 2);
  ArrayId x = b.array("X", {100});
  b.array("unused", {999});
  b.statement().read(x, {{1}}, {0}).read(x, {{1}}, {1});
  LoopNest nest = b.build();
  EXPECT_EQ(nest.default_memory(), 100);  // unused array not counted
}

TEST(Printer, RendersNest) {
  std::string s = print_nest(two_ref_nest());
  EXPECT_NE(s.find("for (i = 1; i <= 10; ++i)"), std::string::npos);
  EXPECT_NE(s.find("for (j = 1; j <= 20; ++j)"), std::string::npos);
  EXPECT_NE(s.find("A[i][j] = "), std::string::npos);
  EXPECT_NE(s.find("A[i - 1][j + 2]"), std::string::npos);
}

TEST(Printer, RendersLinearizedSubscripts) {
  std::string s = print_nest(codes::example_8());
  EXPECT_NE(s.find("X[2*i + 5*j + 1]"), std::string::npos);
  EXPECT_NE(s.find("X[2*i + 5*j + 5]"), std::string::npos);
}

TEST(Printer, PrintRef) {
  LoopNest nest = two_ref_nest();
  EXPECT_EQ(print_ref(nest, nest.all_refs()[1]), "A[i - 1][j + 2]");
}

}  // namespace
}  // namespace lmre
