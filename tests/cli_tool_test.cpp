#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "ir/parser.h"
#include "support/error.h"
#include "tools/commands.h"

namespace lmre::tools {
namespace {

const char* kExample8 = R"(
  for i = 1 to 25
    for j = 1 to 10
      X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
)";

// The CLI's exit-code contract is the named enum in support/error.h; the
// numeric values are part of the tool's public interface (scripts match on
// them), so pin both directions of the mapping.
TEST(ExitCodeConvention, NamedValuesAreStable) {
  EXPECT_EQ(to_int(ExitCode::kSuccess), 0);
  EXPECT_EQ(to_int(ExitCode::kFailure), 1);
  EXPECT_EQ(to_int(ExitCode::kUsage), 2);
  EXPECT_EQ(to_int(ExitCode::kDiagnostics), 3);
  EXPECT_EQ(to_int(ExitCode::kOverflow), 4);
  EXPECT_STREQ(to_string(ExitCode::kSuccess), "success");
  EXPECT_STREQ(to_string(ExitCode::kFailure), "failure");
  EXPECT_STREQ(to_string(ExitCode::kUsage), "usage");
  EXPECT_STREQ(to_string(ExitCode::kDiagnostics), "diagnostics");
  EXPECT_STREQ(to_string(ExitCode::kOverflow), "overflow");
}

TEST(CliAnalyze, SingleNest) {
  std::ostringstream out;
  EXPECT_EQ(cmd_analyze(kExample8, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("flow (3, -2)"), std::string::npos);
  EXPECT_NE(s.find("anti (2, 0)"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(CliAnalyze, MultiPhase) {
  std::ostringstream out;
  ExitCode rc = cmd_analyze(R"(
    array A[8];
    phase p { for i = 1 to 8  A[i] = 0; }
    phase c { for i = 1 to 8  B[i] = A[i]; }
  )",
                            out);
  EXPECT_EQ(rc, ExitCode::kSuccess);
  EXPECT_NE(out.str().find("whole-program window: 8"), std::string::npos);
}

TEST(CliAnalyze, ParseErrorPropagates) {
  // run_cli formats ParseError as file:line:col (exit kDiagnostics); the
  // cmd_* functions let it propagate instead of flattening it to text.
  std::ostringstream out;
  EXPECT_THROW(cmd_analyze("for i = 1 to\n", out), ParseError);
}

TEST(CliAnalyze, LintErrorsAbortWithDiagnostics) {
  std::ostringstream out;
  ExitCode rc = cmd_analyze("array A[4];\nfor i = 1 to 10\n  use A[i];\n", out);
  EXPECT_EQ(rc, ExitCode::kDiagnostics);
  EXPECT_NE(out.str().find("[LMRE-E001]"), std::string::npos);
}

TEST(CliOptimize, FindsPaperTransform) {
  std::ostringstream out;
  EXPECT_EQ(cmd_optimize(kExample8, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("[2 3; 1 1]"), std::string::npos);
  EXPECT_NE(s.find("44 -> 21"), std::string::npos);
}

TEST(CliDistances, Table) {
  std::ostringstream out;
  EXPECT_EQ(cmd_distances(kExample8, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("(<, >)"), std::string::npos);  // (3,-2) and (5,-2)
  EXPECT_NE(s.find("(<, =)"), std::string::npos);  // (2,0)
}

TEST(CliMisscurve, ExplicitCapacities) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {64}, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("cold misses (distinct elements): 94"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(CliMisscurve, AutoSweepIncludesKnee) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {}, out), ExitCode::kSuccess);
  EXPECT_NE(out.str().find("knee (max finite stack distance): 48"),
            std::string::npos);
}

TEST(CliSeries, EmitsCsv) {
  std::ostringstream out;
  EXPECT_EQ(cmd_series("for i = 1 to 4\n  A[i] = A[i-1];\n", out),
            ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("iteration,window"), std::string::npos);
  // 4 iterations -> 4 data lines + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(CliFigure2, Runs) {
  std::ostringstream out;
  EXPECT_EQ(cmd_figure2(out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("matmult"), std::string::npos);
  EXPECT_NE(s.find("273"), std::string::npos);
}

TEST(CliDispatcher, UnknownCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"bogus"}, out, err), ExitCode::kUsage);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(CliDispatcher, NoArgs) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({}, out, err), ExitCode::kUsage);
}

TEST(CliDispatcher, MissingFileArgument) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze"}, out, err), ExitCode::kUsage);
}

TEST(CliDispatcher, UnreadableFile) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze", "/nonexistent/nest.loop"}, out, err),
            ExitCode::kFailure);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

const char* kOutOfBounds = "array A[4];\nfor i = 1 to 10\n  use A[i];\n";

TEST(CliLint, CleanInputExitsZero) {
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kExample8, {}, out), ExitCode::kSuccess);
  EXPECT_EQ(out.str().find(" error: "), std::string::npos);
}

TEST(CliLint, OutOfBoundsFixtureReportsE001) {
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kOutOfBounds, {}, out, "bad.loop"), ExitCode::kDiagnostics);
  std::string s = out.str();
  EXPECT_NE(s.find("bad.loop:3:7: error:"), std::string::npos);
  EXPECT_NE(s.find("[LMRE-E001]"), std::string::npos);
}

TEST(CliLint, JsonEmitsEnvelopedDiagnostics) {
  std::ostringstream out;
  LintCliOptions opts;
  opts.json = true;
  EXPECT_EQ(cmd_lint(kOutOfBounds, opts, out, "bad.loop"),
            ExitCode::kDiagnostics);
  std::string s = out.str();
  // The versioned envelope wraps a result object holding the diagnostics
  // array; machine-checkable fields present.
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(s.find("\"tool\": \"lmre\""), std::string::npos);
  EXPECT_NE(s.find("\"command\": \"lint\""), std::string::npos);
  EXPECT_NE(s.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(s.find("\"id\": \"LMRE-E001\""), std::string::npos);
  EXPECT_NE(s.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("\"file\": \"bad.loop\""), std::string::npos);
}

TEST(CliLint, StrictTurnsWarningsIntoNonzeroExit) {
  // Unused array: a warning, so kSuccess normally and kDiagnostics under
  // --strict.
  const char* src = "array B[5];\nfor i = 1 to 3\n  use A[i];\n";
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(src, {}, out), ExitCode::kSuccess);
  LintCliOptions strict;
  strict.strict = true;
  std::ostringstream out2;
  EXPECT_EQ(cmd_lint(src, strict, out2), ExitCode::kDiagnostics);
}

TEST(CliLint, ExplicitPlanIsRecertified) {
  // Interchange is illegal for distance (1, -1): documented ID, exit 3.
  const char* src = "for i = 1 to 6\n  for j = 1 to 6\n    A[i][j] = A[i-1][j+1];\n";
  LintCliOptions opts;
  opts.plan = IntMat{{0, 1}, {1, 0}};
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(src, opts, out), ExitCode::kDiagnostics);
  EXPECT_NE(out.str().find("[LMRE-E013]"), std::string::npos);
}

TEST(CliLint, AuditedOptimizerPlanCertifies) {
  LintCliOptions opts;
  opts.audit_plan = true;
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kExample8, opts, out), ExitCode::kSuccess);
  EXPECT_NE(out.str().find("[LMRE-N016]"), std::string::npos);
}

std::string write_temp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream(path) << content;
  return path;
}

TEST(CliDispatcher, ParseErrorFormatsFileLineColumn) {
  std::string path = write_temp("truncated.loop", "for i = 1 to\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze", path}, out, err), ExitCode::kDiagnostics);
  // The input ends mid-statement, so the position is end-of-input: 2:1.
  EXPECT_NE(err.str().find(path + ":2:1: error:"), std::string::npos);
}

TEST(CliDispatcher, LintVerbWithPlanFlag) {
  std::string path = write_temp(
      "skewed.loop", "for i = 1 to 6\n  for j = 1 to 6\n    A[i][j] = A[i-1][j+1];\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"lint", "--plan=0 1; 1 0", path}, out, err),
            ExitCode::kDiagnostics);
  EXPECT_NE(out.str().find("[LMRE-E013]"), std::string::npos);
}

TEST(CliDispatcher, LintJsonVerb) {
  std::string path = write_temp("oob.loop", kOutOfBounds);
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"lint", "--json", path}, out, err),
            ExitCode::kDiagnostics);
  EXPECT_EQ(out.str().front(), '{');
  EXPECT_NE(out.str().find("\"command\": \"lint\""), std::string::npos);
  EXPECT_NE(out.str().find("\"id\": \"LMRE-E001\""), std::string::npos);
}

// The verify verb's exit-code contract: 0 certified, 2 bad plan spec,
// 3 refuted/unproven, 1 structurally unsupported input.

TEST(CliVerify, AuditModeCertifiesOptimizerPlan) {
  VerifyCliOptions opts;
  std::ostringstream out;
  EXPECT_EQ(cmd_verify(kExample8, opts, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("optimize plan (method"), std::string::npos);
  EXPECT_NE(s.find("certified: yes"), std::string::npos);
  EXPECT_NE(s.find("[LMRE-N016]"), std::string::npos);
  EXPECT_NE(s.find("checker: ok"), std::string::npos);
}

TEST(CliVerify, ReversalRefutedWithWitnessExitsDiagnostics) {
  std::string path = write_temp(
      "skew_verify.loop",
      "for i = 1 to 6\n  for j = 1 to 6\n    A[i][j] = A[i-1][j+1];\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"verify", "--plan=0 1; 1 0", path}, out, err),
            ExitCode::kDiagnostics);
  EXPECT_NE(out.str().find("[LMRE-E013]"), std::string::npos);
  EXPECT_NE(out.str().find("[LMRE-E019]"), std::string::npos);
  EXPECT_NE(out.str().find("certified: no"), std::string::npos);
}

TEST(CliVerify, BadPlanSpecExitsUsage) {
  std::string path = write_temp("plain_verify.loop", kExample8);
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"verify", "--plan=banana", path}, out, err),
            ExitCode::kUsage);
}

TEST(CliVerify, MultiPhaseSourceExitsFailure) {
  VerifyCliOptions opts;
  std::ostringstream out;
  ExitCode rc = cmd_verify(R"(
    array A[8];
    phase p { for i = 1 to 8  A[i] = 0; }
    phase c { for i = 1 to 8  B[i] = A[i]; }
  )",
                           opts, out);
  EXPECT_EQ(rc, ExitCode::kFailure);
  EXPECT_NE(out.str().find("single-nest"), std::string::npos);
}

TEST(CliVerify, JsonEmitsCertificateAndCheckerVerdict) {
  std::string path = write_temp("plain_verify.loop", kExample8);
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"verify", "--json", "--plan=1 0; 0 1", path}, out, err),
            ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"command\": \"verify\""), std::string::npos);
  EXPECT_NE(s.find("\"certified\": true"), std::string::npos);
  EXPECT_NE(s.find("\"checker\""), std::string::npos);
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
}

TEST(CliAnalyzeJson, EnvelopeWrapsResult) {
  std::ostringstream out;
  EXPECT_EQ(cmd_analyze_json(kExample8, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(s.find("\"command\": \"analyze\""), std::string::npos);
  EXPECT_NE(s.find("\"mws_exact\": 44"), std::string::npos);
}

TEST(CliOptimizeJson, EnvelopeWrapsResult) {
  std::ostringstream out;
  EXPECT_EQ(cmd_optimize_json(kExample8, out), ExitCode::kSuccess);
  std::string s = out.str();
  EXPECT_NE(s.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(s.find("\"command\": \"optimize\""), std::string::npos);
  EXPECT_NE(s.find("\"method\": \"row-minimizer\""), std::string::npos);
}

// ---- batch verb ------------------------------------------------------------

TEST(CliBatch, DirectoryExpansionAndTextTable) {
  std::string dir = ::testing::TempDir() + "batch_text";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/b.loop") << kExample8;
  std::ofstream(dir + "/a.loop") << "for i = 1 to 4\n  A[i] = A[i-1];\n";
  std::ofstream(dir + "/notes.txt") << "not a loop file";
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"batch", dir}, out, err), ExitCode::kSuccess);
  std::string s = out.str();
  // Sorted *.loop only; the .txt is skipped.
  size_t a = s.find("a.loop"), b = s.find("b.loop");
  EXPECT_NE(a, std::string::npos);
  EXPECT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_EQ(s.find("notes.txt"), std::string::npos);
  EXPECT_NE(s.find("2 files, 2 ok"), std::string::npos);
}

TEST(CliBatch, ExitCodeIsWorstPerFileStatus) {
  std::string dir = ::testing::TempDir() + "batch_worst";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/good.loop") << "for i = 1 to 4\n  A[i] = A[i-1];\n";
  std::ofstream(dir + "/bad.loop") << kOutOfBounds;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"batch", dir}, out, err), ExitCode::kDiagnostics);
  EXPECT_NE(out.str().find("diagnostics"), std::string::npos);
}

TEST(CliBatch, MissingInputFails) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"batch", "/nonexistent/corpus"}, out, err),
            ExitCode::kFailure);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST(CliBatch, JsonColdAndWarmRunsAreByteIdentical) {
  std::string dir = ::testing::TempDir() + "batch_json";
  std::string cache = ::testing::TempDir() + "batch_json_cache";
  std::filesystem::remove_all(cache);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/x.loop") << kExample8;
  std::ofstream(dir + "/y.loop") << "for i = 1 to 4\n  A[i] = A[i-1];\n";
  std::string metrics = ::testing::TempDir() + "batch_json_metrics.json";

  std::ostringstream cold, warm, err;
  EXPECT_EQ(run_cli({"batch", "--json", "--cache-dir=" + cache, dir}, cold, err),
            ExitCode::kSuccess);
  EXPECT_EQ(run_cli({"batch", "--json", "--threads=4", "--cache-dir=" + cache,
                     "--metrics=" + metrics, dir},
                    warm, err),
            ExitCode::kSuccess);
  // Warm run at a different thread count: byte-identical result document.
  EXPECT_EQ(cold.str(), warm.str());
  EXPECT_NE(cold.str().find("\"command\": \"batch\""), std::string::npos);
  EXPECT_NE(cold.str().find("\"schema_version\": 2"), std::string::npos);

  // The warm run's metrics report every file as a (disk) cache hit.
  std::ifstream mf(metrics);
  ASSERT_TRUE(mf.good());
  std::stringstream ms;
  ms << mf.rdbuf();
  EXPECT_NE(ms.str().find("\"command\": \"batch-metrics\""), std::string::npos);
  EXPECT_NE(ms.str().find("\"cache.hit_rate\": 1"), std::string::npos);
  EXPECT_NE(ms.str().find("\"runs.cached\": 2"), std::string::npos);
}

TEST(CliVersion, TextReportsSchemaAndBuild) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"version"}, out, err), ExitCode::kSuccess);
  EXPECT_NE(out.str().find("schema_version 2"), std::string::npos);
  EXPECT_NE(out.str().find("build:"), std::string::npos);
  EXPECT_NE(out.str().find("C++"), std::string::npos);

  // `lmre --version` is the conventional spelling of the same command.
  std::ostringstream dashed;
  EXPECT_EQ(run_cli({"--version"}, dashed, err), ExitCode::kSuccess);
  EXPECT_EQ(dashed.str(), out.str());
}

TEST(CliVersion, JsonUsesTheStandardEnvelope) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"version", "--json"}, out, err), ExitCode::kSuccess);
  EXPECT_NE(out.str().find("\"command\": \"version\""), std::string::npos);
  EXPECT_NE(out.str().find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(out.str().find("\"compiler\""), std::string::npos);
  EXPECT_NE(out.str().find("\"cxx_standard\""), std::string::npos);
}

TEST(CliServe, RejectsMissingTransport) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"serve"}, out, err), ExitCode::kUsage);
  EXPECT_NE(err.str().find("socket path, --tcp=HOST:PORT, or --stdio"),
            std::string::npos);
}

TEST(CliServe, RejectsMultipleTransports) {
  // Each pair of transports must be refused, not silently preferred.
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"serve", "/tmp/a.sock", "--stdio"}, out, err),
            ExitCode::kUsage);
  EXPECT_EQ(run_cli({"serve", "/tmp/a.sock", "--tcp=127.0.0.1:0"}, out, err),
            ExitCode::kUsage);
  EXPECT_EQ(run_cli({"serve", "--stdio", "--tcp=127.0.0.1:0"}, out, err),
            ExitCode::kUsage);
  EXPECT_NE(err.str().find("exactly one transport"), std::string::npos);
}

TEST(CliServe, ValidatesTuningFlags) {
  struct Case {
    const char* flag;
    const char* needle;
  };
  const Case cases[] = {
      {"--queue-depth=0", "--queue-depth must be >= 1"},
      {"--queue-depth=abc", "bad --queue-depth value"},
      {"--queue=0", "--queue-depth must be >= 1"},  // legacy spelling
      {"--cache-shards=0", "--cache-shards must be >= 1"},
      {"--cache-shards=x", "bad --cache-shards value"},
      {"--cache-ttl=-1", "--cache-ttl must be >= 0"},
      {"--cache-ttl=soon", "bad --cache-ttl value"},
      {"--cache-bytes=-5", "--cache-bytes must be >= 0"},
      {"--cache-bytes=big", "bad --cache-bytes value"},
      {"--tcp=127.0.0.1", "bad --tcp value"},       // no port
      {"--tcp=127.0.0.1:99999", "bad --tcp value"},  // port out of range
  };
  for (const Case& c : cases) {
    std::ostringstream out, err;
    EXPECT_EQ(run_cli({"serve", "--stdio", c.flag}, out, err),
              ExitCode::kUsage)
        << c.flag;
    EXPECT_NE(err.str().find(c.needle), std::string::npos)
        << c.flag << " -> " << err.str();
  }
}

TEST(CliRequest, UnreachableSocketFails) {
  std::string missing = ::testing::TempDir() + "no_such_server.sock";
  std::string file = ::testing::TempDir() + "request_input.loop";
  std::ofstream(file) << kExample8;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"request", missing, file}, out, err), ExitCode::kFailure);
  EXPECT_NE(err.str().find("cannot connect"), std::string::npos);
}

TEST(CliRequest, UnreachableTcpServerFails) {
  // Port 1 on loopback: privileged and almost certainly unbound, so the
  // connect is refused rather than hanging.
  std::string file = ::testing::TempDir() + "request_tcp_input.loop";
  std::ofstream(file) << kExample8;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"request", "--tcp=127.0.0.1:1", file}, out, err),
            ExitCode::kFailure);
  EXPECT_NE(err.str().find("cannot connect"), std::string::npos);
}

TEST(CliRequest, TcpRejectsBadAddressAndExtraPositional) {
  std::string file = ::testing::TempDir() + "request_tcp_input.loop";
  std::ofstream(file) << kExample8;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"request", "--tcp=nowhere", file}, out, err),
            ExitCode::kUsage);
  EXPECT_NE(err.str().find("bad --tcp value"), std::string::npos);
  // With --tcp the socket positional must be dropped.
  std::ostringstream out2, err2;
  EXPECT_EQ(
      run_cli({"request", "--tcp=127.0.0.1:1", "/tmp/a.sock", file}, out2,
              err2),
      ExitCode::kUsage);
}

}  // namespace
}  // namespace lmre::tools
