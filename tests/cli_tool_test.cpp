#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "ir/parser.h"
#include "tools/commands.h"

namespace lmre::tools {
namespace {

const char* kExample8 = R"(
  for i = 1 to 25
    for j = 1 to 10
      X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
)";

TEST(CliAnalyze, SingleNest) {
  std::ostringstream out;
  EXPECT_EQ(cmd_analyze(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("flow (3, -2)"), std::string::npos);
  EXPECT_NE(s.find("anti (2, 0)"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(CliAnalyze, MultiPhase) {
  std::ostringstream out;
  int rc = cmd_analyze(R"(
    array A[8];
    phase p { for i = 1 to 8  A[i] = 0; }
    phase c { for i = 1 to 8  B[i] = A[i]; }
  )",
                       out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("whole-program window: 8"), std::string::npos);
}

TEST(CliAnalyze, ParseErrorPropagates) {
  // run_cli formats ParseError as file:line:col (exit 3); the cmd_*
  // functions let it propagate instead of flattening it to text.
  std::ostringstream out;
  EXPECT_THROW(cmd_analyze("for i = 1 to\n", out), ParseError);
}

TEST(CliAnalyze, LintErrorsAbortWithDiagnostics) {
  std::ostringstream out;
  int rc = cmd_analyze("array A[4];\nfor i = 1 to 10\n  use A[i];\n", out);
  EXPECT_EQ(rc, 3);
  EXPECT_NE(out.str().find("[LMRE-E001]"), std::string::npos);
}

TEST(CliOptimize, FindsPaperTransform) {
  std::ostringstream out;
  EXPECT_EQ(cmd_optimize(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("[2 3; 1 1]"), std::string::npos);
  EXPECT_NE(s.find("44 -> 21"), std::string::npos);
}

TEST(CliDistances, Table) {
  std::ostringstream out;
  EXPECT_EQ(cmd_distances(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("(<, >)"), std::string::npos);  // (3,-2) and (5,-2)
  EXPECT_NE(s.find("(<, =)"), std::string::npos);  // (2,0)
}

TEST(CliMisscurve, ExplicitCapacities) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {64}, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("cold misses (distinct elements): 94"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(CliMisscurve, AutoSweepIncludesKnee) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {}, out), 0);
  EXPECT_NE(out.str().find("knee (max finite stack distance): 48"),
            std::string::npos);
}

TEST(CliSeries, EmitsCsv) {
  std::ostringstream out;
  EXPECT_EQ(cmd_series("for i = 1 to 4\n  A[i] = A[i-1];\n", out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("iteration,window"), std::string::npos);
  // 4 iterations -> 4 data lines + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(CliFigure2, Runs) {
  std::ostringstream out;
  EXPECT_EQ(cmd_figure2(out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("matmult"), std::string::npos);
  EXPECT_NE(s.find("273"), std::string::npos);
}

TEST(CliDispatcher, UnknownCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"bogus"}, out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(CliDispatcher, NoArgs) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({}, out, err), 2);
}

TEST(CliDispatcher, MissingFileArgument) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze"}, out, err), 2);
}

TEST(CliDispatcher, UnreadableFile) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze", "/nonexistent/nest.loop"}, out, err), 1);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

const char* kOutOfBounds = "array A[4];\nfor i = 1 to 10\n  use A[i];\n";

TEST(CliLint, CleanInputExitsZero) {
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kExample8, {}, out), 0);
  EXPECT_EQ(out.str().find(" error: "), std::string::npos);
}

TEST(CliLint, OutOfBoundsFixtureReportsE001) {
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kOutOfBounds, {}, out, "bad.loop"), 3);
  std::string s = out.str();
  EXPECT_NE(s.find("bad.loop:3:7: error:"), std::string::npos);
  EXPECT_NE(s.find("[LMRE-E001]"), std::string::npos);
}

TEST(CliLint, JsonEmitsDiagnosticsArray) {
  std::ostringstream out;
  LintCliOptions opts;
  opts.json = true;
  EXPECT_EQ(cmd_lint(kOutOfBounds, opts, out, "bad.loop"), 3);
  std::string s = out.str();
  // A JSON array of diagnostic objects, machine-checkable fields present.
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '[');
  EXPECT_EQ(s[s.size() - 2], ']');  // trailing newline after the array
  EXPECT_NE(s.find("\"id\": \"LMRE-E001\""), std::string::npos);
  EXPECT_NE(s.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("\"file\": \"bad.loop\""), std::string::npos);
}

TEST(CliLint, StrictTurnsWarningsIntoNonzeroExit) {
  // Unused array: a warning, so exit 0 normally and 3 under --strict.
  const char* src = "array B[5];\nfor i = 1 to 3\n  use A[i];\n";
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(src, {}, out), 0);
  LintCliOptions strict;
  strict.strict = true;
  std::ostringstream out2;
  EXPECT_EQ(cmd_lint(src, strict, out2), 3);
}

TEST(CliLint, ExplicitPlanIsRecertified) {
  // Interchange is illegal for distance (1, -1): documented ID, exit 3.
  const char* src = "for i = 1 to 6\n  for j = 1 to 6\n    A[i][j] = A[i-1][j+1];\n";
  LintCliOptions opts;
  opts.plan = IntMat{{0, 1}, {1, 0}};
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(src, opts, out), 3);
  EXPECT_NE(out.str().find("[LMRE-E013]"), std::string::npos);
}

TEST(CliLint, AuditedOptimizerPlanCertifies) {
  LintCliOptions opts;
  opts.audit_plan = true;
  std::ostringstream out;
  EXPECT_EQ(cmd_lint(kExample8, opts, out), 0);
  EXPECT_NE(out.str().find("[LMRE-N016]"), std::string::npos);
}

std::string write_temp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream(path) << content;
  return path;
}

TEST(CliDispatcher, ParseErrorFormatsFileLineColumn) {
  std::string path = write_temp("truncated.loop", "for i = 1 to\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze", path}, out, err), 3);
  // The input ends mid-statement, so the position is end-of-input: 2:1.
  EXPECT_NE(err.str().find(path + ":2:1: error:"), std::string::npos);
}

TEST(CliDispatcher, LintVerbWithPlanFlag) {
  std::string path = write_temp(
      "skewed.loop", "for i = 1 to 6\n  for j = 1 to 6\n    A[i][j] = A[i-1][j+1];\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"lint", "--plan=0 1; 1 0", path}, out, err), 3);
  EXPECT_NE(out.str().find("[LMRE-E013]"), std::string::npos);
}

TEST(CliDispatcher, LintJsonVerb) {
  std::string path = write_temp("oob.loop", kOutOfBounds);
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"lint", "--json", path}, out, err), 3);
  EXPECT_EQ(out.str().front(), '[');
  EXPECT_NE(out.str().find("\"id\": \"LMRE-E001\""), std::string::npos);
}

}  // namespace
}  // namespace lmre::tools
