#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

const char* kExample8 = R"(
  for i = 1 to 25
    for j = 1 to 10
      X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
)";

TEST(CliAnalyze, SingleNest) {
  std::ostringstream out;
  EXPECT_EQ(cmd_analyze(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("flow (3, -2)"), std::string::npos);
  EXPECT_NE(s.find("anti (2, 0)"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(CliAnalyze, MultiPhase) {
  std::ostringstream out;
  int rc = cmd_analyze(R"(
    array A[8];
    phase p { for i = 1 to 8  A[i] = 0; }
    phase c { for i = 1 to 8  B[i] = A[i]; }
  )",
                       out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.str().find("whole-program window: 8"), std::string::npos);
}

TEST(CliAnalyze, ParseErrorReturnsNonzero) {
  std::ostringstream out;
  EXPECT_EQ(cmd_analyze("for i = 1 to\n", out), 1);
  EXPECT_NE(out.str().find("parse error"), std::string::npos);
}

TEST(CliOptimize, FindsPaperTransform) {
  std::ostringstream out;
  EXPECT_EQ(cmd_optimize(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("[2 3; 1 1]"), std::string::npos);
  EXPECT_NE(s.find("44 -> 21"), std::string::npos);
}

TEST(CliDistances, Table) {
  std::ostringstream out;
  EXPECT_EQ(cmd_distances(kExample8, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("(<, >)"), std::string::npos);  // (3,-2) and (5,-2)
  EXPECT_NE(s.find("(<, =)"), std::string::npos);  // (2,0)
}

TEST(CliMisscurve, ExplicitCapacities) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {64}, out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("cold misses (distinct elements): 94"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(CliMisscurve, AutoSweepIncludesKnee) {
  std::ostringstream out;
  EXPECT_EQ(cmd_misscurve(kExample8, {}, out), 0);
  EXPECT_NE(out.str().find("knee (max finite stack distance): 48"),
            std::string::npos);
}

TEST(CliSeries, EmitsCsv) {
  std::ostringstream out;
  EXPECT_EQ(cmd_series("for i = 1 to 4\n  A[i] = A[i-1];\n", out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("iteration,window"), std::string::npos);
  // 4 iterations -> 4 data lines + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(CliFigure2, Runs) {
  std::ostringstream out;
  EXPECT_EQ(cmd_figure2(out), 0);
  std::string s = out.str();
  EXPECT_NE(s.find("matmult"), std::string::npos);
  EXPECT_NE(s.find("273"), std::string::npos);
}

TEST(CliDispatcher, UnknownCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"bogus"}, out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(CliDispatcher, NoArgs) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({}, out, err), 2);
}

TEST(CliDispatcher, MissingFileArgument) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze"}, out, err), 2);
}

TEST(CliDispatcher, UnreadableFile) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"analyze", "/nonexistent/nest.loop"}, out, err), 1);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace lmre::tools
