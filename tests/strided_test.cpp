#include <gtest/gtest.h>

#include <set>

#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Strided, TouchesExactlyTheStridedElements) {
  // for i = 1 to 10 step 3: touches A[1], A[4], A[7], A[10].
  NestBuilder b;
  b.loop_strided("i", 1, 10, 3);
  ArrayId a = b.array("A", {11});
  b.statement().read(a, {{1}}, {0});
  LoopNest nest = b.build();
  EXPECT_EQ(nest.iteration_count(), 4);
  std::set<Int> touched;
  visit_iterations(nest, nullptr, [&](Int, const IntVec& iter) {
    touched.insert(nest.all_refs()[0].index_at(iter)[0]);
  });
  EXPECT_EQ(touched, (std::set<Int>{1, 4, 7, 10}));
}

TEST(Strided, NormalizationPreservesSemantics) {
  // Strided loop over even elements == explicit 2*i formulation.
  NestBuilder b1;
  b1.loop_strided("i", 0, 19, 2).loop("j", 1, 5);
  ArrayId a1 = b1.array("A", {20, 5});
  b1.statement()
      .write(a1, {{1, 0}, {0, 1}}, {0, -1})
      .read(a1, {{1, 0}, {0, 1}}, {-2, -1});
  LoopNest strided = b1.build();

  NestBuilder b2;
  b2.loop("i", 0, 9).loop("j", 1, 5);
  ArrayId a2 = b2.array("A", {20, 5});
  b2.statement()
      .write(a2, {{2, 0}, {0, 1}}, {0, -1})
      .read(a2, {{2, 0}, {0, 1}}, {-2, -1});
  LoopNest manual = b2.build();

  TraceStats s1 = simulate(strided), s2 = simulate(manual);
  EXPECT_EQ(s1.distinct_total, s2.distinct_total);
  EXPECT_EQ(s1.mws_total, s2.mws_total);
  EXPECT_EQ(s1.iterations, s2.iterations);
}

TEST(Strided, HiNotOnStrideGrid) {
  // for i = 1 to 9 step 3: 1, 4, 7 (9 is not reached... 1+3k <= 9 -> k <= 2).
  NestBuilder b;
  b.loop_strided("i", 1, 9, 3);
  ArrayId a = b.array("A", {10});
  b.statement().read(a, {{1}}, {0});
  EXPECT_EQ(b.build().iteration_count(), 3);
}

TEST(Strided, RejectsBadStep) {
  NestBuilder b;
  EXPECT_THROW(b.loop_strided("i", 1, 10, 0), InvalidArgument);
  EXPECT_THROW(b.loop_strided("i", 1, 10, -2), InvalidArgument);
}

TEST(Strided, DslStepKeyword) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 10 step 3
      use A[i];
  )");
  EXPECT_EQ(nest.iteration_count(), 4);
  std::set<Int> touched;
  visit_iterations(nest, nullptr, [&](Int, const IntVec& iter) {
    touched.insert(nest.all_refs()[0].index_at(iter)[0]);
  });
  EXPECT_EQ(touched, (std::set<Int>{1, 4, 7, 10}));
}

TEST(Strided, DslStepWithSubscriptArithmetic) {
  // Strided outer with a coupled subscript: same window as the manual form.
  LoopNest strided = parse_nest(R"(
    for i = 2 to 16 step 2
      for j = 1 to 4
        B[i + j] = B[i + j - 2];
  )");
  LoopNest manual = parse_nest(R"(
    for i = 0 to 7
      for j = 1 to 4
        B[2*i + j + 2] = B[2*i + j];
  )");
  EXPECT_EQ(simulate(strided).mws_total, simulate(manual).mws_total);
  EXPECT_EQ(simulate(strided).distinct_total, simulate(manual).distinct_total);
}

TEST(Strided, DslRejectsBadStep) {
  EXPECT_THROW(parse_nest("for i = 1 to 9 step 0\n  use A[i];\n"), ParseError);
  EXPECT_THROW(parse_nest("for i = 1 to 9 step -2\n  use A[i];\n"), ParseError);
}

TEST(Strided, MixedStridedAndUnitLoops) {
  LoopNest nest = parse_nest(R"(
    for c = -4 to 4 step 4
      for i = 1 to 8
        use R[i + c + 10];
  )");
  EXPECT_EQ(nest.iteration_count(), 3 * 8);  // c in {-4, 0, 4}
  TraceStats s = simulate(nest);
  // Images overlap partially: c=-4 covers 7..14, c=0 covers 11..18, ...
  EXPECT_EQ(s.distinct_total, 16);
}

}  // namespace
}  // namespace lmre
