#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/parser.h"

namespace lmre {
namespace {

TEST(Parser, Example2) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 10
      for j = 1 to 10
        A[i][j] = A[i-1][j+2];
  )");
  EXPECT_EQ(nest.depth(), 2u);
  EXPECT_EQ(nest.loop_vars()[0], "i");
  ASSERT_EQ(nest.all_refs().size(), 2u);
  EXPECT_TRUE(nest.all_refs()[0].is_write());
  EXPECT_EQ(nest.all_refs()[1].offset, (IntVec{-1, 2}));
  EXPECT_EQ(nest.all_refs()[1].access, (IntMat{{1, 0}, {0, 1}}));
}

TEST(Parser, LinearizedSubscripts) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 25
      for j = 1 to 10
        X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
  )");
  ASSERT_EQ(nest.all_refs().size(), 2u);
  EXPECT_EQ(nest.all_refs()[0].access, (IntMat{{2, 5}}));
  EXPECT_EQ(nest.all_refs()[0].offset, (IntVec{1}));
  // Semantics match the builder version of Example 8.
  TraceStats parsed = simulate(nest);
  TraceStats built = simulate(codes::example_8());
  EXPECT_EQ(parsed.distinct_total, built.distinct_total);
  EXPECT_EQ(parsed.mws_total, built.mws_total);
}

TEST(Parser, UseStatementAndNegativeCoefficients) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 20
      for j = 1 to 30
        use X[2*i - 3*j + 100];
  )");
  ASSERT_EQ(nest.all_refs().size(), 1u);
  EXPECT_FALSE(nest.all_refs()[0].is_write());
  EXPECT_EQ(nest.all_refs()[0].access, (IntMat{{2, -3}}));
  EXPECT_EQ(nest.all_refs()[0].offset, (IntVec{100}));
}

TEST(Parser, LeadingMinusAndBareVariable) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 5
      for j = 1 to 5
        use A[-i + j][j];
  )");
  EXPECT_EQ(nest.all_refs()[0].access, (IntMat{{-1, 1}, {0, 1}}));
}

TEST(Parser, ExplicitArrayDeclaration) {
  LoopNest nest = parse_nest(R"(
    array A[14][13];
    for i = 1 to 10
      for j = 1 to 10
        A[i][j] = A[i-3][j+2];
  )");
  EXPECT_EQ(nest.arrays()[0].extents, (std::vector<Int>{14, 13}));
  EXPECT_EQ(nest.default_memory(), 14 * 13);
}

TEST(Parser, InfersExtents) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 10
      use B[i + 5];
  )");
  // Reach is 15 -> extent 16.
  EXPECT_EQ(nest.arrays()[0].extents, (std::vector<Int>{16}));
}

TEST(Parser, BlockBodyMultipleStatements) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 20
      for j = 1 to 20
      {
        use A[3*i + 7*j - 10];
        use A[4*i - 3*j + 60];
      }
  )");
  EXPECT_EQ(nest.statements().size(), 2u);
  TraceStats parsed = simulate(nest);
  EXPECT_EQ(parsed.distinct_total, simulate(codes::example_6()).distinct_total);
}

TEST(Parser, WriteWithConstantRhs) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 6
      A[i] = 0;
  )");
  ASSERT_EQ(nest.all_refs().size(), 1u);
  EXPECT_TRUE(nest.all_refs()[0].is_write());
}

TEST(Parser, NegativeLoopBounds) {
  LoopNest nest = parse_nest(R"(
    for c = -4 to 4
      for i = 1 to 8
        use R[i + c + 10];
  )");
  EXPECT_EQ(nest.bounds().range(0).lo, -4);
  EXPECT_EQ(nest.bounds().range(0).hi, 4);
}

TEST(Parser, Comments) {
  LoopNest nest = parse_nest(R"(
    # the paper's Example 4
    for i = 1 to 20   # outer
      for j = 1 to 10 # inner
        use A[2*i + 5*j + 1];
  )");
  EXPECT_EQ(simulate(nest).distinct_total, 80);
}

TEST(ParserError, UnknownVariable) {
  try {
    parse_nest("for i = 1 to 5\n  use A[k];\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("unknown loop variable 'k'"),
              std::string::npos);
  }
}

TEST(ParserError, EmptyRange) {
  EXPECT_THROW(parse_nest("for i = 5 to 4\n  use A[i];\n"), ParseError);
}

TEST(ParserError, ReusedLoopVariable) {
  EXPECT_THROW(parse_nest("for i = 1 to 3\n for i = 1 to 3\n  use A[i];\n"),
               ParseError);
}

TEST(ParserError, MissingSemicolon) {
  EXPECT_THROW(parse_nest("for i = 1 to 3\n  use A[i]\n"), ParseError);
}

TEST(ParserError, MissingSubscript) {
  EXPECT_THROW(parse_nest("for i = 1 to 3\n  use A;\n"), ParseError);
}

TEST(ParserError, InconsistentRank) {
  EXPECT_THROW(parse_nest(R"(
    for i = 1 to 3
    {
      use A[i];
      use A[i][i];
    }
  )"),
               ParseError);
}

TEST(ParserError, DeclarationRankMismatch) {
  EXPECT_THROW(parse_nest(R"(
    array A[5];
    for i = 1 to 3
      use A[i][i];
  )"),
               ParseError);
}

TEST(ParserError, DuplicateDeclaration) {
  EXPECT_THROW(parse_nest("array A[5]; array A[6]; for i = 1 to 2\n use A[i];"),
               ParseError);
}

TEST(ParserError, TrailingGarbage) {
  EXPECT_THROW(parse_nest("for i = 1 to 3\n  use A[i];\nextra"), ParseError);
}

TEST(ParserError, NonAffineProduct) {
  // "i*j" lexes as ident '*' ident: the term grammar rejects it.
  EXPECT_THROW(parse_nest("for i = 1 to 3\n for j = 1 to 3\n  use A[i*j];\n"),
               ParseError);
}

TEST(ParseProgram, MultiPhase) {
  Program prog = parse_program(R"(
    array A[8];
    phase produce {
      for i = 1 to 8
        A[i] = 0;
    }
    phase consume {
      for i = 1 to 8
        B[i] = A[i];
    }
  )");
  ASSERT_EQ(prog.phase_count(), 2u);
  EXPECT_EQ(prog.phase_name(0), "produce");
  EXPECT_EQ(prog.phase_name(1), "consume");
  ProgramStats s = prog.simulate();
  EXPECT_EQ(s.handoff[1], 8);  // all of A crosses the boundary
  EXPECT_EQ(s.distinct.at("A"), 8);
}

TEST(ParseProgram, SingleNestBecomesMainPhase) {
  Program prog = parse_program("for i = 1 to 4\n  use A[i];\n");
  ASSERT_EQ(prog.phase_count(), 1u);
  EXPECT_EQ(prog.phase_name(0), "main");
}

TEST(ParseProgram, LocalDeclarationsStayLocal) {
  Program prog = parse_program(R"(
    phase one {
      array T[4];
      for i = 1 to 4
        T[i] = 0;
    }
    phase two {
      for i = 1 to 4
        use U[i];
    }
  )");
  EXPECT_EQ(prog.phase_nest(0).arrays()[0].name, "T");
  EXPECT_EQ(prog.phase_nest(1).arrays()[0].name, "U");
}

TEST(ParseProgram, GlobalExtentMismatchDetected) {
  // Phase 'two' infers a larger extent for A than the global declaration...
  // actually globals are used directly, so the mismatch comes from a LOCAL
  // redeclaration.
  EXPECT_THROW(parse_program(R"(
    array A[4];
    phase one {
      for i = 1 to 4
        A[i] = 0;
    }
    phase two {
      array A[9];
      for i = 1 to 9
        use A[i];
    }
  )"),
               InvalidArgument);
}

TEST(ParseProgram, TrailingGarbageRejected) {
  EXPECT_THROW(parse_program(R"(
    phase one {
      for i = 1 to 4
        A[i] = 0;
    }
    junk
  )"),
               ParseError);
}

TEST(RoundTrip, ExamplesSurviveToDslAndBack) {
  for (auto nest : {codes::example_1a(), codes::example_2(), codes::example_3(),
                    codes::example_4(), codes::example_5(), codes::example_6(),
                    codes::example_7(), codes::example_8(), codes::example_sec23()}) {
    std::string dsl = to_dsl(nest);
    LoopNest back = parse_nest(dsl);
    TraceStats a = simulate(nest);
    TraceStats b = simulate(back);
    EXPECT_EQ(a.distinct_total, b.distinct_total) << dsl;
    EXPECT_EQ(a.mws_total, b.mws_total) << dsl;
    EXPECT_EQ(a.total_accesses, b.total_accesses) << dsl;
    EXPECT_EQ(back.default_memory(), nest.default_memory()) << dsl;
  }
}

TEST(RoundTrip, KernelsSurvive) {
  for (auto nest : {codes::kernel_two_point(8), codes::kernel_matmult(4),
                    codes::kernel_rasta_flt(10, 4, 3),
                    codes::kernel_full_search(4, 2)}) {
    LoopNest back = parse_nest(to_dsl(nest));
    EXPECT_EQ(simulate(back).mws_total, simulate(nest).mws_total);
    EXPECT_EQ(simulate(back).distinct_total, simulate(nest).distinct_total);
  }
}

// ---------------------------------------------------------------------
// Malformed-input corpus: each tests/bad_loops/*.loop starts with
//   # expect: <line>:<column> <message substring>
// and must make parse_program throw a ParseError at exactly that
// position whose message contains the substring.

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string bad_loops_dir() {
  for (const char* base : {"tests/bad_loops/", "../tests/bad_loops/",
                           "../../tests/bad_loops/", "../../../tests/bad_loops/"}) {
    if (!read_file_or_empty(std::string(base) + "missing_to.loop").empty())
      return base;
  }
  return "";
}

TEST(ParserErrorCorpus, EveryBadLoopFailsAtTheDocumentedPosition) {
  std::string dir = bad_loops_dir();
  if (dir.empty()) GTEST_SKIP() << "bad_loops corpus not found from test cwd";
  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    std::string source = read_file_or_empty(entry.path().string());
    ASSERT_FALSE(source.empty()) << entry.path();

    // Parse the "# expect: L:C message" header.
    std::istringstream header(source.substr(0, source.find('\n')));
    std::string hash, expect_kw;
    int line = 0, column = 0;
    char colon = 0;
    header >> hash >> expect_kw >> line >> colon >> column;
    ASSERT_EQ(hash, "#") << entry.path();
    ASSERT_EQ(expect_kw, "expect:") << entry.path();
    ASSERT_EQ(colon, ':') << entry.path();
    std::string fragment;
    std::getline(header >> std::ws, fragment);
    ASSERT_FALSE(fragment.empty()) << entry.path();

    try {
      parse_program(source);
      FAIL() << entry.path() << ": expected a ParseError, parsed cleanly";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << entry.path() << ": " << e.what();
      EXPECT_EQ(e.column(), column) << entry.path() << ": " << e.what();
      EXPECT_NE(e.message().find(fragment), std::string::npos)
          << entry.path() << ": " << e.what();
    }
    ++checked;
  }
  EXPECT_GE(checked, 15u) << "bad_loops corpus shrank unexpectedly";
}

}  // namespace
}  // namespace lmre
