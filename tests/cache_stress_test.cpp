// Concurrency stress for the shared ResultCache (satellite of the serve
// subsystem): many threads hammering overlapping keys through one cache
// with a live disk layer.  Designed to run under TSan (scripts/tier1.sh
// stage 3) to catch torn reads and counter races.
//
// Invariants checked:
//  * a get() either misses or returns a COMPLETE entry -- the payload is
//    always the exact canonical text for that key, never a torn mix of
//    two writers (each key has exactly one canonical value, so any
//    deviation is a torn read);
//  * hits() + misses() == total get() probes, exactly, across all threads;
//  * the in-memory layer never exceeds its capacity.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cache.h"

namespace lmre {
namespace {

// One canonical value per key: torn reads become content mismatches.
std::string value_for(std::uint64_t key) {
  std::string payload = "{\"key\":" + std::to_string(key) + ",\"pad\":\"";
  payload.append(256 + static_cast<size_t>(key % 64),
                 static_cast<char>('a' + key % 26));
  payload += "\"}";
  return payload;
}

int status_for(std::uint64_t key) { return static_cast<int>(key % 5); }

TEST(ResultCacheStress, OverlappingKeysAcrossThreadsWithDiskLayer) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_stress";
  std::filesystem::remove_all(dir);

  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  constexpr std::uint64_t kKeys = 32;  // << capacity * threads: heavy overlap
  constexpr size_t kCapacity = 16;     // < kKeys: eviction under contention

  ResultCache cache(kCapacity, dir);

  std::vector<long> probes(kThreads, 0);
  std::vector<int> torn(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread-specific stride so threads collide on keys in different
      // orders; every key is both read and written by several threads.
      for (int r = 0; r < kRounds; ++r) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(r) * (2 * t + 1) + t) % kKeys;
        if (auto entry = cache.get(key)) {
          if (entry->payload != value_for(key) ||
              entry->status != status_for(key)) {
            torn[t] += 1;
          }
        } else {
          cache.put(key, {status_for(key), value_for(key)});
        }
        probes[t] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();

  long total_probes = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_probes += probes[t];
    EXPECT_EQ(torn[t], 0) << "thread " << t << " saw torn/corrupt entries";
  }
  EXPECT_EQ(total_probes, static_cast<long>(kThreads) * kRounds);
  // Every probe is accounted as exactly one hit or one miss.
  EXPECT_EQ(cache.hits() + cache.misses(), total_probes);
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
  EXPECT_LE(cache.size(), kCapacity);

  // The disk layer holds only complete, strictly-parseable files: a fresh
  // cache over the same dir serves every key back intact.
  ResultCache reader(kKeys, dir);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    auto entry = reader.get(key);
    ASSERT_TRUE(entry.has_value()) << "key " << key << " lost on disk";
    EXPECT_EQ(entry->payload, value_for(key));
    EXPECT_EQ(entry->status, status_for(key));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lmre
