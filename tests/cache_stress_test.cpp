// Concurrency stress for the shared ResultCache and the serve pool's
// single-flight table (satellites of the serve subsystem): many threads
// hammering overlapping keys through one cache with a live disk layer,
// the same traffic through a sharded/TTL/byte-budget configuration, and
// racing leaders on a SingleFlight.  Designed to run under TSan
// (scripts/tier1.sh TSan stage) to catch torn reads and counter races.
//
// Invariants checked:
//  * a get() either misses or returns a COMPLETE entry -- the payload is
//    always the exact canonical text for that key, never a torn mix of
//    two writers (each key has exactly one canonical value, so any
//    deviation is a torn read);
//  * hits() + misses() == total get() probes, exactly, across all threads;
//  * the in-memory layer never exceeds its capacity (entries or bytes);
//  * for every key, concurrent lead_or_wait races elect EXACTLY one
//    leader, and finish() hands that leader every parked waiter.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cache.h"
#include "server/coalesce.h"

namespace lmre {
namespace {

// One canonical value per key: torn reads become content mismatches.
std::string value_for(std::uint64_t key) {
  std::string payload = "{\"key\":" + std::to_string(key) + ",\"pad\":\"";
  payload.append(256 + static_cast<size_t>(key % 64),
                 static_cast<char>('a' + key % 26));
  payload += "\"}";
  return payload;
}

int status_for(std::uint64_t key) { return static_cast<int>(key % 5); }

TEST(ResultCacheStress, OverlappingKeysAcrossThreadsWithDiskLayer) {
  const std::string dir = ::testing::TempDir() + "lmre_cache_stress";
  std::filesystem::remove_all(dir);

  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  constexpr std::uint64_t kKeys = 32;  // << capacity * threads: heavy overlap
  constexpr size_t kCapacity = 16;     // < kKeys: eviction under contention

  ResultCache cache(kCapacity, dir);

  std::vector<long> probes(kThreads, 0);
  std::vector<int> torn(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread-specific stride so threads collide on keys in different
      // orders; every key is both read and written by several threads.
      for (int r = 0; r < kRounds; ++r) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(r) * (2 * t + 1) + t) % kKeys;
        if (auto entry = cache.get(key)) {
          if (entry->payload != value_for(key) ||
              entry->status != status_for(key)) {
            torn[t] += 1;
          }
        } else {
          cache.put(key, {status_for(key), value_for(key)});
        }
        probes[t] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();

  long total_probes = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_probes += probes[t];
    EXPECT_EQ(torn[t], 0) << "thread " << t << " saw torn/corrupt entries";
  }
  EXPECT_EQ(total_probes, static_cast<long>(kThreads) * kRounds);
  // Every probe is accounted as exactly one hit or one miss.
  EXPECT_EQ(cache.hits() + cache.misses(), total_probes);
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
  EXPECT_LE(cache.size(), kCapacity);

  // The disk layer holds only complete, strictly-parseable files: a fresh
  // cache over the same dir serves every key back intact.
  ResultCache reader(kKeys, dir);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    auto entry = reader.get(key);
    ASSERT_TRUE(entry.has_value()) << "key " << key << " lost on disk";
    EXPECT_EQ(entry->payload, value_for(key));
    EXPECT_EQ(entry->status, status_for(key));
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheStress, ShardedConfigKeepsInvariantsUnderContention) {
  // The same overlapping-key traffic through the fleet configuration:
  // many shards, a TTL that never fires inside the test, and a byte
  // budget tight enough to force byte-driven evictions.
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  constexpr std::uint64_t kKeys = 64;

  ResultCacheConfig cfg;
  cfg.capacity = 48;
  cfg.shards = 8;
  cfg.ttl_seconds = 3600.0;       // armed, but nothing expires mid-test
  cfg.byte_budget = 48 * 200;     // ~half the working set's bytes
  ResultCache cache(cfg);
  ASSERT_EQ(cache.shard_count(), 8u);

  std::vector<long> probes(kThreads, 0);
  std::vector<int> torn(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(r) * (2 * t + 1) + t) % kKeys;
        if (auto entry = cache.get(key)) {
          if (entry->payload != value_for(key) ||
              entry->status != status_for(key)) {
            torn[t] += 1;
          }
        } else {
          cache.put(key, {status_for(key), value_for(key)});
        }
        probes[t] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();

  long total_probes = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_probes += probes[t];
    EXPECT_EQ(torn[t], 0) << "thread " << t << " saw torn/corrupt entries";
  }
  EXPECT_EQ(cache.hits() + cache.misses(), total_probes);
  EXPECT_EQ(cache.expired(), 0);  // the armed TTL never fired
  EXPECT_LE(cache.size(), cfg.capacity);
  EXPECT_LE(cache.bytes(), cfg.byte_budget);
  EXPECT_LE(cache.shard_entries_max(), cfg.capacity / cfg.shards);
  EXPECT_GT(cache.evictions(), 0);  // the budget actually pushed back
}

TEST(SingleFlightStress, ExactlyOneLeaderPerKeyAndNoLostWaiters) {
  // kThreads threads race lead_or_wait on every key; exactly one thread
  // per key may win leadership, and its finish() must recover all
  // kThreads - 1 parked jobs.  Leaders spin until every racer for the
  // key has registered, mimicking a worker that computes while waiters
  // pile onto the flight.
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;

  SingleFlight<int> flights;
  std::vector<std::atomic<int>> leaders(kKeys);
  std::vector<std::atomic<int>> arrivals(kKeys);
  std::vector<std::atomic<int>> recovered(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    leaders[k] = 0;
    arrivals[k] = 0;
    recovered[k] = 0;
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        int job = t;
        bool leader = flights.lead_or_wait(static_cast<std::uint64_t>(k), &job);
        arrivals[k].fetch_add(1);
        if (!leader) continue;  // parked: the leader answers for us
        leaders[k].fetch_add(1);
        // "Compute" until every thread has arrived at this key, so the
        // flight provably collects all kThreads - 1 waiters.
        while (arrivals[k].load() < kThreads) std::this_thread::yield();
        std::vector<int> waiters =
            flights.finish(static_cast<std::uint64_t>(k));
        recovered[k].fetch_add(static_cast<int>(waiters.size()));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(leaders[k].load(), 1) << "key " << k << " elected != 1 leader";
    EXPECT_EQ(recovered[k].load(), kThreads - 1)
        << "key " << k << " lost waiters";
  }
  EXPECT_EQ(flights.open(), 0u);
}

}  // namespace
}  // namespace lmre
