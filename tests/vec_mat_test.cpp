#include <gtest/gtest.h>

#include "linalg/mat.h"
#include "linalg/vec.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(IntVec, BasicArithmetic) {
  IntVec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_EQ(a + b, (IntVec{5, -3, 9}));
  EXPECT_EQ(a - b, (IntVec{-3, 7, -3}));
  EXPECT_EQ(-a, (IntVec{-1, -2, -3}));
  EXPECT_EQ(a * 3, (IntVec{3, 6, 9}));
  EXPECT_EQ(a.dot(b), 4 - 10 + 18);
}

TEST(IntVec, SizeMismatchThrows) {
  IntVec a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(a + b, InvalidArgument);
  EXPECT_THROW(a.dot(b), InvalidArgument);
}

TEST(IntVec, LexOrder) {
  EXPECT_TRUE((IntVec{0, 1}).lex_positive());
  EXPECT_TRUE((IntVec{1, -5}).lex_positive());
  EXPECT_FALSE((IntVec{-1, 5}).lex_positive());
  EXPECT_FALSE((IntVec{0, 0}).lex_positive());
  EXPECT_TRUE((IntVec{1, 2}).lex_less(IntVec{1, 3}));
  EXPECT_TRUE((IntVec{0, 9}).lex_less(IntVec{1, 0}));
  EXPECT_FALSE((IntVec{1, 3}).lex_less(IntVec{1, 3}));
}

TEST(IntVec, LevelIsFirstNonzeroOneBased) {
  EXPECT_EQ((IntVec{3, 2}).level(), 1);
  EXPECT_EQ((IntVec{0, 2, 0}).level(), 2);
  EXPECT_EQ((IntVec{0, 0, -1}).level(), 3);
  EXPECT_EQ((IntVec{0, 0}).level(), 0);
}

TEST(IntVec, ContentAndPrimitive) {
  EXPECT_EQ((IntVec{6, -9, 12}).content(), 3);
  EXPECT_EQ((IntVec{6, -9, 12}).primitive(), (IntVec{2, -3, 4}));
  EXPECT_EQ((IntVec{0, 0}).content(), 0);
  EXPECT_EQ((IntVec{0, 0}).primitive(), (IntVec{0, 0}));
}

TEST(IntVec, Str) {
  EXPECT_EQ((IntVec{3, -2}).str(), "(3, -2)");
}

TEST(IntMat, ConstructionAndAccess) {
  IntMat m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6);
  EXPECT_EQ(m.row(0), (IntVec{1, 2, 3}));
  EXPECT_EQ(m.col(1), (IntVec{2, 5}));
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW((IntMat{{1, 2}, {3}}), InvalidArgument);
}

TEST(IntMat, Multiply) {
  IntMat a{{1, 2}, {3, 4}};
  IntMat b{{0, 1}, {1, 0}};
  EXPECT_EQ(a * b, (IntMat{{2, 1}, {4, 3}}));
  EXPECT_EQ(a * (IntVec{1, 1}), (IntVec{3, 7}));
  EXPECT_EQ(IntMat::identity(2) * a, a);
}

TEST(IntMat, Transpose) {
  IntMat a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.transposed(), (IntMat{{1, 4}, {2, 5}, {3, 6}}));
}

TEST(IntMat, Determinant) {
  EXPECT_EQ((IntMat{{2, 5}, {1, 3}}).determinant(), 1);
  EXPECT_EQ((IntMat{{2, 3}, {1, 1}}).determinant(), -1);
  EXPECT_EQ((IntMat{{1, 2}, {2, 4}}).determinant(), 0);
  EXPECT_EQ(IntMat::identity(4).determinant(), 1);
  // 3x3 with a known determinant (expand along the last row: -1).
  EXPECT_EQ((IntMat{{3, 0, 1}, {0, 1, 1}, {1, 0, 0}}).determinant(), -1);
  EXPECT_THROW((IntMat{{1, 2, 3}, {4, 5, 6}}).determinant(), InvalidArgument);
}

TEST(IntMat, DeterminantLargerMatrix) {
  // det of a 4x4 via a triangular-ish construction: product of diagonal.
  IntMat m{{2, 1, 0, 3}, {0, -3, 1, 1}, {0, 0, 5, -2}, {0, 0, 0, 7}};
  EXPECT_EQ(m.determinant(), 2 * -3 * 5 * 7);
}

TEST(IntMat, Rank) {
  EXPECT_EQ((IntMat{{1, 2}, {2, 4}}).rank(), 1u);
  EXPECT_EQ((IntMat{{1, 2}, {3, 4}}).rank(), 2u);
  EXPECT_EQ((IntMat{{3, 0, 1}, {0, 1, 1}}).rank(), 2u);
  EXPECT_EQ((IntMat{{0, 0}, {0, 0}}).rank(), 0u);
}

TEST(IntMat, UnimodularInverse) {
  IntMat t{{2, 3}, {1, 1}};  // det -1 (Example 8's transformation)
  ASSERT_TRUE(t.is_unimodular());
  IntMat inv = t.inverse_unimodular();
  EXPECT_EQ(t * inv, IntMat::identity(2));
  EXPECT_EQ(inv * t, IntMat::identity(2));
}

TEST(IntMat, UnimodularInverse3x3) {
  IntMat t{{3, 0, 1}, {0, 1, 1}, {1, 0, 0}};
  ASSERT_TRUE(t.is_unimodular());
  EXPECT_EQ(t * t.inverse_unimodular(), IntMat::identity(3));
}

TEST(IntMat, NonUnimodularInverseThrows) {
  EXPECT_THROW((IntMat{{2, 0}, {0, 2}}).inverse_unimodular(), InvalidArgument);
}

TEST(IntMat, AdjugateIdentity) {
  IntMat m{{4, 7}, {2, 6}};
  IntMat adj = m.adjugate();
  IntMat prod = m * adj;
  Int det = m.determinant();
  EXPECT_EQ(prod, IntMat::identity(2) * det);
}

TEST(IntMat, MinorMatrix) {
  IntMat m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_EQ(m.minor_matrix(1, 1), (IntMat{{1, 3}, {7, 9}}));
}

TEST(IntMat, FromRows) {
  IntMat m = IntMat::from_rows({IntVec{1, 2}, IntVec{3, 4}});
  EXPECT_EQ(m, (IntMat{{1, 2}, {3, 4}}));
}

TEST(IntMat, Str) {
  EXPECT_EQ((IntMat{{2, 3}, {1, 1}}).str(), "[2 3; 1 1]");
}

}  // namespace
}  // namespace lmre
