#include <gtest/gtest.h>

#include "analysis/distinct.h"
#include "analysis/reuse.h"
#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Reuse, VolumeBasics) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  // Figure 1 / Example 1: dependence (3,-2) in a 10x10 space reuses 56.
  EXPECT_EQ(reuse_volume(IntVec{3, -2}, box), 56);
  EXPECT_EQ(reuse_volume(IntVec{-3, 2}, box), 56);  // signs irrelevant
  EXPECT_EQ(reuse_volume(IntVec{0, 0}, box), 100);
  EXPECT_EQ(reuse_volume(IntVec{10, 0}, box), 0);   // clamped
  EXPECT_EQ(reuse_volume(IntVec{12, 1}, box), 0);
}

TEST(Reuse, VolumeSum) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  std::vector<IntVec> ds{{1, 0}, {0, 1}, {1, 1}};
  // Example 3's reuse: 90 + 90 + 81 = 261.
  EXPECT_EQ(reuse_volume_sum(ds, box), 261);
}

TEST(Reuse, DimensionMismatchThrows) {
  EXPECT_THROW(reuse_volume(IntVec{1}, IntBox::from_upper_bounds({2, 2})),
               InvalidArgument);
}

TEST(Distinct, Example2Exact) {
  // reuse (n1-1)(n2-2), distinct 2*n1*n2 - reuse; exact per Section 3.1.
  LoopNest nest = codes::example_2(10, 10);
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.method, DistinctMethod::kFullDim);
  EXPECT_EQ(e.reuse, 9 * 8);
  EXPECT_EQ(e.distinct, 200 - 72);
  EXPECT_TRUE(e.exact_claimed);
  EXPECT_EQ(simulate(nest).distinct_total, e.distinct);
}

TEST(Distinct, Example3PaperEstimate) {
  // The paper's anchor formula gives 261 reuse / 139 distinct; the true
  // union is 121 (the formula ignores triple overlaps) -- both recorded.
  LoopNest nest = codes::example_3();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.reuse, 261);
  EXPECT_EQ(e.distinct, 139);
  EXPECT_FALSE(e.exact_claimed);  // r > 2
  EXPECT_EQ(simulate(nest).distinct_total, 121);
}

TEST(Distinct, Example4KernelExact) {
  LoopNest nest = codes::example_4();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.method, DistinctMethod::kKernelSingleRef);
  EXPECT_EQ(e.reuse, 120);
  EXPECT_EQ(e.distinct, 80);
  EXPECT_TRUE(e.exact_claimed);
  EXPECT_EQ(simulate(nest).distinct_total, 80);
}

TEST(Distinct, Example5KernelExact) {
  LoopNest nest = codes::example_5();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.reuse, 4131);
  EXPECT_EQ(e.distinct, 1869);
  EXPECT_TRUE(e.exact_claimed);
  EXPECT_EQ(simulate(nest).distinct_total, 1869);
}

TEST(Distinct, Example1bKernelExact) {
  LoopNest nest = codes::example_1b();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.reuse, 56);
  EXPECT_EQ(e.distinct, 44);
  EXPECT_EQ(simulate(nest).distinct_total, 44);
}

TEST(Distinct, SingleInjectiveRefTouchesEverything) {
  NestBuilder b;
  b.loop("i", 1, 6).loop("j", 1, 7);
  ArrayId a = b.array("A", {6, 7});
  b.statement().write(a, {{1, 0}, {0, 1}}, {0, 0});
  LoopNest nest = b.build();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.distinct, 42);
  EXPECT_EQ(e.reuse, 0);
  EXPECT_TRUE(e.exact_claimed);
}

TEST(Distinct, MultiRefKernelUnionEstimate) {
  // Example 8: one image of 90 elements plus a shift-by-4 boundary = 94.
  LoopNest nest = codes::example_8();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_EQ(e.method, DistinctMethod::kKernelMultiRef);
  EXPECT_EQ(e.distinct, 94);
  EXPECT_FALSE(e.exact_claimed);
  EXPECT_EQ(simulate(nest).distinct_total, 94);
}

TEST(DistinctExactIE, Example3TrueUnion) {
  // The inclusion-exclusion closed form returns the TRUE union (121), where
  // the paper's anchor formula prints 139.
  EXPECT_EQ(distinct_exact_inclusion_exclusion(codes::example_3(), 0), 121);
  EXPECT_EQ(simulate(codes::example_3()).distinct_total, 121);
}

TEST(DistinctExactIE, MatchesOracleOnExamples) {
  for (auto nest : {codes::example_1a(), codes::example_2(10, 10),
                    codes::example_2(7, 9)}) {
    EXPECT_EQ(distinct_exact_inclusion_exclusion(nest, 0),
              simulate(nest).distinct_total);
  }
}

TEST(DistinctExactIE, NonOverlappingParityPair) {
  // A[2i][j] and A[2i+1][j]: offsets differ by an odd amount, the images
  // never meet (no integral shift): union = 2 * volume.
  NestBuilder b;
  b.loop("i", 1, 5).loop("j", 1, 5);
  ArrayId a = b.array("A", {12, 5});
  b.statement()
      .read(a, {{2, 0}, {0, 1}}, {0, 0})
      .read(a, {{2, 0}, {0, 1}}, {1, 0});
  LoopNest nest = b.build();
  EXPECT_EQ(distinct_exact_inclusion_exclusion(nest, 0), 50);
  EXPECT_EQ(simulate(nest).distinct_total, 50);
}

TEST(DistinctExactIE, SubsetAnchoringHandlesMixedParity) {
  // Three refs where ref0 never meets ref1/ref2, but ref1 and ref2 overlap
  // each other: the per-subset anchoring must credit that overlap.
  NestBuilder b;
  b.loop("i", 1, 6).loop("j", 1, 6);
  ArrayId a = b.array("A", {20, 6});
  b.statement()
      .read(a, {{2, 0}, {0, 1}}, {0, 0})    // even rows
      .read(a, {{2, 0}, {0, 1}}, {1, 0})    // odd rows
      .read(a, {{2, 0}, {0, 1}}, {3, 0});   // odd rows, shifted
  LoopNest nest = b.build();
  EXPECT_EQ(distinct_exact_inclusion_exclusion(nest, 0),
            simulate(nest).distinct_total);
}

TEST(DistinctExactIE, RejectsOutsideScope) {
  EXPECT_THROW(distinct_exact_inclusion_exclusion(codes::example_4(), 0),
               UnsupportedError);  // kernel reuse
  EXPECT_THROW(distinct_exact_inclusion_exclusion(codes::example_6(), 0),
               UnsupportedError);  // non-uniform
}

TEST(Distinct, NonUniformRejected) {
  EXPECT_THROW(estimate_distinct(codes::example_6(), 0), UnsupportedError);
}

TEST(Distinct, UnreferencedArrayRejected) {
  NestBuilder b;
  b.loop("i", 1, 4);
  ArrayId a = b.array("A", {4});
  b.array("B", {4});
  b.statement().read(a, {{1}}, {0});
  LoopNest nest = b.build();
  EXPECT_THROW(estimate_distinct(nest, 1), InvalidArgument);
}

TEST(Distinct, TotalSumsArrays) {
  LoopNest nest = codes::example_sec23();
  Int total = estimate_distinct_total(nest);
  DistinctEstimate x = estimate_distinct(nest, 0);
  DistinctEstimate y = estimate_distinct(nest, 1);
  EXPECT_EQ(total, x.distinct + y.distinct);
}

TEST(Distinct, TotalUsesUpperBoundForNonUniform) {
  LoopNest nest = codes::example_6();
  EXPECT_EQ(estimate_distinct_total(nest), 191);
}

TEST(Distinct, MethodNames) {
  EXPECT_NE(to_string(DistinctMethod::kFullDim).find("3.1"), std::string::npos);
  EXPECT_NE(to_string(DistinctMethod::kKernelSingleRef).find("3.2"), std::string::npos);
  EXPECT_NE(to_string(DistinctMethod::kKernelMultiRef).find("extension"),
            std::string::npos);
}

}  // namespace
}  // namespace lmre
