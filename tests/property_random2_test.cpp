// Second randomized property suite, covering the extension modules:
// tiling, allocation, layouts, counting, the parser round trip, and the
// optimizer at depth 3.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "alloc/scratchpad.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "exact/liveness.h"
#include "program/fusion.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "layout/spatial.h"
#include "polyhedra/counting.h"
#include "transform/minimizer.h"
#include "transform/tiling.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xBADC0DE + seed); }

// Random 2-deep nest with a couple of 2-d uniformly generated references.
LoopNest random_nest2(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 8), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 6, n2 + 6});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3})
      .read(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3});
  return b.build();
}

// ---------------------------------------------------------------------------
class TilingProperty : public ::testing::TestWithParam<int> {};

TEST_P(TilingProperty, TiledRunPreservesCountsAndBoundsWindow) {
  auto rng = rng_for(GetParam());
  LoopNest nest = random_nest2(rng);
  std::uniform_int_distribution<Int> td(1, 5);
  std::vector<Int> tiles{td(rng), td(rng)};
  TilingReport rep = analyze_tiling(nest, IntMat::identity(2), tiles);
  TraceStats plain = simulate(nest);
  EXPECT_EQ(rep.stats.distinct_total, plain.distinct_total);
  EXPECT_EQ(rep.stats.total_accesses, plain.total_accesses);
  // The footprint of any tile is bounded by its population times refs.
  EXPECT_LE(rep.max_tile_footprint,
            rep.max_tile_iterations * static_cast<Int>(nest.all_refs().size()));
  EXPECT_GE(rep.tiles, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TilingProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
class AllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocationProperty, GreedySlotsAlwaysEqualExactWindow) {
  auto rng = rng_for(100 + GetParam());
  LoopNest nest = random_nest2(rng);
  Allocation alloc = allocate_scratchpad(nest);
  EXPECT_TRUE(alloc.verified);
  EXPECT_EQ(alloc.slots, simulate(nest).mws_total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocationProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
class SpatialProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpatialProperty, LineWindowInterpolatesElementWindow) {
  auto rng = rng_for(200 + GetParam());
  LoopNest nest = random_nest2(rng);
  auto layouts = default_layouts(nest);
  TraceStats t = simulate(nest);
  SpatialStats one = simulate_lines(nest, layouts, 1);
  EXPECT_EQ(one.mws_lines, t.mws_total);
  // With larger lines the line-window cannot exceed the element window
  // count (each live element pins at most one line, lines are shared).
  SpatialStats four = simulate_lines(nest, layouts, 4);
  EXPECT_LE(four.mws_lines, t.mws_total + 2);
  EXPECT_GE(four.mws_lines, (t.mws_total + 3) / 4 - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpatialProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
class ParserRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParserRoundTripProperty, RandomNestSurvives) {
  auto rng = rng_for(300 + GetParam());
  std::uniform_int_distribution<Int> bnd(2, 7), coefd(-4, 4), off(-5, 20);
  NestBuilder b;
  size_t depth = 2 + GetParam() % 2;
  for (size_t d = 0; d < depth; ++d) b.loop("i" + std::to_string(d), 1, bnd(rng));
  ArrayId a = b.array("A", {600});
  IntMat acc(1, depth);
  for (size_t d = 0; d < depth; ++d) acc(0, d) = coefd(rng);
  if (acc.row(0).is_zero()) acc(0, 0) = 1;
  b.statement().write(a, acc, IntVec{off(rng) + 100});
  b.statement().read(a, acc, IntVec{off(rng) + 100});
  LoopNest nest = b.build();

  LoopNest back = parse_nest(to_dsl(nest));
  TraceStats x = simulate(nest), y = simulate(back);
  EXPECT_EQ(x.distinct_total, y.distinct_total);
  EXPECT_EQ(x.mws_total, y.mws_total);
  EXPECT_EQ(x.total_accesses, y.total_accesses);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParserRoundTripProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
class CountingProperty : public ::testing::TestWithParam<int> {};

TEST_P(CountingProperty, UnionCountMatchesOracleDistinct) {
  // The exact union counter must agree with the oracle's distinct count for
  // 1-d nests built from the same forms.
  auto rng = rng_for(400 + GetParam());
  std::uniform_int_distribution<Int> bnd(3, 9), coefd(-4, 4), off(-6, 6);
  Int n1 = bnd(rng), n2 = bnd(rng);
  IntVec c1{coefd(rng), coefd(rng)}, c2{coefd(rng), coefd(rng)};
  if (c1.is_zero()) c1[0] = 1;
  if (c2.is_zero()) c2[1] = 1;
  Int o1 = off(rng) + 60, o2 = off(rng) + 60;

  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {200});
  b.statement().read(a, IntMat{{c1[0], c1[1]}}, IntVec{o1});
  b.statement().read(a, IntMat{{c2[0], c2[1]}}, IntVec{o2});
  LoopNest nest = b.build();

  IntBox box = IntBox::from_upper_bounds({n1, n2});
  Int counted = count_image_union({{c1, o1}, {c2, o2}}, box);
  EXPECT_EQ(counted, simulate(nest).distinct_total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
class OptimizerDepth3Property : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerDepth3Property, LegalAndNeverWorse) {
  auto rng = rng_for(500 + GetParam());
  std::uniform_int_distribution<Int> bnd(3, 6), coefd(0, 2);
  NestBuilder b;
  b.loop("i", 1, bnd(rng)).loop("j", 1, bnd(rng)).loop("k", 1, bnd(rng));
  // 2-d array in a 3-deep nest: kernel-reuse optimization territory.
  ArrayId a = b.array("A", {40, 40});
  Int c1 = coefd(rng) + 1, c2 = coefd(rng);
  b.statement().read(a, IntMat{{c1, 0, 1}, {0, 1, c2}}, IntVec{5, 5});
  LoopNest nest = b.build();

  OptimizeResult res = optimize_locality(nest);
  EXPECT_TRUE(res.transform.is_unimodular());
  auto memory = analyze_dependences(nest).distance_vectors(false);
  EXPECT_TRUE(is_legal(res.transform, memory));
  Int before = simulate(nest).mws_total;
  Int after = simulate_transformed(nest, res.transform).mws_total;
  EXPECT_LE(after, before);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerDepth3Property, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
class LivenessProperty : public ::testing::TestWithParam<int> {};

TEST_P(LivenessProperty, LiveValuesNeverExceedDistinct) {
  auto rng = rng_for(600 + GetParam());
  LoopNest nest = random_nest2(rng);
  LivenessStats live = min_memory_liveness(nest);
  TraceStats t = simulate(nest);
  EXPECT_LE(live.max_live, t.distinct_total);
  EXPECT_GE(live.max_live, 0);
  // Per-array peaks never exceed the global peak's sum decomposition.
  Int sum = 0;
  for (auto& [id, v] : live.per_array) sum += v;
  EXPECT_GE(sum, live.max_live);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LivenessProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// Property: when fusion succeeds, no produced element is consumed before its
// producing iteration -- i.e. the fused nest has no upward-exposed read of
// an element the producer writes.
class FusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionProperty, LegalFusionNeverReadsBeforeWrite) {
  auto rng = rng_for(700 + GetParam());
  std::uniform_int_distribution<Int> bnd(4, 10), off(-3, 3);
  Int n = bnd(rng);
  Int o = off(rng);

  NestBuilder p1;
  p1.loop("i", 1, n);
  ArrayId a1 = p1.array("A", {n + 6});
  p1.statement().write(a1, {{1}}, {3});
  LoopNest producer = p1.build();

  NestBuilder p2;
  p2.loop("i", 1, n);
  ArrayId a2 = p2.array("A", {n + 6});
  ArrayId b2 = p2.array("B", {n});
  p2.statement().write(b2, {{1}}, {0}).read(a2, {{1}}, {3 + o});
  LoopNest consumer = p2.build();

  FusionResult res = fuse_nests(producer, consumer);
  // Legality prediction: the consumer at i reads A[i + 3 + o], produced at
  // iteration i + o; backward iff o > 0 and the producing iteration is
  // still in range for some i.
  bool backward_possible = o > 0;  // read of A[i+3+o] produced at i+o > i
  if (res.fused.has_value()) {
    EXPECT_FALSE(backward_possible && o <= n - 1)
        << "fusion accepted a backward dependence, offset " << o;
    // Verify directly: in the fused trace, every A-element that is both
    // written and read must be written first.
    LivenessStats live = min_memory_liveness(*res.fused);
    // Upward-exposed A reads would show up as extra input elements beyond
    // B's none and A's never-written boundary cells.
    Int boundary = 0;
    for (Int i = 1; i <= n; ++i) {
      Int read_idx = i + 3 + o;
      bool written = read_idx >= 1 + 3 && read_idx <= n + 3;
      if (!written) ++boundary;
    }
    EXPECT_EQ(live.input_elements, boundary) << "offset " << o;
  } else if (res.blocker == FusionBlocker::kDependence) {
    EXPECT_TRUE(backward_possible) << "fusion rejected a forward offset " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusionProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace lmre
