#include <gtest/gtest.h>

#include "codes/general_kernels.h"
#include "exact/oracle.h"

namespace lmre {
namespace {

TEST(GeneralKernels, SuiteSimulates) {
  for (auto& [name, nest] : codes::general_suite()) {
    TraceStats s = simulate_general(nest);
    EXPECT_GT(s.iterations, 0) << name;
    EXPECT_GT(s.distinct_total, 0) << name;
    EXPECT_LE(s.mws_total, s.distinct_total) << name;
  }
}

TEST(GeneralKernels, ForwardSubstCounts) {
  GeneralNest nest = codes::kernel_forward_subst(16);
  TraceStats s = simulate_general(nest);
  EXPECT_EQ(s.iterations, 15 * 16 / 2);  // sum_{i=2..16} (i-1)
  // x[1..16] plus the strict lower triangle of L.
  EXPECT_EQ(s.distinct_total, 16 + 120);
  // x is the only array live across rows: window ~ n.
  EXPECT_GE(s.mws_total, 14);
  EXPECT_LE(s.mws_total, 17);
}

TEST(GeneralKernels, SyrLowerCounts) {
  GeneralNest nest = codes::kernel_syr_lower(16);
  TraceStats s = simulate_general(nest);
  EXPECT_EQ(s.iterations, 16 * 17 / 2);
  // Lower triangle of A (once each, no cross-iteration reuse) + v.
  EXPECT_EQ(s.distinct_total, 136 + 16);
  EXPECT_EQ(s.mws.at(0), 0);  // A elements touched in one iteration only
  EXPECT_GE(s.mws.at(1), 14);  // v fully reused
}

TEST(GeneralKernels, BandWindowIsBandWidth) {
  GeneralNest nest = codes::kernel_band_mv(24);
  TraceStats s = simulate_general(nest);
  // y[i] accumulates over <=3 js; x[j] reused across <=3 is.
  EXPECT_LE(s.mws_total, 5);
  EXPECT_EQ(s.iterations, 24 * 3 - 2);
}

TEST(GeneralKernels, WindowScalesWithN) {
  Int w8 = simulate_general(codes::kernel_forward_subst(8)).mws_total;
  Int w24 = simulate_general(codes::kernel_forward_subst(24)).mws_total;
  EXPECT_GT(w24, 2 * w8);  // x's live span grows with n
}

}  // namespace
}  // namespace lmre
