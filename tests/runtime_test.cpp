// Unit + integration tests for the batch analysis runtime (src/runtime):
// metrics registry, content-hash cache (memory + disk layers), and the
// AnalysisSession memoization contract, including the acceptance criterion
// that a warm re-run over examples/loops/ hits the cache for >= 90% of
// files and skips recomputation entirely.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/cache.h"
#include "runtime/metrics.h"
#include "runtime/session.h"

namespace lmre {
namespace {

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("x"), 0);
  m.count("x");
  m.count("x", 4);
  EXPECT_EQ(m.counter("x"), 5);
}

TEST(Metrics, GaugesLastWriteWins) {
  Metrics m;
  m.gauge("rate", 0.25);
  m.gauge("rate", 0.75);
  EXPECT_DOUBLE_EQ(m.gauge_value("rate"), 0.75);
  EXPECT_DOUBLE_EQ(m.gauge_value("never"), 0.0);
}

TEST(Metrics, TimersObserveAndSnapshot) {
  Metrics m;
  m.observe_ms("stage.a", 2.0);
  m.observe_ms("stage.a", 3.0);
  { auto t = m.time("stage.b"); }  // near-zero but counted
  std::string s = m.to_json().dump();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"stage.a\""), std::string::npos);
  EXPECT_NE(s.find("\"count\":2"), std::string::npos);
  EXPECT_NE(s.find("\"stage.b\""), std::string::npos);
}

TEST(Metrics, LatencyHistogramQuantiles) {
  Metrics m;
  EXPECT_EQ(m.latency_count("serve.latency_ms"), 0);
  EXPECT_DOUBLE_EQ(m.latency_quantile("serve.latency_ms", 0.5), 0.0);

  // 100 observations spread 1..100 ms: quantiles must land in the right
  // buckets (bounds ...10, 25, 50, 100...) with interpolation inside.
  for (int i = 1; i <= 100; ++i) {
    m.observe_latency("serve.latency_ms", static_cast<double>(i));
  }
  EXPECT_EQ(m.latency_count("serve.latency_ms"), 100);
  double p50 = m.latency_quantile("serve.latency_ms", 0.50);
  double p95 = m.latency_quantile("serve.latency_ms", 0.95);
  double p99 = m.latency_quantile("serve.latency_ms", 0.99);
  EXPECT_GT(p50, 25.0);
  EXPECT_LE(p50, 50.0);
  EXPECT_GT(p95, 50.0);
  EXPECT_LE(p95, 100.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 100.0);

  std::string s = m.to_json().dump();
  EXPECT_NE(s.find("\"histograms_ms\""), std::string::npos);
  EXPECT_NE(s.find("\"p50\""), std::string::npos);
  EXPECT_NE(s.find("\"p95\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
  EXPECT_NE(s.find("\"max_ms\":100"), std::string::npos);
}

TEST(Metrics, LatencyOverflowBucketReportsMax) {
  Metrics m;
  m.observe_latency("h", 99999.0);  // beyond the last bound (10000 ms)
  m.observe_latency("h", 123456.0);
  EXPECT_DOUBLE_EQ(m.latency_quantile("h", 0.99), 123456.0);
  EXPECT_EQ(m.latency_count("h"), 2);
}

// ---- fnv / cache -----------------------------------------------------------

TEST(Fnv, ChainingEqualsConcatenation) {
  EXPECT_EQ(fnv1a("ab"), fnv1a("b", fnv1a("a")));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
  EXPECT_NE(fnv1a(""), 0u);  // offset basis, not zero
}

TEST(ResultCache, MemoryHitAndMissCounters) {
  ResultCache c(4);
  EXPECT_FALSE(c.get(1).has_value());
  c.put(1, {0, "payload"});
  auto hit = c.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload, "payload");
  EXPECT_EQ(hit->status, 0);
  EXPECT_EQ(c.hits(), 1);
  EXPECT_EQ(c.misses(), 1);
}

TEST(ResultCache, LruEvictsOldest) {
  ResultCache c(2);
  c.put(1, {0, "a"});
  c.put(2, {0, "b"});
  c.get(1);            // 1 becomes most recent
  c.put(3, {0, "c"});  // evicts 2
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 1);
  EXPECT_TRUE(c.get(1).has_value());
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_TRUE(c.get(3).has_value());
}

TEST(ResultCache, DiskRoundTripAcrossInstances) {
  std::string dir = ::testing::TempDir() + "lmre_cache_rt";
  std::filesystem::remove_all(dir);
  {
    ResultCache writer(4, dir);
    writer.put(0xabcdef, {3, "{\"error\":\"lint\"}"});
  }
  ResultCache reader(4, dir);
  auto hit = reader.get(0xabcdef);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, 3);
  EXPECT_EQ(hit->payload, "{\"error\":\"lint\"}");
  EXPECT_EQ(reader.disk_hits(), 1);
  // The disk hit was promoted: a second get is a memory hit.
  reader.get(0xabcdef);
  EXPECT_EQ(reader.disk_hits(), 1);
  EXPECT_EQ(reader.hits(), 2);
}

TEST(ResultCache, PayloadWithNewlinesSurvivesDisk) {
  std::string dir = ::testing::TempDir() + "lmre_cache_nl";
  std::filesystem::remove_all(dir);
  std::string payload = "line1\nline2\n\nline4";
  {
    ResultCache writer(4, dir);
    writer.put(7, {0, payload});
  }
  ResultCache reader(4, dir);
  auto hit = reader.get(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload, payload);
}

TEST(ResultCache, CorruptDiskFileIsAMissNotAnError) {
  std::string dir = ::testing::TempDir() + "lmre_cache_bad";
  std::filesystem::remove_all(dir);
  ResultCache writer(4, dir);
  writer.put(9, {0, "good"});
  // Find the written file and scribble over its header.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::ofstream(e.path(), std::ios::trunc) << "not-a-cache-file\n";
  }
  ResultCache reader(4, dir);
  EXPECT_FALSE(reader.get(9).has_value());
  EXPECT_EQ(reader.misses(), 1);
}

// ---- session ---------------------------------------------------------------

const char* kExample8 = R"(
  for i = 1 to 25
    for j = 1 to 10
      X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
)";

TEST(SessionKey, FormattingAndCommentsDoNotInvalidate) {
  AnalysisSession s;
  AnalysisRequest a{kExample8, "a.loop", AnalysisRequest::Kind::kFull};
  AnalysisRequest b{"# paper example 8\nfor i = 1 to 25\n  for j = 1 to 10\n"
                    "    X[2*i + 5*j + 1]   =   X[2*i + 5*j + 5];\n",
                    "b.loop", AnalysisRequest::Kind::kFull};
  EXPECT_EQ(s.request_key(a), s.request_key(b));
}

TEST(SessionKey, KindAndOptionsInvalidateThreadsDoNot) {
  AnalysisRequest req{kExample8, "x.loop", AnalysisRequest::Kind::kFull};
  AnalysisSession base;

  SessionOptions more_threads;
  more_threads.run.threads = 8;
  EXPECT_EQ(base.request_key(req), AnalysisSession(more_threads).request_key(req));

  SessionOptions strict;
  strict.run.strict = true;
  EXPECT_NE(base.request_key(req), AnalysisSession(strict).request_key(req));

  SessionOptions small_limit;
  small_limit.run.verify_limit = 10;
  EXPECT_NE(base.request_key(req), AnalysisSession(small_limit).request_key(req));

  AnalysisRequest lint_only = req;
  lint_only.set_kind(AnalysisRequest::Kind::kLint);
  EXPECT_NE(base.request_key(req), base.request_key(lint_only));

  AnalysisRequest symbolic = req;
  symbolic.set_kind(AnalysisRequest::Kind::kSymbolic);
  EXPECT_NE(base.request_key(req), base.request_key(symbolic));
  EXPECT_NE(base.request_key(lint_only), base.request_key(symbolic));
}

TEST(Session, SymbolicRunsAreCachedWithSymbolicPayload) {
  const char* source =
      "array A[11][11];\n"
      "for i = 1 to 10\n  for j = 1 to 10\n"
      "    A[i][j] = A[i][j - 1];\n";
  AnalysisSession s;
  AnalysisRequest req{source, "x.loop", AnalysisRequest::Kind::kSymbolic};
  AnalysisResult cold = s.run(req);
  AnalysisResult warm = s.run(req);
  EXPECT_EQ(cold.status, ExitCode::kSuccess);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.payload, warm.payload);
  EXPECT_NE(cold.payload.find("\"symbolic\""), std::string::npos);
  // The symbolic payload is a different document from the full pipeline's.
  AnalysisResult full =
      s.run({source, "x.loop", AnalysisRequest::Kind::kFull});
  EXPECT_FALSE(full.cache_hit);
  EXPECT_NE(full.payload, cold.payload);
}

TEST(Session, SecondRunIsACacheHitWithIdenticalPayload) {
  AnalysisSession s;
  AnalysisRequest req{kExample8, "x.loop", AnalysisRequest::Kind::kFull};
  AnalysisResult cold = s.run(req);
  AnalysisResult warm = s.run(req);
  EXPECT_EQ(cold.status, ExitCode::kSuccess);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.payload, warm.payload);
  EXPECT_EQ(cold.key, warm.key);
  EXPECT_EQ(s.metrics().counter("runs.computed"), 1);
  EXPECT_EQ(s.metrics().counter("runs.cached"), 1);
}

TEST(Session, ErrorStatusesAreCachedToo) {
  AnalysisSession s;
  AnalysisRequest bad{"array A[4];\nfor i = 1 to 10\n  use A[i];\n", "bad.loop",
                      AnalysisRequest::Kind::kFull};
  AnalysisResult cold = s.run(bad);
  AnalysisResult warm = s.run(bad);
  EXPECT_EQ(cold.status, ExitCode::kDiagnostics);
  EXPECT_EQ(warm.status, ExitCode::kDiagnostics);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.payload, warm.payload);
  EXPECT_NE(cold.payload.find("LMRE-E001"), std::string::npos);
}

TEST(Session, ParseErrorBecomesDiagnosticsPayload) {
  AnalysisSession s;
  AnalysisResult r = s.run({"for i = 1 to\n", "t.loop",
                            AnalysisRequest::Kind::kFull});
  EXPECT_EQ(r.status, ExitCode::kDiagnostics);
  EXPECT_NE(r.payload.find("\"error\""), std::string::npos);
  EXPECT_NE(r.payload.find("\"line\""), std::string::npos);
}

TEST(Session, PayloadIsFileNameIndependent) {
  AnalysisSession s;
  AnalysisResult a = s.run({kExample8, "one.loop", AnalysisRequest::Kind::kFull});
  AnalysisResult b = s.run({kExample8, "two.loop", AnalysisRequest::Kind::kFull});
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_TRUE(b.cache_hit);  // same content, different name: one entry
}

TEST(Session, FreshSessionWarmsFromDiskCache) {
  std::string dir = ::testing::TempDir() + "lmre_session_disk";
  std::filesystem::remove_all(dir);
  SessionOptions opts;
  opts.cache_dir = dir;
  AnalysisRequest req{kExample8, "x.loop", AnalysisRequest::Kind::kFull};
  std::string cold_payload;
  {
    AnalysisSession cold(opts);
    cold_payload = cold.run(req).payload;
  }
  AnalysisSession warm(opts);
  AnalysisResult r = warm.run(req);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.payload, cold_payload);
  EXPECT_EQ(warm.cache().disk_hits(), 1);
  EXPECT_EQ(warm.metrics().counter("runs.computed"), 0);
}

// ---- batch over the shipped corpus ----------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; the loop files live in the
// source tree.  Probe a couple of plausible roots.
std::string loops_dir() {
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (!read_file(std::string(base) + "matmult.loop").empty()) return base;
  }
  return "";
}

std::vector<AnalysisRequest> corpus_requests(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".loop") files.push_back(e.path().string());
  }
  std::sort(files.begin(), files.end());
  std::vector<AnalysisRequest> reqs;
  for (const std::string& f : files) {
    reqs.push_back({read_file(f), f, AnalysisRequest::Kind::kFull});
  }
  return reqs;
}

TEST(SessionBatch, WarmRunHitsCacheAndSkipsRecomputation) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  std::vector<AnalysisRequest> reqs = corpus_requests(dir);
  ASSERT_GE(reqs.size(), 10u);

  SessionOptions opts;
  opts.run.threads = 4;
  AnalysisSession s(opts);
  std::vector<AnalysisResult> cold = s.run_batch(reqs);
  Int computed_after_cold = s.metrics().counter("runs.computed");
  EXPECT_EQ(computed_after_cold, static_cast<Int>(reqs.size()));

  Int hits_before_warm = s.cache().hits();
  std::vector<AnalysisResult> warm = s.run_batch(reqs);
  // Acceptance criterion: >= 90% warm hit rate and zero recomputation.
  // (The lifetime cache.hit_rate gauge includes the cold misses; the
  // fresh-process warm-run gauge of 1.0 is asserted in cli_tool_test.)
  double warm_hit_rate =
      double(s.cache().hits() - hits_before_warm) / double(reqs.size());
  EXPECT_GE(warm_hit_rate, 0.9);
  EXPECT_EQ(s.metrics().counter("runs.computed"), computed_after_cold)
      << "warm batch recomputed instead of serving from cache";
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(reqs[i].file);
    EXPECT_TRUE(warm[i].cache_hit);
    EXPECT_EQ(cold[i].payload, warm[i].payload);
    EXPECT_EQ(cold[i].status, warm[i].status);
  }
}

TEST(SessionBatch, ResultsIdenticalAtEveryThreadCount) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  std::vector<AnalysisRequest> reqs = corpus_requests(dir);

  SessionOptions serial;
  serial.run.threads = 1;
  AnalysisSession base(serial);
  std::vector<AnalysisResult> expected = base.run_batch(reqs);

  for (int threads : {2, 0}) {
    SessionOptions opts;
    opts.run.threads = threads;
    AnalysisSession s(opts);
    std::vector<AnalysisResult> got = s.run_batch(reqs);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(reqs[i].file + " threads " + std::to_string(threads));
      EXPECT_EQ(got[i].payload, expected[i].payload);
      EXPECT_EQ(got[i].status, expected[i].status);
      EXPECT_EQ(got[i].key, expected[i].key);
    }
  }
}

}  // namespace
}  // namespace lmre
