// Fixtures for every lint check ID: each rule has a positive fixture (the
// finding fires, with the documented ID and severity) and the shipped
// examples act as the negative corpus (ExamplesLintClean: no errors, no
// warnings).  See src/lint/lint.h for the check-ID table.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "linalg/mat.h"
#include "lint/lint.h"

namespace lmre {
namespace {

LintResult lint_source(const std::string& source, const LintOptions& opts = {}) {
  NestSourceMap map;
  LoopNest nest = parse_nest(source, &map);
  return lint_nest(nest, &map, opts);
}

bool has_id(const LintResult& res, const std::string& id) {
  return std::any_of(res.diagnostics.begin(), res.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.id == id; });
}

const Diagnostic* find_id(const LintResult& res, const std::string& id) {
  for (const Diagnostic& d : res.diagnostics)
    if (d.id == id) return &d;
  return nullptr;
}

TEST(LintChecks, RegistryListsStableUniqueIds) {
  const auto& checks = lint_checks();
  ASSERT_GE(checks.size(), 17u);
  std::vector<std::string> ids;
  for (const auto& c : checks) {
    std::string id = c.id;
    // LMRE-<severity letter><3 digits>.
    ASSERT_EQ(id.size(), 9u) << id;
    EXPECT_EQ(id.substr(0, 5), "LMRE-") << id;
    EXPECT_TRUE(id[5] == 'E' || id[5] == 'W' || id[5] == 'N') << id;
    ids.push_back(id);
    EXPECT_NE(std::string(c.name), "") << id;
    EXPECT_NE(std::string(c.precondition), "") << id;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate check ID";
}

TEST(LintSubscriptBounds, SpanExceedingExtentIsError) {
  LintResult res = lint_source(R"(
    array A[4];
    for i = 1 to 10
      use A[i];
  )");
  const Diagnostic* d = find_id(res, "LMRE-E001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("declared extent is 4"), std::string::npos);
  EXPECT_TRUE(d->span.valid());
  EXPECT_EQ(d->span.line, 4);
  EXPECT_FALSE(res.clean());
}

TEST(LintSubscriptBounds, WindowOutsideBothConventionsIsWarning) {
  // Range [9, 13] fits in extent 10 (span 5) but lies in neither the
  // 0-based window [0, 9] nor the 1-based window [1, 10].
  LintResult res = lint_source(R"(
    array A[10];
    for i = 1 to 5
      use A[i + 8];
  )");
  EXPECT_FALSE(has_id(res, "LMRE-E001"));
  const Diagnostic* d = find_id(res, "LMRE-W002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(res.clean());
}

TEST(LintSubscriptBounds, NegativeBaseIsANote) {
  LintResult res = lint_source(R"(
    array A[10];
    for i = 1 to 5
      use A[i - 6];
  )");
  EXPECT_FALSE(has_id(res, "LMRE-E001"));
  EXPECT_FALSE(has_id(res, "LMRE-W002"));
  const Diagnostic* d = find_id(res, "LMRE-N015");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(res.clean());
}

TEST(LintSubscriptBounds, InBoundsReferencesAreSilent) {
  LintResult res = lint_source(R"(
    array A[16];
    for i = 1 to 16
      use A[i];
  )");
  EXPECT_FALSE(has_id(res, "LMRE-E001"));
  EXPECT_FALSE(has_id(res, "LMRE-W002"));
  EXPECT_FALSE(has_id(res, "LMRE-N015"));
}

TEST(LintLoopRanges, EmptyLoopIsError) {
  // The parser rejects empty ranges outright, so this only arises for
  // programmatically built nests -- exactly what lint_nest(nullptr map)
  // is for.
  LoopNest nest({"i"}, IntBox({Range{5, 1}}), {{"A", {8}}},
                {Statement{{ArrayRef{0, AccessKind::kRead, IntMat{{1}}, IntVec{0}}}}});
  LintResult res = lint_nest(nest);
  const Diagnostic* d = find_id(res, "LMRE-E003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(d->span.valid());
  EXPECT_FALSE(res.clean());
}

TEST(LintLoopRanges, SingleIterationLoopIsANote) {
  LintResult res = lint_source(R"(
    for i = 3 to 3
      for j = 1 to 5
        use A[i][j];
  )");
  const Diagnostic* d = find_id(res, "LMRE-N004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(res.clean());
}

TEST(LintUniformGeneration, MixedCoefficientsWarn) {
  // A[i] and A[2*i] are not uniformly generated (Section 3.1): the
  // distinct-access closed form does not apply to this pair.
  LintResult res = lint_source(R"(
    for i = 1 to 8
    {
      use A[i];
      use A[2*i];
    }
  )");
  const Diagnostic* d = find_id(res, "LMRE-W005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LintUniformGeneration, SharedCoefficientsAreSilent) {
  LintResult res = lint_source(R"(
    for i = 1 to 8
    {
      use A[i];
      use A[i + 3];
    }
  )");
  EXPECT_FALSE(has_id(res, "LMRE-W005"));
}

TEST(LintKernelDimension, EntangledTwoDimensionalKernelWarns) {
  // Access rows (1,1,0,0) and (0,1,1,0) share loop j: the kernel has
  // dimension 2 and the rows are entangled, so the Section 3.2 one-
  // dimensional-kernel closed form does not apply.
  LintResult res = lint_source(R"(
    for i = 1 to 3
      for j = 1 to 3
        for k = 1 to 3
          for l = 1 to 3
            use A[i + j][j + k];
  )");
  const Diagnostic* d = find_id(res, "LMRE-W006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LintKernelDimension, DisjointRowSupportIsExactAndSilent) {
  // out[i][j] under a 4-deep nest has a 2-d kernel but disjoint row
  // support: the distinct count is exact via the image cap, no warning.
  LintResult res = lint_source(R"(
    for i = 1 to 3
      for j = 1 to 3
        for k = 1 to 3
          for l = 1 to 3
            use A[i][j];
  )");
  EXPECT_FALSE(has_id(res, "LMRE-W006"));
}

TEST(LintKernelDimension, MultiRefKernelReuseIsTheDocumentedExtension) {
  // Two references with a nonempty kernel: the paper's Section 3.2 only
  // treats the single-reference case; lmre extends it and says so.
  LintResult res = lint_source(R"(
    for i = 1 to 4
      for j = 1 to 4
        for k = 1 to 4
          C[i][j] = C[i][j] + B[i][j][k];
  )");
  const Diagnostic* d = find_id(res, "LMRE-N007");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(res.clean());
}

TEST(LintIterationVolume, ThresholdExceededWarns) {
  LintOptions opts;
  opts.volume_warn_threshold = 10;
  LintResult res = lint_source(R"(
    for i = 1 to 10
      for j = 1 to 10
        use A[i][j];
  )",
                               opts);
  const Diagnostic* d = find_id(res, "LMRE-W008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(res.clean());
}

TEST(LintIterationVolume, TripCountProductOverflowIsError) {
  // Each loop alone fits in Int64; the product does not.
  LintResult res = lint_source(R"(
    for i = 1 to 4000000000
      for j = 1 to 4000000000
        use A[i];
  )");
  const Diagnostic* d = find_id(res, "LMRE-E009");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(res.clean());
}

TEST(LintArrayUsage, DeclaredButUnreferencedWarns) {
  LintResult res = lint_source(R"(
    array B[5];
    for i = 1 to 3
      use A[i];
  )");
  const Diagnostic* d = find_id(res, "LMRE-W010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("'B'"), std::string::npos);
}

TEST(LintArrayUsage, WriteOnlyArrayIsANote) {
  LintResult res = lint_source(R"(
    for i = 1 to 3
      A[i] = 0;
  )");
  const Diagnostic* d = find_id(res, "LMRE-N011");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(res.clean());
}

TEST(LintArrayUsage, CrossPhaseReadSuppressesWriteOnly) {
  // A is written in the producer phase and only read in the consumer:
  // program-level lint must see the cross-phase read and stay silent.
  ProgramSourceMap pmap;
  Program p = parse_program(R"(
    array A[8];
    phase producer { for i = 1 to 8  A[i] = 0; }
    phase consumer { for i = 1 to 8  B[i] = A[i]; }
  )",
                            &pmap);
  LintResult res = lint_program(p, &pmap);
  for (const Diagnostic& d : res.diagnostics) {
    if (d.id == "LMRE-N011") {
      EXPECT_EQ(d.message.find("'A'"), std::string::npos) << d.message;
    }
  }
  // B is genuinely write-only across the whole program.
  EXPECT_TRUE(has_id(res, "LMRE-N011"));
}

TEST(LintDuplicateRefs, IdenticalRefsInOneStatementWarn) {
  LintResult res = lint_source(R"(
    for i = 1 to 4
      S[i] = A[i] + A[i];
  )");
  const Diagnostic* d = find_id(res, "LMRE-W012");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LintDuplicateRefs, ReadAndWriteOfSameCellAreDistinct) {
  LintResult res = lint_source(R"(
    for i = 1 to 4
      A[i] = A[i];
  )");
  EXPECT_FALSE(has_id(res, "LMRE-W012"));
}

// Dependence distance (1, -1): legal in original order, interchange
// reverses it, and tiling needs component-wise non-negative distances.
const char* kSkewedNest = R"(
  for i = 1 to 6
    for j = 1 to 6
      A[i][j] = A[i - 1][j + 1];
)";

TEST(LintTransformPlan, IllegalInterchangeIsError) {
  IntMat interchange{{0, 1}, {1, 0}};
  LintOptions opts;
  opts.plan = &interchange;
  LintResult res = lint_source(kSkewedNest, opts);
  const Diagnostic* d = find_id(res, "LMRE-E013");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(res.clean());
  EXPECT_FALSE(has_id(res, "LMRE-N016"));
}

TEST(LintTransformPlan, LegalButUntileablePlanWarns) {
  IntMat identity{{1, 0}, {0, 1}};
  LintOptions opts;
  opts.plan = &identity;
  LintResult res = lint_source(kSkewedNest, opts);
  EXPECT_FALSE(has_id(res, "LMRE-E013"));
  const Diagnostic* w = find_id(res, "LMRE-W014");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, Severity::kWarning);
  // The plan is still certified legal.
  EXPECT_TRUE(has_id(res, "LMRE-N016"));
  EXPECT_TRUE(res.clean());
}

TEST(LintTransformPlan, NonUnimodularPlanIsError) {
  IntMat scale{{2, 0}, {0, 1}};
  LintOptions opts;
  opts.plan = &scale;
  LintResult res = lint_source(kSkewedNest, opts);
  const Diagnostic* d = find_id(res, "LMRE-E013");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("unimodular"), std::string::npos);
}

TEST(LintTransformPlan, AuditedOptimizerPlanIsCertified) {
  // The plan optimize_locality emits must re-certify against the nest's
  // own dependences: lint --plan is an independent audit of optimize.
  LintOptions opts;
  opts.audit_plan = true;
  LintResult res = lint_source(R"(
    for i = 1 to 25
      for j = 1 to 10
        X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
  )",
                               opts);
  EXPECT_FALSE(has_id(res, "LMRE-E013"));
  EXPECT_TRUE(has_id(res, "LMRE-N016"));
}

TEST(LintOptions, EnabledIdsFilterRestrictsOutput) {
  LintOptions opts;
  opts.enabled_ids = {"LMRE-W010"};
  LintResult res = lint_source(R"(
    array B[5];
    array A[2];
    for i = 1 to 10
      use A[i];
  )",
                               opts);
  EXPECT_TRUE(has_id(res, "LMRE-W010"));
  EXPECT_FALSE(has_id(res, "LMRE-E001"));
  EXPECT_EQ(res.diagnostics.size(), 1u);
}

TEST(LintRender, TextAndJsonCarryIdAndPosition) {
  LintResult res = lint_source(R"(
    array A[4];
    for i = 1 to 10
      use A[i];
  )");
  ASSERT_FALSE(res.diagnostics.empty());
  std::string text = render_text(res.diagnostics, "bad.loop");
  EXPECT_NE(text.find("bad.loop:4:"), std::string::npos);
  EXPECT_NE(text.find("[LMRE-E001]"), std::string::npos);
  std::string json = render_json(res.diagnostics, "bad.loop").dump(2);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"id\": \"LMRE-E001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------
// Every shipped .loop example must lint clean: no errors AND no
// warnings (notes are allowed -- they document idioms, not problems).

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string loops_dir() {
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (!read_file(std::string(base) + "matmult.loop").empty()) return base;
  }
  return "";
}

TEST(LintExamples, AllShippedLoopFilesLintClean) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    std::string source = read_file(entry.path().string());
    ASSERT_FALSE(source.empty()) << entry.path();
    ProgramSourceMap pmap;
    Program p = parse_program(source, &pmap);
    LintResult res = lint_program(p, &pmap);
    EXPECT_EQ(res.count(Severity::kError), 0u)
        << entry.path() << "\n" << render_text(res.diagnostics, entry.path().string());
    EXPECT_EQ(res.count(Severity::kWarning), 0u)
        << entry.path() << "\n" << render_text(res.diagnostics, entry.path().string());
    ++checked;
  }
  EXPECT_GE(checked, 16u) << "example corpus shrank unexpectedly";
}

}  // namespace
}  // namespace lmre
