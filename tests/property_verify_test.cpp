// Differential suite for the dependence-preservation prover (src/verify).
//
// Each case draws a random 2- or 3-deep nest (uniform or non-uniform
// reference pairs) and a random plan (1-2 unimodular steps, sometimes a
// tiling chunk), runs verify_plan, and cross-checks the verdict against a
// brute-force oracle that enumerates EVERY conflicting iteration pair and
// compares its execution order under the original, transformed, and (when
// the plan tiles) tiled schedules:
//
//   * zero false-legal: a "legal" verdict with a conflicting pair whose
//     order the plan reverses is a soundness bug, full stop;
//   * completeness: when the prover claims exactness (no search budget
//     exhausted) and the oracle finds a reversal, the verdict must be
//     reversed -- and vice versa, an exact legal verdict means the oracle
//     finds nothing;
//   * every reversal witness replays: source precedes destination in the
//     original order and follows it under the plan's schedule;
//   * the independent checker (src/verify/checker.h) accepts every
//     certificate the prover emits;
//   * determinism: re-running the same cases from N concurrent threads
//     yields byte-identical certificates.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "linalg/mat.h"
#include "support/parallel_for.h"
#include "transform/tiling.h"
#include "verify/certificate.h"
#include "verify/checker.h"
#include "verify/verify.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0x5EED1E55 + seed); }

// Random nest: depth 2 or 3, one array, one write + two reads.  Half the
// draws share one access matrix (uniform pairs, distance-vector path); the
// rest perturb it (non-uniform, direction-vector path).
LoopNest random_nest(std::mt19937& rng, size_t depth) {
  std::uniform_int_distribution<Int> bnd(2, depth == 2 ? 6 : 4);
  std::uniform_int_distribution<Int> coef(-2, 2), off(-2, 2);
  std::uniform_int_distribution<int> coin(0, 1);

  NestBuilder b;
  std::vector<Int> hi(depth);
  for (size_t k = 0; k < depth; ++k) {
    hi[k] = bnd(rng);
    b.loop(std::string(1, static_cast<char>('i' + k)), 1, hi[k]);
  }

  const size_t dims = depth;  // square references keep conflicts plentiful
  auto random_access = [&] {
    IntMat a(dims, depth);
    for (size_t r = 0; r < dims; ++r) {
      for (size_t c = 0; c < depth; ++c) a(r, c) = coef(rng);
    }
    return a;
  };
  IntMat base = random_access();
  const bool uniform = coin(rng) == 1;

  // Extents generous enough for any touched index (verify and the oracle
  // work on relocatable index windows, so only validity matters).
  std::vector<Int> extents(dims);
  for (size_t r = 0; r < dims; ++r) {
    Int span = 3;  // max |offset| + 1
    for (size_t c = 0; c < depth; ++c) span += 2 * hi[c];  // max |coef| = 2
    extents[r] = 2 * span + 1;
  }
  ArrayId a = b.array("A", extents);

  auto random_offset = [&] {
    IntVec o(dims);
    for (size_t r = 0; r < dims; ++r) o[r] = off(rng);
    return o;
  };
  StatementBuilder s = b.statement();
  s.write(a, base, random_offset());
  s.read(a, uniform ? base : random_access(), random_offset());
  s.read(a, uniform ? base : random_access(), random_offset());
  return b.build();
}

// Random unimodular matrix: identity stirred by elementary row operations
// (swap, negate, shear), all determinant-preserving up to sign.
IntMat random_unimodular(std::mt19937& rng, size_t n) {
  std::uniform_int_distribution<size_t> row(0, n - 1);
  std::uniform_int_distribution<Int> shear(-1, 1);
  std::uniform_int_distribution<int> op(0, 2), reps(2, 4);
  IntMat m = IntMat::identity(n);
  const int k = reps(rng);
  for (int t = 0; t < k; ++t) {
    size_t r1 = row(rng), r2 = row(rng);
    switch (op(rng)) {
      case 0:
        for (size_t c = 0; c < n; ++c) std::swap(m(r1, c), m(r2, c));
        break;
      case 1:
        for (size_t c = 0; c < n; ++c) m(r1, c) = -m(r1, c);
        break;
      default:
        if (r1 != r2) {
          Int f = shear(rng);
          for (size_t c = 0; c < n; ++c) m(r1, c) += f * m(r2, c);
        }
        break;
    }
  }
  return m;
}

VerifyPlan random_plan(std::mt19937& rng, size_t n) {
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<Int> tile(2, 4);
  VerifyPlan plan;
  plan.steps.push_back(random_unimodular(rng, n));
  if (pct(rng) < 30) plan.steps.push_back(random_unimodular(rng, n));
  if (pct(rng) < 30) {
    plan.tile_sizes.resize(n);
    for (size_t k = 0; k < n; ++k) plan.tile_sizes[k] = tile(rng);
  }
  return plan;
}

std::vector<IntVec> box_points(const IntBox& box) {
  std::vector<IntVec> pts;
  IntVec cur(box.dims());
  for (size_t k = 0; k < box.dims(); ++k) cur[k] = box.range(k).lo;
  while (true) {
    pts.push_back(cur);
    size_t k = box.dims();
    while (k > 0) {
      --k;
      if (cur[k] < box.range(k).hi) {
        ++cur[k];
        for (size_t m = k + 1; m < box.dims(); ++m) cur[m] = box.range(m).lo;
        break;
      }
      if (k == 0) return pts;
    }
  }
}

// One conflicting pair the oracle found reversed: refs src/dst touch the
// same element, src runs first originally, dst runs first under the plan.
struct Reversal {
  size_t src_ref = 0, dst_ref = 0;
  IntVec src_iter, dst_iter;
};

// Brute force over all conflicting iteration pairs of memory-dependent
// reference pairs (at least one endpoint writes).  `schedule` maps an
// original iteration to its execution position under the plan.
std::vector<Reversal> oracle_reversals(
    const LoopNest& nest, const std::vector<IntVec>& pts,
    const std::map<std::vector<Int>, size_t>& schedule) {
  std::vector<Reversal> out;
  std::vector<ArrayRef> refs = nest.all_refs();
  // element -> iterations touching it, per reference.
  std::vector<std::map<std::vector<Int>, std::vector<IntVec>>> touched(refs.size());
  for (size_t r = 0; r < refs.size(); ++r) {
    for (const IntVec& p : pts) touched[r][refs[r].index_at(p).data()].push_back(p);
  }
  for (size_t r1 = 0; r1 < refs.size(); ++r1) {
    for (size_t r2 = 0; r2 < refs.size(); ++r2) {
      if (refs[r1].array != refs[r2].array) continue;
      if (!refs[r1].is_write() && !refs[r2].is_write()) continue;
      for (const auto& [elem, iters] : touched[r1]) {
        auto it = touched[r2].find(elem);
        if (it == touched[r2].end()) continue;
        for (const IntVec& i : iters) {
          for (const IntVec& j : it->second) {
            if (!i.lex_less(j)) continue;  // source strictly first
            if (schedule.at(j.data()) < schedule.at(i.data())) {
              out.push_back({r1, r2, i, j});
            }
          }
        }
      }
    }
  }
  return out;
}

// Execution position of every iteration under the plan: lexicographic rank
// of the transformed time, or the tiled visit order when the plan tiles.
std::map<std::vector<Int>, size_t> plan_schedule(const LoopNest& nest,
                                                 const VerifyPlan& plan,
                                                 const std::vector<IntVec>& pts) {
  std::map<std::vector<Int>, size_t> schedule;
  IntMat t = plan.combined(nest.depth());
  if (plan.has_tiling()) {
    std::vector<IntVec> order = tiled_order(nest, t, plan.tile_sizes);
    for (size_t p = 0; p < order.size(); ++p) schedule[order[p].data()] = p;
    return schedule;
  }
  std::vector<IntVec> times;
  times.reserve(pts.size());
  for (const IntVec& p : pts) times.push_back(t * p);
  std::sort(times.begin(), times.end(),
            [](const IntVec& a, const IntVec& b) { return a.lex_less(b); });
  for (const IntVec& p : pts) {
    IntVec time = t * p;
    size_t rank = static_cast<size_t>(
        std::lower_bound(times.begin(), times.end(), time,
                         [](const IntVec& a, const IntVec& b) {
                           return a.lex_less(b);
                         }) -
        times.begin());
    schedule[p.data()] = rank;
  }
  return schedule;
}

// Tight search budget keeps the non-uniform Fourier-Motzkin branches cheap
// across 300 cases; an exhausted budget soundly degrades the verdict to
// kUnproven (never to legal), which the assertions below tolerate.
VerifyOptions test_options() {
  VerifyOptions opts;
  opts.search_budget = 20'000;
  return opts;
}

void check_case(int seed, size_t depth) {
  auto rng = rng_for(seed);
  LoopNest nest = random_nest(rng, depth);
  VerifyPlan plan = random_plan(rng, depth);
  VerifyResult res = verify_plan(nest, plan, test_options());
  ASSERT_TRUE(res.structure_error.empty()) << res.structure_error;

  CertificateCheck check = check_certificate(nest, res);
  EXPECT_TRUE(check.ok) << "seed " << seed << ": "
                        << (check.failures.empty() ? "" : check.failures[0]);

  std::vector<IntVec> pts = box_points(nest.bounds());
  std::map<std::vector<Int>, size_t> schedule = plan_schedule(nest, plan, pts);
  std::vector<Reversal> reversed = oracle_reversals(nest, pts, schedule);

  // Certification looks at the plain transformed order for legality and at
  // the tiled order only through the tile-shape precondition, so compare
  // against the schedule certification actually speaks about.
  std::vector<Reversal> plain_reversed = reversed;
  if (plan.has_tiling()) {
    VerifyPlan untiled = plan;
    untiled.tile_sizes.clear();
    plain_reversed = oracle_reversals(nest, pts, plan_schedule(nest, untiled, pts));
  }

  if (res.legal) {
    // THE property: a legal verdict with a concrete reversed pair under the
    // transformed order is a soundness hole.
    EXPECT_TRUE(plain_reversed.empty())
        << "seed " << seed << ": verdict says legal but " << plain_reversed.size()
        << " conflicting pairs reverse, e.g. "
        << plain_reversed[0].src_iter.str() << " -> "
        << plain_reversed[0].dst_iter.str() << " under plan " << plan.str();
    // And a certified tiling plan must preserve order under the actual
    // tiled schedule as well.
    if (plan.has_tiling() && res.certified) {
      EXPECT_TRUE(reversed.empty())
          << "seed " << seed << ": certified tiling plan reverses "
          << reversed.size() << " pairs in tiled order, plan " << plan.str();
    }
  } else if (res.exact) {
    // Exact illegal verdicts must be real: the oracle sees the reversal too.
    bool any_memory_reversed = false;
    for (const DepVerdict& v : res.verdicts) {
      if (v.status == DepStatus::kReversed) any_memory_reversed = true;
    }
    if (any_memory_reversed) {
      EXPECT_FALSE(plain_reversed.empty())
          << "seed " << seed << ": exact reversed verdict but the oracle "
          << "finds no reversed pair, plan " << plan.str();
    }
  }
  if (res.exact && plain_reversed.empty()) {
    EXPECT_TRUE(res.legal) << "seed " << seed
                           << ": no pair reverses yet an exact verdict "
                           << "withholds legality, plan " << plan.str();
  }

  // Witness replay: every reversal witness is a concrete conflicting pair
  // whose order flips under the schedule it names.
  for (const DepVerdict& v : res.verdicts) {
    if (v.status != DepStatus::kReversed || !v.witness.has_value()) continue;
    const IterationWitness& w = *v.witness;
    ASSERT_TRUE(w.src_iter.lex_less(w.dst_iter)) << "seed " << seed;
    auto si = schedule.find(w.src_iter.data());
    auto di = schedule.find(w.dst_iter.data());
    if (!plan.has_tiling()) {
      ASSERT_NE(si, schedule.end());
      ASSERT_NE(di, schedule.end());
      EXPECT_LT(di->second, si->second)
          << "seed " << seed << ": witness does not replay, plan " << plan.str();
    }
    EXPECT_EQ(nest.all_refs()[v.src_ref].index_at(w.src_iter).data(),
              nest.all_refs()[v.dst_ref].index_at(w.dst_iter).data())
        << "seed " << seed << ": witness endpoints touch different elements";
  }
}

// ---------------------------------------------------------------------------
// 300 random (nest, plan) draws, one per parameter so ctest spreads them.

class VerifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(VerifyProperty, LegalVerdictsMatchTheOrderOracle) {
  const int seed = GetParam();
  check_case(seed, /*depth=*/seed % 2 == 0 ? 2 : 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VerifyProperty, ::testing::Range(0, 300));

// ---------------------------------------------------------------------------
// Determinism: the same case re-proved from 4 concurrent workers serializes
// to the byte-identical certificate produced serially.

TEST(VerifyPropertyThreads, CertificatesAreByteIdenticalAcrossThreads) {
  const int kCases = 40;
  std::vector<std::string> serial(kCases);
  for (int s = 0; s < kCases; ++s) {
    auto rng = rng_for(s);
    LoopNest nest = random_nest(rng, s % 2 == 0 ? 2 : 3);
    VerifyPlan plan = random_plan(rng, nest.depth());
    serial[static_cast<size_t>(s)] =
        certificate_json(nest, verify_plan(nest, plan, test_options())).dump();
  }
  std::vector<std::string> threaded = parallel_map<std::string>(
      kCases, /*threads=*/4, [&](Int s) {
        auto rng = rng_for(static_cast<int>(s));
        LoopNest nest = random_nest(rng, s % 2 == 0 ? 2 : 3);
        VerifyPlan plan = random_plan(rng, nest.depth());
        return certificate_json(nest, verify_plan(nest, plan, test_options())).dump();
      });
  for (int s = 0; s < kCases; ++s) {
    EXPECT_EQ(serial[static_cast<size_t>(s)], threaded[static_cast<size_t>(s)])
        << "case " << s;
  }
}

}  // namespace
}  // namespace lmre
