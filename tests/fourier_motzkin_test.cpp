#include <gtest/gtest.h>

#include <random>
#include <set>

#include "polyhedra/box.h"
#include "polyhedra/fourier_motzkin.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {
namespace {

// Brute-force reference: enumerate a wide bounding box, keep points the
// system accepts.
std::set<std::vector<Int>> brute_force(const ConstraintSystem& sys, Int lo, Int hi) {
  std::set<std::vector<Int>> pts;
  const size_t n = sys.dims();
  std::vector<Int> p(n, lo);
  for (;;) {
    IntVec v{std::vector<Int>(p)};
    if (sys.contains(v)) pts.insert(p);
    size_t k = n;
    while (k > 0) {
      if (++p[k - 1] <= hi) break;
      p[k - 1] = lo;
      --k;
    }
    if (k == 0) break;
  }
  return pts;
}

std::set<std::vector<Int>> scanned(const ConstraintSystem& sys) {
  std::set<std::vector<Int>> pts;
  scan(sys, [&](const IntVec& p) { pts.insert(p.data()); });
  return pts;
}

TEST(FourierMotzkin, BoxBoundsRoundTrip) {
  IntBox box = IntBox::from_upper_bounds({3, 4});
  LoopBounds lb = extract_loop_bounds(box.to_constraints());
  ASSERT_EQ(lb.depth(), 2u);
  Int lo, hi;
  ASSERT_TRUE(lb.range(0, IntVec(2), lo, hi));
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 3);
  IntVec outer(2);
  outer[0] = 2;
  ASSERT_TRUE(lb.range(1, outer, lo, hi));
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 4);
}

TEST(FourierMotzkin, TriangleBounds) {
  // { (x, y) : 1 <= x <= 5, 1 <= y <= x }.
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 1, 5);
  sys.add(AffineExpr::variable(2, 1) - 1);                               // y >= 1
  sys.add(AffineExpr::variable(2, 0) - AffineExpr::variable(2, 1));      // x >= y
  EXPECT_EQ(count_points(sys), 15);  // 1+2+3+4+5
  EXPECT_EQ(scanned(sys), brute_force(sys, -2, 8));
}

TEST(FourierMotzkin, TransformedParallelogram) {
  // Image of [1,4]x[1,3] under u = i+j, v = j: scanning u, v must visit 12
  // points.
  ConstraintSystem sys(2);
  // i = u - v in [1,4]; j = v in [1,3].
  AffineExpr u = AffineExpr::variable(2, 0), v = AffineExpr::variable(2, 1);
  sys.add_range(u - v, 1, 4);
  sys.add_range(v, 1, 3);
  EXPECT_EQ(count_points(sys), 12);
  EXPECT_EQ(scanned(sys), brute_force(sys, -5, 12));
}

TEST(FourierMotzkin, EmptySystemDetected) {
  ConstraintSystem sys(2);
  sys.add(AffineExpr::variable(2, 0) - 5);        // x >= 5
  sys.add(-AffineExpr::variable(2, 0) + 3);       // x <= 3
  sys.add_range(AffineExpr::variable(2, 1), 1, 2);
  LoopBounds lb = extract_loop_bounds(sys);
  // Either the emptiness is detected during elimination or the scan visits
  // nothing.
  Int count = 0;
  scan(lb, [&](const IntVec&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(FourierMotzkin, UnboundedThrows) {
  ConstraintSystem sys(2);
  sys.add(AffineExpr::variable(2, 0) - 1);  // x >= 1 only: no upper bound
  sys.add_range(AffineExpr::variable(2, 1), 1, 2);
  EXPECT_THROW(extract_loop_bounds(sys), UnsupportedError);
}

TEST(FourierMotzkin, EliminationKeepsProjection) {
  // Eliminating y from { x+y <= 6, y >= 1, x >= 0 } must allow x in [0,5].
  ConstraintSystem sys(2);
  AffineExpr x = AffineExpr::variable(2, 0), y = AffineExpr::variable(2, 1);
  sys.add(-(x + y) + 6);
  sys.add(y - 1);
  sys.add(x);
  ConstraintSystem proj = eliminate_variable(sys, 1);
  for (Int xv = 0; xv <= 5; ++xv) {
    EXPECT_TRUE(proj.contains(IntVec{xv, 0})) << xv;
  }
  EXPECT_FALSE(proj.contains(IntVec{6, 0}));
}

TEST(FourierMotzkin, DivisorBoundsUseCeilFloor) {
  // { x : 2x >= 3, 2x <= 9 } -> x in [2, 4].
  ConstraintSystem sys(1);
  sys.add(AffineExpr(IntVec{2}, -3));   // 2x - 3 >= 0
  sys.add(AffineExpr(IntVec{-2}, 9));   // 9 - 2x >= 0
  LoopBounds lb = extract_loop_bounds(sys);
  Int lo, hi;
  ASSERT_TRUE(lb.range(0, IntVec(1), lo, hi));
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 4);
}

TEST(FourierMotzkin, RandomizedAgainstBruteForce) {
  std::mt19937 rng(31);
  std::uniform_int_distribution<Int> coef(-3, 3), cons(-6, 6);
  int nonempty = 0;
  for (int iter = 0; iter < 60; ++iter) {
    ConstraintSystem sys(2);
    // Bounding box keeps the system bounded; add random cuts.
    sys.add_range(AffineExpr::variable(2, 0), -4, 4);
    sys.add_range(AffineExpr::variable(2, 1), -4, 4);
    for (int c = 0; c < 3; ++c) {
      IntVec v{coef(rng), coef(rng)};
      sys.add(AffineExpr(v, cons(rng)));
    }
    auto expect = brute_force(sys, -5, 5);
    auto got = scanned(sys);
    EXPECT_EQ(got, expect) << "iter " << iter;
    if (!expect.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 10);  // the sweep exercised non-trivial cases
}

TEST(FourierMotzkin, RandomizedTriple) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<Int> coef(-2, 2), cons(-4, 6);
  for (int iter = 0; iter < 25; ++iter) {
    ConstraintSystem sys(3);
    for (size_t d = 0; d < 3; ++d) sys.add_range(AffineExpr::variable(3, d), -3, 3);
    for (int c = 0; c < 2; ++c) {
      IntVec v{coef(rng), coef(rng), coef(rng)};
      sys.add(AffineExpr(v, cons(rng)));
    }
    EXPECT_EQ(scanned(sys), brute_force(sys, -4, 4)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace lmre
