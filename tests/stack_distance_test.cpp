#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/stack_distance.h"
#include "ir/builder.h"
#include "layout/spatial.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(StackDistance, ChainDistances) {
  // A[i] = A[i-1]: when A[i-1] is re-read, both A[i] (just written) and the
  // stale boundary element A[i-2]'s chain head sit above it on the stack:
  // every one of the five re-accesses lands at stack distance 3.
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId a = b.array("A", {7});
  b.statement().write(a, {{1}}, {0}).read(a, {{1}}, {-1});
  StackDistanceProfile p = stack_distances(b.build());
  EXPECT_EQ(p.cold_accesses, 7);
  EXPECT_EQ(p.total_accesses, 12);
  EXPECT_EQ(p.histogram.at(3), 5);
  EXPECT_EQ(p.max_distance(), 3);
  // An LRU cache of 3 elements captures the whole chain; 2 does not.
  EXPECT_EQ(p.lru_misses(3), p.cold_accesses);
  EXPECT_GT(p.lru_misses(2), p.cold_accesses);
}

TEST(StackDistance, ColdPlusHitsEqualsTotal) {
  LoopNest nest = codes::example_8();
  StackDistanceProfile p = stack_distances(nest);
  Int hits = 0;
  for (auto& [d, c] : p.histogram) hits += c;
  EXPECT_EQ(p.cold_accesses + hits, p.total_accesses);
  EXPECT_EQ(p.cold_accesses, 94);  // distinct elements
}

TEST(StackDistance, LruMissesMonotoneInCapacity) {
  LoopNest nest = codes::example_8();
  StackDistanceProfile p = stack_distances(nest);
  Int prev = p.lru_misses(0);
  for (Int c = 1; c <= p.max_distance() + 1; ++c) {
    Int cur = p.lru_misses(c);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(prev, p.cold_accesses);  // beyond max distance: cold only
}

TEST(StackDistance, PredictsCacheSimulatorExactly) {
  // The histogram must reproduce the fully-associative LRU simulator at
  // every capacity (unit lines, element addressing).
  LoopNest nest = codes::example_8();
  StackDistanceProfile p = stack_distances(nest);
  auto layouts = default_layouts(nest);
  for (Int cap : {2, 8, 21, 32, 44, 64, 128}) {
    CacheStats sim = simulate_cache(nest, layouts, CacheConfig{cap, 1, 0});
    EXPECT_EQ(p.lru_misses(cap), sim.misses) << "capacity " << cap;
  }
}

TEST(StackDistance, TransformShiftsTheCurveLeft) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  StackDistanceProfile before = stack_distances(nest);
  StackDistanceProfile after = stack_distances(nest, &res->transform);
  // Same cold misses (same elements), but the transformed order needs a far
  // smaller cache for the same hits.
  EXPECT_EQ(before.cold_accesses, after.cold_accesses);
  EXPECT_LT(after.max_distance(), before.max_distance());
  // At the transformed window size, the transformed order is cold-only.
  EXPECT_EQ(after.lru_misses(32), after.cold_accesses);
  EXPECT_GT(before.lru_misses(32), before.cold_accesses);
}

TEST(StackDistance, MatmultCurveKneeAtOperandSize) {
  LoopNest nest = codes::kernel_matmult(8);
  StackDistanceProfile p = stack_distances(nest);
  // B is fully reused across i: the largest distances are ~2*n^2; below
  // that capacity B misses every sweep.
  EXPECT_GT(p.lru_misses(32), p.cold_accesses);
  EXPECT_EQ(p.lru_misses(p.max_distance()), p.cold_accesses);
}

}  // namespace
}  // namespace lmre
