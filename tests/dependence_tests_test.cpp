#include <gtest/gtest.h>

#include <random>

#include "codes/examples.h"
#include "dependence/tests.h"
#include "ir/builder.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {
namespace {

// Brute-force reference: does any (I, J) in box x box touch the same
// element?
ExactDependence brute(const ArrayRef& a, const ArrayRef& b, const IntBox& box) {
  ExactDependence result;
  scan(box.to_constraints(), [&](const IntVec& i) {
    scan(box.to_constraints(), [&](const IntVec& j) {
      if (a.index_at(i) == b.index_at(j)) {
        result.any = true;
        if (!(i == j)) result.cross_iteration = true;
      }
    });
  });
  return result;
}

ArrayRef make_ref(IntMat access, IntVec offset, AccessKind kind = AccessKind::kRead) {
  return ArrayRef{0, kind, std::move(access), std::move(offset)};
}

TEST(GcdTest, DisprovesParityMismatch) {
  // 2i vs 2j+1: even vs odd, never equal.
  ArrayRef a = make_ref(IntMat{{2, 0}}, IntVec{0});
  ArrayRef b = make_ref(IntMat{{0, 2}}, IntVec{1});
  EXPECT_FALSE(gcd_test_may_depend(a, b));
}

TEST(GcdTest, PassesWhenDivisible) {
  ArrayRef a = make_ref(IntMat{{2, 0}}, IntVec{0});
  ArrayRef b = make_ref(IntMat{{0, 4}}, IntVec{2});
  EXPECT_TRUE(gcd_test_may_depend(a, b));
}

TEST(GcdTest, ZeroRowNeedsZeroOffset) {
  ArrayRef a = make_ref(IntMat{{0, 0}}, IntVec{3});
  ArrayRef b = make_ref(IntMat{{0, 0}}, IntVec{5});
  EXPECT_FALSE(gcd_test_may_depend(a, b));  // 3 != 5, constant subscripts
  ArrayRef c = make_ref(IntMat{{0, 0}}, IntVec{3});
  EXPECT_TRUE(gcd_test_may_depend(a, c));
}

TEST(Banerjee, DisprovesDisjointRanges) {
  // i in [1,10] vs j+50: ranges [1,10] and [51,60] never meet.
  IntBox box = IntBox::from_upper_bounds({10, 10});
  ArrayRef a = make_ref(IntMat{{1, 0}}, IntVec{0});
  ArrayRef b = make_ref(IntMat{{0, 1}}, IntVec{50});
  EXPECT_FALSE(banerjee_may_depend(a, b, box));
  EXPECT_TRUE(gcd_test_may_depend(a, b));  // gcd alone cannot see it
}

TEST(Banerjee, PassesOverlappingRanges) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  ArrayRef a = make_ref(IntMat{{1, 0}}, IntVec{0});
  ArrayRef b = make_ref(IntMat{{0, 1}}, IntVec{5});
  EXPECT_TRUE(banerjee_may_depend(a, b, box));
}

TEST(Exact, Example6PairDepends) {
  // 3i+7j-10 and 4i-3j+60 do share elements (Example 6).
  IntBox box = IntBox::from_upper_bounds({20, 20});
  ArrayRef a = make_ref(IntMat{{3, 7}}, IntVec{-10});
  ArrayRef b = make_ref(IntMat{{4, -3}}, IntVec{60});
  ExactDependence e = depends_exact(a, b, box);
  EXPECT_TRUE(e.any);
  EXPECT_TRUE(e.cross_iteration);
}

TEST(Exact, SameIterationOnly) {
  // A[i][j] vs A[i][j]: only I == J solutions.
  IntBox box = IntBox::from_upper_bounds({4, 4});
  ArrayRef a = make_ref(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0});
  ExactDependence e = depends_exact(a, a, box);
  EXPECT_TRUE(e.any);
  EXPECT_FALSE(e.cross_iteration);
}

TEST(Exact, UnreachableOffset) {
  IntBox box = IntBox::from_upper_bounds({5, 5});
  ArrayRef a = make_ref(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0});
  ArrayRef b = make_ref(IntMat{{1, 0}, {0, 1}}, IntVec{-20, 0});
  ExactDependence e = depends_exact(a, b, box);
  EXPECT_FALSE(e.any);
}

TEST(Exact, MatchesBruteForceRandomized) {
  std::mt19937 rng(41);
  std::uniform_int_distribution<Int> coefd(-3, 3), off(-6, 6);
  for (int iter = 0; iter < 50; ++iter) {
    IntBox box = IntBox::from_upper_bounds({4, 5});
    ArrayRef a = make_ref(IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)});
    ArrayRef b = make_ref(IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)});
    ExactDependence fast = depends_exact(a, b, box);
    ExactDependence slow = brute(a, b, box);
    EXPECT_EQ(fast.any, slow.any) << "iter " << iter;
    EXPECT_EQ(fast.cross_iteration, slow.cross_iteration) << "iter " << iter;
  }
}

TEST(Exact, MatchesBruteForce2D) {
  std::mt19937 rng(43);
  std::uniform_int_distribution<Int> coefd(-2, 2), off(-3, 3);
  for (int iter = 0; iter < 30; ++iter) {
    IntBox box = IntBox::from_upper_bounds({4, 4});
    ArrayRef a = make_ref(IntMat{{coefd(rng), coefd(rng)}, {coefd(rng), coefd(rng)}},
                          IntVec{off(rng), off(rng)});
    ArrayRef b = make_ref(IntMat{{coefd(rng), coefd(rng)}, {coefd(rng), coefd(rng)}},
                          IntVec{off(rng), off(rng)});
    ExactDependence fast = depends_exact(a, b, box);
    ExactDependence slow = brute(a, b, box);
    EXPECT_EQ(fast.any, slow.any) << "iter " << iter;
    EXPECT_EQ(fast.cross_iteration, slow.cross_iteration) << "iter " << iter;
  }
}

TEST(Screens, NeverContradictExact) {
  // A screen saying "independent" must imply no exact dependence.
  std::mt19937 rng(47);
  std::uniform_int_distribution<Int> coefd(-3, 3), off(-10, 10);
  for (int iter = 0; iter < 60; ++iter) {
    IntBox box = IntBox::from_upper_bounds({5, 4});
    ArrayRef a = make_ref(IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)});
    ArrayRef b = make_ref(IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)});
    ExactDependence e = depends_exact(a, b, box);
    if (!gcd_test_may_depend(a, b)) {
      EXPECT_FALSE(e.any) << "gcd screen unsound at iter " << iter;
    }
    if (!banerjee_may_depend(a, b, box)) {
      EXPECT_FALSE(e.any) << "banerjee screen unsound at iter " << iter;
    }
  }
}

TEST(MayDepend, ThreeValuedAnswers) {
  IntBox small = IntBox::from_upper_bounds({5, 5});
  ArrayRef a = make_ref(IntMat{{2, 0}}, IntVec{0});
  ArrayRef odd = make_ref(IntMat{{0, 2}}, IntVec{1});
  EXPECT_EQ(may_depend(a, odd, small), DepAnswer::kIndependent);
  ArrayRef b = make_ref(IntMat{{0, 2}}, IntVec{2});
  EXPECT_EQ(may_depend(a, b, small), DepAnswer::kDependent);
  // A huge space with a tiny exact budget falls back to kMaybe.
  IntBox huge = IntBox::from_upper_bounds({100000, 100000});
  EXPECT_EQ(may_depend(a, b, huge, /*exact_limit=*/10), DepAnswer::kMaybe);
}

TEST(Checks, MismatchedPairsRejected) {
  ArrayRef a = make_ref(IntMat{{1, 0}}, IntVec{0});
  ArrayRef b = make_ref(IntMat{{1, 0}, {0, 1}}, IntVec{0, 0});
  EXPECT_THROW(gcd_test_may_depend(a, b), InvalidArgument);
  ArrayRef c = make_ref(IntMat{{1, 0}}, IntVec{0});
  c.array = 1;
  EXPECT_THROW(gcd_test_may_depend(a, c), InvalidArgument);
}

}  // namespace
}  // namespace lmre
