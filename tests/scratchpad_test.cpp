#include <gtest/gtest.h>

#include "alloc/scratchpad.h"
#include "codes/examples.h"
#include "ir/builder.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "layout/spatial.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(Scratchpad, SlotsEqualExactMwsOnExamples) {
  // Interval graphs are perfect: the linear scan must hit the MWS bound
  // exactly, and the assignment must verify conflict-free.
  for (auto nest : {codes::example_2(), codes::example_4(), codes::example_7(),
                    codes::example_8(), codes::example_5()}) {
    Allocation a = allocate_scratchpad(nest);
    EXPECT_TRUE(a.verified);
    EXPECT_EQ(a.slots, simulate(nest).mws_total);
  }
}

TEST(Scratchpad, SlotsEqualExactMwsOnKernels) {
  for (auto& e : codes::figure2_suite()) {
    Allocation a = allocate_scratchpad(e.nest);
    EXPECT_TRUE(a.verified) << e.name;
    EXPECT_EQ(a.slots, simulate(e.nest).mws_total) << e.name;
  }
}

TEST(Scratchpad, TransformedOrderShrinksAllocation) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  Allocation before = allocate_scratchpad(nest);
  Allocation after = allocate_scratchpad(nest, &res->transform);
  EXPECT_EQ(before.slots, 44);
  EXPECT_EQ(after.slots, 21);
  EXPECT_TRUE(after.verified);
}

TEST(Scratchpad, NoLiveElementsNoSlots) {
  
  LoopNest nest = [] {
    NestBuilder b;
    b.loop("i", 1, 5);
    ArrayId a = b.array("A", {5});
    b.statement().write(a, {{1}}, {0});
    return b.build();
  }();
  Allocation alloc = allocate_scratchpad(nest);
  EXPECT_EQ(alloc.slots, 0);
  EXPECT_EQ(alloc.live_elements, 0);
  EXPECT_TRUE(alloc.verified);
}

TEST(Modulo, LowerBoundIsMws) {
  LoopNest nest = codes::example_8();
  ModuloBuffer mb = min_modulo_buffer(nest, default_layouts(nest));
  EXPECT_EQ(mb.lower_bound, 44);
  EXPECT_TRUE(mb.found);
  EXPECT_GE(mb.modulus, mb.lower_bound);
}

TEST(Modulo, NeverBelowGreedySlots) {
  for (auto nest : {codes::example_4(), codes::example_7(), codes::example_2()}) {
    Allocation a = allocate_scratchpad(nest);
    ModuloBuffer mb = min_modulo_buffer(nest, default_layouts(nest));
    EXPECT_TRUE(mb.found);
    EXPECT_GE(mb.modulus, a.slots);
  }
}

TEST(Modulo, CloseToLowerBoundOnStreams) {
  // For the 1-d stream loops the modulo buffer should land within a small
  // factor of the exact window.
  LoopNest nest = codes::example_4();
  ModuloBuffer mb = min_modulo_buffer(nest, default_layouts(nest));
  ASSERT_TRUE(mb.found);
  EXPECT_LE(mb.modulus, 2 * mb.lower_bound + 2);
}

TEST(Modulo, TransformedOrderSupported) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  ModuloBuffer before = min_modulo_buffer(nest, default_layouts(nest));
  ModuloBuffer after = min_modulo_buffer(nest, default_layouts(nest), &res->transform);
  ASSERT_TRUE(before.found && after.found);
  EXPECT_LT(after.modulus, before.modulus);
  EXPECT_EQ(after.lower_bound, 21);
}

TEST(Modulo, PerArrayBuffers) {
  LoopNest nest = codes::kernel_matmult(6);
  ModuloBuffer mb = min_modulo_buffer(nest, default_layouts(nest));
  ASSERT_TRUE(mb.found);
  // Three arrays with windows ~1, ~n, ~n^2: the summed modulus must cover
  // at least the summed per-array windows.
  TraceStats s = simulate(nest);
  Int sum = 0;
  for (auto& [id, w] : s.mws) sum += w;
  EXPECT_GE(mb.modulus, sum);
}

}  // namespace
}  // namespace lmre
