// Unit tests for the C backend (src/codegen) and the typed request API
// around it: deterministic emission, the certification gate, the
// kind/exit-code registries, per-kind cache keys, and v1/v2 wire parsing.

#include <gtest/gtest.h>

#include <string>

#include "codegen/codegen.h"
#include "ir/parser.h"
#include "runtime/session.h"
#include "server/wire.h"
#include "support/error.h"
#include "verify/verify.h"

namespace lmre {
namespace {

const char* kExample8 =
    "array X[106];\n"
    "for i = 1 to 25\n"
    "  for j = 1 to 10\n"
    "    X[2*i + 5*j + 1] = X[2*i + 5*j + 5];\n";

const char* kSmallNest =
    "array A[32];\n"
    "for i = 1 to 8\n"
    "  for j = 1 to 8\n"
    "    A[i + j] = A[i + j - 1];\n";

TEST(Codegen, EmissionIsDeterministic) {
  LoopNest nest = parse_nest(kExample8);
  VerifyPlan identity;
  CodegenResult a = emit_c(nest, identity);
  CodegenResult b = emit_c(nest, identity);
  EXPECT_EQ(a.c_source, b.c_source);
  EXPECT_FALSE(a.c_source.empty());
  EXPECT_EQ(a.window_cells, b.window_cells);
  EXPECT_EQ(a.mws_total, b.mws_total);
}

TEST(Codegen, BufferPlansAreCollisionFreeAndWindowSized) {
  LoopNest nest = parse_nest(kExample8);
  CodegenResult cg = emit_c(nest, VerifyPlan{});
  ASSERT_EQ(cg.buffers.size(), 1u);
  const BufferPlan& b = cg.buffers[0];
  EXPECT_EQ(b.name, "X");
  EXPECT_TRUE(b.collision_free);
  EXPECT_GE(b.modulus, b.mws);   // a buffer can never be smaller than MWS
  EXPECT_LE(b.modulus, b.region);
  EXPECT_EQ(cg.window_cells, b.modulus);
  EXPECT_LT(cg.window_cells, cg.original_cells);
  EXPECT_GT(cg.footprint_ratio(), 0.0);
  EXPECT_LT(cg.footprint_ratio(), 1.0);
}

TEST(Codegen, GeneratedUnitEmbedsSelfCheck) {
  LoopNest nest = parse_nest(kSmallNest);
  CodegenOptions opts;
  opts.stem = "unit";
  CodegenResult cg = emit_c(nest, VerifyPlan{}, opts);
  // The unit carries both nests and the check harness under the stem.
  EXPECT_NE(cg.c_source.find("lm_unit_original"), std::string::npos);
  EXPECT_NE(cg.c_source.find("lm_unit_window"), std::string::npos);
  EXPECT_NE(cg.c_source.find("lm_unit_check"), std::string::npos);
  EXPECT_NE(cg.c_source.find("int main(void)"), std::string::npos);
  // Non-standalone units omit main but keep the shared-runtime guard so
  // several kernels concatenate into one TU.
  opts.standalone = false;
  CodegenResult lib = emit_c(nest, VerifyPlan{}, opts);
  EXPECT_EQ(lib.c_source.find("int main(void)"), std::string::npos);
  EXPECT_NE(lib.c_source.find("#ifndef LMRE_RT"), std::string::npos);
}

TEST(Codegen, SessionRefusesUncertifiedPlans) {
  AnalysisSession session;
  // The i-reversal of Example 8 is refuted by the prover; codegen must
  // refuse it rather than emit order-breaking code.
  AnalysisRequest req{kExample8, "<test>",
                      AnalysisRequest::Codegen{"-1 0; 0 1", false, ""}};
  AnalysisResult res = session.run(req);
  EXPECT_EQ(res.status, ExitCode::kDiagnostics);
  EXPECT_NE(res.payload.find("uncertified"), std::string::npos);
}

TEST(Codegen, SessionRejectsMalformedPlanSpecs) {
  AnalysisSession session;
  AnalysisRequest req{kExample8, "<test>",
                      AnalysisRequest::Codegen{"not a plan", false, ""}};
  AnalysisResult res = session.run(req);
  EXPECT_EQ(res.status, ExitCode::kUsage);
  EXPECT_NE(res.payload.find("bad_plan"), std::string::npos);
}

TEST(Codegen, SessionEmitsWindowAccounting) {
  AnalysisSession session;
  AnalysisRequest req{kExample8, "<test>", AnalysisRequest::Kind::kCodegen};
  AnalysisResult res = session.run(req);
  EXPECT_EQ(res.status, ExitCode::kSuccess);
  EXPECT_NE(res.payload.find("\"codegen\""), std::string::npos);
  EXPECT_NE(res.payload.find("\"window_cells\""), std::string::npos);
  EXPECT_NE(res.payload.find("\"buffers\""), std::string::npos);
  // Identical request -> warm hit with the identical payload.
  AnalysisResult warm = session.run(req);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.payload, res.payload);
}

TEST(Codegen, RequestKeySeesEveryCodegenKnob) {
  AnalysisSession session;
  AnalysisRequest emit{kExample8, "<test>",
                       AnalysisRequest::Codegen{"", false, ""}};
  AnalysisRequest run{kExample8, "<test>",
                      AnalysisRequest::Codegen{"", true, ""}};
  AnalysisRequest cc{kExample8, "<test>",
                     AnalysisRequest::Codegen{"", true, "gcc"}};
  AnalysisRequest planned{kExample8, "<test>",
                          AnalysisRequest::Codegen{"1 0; 0 1", false, ""}};
  EXPECT_NE(session.request_key(emit), session.request_key(run));
  EXPECT_NE(session.request_key(run), session.request_key(cc));
  EXPECT_NE(session.request_key(emit), session.request_key(planned));
  // ...and a codegen request never collides with another kind.
  AnalysisRequest verify{kExample8, "<test>", AnalysisRequest::Kind::kVerify};
  EXPECT_NE(session.request_key(emit), session.request_key(verify));
}

TEST(Registry, KindNamesRoundTrip) {
  for (const AnalysisKindInfo& info : kAnalysisKinds) {
    EXPECT_STREQ(to_string(info.kind), info.name);
    auto parsed = kind_from_string(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.kind);
    // set_kind and the variant index agree with the registry row.
    AnalysisRequest req;
    req.set_kind(info.kind);
    EXPECT_EQ(req.kind(), info.kind);
  }
  EXPECT_FALSE(kind_from_string("bogus").has_value());
  std::string joined = kind_names_joined();
  EXPECT_NE(joined.find("codegen"), std::string::npos);
  EXPECT_NE(joined.find("verify"), std::string::npos);
}

TEST(Registry, ExitCodesMatchTable) {
  EXPECT_EQ(kExitCodeCount, 5u);
  for (const ExitCodeInfo& info : kExitCodes) {
    EXPECT_STREQ(to_string(info.code), info.name);
  }
  EXPECT_STREQ(to_string(ExitCode::kDiagnostics), "diagnostics");
}

TEST(Wire, V1RequestsStillParse) {
  // A v1 line: no schema_version, plan as a top-level key.
  ServerRequest req;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id": 1, "kind": "verify", "source": "x", "plan": "0 1; 1 0"})",
      &req, &error))
      << error;
  EXPECT_EQ(req.analysis.kind(), AnalysisRequest::Kind::kVerify);
  ASSERT_NE(req.analysis.verify(), nullptr);
  EXPECT_EQ(req.analysis.verify()->plan, "0 1; 1 0");

  ASSERT_TRUE(parse_request(
      R"({"id": 2, "schema_version": 1, "source": "x"})", &req, &error))
      << error;
  EXPECT_EQ(req.analysis.kind(), AnalysisRequest::Kind::kFull);
}

TEST(Wire, V2CodegenOptionsParse) {
  ServerRequest req;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id": 3, "schema_version": 2, "kind": "codegen", "source": "x",
          "options": {"plan": "auto", "run": true, "cc": "cc",
                      "deadline_ms": 50}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.analysis.kind(), AnalysisRequest::Kind::kCodegen);
  ASSERT_NE(req.analysis.codegen(), nullptr);
  EXPECT_EQ(req.analysis.codegen()->plan, "auto");
  EXPECT_TRUE(req.analysis.codegen()->run);
  EXPECT_EQ(req.analysis.codegen()->cc, "cc");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 50.0);
  // options.plan wins over a (v1-style) top-level plan.
  ASSERT_TRUE(parse_request(
      R"({"kind": "verify", "source": "x", "plan": "old",
          "options": {"plan": "new"}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.analysis.verify()->plan, "new");
}

TEST(Wire, UnsupportedSchemaVersionIsRejected) {
  ServerRequest req;
  std::string error;
  EXPECT_FALSE(parse_request(
      R"({"schema_version": 3, "source": "x"})", &req, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  EXPECT_FALSE(parse_request(
      R"({"schema_version": 0, "source": "x"})", &req, &error));
  EXPECT_FALSE(parse_request(
      R"({"schema_version": "2", "source": "x"})", &req, &error));
  // Typed option values are validated per kind.
  EXPECT_FALSE(parse_request(
      R"({"kind": "codegen", "source": "x", "options": {"run": "yes"}})",
      &req, &error));
}

TEST(Codegen, StructuralGatesThrow) {
  LoopNest nest = parse_nest(kExample8);
  VerifyPlan bad;
  bad.tile_sizes = {4};  // wrong arity for a 2-deep nest
  EXPECT_THROW(emit_c(nest, bad), UnsupportedError);
  CodegenOptions tiny;
  tiny.trace_limit = 10;  // 250 iterations >> 10
  EXPECT_THROW(emit_c(nest, VerifyPlan{}, tiny), UnsupportedError);
}

}  // namespace
}  // namespace lmre
