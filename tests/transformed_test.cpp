#include <gtest/gtest.h>

#include <map>

#include "codes/examples.h"
#include "exact/oracle.h"
#include "polyhedra/scanner.h"
#include "support/error.h"
#include "transform/transformed.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(Transformed, RejectsBadTransforms) {
  LoopNest nest = codes::example_8();
  EXPECT_THROW(TransformedNest(nest, IntMat{{2, 0}, {0, 1}}), InvalidArgument);
  EXPECT_THROW(TransformedNest(nest, IntMat::identity(3)), InvalidArgument);
}

TEST(Transformed, SpaceHasSameVolume) {
  LoopNest nest = codes::example_8();  // 25 x 10
  TransformedNest tn(nest, IntMat{{2, 3}, {1, 1}});
  EXPECT_EQ(count_points(tn.space()), nest.iteration_count());
}

TEST(Transformed, SpaceIsImageOfBox) {
  LoopNest nest = codes::example_2(4, 5);
  IntMat t{{1, 1}, {0, 1}};
  TransformedNest tn(nest, t);
  ConstraintSystem space = tn.space();
  // Every T*i for i in the box is in the space, and scanning maps back.
  scan(nest.bounds().to_constraints(), [&](const IntVec& i) {
    EXPECT_TRUE(space.contains(t * i));
  });
  scan(space, [&](const IntVec& u) {
    EXPECT_TRUE(nest.bounds().contains(tn.inverse() * u));
  });
}

TEST(Transformed, RefAccessComposedWithInverse) {
  LoopNest nest = codes::example_8();
  IntMat t{{2, 3}, {1, 1}};
  TransformedNest tn(nest, t);
  ArrayRef orig = nest.all_refs()[0];
  ArrayRef tr = tn.transformed_ref(orig);
  // For any iteration i, the transformed ref at u = T i touches the same
  // element.
  for (Int i = 1; i <= 5; ++i) {
    for (Int j = 1; j <= 5; ++j) {
      IntVec it{i, j};
      EXPECT_EQ(orig.index_at(it), tr.index_at(t * it));
    }
  }
}

TEST(Transformed, MaxspanInnerExactExample8) {
  // Row (2,3) over 25x10: rational maxspan 9/2 -> integer spans <= 4.
  LoopNest nest = codes::example_8();
  TransformedNest tn(nest, IntMat{{2, 3}, {1, 1}});
  EXPECT_LE(tn.maxspan_inner(), 4);
  EXPECT_GE(tn.maxspan_inner(), 3);
}

TEST(Transformed, MaxspanIdentity) {
  LoopNest nest = codes::example_8();
  TransformedNest tn(nest, IntMat::identity(2));
  EXPECT_EQ(tn.maxspan_inner(), 9);  // inner loop j spans 10 iterations
}

TEST(Transformed, SimulateAgreesWithFreeFunction) {
  LoopNest nest = codes::example_8();
  IntMat t{{2, 3}, {1, 1}};
  TraceStats a = TransformedNest(nest, t).simulate();
  TraceStats b = simulate_transformed(nest, t);
  EXPECT_EQ(a.mws_total, b.mws_total);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
}

TEST(Transformed, AddressMultisetPreserved) {
  // The transformed execution touches exactly the same elements the same
  // number of times, just in a different order.
  LoopNest nest = codes::example_2(6, 7);
  IntMat t{{1, 2}, {0, 1}};
  std::map<std::vector<Int>, int> orig_counts, tr_counts;
  scan(nest.bounds().to_constraints(), [&](const IntVec& i) {
    for (const auto& r : nest.all_refs()) orig_counts[r.index_at(i).data()]++;
  });
  TransformedNest tn(nest, t);
  scan(tn.space(), [&](const IntVec& u) {
    IntVec i = tn.inverse() * u;
    for (const auto& r : nest.all_refs()) tr_counts[r.index_at(i).data()]++;
  });
  EXPECT_EQ(orig_counts, tr_counts);
}

TEST(Transformed, PrintShowsBounds) {
  LoopNest nest = codes::example_8();
  TransformedNest tn(nest, IntMat{{2, 3}, {1, 1}});
  std::string s = tn.print();
  EXPECT_NE(s.find("for (u0"), std::string::npos);
  EXPECT_NE(s.find("ceild"), std::string::npos);
  EXPECT_NE(s.find("floord"), std::string::npos);
  EXPECT_NE(s.find("X["), std::string::npos);
}

TEST(Transformed, PrintIdentityHasPlainBounds) {
  LoopNest nest = codes::example_2(4, 5);
  TransformedNest tn(nest, IntMat::identity(2));
  std::string s = tn.print();
  EXPECT_EQ(s.find("ceild"), std::string::npos);
  EXPECT_NE(s.find("u0 <= 4"), std::string::npos);
}

TEST(Transformed, InterchangePrint) {
  LoopNest nest = codes::example_2(4, 5);
  TransformedNest tn(nest, interchange(2, 0, 1));
  std::string s = tn.print();
  // After interchange the outer loop (u0 = j) runs to 5.
  EXPECT_NE(s.find("u0 <= 5"), std::string::npos);
  EXPECT_NE(s.find("u1 <= 4"), std::string::npos);
}

}  // namespace
}  // namespace lmre
