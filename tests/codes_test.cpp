#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"

namespace lmre {
namespace {

TEST(Codes, AllExamplesValidate) {
  // Construction runs LoopNest::validate(); these must not throw.
  EXPECT_NO_THROW(codes::example_1a());
  EXPECT_NO_THROW(codes::example_1b());
  EXPECT_NO_THROW(codes::example_2());
  EXPECT_NO_THROW(codes::example_3());
  EXPECT_NO_THROW(codes::example_4());
  EXPECT_NO_THROW(codes::example_5());
  EXPECT_NO_THROW(codes::example_6());
  EXPECT_NO_THROW(codes::example_7());
  EXPECT_NO_THROW(codes::example_8());
  EXPECT_NO_THROW(codes::example_sec23());
}

TEST(Codes, AllKernelsValidate) {
  EXPECT_NO_THROW(codes::kernel_two_point());
  EXPECT_NO_THROW(codes::kernel_three_point());
  EXPECT_NO_THROW(codes::kernel_sor());
  EXPECT_NO_THROW(codes::kernel_matmult());
  EXPECT_NO_THROW(codes::kernel_three_step_log());
  EXPECT_NO_THROW(codes::kernel_full_search());
  EXPECT_NO_THROW(codes::kernel_rasta_flt());
  EXPECT_NO_THROW(codes::kernel_rasta_flt_tap_major());
}

TEST(Codes, Figure2SuiteHasSevenKernelsInPaperOrder) {
  auto suite = codes::figure2_suite();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0].name, "2point");
  EXPECT_EQ(suite[1].name, "3point");
  EXPECT_EQ(suite[2].name, "sor");
  EXPECT_EQ(suite[3].name, "matmult");
  EXPECT_EQ(suite[4].name, "3step_log");
  EXPECT_EQ(suite[5].name, "full_search");
  EXPECT_EQ(suite[6].name, "rasta_flt");
}

TEST(Codes, Figure2PaperRowsRecorded) {
  auto suite = codes::figure2_suite();
  // rasta_flt's row survived the OCR fully: 5,152 / 2,040 / 127.
  EXPECT_EQ(suite[6].paper_default, 5152);
  EXPECT_EQ(suite[6].paper_mws_unopt, 2040);
  EXPECT_EQ(suite[6].paper_mws_opt, 127);
  // matmult: 273 both columns, 64.4% both.
  EXPECT_EQ(suite[3].paper_mws_unopt, 273);
  EXPECT_EQ(suite[3].paper_mws_opt, 273);
  EXPECT_DOUBLE_EQ(suite[3].paper_reduction_unopt, suite[3].paper_reduction_opt);
}

TEST(Codes, MatmultWindowIsNSquaredPlusNPlusOne) {
  for (Int n : {4, 8, 16}) {
    LoopNest nest = codes::kernel_matmult(n);
    EXPECT_EQ(simulate(nest).mws_total, n * n + n + 1) << "n=" << n;
  }
}

TEST(Codes, MatmultDefaultIsThreeArrays) {
  EXPECT_EQ(codes::kernel_matmult(16).default_memory(), 3 * 256);
}

TEST(Codes, TwoPointWindowIsOneColumn) {
  LoopNest nest = codes::kernel_two_point(64);
  EXPECT_EQ(nest.default_memory(), 4096);
  EXPECT_EQ(simulate(nest).mws_total, 64);
}

TEST(Codes, ThreePointKeepsTwoRowsLive) {
  LoopNest nest = codes::kernel_three_point(32);
  Int mws = simulate(nest).mws_total;
  EXPECT_GE(mws, 2 * 32 - 2);
  EXPECT_LE(mws, 2 * 32 + 4);
}

TEST(Codes, SorKeepsTwoRowsLive) {
  LoopNest nest = codes::kernel_sor(32);
  Int mws = simulate(nest).mws_total;
  EXPECT_GE(mws, 2 * 32 - 2);
  EXPECT_LE(mws, 2 * 32 + 4);
}

TEST(Codes, MotionKernelsKeepCurrentBlockLive) {
  LoopNest nest = codes::kernel_three_step_log(8, 4);
  TraceStats s = simulate(nest);
  // cur (array 0) is re-read for every shift: its window is the block.
  EXPECT_EQ(s.mws.at(0), 64);
}

TEST(Codes, RastaTapMajorBlowsUpWindow) {
  LoopNest fm = codes::kernel_rasta_flt(40, 12, 5);
  LoopNest tm = codes::kernel_rasta_flt_tap_major(40, 12, 5);
  Int w_fm = simulate(fm).mws_total;
  Int w_tm = simulate(tm).mws_total;
  EXPECT_GT(w_tm, 5 * w_fm);  // tap-major keeps out and in live throughout
}

TEST(Codes, KernelsHaveUniformReferences) {
  for (auto& entry : codes::figure2_suite()) {
    DependenceInfo info = analyze_dependences(entry.nest);
    EXPECT_FALSE(info.has_nonuniform()) << entry.name;
  }
}

TEST(Codes, ParameterizedBounds) {
  LoopNest nest = codes::example_2(5, 6);
  EXPECT_EQ(nest.iteration_count(), 30);
  EXPECT_EQ(nest.bounds().range(0).hi, 5);
  EXPECT_EQ(nest.bounds().range(1).hi, 6);
}

}  // namespace
}  // namespace lmre
