// Randomized property suite for the chunked parallel oracle: on random
// legal 2- and 3-deep nests, the slab-parallel simulate must agree with the
// serial simulate on every statistic.  ~200 nests per run (100 seeds x 2
// depths), fixed seeds so failures reproduce.

#include <gtest/gtest.h>

#include <random>

#include "exact/oracle.h"
#include "ir/builder.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xBADC0DE + seed); }

// Random 2-deep nest with a write/read pair of uniformly generated 2-d
// references (the generator pattern of property_random2_test).
LoopNest random_nest2(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 11), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 6, n2 + 6});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3})
      .read(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3});
  return b.build();
}

// Random 3-deep nest over a 2-d array with a skewed affine access, plus a
// 1-d reduction target: exercises multi-array merges across slabs.
LoopNest random_nest3(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 7), coef(0, 2), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng), n3 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2).loop("k", 1, n3);
  ArrayId a = b.array("A", {60, 60});
  ArrayId s = b.array("S", {40});
  Int c1 = coef(rng), c2 = coef(rng) + 1;
  b.statement().read(a, IntMat{{1, 0, c1}, {0, 1, c2}}, {off(rng) + 5, off(rng) + 5});
  b.statement().write(s, IntMat{{1, 1, 0}}, IntVec{4});
  return b.build();
}

void expect_parallel_matches_serial(const LoopNest& nest, int seed) {
  TraceStats serial = simulate(nest);
  for (int threads : {2, 3, 4, 0}) {
    TraceStats parallel = simulate(nest, threads);
    SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                 std::to_string(threads));
    EXPECT_EQ(serial.distinct_total, parallel.distinct_total);
    EXPECT_EQ(serial.reuse_total, parallel.reuse_total);
    EXPECT_EQ(serial.mws_total, parallel.mws_total);
    EXPECT_EQ(serial.iterations, parallel.iterations);
    EXPECT_EQ(serial.total_accesses, parallel.total_accesses);
    EXPECT_EQ(serial.distinct, parallel.distinct);
    EXPECT_EQ(serial.reuse, parallel.reuse);
    EXPECT_EQ(serial.mws, parallel.mws);
  }
}

class ParallelOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParallelOracleProperty, ChunkedSimulateMatchesSerial2Deep) {
  auto rng = rng_for(GetParam());
  expect_parallel_matches_serial(random_nest2(rng), GetParam());
}

TEST_P(ParallelOracleProperty, ChunkedSimulateMatchesSerial3Deep) {
  auto rng = rng_for(1000 + GetParam());
  expect_parallel_matches_serial(random_nest3(rng), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelOracleProperty, ::testing::Range(0, 100));

// Degenerate shapes: the chunking must fall back cleanly when the outer
// loop is too short to slab.
TEST(ParallelOracleEdge, SingleOuterIteration) {
  NestBuilder b;
  b.loop("i", 1, 1).loop("j", 1, 9);
  ArrayId a = b.array("A", {20});
  b.statement().write(a, IntMat{{1, 1}}, IntVec{2}).read(a, IntMat{{1, 1}},
                                                         IntVec{3});
  LoopNest nest = b.build();
  TraceStats serial = simulate(nest);
  TraceStats parallel = simulate(nest, 4);
  EXPECT_EQ(serial.mws_total, parallel.mws_total);
  EXPECT_EQ(serial.distinct_total, parallel.distinct_total);
}

TEST(ParallelOracleEdge, MoreThreadsThanOuterTrips) {
  NestBuilder b;
  b.loop("i", 1, 3).loop("j", 1, 5);
  ArrayId a = b.array("A", {20});
  b.statement().write(a, IntMat{{1, 1}}, IntVec{2}).read(a, IntMat{{1, 1}},
                                                         IntVec{4});
  LoopNest nest = b.build();
  TraceStats serial = simulate(nest);
  TraceStats parallel = simulate(nest, 16);
  EXPECT_EQ(serial.mws_total, parallel.mws_total);
  EXPECT_EQ(serial.reuse_total, parallel.reuse_total);
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

}  // namespace
}  // namespace lmre
