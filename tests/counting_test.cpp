#include <gtest/gtest.h>

#include <random>
#include <set>

#include "codes/examples.h"
#include "exact/oracle.h"
#include "polyhedra/counting.h"
#include "polyhedra/scanner.h"

namespace lmre {
namespace {

Int brute_count(const std::vector<AffineForm1D>& forms, const IntBox& box) {
  std::set<Int> values;
  scan(box.to_constraints(), [&](const IntVec& p) {
    for (const auto& f : forms) values.insert(f.coeffs.dot(p) + f.c);
  });
  return static_cast<Int>(values.size());
}

TEST(Counting, MembershipBasics) {
  IntBox box = IntBox::from_upper_bounds({20, 20});
  AffineForm1D f{IntVec{3, 7}, -10};
  EXPECT_TRUE(image_contains(f, box, 0));     // i=j=1
  EXPECT_TRUE(image_contains(f, box, 190));   // i=j=20
  EXPECT_FALSE(image_contains(f, box, -1));   // below range
  EXPECT_FALSE(image_contains(f, box, 191));  // above range
  // 1 = 3i+7j-10 -> 3i+7j = 11: no solution with i,j >= 1 (min is 10).
  EXPECT_FALSE(image_contains(f, box, 1));
  // 3i+7j = 13 -> (i,j) = (2,1): value 3.
  EXPECT_TRUE(image_contains(f, box, 3));
}

TEST(Counting, MembershipSingleVariable) {
  IntBox box = IntBox::from_upper_bounds({10});
  AffineForm1D f{IntVec{3}, 0};
  EXPECT_TRUE(image_contains(f, box, 3));
  EXPECT_TRUE(image_contains(f, box, 30));
  EXPECT_FALSE(image_contains(f, box, 4));
  EXPECT_FALSE(image_contains(f, box, 33));
}

TEST(Counting, MembershipConstantForm) {
  IntBox box = IntBox::from_upper_bounds({5, 5});
  AffineForm1D f{IntVec{0, 0}, 7};
  EXPECT_TRUE(image_contains(f, box, 7));
  EXPECT_FALSE(image_contains(f, box, 8));
}

TEST(Counting, Example6Exact) {
  // The union of 3i+7j-10 and 4i-3j+60 over [1,20]^2 has exactly 182
  // members (the value our oracle measures; the paper quotes 181).
  IntBox box = IntBox::from_upper_bounds({20, 20});
  std::vector<AffineForm1D> forms{{IntVec{3, 7}, -10}, {IntVec{4, -3}, 60}};
  EXPECT_EQ(count_image_union(forms, box), 182);
  EXPECT_EQ(count_image_union(forms, box),
            simulate(codes::example_6()).distinct_total);
}

TEST(Counting, Example4Exact) {
  IntBox box = IntBox::from_upper_bounds({20, 10});
  EXPECT_EQ(count_image(AffineForm1D{IntVec{2, 5}, 1}, box), 80);
}

TEST(Counting, Example1bExact) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  EXPECT_EQ(count_image(AffineForm1D{IntVec{2, 3}, 0}, box), 44);
}

TEST(Counting, Example8UnionExact) {
  IntBox box = IntBox::from_upper_bounds({25, 10});
  std::vector<AffineForm1D> forms{{IntVec{2, 5}, 1}, {IntVec{2, 5}, 5}};
  EXPECT_EQ(count_image_union(forms, box), 94);
}

TEST(Counting, DepthThree) {
  IntBox box = IntBox::from_upper_bounds({4, 5, 6});
  AffineForm1D f{IntVec{7, 3, 1}, 0};
  EXPECT_EQ(count_image(f, box), brute_count({f}, box));
}

TEST(Counting, RandomizedAgainstBruteForce) {
  std::mt19937 rng(17);
  std::uniform_int_distribution<Int> coefd(-6, 6), cd(-10, 10), bnd(2, 9);
  for (int iter = 0; iter < 60; ++iter) {
    IntBox box = IntBox::from_upper_bounds({bnd(rng), bnd(rng)});
    std::vector<AffineForm1D> forms;
    size_t nforms = 1 + iter % 3;
    for (size_t f = 0; f < nforms; ++f) {
      IntVec coeffs{coefd(rng), coefd(rng)};
      if (coeffs.is_zero()) coeffs[0] = 1;
      forms.push_back(AffineForm1D{coeffs, cd(rng)});
    }
    EXPECT_EQ(count_image_union(forms, box), brute_count(forms, box))
        << "iter " << iter;
  }
}

TEST(Counting, RandomizedMembership) {
  std::mt19937 rng(29);
  std::uniform_int_distribution<Int> coefd(-5, 5), cd(-8, 8);
  for (int iter = 0; iter < 40; ++iter) {
    IntBox box = IntBox::from_upper_bounds({6, 7});
    IntVec coeffs{coefd(rng), coefd(rng)};
    AffineForm1D f{coeffs, cd(rng)};
    std::set<Int> values;
    scan(box.to_constraints(),
         [&](const IntVec& p) { values.insert(f.coeffs.dot(p) + f.c); });
    for (Int v = -60; v <= 60; ++v) {
      EXPECT_EQ(image_contains(f, box, v), values.count(v) > 0)
          << "form " << coeffs.str() << "+" << f.c << " value " << v;
    }
  }
}

TEST(Counting, NegativeLoopBounds) {
  IntBox box({Range{-4, 4}, Range{-3, 3}});
  AffineForm1D f{IntVec{2, 5}, 0};
  EXPECT_EQ(count_image(f, box), brute_count({f}, box));
}

}  // namespace
}  // namespace lmre
