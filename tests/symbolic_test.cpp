#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "analysis/reuse.h"
#include "analysis/symbolic.h"
#include "analysis/window.h"
#include "support/error.h"
#include "symbolic/derive.h"
#include "symbolic/expr.h"

namespace lmre {
namespace {

TEST(Poly, ConstantsAndVariables) {
  Poly c = Poly::constant(2, 7);
  EXPECT_EQ(c.eval({10, 20}), 7);
  EXPECT_EQ(c.str(), "7");
  Poly n2 = Poly::variable(2, 1);
  EXPECT_EQ(n2.eval({10, 20}), 20);
  EXPECT_EQ(n2.str(), "N2");
  EXPECT_THROW(Poly::variable(2, 2), InvalidArgument);
}

TEST(Poly, Arithmetic) {
  Poly n1 = Poly::variable(2, 0), n2 = Poly::variable(2, 1);
  Poly p = (n1 - 1) * (n2 - 2);
  EXPECT_EQ(p.eval({10, 10}), 72);  // the paper's Example 2 reuse at 10x10
  EXPECT_EQ(p.str(), "N1*N2 - 2*N1 - N2 + 2");
  EXPECT_EQ(p.degree(), 2);
  Poly q = p - p;
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(q.str(), "0");
}

TEST(Poly, CancellationRemovesTerms) {
  Poly n1 = Poly::variable(1, 0);
  Poly p = (n1 + 1) * (n1 - 1);  // N1^2 - 1
  EXPECT_EQ(p.str(), "N1^2 - 1");
  EXPECT_EQ(p.eval({7}), 48);
}

TEST(Poly, MismatchedArityThrows) {
  EXPECT_THROW(Poly::variable(1, 0) + Poly::variable(2, 0), InvalidArgument);
  EXPECT_THROW(Poly::constant(2, 1).eval({5}), InvalidArgument);
}

TEST(Symbolic, ReuseMatchesPaperExamples) {
  // Example 2: (N1-1)(N2-2).
  Poly p = symbolic_reuse(IntVec{1, -2});
  EXPECT_EQ(p.str(), "N1*N2 - 2*N1 - N2 + 2");
  EXPECT_EQ(p.eval({10, 10}), 72);
  // Example 4: (N1-5)(N2-2) = 120 at 20x10.
  EXPECT_EQ(symbolic_reuse(IntVec{5, -2}).eval({20, 10}), 120);
  // Example 5: (N1-1)(N2-3)(N3-3) = 4131 at 10x20x30.
  EXPECT_EQ(symbolic_reuse(IntVec{1, 3, -3}).eval({10, 20, 30}), 4131);
}

TEST(Symbolic, DistinctFormulas) {
  // Example 2: 2*N1*N2 - (N1-1)(N2-2) -> 128 at 10x10.
  Poly d = symbolic_distinct_full_dim(2, 2, {IntVec{1, -2}});
  EXPECT_EQ(d.eval({10, 10}), 128);
  // Example 3: 4*N1*N2 - [(N1-1)N2 + N1(N2-1) + (N1-1)(N2-1)] -> 139.
  Poly d3 = symbolic_distinct_full_dim(
      2, 4, {IntVec{1, 0}, IntVec{0, 1}, IntVec{1, 1}});
  EXPECT_EQ(d3.eval({10, 10}), 139);
  // Example 4/5 kernel forms.
  EXPECT_EQ(symbolic_distinct_kernel(IntVec{5, -2}).eval({20, 10}), 80);
  EXPECT_EQ(symbolic_distinct_kernel(IntVec{1, 3, -3}).eval({10, 20, 30}), 1869);
}

TEST(Symbolic, MwsMatchesPaperExample10) {
  // 1 + d1(N2-|d2|)(N3-|d3|) + d2(N3-|d3|): 541 at (10,20,30).
  Poly m = symbolic_mws(IntVec{1, 3, -3});
  EXPECT_EQ(m.eval({10, 20, 30}), 541);
  EXPECT_EQ(m.str(), "N2*N3 - 3*N2 + 1");
}

TEST(Symbolic, AgreesWithConcreteFunctionsOnRandomInputs) {
  std::mt19937 rng(9);
  std::uniform_int_distribution<Int> dv(-4, 4), bnd(6, 15);
  for (int iter = 0; iter < 60; ++iter) {
    size_t n = 2 + iter % 2;
    IntVec d(n);
    for (size_t k = 0; k < n; ++k) d[k] = dv(rng);
    std::vector<Int> bounds;
    for (size_t k = 0; k < n; ++k) bounds.push_back(bnd(rng));
    IntBox box = IntBox::from_upper_bounds(bounds);
    EXPECT_EQ(symbolic_reuse(d).eval(bounds), reuse_volume(d, box))
        << d.str();
    if (!d.is_zero()) {
      EXPECT_EQ(symbolic_mws(d).eval(bounds), mws_from_reuse_vector(d, box))
          << d.str();
    }
  }
}

// ---- Poly ring identities on random polynomials ------------------------

// Small random polynomial in `vars` variables: degree <= 3 per variable,
// coefficients in [-5, 5] -- products of two stay far from overflow at the
// evaluation points used below.
Poly random_poly(std::mt19937& rng, size_t vars) {
  std::uniform_int_distribution<Int> coef(-5, 5), exp(0, 3);
  std::uniform_int_distribution<int> nterms(1, 4);
  Poly p = Poly::constant(vars, 0);
  for (int t = nterms(rng); t > 0; --t) {
    Poly term = Poly::constant(vars, coef(rng));
    for (size_t k = 0; k < vars; ++k) {
      for (Int e = exp(rng); e > 0; --e) term = term * Poly::variable(vars, k);
    }
    p = p + term;
  }
  return p;
}

TEST(Poly, RingIdentitiesOnRandomPolys) {
  std::mt19937 rng(41);
  std::uniform_int_distribution<Int> bnd(-3, 3);
  for (int iter = 0; iter < 50; ++iter) {
    size_t vars = 1 + iter % 3;
    Poly a = random_poly(rng, vars);
    Poly b = random_poly(rng, vars);
    Poly c = random_poly(rng, vars);
    std::vector<Int> at(vars);
    for (auto& v : at) v = bnd(rng);
    // Associativity, commutativity, distributivity -- checked both on the
    // canonical term maps (str) and at a random evaluation point.
    EXPECT_EQ(((a + b) + c).str(), (a + (b + c)).str());
    EXPECT_EQ((a * b).str(), (b * a).str());
    EXPECT_EQ(((a * b) * c).str(), (a * (b * c)).str());
    EXPECT_EQ((a * (b + c)).str(), (a * b + a * c).str());
    EXPECT_EQ((a * (b + c)).eval(at), a.eval(at) * (b.eval(at) + c.eval(at)));
    // Additive inverse and multiplicative identity.
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_EQ((a * Poly::constant(vars, 1)).str(), a.str());
    EXPECT_TRUE((a * Poly::constant(vars, 0)).is_zero());
  }
}

TEST(Poly, EvalMatchesTermByTermReference) {
  // eval() must agree with an independent power-product reference built
  // from the exported terms() (the same terms the JSON emitter shows).
  std::mt19937 rng(43);
  std::uniform_int_distribution<Int> bnd(-3, 3);
  for (int iter = 0; iter < 50; ++iter) {
    size_t vars = 1 + iter % 3;
    Poly p = random_poly(rng, vars);
    std::vector<Int> at(vars);
    for (auto& v : at) v = bnd(rng);
    Int ref = 0;
    for (const PolyTerm& t : p.terms()) {
      Int term = t.coef;
      for (size_t k = 0; k < vars; ++k) {
        for (Int e = 0; e < t.exps[k]; ++e) term *= at[k];
      }
      ref += term;
    }
    EXPECT_EQ(p.eval(at), ref) << p.str();
  }
}

TEST(Poly, StrRendersDescendingLexOrder) {
  Poly n1 = Poly::variable(3, 0), n2 = Poly::variable(3, 1),
       n3 = Poly::variable(3, 2);
  // Terms render in descending lexicographic exponent order (all N1 powers
  // before any N1-free term, ties broken on N2, ...), the constant last.
  // These strings are load-bearing: the JSON "polynomial" field and the
  // golden files render through them.
  EXPECT_EQ((n3 + n2 + n1).str(), "N1 + N2 + N3");
  EXPECT_EQ((n2 * n3 + n1 + 7).str(), "N1 + N2*N3 + 7");
  EXPECT_EQ((n1 * n1 - n1 * n2 * n3).str(), "N1^2 - N1*N2*N3");
  EXPECT_EQ(((n1 - 1) * (n2 - 3) * (n3 - 3)).str(),
            "N1*N2*N3 - 3*N1*N2 - 3*N1*N3 + 9*N1 - N2*N3 + 3*N2 + 3*N3 - 9");
  EXPECT_EQ((n1 * 0).str(), "0");
}

TEST(Poly, OverflowGuards) {
  const Int big = std::numeric_limits<Int>::max() / 2;
  Poly n1 = Poly::variable(1, 0);
  // eval: N1^2 at 2^32 exceeds 64 bits.
  EXPECT_THROW((n1 * n1).eval({Int(1) << 32}), OverflowError);
  // operator* on coefficients: big * big overflows during multiplication.
  Poly huge = Poly::constant(1, big);
  EXPECT_THROW(huge * huge, OverflowError);
  // operator+ on coefficients of the same monomial.
  Poly near_max = Poly::constant(1, std::numeric_limits<Int>::max() - 1);
  EXPECT_THROW(near_max + near_max, OverflowError);
  // In-range cases must not throw.
  EXPECT_EQ((n1 * n1).eval({Int(1) << 31}), (Int(1) << 31) * (Int(1) << 31));
}

// ---- SymbolicExpr / SymbolicWindow (src/symbolic) ----------------------

TEST(SymbolicExpr, ClampedEvalAndRendering) {
  // (N1 - 3)(N2 - 2) as a clamped product: exact at interior points and
  // clamped to zero (not negative) when a factor underflows.
  SymbolicExpr e = SymbolicExpr::clamped_product({3, 2});
  EXPECT_EQ(e.str(), "(N1 - 3)*(N2 - 2)");
  EXPECT_EQ(e.eval({10, 10}), 56);
  EXPECT_EQ(e.eval({3, 10}), 0);   // first factor clamps
  EXPECT_EQ(e.eval({2, 10}), 0);   // ... and stays clamped below
  EXPECT_EQ(e.eval({10, 2}), 0);
  // The interior polynomial drops the clamps.
  EXPECT_EQ(e.interior().eval({2, 10}), -8);
}

TEST(SymbolicExpr, CanonicalSumsAndEquality) {
  SymbolicExpr a = SymbolicExpr::clamped_product({1, 0});  // (N1 - 1)*N2
  SymbolicExpr b = SymbolicExpr::clamped_product({0, 1});  // N1*(N2 - 1)
  EXPECT_EQ(a + b, b + a);
  EXPECT_TRUE((a - a).is_zero());
  SymbolicExpr twice = a + a;
  EXPECT_EQ(twice, a * 2);
  EXPECT_EQ(twice.eval({5, 5}), 40);
  EXPECT_EQ((a + b).str(), "N1*(N2 - 1) + (N1 - 1)*N2");
}

TEST(SymbolicExpr, ConstantsAndSubtraction) {
  SymbolicExpr v = SymbolicExpr::clamped_product({0, 0});  // N1*N2
  SymbolicExpr c = SymbolicExpr::constant(2, 7);
  EXPECT_EQ((v - c).eval({3, 4}), 5);
  EXPECT_EQ(c.eval({1, 1}), 7);
  EXPECT_EQ(c.str(), "7");
  EXPECT_EQ(SymbolicExpr::constant(2, 0).str(), "0");
}

TEST(SymbolicWindow, MinOverBranchesAndStr) {
  // Example 10's chain window: the last branch is the paper's Section 4.3
  // interior sum; the earlier branches cap it by suffix volumes so the
  // minimum stays exact at clamping edges.
  SymbolicWindow w = symbolic_chain_window(IntVec{1, 3, -3}, 3);
  ASSERT_EQ(w.branches().size(), 3u);
  EXPECT_EQ(w.eval({10, 20, 30}), 540);  // (20-3)(30-3) + 3*(30-3)
  EXPECT_EQ(w.eval({10, 3, 30}), 0);     // N2 = |d2| collapses the chain
  EXPECT_EQ(w.str(),
            "min((N1 - 1)*(N2 - 3)*(N3 - 3), 2*(N2 - 3)*(N3 - 3), "
            "(N2 - 3)*(N3 - 3) + 3*(N3 - 3))");
  // interior() is the final (paper-formula) branch.
  EXPECT_EQ(w.interior().eval({10, 20, 30}), 540);
}

TEST(SymbolicWindow, SingleBranchAndZero) {
  SymbolicWindow z = SymbolicWindow::zero(2);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.eval({100, 100}), 0);
  // d = (0, 1): adjacent-iteration reuse along the innermost loop.
  SymbolicWindow w = symbolic_chain_window(IntVec{0, 1}, 2);
  EXPECT_EQ(w.eval({10, 10}), 1);
  EXPECT_EQ(w.eval({10, 1}), 0);  // one-trip inner loop: no reuse at all
}

TEST(SymbolicWindow, AxesRemapForSignedPermutations) {
  // Under an interchange plan the window formula must be written in the
  // ORIGINAL bound variables: d = (1, 0) at depth 2 with axes {1, 0}
  // reads "the outer transformed loop runs over N2".
  SymbolicWindow w = symbolic_chain_window(IntVec{1, 0}, 2, {1, 0});
  EXPECT_EQ(w.eval({7, 9}), std::min<Int>((9 - 1) * 7, 7));
  SymbolicWindow id = symbolic_chain_window(IntVec{1, 0}, 2, {0, 1});
  EXPECT_EQ(id.eval({7, 9}), std::min<Int>((7 - 1) * 9, 9));
}

}  // namespace
}  // namespace lmre
