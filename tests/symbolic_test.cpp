#include <gtest/gtest.h>

#include <random>

#include "analysis/reuse.h"
#include "analysis/symbolic.h"
#include "analysis/window.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Poly, ConstantsAndVariables) {
  Poly c = Poly::constant(2, 7);
  EXPECT_EQ(c.eval({10, 20}), 7);
  EXPECT_EQ(c.str(), "7");
  Poly n2 = Poly::variable(2, 1);
  EXPECT_EQ(n2.eval({10, 20}), 20);
  EXPECT_EQ(n2.str(), "N2");
  EXPECT_THROW(Poly::variable(2, 2), InvalidArgument);
}

TEST(Poly, Arithmetic) {
  Poly n1 = Poly::variable(2, 0), n2 = Poly::variable(2, 1);
  Poly p = (n1 - 1) * (n2 - 2);
  EXPECT_EQ(p.eval({10, 10}), 72);  // the paper's Example 2 reuse at 10x10
  EXPECT_EQ(p.str(), "N1*N2 - 2*N1 - N2 + 2");
  EXPECT_EQ(p.degree(), 2);
  Poly q = p - p;
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(q.str(), "0");
}

TEST(Poly, CancellationRemovesTerms) {
  Poly n1 = Poly::variable(1, 0);
  Poly p = (n1 + 1) * (n1 - 1);  // N1^2 - 1
  EXPECT_EQ(p.str(), "N1^2 - 1");
  EXPECT_EQ(p.eval({7}), 48);
}

TEST(Poly, MismatchedArityThrows) {
  EXPECT_THROW(Poly::variable(1, 0) + Poly::variable(2, 0), InvalidArgument);
  EXPECT_THROW(Poly::constant(2, 1).eval({5}), InvalidArgument);
}

TEST(Symbolic, ReuseMatchesPaperExamples) {
  // Example 2: (N1-1)(N2-2).
  Poly p = symbolic_reuse(IntVec{1, -2});
  EXPECT_EQ(p.str(), "N1*N2 - 2*N1 - N2 + 2");
  EXPECT_EQ(p.eval({10, 10}), 72);
  // Example 4: (N1-5)(N2-2) = 120 at 20x10.
  EXPECT_EQ(symbolic_reuse(IntVec{5, -2}).eval({20, 10}), 120);
  // Example 5: (N1-1)(N2-3)(N3-3) = 4131 at 10x20x30.
  EXPECT_EQ(symbolic_reuse(IntVec{1, 3, -3}).eval({10, 20, 30}), 4131);
}

TEST(Symbolic, DistinctFormulas) {
  // Example 2: 2*N1*N2 - (N1-1)(N2-2) -> 128 at 10x10.
  Poly d = symbolic_distinct_full_dim(2, 2, {IntVec{1, -2}});
  EXPECT_EQ(d.eval({10, 10}), 128);
  // Example 3: 4*N1*N2 - [(N1-1)N2 + N1(N2-1) + (N1-1)(N2-1)] -> 139.
  Poly d3 = symbolic_distinct_full_dim(
      2, 4, {IntVec{1, 0}, IntVec{0, 1}, IntVec{1, 1}});
  EXPECT_EQ(d3.eval({10, 10}), 139);
  // Example 4/5 kernel forms.
  EXPECT_EQ(symbolic_distinct_kernel(IntVec{5, -2}).eval({20, 10}), 80);
  EXPECT_EQ(symbolic_distinct_kernel(IntVec{1, 3, -3}).eval({10, 20, 30}), 1869);
}

TEST(Symbolic, MwsMatchesPaperExample10) {
  // 1 + d1(N2-|d2|)(N3-|d3|) + d2(N3-|d3|): 541 at (10,20,30).
  Poly m = symbolic_mws(IntVec{1, 3, -3});
  EXPECT_EQ(m.eval({10, 20, 30}), 541);
  EXPECT_EQ(m.str(), "N2*N3 - 3*N2 + 1");
}

TEST(Symbolic, AgreesWithConcreteFunctionsOnRandomInputs) {
  std::mt19937 rng(9);
  std::uniform_int_distribution<Int> dv(-4, 4), bnd(6, 15);
  for (int iter = 0; iter < 60; ++iter) {
    size_t n = 2 + iter % 2;
    IntVec d(n);
    for (size_t k = 0; k < n; ++k) d[k] = dv(rng);
    std::vector<Int> bounds;
    for (size_t k = 0; k < n; ++k) bounds.push_back(bnd(rng));
    IntBox box = IntBox::from_upper_bounds(bounds);
    EXPECT_EQ(symbolic_reuse(d).eval(bounds), reuse_volume(d, box))
        << d.str();
    if (!d.is_zero()) {
      EXPECT_EQ(symbolic_mws(d).eval(bounds), mws_from_reuse_vector(d, box))
          << d.str();
    }
  }
}

}  // namespace
}  // namespace lmre
