#include <gtest/gtest.h>

#include <random>

#include "linalg/normal_form.h"

namespace lmre {
namespace {

// Deterministic pseudo-random matrices for property sweeps.
IntMat random_matrix(std::mt19937& rng, size_t rows, size_t cols, Int lo, Int hi) {
  std::uniform_int_distribution<Int> dist(lo, hi);
  IntMat m(rows, cols);
  for (size_t r = 0; r < rows; ++r)
    for (size_t c = 0; c < cols; ++c) m(r, c) = dist(rng);
  return m;
}

TEST(Hermite, ReproducesProductIdentity) {
  IntMat a{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}};
  HnfResult h = column_hermite(a);
  EXPECT_TRUE(h.u.is_unimodular());
  EXPECT_EQ(a * h.u, h.h);
}

TEST(Hermite, EchelonShape) {
  IntMat a{{2, 3}, {4, 9}};
  HnfResult h = column_hermite(a);
  // First row has a single nonzero pivot at column 0.
  EXPECT_NE(h.h(0, 0), 0);
  EXPECT_EQ(h.h(0, 1), 0);
  EXPECT_GT(h.h(0, 0), 0);
}

TEST(Hermite, ZeroMatrix) {
  IntMat a(2, 3);
  HnfResult h = column_hermite(a);
  EXPECT_EQ(h.h, a);
  EXPECT_TRUE(h.u.is_unimodular());
}

TEST(Hermite, SingleRowGcd) {
  // Row (2, 5): column HNF pivot must be gcd = 1.
  IntMat a{{2, 5}};
  HnfResult h = column_hermite(a);
  EXPECT_EQ(h.h(0, 0), 1);
  EXPECT_EQ(h.h(0, 1), 0);
  EXPECT_EQ(a * h.u, h.h);
}

TEST(Hermite, RandomizedProductProperty) {
  std::mt19937 rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    size_t rows = 1 + iter % 4, cols = 1 + (iter * 7) % 4;
    IntMat a = random_matrix(rng, rows, cols, -9, 9);
    HnfResult h = column_hermite(a);
    EXPECT_TRUE(h.u.is_unimodular());
    EXPECT_EQ(a * h.u, h.h);
  }
}

TEST(Smith, DiagonalAndDivisibility) {
  IntMat a{{2, 4, 4}, {-6, 6, 12}, {10, -4, -16}};
  SnfResult s = smith_normal_form(a);
  EXPECT_TRUE(s.u.is_unimodular());
  EXPECT_TRUE(s.v.is_unimodular());
  EXPECT_EQ(s.u * a * s.v, s.d);
  // Diagonal, non-negative, divisibility chain.
  for (size_t r = 0; r < s.d.rows(); ++r) {
    for (size_t c = 0; c < s.d.cols(); ++c) {
      if (r != c) {
        EXPECT_EQ(s.d(r, c), 0);
      }
    }
  }
  size_t k = std::min(s.d.rows(), s.d.cols());
  for (size_t i = 0; i + 1 < k; ++i) {
    if (s.d(i + 1, i + 1) != 0) {
      ASSERT_NE(s.d(i, i), 0);
      EXPECT_EQ(s.d(i + 1, i + 1) % s.d(i, i), 0);
    }
    EXPECT_GE(s.d(i, i), 0);
  }
}

TEST(Smith, RankMatchesBareiss) {
  IntMat a{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  SnfResult s = smith_normal_form(a);
  EXPECT_EQ(s.rank(), a.rank());
  EXPECT_EQ(s.rank(), 2u);
}

TEST(Smith, InvariantFactorsKnownCase) {
  // [[2,0],[0,4]] -> diag(2,4); [[2,1],[0,2]] -> diag(1,4).
  SnfResult s1 = smith_normal_form(IntMat{{2, 0}, {0, 4}});
  EXPECT_EQ(s1.d(0, 0), 2);
  EXPECT_EQ(s1.d(1, 1), 4);
  SnfResult s2 = smith_normal_form(IntMat{{2, 1}, {0, 2}});
  EXPECT_EQ(s2.d(0, 0), 1);
  EXPECT_EQ(s2.d(1, 1), 4);
}

TEST(Smith, AccessMatrixOfExample10IsPrimitive) {
  // The embedding transform needs all invariant factors 1.
  SnfResult s = smith_normal_form(IntMat{{3, 0, 1}, {0, 1, 1}});
  EXPECT_EQ(s.d(0, 0), 1);
  EXPECT_EQ(s.d(1, 1), 1);
}

TEST(Smith, RandomizedProductProperty) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    size_t rows = 1 + iter % 3, cols = 1 + (iter * 5) % 4;
    IntMat a = random_matrix(rng, rows, cols, -8, 8);
    SnfResult s = smith_normal_form(a);
    EXPECT_TRUE(s.u.is_unimodular());
    EXPECT_TRUE(s.v.is_unimodular());
    EXPECT_EQ(s.u * a * s.v, s.d) << "matrix " << a.str();
    EXPECT_EQ(s.rank(), a.rank());
    // Divisibility chain.
    size_t k = std::min(rows, cols);
    for (size_t i = 0; i + 1 < k; ++i) {
      if (s.d(i, i) != 0 && s.d(i + 1, i + 1) != 0) {
        EXPECT_EQ(s.d(i + 1, i + 1) % s.d(i, i), 0);
      }
      if (s.d(i, i) == 0) {
        EXPECT_EQ(s.d(i + 1, i + 1), 0);
      }
    }
  }
}

TEST(Smith, ZeroMatrix) {
  SnfResult s = smith_normal_form(IntMat(3, 2));
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.u * IntMat(3, 2) * s.v, s.d);
}

}  // namespace
}  // namespace lmre
