// Third randomized property suite: wavefront, stack distances vs the cache
// simulator, direction-vector completeness, and inclusion-exclusion on
// randomized shapes.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "cachesim/cache.h"
#include "dependence/dependence.h"
#include "dependence/directions.h"
#include "exact/oracle.h"
#include "exact/stack_distance.h"
#include "ir/builder.h"
#include "layout/spatial.h"
#include "polyhedra/scanner.h"
#include "transform/wavefront.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xFEEDF00D + seed); }

// Random stencil nest: A[i][j] = f(A[i-di][j-dj]) with a forward (di,dj).
LoopNest random_stencil(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(4, 9), d1(1, 2), d2(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  Int di = d1(rng), dj = d2(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 4, n2 + 8});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {2, 4})
      .read(a, {{1, 0}, {0, 1}}, {2 - di, 4 - dj});
  return b.build();
}

// ---------------------------------------------------------------------------
class WavefrontProperty : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontProperty, HyperplaneCarriesEveryDependence) {
  auto rng = rng_for(GetParam());
  LoopNest nest = random_stencil(rng);
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  auto memory = analyze_dependences(nest).distance_vectors(false);
  for (const auto& d : memory) {
    EXPECT_GE(res->hyperplane.dot(d), 1) << d.str();
  }
  // Semantics preserved; inner level parallel.
  TraceStats a = simulate(nest);
  TraceStats b = simulate_transformed(nest, res->transform);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
  EXPECT_EQ(res->parallel_levels, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WavefrontProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
class StackDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(StackDistanceProperty, HistogramPredictsSimulatorEverywhere) {
  auto rng = rng_for(100 + GetParam());
  LoopNest nest = random_stencil(rng);
  StackDistanceProfile p = stack_distances(nest);
  auto layouts = default_layouts(nest);
  std::uniform_int_distribution<Int> capd(1, p.max_distance() + 3);
  for (int probes = 0; probes < 4; ++probes) {
    Int cap = capd(rng);
    CacheStats sim = simulate_cache(nest, layouts, CacheConfig{cap, 1, 0});
    EXPECT_EQ(p.lru_misses(cap), sim.misses) << "capacity " << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackDistanceProperty, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Every concrete dependent pair must be covered by some feasible fully
// refined direction vector, and every reported vector must be witnessed.
class DirectionCompletenessProperty : public ::testing::TestWithParam<int> {};

TEST_P(DirectionCompletenessProperty, RefinementMatchesEnumeration) {
  auto rng = rng_for(200 + GetParam());
  std::uniform_int_distribution<Int> coefd(-3, 3), off(-4, 4);
  IntBox box = IntBox::from_upper_bounds({4, 4});
  ArrayRef a{0, AccessKind::kRead, IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)}};
  ArrayRef b{0, AccessKind::kRead, IntMat{{coefd(rng), coefd(rng)}}, IntVec{off(rng)}};

  // Enumerate all dependent pairs and their sign patterns.
  std::set<std::string> witnessed;
  scan(box.to_constraints(), [&](const IntVec& i) {
    scan(box.to_constraints(), [&](const IntVec& j) {
      if (!(a.index_at(i) == b.index_at(j))) return;
      std::vector<Dir> dirs;
      for (size_t k = 0; k < 2; ++k) {
        if (i[k] < j[k]) {
          dirs.push_back(Dir::kLt);
        } else if (i[k] == j[k]) {
          dirs.push_back(Dir::kEq);
        } else {
          dirs.push_back(Dir::kGt);
        }
      }
      witnessed.insert(direction_vector_string(dirs));
    });
  });

  std::set<std::string> reported;
  for (const auto& d : feasible_direction_vectors(a, b, box)) {
    reported.insert(direction_vector_string(d));
  }
  EXPECT_EQ(reported, witnessed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DirectionCompletenessProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace lmre
