// End-to-end property suite for the C backend (src/codegen): every emitted
// kernel must COMPILE, RUN, and prove itself.
//
//   * 102 random 2-/3-deep nests (the property_verify generator: one
//     write + two reads, uniform and non-uniform), each under a random
//     CERTIFIED plan (uncertifiable draws fall back to the identity);
//   * the paper's Figure-2 suite under the optimizer's own plan;
//   * the examples/loops corpus under the identity order.
//
// For each kernel the generated self-check asserts, inside the compiled
// program: original vs window-buffered arrays bit-identical, `use`
// checksums equal, measured peak window == the engine's prediction
// (buffer occupancy can never exceed the modulus by construction, so
// measured MWS <= emitted buffer size), and loads/stores == the cold/
// writeback predictions with zero reloads.  On the host side the emitted
// window prediction is cross-checked against the exact oracle
// (simulate_transformed / analyze_tiling) before anything is compiled.
//
// Kernels are batched ~16 per translation unit (standalone=false, distinct
// stems) so the whole suite costs a handful of `cc` invocations; without a
// system C compiler the run-time halves SKIP visibly and the host-side
// emission and oracle cross-checks still execute.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/codegen.h"
#include "codegen/driver.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "linalg/mat.h"
#include "transform/minimizer.h"
#include "transform/tiling.h"
#include "verify/verify.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xC0DE6E0 + seed); }

// Random nest: depth 2 or 3, one array, one write + two reads (the
// property_verify generator -- write-after-read and read-after-write
// traffic through one buffer is the hard case for the window staging).
LoopNest random_nest(std::mt19937& rng, size_t depth) {
  std::uniform_int_distribution<Int> bnd(2, depth == 2 ? 6 : 4);
  std::uniform_int_distribution<Int> coef(-2, 2), off(-2, 2);
  std::uniform_int_distribution<int> coin(0, 1);

  NestBuilder b;
  std::vector<Int> hi(depth);
  for (size_t k = 0; k < depth; ++k) {
    hi[k] = bnd(rng);
    b.loop(std::string(1, static_cast<char>('i' + k)), 1, hi[k]);
  }

  const size_t dims = depth;
  auto random_access = [&] {
    IntMat a(dims, depth);
    for (size_t r = 0; r < dims; ++r) {
      for (size_t c = 0; c < depth; ++c) a(r, c) = coef(rng);
    }
    return a;
  };
  IntMat base = random_access();
  const bool uniform = coin(rng) == 1;

  std::vector<Int> extents(dims);
  for (size_t r = 0; r < dims; ++r) {
    Int span = 3;
    for (size_t c = 0; c < depth; ++c) span += 2 * hi[c];
    extents[r] = 2 * span + 1;
  }
  ArrayId a = b.array("A", extents);

  auto random_offset = [&] {
    IntVec o(dims);
    for (size_t r = 0; r < dims; ++r) o[r] = off(rng);
    return o;
  };
  StatementBuilder s = b.statement();
  s.write(a, base, random_offset());
  s.read(a, uniform ? base : random_access(), random_offset());
  s.read(a, uniform ? base : random_access(), random_offset());
  return b.build();
}

IntMat random_unimodular(std::mt19937& rng, size_t n) {
  std::uniform_int_distribution<size_t> row(0, n - 1);
  std::uniform_int_distribution<Int> shear(-1, 1);
  std::uniform_int_distribution<int> op(0, 2), reps(2, 4);
  IntMat m = IntMat::identity(n);
  const int k = reps(rng);
  for (int t = 0; t < k; ++t) {
    size_t r1 = row(rng), r2 = row(rng);
    switch (op(rng)) {
      case 0:
        for (size_t c = 0; c < n; ++c) std::swap(m(r1, c), m(r2, c));
        break;
      case 1:
        for (size_t c = 0; c < n; ++c) m(r1, c) = -m(r1, c);
        break;
      default:
        if (r1 != r2) {
          Int f = shear(rng);
          for (size_t c = 0; c < n; ++c) m(r1, c) += f * m(r2, c);
        }
        break;
    }
  }
  return m;
}

VerifyPlan random_plan(std::mt19937& rng, size_t n) {
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<Int> tile(2, 4);
  VerifyPlan plan;
  plan.steps.push_back(random_unimodular(rng, n));
  if (pct(rng) < 30) plan.steps.push_back(random_unimodular(rng, n));
  if (pct(rng) < 30) {
    plan.tile_sizes.resize(n);
    for (size_t k = 0; k < n; ++k) plan.tile_sizes[k] = tile(rng);
  }
  return plan;
}

// The exact oracle's window for the plan's execution order -- what the
// emitted self-check must measure at run time.
Int oracle_mws(const LoopNest& nest, const VerifyPlan& plan) {
  IntMat t = plan.combined(nest.depth());
  if (plan.has_tiling()) {
    return analyze_tiling(nest, t, plan.tile_sizes).mws_tiled;
  }
  return simulate_transformed(nest, t).mws_total;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Compiles one multi-kernel translation unit and returns the verdict
// lines the batched main() printed; `detail` carries compiler/runtime
// stderr on failure.
struct BatchOutcome {
  bool compiled = false;
  bool ran = false;
  std::vector<std::string> lines;
  std::string detail;
};

BatchOutcome run_batch(const std::string& c_source, const std::string& cc) {
  BatchOutcome out;
  const char* tmp = std::getenv("TMPDIR");
  std::string dir_template =
      std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
      "/lmre-prop-XXXXXX";
  std::vector<char> buf(dir_template.begin(), dir_template.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    out.detail = "mkdtemp failed";
    return out;
  }
  const std::string dir(buf.data());
  const std::string src = dir + "/batch.c";
  const std::string bin = dir + "/batch";
  const std::string cc_err = dir + "/cc.err";
  const std::string run_out = dir + "/run.out";
  {
    std::ofstream f(src, std::ios::binary);
    f << c_source;
  }
  std::string compile = "\"" + cc + "\" -O1 -o \"" + bin + "\" \"" + src +
                        "\" 2> \"" + cc_err + "\"";
  if (std::system(compile.c_str()) != 0) {
    out.detail = "compile failed: " + read_file(cc_err);
  } else {
    out.compiled = true;
    std::string run = "\"" + bin + "\" > \"" + run_out + "\" 2>&1";
    int rc = std::system(run.c_str());
    std::istringstream lines(read_file(run_out));
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) out.lines.push_back(line);
    }
    out.ran = !out.lines.empty();
    if (rc != 0) out.detail = "batch exited nonzero";
  }
  std::remove(src.c_str());
  std::remove(bin.c_str());
  std::remove(cc_err.c_str());
  std::remove(run_out.c_str());
  ::rmdir(dir.c_str());
  return out;
}

// One pending kernel: emitted source + the identity facts to assert.
struct Pending {
  std::string stem;
  std::string source;  // non-standalone unit
  std::string label;   // for failure messages
};

// Compiles pending kernels ~16 per TU and asserts every per-kernel
// verdict line reports status 0 (identical, sink match, window and
// traffic as predicted).
void compile_and_check(const std::vector<Pending>& kernels,
                       const std::string& cc) {
  constexpr size_t kPerUnit = 16;
  for (size_t base = 0; base < kernels.size(); base += kPerUnit) {
    const size_t end = std::min(base + kPerUnit, kernels.size());
    std::ostringstream tu;
    for (size_t i = base; i < end; ++i) tu << kernels[i].source << '\n';
    tu << "int main(void) {\n  int bad = 0;\n";
    for (size_t i = base; i < end; ++i) {
      tu << "  bad |= lm_" << kernels[i].stem << "_check();\n";
    }
    tu << "  return bad == 0 ? 0 : 1;\n}\n";
    BatchOutcome out = run_batch(tu.str(), cc);
    ASSERT_TRUE(out.compiled) << out.detail;
    ASSERT_TRUE(out.ran) << out.detail;
    ASSERT_EQ(out.lines.size(), end - base) << out.detail;
    for (size_t i = base; i < end; ++i) {
      const std::string& line = out.lines[i - base];
      EXPECT_NE(line.find("\"kernel\": \"" + kernels[i].stem + "\""),
                std::string::npos)
          << kernels[i].label << ": " << line;
      EXPECT_NE(line.find("\"status\": 0}"), std::string::npos)
          << kernels[i].label << " failed its self-check: " << line;
    }
  }
}

TEST(PropertyCodegen, RandomNestsRunBitIdentical) {
  constexpr int kCases = 102;
  const std::string cc = find_cc();

  std::vector<Pending> kernels;
  int transformed_plans = 0, tiled_plans = 0;
  for (int i = 0; i < kCases; ++i) {
    std::mt19937 rng = rng_for(i);
    LoopNest nest = random_nest(rng, i % 2 == 0 ? 2 : 3);
    // Only certified plans reach the backend -- same gate the runtime
    // enforces; an uncertifiable draw degrades to the identity order.
    VerifyPlan plan = random_plan(rng, nest.depth());
    if (verify_plan(nest, plan).certified) {
      ++transformed_plans;
      if (plan.has_tiling()) ++tiled_plans;
    } else {
      plan = VerifyPlan{};
    }

    CodegenOptions opts;
    opts.standalone = false;
    opts.stem = "r" + std::to_string(i);
    CodegenResult cg = emit_c(nest, plan, opts);

    // Host-side differential check: the window the generated program will
    // measure equals the exact oracle's window for this execution order.
    EXPECT_EQ(cg.mws_total, oracle_mws(nest, plan)) << "case " << i;
    EXPECT_GE(cg.window_cells, cg.mws_total) << "case " << i;
    for (const BufferPlan& b : cg.buffers) {
      EXPECT_TRUE(b.collision_free) << "case " << i;
      EXPECT_GE(b.modulus, b.mws) << "case " << i;
    }
    kernels.push_back({opts.stem, cg.c_source, "random case " + std::to_string(i)});
  }
  // The draw must exercise real transforms, not degrade to all-identity.
  EXPECT_GE(transformed_plans, kCases / 3);
  EXPECT_GE(tiled_plans, 5);

  if (cc.empty()) GTEST_SKIP() << "no system C compiler on PATH; emission "
                                  "and oracle cross-checks ran, compile/run "
                                  "halves skipped";
  compile_and_check(kernels, cc);
}

TEST(PropertyCodegen, Figure2SuiteUnderOptimizerPlans) {
  const std::string cc = find_cc();
  std::vector<Pending> kernels;
  size_t idx = 0;
  for (const auto& entry : codes::figure2_suite()) {
    // The optimizer's own plan, certified-gated exactly like `lmre
    // codegen --plan`; uncertified winners degrade to the identity.
    OptimizeResult res = optimize_locality(entry.nest);
    VerifyPlan plan;
    plan.steps = {res.transform};
    if (!verify_plan(entry.nest, plan).certified) plan = VerifyPlan{};

    CodegenOptions opts;
    opts.standalone = false;
    opts.stem = "f" + std::to_string(idx++);
    CodegenResult cg = emit_c(entry.nest, plan, opts);
    EXPECT_EQ(cg.mws_total, oracle_mws(entry.nest, plan)) << entry.name;
    kernels.push_back({opts.stem, cg.c_source, "figure2 " + entry.name});
  }
  ASSERT_GE(kernels.size(), 5u);
  if (cc.empty()) GTEST_SKIP() << "no system C compiler on PATH";
  compile_and_check(kernels, cc);
}

TEST(PropertyCodegen, LoopCorpusIdentityOrder) {
  namespace fs = std::filesystem;
  std::string root;
  for (const char* base : {"", "../", "../../", "../../../"}) {
    std::error_code ec;
    if (fs::is_directory(std::string(base) + "examples/loops", ec)) {
      root = base;
      break;
    }
  }
  if (root.empty() && !fs::is_directory("examples/loops")) {
    GTEST_SKIP() << "examples/loops not found from test cwd";
  }

  const std::string cc = find_cc();
  std::vector<Pending> kernels;
  size_t idx = 0, skipped = 0;
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(root + "examples/loops")) {
    if (e.path().extension() == ".loop") paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_GE(paths.size(), 10u);
  for (const fs::path& p : paths) {
    Program program = parse_program(read_file(p.string()));
    if (program.phase_count() != 1) {
      ++skipped;  // multi-phase sources are outside the codegen fragment
      continue;
    }
    const LoopNest& nest = program.phase_nest(0);
    CodegenOptions opts;
    opts.standalone = false;
    opts.stem = "c" + std::to_string(idx++);
    CodegenResult cg;
    try {
      cg = emit_c(nest, VerifyPlan{}, opts);
    } catch (const Error& err) {
      ADD_FAILURE() << p.filename() << ": " << err.what();
      continue;
    }
    EXPECT_EQ(cg.mws_total, simulate(nest).mws_total) << p.filename();
    kernels.push_back({opts.stem, cg.c_source, p.filename().string()});
  }
  ASSERT_GE(kernels.size(), 10u);
  if (cc.empty()) GTEST_SKIP() << "no system C compiler on PATH";
  compile_and_check(kernels, cc);
}

}  // namespace
}  // namespace lmre
