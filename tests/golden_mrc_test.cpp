// Golden-file tests for `lmre mrc --json`: the enveloped miss-ratio-curve
// documents must match tests/golden/mrc_example*.json byte for byte.
//
//   mrc_example6.json        Example 6 (non-uniform references), identity
//                            order: 800 accesses, 182 distinct;
//   mrc_example8.json        Example 8, identity order: the (0,1) reuse
//                            generator gives a tight knee;
//   mrc_example8_plan.json   Example 8 under the optimizer's plan;
//   mrc_example10.json       Example 10, identity order: all 4131 reuses
//                            span exactly 687 distinct elements, so the
//                            curve is flat at 100% below the 687 knee and
//                            drops to the 1869/6000 cold floor there.  The
//                            capacity list pins 540 -- the paper's MWS --
//                            on the miss side: LRU needs 687, the forward-
//                            window policy only 540 (knee >= MWS, always);
//   mrc_example10_plan.json  Example 10 under the optimizer's plan: the
//                            reuse collapses to distance 1 and capacity
//                            540 is far past the knee, on the cold floor.
//
// The payload comes from an AnalysisSession, so these goldens also pin
// what `lmre batch` and `lmre serve` embed for "mrc" requests.
// Regenerate with scripts/regen_golden.sh after an intentional change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
std::string source_root() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    if (!read_file(std::string(base) + "tests/golden/example10.loop").empty()) {
      return base;
    }
  }
  return "?";
}

void check_golden(std::vector<std::string> args, const std::string& input,
                  const std::string& golden_name) {
  std::string root = source_root();
  if (root == "?") GTEST_SKIP() << "source tree not found from test cwd";
  std::string golden = read_file(root + "tests/golden/" + golden_name);
  ASSERT_FALSE(golden.empty()) << "tests/golden/" << golden_name << " missing";

  args.insert(args.begin(), {"mrc", "--json"});
  args.push_back(root + input);
  std::ostringstream out, err;
  ExitCode rc = run_cli(args, out, err);
  EXPECT_EQ(rc, ExitCode::kSuccess) << err.str();
  EXPECT_EQ(out.str(), golden)
      << "mrc --json output drifted from the golden; if intentional, "
         "regenerate with scripts/regen_golden.sh";
}

TEST(GoldenMrc, Example6NonUniformIdentity) {
  check_golden({}, "tests/golden/example6.loop", "mrc_example6.json");
}

TEST(GoldenMrc, Example8Identity) {
  check_golden({}, "examples/loops/example8.loop", "mrc_example8.json");
}

TEST(GoldenMrc, Example8OptimizerPlan) {
  check_golden({"--plan"}, "examples/loops/example8.loop",
               "mrc_example8_plan.json");
}

TEST(GoldenMrc, Example10KneeVsPaperWindow) {
  check_golden({"--capacities=1,64,128,540,687,1024"},
               "tests/golden/example10.loop", "mrc_example10.json");
}

TEST(GoldenMrc, Example10OptimizerPlan) {
  check_golden({"--plan", "--capacities=1,64,128,540,687,1024"},
               "tests/golden/example10.loop", "mrc_example10_plan.json");
}

}  // namespace
}  // namespace lmre::tools
