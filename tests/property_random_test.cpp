// Randomized property sweeps (parameterized gtest): the estimator formulas
// against the exact oracle, and structural invariants of transformations.

#include <gtest/gtest.h>

#include <random>

#include "analysis/distinct.h"
#include "analysis/nonuniform.h"
#include "analysis/window.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "polyhedra/scanner.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xC0FFEE + seed); }

IntMat random_unimodular(std::mt19937& rng, size_t n, int ops = 6) {
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<size_t> idx(0, n - 1);
  std::uniform_int_distribution<Int> factor(-2, 2);
  IntMat t = IntMat::identity(n);
  for (int i = 0; i < ops; ++i) {
    switch (op(rng)) {
      case 0: {
        size_t a = idx(rng), b = idx(rng);
        if (a != b) t = interchange(n, a, b) * t;
        break;
      }
      case 1:
        t = reversal(n, idx(rng)) * t;
        break;
      default: {
        size_t a = idx(rng), b = idx(rng);
        if (a != b) t = skew(n, a, b, factor(rng)) * t;
        break;
      }
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Property: Section 3.1 estimate is exact for d == n with r == 2 references.
class FullDimPairProperty : public ::testing::TestWithParam<int> {};

TEST_P(FullDimPairProperty, EstimateMatchesOracle) {
  auto rng = rng_for(GetParam());
  std::uniform_int_distribution<Int> bound(3, 9), off(-3, 3);
  NestBuilder b;
  Int n1 = bound(rng), n2 = bound(rng);
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 8, n2 + 8});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {off(rng), off(rng)});
  LoopNest nest = b.build();
  DistinctEstimate e = estimate_distinct(nest, 0);
  EXPECT_TRUE(e.exact_claimed);
  EXPECT_EQ(e.distinct, simulate(nest).distinct_total) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FullDimPairProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: the inclusion-exclusion closed form equals the oracle's union
// for ANY number of uniformly generated references with injective access.
class InclusionExclusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(InclusionExclusionProperty, ClosedFormEqualsOracle) {
  auto rng = rng_for(900 + GetParam());
  std::uniform_int_distribution<Int> bound(3, 8), off(-3, 3), refs(2, 5);
  Int n1 = bound(rng), n2 = bound(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 8, 2 * n2 + 8});
  StatementBuilder sb = b.statement();
  Int r = refs(rng);
  for (Int k = 0; k < r; ++k) {
    // Injective but non-trivial access (det 2): mixes integral and
    // non-integral pairwise shifts.
    sb.read(a, IntMat{{1, 0}, {0, 2}}, IntVec{off(rng) + 4, off(rng) + 4});
  }
  LoopNest nest = b.build();
  EXPECT_EQ(distinct_exact_inclusion_exclusion(nest, 0),
            simulate(nest).distinct_total)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, InclusionExclusionProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: Section 3.2 estimate is exact for single references with a
// 1-dimensional kernel.
class KernelSingleRefProperty : public ::testing::TestWithParam<int> {};

TEST_P(KernelSingleRefProperty, EstimateMatchesOracle) {
  auto rng = rng_for(1000 + GetParam());
  std::uniform_int_distribution<Int> bound(3, 12), coefd(1, 5);
  Int n1 = bound(rng), n2 = bound(rng);
  Int a1 = coefd(rng), a2 = coefd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {a1 * n1 + a2 * n2 + 2});
  b.statement().read(a, IntMat{{a1, a2}}, IntVec{0});
  LoopNest nest = b.build();
  DistinctEstimate e = estimate_distinct(nest, 0);
  ASSERT_EQ(e.method, DistinctMethod::kKernelSingleRef);
  EXPECT_TRUE(e.exact_claimed);
  EXPECT_EQ(e.distinct, simulate(nest).distinct_total)
      << "coeffs (" << a1 << "," << a2 << ") box " << n1 << "x" << n2;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelSingleRefProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: depth-3 kernel single-reference exactness (Example 5 family).
class KernelDepth3Property : public ::testing::TestWithParam<int> {};

TEST_P(KernelDepth3Property, EstimateMatchesOracle) {
  auto rng = rng_for(2000 + GetParam());
  std::uniform_int_distribution<Int> bound(3, 7), coefd(1, 3);
  Int n1 = bound(rng), n2 = bound(rng), n3 = bound(rng);
  Int c1 = coefd(rng), c2 = coefd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2).loop("k", 1, n3);
  ArrayId a = b.array("A", {c1 * n1 + c2 * n3 + 2, n2 + n3 + 2});
  b.statement().read(a, IntMat{{c1, 0, c2}, {0, 1, 1}}, IntVec{0, 0});
  LoopNest nest = b.build();
  DistinctEstimate e = estimate_distinct(nest, 0);
  if (e.exact_claimed) {
    EXPECT_EQ(e.distinct, simulate(nest).distinct_total)
        << "c1=" << c1 << " c2=" << c2;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelDepth3Property, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// Property: the non-uniform upper bound is sound.
class NonUniformUpperProperty : public ::testing::TestWithParam<int> {};

TEST_P(NonUniformUpperProperty, UpperBoundHolds) {
  auto rng = rng_for(3000 + GetParam());
  std::uniform_int_distribution<Int> bound(4, 10), coefd(-5, 5), off(-20, 20);
  Int n1 = bound(rng), n2 = bound(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {400});
  Int c11 = coefd(rng), c12 = coefd(rng), c21 = coefd(rng), c22 = coefd(rng);
  if (c11 == 0 && c12 == 0) c11 = 1;
  if (c21 == 0 && c22 == 0) c22 = 1;
  if (c11 == c21 && c12 == c22) c21 += 1;
  b.statement().read(a, IntMat{{c11, c12}}, IntVec{off(rng)});
  b.statement().read(a, IntMat{{c21, c22}}, IntVec{off(rng)});
  LoopNest nest = b.build();
  NonUniformBounds nb = nonuniform_bounds(nest, 0);
  Int actual = simulate(nest).distinct_total;
  EXPECT_LE(actual, nb.upper);
  EXPECT_GE(nb.lower_conservative, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NonUniformUpperProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: a unimodular reordering preserves the address multiset (distinct
// count and access count), and the transformed scan visits exactly the
// iteration-count many points.
class TransformInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransformInvariantProperty, DistinctAndAccessesPreserved) {
  auto rng = rng_for(4000 + GetParam());
  std::uniform_int_distribution<Int> bound(3, 8), off(-2, 2);
  size_t depth = 2 + GetParam() % 2;
  NestBuilder b;
  Int vol = 1;
  for (size_t d = 0; d < depth; ++d) {
    Int n = bound(rng);
    b.loop("i" + std::to_string(d), 1, n);
    vol *= n;
  }
  std::vector<Int> extents(2, 30);
  ArrayId a = b.array("A", extents);
  IntMat acc(2, depth);
  for (size_t c = 0; c < depth; ++c) {
    acc(0, c) = off(rng);
    acc(1, c) = off(rng);
  }
  b.statement().write(a, acc, IntVec{10, 10}).read(a, acc, IntVec{11, 9});
  LoopNest nest = b.build();
  IntMat t = random_unimodular(rng, depth);
  TraceStats orig = simulate(nest);
  TraceStats tr = simulate_transformed(nest, t);
  EXPECT_EQ(orig.iterations, vol);
  EXPECT_EQ(tr.iterations, vol);
  EXPECT_EQ(orig.total_accesses, tr.total_accesses);
  EXPECT_EQ(orig.distinct_total, tr.distinct_total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformInvariantProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: legality is preserved structurally -- for any legal T, all
// transformed memory dependences are lexicographically positive.
class LegalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(LegalityProperty, TransformedDepsLexPositive) {
  auto rng = rng_for(5000 + GetParam());
  std::uniform_int_distribution<Int> off(-3, 3);
  NestBuilder b;
  b.loop("i", 1, 8).loop("j", 1, 8);
  ArrayId a = b.array("A", {14, 14});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {off(rng), off(rng)});
  LoopNest nest = b.build();
  auto deps = analyze_dependences(nest).distance_vectors(false);
  IntMat t = random_unimodular(rng, 2);
  if (is_legal(t, deps)) {
    for (const auto& d : transform_dependences(t, deps)) {
      EXPECT_TRUE(d.lex_positive());
    }
  }
  if (is_tileable(t, deps)) {
    for (const auto& d : transform_dependences(t, deps)) {
      for (size_t k = 0; k < d.size(); ++k) EXPECT_GE(d[k], 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LegalityProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: the optimizer's result is legal, unimodular, and never worse
// than the identity on random 1-d-array stream loops.
class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, NeverWorseAndAlwaysLegal) {
  auto rng = rng_for(6000 + GetParam());
  std::uniform_int_distribution<Int> coefd(-4, 4), off(0, 6), bound(5, 12);
  Int a1 = coefd(rng), a2 = coefd(rng);
  if (a1 == 0 && a2 == 0) a1 = 2;
  Int n1 = bound(rng), n2 = bound(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId x = b.array("X", {200});
  b.statement()
      .write(x, IntMat{{a1, a2}}, IntVec{off(rng) + 60})
      .read(x, IntMat{{a1, a2}}, IntVec{off(rng) + 60});
  LoopNest nest = b.build();
  OptimizeResult res = optimize_locality(nest);
  EXPECT_TRUE(res.transform.is_unimodular());
  auto memory = analyze_dependences(nest).distance_vectors(false);
  EXPECT_TRUE(is_legal(res.transform, memory));
  Int before = simulate(nest).mws_total;
  Int after = simulate_transformed(nest, res.transform).mws_total;
  EXPECT_LE(after, before) << "coeffs (" << a1 << "," << a2 << ")";
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// Property: FM-extracted bounds of a transformed box scan the right number
// of points, in lexicographic order.
class TransformedScanProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransformedScanProperty, CountAndOrder) {
  auto rng = rng_for(7000 + GetParam());
  std::uniform_int_distribution<Int> bound(2, 7);
  size_t depth = 2 + GetParam() % 2;
  std::vector<Int> n;
  Int vol = 1;
  for (size_t d = 0; d < depth; ++d) {
    n.push_back(bound(rng));
    vol *= n.back();
  }
  IntBox box = IntBox::from_upper_bounds(n);
  IntMat t = random_unimodular(rng, depth);
  IntMat tinv = t.inverse_unimodular();
  ConstraintSystem sys(depth);
  for (size_t k = 0; k < depth; ++k) {
    sys.add_range(AffineExpr(tinv.row(k), 0), 1, n[k]);
  }
  Int count = 0;
  std::optional<IntVec> prev;
  scan(sys, [&](const IntVec& u) {
    ++count;
    EXPECT_TRUE(box.contains(tinv * u));
    if (prev) {
      EXPECT_TRUE(prev->lex_less(u));
    }
    prev = u;
  });
  EXPECT_EQ(count, vol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformedScanProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Property: eq. (2) with the identity row upper-bounds the exact window for
// single-reference 1-d streams (the estimate counts a full inner span).
class Eq2SoundnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(Eq2SoundnessProperty, EstimateAtLeastExact) {
  auto rng = rng_for(8000 + GetParam());
  std::uniform_int_distribution<Int> coefd(1, 5), bound(4, 10);
  Int a1 = coefd(rng), a2 = coefd(rng), n1 = bound(rng), n2 = bound(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId x = b.array("X", {a1 * n1 + a2 * n2 + 2});
  b.statement().read(x, IntMat{{a1, a2}}, IntVec{0});
  LoopNest nest = b.build();
  Rational est = mws2_estimate(IntVec{a1, a2}, nest.bounds(), 1, 0);
  Int exact = simulate(nest).mws_total;
  EXPECT_GE(est, Rational(exact))
      << "coeffs (" << a1 << "," << a2 << ") box " << n1 << "x" << n2;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Eq2SoundnessProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace lmre
