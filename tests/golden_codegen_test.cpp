// Golden-file tests for `lmre codegen --json`: the enveloped codegen
// documents -- plan, combined transform, window accounting, buffer plans
// and the full generated C unit -- must match tests/golden/
// codegen_example{6,8,10}.json byte for byte.
//
//   codegen_example6.json   Example 6 (non-uniform references): identity
//                           order, one 131-cell modulo buffer vs 191
//                           declared cells;
//   codegen_example8.json   Example 8 (read+write of X): write-back
//                           buffer, 44 cells vs 106 declared;
//   codegen_example10.json  Example 10: the Section 4.3 window (540)
//                           drives a 675-cell buffer vs 3111 declared.
//
// Emission is deterministic (no wall clocks, no host state), which is
// what makes pinning the whole document -- C source included -- viable.
// Regenerate with scripts/regen_golden.sh after an intentional change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "tools/commands.h"

namespace lmre::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
std::string source_root() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    if (!read_file(std::string(base) + "tests/golden/example10.loop").empty()) {
      return base;
    }
  }
  return "?";
}

void check_golden(const std::string& input, const std::string& golden_name) {
  std::string root = source_root();
  if (root == "?") GTEST_SKIP() << "source tree not found from test cwd";
  std::string golden = read_file(root + "tests/golden/" + golden_name);
  ASSERT_FALSE(golden.empty()) << "tests/golden/" << golden_name << " missing";

  std::ostringstream out, err;
  ExitCode rc = run_cli({"codegen", "--json", root + input}, out, err);
  EXPECT_EQ(rc, ExitCode::kSuccess) << err.str();
  EXPECT_EQ(out.str(), golden)
      << "codegen --json output drifted from the golden; if intentional, "
         "regenerate with scripts/regen_golden.sh";
}

TEST(GoldenCodegen, Example6NonUniformIdentity) {
  check_golden("tests/golden/example6.loop", "codegen_example6.json");
}

TEST(GoldenCodegen, Example8WriteBackBuffer) {
  check_golden("examples/loops/example8.loop", "codegen_example8.json");
}

TEST(GoldenCodegen, Example10PaperWindow) {
  check_golden("tests/golden/example10.loop", "codegen_example10.json");
}

}  // namespace
}  // namespace lmre::tools
