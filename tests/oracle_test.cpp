#include <gtest/gtest.h>

#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "support/error.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

LoopNest tiny_chain() {
  // for i in [1,4]: A[i] = A[i-1]   -- each element live exactly one
  // iteration; window size constant 1 (after the first write).
  NestBuilder b;
  b.loop("i", 1, 4);
  ArrayId a = b.array("A", {5});
  b.statement().write(a, {{1}}, {0}).read(a, {{1}}, {-1});
  return b.build();
}

TEST(Oracle, CountsIterationsAndAccesses) {
  TraceStats s = simulate(tiny_chain());
  EXPECT_EQ(s.iterations, 4);
  EXPECT_EQ(s.total_accesses, 8);
  EXPECT_EQ(s.distinct_total, 5);  // A[0..4]
  EXPECT_EQ(s.reuse_total, 3);     // A[1..3] touched twice
}

TEST(Oracle, WindowOfChainIsOne) {
  // At iteration i the only element with a future use is A[i].
  TraceStats s = simulate(tiny_chain());
  EXPECT_EQ(s.mws_total, 1);
  EXPECT_EQ(s.mws.at(0), 1);
}

TEST(Oracle, ElementTouchedOnlyOnceNeverInWindow) {
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId a = b.array("A", {6});
  b.statement().write(a, {{1}}, {0});
  TraceStats s = simulate(b.build());
  EXPECT_EQ(s.distinct_total, 6);
  EXPECT_EQ(s.mws_total, 0);  // nothing is ever referenced again
}

TEST(Oracle, MultipleAccessesSameIterationDoNotOpenWindow) {
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId a = b.array("A", {6});
  b.statement().write(a, {{1}}, {0}).read(a, {{1}}, {0});  // A[i] = f(A[i])
  TraceStats s = simulate(b.build());
  EXPECT_EQ(s.mws_total, 0);
}

TEST(Oracle, FullyLiveArray) {
  // for i in [1,3], j in [1,4]: use B[j] -- whole B is live across i-rows.
  NestBuilder b;
  b.loop("i", 1, 3).loop("j", 1, 4);
  ArrayId arr = b.array("B", {4});
  b.statement().read(arr, {{0, 1}}, {0});
  TraceStats s = simulate(b.build());
  EXPECT_EQ(s.distinct_total, 4);
  EXPECT_EQ(s.mws_total, 4);
}

TEST(Oracle, PerArrayWindows) {
  // A is a chain (window 1); B is fully live (window 4).
  NestBuilder b;
  b.loop("i", 1, 3).loop("j", 1, 4);
  ArrayId a = b.array("A", {4, 5});
  ArrayId arr = b.array("B", {4});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {0, -1})
      .read(arr, {{0, 1}}, {0});
  TraceStats s = simulate(b.build());
  EXPECT_EQ(s.mws.at(0), 1);
  EXPECT_EQ(s.mws.at(1), 4);
  // Combined window max is at most the sum, at least the max.
  EXPECT_LE(s.mws_total, s.mws.at(0) + s.mws.at(1));
  EXPECT_GE(s.mws_total, 4);
}

TEST(Oracle, IdentityTransformMatchesOriginal) {
  LoopNest nest = codes::example_8();
  TraceStats a = simulate(nest);
  TraceStats b = simulate_transformed(nest, IntMat::identity(2));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
  EXPECT_EQ(a.mws_total, b.mws_total);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
}

TEST(Oracle, TransformPreservesDistinctAndAccesses) {
  LoopNest nest = codes::example_8();
  IntMat t{{2, 3}, {1, 1}};
  TraceStats a = simulate(nest);
  TraceStats b = simulate_transformed(nest, t);
  EXPECT_EQ(a.iterations, b.iterations);        // bijective reindexing
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.distinct_total, b.distinct_total);  // same elements touched
  // Window size may (and here does) change.
  EXPECT_NE(a.mws_total, b.mws_total);
}

TEST(Oracle, NonUnimodularTransformRejected) {
  LoopNest nest = tiny_chain();
  EXPECT_THROW(simulate_transformed(nest, IntMat{{2}}), InvalidArgument);
}

TEST(Oracle, WrongShapeTransformRejected) {
  LoopNest nest = tiny_chain();
  EXPECT_THROW(simulate_transformed(nest, IntMat::identity(2)), InvalidArgument);
}

TEST(Oracle, InterchangeChangesWindowOfColumnStencil) {
  // A[i][j] = A[i-1][j]: row-major window ~n, interchanged ~1.
  NestBuilder b;
  b.loop("i", 1, 8).loop("j", 1, 8);
  ArrayId a = b.array("A", {8, 8});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 0});
  LoopNest nest = b.build();
  EXPECT_EQ(simulate(nest).mws_total, 8);
  EXPECT_EQ(simulate_transformed(nest, interchange(2, 0, 1)).mws_total, 1);
}

TEST(Oracle, WindowSeriesPeaksAtMws) {
  LoopNest nest = codes::example_8();
  auto series = window_series(nest, IntMat::identity(2));
  ASSERT_EQ(series.size(), static_cast<size_t>(nest.iteration_count()));
  Int peak = 0;
  for (Int v : series) peak = std::max(peak, v);
  EXPECT_EQ(peak, simulate(nest).mws_total);
  // The series starts small and ends at zero live elements.
  EXPECT_EQ(series.back(), 0);
}

TEST(Oracle, ReusePerArray) {
  LoopNest nest = codes::example_3();
  TraceStats s = simulate(nest);
  EXPECT_EQ(s.total_accesses, 400);
  EXPECT_EQ(s.distinct_total, 121);  // union of the four shifted squares
  EXPECT_EQ(s.reuse_total, 279);
  EXPECT_EQ(s.reuse.at(0), 279);
}

}  // namespace
}  // namespace lmre
