#include <gtest/gtest.h>

#include "transform/unimodular.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Elementary, Interchange) {
  IntMat t = interchange(3, 0, 2);
  EXPECT_TRUE(t.is_unimodular());
  EXPECT_EQ(t * (IntVec{1, 2, 3}), (IntVec{3, 2, 1}));
  EXPECT_EQ(t * t, IntMat::identity(3));
}

TEST(Elementary, Reversal) {
  IntMat t = reversal(2, 1);
  EXPECT_TRUE(t.is_unimodular());
  EXPECT_EQ(t * (IntVec{4, 5}), (IntVec{4, -5}));
}

TEST(Elementary, Skew) {
  IntMat t = skew(2, 0, 1, 3);  // row j += 3 * row i
  EXPECT_TRUE(t.is_unimodular());
  EXPECT_EQ(t * (IntVec{2, 5}), (IntVec{2, 11}));
  EXPECT_THROW(skew(2, 0, 0, 1), InvalidArgument);
}

TEST(Elementary, CompositionStaysUnimodular) {
  IntMat t = skew(3, 0, 2, -2) * interchange(3, 1, 2) * reversal(3, 0);
  EXPECT_TRUE(t.is_unimodular());
}

TEST(Legality, IdentityLegalForLexPositiveDeps) {
  std::vector<IntVec> deps{{1, -2}, {0, 3}, {2, 0}};
  EXPECT_TRUE(is_legal(IntMat::identity(2), deps));
}

TEST(Legality, InterchangeIllegalForMixedSignDep) {
  // (1,-2) interchanged becomes (-2,1): lex-negative.
  std::vector<IntVec> deps{{1, -2}};
  EXPECT_FALSE(is_legal(interchange(2, 0, 1), deps));
  EXPECT_TRUE(is_legal(interchange(2, 0, 1), {IntVec{1, 2}}));
}

TEST(Legality, Example8LiPingaliRowsIllegal) {
  // The paper's Section 4 argument: any transformation whose first row is
  // (2,5) violates (3,-2); first row (-2,-5)... rows (-2,5) violate (2,0).
  std::vector<IntVec> deps{{3, -2}, {2, 0}, {5, -2}};
  IntMat t1{{2, 5}, {1, 3}};  // det 1
  EXPECT_FALSE(is_legal(t1, deps));  // (2,5).(3,-2) = -4 < 0
  IntMat t2{{-2, 5}, {-1, 2}};  // det 1
  EXPECT_FALSE(is_legal(t2, deps));  // (-2,5).(2,0) = -4 < 0
  // The paper's T = [[2,3],[1,1]] is legal and tileable.
  IntMat good{{2, 3}, {1, 1}};
  EXPECT_TRUE(is_legal(good, deps));
  EXPECT_TRUE(is_tileable(good, deps));
}

TEST(Tiling, RequiresAllComponentsNonNegative) {
  std::vector<IntVec> deps{{1, -2}};
  EXPECT_TRUE(is_legal(IntMat::identity(2), deps));
  EXPECT_FALSE(is_tileable(IntMat::identity(2), deps));  // second comp -2
  IntMat skewed = skew(2, 0, 1, 2);  // (1,-2) -> (1,0)
  EXPECT_TRUE(is_tileable(skewed, deps));
}

TEST(Tiling, EmptyDependenceSetAlwaysTileable) {
  EXPECT_TRUE(is_tileable(reversal(2, 0), {}));
  EXPECT_TRUE(is_legal(reversal(2, 0), {}));
}

TEST(Transform, Dependences) {
  IntMat t{{2, 3}, {1, 1}};
  auto out = transform_dependences(t, {IntVec{3, -2}, IntVec{2, 0}, IntVec{5, -2}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (IntVec{0, 1}));
  EXPECT_EQ(out[1], (IntVec{4, 2}));
  EXPECT_EQ(out[2], (IntVec{4, 3}));
  for (const auto& d : out) EXPECT_TRUE(d.lex_positive());
}

TEST(Transform, TileabilityImpliesLegalityForNonzero) {
  std::vector<IntVec> deps{{3, -2}, {2, 0}};
  IntMat t{{2, 3}, {1, 1}};
  ASSERT_TRUE(is_tileable(t, deps));
  EXPECT_TRUE(is_legal(t, deps));
}

}  // namespace
}  // namespace lmre
