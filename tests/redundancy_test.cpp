#include <gtest/gtest.h>

#include <random>
#include <set>

#include "polyhedra/box.h"
#include "polyhedra/fourier_motzkin.h"
#include "polyhedra/scanner.h"

namespace lmre {
namespace {

TEST(Feasible, BasicCases) {
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 1, 5);
  sys.add_range(AffineExpr::variable(2, 1), 1, 5);
  EXPECT_TRUE(rationally_feasible(sys));
  sys.add(AffineExpr::variable(2, 0) - 9);  // x >= 9 contradicts x <= 5
  EXPECT_FALSE(rationally_feasible(sys));
}

TEST(Feasible, GcdNormalizationTightensAtAddTime) {
  // 2x >= 1 and 2x <= 1 would be rationally feasible (x = 1/2), but
  // ConstraintSystem::add GCD-normalizes with a floor on the constant,
  // which is an integer tightening: the stored system is x >= 1 && x <= 0,
  // already infeasible.  Documented behavior of Constraint::normalized().
  ConstraintSystem sys(1);
  sys.add(AffineExpr(IntVec{2}, -1));
  sys.add(AffineExpr(IntVec{-2}, 1));
  EXPECT_FALSE(rationally_feasible(sys));
  EXPECT_EQ(count_points(sys), 0);
}

TEST(Redundancy, DropsImpliedBounds) {
  ConstraintSystem sys(1);
  sys.add(AffineExpr::variable(1, 0) - 1);   // x >= 1
  sys.add(AffineExpr::variable(1, 0) + 5);   // x >= -5  (implied)
  sys.add(-AffineExpr::variable(1, 0) + 9);  // x <= 9
  ConstraintSystem out = remove_redundant(sys);
  EXPECT_EQ(out.size(), 2u);
  // Same integer set.
  for (Int x = -10; x <= 15; ++x) {
    EXPECT_EQ(sys.contains(IntVec{x}), out.contains(IntVec{x})) << x;
  }
}

TEST(Redundancy, KeepsIrredundantSystems) {
  IntBox box = IntBox::from_upper_bounds({4, 7});
  ConstraintSystem sys = box.to_constraints();
  EXPECT_EQ(remove_redundant(sys).size(), sys.size());
}

TEST(Redundancy, DiagonalCutExample) {
  // Box plus the cut x + y <= 20 which a 4x7 box already satisfies.
  ConstraintSystem sys = IntBox::from_upper_bounds({4, 7}).to_constraints();
  sys.add(-(AffineExpr::variable(2, 0) + AffineExpr::variable(2, 1)) + 20);
  ConstraintSystem out = remove_redundant(sys);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Redundancy, PreservesIntegerPointsRandomized) {
  std::mt19937 rng(71);
  std::uniform_int_distribution<Int> coef(-3, 3), cons(-2, 10);
  for (int iter = 0; iter < 40; ++iter) {
    ConstraintSystem sys(2);
    sys.add_range(AffineExpr::variable(2, 0), -3, 4);
    sys.add_range(AffineExpr::variable(2, 1), -3, 4);
    for (int c = 0; c < 4; ++c) {
      sys.add(AffineExpr(IntVec{coef(rng), coef(rng)}, cons(rng)));
    }
    ConstraintSystem out = remove_redundant(sys);
    EXPECT_LE(out.size(), sys.size());
    std::set<std::vector<Int>> a, b;
    scan(sys, [&](const IntVec& p) { a.insert(p.data()); });
    scan(out, [&](const IntVec& p) { b.insert(p.data()); });
    EXPECT_EQ(a, b) << "iter " << iter;
  }
}

}  // namespace
}  // namespace lmre
