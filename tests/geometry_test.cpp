#include <gtest/gtest.h>

#include <random>

#include "polyhedra/geometry.h"
#include "polyhedra/scanner.h"
#include "support/error.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

LatticePolygon unit_square(Int n) {
  return LatticePolygon{{IntVec{0, 0}, IntVec{n, 0}, IntVec{n, n}, IntVec{0, n}}};
}

TEST(Polygon, SquareAreaAndBoundary) {
  LatticePolygon sq = unit_square(4);
  EXPECT_EQ(sq.area(), Rational(16));
  EXPECT_EQ(sq.boundary_points(), 16);
  EXPECT_EQ(sq.lattice_points(), 25);
  EXPECT_EQ(sq.interior_points(), 9);
}

TEST(Polygon, OrientationIrrelevant) {
  LatticePolygon cw{{IntVec{0, 0}, IntVec{0, 3}, IntVec{3, 3}, IntVec{3, 0}}};
  LatticePolygon ccw{{IntVec{0, 0}, IntVec{3, 0}, IntVec{3, 3}, IntVec{0, 3}}};
  EXPECT_EQ(cw.lattice_points(), ccw.lattice_points());
  EXPECT_EQ(cw.twice_signed_area(), -ccw.twice_signed_area());
}

TEST(Polygon, TriangleWithHalfIntegralArea) {
  LatticePolygon tri{{IntVec{0, 0}, IntVec{2, 0}, IntVec{0, 1}}};
  EXPECT_EQ(tri.area(), Rational(1));
  EXPECT_EQ(tri.boundary_points(), 4);  // (0,0),(1,0),(2,0),(0,1)
  EXPECT_EQ(tri.lattice_points(), 4);
  EXPECT_EQ(tri.interior_points(), 0);
}

TEST(Polygon, SheeredParallelogram) {
  // Fundamental parallelogram of a unimodular lattice basis: area 1,
  // exactly its 4 corners as lattice points.
  LatticePolygon par{{IntVec{0, 0}, IntVec{2, 1}, IntVec{5, 3}, IntVec{3, 2}}};
  EXPECT_EQ(par.area(), Rational(1));
  EXPECT_EQ(par.lattice_points(), 4);
}

TEST(Polygon, NeedsThreeVertices) {
  LatticePolygon bad{{IntVec{0, 0}, IntVec{1, 1}}};
  EXPECT_THROW(bad.lattice_points(), InvalidArgument);
}

TEST(TransformBox, IdentityKeepsBox) {
  IntBox box = IntBox::from_upper_bounds({4, 6});
  EXPECT_EQ(transformed_point_count(box, IntMat::identity(2)), 24);
}

TEST(TransformBox, UnimodularPreservesCount) {
  IntBox box = IntBox::from_upper_bounds({5, 7});
  for (IntMat t : {IntMat{{1, 1}, {0, 1}}, IntMat{{2, 3}, {1, 1}},
                   IntMat{{0, 1}, {1, 0}}, IntMat{{2, -3}, {-1, 2}}}) {
    EXPECT_EQ(transformed_point_count(box, t), box.volume()) << t.str();
  }
}

TEST(TransformBox, MatchesScannerOnRandomTransforms) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<Int> bnd(2, 7);
  for (int iter = 0; iter < 30; ++iter) {
    IntBox box = IntBox::from_upper_bounds({bnd(rng), bnd(rng)});
    // Random unimodular via elementary composition.
    IntMat t = IntMat::identity(2);
    std::uniform_int_distribution<Int> f(-2, 2);
    for (int k = 0; k < 4; ++k) {
      t = skew(2, k % 2, (k + 1) % 2, f(rng)) * t;
      if (k == 1) t = interchange(2, 0, 1) * t;
    }
    ASSERT_TRUE(t.is_unimodular());
    // Scanner count of the image == Pick count.
    ConstraintSystem sys(2);
    IntMat tinv = t.inverse_unimodular();
    for (size_t k = 0; k < 2; ++k) {
      sys.add_range(AffineExpr(tinv.row(k), 0), box.range(k).lo, box.range(k).hi);
    }
    EXPECT_EQ(transformed_point_count(box, t), count_points(sys)) << t.str();
  }
}

TEST(TransformBox, RejectsBadInputs) {
  IntBox box = IntBox::from_upper_bounds({3, 3});
  EXPECT_THROW(transformed_point_count(box, IntMat{{1, 2}, {2, 4}}), InvalidArgument);
  EXPECT_THROW(transformed_point_count(box, IntMat{{2, 0}, {0, 1}}), InvalidArgument);
  EXPECT_THROW(transform_box(IntBox::from_upper_bounds({2, 2, 2}), IntMat::identity(2)),
               InvalidArgument);
}

TEST(Polygon, PickAgainstBruteForceRandomTriangles) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<Int> c(-6, 6);
  int checked = 0;
  for (int iter = 0; iter < 60 && checked < 40; ++iter) {
    IntVec a{c(rng), c(rng)}, b{c(rng), c(rng)}, d{c(rng), c(rng)};
    LatticePolygon tri{{a, b, d}};
    if (tri.twice_signed_area() == 0) continue;  // degenerate
    ++checked;
    // Brute force: test every lattice point in the bounding box.
    Int count = 0;
    Int lox = std::min({a[0], b[0], d[0]}), hix = std::max({a[0], b[0], d[0]});
    Int loy = std::min({a[1], b[1], d[1]}), hiy = std::max({a[1], b[1], d[1]});
    auto side = [](const IntVec& p, const IntVec& q, Int x, Int y) {
      return (q[0] - p[0]) * (y - p[1]) - (q[1] - p[1]) * (x - p[0]);
    };
    Int orient = tri.twice_signed_area() > 0 ? 1 : -1;
    for (Int x = lox; x <= hix; ++x) {
      for (Int y = loy; y <= hiy; ++y) {
        Int s1 = orient * side(a, b, x, y);
        Int s2 = orient * side(b, d, x, y);
        Int s3 = orient * side(d, a, x, y);
        if (s1 >= 0 && s2 >= 0 && s3 >= 0) ++count;
      }
    }
    EXPECT_EQ(tri.lattice_points(), count)
        << a.str() << b.str() << d.str();
  }
  EXPECT_GE(checked, 30);
}

}  // namespace
}  // namespace lmre
