#include <gtest/gtest.h>

#include "alloc/scratchpad.h"
#include "analysis/distinct.h"
#include "codes/extra_kernels.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(Extra, SuiteValidatesAndSimulates) {
  for (auto& [name, nest] : codes::extra_suite()) {
    TraceStats s = simulate(nest);
    EXPECT_GT(s.iterations, 0) << name;
    EXPECT_GT(s.distinct_total, 0) << name;
  }
}

TEST(Extra, FirWindowIsTapNeighborhood) {
  // x is re-read across taps and across neighboring outputs: the window is
  // a few taps wide, far below the declared sample buffers.
  LoopNest nest = codes::kernel_fir(64, 8);
  TraceStats s = simulate(nest);
  EXPECT_LE(s.mws_total, 3 * 8 + 4);
  EXPECT_GE(s.mws_total, 8);
  EXPECT_LT(s.mws_total, nest.default_memory() / 4);
}

TEST(Extra, IirCarriesTwoFeedbackValues) {
  LoopNest nest = codes::kernel_iir(64);
  TraceStats s = simulate(nest);
  // y[i-1] and y[i-2] are the only cross-iteration state.
  EXPECT_EQ(s.mws_total, 2);
}

TEST(Extra, IirDependencesIncludeRecurrence) {
  auto info = analyze_dependences(codes::kernel_iir(32));
  bool has_flow_1 = false, has_flow_2 = false;
  for (const auto& d : info.deps) {
    if (d.kind == DepKind::kFlow && d.distance == (IntVec{1})) has_flow_1 = true;
    if (d.kind == DepKind::kFlow && d.distance == (IntVec{2})) has_flow_2 = true;
  }
  EXPECT_TRUE(has_flow_1);
  EXPECT_TRUE(has_flow_2);
}

TEST(Extra, Conv2dWindowIsKernelBand) {
  LoopNest nest = codes::kernel_conv2d(8, 3);
  TraceStats s = simulate(nest);
  // The image band live at once is ~kernel_rows * image_width plus the
  // small kernel and one accumulator.
  EXPECT_LE(s.mws_total, 3 * (8 + 3) + 9 + 4);
  EXPECT_GE(s.mws_total, 2 * 8);
}

TEST(Extra, TransposeMmStillOperandBound) {
  LoopNest nest = codes::kernel_transpose_mm(8);
  TraceStats s = simulate(nest);
  // One full operand stays live, as with plain matmult.
  EXPECT_GE(s.mws_total, 8 * 8);
  OptimizeResult res = optimize_locality(nest);
  EXPECT_EQ(simulate_transformed(nest, res.transform).mws_total, s.mws_total);
}

TEST(Extra, JacobiTwoArraysKeepTwoRows) {
  LoopNest nest = codes::kernel_jacobi(16);
  TraceStats s = simulate(nest);
  EXPECT_GE(s.mws_total, 2 * 16 - 2);
  EXPECT_LE(s.mws_total, 2 * 16 + 4);
}

TEST(Extra, RowSumKeepsOneAccumulator) {
  LoopNest nest = codes::kernel_row_sum(16);
  TraceStats s = simulate(nest);
  // M elements are touched once (window 0); s[i] is live across its row.
  EXPECT_LE(s.mws_total, 2);
}

TEST(Extra, DistinctEstimatesTrackOracle) {
  for (auto& [name, nest] : codes::extra_suite()) {
    Int est = estimate_distinct_total(nest);
    Int exact = simulate(nest).distinct_total;
    EXPECT_GE(est, exact) << name;           // estimates never undercount here
    EXPECT_LE(est, exact + exact / 4 + 8) << name;  // and stay within ~25%
  }
}

TEST(Extra, AllocationAchievesBoundEverywhere) {
  for (auto& [name, nest] : codes::extra_suite()) {
    Allocation a = allocate_scratchpad(nest);
    EXPECT_TRUE(a.verified) << name;
    EXPECT_EQ(a.slots, simulate(nest).mws_total) << name;
  }
}

TEST(Extra, OptimizerNeverHurts) {
  for (auto& [name, nest] : codes::extra_suite()) {
    OptimizeResult res = optimize_locality(nest);
    EXPECT_LE(simulate_transformed(nest, res.transform).mws_total,
              simulate(nest).mws_total)
        << name;
  }
}

}  // namespace
}  // namespace lmre
