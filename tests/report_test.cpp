#include <gtest/gtest.h>

#include "analysis/report.h"
#include "codes/examples.h"
#include "codes/kernels.h"

namespace lmre {
namespace {

TEST(Report, Example8EndToEnd) {
  MemoryReport rep = analyze_memory(codes::example_8());
  EXPECT_EQ(rep.default_memory, 106);
  EXPECT_EQ(rep.distinct_estimate_total, 94);
  ASSERT_TRUE(rep.distinct_exact_total.has_value());
  EXPECT_EQ(*rep.distinct_exact_total, 94);
  ASSERT_TRUE(rep.mws_estimate_total.has_value());
  EXPECT_EQ(*rep.mws_estimate_total, 50);
  ASSERT_TRUE(rep.mws_exact_total.has_value());
  EXPECT_EQ(*rep.mws_exact_total, 44);
  ASSERT_EQ(rep.arrays.size(), 1u);
  EXPECT_EQ(rep.arrays[0].name, "X");
}

TEST(Report, WithoutOracleSkipsExactColumns) {
  MemoryReport rep = analyze_memory(codes::example_8(), /*with_oracle=*/false);
  EXPECT_FALSE(rep.distinct_exact_total.has_value());
  EXPECT_FALSE(rep.mws_exact_total.has_value());
  EXPECT_FALSE(rep.arrays[0].distinct_exact.has_value());
  EXPECT_EQ(rep.distinct_estimate_total, 94);
}

TEST(Report, NonUniformArrayGetsBounds) {
  MemoryReport rep = analyze_memory(codes::example_6());
  ASSERT_EQ(rep.arrays.size(), 1u);
  EXPECT_FALSE(rep.arrays[0].distinct_estimate.has_value());
  ASSERT_TRUE(rep.arrays[0].distinct_upper.has_value());
  EXPECT_EQ(*rep.arrays[0].distinct_upper, 191);
  EXPECT_EQ(*rep.arrays[0].distinct_lower, 179);
  EXPECT_EQ(rep.distinct_estimate_total, 191);
}

TEST(Report, MultipleArrays) {
  MemoryReport rep = analyze_memory(codes::kernel_matmult(8));
  EXPECT_EQ(rep.arrays.size(), 3u);
  Int sum = 0;
  for (const auto& a : rep.arrays) {
    ASSERT_TRUE(a.distinct_exact.has_value());
    sum += *a.distinct_exact;
    EXPECT_EQ(a.declared, 64);
    EXPECT_EQ(*a.distinct_exact, 64);
  }
  EXPECT_EQ(rep.distinct_exact_total, sum);
}

TEST(Report, RenderContainsHeaderAndTotal) {
  std::string s = render(analyze_memory(codes::example_8()));
  EXPECT_NE(s.find("array"), std::string::npos);
  EXPECT_NE(s.find("MWS est"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_NE(s.find("X"), std::string::npos);
}

TEST(Report, RenderShowsBoundsForNonUniform) {
  std::string s = render(analyze_memory(codes::example_6()));
  EXPECT_NE(s.find("[179, 191]"), std::string::npos);
}

TEST(Report, MwsTotalAtLeastMaxOfArrays) {
  MemoryReport rep = analyze_memory(codes::kernel_matmult(8));
  ASSERT_TRUE(rep.mws_exact_total.has_value());
  for (const auto& a : rep.arrays) {
    ASSERT_TRUE(a.mws_exact.has_value());
    EXPECT_GE(*rep.mws_exact_total, *a.mws_exact);
  }
}

}  // namespace
}  // namespace lmre
