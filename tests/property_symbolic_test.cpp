// Differential property suite for the closed-form symbolic analysis path:
// every formula the engine emits (per-array distinct / reuse / window,
// per-dependence reuse volumes, totals) must evaluate EXACTLY equal to the
// trace oracle at every concrete bound instantiation -- including
// degenerate trip-1 ranges and |d| >= N clamping edges -- on random
// uniform nests, the paper kernels, the shipped .loop corpus, and
// signed-permutation transform plans.  Declines are also checked: the
// engine must emit a diagnostic, never a wrong formula.  Fixed seeds so
// failures reproduce.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/reuse.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "program/program.h"
#include "symbolic/derive.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0x5E0D1FF + seed); }

// Same structure, different bounds: the derivation is bound-independent,
// so one SymbolicResult must predict every rebind exactly.
LoopNest rebind(const LoopNest& nest, const std::vector<Int>& trips) {
  return LoopNest(nest.loop_vars(), IntBox::from_upper_bounds(trips),
                  nest.arrays(), nest.statements());
}

Int oracle_value(const std::map<ArrayId, Int>& m, ArrayId id) {
  auto it = m.find(id);
  return it == m.end() ? 0 : it->second;
}

// Asserts every formula in `sym` (derived from `base`) against the oracle
// run of `inst` (a rebind of `base` with trip counts `trips`).
void check_against_oracle(const SymbolicResult& sym, const LoopNest& base,
                          const std::vector<Int>& trips, int threads,
                          const std::string& what) {
  SCOPED_TRACE(what);
  LoopNest inst = rebind(base, trips);
  TraceStats st = sym.plan ? simulate_transformed(inst, *sym.plan)
                           : simulate(inst, threads);
  for (const SymbolicArrayResult& a : sym.arrays) {
    SCOPED_TRACE("array " + a.name);
    if (a.distinct) {
      EXPECT_EQ(a.distinct->eval(trips), oracle_value(st.distinct, a.id));
    }
    if (a.reuse) {
      EXPECT_EQ(a.reuse->eval(trips), oracle_value(st.reuse, a.id));
    }
    if (a.window) {
      EXPECT_EQ(a.window->eval(trips), oracle_value(st.mws, a.id));
    }
    IntBox box = IntBox::from_upper_bounds(trips);
    for (const SymbolicDependence& d : a.dependences) {
      EXPECT_EQ(d.volume.eval(trips), reuse_volume(d.distance, box))
          << d.distance.str();
    }
  }
  if (sym.distinct_total) {
    EXPECT_EQ(sym.distinct_total->eval(trips), st.distinct_total);
  }
  if (sym.reuse_total) {
    EXPECT_EQ(sym.reuse_total->eval(trips), st.reuse_total);
  }
  if (sym.window_total) {
    EXPECT_EQ(sym.window_total->eval(trips), st.mws_total);
  }
}

// Bound instantiation grid for a base nest: the nest's own trips plus
// degenerate, clamping-edge, and mixed variants (>= 5 per nest).
std::vector<std::vector<Int>> bound_grid(const LoopNest& nest, std::mt19937& rng) {
  const size_t n = nest.depth();
  std::vector<Int> own;
  for (size_t k = 0; k < n; ++k) own.push_back(nest.bounds().range(k).trip_count());
  std::vector<std::vector<Int>> grid;
  grid.push_back(own);
  grid.push_back(std::vector<Int>(n, 1));  // fully degenerate
  grid.push_back(std::vector<Int>(n, 2));  // at/below typical |d|
  grid.push_back(std::vector<Int>(n, 5));
  std::uniform_int_distribution<Int> b(1, 8);
  for (int v = 0; v < 2; ++v) {
    std::vector<Int> mixed;
    for (size_t k = 0; k < n; ++k) mixed.push_back(b(rng));
    mixed[v % n] = 1;  // keep one axis degenerate
    grid.push_back(mixed);
  }
  return grid;
}

void check_all_bounds(const LoopNest& base, std::mt19937& rng, int threads,
                      const std::string& what) {
  SymbolicResult sym = symbolic_analysis(base);
  // Either something was derived or the decline diagnostic is present.
  if (!sym.usable()) {
    bool has_decline = false;
    for (const Diagnostic& d : sym.diagnostics) {
      has_decline = has_decline || d.id == "LMRE-E017";
    }
    EXPECT_TRUE(has_decline) << what << ": unusable result without LMRE-E017";
  }
  for (const std::vector<Int>& trips : bound_grid(base, rng)) {
    std::ostringstream os;
    os << what << " @";
    for (Int t : trips) os << ' ' << t;
    check_against_oracle(sym, base, trips, threads, os.str());
  }
}

std::vector<IntMat> signed_permutations(size_t depth) {
  if (depth == 2) {
    return {IntMat{{0, 1}, {1, 0}}, IntMat{{-1, 0}, {0, 1}},
            IntMat{{0, -1}, {1, 0}}};
  }
  return {IntMat{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}},
          IntMat{{0, 0, 1}, {0, 1, 0}, {-1, 0, 0}},
          IntMat{{-1, 0, 0}, {0, 0, -1}, {0, 1, 0}}};
}

void check_transformed(const LoopNest& base, std::mt19937& rng, int threads,
                       const std::string& what) {
  for (const IntMat& t : signed_permutations(base.depth())) {
    SymbolicResult sym = symbolic_analysis_transformed(base, t);
    for (const std::vector<Int>& trips : bound_grid(base, rng)) {
      std::ostringstream os;
      os << what << " plan @";
      for (Int v : trips) os << ' ' << v;
      check_against_oracle(sym, base, trips, threads, os.str());
    }
  }
}

// ---- random nest generation ------------------------------------------------

IntMat random_unimodular(size_t n, std::mt19937& rng) {
  std::uniform_int_distribution<Int> coef(-2, 2);
  std::uniform_int_distribution<size_t> pick(0, n - 1);
  IntMat m = IntMat::identity(n);
  for (int ops = 0; ops < 2; ++ops) {
    size_t r = pick(rng), s = pick(rng);
    if (r == s) continue;
    for (size_t c = 0; c < n; ++c) {
      m(r, c) = checked_add(m(r, c), checked_mul(coef(rng), m(s, c)));
    }
  }
  return m;
}

LoopNest random_nest(int seed) {
  std::mt19937 rng = rng_for(seed);
  const size_t n = 2 + seed % 2;
  std::uniform_int_distribution<Int> bnd(3, 8), off(-2, 2), kcoef(-3, 3);
  std::uniform_int_distribution<int> dice(0, 3), refs_d(1, 3);

  NestBuilder b;
  const char* vars[] = {"i", "j", "k"};
  for (size_t d = 0; d < n; ++d) b.loop(vars[d], 1, bnd(rng));

  const int arrays = 1 + seed % 2;
  for (int a = 0; a < arrays; ++a) {
    std::string name(1, static_cast<char>('A' + a));
    const int regime = dice(rng);
    if (regime <= 1) {
      // Injective: identity (regime 0) or a random unimodular plan.
      IntMat acc = regime == 0 ? IntMat::identity(n) : random_unimodular(n, rng);
      ArrayId id = b.array(name, std::vector<Int>(n, 64));
      StatementBuilder st = b.statement();
      const int r = refs_d(rng);
      for (int i = 0; i < r; ++i) {
        IntVec o(n);
        for (size_t k = 0; k < n; ++k) o[k] = off(rng);
        if (i == 0) {
          st.write(id, acc, o);
        } else {
          st.read(id, acc, o);
        }
      }
    } else if (regime == 2) {
      // One-dimensional kernel, single reference (Section 3.2 shape).
      IntMat acc;
      if (n == 2) {
        Int x = kcoef(rng), y = kcoef(rng);
        if (x == 0 && y == 0) x = 1;
        acc = IntMat{{x, y}};
        ArrayId id = b.array(name, {512});
        b.statement().write(id, acc, IntVec{0});
      } else {
        acc = IntMat{{1, 0, kcoef(rng)}, {0, 1, kcoef(rng)}};
        ArrayId id = b.array(name, {64, 64});
        IntVec o(2);
        o[0] = off(rng);
        b.statement().write(id, acc, o);
      }
    } else {
      // Taller-than-deep injective access (d > n).
      IntMat acc(n + 1, n);
      for (size_t k = 0; k < n; ++k) acc(k, k) = 1;
      for (size_t c = 0; c < n; ++c) acc(n, c) = off(rng);
      ArrayId id = b.array(name, std::vector<Int>(n + 1, 64));
      StatementBuilder st = b.statement();
      IntVec o1(n + 1), o2(n + 1);
      for (size_t k = 0; k <= n; ++k) o2[k] = off(rng);
      st.write(id, acc, o1);
      if (seed % 3 == 0) st.read(id, acc, o2);
    }
  }
  return b.build();
}

// ---- suites ----------------------------------------------------------------

constexpr int kRandomNests = 300;

void random_differential(int threads) {
  int derived = 0;
  for (int seed = 0; seed < kRandomNests; ++seed) {
    LoopNest nest = random_nest(seed);
    std::mt19937 rng = rng_for(1000 + seed);
    check_all_bounds(nest, rng, threads, "seed " + std::to_string(seed));
    if (symbolic_analysis(nest).usable()) ++derived;
    if (seed % 4 == 0) {
      check_transformed(nest, rng, threads, "seed " + std::to_string(seed));
    }
  }
  // The generator must actually exercise the engine, not the decline path.
  EXPECT_GT(derived, kRandomNests / 2);
}

TEST(PropertySymbolic, RandomNestsSerial) { random_differential(1); }

TEST(PropertySymbolic, RandomNestsParallel) { random_differential(4); }

TEST(PropertySymbolic, PaperKernels) {
  std::vector<std::pair<std::string, LoopNest>> kernels = {
      {"example_1a", codes::example_1a()}, {"example_1b", codes::example_1b()},
      {"example_2", codes::example_2(10, 10)}, {"example_3", codes::example_3()},
      {"example_4", codes::example_4()},   {"example_5", codes::example_5()},
      {"example_7", codes::example_7()},   {"example_8", codes::example_8()},
      {"matmult", codes::kernel_matmult(8)}};
  for (auto& [name, nest] : kernels) {
    std::mt19937 rng = rng_for(77);
    check_all_bounds(nest, rng, 1, name);
    if (nest.depth() <= 3) check_transformed(nest, rng, 1, name);
  }
}

// Every derived formula for Example 10 (= example_5) and the clamping edge
// cases the paper's formulas miss.
TEST(PropertySymbolic, Example10ClampingEdges) {
  LoopNest nest = codes::example_5();  // reuse vector (1, 3, -3)
  SymbolicResult sym = symbolic_analysis(nest);
  ASSERT_TRUE(sym.usable());
  // |d2| = 3 >= N2 and |d3| = 3 >= N3 edges, plus trip-1 axes.
  for (std::vector<Int> trips : std::vector<std::vector<Int>>{
           {10, 20, 30}, {10, 3, 30}, {10, 2, 30}, {10, 20, 3}, {10, 20, 2},
           {1, 20, 30}, {2, 3, 3}, {1, 1, 1}, {4, 4, 4}}) {
    check_against_oracle(sym, nest, trips, 1, "ex10 edge");
  }
}

TEST(PropertySymbolic, LoopCorpus) {
  std::string dir;
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (std::filesystem::exists(base)) {
      dir = base;
      break;
    }
  }
  ASSERT_FALSE(dir.empty()) << "examples/loops not found";
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    Program program = parse_program(ss.str(), nullptr);
    for (size_t p = 0; p < program.phase_count(); ++p) {
      const LoopNest& nest = program.phase_nest(p);
      if (nest.iteration_count() > 100000) continue;
      std::mt19937 rng = rng_for(7 + static_cast<int>(p));
      check_all_bounds(nest, rng, 1, entry.path().filename().string());
    }
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace lmre
