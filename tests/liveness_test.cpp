#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/liveness.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "transform/minimizer.h"

namespace lmre {
namespace {

TEST(Liveness, ChainCarriesOneValue) {
  // A[i] = A[i-1]: besides the upward-exposed A[0], exactly one freshly
  // written value is ever awaiting its single read.
  NestBuilder b;
  b.loop("i", 1, 6);
  ArrayId a = b.array("A", {7});
  b.statement().write(a, {{1}}, {0}).read(a, {{1}}, {-1});
  LivenessStats s = min_memory_liveness(b.build());
  EXPECT_EQ(s.input_elements, 1);  // A[0] read before any write
  // At any time: the just-written value + possibly the input at the start.
  EXPECT_LE(s.max_live, 2);
  EXPECT_GE(s.max_live, 1);
}

TEST(Liveness, DeadWritesNeedNoMemoryBeyondTheInstant) {
  // Values written but never read are dead: zero live values.
  NestBuilder b;
  b.loop("i", 1, 8);
  ArrayId a = b.array("A", {8});
  b.statement().write(a, {{1}}, {0});
  LivenessStats s = min_memory_liveness(b.build());
  EXPECT_EQ(s.max_live, 0);
  EXPECT_EQ(s.input_elements, 0);
}

TEST(Liveness, ReadOnlyInputsLiveFromTheStart) {
  // B[j] read on every row: all 4 inputs are live from ordinal 0.
  NestBuilder b;
  b.loop("i", 1, 3).loop("j", 1, 4);
  ArrayId arr = b.array("B", {4});
  b.statement().read(arr, {{0, 1}}, {0});
  LivenessStats s = min_memory_liveness(b.build());
  EXPECT_EQ(s.input_elements, 4);
  EXPECT_EQ(s.max_live, 4);
}

TEST(Liveness, AccumulationReadsOldValue) {
  // out[i] = out[i] + in[i]: every out element's initial value is consumed,
  // so it is upward-exposed input; the written value is never re-read.
  NestBuilder b;
  b.loop("i", 1, 5);
  ArrayId out = b.array("out", {5});
  ArrayId in = b.array("in", {5});
  b.statement()
      .write(out, {{1}}, {0})
      .read(out, {{1}}, {0})
      .read(in, {{1}}, {0});
  LivenessStats s = min_memory_liveness(b.build());
  EXPECT_EQ(s.input_elements, 10);  // 5 out initials + 5 in elements
}

TEST(Liveness, WindowVsLivenessDiffer) {
  // Example 8: the reference window (44) counts elements whose LOCATION is
  // re-touched; value liveness counts carried values and preloaded inputs.
  LoopNest nest = codes::example_8();
  LivenessStats live = min_memory_liveness(nest);
  TraceStats window = simulate(nest);
  EXPECT_GT(live.max_live, 0);
  EXPECT_GT(window.mws_total, 0);
  // The two metrics measure different things; both are far below declared.
  EXPECT_LT(live.max_live, nest.default_memory());
  EXPECT_LT(window.mws_total, nest.default_memory());
}

TEST(Liveness, TransformationReducesLiveValuesToo) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  LivenessStats before = min_memory_liveness(nest);
  LivenessStats after = min_memory_liveness(nest, &res->transform);
  EXPECT_LT(after.max_live, before.max_live);
}

TEST(Liveness, PerArrayPeaks) {
  LoopNest nest = codes::kernel_matmult(4);
  LivenessStats s = min_memory_liveness(nest);
  // All three arrays hold live data; B (read-only, fully reused) dominates.
  ASSERT_EQ(s.per_array.size(), 3u);
  EXPECT_EQ(s.per_array.at(2), 16);  // B is fully live
  EXPECT_LE(s.per_array.at(0), 16);  // C accumulators
}

TEST(Liveness, MatchesWindowOnPureProducerConsumer) {
  // Single-assignment then single-read: location window and value liveness
  // coincide up to the inclusive-endpoint convention.
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 6);
  ArrayId a = b.array("A", {10, 6});
  b.statement().write(a, {{1, 0}, {0, 1}}, {0, 0});
  b.statement().read(a, {{1, 0}, {0, 1}}, {-1, 0});
  LoopNest nest = b.build();
  LivenessStats live = min_memory_liveness(nest);
  TraceStats window = simulate(nest);
  // Liveness also carries the upward-exposed boundary inputs A[0][*], so it
  // sits slightly above the location window.
  EXPECT_GE(live.max_live, window.mws_total);
  EXPECT_LE(live.max_live, window.mws_total + 8);
}

}  // namespace
}  // namespace lmre
