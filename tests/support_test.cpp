#include <gtest/gtest.h>

#include <limits>

#include "support/checked.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/text.h"

namespace lmre {
namespace {

TEST(Checked, AddBasics) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
  EXPECT_EQ(checked_add(0, 0), 0);
}

TEST(Checked, AddOverflowThrows) {
  Int big = std::numeric_limits<Int>::max();
  EXPECT_THROW(checked_add(big, 1), OverflowError);
  EXPECT_THROW(checked_add(std::numeric_limits<Int>::min(), -1), OverflowError);
  EXPECT_EQ(checked_add(big, 0), big);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_EQ(checked_sub(5, 9), -4);
  EXPECT_THROW(checked_sub(std::numeric_limits<Int>::min(), 1), OverflowError);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_EQ(checked_mul(-7, 6), -42);
  Int big = std::numeric_limits<Int>::max();
  EXPECT_THROW(checked_mul(big, 2), OverflowError);
  EXPECT_EQ(checked_mul(big, 1), big);
}

TEST(Checked, NegAndAbs) {
  EXPECT_EQ(checked_neg(5), -5);
  EXPECT_EQ(checked_abs(-5), 5);
  EXPECT_EQ(checked_abs(0), 0);
  EXPECT_THROW(checked_neg(std::numeric_limits<Int>::min()), OverflowError);
  EXPECT_THROW(checked_abs(std::numeric_limits<Int>::min()), OverflowError);
}

TEST(Checked, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(13, 7), 1);
}

TEST(Checked, Lcm) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 5), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
}

TEST(Checked, ExtendedGcdIdentity) {
  for (Int a : {3, -3, 0, 7, 25, -40}) {
    for (Int b : {0, 2, 5, -9, 13}) {
      if (a == 0 && b == 0) continue;
      Int x, y;
      Int g = extended_gcd(a, b, x, y);
      EXPECT_EQ(g, gcd(a, b));
      EXPECT_EQ(a * x + b * y, g) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Checked, FloorCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_THROW(floor_div(1, 0), InvalidArgument);
  EXPECT_THROW(ceil_div(1, 0), InvalidArgument);
}

TEST(Checked, ModFloorAlwaysNonNegative) {
  for (Int a = -10; a <= 10; ++a) {
    for (Int b : {2, 3, -3, 7}) {
      Int m = mod_floor(a, b);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, checked_abs(b));
      EXPECT_EQ((a - m) % b, 0);  // m is a residue of a mod |b|
    }
  }
}

TEST(Checked, Sign) {
  EXPECT_EQ(sign(-3), -1);
  EXPECT_EQ(sign(0), 0);
  EXPECT_EQ(sign(9), 1);
}

TEST(Error, RequireAndEnsure) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), InvalidArgument);
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_THROW(ensure(false, "bug"), InternalError);
}

TEST(Text, Join) {
  std::vector<std::string> v{"a", "b", "c"};
  EXPECT_EQ(join(v, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

TEST(Text, Pad) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Text, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(5152), "5,152");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-5152), "-5,152");
}

TEST(Text, Percent) {
  EXPECT_EQ(percent(0.819), "81.9%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(Text, TableRendersAligned) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "22"});
  std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Text, TableRejectsMismatchedRows) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), InvalidArgument);
}

TEST(Cli, ParsesFlagsInAllForms) {
  Cli cli;
  cli.flag_int("n", 5, "count");
  cli.flag_bool("verbose", "talk more");
  cli.flag_string("name", "x", "label");
  const char* argv[] = {"prog", "--n=7", "--verbose", "--name", "hello"};
  ASSERT_TRUE(cli.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_string("name"), "hello");
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.flag_int("n", 5, "count");
  cli.flag_bool("verbose", "talk");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("n"), 5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  cli.flag_int("n", 5, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(argv)), InvalidArgument);
}

TEST(Cli, WrongTypeAccessThrows) {
  Cli cli;
  cli.flag_int("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_THROW(cli.get_bool("n"), InvalidArgument);
}

}  // namespace
}  // namespace lmre
