#include <gtest/gtest.h>

#include "polyhedra/affine.h"
#include "polyhedra/constraint.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(AffineExpr, EvalAndArithmetic) {
  AffineExpr e(IntVec{2, -3}, 4);  // 2x - 3y + 4
  EXPECT_EQ(e.eval(IntVec{1, 1}), 3);
  EXPECT_EQ(e.eval(IntVec{5, 2}), 8);
  AffineExpr f = AffineExpr::variable(2, 0) + AffineExpr::variable(2, 1);
  EXPECT_EQ((e + f).eval(IntVec{1, 1}), 5);
  EXPECT_EQ((e - f).eval(IntVec{1, 1}), 1);
  EXPECT_EQ((-e).eval(IntVec{1, 1}), -3);
  EXPECT_EQ((e * 2).eval(IntVec{1, 1}), 6);
  EXPECT_EQ((e + 10).constant(), 14);
  EXPECT_EQ((e - 10).constant(), -6);
}

TEST(AffineExpr, Builders) {
  AffineExpr c = AffineExpr::constant_expr(3, 7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.eval(IntVec{9, 9, 9}), 7);
  AffineExpr v = AffineExpr::variable(3, 2);
  EXPECT_EQ(v.eval(IntVec{4, 5, 6}), 6);
  EXPECT_THROW(AffineExpr::variable(2, 2), InvalidArgument);
}

TEST(AffineExpr, StrRendering) {
  EXPECT_EQ(AffineExpr(IntVec{2, -3}, 4).str({"i", "j"}), "2*i - 3*j + 4");
  EXPECT_EQ(AffineExpr(IntVec{1, 0}, 0).str({"i", "j"}), "i");
  EXPECT_EQ(AffineExpr(IntVec{-1, 1}, 0).str({"i", "j"}), "-i + j");
  EXPECT_EQ(AffineExpr(IntVec{0, 0}, -5).str(), "-5");
  EXPECT_EQ(AffineExpr(IntVec{0, 0}, 0).str(), "0");
}

TEST(Constraint, NormalizationDividesByContent) {
  Constraint c{AffineExpr(IntVec{2, 4}, 7)};
  Constraint n = c.normalized();
  EXPECT_EQ(n.expr.coeffs(), (IntVec{1, 2}));
  // floor(7/2) = 3: sound (and tightening) for integer points.
  EXPECT_EQ(n.expr.constant(), 3);
}

TEST(Constraint, SatisfiedBy) {
  Constraint c{AffineExpr(IntVec{1, -1}, 0)};  // x >= y
  EXPECT_TRUE(c.satisfied_by(IntVec{3, 2}));
  EXPECT_TRUE(c.satisfied_by(IntVec{2, 2}));
  EXPECT_FALSE(c.satisfied_by(IntVec{1, 2}));
}

TEST(ConstraintSystem, AddDedupesAndTightens) {
  ConstraintSystem sys(2);
  sys.add(AffineExpr(IntVec{1, 0}, 5));
  sys.add(AffineExpr(IntVec{1, 0}, 3));  // tighter
  sys.add(AffineExpr(IntVec{1, 0}, 9));  // weaker: dropped
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.constraints()[0].expr.constant(), 3);
}

TEST(ConstraintSystem, RangeAndEquality) {
  ConstraintSystem sys(1);
  sys.add_range(AffineExpr::variable(1, 0), 2, 5);
  EXPECT_TRUE(sys.contains(IntVec{2}));
  EXPECT_TRUE(sys.contains(IntVec{5}));
  EXPECT_FALSE(sys.contains(IntVec{1}));
  EXPECT_FALSE(sys.contains(IntVec{6}));

  ConstraintSystem eq(1);
  eq.add_equality(AffineExpr::variable(1, 0), 3);
  EXPECT_TRUE(eq.contains(IntVec{3}));
  EXPECT_FALSE(eq.contains(IntVec{4}));
}

TEST(ConstraintSystem, TriviallyEmpty) {
  ConstraintSystem sys(1);
  sys.add(AffineExpr::constant_expr(1, -1));
  EXPECT_TRUE(sys.trivially_empty());
  ConstraintSystem ok(1);
  ok.add(AffineExpr::constant_expr(1, 0));
  EXPECT_FALSE(ok.trivially_empty());
}

TEST(ConstraintSystem, DimsMismatchThrows) {
  ConstraintSystem sys(2);
  EXPECT_THROW(sys.add(AffineExpr::variable(3, 0)), InvalidArgument);
}

}  // namespace
}  // namespace lmre
