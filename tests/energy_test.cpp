#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "energy/model.h"
#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(MemoryModel, MonotoneInSize) {
  MemoryModel m;
  double prev_e = 0, prev_t = 0, prev_a = 0;
  for (Int s : {1, 4, 16, 64, 256, 1024, 4096}) {
    double e = m.energy_per_access(s);
    double t = m.latency(s);
    double a = m.area(s);
    EXPECT_GT(e, prev_e);
    EXPECT_GT(t, prev_t);
    EXPECT_GT(a, prev_a);
    prev_e = e;
    prev_t = t;
    prev_a = a;
  }
}

TEST(MemoryModel, SqrtScaling) {
  MemoryModel m;
  m.alpha = 1.0;
  // E(4s) - 1 == 2 * (E(s) - 1) under sqrt scaling.
  double e1 = m.energy_per_access(100) - 1.0;
  double e4 = m.energy_per_access(400) - 1.0;
  EXPECT_NEAR(e4, 2.0 * e1, 1e-9);
}

TEST(MemoryModel, RejectsNonPositiveSize) {
  MemoryModel m;
  EXPECT_THROW(m.energy_per_access(0), InvalidArgument);
  EXPECT_THROW(m.latency(-1), InvalidArgument);
  EXPECT_THROW(m.area(0), InvalidArgument);
}

TEST(Sizing, WindowSizingSavesEnergy) {
  LoopNest nest = codes::kernel_two_point(64);
  Int window = simulate(nest).mws_total;  // 64 vs declared 4096
  SizingComparison cmp = compare_sizing(nest, window);
  EXPECT_GT(cmp.energy_saving(), 0.5);  // sqrt(4096)=64 vs sqrt(64)=8
  EXPECT_LT(cmp.area_ratio, 0.02);
  EXPECT_LT(cmp.latency_ratio, 1.0);
}

TEST(Sizing, AccountsAllAccesses) {
  LoopNest nest = codes::example_8();
  SizingComparison cmp = compare_sizing(nest, 44);
  EXPECT_EQ(cmp.accesses, 250 * 2);
  EXPECT_EQ(cmp.declared_cells, 106);
  EXPECT_EQ(cmp.window_cells, 44);
}

TEST(Sizing, DegenerateWindowClampedToOne) {
  LoopNest nest = codes::example_8();
  SizingComparison cmp = compare_sizing(nest, 0);
  EXPECT_EQ(cmp.window_cells, 1);
  EXPECT_GT(cmp.energy_saving(), 0.0);
}

TEST(Sizing, SavingGrowsWithWindowReduction) {
  LoopNest nest = codes::kernel_matmult(16);
  SizingComparison big = compare_sizing(nest, 600);
  SizingComparison small = compare_sizing(nest, 273);
  EXPECT_GT(small.energy_saving(), big.energy_saving());
}

TEST(MemoryModel, LeakagePenalizesLargeMemories) {
  MemoryModel leaky;
  leaky.leakage = 0.001;
  MemoryModel pure;
  // Without leakage, total energy scales only with dynamic cost.
  EXPECT_DOUBLE_EQ(pure.total_energy(64, 1000),
                   1000.0 * pure.energy_per_access(64));
  // With leakage, a big idle-prone memory costs strictly more.
  double small = leaky.total_energy(64, 1000);
  double big = leaky.total_energy(4096, 1000);
  EXPECT_GT(big / small,
            pure.total_energy(4096, 1000) / pure.total_energy(64, 1000));
}

TEST(MemoryModel, TotalEnergyRejectsNegativeAccesses) {
  MemoryModel m;
  EXPECT_THROW(m.total_energy(4, -1), InvalidArgument);
}

}  // namespace
}  // namespace lmre
