#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "transform/parallel.h"
#include "transform/wavefront.h"

namespace lmre {
namespace {

TEST(Wavefront, SorBecomesInnerParallel) {
  // Gauss-Seidel deps (1,0) and (0,1): the classic wavefront h = (1,1).
  LoopNest nest = codes::kernel_sor(12);
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->hyperplane, (IntVec{1, 1}));
  EXPECT_EQ(res->parallel_levels, 1);
  auto par = parallel_loops_after(nest, res->transform);
  EXPECT_FALSE(par[0]);  // the wavefront carries everything
  EXPECT_TRUE(par[1]);
}

TEST(Wavefront, Example8) {
  // Distances (3,-2), (2,0), (5,-2): h must satisfy 3a-2b>=1, 2a>=1,
  // 5a-2b>=1: the smallest is h=(1,0) -- already outer-carried.
  LoopNest nest = codes::example_8();
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->hyperplane, (IntVec{1, 0}));
  EXPECT_EQ(res->parallel_levels, 1);
}

TEST(Wavefront, SkewedDependenceNeedsSkewedHyperplane) {
  // Dependence (1,-2) alone: h=(1,0) gives h.d=1 -- fine; force a case
  // that needs weight > 1: deps (1,-2) and (0,1) need b>=1 and a>=2b+1.
  NestBuilder b;
  b.loop("i", 1, 8).loop("j", 1, 8);
  ArrayId a = b.array("A", {9, 11});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 2})    // dep (1,-2)
      .read(a, {{1, 0}, {0, 1}}, {0, -1});   // dep (0,1)
  LoopNest nest = b.build();
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_GE(res->hyperplane.dot(IntVec{1, -2}), 1);
  EXPECT_GE(res->hyperplane.dot(IntVec{0, 1}), 1);
  EXPECT_EQ(res->parallel_levels, 1);
}

TEST(Wavefront, ReadOnlyNestHasNothingToDo) {
  EXPECT_FALSE(wavefront_transform(codes::example_7()).has_value());
}

TEST(Wavefront, PreservesSemantics) {
  LoopNest nest = codes::kernel_sor(10);
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  TraceStats a = simulate(nest);
  TraceStats b = simulate_transformed(nest, res->transform);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
}

TEST(Wavefront, TradeoffAgainstWindow) {
  // The wavefront usually pays in window size for its parallelism compared
  // to the original order -- the trade-off the design space exposes.
  LoopNest nest = codes::kernel_sor(12);
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  Int before = simulate(nest).mws_total;
  Int after = simulate_transformed(nest, res->transform).mws_total;
  EXPECT_GE(after, before - 2);  // never much better; typically worse/equal
}

TEST(Wavefront, DepthThree) {
  LoopNest nest = codes::kernel_matmult(5);  // k-carried accumulation
  auto res = wavefront_transform(nest);
  ASSERT_TRUE(res.has_value());
  // Memory dep is (0,0,1): the minimal hyperplane is (0,0,1).
  EXPECT_EQ(res->hyperplane, (IntVec{0, 0, 1}));
  EXPECT_EQ(res->parallel_levels, 2);
}

}  // namespace
}  // namespace lmre
