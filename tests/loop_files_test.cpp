// The shipped .loop files must stay in sync with the builder kernels:
// parsing each file yields a nest with identical exact statistics.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/parser.h"

namespace lmre {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; the loop files live in the
// source tree.  Probe a couple of plausible roots.
std::string loops_dir() {
  for (const char* base : {"examples/loops/", "../examples/loops/",
                           "../../examples/loops/", "../../../examples/loops/"}) {
    if (!read_file(std::string(base) + "matmult.loop").empty()) return base;
  }
  return "";
}

TEST(LoopFiles, MatchBuilderKernels) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  for (auto& e : codes::figure2_suite()) {
    std::string source = read_file(dir + e.name + ".loop");
    ASSERT_FALSE(source.empty()) << e.name;
    LoopNest parsed = parse_nest(source);
    TraceStats a = simulate(parsed);
    TraceStats b = simulate(e.nest);
    EXPECT_EQ(a.distinct_total, b.distinct_total) << e.name;
    EXPECT_EQ(a.mws_total, b.mws_total) << e.name;
    EXPECT_EQ(a.total_accesses, b.total_accesses) << e.name;
    EXPECT_EQ(parsed.default_memory(), e.nest.default_memory()) << e.name;
  }
}

TEST(LoopFiles, MatchExtraSuite) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  for (auto& [name, nest] : codes::extra_suite()) {
    std::string source = read_file(dir + name + ".loop");
    ASSERT_FALSE(source.empty()) << name;
    LoopNest parsed = parse_nest(source);
    EXPECT_EQ(simulate(parsed).mws_total, simulate(nest).mws_total) << name;
    EXPECT_EQ(simulate(parsed).distinct_total, simulate(nest).distinct_total)
        << name;
  }
}

TEST(LoopFiles, Example8File) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  std::string source = read_file(dir + "example8.loop");
  ASSERT_FALSE(source.empty());
  LoopNest nest = parse_nest(source);
  EXPECT_EQ(simulate(nest).mws_total, 44);
}

TEST(LoopFiles, PipelineFileIsAProgram) {
  std::string dir = loops_dir();
  if (dir.empty()) GTEST_SKIP() << "loop files not found from test cwd";
  Program p = parse_program(read_file(dir + "pipeline.loop"));
  EXPECT_EQ(p.phase_count(), 2u);
  EXPECT_EQ(p.simulate().handoff[1], 32);
}

}  // namespace
}  // namespace lmre
