#include <gtest/gtest.h>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "transform/minimizer.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(Minimizer, Example8FindsPaperTransform) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  // The paper's optimum: first row (2,3), analytic MWS estimate 22.
  EXPECT_EQ(res->transform.row(0), (IntVec{2, 3}));
  EXPECT_EQ(res->predicted_mws, Rational(22));
  EXPECT_TRUE(res->transform.is_unimodular());
  // Exact window drops from 44 to 21 (paper: 50 est -> 21).
  EXPECT_EQ(simulate(nest).mws_total, 44);
  EXPECT_EQ(simulate_transformed(nest, res->transform).mws_total, 21);
}

TEST(Minimizer, Example8TransformIsTileable) {
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  auto deps = analyze_dependences(nest).distance_vectors(true);
  EXPECT_TRUE(is_tileable(res->transform, deps));
  EXPECT_TRUE(is_legal(res->transform, deps));
}

TEST(Minimizer, Example7CollapsesWindowToOne) {
  LoopNest nest = codes::example_7();
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->predicted_mws, Rational(1));
  EXPECT_EQ(simulate_transformed(nest, res->transform).mws_total, 1);
}

TEST(Minimizer, GreedyWStrategyAlsoSolvesExample8) {
  // The paper's "minimize |a2 a - a1 b|" shortcut: "we get very good
  // solutions in practice".
  MinimizerOptions opts;
  opts.strategy = MinimizerOptions::Strategy::kGreedyW;
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest, opts);
  ASSERT_TRUE(res.has_value());
  Int exact = simulate_transformed(nest, res->transform).mws_total;
  // The greedy objective picks row (0,-1) here (w = 2) whose true window is
  // 49: legal and no worse than the identity's 44-ish estimate of 50, but
  // far from the exhaustive optimum of 21 -- the ablation bench quantifies
  // this gap.
  EXPECT_LE(exact, 50);
  EXPECT_TRUE(res->transform.is_unimodular());
}

TEST(Minimizer, BranchAndBoundMatchesExhaustiveOptimum) {
  MinimizerOptions bb;
  bb.strategy = MinimizerOptions::Strategy::kBranchAndBound;
  for (auto nest : {codes::example_7(), codes::example_8()}) {
    auto ex = minimize_mws_2d(nest);
    auto bnb = minimize_mws_2d(nest, bb);
    ASSERT_TRUE(ex.has_value());
    ASSERT_TRUE(bnb.has_value());
    EXPECT_EQ(bnb->predicted_mws, ex->predicted_mws);
    EXPECT_EQ(simulate_transformed(nest, bnb->transform).mws_total,
              simulate_transformed(nest, ex->transform).mws_total);
  }
}

TEST(Minimizer, BranchAndBoundPrunes) {
  // On Example 7 the optimum has w == 0, so the search stops immediately
  // after the w == 0 shell: far fewer candidates than exhaustive.
  MinimizerOptions bb;
  bb.strategy = MinimizerOptions::Strategy::kBranchAndBound;
  auto ex = minimize_mws_2d(codes::example_7());
  auto bnb = minimize_mws_2d(codes::example_7(), bb);
  ASSERT_TRUE(ex.has_value() && bnb.has_value());
  EXPECT_LT(bnb->candidates, ex->candidates);
  EXPECT_EQ(bnb->predicted_mws, Rational(1));
}

TEST(Minimizer, ReturnsNulloptWhenNotApplicable) {
  EXPECT_FALSE(minimize_mws_2d(codes::example_5()).has_value());   // depth 3
  EXPECT_FALSE(minimize_mws_2d(codes::example_3()).has_value());   // 2-d array
  EXPECT_FALSE(minimize_mws_2d(codes::example_6()).has_value());   // non-uniform
}

TEST(Minimizer, CandidateCountReported) {
  auto res = minimize_mws_2d(codes::example_8());
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(res->candidates, 10);  // a real search happened
}

TEST(Embedding, Example10) {
  LoopNest nest = codes::example_5();
  auto t = embedding_transform(nest, 0);
  ASSERT_TRUE(t.has_value());
  ASSERT_TRUE(t->is_unimodular());
  // First rows equal the access matrix.
  EXPECT_EQ(t->row(0), (IntVec{3, 0, 1}));
  EXPECT_EQ(t->row(1), (IntVec{0, 1, 1}));
  // The reuse vector (1,3,-3) becomes innermost-carried and forward.
  IntVec tv = (*t) * IntVec{1, 3, -3};
  EXPECT_EQ(tv[0], 0);
  EXPECT_EQ(tv[1], 0);
  EXPECT_GT(tv[2], 0);
  EXPECT_EQ(tv.level(), 3);  // paper: "the reuse vector becomes (0,0,1)"
  // And the exact window collapses to 1 (paper: "reduces to one").
  EXPECT_EQ(simulate_transformed(nest, *t).mws_total, 1);
}

TEST(Embedding, NotApplicableCases) {
  // d == n: nothing to embed.
  EXPECT_FALSE(embedding_transform(codes::example_3(), 0).has_value());
  // non-uniform references.
  EXPECT_FALSE(embedding_transform(codes::example_6(), 0).has_value());
}

TEST(Predicted, IdentityMatchesUntransformedEstimate) {
  LoopNest nest = codes::example_8();
  EXPECT_EQ(predicted_mws_after(nest, IntMat::identity(2)), 50);
}

TEST(Predicted, CapsAtDistinctCount) {
  LoopNest nest = codes::kernel_full_search(8, 4);
  Int p = predicted_mws_after(nest, IntMat::identity(4));
  // cur has 64 distinct elements, ref 256: the prediction must respect the
  // caps rather than exploding to the iteration count (20k+).
  EXPECT_LE(p, 64 + 256);
}

TEST(Optimize, Example8) {
  LoopNest nest = codes::example_8();
  OptimizeResult res = optimize_locality(nest);
  EXPECT_EQ(res.method, "row-minimizer");
  EXPECT_EQ(simulate_transformed(nest, res.transform).mws_total, 21);
}

TEST(Optimize, NeverWorseThanIdentity) {
  for (auto& entry : codes::figure2_suite()) {
    OptimizeResult res = optimize_locality(entry.nest);
    Int before = simulate(entry.nest).mws_total;
    Int after = simulate_transformed(entry.nest, res.transform).mws_total;
    EXPECT_LE(after, before) << entry.name << " method " << res.method;
  }
}

TEST(Optimize, ResultAlwaysLegal) {
  for (auto& entry : codes::figure2_suite()) {
    OptimizeResult res = optimize_locality(entry.nest);
    auto memory = analyze_dependences(entry.nest).distance_vectors(false);
    EXPECT_TRUE(is_legal(res.transform, memory)) << entry.name;
    EXPECT_TRUE(res.transform.is_unimodular()) << entry.name;
  }
}

TEST(Optimize, MatmultUnimproved) {
  // The paper's only kernel where transformation does not help.
  LoopNest nest = codes::kernel_matmult(8);
  OptimizeResult res = optimize_locality(nest);
  Int before = simulate(nest).mws_total;
  Int after = simulate_transformed(nest, res.transform).mws_total;
  EXPECT_EQ(before, after);
  EXPECT_EQ(before, 8 * 8 + 8 + 1);
}

TEST(Optimize, TwoPointInterchangeWins) {
  LoopNest nest = codes::kernel_two_point(16);
  OptimizeResult res = optimize_locality(nest);
  EXPECT_EQ(simulate_transformed(nest, res.transform).mws_total, 1);
}

TEST(ScanVolume, IdentityEqualsIterationCount) {
  LoopNest nest = codes::example_8(300, 300);
  EXPECT_EQ(transformed_scan_volume(nest, IntMat::identity(2)),
            nest.iteration_count());
  EXPECT_EQ(transformed_scan_volume(nest, interchange(2, 0, 1)),
            nest.iteration_count());
}

TEST(ScanVolume, SkewInflatesBeyondIterationCount) {
  // The paper transform for example 8 skews the scan hull: 2i+3j sweeps
  // [5, 1500] and i+j sweeps [2, 600] when both loops run to 300, so the
  // scanner visits ~10x more points than the (invariant) 90,000 iterations.
  LoopNest nest = codes::example_8(300, 300);
  IntMat skew{{2, 3}, {1, 1}};
  EXPECT_EQ(nest.iteration_count(), 90'000);
  EXPECT_EQ(transformed_scan_volume(nest, skew), 1496 * 599);
}

TEST(Optimize, VerifyLimitAppliesToTransformedScanSpace) {
  // Regression: the verification budget used to be checked only against the
  // original nest's iteration count, so a skewing candidate could drag the
  // oracle through a scan space ~10x past the limit.  With the limit between
  // the iteration count (90,000) and the skewed hull (896,104), the
  // row-minimizer candidate must be excluded from exact verification while
  // the identity still qualifies.
  LoopNest nest = codes::example_8(300, 300);
  MinimizerOptions tight;
  tight.verify_iteration_limit = 100'000;
  OptimizeResult budgeted = optimize_locality(nest, tight);
  EXPECT_NE(budgeted.method, "row-minimizer");

  MinimizerOptions generous;
  generous.verify_iteration_limit = 1'000'000;
  OptimizeResult full = optimize_locality(nest, generous);
  EXPECT_EQ(full.method, "row-minimizer");
  EXPECT_EQ(full.transform.row(0), (IntVec{2, 3}));
}

}  // namespace
}  // namespace lmre
