#include <gtest/gtest.h>

#include "exact/oracle.h"
#include "ir/builder.h"
#include "program/fusion.h"
#include "support/error.h"

namespace lmre {
namespace {

LoopNest producer(Int n) {
  NestBuilder b;
  b.loop("i", 1, n);
  ArrayId a = b.array("A", {n});
  b.statement().write(a, {{1}}, {0});
  return b.build();
}

LoopNest consumer_same(Int n) {
  NestBuilder b;
  b.loop("i", 1, n);
  ArrayId a = b.array("A", {n});
  ArrayId out = b.array("B", {n});
  b.statement().write(out, {{1}}, {0}).read(a, {{1}}, {0});
  return b.build();
}

LoopNest consumer_forward(Int n) {
  // Reads A[i-1]: the producer of A[x] ran at iteration x <= x+1: still
  // forward after fusion.
  NestBuilder b;
  b.loop("i", 2, n);
  ArrayId a = b.array("A", {n});
  ArrayId out = b.array("B", {n});
  b.statement().write(out, {{1}}, {0}).read(a, {{1}}, {-1});
  return b.build();
}

LoopNest consumer_backward(Int n) {
  // Reads A[i+1]: A[x] is consumed at iteration x-1, BEFORE its producer
  // iteration x -- fusion would read an unwritten value.
  NestBuilder b;
  b.loop("i", 1, n - 1);
  ArrayId a = b.array("A", {n + 1});
  ArrayId out = b.array("B", {n});
  b.statement().write(out, {{1}}, {0}).read(a, {{1}}, {1});
  return b.build();
}

TEST(Fusion, SameIndexIsLegal) {
  FusionResult res = fuse_nests(producer(10), consumer_same(10));
  ASSERT_TRUE(res.fused.has_value());
  EXPECT_EQ(res.blocker, FusionBlocker::kNone);
  // Fused: two statements, arrays A and B unified.
  EXPECT_EQ(res.fused->statements().size(), 2u);
  EXPECT_EQ(res.fused->arrays().size(), 2u);
  // The fused window is O(1): production feeds consumption immediately.
  EXPECT_LE(simulate(*res.fused).mws_total, 1);
}

TEST(Fusion, BackwardDependenceBlocked) {
  // Bounds must match for the test to reach the dependence check.
  LoopNest prod = [&] {
    NestBuilder b;
    b.loop("i", 1, 9);
    ArrayId a = b.array("A", {11});
    b.statement().write(a, {{1}}, {0});
    return b.build();
  }();
  FusionResult res = fuse_nests(prod, consumer_backward(10));
  EXPECT_FALSE(res.fused.has_value());
  EXPECT_EQ(res.blocker, FusionBlocker::kDependence);
}

TEST(Fusion, ShapeMismatchBlocked) {
  FusionResult res = fuse_nests(producer(10), consumer_same(12));
  EXPECT_FALSE(res.fused.has_value());
  EXPECT_EQ(res.blocker, FusionBlocker::kShapeMismatch);
}

TEST(Fusion, ExtentMismatchBlocked) {
  NestBuilder b;
  b.loop("i", 1, 10);
  ArrayId a = b.array("A", {20});  // different declared extent for A
  b.statement().read(a, {{1}}, {0});
  FusionResult res = fuse_nests(producer(10), b.build());
  EXPECT_FALSE(res.fused.has_value());
  EXPECT_EQ(res.blocker, FusionBlocker::kShapeMismatch);
}

TEST(Fusion, ForwardOffsetLegal) {
  LoopNest prod = [&] {
    NestBuilder b;
    b.loop("i", 2, 10);
    ArrayId a = b.array("A", {10});
    b.statement().write(a, {{1}}, {0});
    return b.build();
  }();
  FusionResult res = fuse_nests(prod, consumer_forward(10));
  ASSERT_TRUE(res.fused.has_value());
  EXPECT_LE(simulate(*res.fused).mws_total, 3);
}

TEST(Fusion, ProgramLevelShrinksHandoff) {
  Program p;
  p.add_phase("produce", producer(16));
  p.add_phase("consume", consumer_same(16));
  ProgramStats before = p.simulate();
  EXPECT_EQ(before.handoff[1], 16);  // whole buffer parked at the boundary

  auto fused = fuse_phases(p, 0);
  ASSERT_TRUE(fused.has_value());
  EXPECT_EQ(fused->phase_count(), 1u);
  EXPECT_EQ(fused->phase_name(0), "produce+consume");
  ProgramStats after = fused->simulate();
  EXPECT_LE(after.mws_total, 1);            // buffer gone
  EXPECT_EQ(after.distinct_total, before.distinct_total);
}

TEST(Fusion, ProgramFusionBlockedPassesThrough) {
  Program p;
  NestBuilder b1;
  b1.loop("i", 1, 9);
  ArrayId a1 = b1.array("A", {11});
  b1.statement().write(a1, {{1}}, {0});
  p.add_phase("produce", b1.build());
  p.add_phase("consume", consumer_backward(10));
  EXPECT_FALSE(fuse_phases(p, 0).has_value());
}

TEST(Fusion, OutOfRangeIndexRejected) {
  Program p;
  p.add_phase("only", producer(4));
  EXPECT_THROW(fuse_phases(p, 0), InvalidArgument);
}

TEST(Fusion, ThreePhaseMiddleFusion) {
  Program p;
  p.add_phase("p0", producer(8));
  p.add_phase("p1", consumer_same(8));
  NestBuilder b;
  b.loop("i", 1, 8);
  ArrayId bb = b.array("B", {8});
  ArrayId cc = b.array("C", {8});
  b.statement().write(cc, {{1}}, {0}).read(bb, {{1}}, {0});
  p.add_phase("p2", b.build());

  auto fused = fuse_phases(p, 1);
  ASSERT_TRUE(fused.has_value());
  ASSERT_EQ(fused->phase_count(), 2u);
  EXPECT_EQ(fused->phase_name(0), "p0");
  EXPECT_EQ(fused->phase_name(1), "p1+p2");
  // B's handoff buffer disappears; A's remains (p0 still separate).
  ProgramStats s = fused->simulate();
  EXPECT_EQ(s.handoff[1], 8);  // A crosses into the fused phase
}

}  // namespace
}  // namespace lmre
