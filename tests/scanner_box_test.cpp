#include <gtest/gtest.h>

#include "polyhedra/box.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(IntBox, VolumeAndContains) {
  IntBox box = IntBox::from_upper_bounds({10, 20, 30});
  EXPECT_EQ(box.volume(), 6000);
  EXPECT_TRUE(box.contains(IntVec{1, 1, 1}));
  EXPECT_TRUE(box.contains(IntVec{10, 20, 30}));
  EXPECT_FALSE(box.contains(IntVec{0, 1, 1}));
  EXPECT_FALSE(box.contains(IntVec{1, 21, 1}));
  EXPECT_FALSE(box.contains(IntVec{1, 1}));
}

TEST(IntBox, NegativeLowerBounds) {
  IntBox box({Range{-4, 4}, Range{1, 16}});
  EXPECT_EQ(box.volume(), 9 * 16);
  EXPECT_TRUE(box.contains(IntVec{-4, 16}));
  EXPECT_FALSE(box.contains(IntVec{-5, 1}));
}

TEST(IntBox, TripCount) {
  EXPECT_EQ((Range{3, 3}).trip_count(), 1);
  EXPECT_EQ((Range{3, 2}).trip_count(), 0);
  EXPECT_EQ((Range{-2, 2}).trip_count(), 5);
}

TEST(IntBox, Str) {
  EXPECT_EQ(IntBox::from_upper_bounds({2, 3}).str(), "[1,2] x [1,3]");
}

TEST(Scanner, VisitsLexicographically) {
  IntBox box = IntBox::from_upper_bounds({2, 2});
  std::vector<std::vector<Int>> visited;
  scan(box.to_constraints(), [&](const IntVec& p) { visited.push_back(p.data()); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], (std::vector<Int>{1, 1}));
  EXPECT_EQ(visited[1], (std::vector<Int>{1, 2}));
  EXPECT_EQ(visited[2], (std::vector<Int>{2, 1}));
  EXPECT_EQ(visited[3], (std::vector<Int>{2, 2}));
}

TEST(Scanner, CountMatchesVolume) {
  IntBox box = IntBox::from_upper_bounds({7, 5, 3});
  EXPECT_EQ(count_points(box.to_constraints()), box.volume());
}

TEST(Scanner, LexicographicMin) {
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 3, 5);
  sys.add_range(AffineExpr::variable(2, 1), -2, 2);
  auto m = lexicographic_min(sys);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, (IntVec{3, -2}));
}

TEST(Scanner, LexicographicMinEmpty) {
  ConstraintSystem sys(1);
  sys.add(AffineExpr::variable(1, 0) - 5);
  sys.add(-AffineExpr::variable(1, 0) + 3);
  EXPECT_FALSE(lexicographic_min(sys).has_value());
}

TEST(Scanner, SingleDimension) {
  ConstraintSystem sys(1);
  sys.add_range(AffineExpr::variable(1, 0), -1, 1);
  EXPECT_EQ(count_points(sys), 3);
}

}  // namespace
}  // namespace lmre
