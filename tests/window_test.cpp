#include <gtest/gtest.h>

#include "analysis/window.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Maxspan, IdentityAndInterchange) {
  IntBox box = IntBox::from_upper_bounds({20, 30});
  EXPECT_EQ(maxspan2(box, 1, 0), Rational(29));  // inner loop is j
  EXPECT_EQ(maxspan2(box, 0, 1), Rational(19));  // inner loop is i
}

TEST(Maxspan, GeneralRow) {
  // Section 4.2 worked example: N1=25, N2=10, row (2,3):
  // min(24/3, 9/2) = 9/2.
  IntBox box = IntBox::from_upper_bounds({25, 10});
  EXPECT_EQ(maxspan2(box, 2, 3), Rational(9, 2));
}

TEST(Maxspan, RejectsBadRows) {
  IntBox box = IntBox::from_upper_bounds({4, 4});
  EXPECT_THROW(maxspan2(box, 0, 0), InvalidArgument);
  EXPECT_THROW(maxspan2(box, 2, 4), InvalidArgument);  // not primitive
  EXPECT_THROW(maxspan2(IntBox::from_upper_bounds({4}), 1, 0), InvalidArgument);
}

TEST(Mws2, Example8Identity) {
  // Untransformed Example 8: "The maximum window size is 50."
  IntBox box = IntBox::from_upper_bounds({25, 10});
  EXPECT_EQ(mws2_estimate(IntVec{2, 5}, box, 1, 0), Rational(50));
}

TEST(Mws2, WorkedExampleRow23) {
  // (9/2 + 1) * |5*2 - 2*3| = 22 -- "very close to the actual minimum MWS
  // which is 21".
  IntBox box = IntBox::from_upper_bounds({25, 10});
  EXPECT_EQ(mws2_estimate(IntVec{2, 5}, box, 2, 3), Rational(22));
}

TEST(Mws2, Example7Estimates) {
  IntBox box = IntBox::from_upper_bounds({20, 30});
  // Identity ~ Eisenbeis cost 89 (estimate 90); interchange 41 (estimate 40).
  EXPECT_EQ(mws2_estimate(IntVec{2, -3}, box, 1, 0), Rational(90));
  EXPECT_EQ(mws2_estimate(IntVec{2, -3}, box, 0, 1), Rational(40));
  // The compound row (2,-3) zeroes the inner stride: window collapses to 1.
  EXPECT_EQ(mws2_estimate(IntVec{2, -3}, box, 2, -3), Rational(1));
}

TEST(Mws2, EstimateUpperBoundsExactOnExamples) {
  for (auto [nest, row] : {std::pair{codes::example_7(), IntVec{1, 0}},
                           std::pair{codes::example_8(), IntVec{1, 0}}}) {
    Rational est =
        mws2_estimate(nest.all_refs()[0].access.row(0), nest.bounds(), row[0], row[1]);
    Int exact = simulate(nest).mws_total;
    EXPECT_GE(est, Rational(exact)) << est.str() << " vs " << exact;
  }
}

TEST(Mws2Eq1, ConsistentWithEq2) {
  // eq. (2) == eq. (1) with the analytic maxspan plugged in.
  IntBox box = IntBox::from_upper_bounds({25, 10});
  IntMat t{{2, 3}, {1, 1}};
  Rational span = maxspan2(box, 2, 3);
  EXPECT_EQ(mws2_eq1(IntVec{2, 5}, span, t), mws2_estimate(IntVec{2, 5}, box, 2, 3));
}

TEST(Mws2Eq1, DeterminantSignIrrelevant) {
  IntMat pos{{2, 3}, {1, 2}};   // det 1
  IntMat neg{{2, 3}, {1, 1}};   // det -1
  Rational span(9, 2);
  EXPECT_EQ(mws2_eq1(IntVec{2, 5}, span, pos), mws2_eq1(IntVec{2, 5}, span, neg));
  EXPECT_THROW(mws2_eq1(IntVec{2, 5}, span, IntMat{{2, 0}, {0, 1}}),
               InvalidArgument);
}

TEST(Mws3, Example10PaperFormula) {
  IntBox box = IntBox::from_upper_bounds({10, 20, 30});
  // d2 = 3 > 0: 1*(20-3)*(30-3) + 3*(30-3) + 1 = 541 (paper prints 540).
  EXPECT_EQ(mws3_paper(IntVec{1, 3, -3}, box), 541);
  // d2 <= 0 branch.
  EXPECT_EQ(mws3_paper(IntVec{1, -3, 3}, box), 460);
  // Normalization: a lex-negative vector is flipped first.
  EXPECT_EQ(mws3_paper(IntVec{-1, -3, 3}, box), 541);
}

TEST(Mws3, DepthChecked) {
  EXPECT_THROW(mws3_paper(IntVec{1, 0}, IntBox::from_upper_bounds({4, 4})),
               InvalidArgument);
}

TEST(MwsGeneral, MatchesPaperFormulaOnDepth3) {
  IntBox box = IntBox::from_upper_bounds({10, 20, 30});
  EXPECT_EQ(mws_from_reuse_vector(IntVec{1, 3, -3}, box), 541);
  // The generalized formula adds a pos(d3) term the 3-level paper formula
  // omits: 459 + 3 = 462 for (1,-3,3).
  EXPECT_EQ(mws_from_reuse_vector(IntVec{1, -3, 3}, box, /*with_plus_one=*/false), 462);
}

TEST(MwsGeneral, ExactForExample10IsWithinOne) {
  LoopNest nest = codes::example_5();
  Int exact = simulate(nest).mws_total;
  EXPECT_EQ(exact, 540);  // paper prints 540
  EXPECT_EQ(mws_from_reuse_vector(IntVec{1, 3, -3}, nest.bounds()), exact + 1);
}

TEST(MwsGeneral, ZeroVectorMeansNoWindow) {
  EXPECT_EQ(mws_from_reuse_vector(IntVec{0, 0}, IntBox::from_upper_bounds({5, 5})), 0);
}

TEST(MwsGeneral, InnerCarriedDependenceIsCheap) {
  IntBox box = IntBox::from_upper_bounds({10, 20, 30});
  // (0,0,1): consecutive iterations -> constant-size window.
  EXPECT_EQ(mws_from_reuse_vector(IntVec{0, 0, 1}, box), 2);
  // (0,1,0): one inner row.
  EXPECT_EQ(mws_from_reuse_vector(IntVec{0, 1, 0}, box), 31);
}

TEST(MwsGeneral, DepthTwo) {
  IntBox box = IntBox::from_upper_bounds({10, 10});
  EXPECT_EQ(mws_from_reuse_vector(IntVec{1, 0}, box), 11);
  EXPECT_EQ(mws_from_reuse_vector(IntVec{1, -2}, box), 9);
}

TEST(EstimateArray, TwoDeepOneDUsesEq2) {
  LoopNest nest = codes::example_8();
  auto m = estimate_mws_array(nest, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 50);
}

TEST(EstimateArray, NonUniformGivesNullopt) {
  EXPECT_FALSE(estimate_mws_array(codes::example_6(), 0).has_value());
}

TEST(EstimateArray, NoReuseGivesZero) {
  NestBuilder b;
  b.loop("i", 1, 5).loop("j", 1, 5);
  ArrayId a = b.array("A", {5, 5});
  b.statement().write(a, {{1, 0}, {0, 1}}, {0, 0});
  EXPECT_EQ(*estimate_mws_array(b.build(), 0), 0);
}

TEST(EstimateArray, CappedByDistinctCount) {
  // cur[i][j] in a motion-estimation nest: reuse (1,0,0) would naively give
  // a window of the whole inner space, but only block*block elements exist.
  LoopNest nest = codes::kernel_three_step_log(8, 4);
  // Array 0 is cur (8x8 = 64 distinct).
  auto m = estimate_mws_array(nest, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_LE(*m, 64);
  EXPECT_GE(*m, 32);
}

TEST(EstimateTotal, TracksOracleOnFigure2Kernels) {
  for (auto& entry : codes::figure2_suite()) {
    auto est = estimate_mws_total(entry.nest);
    ASSERT_TRUE(est.has_value()) << entry.name;
    Int exact = simulate(entry.nest).mws_total;
    // The estimate is a per-array upper-bound composition; allow slack but
    // catch order-of-magnitude drift (full_search's cap makes it loose).
    EXPECT_GE(*est, exact / 2) << entry.name;
    EXPECT_LE(*est, std::max<Int>(exact * 4, exact + 1024)) << entry.name;
  }
}

}  // namespace
}  // namespace lmre
