#include <gtest/gtest.h>

#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/general.h"
#include "support/error.h"

namespace lmre {
namespace {

// Triangular sweep: for i = 1..n, j = 1..i: A[i][j] = A[i-1][j].
GeneralNest triangular_stencil(Int n) {
  std::vector<Array> arrays{Array{"A", {n + 1, n}}};
  Statement stmt;
  stmt.refs.push_back(
      ArrayRef{0, AccessKind::kWrite, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}});
  stmt.refs.push_back(
      ArrayRef{0, AccessKind::kRead, IntMat{{1, 0}, {0, 1}}, IntVec{-1, 0}});
  return GeneralNest({"i", "j"}, lower_triangle_space(n), arrays, {stmt});
}

TEST(GeneralNest, TriangleIterationCount) {
  GeneralNest nest = triangular_stencil(6);
  EXPECT_EQ(nest.iteration_count(), 21);  // 1+2+...+6
  EXPECT_EQ(nest.depth(), 2u);
}

TEST(GeneralNest, SimulateTriangleWindow) {
  GeneralNest nest = triangular_stencil(6);
  TraceStats s = simulate_general(nest);
  EXPECT_EQ(s.iterations, 21);
  EXPECT_EQ(s.total_accesses, 42);
  // A[i][j] written at row i (j <= i) and read at row i+1: each row's
  // prefix stays live for one row -- window ~ row length.
  EXPECT_GE(s.mws_total, 5);
  EXPECT_LE(s.mws_total, 8);
}

TEST(GeneralNest, DistinctOnTriangle) {
  GeneralNest nest = triangular_stencil(6);
  TraceStats s = simulate_general(nest);
  // Writes touch the 21 triangle cells; reads touch rows 0..5 prefixes
  // (21 cells, 15 shared with writes: rows 1..5 prefixes).
  EXPECT_EQ(s.distinct_total, 27);
}

TEST(GeneralNest, ToGeneralMatchesRectangularOracle) {
  LoopNest nest = codes::example_8();
  TraceStats a = simulate(nest);
  TraceStats b = simulate_general(to_general(nest));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.distinct_total, b.distinct_total);
  EXPECT_EQ(a.mws_total, b.mws_total);
  EXPECT_EQ(a.reuse_total, b.reuse_total);
}

TEST(GeneralNest, ToGeneralOnDepth3) {
  LoopNest nest = codes::example_5();
  EXPECT_EQ(simulate_general(to_general(nest)).mws_total, 540);
}

TEST(GeneralNest, DefaultMemoryCountsReferencedOnly) {
  std::vector<Array> arrays{Array{"A", {10}}, Array{"unused", {99}}};
  Statement stmt;
  stmt.refs.push_back(ArrayRef{0, AccessKind::kRead, IntMat{{1, 0}}, IntVec{0}});
  GeneralNest nest({"i", "j"}, lower_triangle_space(4), arrays, {stmt});
  EXPECT_EQ(nest.default_memory(), 10);
}

TEST(GeneralNest, ValidationRejectsBadShapes) {
  std::vector<Array> arrays{Array{"A", {10}}};
  Statement stmt;
  stmt.refs.push_back(
      ArrayRef{0, AccessKind::kRead, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}});
  EXPECT_THROW(GeneralNest({"i", "j"}, lower_triangle_space(4), arrays, {stmt}),
               InvalidArgument);
  EXPECT_THROW(GeneralNest({"i"}, lower_triangle_space(4), arrays, {}),
               InvalidArgument);
}

TEST(GeneralNest, BandedSpace) {
  // Band: |i - j| <= 1 within an 8x8 box (tridiagonal walk).
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 1, 8);
  sys.add_range(AffineExpr::variable(2, 1), 1, 8);
  sys.add_range(AffineExpr::variable(2, 0) - AffineExpr::variable(2, 1), -1, 1);
  std::vector<Array> arrays{Array{"M", {8, 8}}};
  Statement stmt;
  stmt.refs.push_back(
      ArrayRef{0, AccessKind::kRead, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}});
  GeneralNest nest({"i", "j"}, sys, arrays, {stmt});
  EXPECT_EQ(nest.iteration_count(), 22);  // 8 diagonal + 7 above + 7 below
  EXPECT_EQ(simulate_general(nest).distinct_total, 22);
}

}  // namespace
}  // namespace lmre
