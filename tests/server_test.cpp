// Tests for the lmre serve subsystem (src/server): the wire-JSON reader
// with verbatim raw slices, request validation, and the AnalysisServer
// over all three transports (stdio, Unix socket, TCP) -- byte-identity
// with direct session runs, load-shedding at a full queue, single-flight
// coalescing of identical requests, deadline expiry, graceful drain,
// dead-client teardown, and concurrent clients sharing one warm cache.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/session.h"
#include "server/queue.h"
#include "server/server.h"
#include "server/tcp.h"
#include "server/wire.h"
#include "support/json.h"

namespace lmre {
namespace {

// ---- wire reader -----------------------------------------------------------

TEST(Wire, ParsesScalarsWithRawSlices) {
  std::string error;
  auto v = parse_wire_json(R"( {"id": 42, "name": "a\nb", "ok": true,
                               "list": [1, 2.5, null]} )",
                           &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_EQ(v->kind, WireValue::Kind::kObject);

  const WireValue* id = v->find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->kind, WireValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(id->number, 42.0);
  EXPECT_EQ(id->raw, "42");  // verbatim input bytes, not re-encoded

  const WireValue* name = v->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->text, "a\nb");        // escapes decoded
  EXPECT_EQ(name->raw, R"("a\nb")");    // raw keeps them

  const WireValue* list = v->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->elements.size(), 3u);
  EXPECT_EQ(list->elements[2].kind, WireValue::Kind::kNull);
  EXPECT_EQ(list->raw, "[1, 2.5, null]");

  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Wire, DecodesUnicodeEscapes) {
  std::string error;
  auto v = parse_wire_json(R"("\u0041\u00e9\u20ac\ud83d\ude00")", &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->text, "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(Wire, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_wire_json("", &error).has_value());
  EXPECT_FALSE(parse_wire_json("{", &error).has_value());
  EXPECT_FALSE(parse_wire_json("{} trailing", &error).has_value());
  EXPECT_FALSE(parse_wire_json("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(parse_wire_json("\"\\x\"", &error).has_value());
  EXPECT_FALSE(parse_wire_json("\"\\ud800\"", &error).has_value());  // lone surrogate
  EXPECT_FALSE(parse_wire_json("nul", &error).has_value());
  EXPECT_FALSE(error.empty());  // failures always carry a message
  // Nesting past the depth cap must fail cleanly, not crash.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse_wire_json(deep, &error).has_value());
}

// ---- request validation ----------------------------------------------------

TEST(WireRequest, ParsesFullRequest) {
  ServerRequest req;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id": "job-1", "kind": "lint", "source": "for i = 1 to 4\n  use A[i];",
          "options": {"deadline_ms": 250, "future_knob": true}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.id_json, "\"job-1\"");  // raw slice: quotes preserved
  EXPECT_EQ(req.analysis.kind(), AnalysisRequest::Kind::kLint);
  EXPECT_EQ(req.analysis.source, "for i = 1 to 4\n  use A[i];");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 250.0);
}

TEST(WireRequest, DefaultsAndNumericId) {
  ServerRequest req;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"id": 7, "source": "x"})", &req, &error));
  EXPECT_EQ(req.id_json, "7");
  EXPECT_EQ(req.analysis.kind(), AnalysisRequest::Kind::kFull);  // default kind
  EXPECT_DOUBLE_EQ(req.deadline_ms, 0.0);             // no deadline
}

TEST(WireRequest, RejectsSchemaViolations) {
  ServerRequest req;
  std::string error;
  EXPECT_FALSE(parse_request("[1,2]", &req, &error));
  EXPECT_FALSE(parse_request(R"({"kind": "full"})", &req, &error));  // no source
  EXPECT_FALSE(parse_request(R"({"source": 5})", &req, &error));
  EXPECT_FALSE(parse_request(R"({"source": "x", "kind": "bogus"})", &req, &error));
  EXPECT_FALSE(parse_request(R"({"source": "x", "options": []})", &req, &error));
  EXPECT_FALSE(
      parse_request(R"({"source": "x", "options": {"deadline_ms": -1}})", &req, &error));
  EXPECT_FALSE(parse_request(R"({"id": {"k": 1}, "source": "x"})", &req, &error));
  // The id survives a later schema error so the error response correlates.
  EXPECT_FALSE(parse_request(R"({"id": 9, "kind": "bogus", "source": "x"})", &req, &error));
  EXPECT_EQ(req.id_json, "9");
}

TEST(WireStatus, NamesAndExitCodeMapping) {
  EXPECT_STREQ(to_string(ServeStatus::kSuccess), "success");
  EXPECT_STREQ(to_string(ServeStatus::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(ServeStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(ServeStatus::kBadRequest), "bad_request");
  EXPECT_EQ(serve_status(ExitCode::kSuccess), ServeStatus::kSuccess);
  EXPECT_EQ(serve_status(ExitCode::kDiagnostics), ServeStatus::kDiagnostics);
  EXPECT_EQ(static_cast<int>(ServeStatus::kOverflow), to_int(ExitCode::kOverflow));
}

// ---- bounded queue ---------------------------------------------------------

TEST(BoundedQueue, ShedsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed, never buffered
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: no admission
  EXPECT_EQ(q.pop(), 1);        // queued work survives close
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and empty
}

// ---- server helpers --------------------------------------------------------

const char* kFirSource =
    "array y[256];\narray x[264];\narray h[8];\n"
    "for i = 1 to 256\n  for k = 1 to 8\n"
    "    {\n      y[i] = y[i] + x[i + k] + h[k];\n    }\n";

// Heavy enough (3-deep nest, full pipeline with optimize search) that a
// worker is measurably busy while follow-up lines are admitted.
const char* kMatmultSource =
    "array C[16][16];\narray A[16][16];\narray B[16][16];\n"
    "for i = 1 to 16\n  for j = 1 to 16\n    for k = 1 to 16\n"
    "      {\n        C[i][j] = C[i][j] + A[i][k] + B[k][j];\n      }\n";

std::string request_line(const std::string& id_json, const std::string& source,
                         const std::string& kind = "full",
                         double deadline_ms = 0) {
  Json req = Json::object();
  req.set("id", Json::raw(id_json));
  req.set("kind", kind);
  req.set("source", source);
  if (deadline_ms > 0) {
    req.set("options", Json::object().set("deadline_ms", deadline_ms));
  }
  return req.dump(0);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// The response for a given raw id, or nullopt.
std::optional<WireValue> response_for(const std::vector<std::string>& lines,
                                      const std::string& id_json) {
  for (const std::string& line : lines) {
    std::string error;
    auto doc = parse_wire_json(line, &error);
    if (!doc) continue;
    const WireValue* result = doc->find("result");
    if (!result) continue;
    const WireValue* id = result->find("id");
    if (id && id->raw == id_json) return doc;
  }
  return std::nullopt;
}

int wire_status(const WireValue& doc) {
  const WireValue* status = doc.find("result")->find("status");
  return status ? static_cast<int>(status->number) : -1;
}

// ---- streams transport -----------------------------------------------------

TEST(Server, StreamsResponseIsByteIdenticalToSessionPayload) {
  AnalysisSession direct;
  std::string expected =
      direct.run({kFirSource, "x.loop", AnalysisRequest::Kind::kFull}).payload;

  ServerOptions opts;
  opts.workers = 2;
  AnalysisServer server(opts);
  std::istringstream in(request_line("1", kFirSource) + "\n");
  std::ostringstream out;
  server.serve_streams(in, out);

  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  auto doc = response_for(lines, "1");
  ASSERT_TRUE(doc.has_value()) << out.str();
  EXPECT_EQ(wire_status(*doc), 0);
  const WireValue* payload = doc->find("result")->find("result");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->raw, expected);  // spliced verbatim, never re-encoded
  EXPECT_EQ(server.metrics().counter("serve.completed"), 1);
}

TEST(Server, StreamsSymbolicKindReturnsSymbolicDocument) {
  // A nest squarely inside the symbolic engine's supported regime, so the
  // response must be a success whose payload embeds the closed forms.
  const char* source =
      "array A[11][11];\n"
      "for i = 1 to 10\n  for j = 1 to 10\n"
      "    A[i][j] = A[i][j - 1];\n";
  AnalysisSession direct;
  std::string expected =
      direct.run({source, "<serve>", AnalysisRequest::Kind::kSymbolic})
          .payload;

  AnalysisServer server(ServerOptions{});
  std::istringstream in(request_line("42", source, "symbolic") + "\n");
  std::ostringstream out;
  server.serve_streams(in, out);

  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  auto doc = response_for(lines, "42");
  ASSERT_TRUE(doc.has_value()) << out.str();
  EXPECT_EQ(wire_status(*doc), 0);
  const WireValue* payload = doc->find("result")->find("result");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->raw, expected);
  EXPECT_NE(payload->raw.find("\"symbolic\""), std::string::npos);
}

TEST(Server, StreamsMrcKindRoundTripsWithOptions) {
  // An "mrc" request with every per-kind knob set must splice exactly the
  // payload a direct session computes for the same typed request, and a
  // warm (cached) re-run must be byte-identical to the cold one.
  AnalysisRequest::Mrc mopt;
  mopt.plan = "0 1; 1 0";
  mopt.sample_rate = 0.5;
  mopt.capacities = {1, 8, 64};
  AnalysisSession direct;
  std::string expected = direct.run({kFirSource, "<serve>", mopt}).payload;

  Json req = Json::object();
  req.set("id", Json::raw("7"));
  req.set("kind", "mrc");
  req.set("source", kFirSource);
  req.set("options", Json::object()
                         .set("plan", "0 1; 1 0")
                         .set("sample_rate", 0.5)
                         .set("capacities", Json::array().push(1).push(8).push(64)));
  const std::string line = req.dump(0) + "\n";

  AnalysisServer server(ServerOptions{});
  std::istringstream in(line + line);  // cold, then warm from the cache
  std::ostringstream out;
  server.serve_streams(in, out);

  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& response : lines) {
    std::string error;
    auto doc = parse_wire_json(response, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(wire_status(*doc), 0);
    const WireValue* payload = doc->find("result")->find("result");
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->raw, expected);
    EXPECT_NE(payload->raw.find("\"mrc\""), std::string::npos);
    EXPECT_NE(payload->raw.find("\"error_bound\""), std::string::npos);
  }
}

TEST(Server, StreamsAnswersEveryRequestOnDrain) {
  ServerOptions opts;
  opts.workers = 4;
  opts.queue_depth = 64;
  AnalysisServer server(opts);
  std::string feed;
  for (int i = 0; i < 8; ++i) {
    feed += request_line(std::to_string(i),
                         i % 2 ? kFirSource : kMatmultSource, "analyze");
    feed += '\n';
  }
  std::istringstream in(feed);
  std::ostringstream out;
  server.serve_streams(in, out);  // returns only after the drain

  auto lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto doc = response_for(lines, std::to_string(i));
    ASSERT_TRUE(doc.has_value()) << "missing response for id " << i;
    EXPECT_EQ(wire_status(*doc), 0);
  }
  // 8 requests over 2 distinct sources.  Every request is answered from
  // exactly one of three paths: a cache hit, a cache miss (computed), or
  // a coalesced flight (answered by another request's computation without
  // ever probing the cache).  The split between them depends on worker
  // timing, but the first compute of each source is always a miss.
  EXPECT_EQ(server.cache().hits() + server.cache().misses() +
                server.metrics().counter("serve.coalesced"),
            8);
  EXPECT_GE(server.cache().misses(), 2);
  EXPECT_EQ(server.metrics().latency_count("serve.latency_ms"), 8);
}

TEST(Server, BadRequestLineGetsBadRequestStatus) {
  AnalysisServer server(ServerOptions{});
  std::istringstream in("this is not json\n" +
                        request_line("2", kFirSource, "lint") + "\n");
  std::ostringstream out;
  server.serve_streams(in, out);

  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  bool saw_bad = false;
  for (const auto& line : lines) {
    if (line.find("\"bad_request\"") != std::string::npos) saw_bad = true;
  }
  EXPECT_TRUE(saw_bad) << out.str();
  auto ok = response_for(lines, "2");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(wire_status(*ok), 0);
  EXPECT_EQ(server.metrics().counter("serve.bad_request"), 1);
}

// A sink that collects response lines; lets tests admit lines one at a
// time (serve_streams feeds them back-to-back, which races the worker).
class CollectingSink : public ResponseSink {
 public:
  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    lines_.push_back(line);
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(Server, FullQueueShedsWithOverloaded) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  AnalysisServer server(opts);
  auto sink = std::make_shared<CollectingSink>();

  // Stage the scenario deterministically: the single worker must hold the
  // heavy request BEFORE the next two lines arrive, so wait for it to
  // leave the queue (compute takes milliseconds; the admits below take
  // microseconds, so the worker is still busy for them).
  server.admit_line(request_line("\"heavy\"", kMatmultSource), sink);
  for (int i = 0; i < 2000 && server.queued() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queued(), 0u) << "worker never picked up the request";
  // Distinct kinds of the same source: different cache keys, so the third
  // line cannot coalesce onto the second -- it must hit the full queue.
  server.admit_line(request_line("\"queued\"", kFirSource), sink);  // fills depth 1
  server.admit_line(request_line("\"shed\"", kFirSource, "analyze"), sink);  // queue full
  server.drain();

  auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 3u);
  auto shed = response_for(lines, "\"shed\"");
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(wire_status(*shed), static_cast<int>(ServeStatus::kOverloaded));
  auto queued = response_for(lines, "\"queued\"");
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(wire_status(*queued), 0);  // admitted work still completes
  auto heavy = response_for(lines, "\"heavy\"");
  ASSERT_TRUE(heavy.has_value());
  EXPECT_EQ(wire_status(*heavy), 0);
  EXPECT_EQ(server.metrics().counter("serve.overloaded"), 1);
}

// ---- single-flight coalescing ----------------------------------------------

TEST(Server, CoalescesIdenticalConcurrentColdRequests) {
  ServerOptions opts;
  opts.workers = 1;
  AnalysisServer server(opts);
  auto sink = std::make_shared<CollectingSink>();

  // Occupy the single worker with a heavy unrelated request so the five
  // identical lines below are all admitted while their leader is still
  // queued -- the flight stays open for every one of them.
  server.admit_line(request_line("\"busy\"", kMatmultSource), sink);
  for (int i = 0; i < 2000 && server.queued() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queued(), 0u) << "worker never picked up the request";
  constexpr int kIdentical = 5;
  for (int i = 0; i < kIdentical; ++i) {
    server.admit_line(request_line(std::to_string(i), kFirSource), sink);
  }
  server.drain();

  // Exactly two computations happened in this process: the busy request
  // and ONE shared run for the five identical cold requests.
  EXPECT_EQ(server.metrics().counter("runs.total"), 2);
  EXPECT_EQ(server.metrics().counter("runs.computed"), 2);
  EXPECT_EQ(server.metrics().counter("serve.coalesced"), kIdentical - 1);
  EXPECT_EQ(server.metrics().counter("serve.completed"), kIdentical + 1);

  // Every waiter got the leader's bytes verbatim.
  auto lines = sink->lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kIdentical) + 1);
  std::string shared_payload;
  for (int i = 0; i < kIdentical; ++i) {
    auto doc = response_for(lines, std::to_string(i));
    ASSERT_TRUE(doc.has_value()) << "missing response for id " << i;
    EXPECT_EQ(wire_status(*doc), 0);
    const WireValue* payload = doc->find("result")->find("result");
    ASSERT_NE(payload, nullptr);
    if (shared_payload.empty()) shared_payload = payload->raw;
    EXPECT_EQ(payload->raw, shared_payload);
  }
}

TEST(Server, DifferentKindsOfOneSourceNeverCoalesce) {
  // The flight identity is the cache key, which folds in the request
  // kind: lint and analyze of one source must both compute.
  ServerOptions opts;
  opts.workers = 1;
  AnalysisServer server(opts);
  std::string feed = request_line("\"l\"", kFirSource, "lint") + "\n" +
                     request_line("\"a\"", kFirSource, "analyze") + "\n";
  std::istringstream in(feed);
  std::ostringstream out;
  server.serve_streams(in, out);

  EXPECT_EQ(server.metrics().counter("runs.total"), 2);
  EXPECT_EQ(server.metrics().counter("serve.coalesced"), 0);
  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const char* id : {"\"l\"", "\"a\""}) {
    auto doc = response_for(lines, id);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(wire_status(*doc), 0);
  }
}

TEST(Server, CoalescingDisabledRunsEveryRequest) {
  ServerOptions opts;
  opts.workers = 1;
  opts.coalesce = false;
  AnalysisServer server(opts);
  std::string line = request_line("\"x\"", kFirSource, "analyze") + "\n";
  std::istringstream in(line + line);
  std::ostringstream out;
  server.serve_streams(in, out);

  // Both lines went through the queue; the second was a warm cache hit,
  // not a coalesced waiter.
  EXPECT_EQ(server.metrics().counter("runs.total"), 2);
  EXPECT_EQ(server.metrics().counter("serve.coalesced"), 0);
  EXPECT_EQ(server.cache().hits(), 1);
  EXPECT_EQ(server.cache().misses(), 1);
}

TEST(Server, ExpiredDeadlineReportsTimeout) {
  ServerOptions opts;
  opts.workers = 1;
  AnalysisServer server(opts);
  // While the worker grinds the heavy request, the second's microscopic
  // deadline expires in the queue; it must be abandoned at dispatch.
  std::string feed =
      request_line("\"heavy\"", kMatmultSource) + "\n" +
      request_line("\"late\"", kFirSource, "full", 0.0001) + "\n";
  std::istringstream in(feed);
  std::ostringstream out;
  server.serve_streams(in, out);

  auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  auto late = response_for(lines, "\"late\"");
  ASSERT_TRUE(late.has_value()) << out.str();
  EXPECT_EQ(wire_status(*late), static_cast<int>(ServeStatus::kTimeout));
  EXPECT_EQ(server.metrics().counter("serve.timeout"), 1);
  EXPECT_EQ(server.metrics().counter("serve.abandoned"), 1);
  auto heavy = response_for(lines, "\"heavy\"");
  ASSERT_TRUE(heavy.has_value());
  EXPECT_EQ(wire_status(*heavy), 0);
}

// ---- socket transport ------------------------------------------------------

std::string test_socket_path(const char* name) {
  // sun_path is ~108 bytes; TempDir can be long, so fall back to /tmp.
  std::string path = ::testing::TempDir() + name;
  if (path.size() >= 100) path = std::string("/tmp/") + name;
  ::unlink(path.c_str());
  return path;
}

// One-shot client: connect, send `line`, read one response line.
std::string roundtrip(const std::string& path, const std::string& line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string framed = line + '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);  // one request per connection
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
    size_t nl = response.find('\n');
    if (nl != std::string::npos) {
      response.resize(nl);
      break;
    }
  }
  ::close(fd);
  return response;
}

TEST(Server, SocketConcurrentClientsShareOneCacheAndDrainCleanly) {
  std::string path = test_socket_path("lmre_server_test.sock");
  ServerOptions opts;
  opts.workers = 4;
  AnalysisServer server(opts);
  std::thread serving([&] {
    EXPECT_EQ(server.serve_socket(path), ExitCode::kSuccess);
  });

  // Warm the cache with one sequential request (retrying around server
  // startup) so the concurrent phase has a deterministic hit pattern.
  std::string warm;
  for (int attempt = 0; attempt < 200 && warm.empty(); ++attempt) {
    warm = roundtrip(path, request_line("\"warm\"", kFirSource));
    if (warm.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(warm.empty()) << "server never came up on " << path;

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] =
          roundtrip(path, request_line(std::to_string(i), kFirSource));
    });
  }
  for (auto& t : clients) t.join();
  server.request_stop();
  serving.join();

  // Every client got the byte-identical payload; one compute, rest hits.
  std::string warm_payload;
  {
    auto doc = response_for({warm}, "\"warm\"");
    ASSERT_TRUE(doc.has_value()) << warm;
    const WireValue* payload = doc->find("result")->find("result");
    ASSERT_NE(payload, nullptr);
    warm_payload = payload->raw;
  }
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(responses[i].empty()) << "client " << i << " got no response";
    auto doc = response_for({responses[i]}, std::to_string(i));
    ASSERT_TRUE(doc.has_value()) << responses[i];
    EXPECT_EQ(wire_status(*doc), 0);
    const WireValue* payload = doc->find("result")->find("result");
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->raw, warm_payload);
  }
  // One cold compute for the warm-up.  Each concurrent client was either
  // a warm cache hit or rode an open flight (coalesced); both paths
  // splice the same cached bytes.
  EXPECT_EQ(server.cache().misses(), 1);
  EXPECT_EQ(server.cache().hits() + server.metrics().counter("serve.coalesced"),
            kClients);
  EXPECT_EQ(server.metrics().counter("serve.completed"), kClients + 1);
  ::unlink(path.c_str());
}

TEST(Server, SocketStopWithoutClientsExitsCleanly) {
  std::string path = test_socket_path("lmre_server_idle.sock");
  AnalysisServer server(ServerOptions{});
  std::thread serving([&] {
    EXPECT_EQ(server.serve_socket(path), ExitCode::kSuccess);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();
  serving.join();  // poll loop notices within ~100ms
  EXPECT_TRUE(server.stopped());
}

// Connect-only unix client (the disconnect tests need a raw fd).
int unix_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& line) {
  std::string framed = line + '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

TEST(Server, SocketClientKilledMidFlightDoesNotLoseOthersOrLeakReaders) {
  std::string path = test_socket_path("lmre_server_kill.sock");
  ServerOptions opts;
  opts.workers = 1;
  AnalysisServer server(opts);
  std::thread serving([&] {
    EXPECT_EQ(server.serve_socket(path), ExitCode::kSuccess);
  });

  // Wait for the listener (retry a throwaway round trip).
  std::string up;
  for (int attempt = 0; attempt < 200 && up.empty(); ++attempt) {
    up = roundtrip(path, request_line("\"up\"", kFirSource, "lint"));
    if (up.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(up.empty()) << "server never came up on " << path;

  // Client A sends a heavy request and dies without reading the answer.
  int a = unix_connect(path);
  ASSERT_GE(a, 0);
  send_all(a, request_line("\"doomed\"", kMatmultSource));
  ::close(a);

  // The accept loop must reap A's reader thread while still serving --
  // not at shutdown.  conn_closed counts joins inside the loop.
  for (int i = 0; i < 500 && server.metrics().counter("serve.conn_closed") < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.metrics().counter("serve.conn_closed"), 2)
      << "finished readers were not reaped during serving";

  // Client B's request, admitted while A's is in flight or computed
  // after it, must come back complete.
  std::string b = roundtrip(path, request_line("\"b\"", kFirSource, "analyze"));
  ASSERT_FALSE(b.empty()) << "surviving client lost its response";
  auto doc = response_for({b}, "\"b\"");
  ASSERT_TRUE(doc.has_value()) << b;
  EXPECT_EQ(wire_status(*doc), 0);

  server.request_stop();
  serving.join();
  // Every accepted connection's reader was joined exactly once, and every
  // admitted request completed (A's response was dropped at its dead
  // socket, after counting).
  EXPECT_EQ(server.metrics().counter("serve.conn_closed"),
            server.metrics().counter("serve.conn_opened"));
  EXPECT_EQ(server.metrics().counter("serve.completed"), 3);
  ::unlink(path.c_str());
}

// ---- tcp transport ---------------------------------------------------------

TEST(Tcp, ParseHostPort) {
  std::string error;
  auto hp = parse_host_port("127.0.0.1:8080", &error);
  ASSERT_TRUE(hp.has_value()) << error;
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 8080);

  hp = parse_host_port("localhost:0", &error);
  ASSERT_TRUE(hp.has_value()) << error;
  EXPECT_EQ(hp->port, 0);

  hp = parse_host_port(":9", &error);  // empty host = all interfaces
  ASSERT_TRUE(hp.has_value()) << error;
  EXPECT_EQ(hp->host, "");

  EXPECT_FALSE(parse_host_port("no-port", &error).has_value());
  EXPECT_FALSE(parse_host_port("h:99999", &error).has_value());
  EXPECT_FALSE(parse_host_port("h:-1", &error).has_value());
  EXPECT_FALSE(parse_host_port("h:12x", &error).has_value());
  EXPECT_FALSE(parse_host_port("some.dns.name:1", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// One-shot TCP client: connect, send `line`, read one response line.
std::string tcp_roundtrip(int port, const std::string& line) {
  int fd = tcp_connect("127.0.0.1", port);
  if (fd < 0) return "";
  send_all(fd, line);
  ::shutdown(fd, SHUT_WR);  // half-close: the response must still arrive
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
    size_t nl = response.find('\n');
    if (nl != std::string::npos) {
      response.resize(nl);
      break;
    }
  }
  ::close(fd);
  return response;
}

// Binds port 0 and waits for the kernel-assigned port to surface.
int wait_for_tcp_port(AnalysisServer& server) {
  for (int i = 0; i < 500 && server.tcp_port() < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return server.tcp_port();
}

TEST(Server, TcpResponseIsByteIdenticalToSessionPayload) {
  AnalysisSession direct;
  std::string expected =
      direct.run({kFirSource, "x.loop", AnalysisRequest::Kind::kFull}).payload;

  ServerOptions opts;
  opts.workers = 2;
  AnalysisServer server(opts);
  std::thread serving([&] {
    EXPECT_EQ(server.serve_tcp("127.0.0.1", 0), ExitCode::kSuccess);
  });
  int port = wait_for_tcp_port(server);
  ASSERT_GT(port, 0) << "serve_tcp never bound";

  std::string response = tcp_roundtrip(port, request_line("1", kFirSource));
  ASSERT_FALSE(response.empty());
  auto doc = response_for({response}, "1");
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(wire_status(*doc), 0);
  const WireValue* payload = doc->find("result")->find("result");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->raw, expected);  // the contract holds over TCP too

  server.request_stop();
  serving.join();
  EXPECT_EQ(server.metrics().counter("serve.completed"), 1);
  EXPECT_EQ(server.metrics().gauge_value("serve.tcp_conns_opened"), 1.0);
}

TEST(Server, TcpConcurrentClientsAllAnswered) {
  ServerOptions opts;
  opts.workers = 4;
  AnalysisServer server(opts);
  std::thread serving([&] {
    EXPECT_EQ(server.serve_tcp("127.0.0.1", 0), ExitCode::kSuccess);
  });
  int port = wait_for_tcp_port(server);
  ASSERT_GT(port, 0);

  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] = tcp_roundtrip(
          port, request_line(std::to_string(i),
                             i % 2 ? kFirSource : kMatmultSource, "analyze"));
    });
  }
  for (auto& t : clients) t.join();
  server.request_stop();
  serving.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(responses[i].empty()) << "client " << i << " got no response";
    auto doc = response_for({responses[i]}, std::to_string(i));
    ASSERT_TRUE(doc.has_value()) << responses[i];
    EXPECT_EQ(wire_status(*doc), 0);
  }
  EXPECT_EQ(server.metrics().counter("serve.completed"), kClients);
}

TEST(Server, TcpClientVanishingMidFlightDoesNotLoseOthers) {
  ServerOptions opts;
  opts.workers = 1;
  AnalysisServer server(opts);
  std::thread serving([&] {
    EXPECT_EQ(server.serve_tcp("127.0.0.1", 0), ExitCode::kSuccess);
  });
  int port = wait_for_tcp_port(server);
  ASSERT_GT(port, 0);

  // Client A fires a heavy request and slams the connection shut without
  // reading; its response has nowhere to go.
  int a = tcp_connect("127.0.0.1", port);
  ASSERT_GE(a, 0);
  send_all(a, request_line("\"doomed\"", kMatmultSource));
  ::close(a);

  // Client B must be completely unaffected.
  std::string b = tcp_roundtrip(port, request_line("\"b\"", kFirSource));
  ASSERT_FALSE(b.empty()) << "surviving client lost its response";
  auto doc = response_for({b}, "\"b\"");
  ASSERT_TRUE(doc.has_value()) << b;
  EXPECT_EQ(wire_status(*doc), 0);

  server.request_stop();
  serving.join();
  // Both requests were admitted and completed; A's bytes were dropped at
  // its dead socket without disturbing the loop or a worker.
  EXPECT_EQ(server.metrics().counter("serve.completed"), 2);
  EXPECT_EQ(server.metrics().gauge_value("serve.tcp_conns_opened"), 2.0);
  EXPECT_EQ(server.metrics().gauge_value("serve.tcp_conns_closed"), 2.0);
}

TEST(Server, TcpStopWithoutClientsExitsCleanly) {
  AnalysisServer server(ServerOptions{});
  std::thread serving([&] {
    EXPECT_EQ(server.serve_tcp("127.0.0.1", 0), ExitCode::kSuccess);
  });
  ASSERT_GT(wait_for_tcp_port(server), 0);
  server.request_stop();
  serving.join();
  EXPECT_TRUE(server.stopped());
}

TEST(Server, TcpBindFailureReportsError) {
  AnalysisServer blocker(ServerOptions{});
  std::thread serving([&] { blocker.serve_tcp("127.0.0.1", 0); });
  int port = wait_for_tcp_port(blocker);
  ASSERT_GT(port, 0);

  AnalysisServer server(ServerOptions{});
  std::string error;
  EXPECT_EQ(server.serve_tcp("127.0.0.1", port, &error), ExitCode::kFailure);
  EXPECT_NE(error.find("bind"), std::string::npos) << error;

  blocker.request_stop();
  serving.join();
}

}  // namespace
}  // namespace lmre
