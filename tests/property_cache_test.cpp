// Randomized property suite for the memoization contract: over ~200 random
// legal nests (the generator pattern of property_parallel_test), a cached
// AnalysisResult must be bit-identical to the freshly computed one -- same
// session, fresh session warming from a disk cache, and at every thread
// count.  Fixed seeds so failures reproduce.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>

#include "ir/builder.h"
#include "ir/parser.h"
#include "runtime/session.h"

namespace lmre {
namespace {

std::mt19937 rng_for(int seed) { return std::mt19937(0xBADC0DE + seed); }

// Random 2-deep nest with a write/read pair of uniformly generated 2-d
// references.
LoopNest random_nest2(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 11), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 6, n2 + 6});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3})
      .read(a, {{1, 0}, {0, 1}}, {off(rng) + 3, off(rng) + 3});
  return b.build();
}

// Random 3-deep nest over a 2-d array with a skewed affine access plus a
// 1-d reduction target.
LoopNest random_nest3(std::mt19937& rng) {
  std::uniform_int_distribution<Int> bnd(3, 7), coef(0, 2), off(-2, 2);
  Int n1 = bnd(rng), n2 = bnd(rng), n3 = bnd(rng);
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2).loop("k", 1, n3);
  ArrayId a = b.array("A", {60, 60});
  ArrayId s = b.array("S", {40});
  Int c1 = coef(rng), c2 = coef(rng) + 1;
  b.statement().read(a, IntMat{{1, 0, c1}, {0, 1, c2}}, {off(rng) + 5, off(rng) + 5});
  b.statement().write(s, IntMat{{1, 1, 0}}, IntVec{4});
  return b.build();
}

// Cached and uncached results for the same source must agree byte-for-byte
// in every field a caller can observe.
void expect_cache_transparent(const std::string& source, int seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  AnalysisRequest req{source, "prop.loop", AnalysisRequest::Kind::kAnalyze};

  AnalysisSession session;
  AnalysisResult fresh = session.run(req);
  AnalysisResult cached = session.run(req);
  ASSERT_FALSE(fresh.cache_hit);
  ASSERT_TRUE(cached.cache_hit);
  EXPECT_EQ(fresh.payload, cached.payload);
  EXPECT_EQ(fresh.status, cached.status);
  EXPECT_EQ(fresh.key, cached.key);

  // A different thread count must land on the same key and payload.
  SessionOptions wide;
  wide.run.threads = 4;
  AnalysisSession parallel(wide);
  AnalysisResult wide_fresh = parallel.run(req);
  EXPECT_EQ(wide_fresh.key, fresh.key);
  EXPECT_EQ(wide_fresh.payload, fresh.payload);
  EXPECT_EQ(wide_fresh.status, fresh.status);
}

class CacheProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheProperty, CachedEqualsFresh2Deep) {
  auto rng = rng_for(GetParam());
  expect_cache_transparent(to_dsl(random_nest2(rng)), GetParam());
}

TEST_P(CacheProperty, CachedEqualsFresh3Deep) {
  auto rng = rng_for(1000 + GetParam());
  expect_cache_transparent(to_dsl(random_nest3(rng)), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheProperty, ::testing::Range(0, 100));

// Disk-layer transparency: a fresh process (modelled by a fresh session)
// pointed at the same --cache-dir serves byte-identical results.
TEST(CachePropertyDisk, FreshSessionsAgreeThroughDisk) {
  std::string dir = ::testing::TempDir() + "lmre_prop_disk";
  std::filesystem::remove_all(dir);
  SessionOptions opts;
  opts.cache_dir = dir;
  for (int seed = 0; seed < 20; ++seed) {
    auto rng = rng_for(5000 + seed);
    AnalysisRequest req{to_dsl(random_nest2(rng)), "disk.loop",
                        AnalysisRequest::Kind::kFull};
    AnalysisResult cold = AnalysisSession(opts).run(req);
    AnalysisResult warm = AnalysisSession(opts).run(req);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(cold.payload, warm.payload);
    EXPECT_EQ(cold.status, warm.status);
  }
}

}  // namespace
}  // namespace lmre
