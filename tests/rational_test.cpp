#include <gtest/gtest.h>

#include "linalg/rational.h"
#include "support/error.h"

namespace lmre {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational s(-6, 4);
  EXPECT_EQ(s.num(), -3);
  EXPECT_EQ(s.den(), 2);
  Rational t(6, -4);
  EXPECT_EQ(t.num(), -3);
  EXPECT_EQ(t.den(), 2);
  Rational z(0, -17);
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), InvalidArgument);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), InvalidArgument);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7), Rational(13, 2));
  EXPECT_GE(Rational(3), Rational(3));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, IsIntegerAndTrunc) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_FALSE(Rational(9, 4).is_integer());
  EXPECT_EQ(Rational(9, 4).trunc(), 2);
  EXPECT_EQ(Rational(-9, 4).trunc(), -2);
}

TEST(Rational, AbsAndStr) {
  EXPECT_EQ(Rational(-3, 2).abs(), Rational(3, 2));
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(rat_min(Rational(1, 2), Rational(2, 3)), Rational(1, 2));
  EXPECT_EQ(rat_max(Rational(1, 2), Rational(2, 3)), Rational(2, 3));
}

TEST(Rational, WorkedExampleFromPaper) {
  // Section 4.2: (9/2 + 1) * 4 == 22, the paper's MWS estimate.
  Rational span(9, 2);
  Rational est = (span + Rational(1)) * Rational(4);
  EXPECT_EQ(est, Rational(22));
  EXPECT_TRUE(est.is_integer());
}

TEST(Rational, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
  Int big = Int{1} << 40;
  Rational a(big, 3), b(3, big);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, SumKeepsDenominatorsSmall) {
  Rational acc(0);
  for (int i = 1; i <= 50; ++i) acc += Rational(1, 2);
  EXPECT_EQ(acc, Rational(25));
}

}  // namespace
}  // namespace lmre
