// Diagnostic-contract tests for the verify kind: every file in
// tests/bad_loops/verify/ is VALID DSL paired with a transform plan whose
// verdict must map onto the stable verify diagnostics
// (LMRE-E013/E019/W014/W020/N016/N021/N022).  Each file declares its own
// contract in header comment lines:
//
//   # plan: -1 0; 0 1 | tile:4,4     (omitted = audit the optimizer's plan)
//   # exit: 3                        (expected ExitCode value)
//   # expect: LMRE-E019 <substring of the diagnostic message>
//
// The requests run through AnalysisSession with Kind::kVerify -- the same
// path `lmre serve` and `lmre batch` use -- asserting the declared exit
// code and that every expected id + message substring appears in the JSON
// payload.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/session.h"

namespace lmre {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
fs::path corpus_dir() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    fs::path dir = fs::path(base) / "tests" / "bad_loops" / "verify";
    if (fs::is_directory(dir)) return dir;
  }
  return {};
}

// One "# tag: value" header line, or empty when absent.
std::string header(const std::string& source, const std::string& tag) {
  std::istringstream lines(source);
  std::string line;
  const std::string prefix = "# " + tag + ": ";
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) return line.substr(prefix.size());
  }
  return "";
}

// "# expect: LMRE-E019 some message text" -> {"LMRE-E019", "some message
// text"}; collected from the file's leading comment block.
std::vector<std::pair<std::string, std::string>> expectations(
    const std::string& source) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream lines(source);
  std::string line;
  const std::string tag = "# expect: ";
  while (std::getline(lines, line)) {
    if (line.rfind(tag, 0) != 0) continue;
    std::string rest = line.substr(tag.size());
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed expect line: " << line;
      continue;
    }
    out.emplace_back(rest.substr(0, space), rest.substr(space + 1));
  }
  return out;
}

TEST(VerifyCorpus, VerdictsMapOntoStableDiagnostics) {
  fs::path dir = corpus_dir();
  ASSERT_FALSE(dir.empty()) << "tests/bad_loops/verify not found from cwd";

  AnalysisSession session;
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    ++files;
    std::string source = read_file(entry.path());
    ASSERT_FALSE(source.empty()) << entry.path();
    std::vector<std::pair<std::string, std::string>> want = expectations(source);
    ASSERT_FALSE(want.empty())
        << entry.path() << " has no '# expect:' header lines";
    std::string exit_line = header(source, "exit");
    ASSERT_FALSE(exit_line.empty())
        << entry.path() << " has no '# exit:' header line";

    AnalysisRequest req;
    req.source = source;
    req.file = entry.path().filename().string();
    req.options = AnalysisRequest::Verify{header(source, "plan")};
    AnalysisResult res = session.run(req);

    EXPECT_EQ(static_cast<int>(res.status), std::stoi(exit_line))
        << entry.path() << "\n" << res.payload;
    for (const auto& [id, message] : want) {
      EXPECT_NE(res.payload.find(id), std::string::npos)
          << entry.path() << ": payload lacks " << id << "\n" << res.payload;
      EXPECT_NE(res.payload.find(message), std::string::npos)
          << entry.path() << ": payload lacks \"" << message << "\"\n"
          << res.payload;
    }
  }
  EXPECT_GE(files, 6u) << "verify corpus shrank unexpectedly";
}

}  // namespace
}  // namespace lmre
