// One consolidated test per numbered claim in the paper, so the mapping
// "paper statement -> reproduced value" is checkable in a single file.
// EXPERIMENTS.md cross-references these tests.

#include <gtest/gtest.h>

#include "analysis/distinct.h"
#include "analysis/nonuniform.h"
#include "analysis/reuse.h"
#include "analysis/window.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "symbolic/derive.h"
#include "transform/minimizer.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(Paper, Sec22_Example1_ReuseArea56) {
  // "The total reuse (i.e., the area of the shaded region) is the same in
  // both the examples which is (10-3)(10-2) = 56."
  EXPECT_EQ(estimate_distinct(codes::example_1a(), 0).reuse, 56);
  EXPECT_EQ(estimate_distinct(codes::example_1b(), 0).reuse, 56);
}

TEST(Paper, Sec22_Example1b_MaxReuseCount) {
  // "the maximum reuse count for an element is ceil(10/3) = 4" -- i.e. some
  // element of A[2i+3j] is touched 4 times.
  TraceStats s = simulate(codes::example_1b());
  // max accesses per element = total/distinct is an average; verify via the
  // trace: 100 accesses over 44 elements with max chain along (3,-2).
  EXPECT_EQ(s.total_accesses, 100);
  EXPECT_EQ(s.distinct_total, 44);
}

TEST(Paper, Sec31_Example2_DependenceAndReuse) {
  // "there is a dependence (1,-2) from S1 to S2"; reuse (N1-1)(N2-2).
  LoopNest nest = codes::example_2(10, 10);
  auto info = analyze_dependences(nest);
  ASSERT_EQ(info.deps.size(), 1u);
  EXPECT_EQ(info.deps[0].distance, (IntVec{1, -2}));
  EXPECT_EQ(estimate_distinct(nest, 0).reuse, 9 * 8);
}

TEST(Paper, Sec31_Example3_Reuse261_Distinct139) {
  // "reuse = 90 + 90 + 81 = 261" and "A_d = 400 - 261 = 139".
  DistinctEstimate e = estimate_distinct(codes::example_3(), 0);
  EXPECT_EQ(e.reuse, 261);
  EXPECT_EQ(e.distinct, 139);
}

TEST(Paper, Sec32_Example4_Reuse120_Distinct80) {
  // "reuse = (20-5)(10-2) = 120" and "A_d = 200 - 120 = 80".
  DistinctEstimate e = estimate_distinct(codes::example_4(), 0);
  EXPECT_EQ(e.reuse, 120);
  EXPECT_EQ(e.distinct, 80);
  EXPECT_EQ(simulate(codes::example_4()).distinct_total, 80);
}

TEST(Paper, Sec32_Example5_Reuse4131_Distinct1869) {
  // "reuse = (10-1)(20-3)(30-3) = 4131"; "A_d = 6000 - 4131 = 1869".
  DistinctEstimate e = estimate_distinct(codes::example_5(), 0);
  EXPECT_EQ(e.reuse, 4131);
  EXPECT_EQ(e.distinct, 1869);
  EXPECT_EQ(simulate(codes::example_5()).distinct_total, 1869);
}

TEST(Paper, Sec32_Example6_Bounds) {
  // "LB1=0, LB2=4, UB1=190, UB2=137"; upper 191; lower 179; actual 181
  // (our oracle measures 182 for the loop as printed -- within bounds).
  NonUniformBounds b = nonuniform_bounds(codes::example_6(), 0);
  EXPECT_EQ(b.lb_min, 0);
  EXPECT_EQ(b.ub_max, 190);
  EXPECT_EQ(b.upper, 191);
  EXPECT_EQ(b.lower_paper, 179);
  Int actual = simulate(codes::example_6()).distinct_total;
  EXPECT_GE(actual, b.lower_paper);
  EXPECT_LE(actual, b.upper);
}

TEST(Paper, Sec4_Example7_TransformLadder) {
  // Eisenbeis et al. window costs: 89 original, 41 interchange, 86
  // reversal, 36 reversed interchange; compound transformation -> 1.
  // Our exact oracle measures the same ladder shifted by a small constant
  // (86 / 37 / 84 / 34) and the compound transform reaches exactly 1.
  LoopNest nest = codes::example_7();
  EXPECT_EQ(simulate(nest).mws_total, 86);
  EXPECT_EQ(simulate_transformed(nest, interchange(2, 0, 1)).mws_total, 37);
  EXPECT_EQ(simulate_transformed(nest, reversal(2, 1)).mws_total, 84);
  EXPECT_EQ(simulate_transformed(nest, IntMat{{0, 1}, {-1, 0}}).mws_total, 34);
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(simulate_transformed(nest, res->transform).mws_total, 1);
}

TEST(Paper, Sec4_Example8_Distances) {
  // "The distance vectors for this loop are: (3,-2); (2,0); (5,-2)".
  auto ds = analyze_dependences(codes::example_8()).distance_vectors(false);
  ASSERT_EQ(ds.size(), 3u);
}

TEST(Paper, Sec4_Example8_LiPingaliRowsIllegal) {
  // "(2,5).(3,-2) < 0" and "(-2,5).(2,0) < 0".
  EXPECT_LT(IntVec({2, 5}).dot(IntVec{3, -2}), 0);
  EXPECT_LT(IntVec({-2, 5}).dot(IntVec{2, 0}), 0);
}

TEST(Paper, Sec4_Example8_WindowFiftyToTwentyOne) {
  // "The maximum window size is 50" (eq. 2 estimate) and "Applying T
  // reduces the maximum window size to 21".
  LoopNest nest = codes::example_8();
  EXPECT_EQ(mws2_estimate(IntVec{2, 5}, nest.bounds(), 1, 0), Rational(50));
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(simulate_transformed(nest, res->transform).mws_total, 21);
}

TEST(Paper, Sec42_WorkedExample_EstimateTwentyTwo) {
  // "a=2, b=3 is an optimal solution, giving a minimum MWS estimate of 22
  // which is very close to the actual minimum MWS which is 21."
  auto res = minimize_mws_2d(codes::example_8());
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->transform.row(0), (IntVec{2, 3}));
  EXPECT_EQ(res->predicted_mws, Rational(22));
}

TEST(Paper, Sec42_LegalityConstraints) {
  // "3a-2b >= 0, 2a >= 0, 5a-2b >= 0" for row (2,3).
  EXPECT_GE(3 * 2 - 2 * 3, 0);
  EXPECT_GE(2 * 2, 0);
  EXPECT_GE(5 * 2 - 2 * 3, 0);
  auto deps = analyze_dependences(codes::example_8()).distance_vectors(true);
  IntMat t{{2, 3}, {1, 1}};
  EXPECT_TRUE(is_tileable(t, deps));
}

TEST(Paper, Sec43_Example10_Window540) {
  // "the maximum window size is: MWS = 1(30-3)(20-3) + 3(30-3) = 540".
  LoopNest nest = codes::example_5();
  EXPECT_EQ(mws3_paper(IntVec{1, 3, -3}, nest.bounds()) - 1, 540);
  EXPECT_EQ(simulate(nest).mws_total, 540);
}

TEST(Paper, Sec43_Example10_ReuseLevelOneToThree) {
  // "the reuse vector initially is (1,3,-3) whose level is 1 ... after the
  // transformation the reuse vector becomes (0,0,1) whose level is 3".
  EXPECT_EQ(IntVec({1, 3, -3}).level(), 1);
  auto t = embedding_transform(codes::example_5(), 0);
  ASSERT_TRUE(t.has_value());
  IntVec tv = ((*t) * IntVec{1, 3, -3}).primitive();
  EXPECT_EQ(tv, (IntVec{0, 0, 1}));
  EXPECT_EQ(tv.level(), 3);
}

TEST(Paper, Sec32_Example6_BoundsParallelPath) {
  // The published Example 6 numbers (UB 191 / LB 179 / actual within
  // bounds) must pin the slab-parallel oracle exactly like the serial one.
  NonUniformBounds b = nonuniform_bounds(codes::example_6(), 0);
  EXPECT_EQ(b.upper, 191);
  EXPECT_EQ(b.lower_paper, 179);
  Int serial = simulate(codes::example_6()).distinct_total;
  for (int threads : {2, 4}) {
    Int parallel = simulate(codes::example_6(), threads).distinct_total;
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
    EXPECT_GE(parallel, b.lower_paper);
    EXPECT_LE(parallel, b.upper);
  }
}

TEST(Paper, Sec43_Example10_Window540ParallelPath) {
  // Example 10's MWS (540) through the chunked simulation, and the Section
  // 4.2 search numbers (row (2,3), estimate 22) through the parallel
  // minimizer -- the published values pin both code paths.
  LoopNest ex10 = codes::example_5();
  for (int threads : {2, 4}) {
    EXPECT_EQ(simulate(ex10, threads).mws_total, 540) << "threads=" << threads;
  }
  MinimizerOptions par;
  par.threads = 4;
  auto res = minimize_mws_2d(codes::example_8(), par);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->transform.row(0), (IntVec{2, 3}));
  EXPECT_EQ(res->predicted_mws, Rational(22));
  auto serial = minimize_mws_2d(codes::example_8());
  ASSERT_TRUE(serial.has_value());
  EXPECT_EQ(res->candidates, serial->candidates);
  EXPECT_EQ(res->transform, serial->transform);
}

TEST(Paper, Sec5_Figure2_MatmultRow) {
  // matmult: default 768 (= 3 * 16^2), MWS 273 before AND after (64.4%).
  LoopNest nest = codes::kernel_matmult(16);
  EXPECT_EQ(nest.default_memory(), 768);
  EXPECT_EQ(simulate(nest).mws_total, 273);
  OptimizeResult res = optimize_locality(nest);
  EXPECT_EQ(simulate_transformed(nest, res.transform).mws_total, 273);
}

TEST(Paper, SymbolicClosedFormsReproducePublishedNumbers) {
  // The symbolic path (src/symbolic) must evaluate to the same published
  // numbers the concrete estimators/oracle pin above -- and, being
  // bound-independent, extend them to other instantiations for free.
  {
    // Section 3.1, Example 2: reuse (N1-1)(N2-2) = 72 at 10x10.
    SymbolicResult r = symbolic_analysis(codes::example_2(10, 10));
    ASSERT_TRUE(r.reuse_total.has_value());
    EXPECT_EQ(r.reuse_total->eval({10, 10}), 72);
    EXPECT_EQ(r.reuse_total->eval({100, 50}), 99 * 48);
  }
  {
    // Section 3.1, Example 3: the paper's pairwise sum estimates reuse
    // 90+90+81 = 261 hence distinct 139, over-counting the corner overlap
    // of the four offsets.  The symbolic path is exact by contract, so it
    // must land on the oracle's 121 (= 11*11) instead -- the published
    // estimate stays pinned by Sec31_Example3_Reuse261_Distinct139 above.
    SymbolicResult r = symbolic_analysis(codes::example_3());
    ASSERT_TRUE(r.reuse_total.has_value());
    ASSERT_TRUE(r.distinct_total.has_value());
    EXPECT_EQ(r.distinct_total->eval({10, 10}),
              simulate(codes::example_3()).distinct_total);
    EXPECT_EQ(r.distinct_total->eval({10, 10}), 121);
    EXPECT_EQ(r.reuse_total->eval({10, 10}), 400 - 121);
  }
  {
    // Section 3.2, Example 4: reuse (20-5)(10-2) = 120, distinct 80.
    SymbolicResult r = symbolic_analysis(codes::example_4());
    ASSERT_TRUE(r.reuse_total.has_value());
    ASSERT_TRUE(r.distinct_total.has_value());
    EXPECT_EQ(r.reuse_total->eval({20, 10}), 120);
    EXPECT_EQ(r.distinct_total->eval({20, 10}), 80);
  }
  {
    // Sections 3.2 and 4.3, Example 5 / Example 10: reuse 4131, distinct
    // 1869, and the window formula value 540.
    SymbolicResult r = symbolic_analysis(codes::example_5());
    ASSERT_TRUE(r.reuse_total.has_value());
    ASSERT_TRUE(r.distinct_total.has_value());
    ASSERT_TRUE(r.window_total.has_value());
    EXPECT_EQ(r.reuse_total->eval({10, 20, 30}), 4131);
    EXPECT_EQ(r.distinct_total->eval({10, 20, 30}), 1869);
    EXPECT_EQ(r.window_total->eval({10, 20, 30}), 540);
  }
  {
    // Section 4.2, Example 8 under T = [[2,3],[1,1]]: the eq. (2) window
    // estimate evaluates to the published 22.
    SymbolicResult r = symbolic_analysis_transformed(codes::example_8(),
                                                     IntMat{{2, 3}, {1, 1}});
    ASSERT_TRUE(r.window_estimate.has_value());
    EXPECT_NE(r.window_estimate->find("= 22 (estimate)"), std::string::npos)
        << *r.window_estimate;
  }
}

TEST(Paper, Sec5_Figure2_AverageReductionsLarge) {
  // "estimating the memory consumption of the original codes indicates a
  // 81.9% saving, and that for the optimized codes brings about an average
  // saving of 92.3%" -- our suite reproduces the shape: both averages are
  // large and the optimized one dominates.
  double sum_unopt = 0, sum_opt = 0;
  auto suite = codes::figure2_suite();
  for (auto& entry : suite) {
    Int def = entry.nest.default_memory();
    Int unopt = simulate(entry.nest).mws_total;
    OptimizeResult res = optimize_locality(entry.nest);
    Int opt = simulate_transformed(entry.nest, res.transform).mws_total;
    sum_unopt += 1.0 - static_cast<double>(unopt) / static_cast<double>(def);
    sum_opt += 1.0 - static_cast<double>(opt) / static_cast<double>(def);
  }
  double avg_unopt = sum_unopt / suite.size();
  double avg_opt = sum_opt / suite.size();
  EXPECT_GT(avg_unopt, 0.70);  // paper: 81.9%
  EXPECT_GT(avg_opt, 0.80);    // paper: 92.3%
  EXPECT_GE(avg_opt, avg_unopt);
}

}  // namespace
}  // namespace lmre
