// Decline-path tests for the symbolic analysis kind: every file in
// tests/bad_loops/symbolic/ is VALID DSL (the parser corpus in
// tests/bad_loops/ itself stays parse-error-only) that the symbolic path
// must refuse with stable diagnostics instead of emitting a formula it
// cannot prove.  Each file declares its own contract in "# expect:"
// header lines:
//
//   # expect: LMRE-E017 <substring of the diagnostic message>
//
// The requests run through AnalysisSession with Kind::kSymbolic -- the
// same path `lmre serve` and `lmre batch` use -- asserting exit
// kDiagnostics and that every expected id + message substring appears in
// the JSON payload.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/session.h"

namespace lmre {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The test binary runs from <build>/tests; probe plausible source roots.
fs::path corpus_dir() {
  for (const char* base : {"", "../", "../../", "../../../"}) {
    fs::path dir = fs::path(base) / "tests" / "bad_loops" / "symbolic";
    if (fs::is_directory(dir)) return dir;
  }
  return {};
}

// "# expect: LMRE-E017 some message text" -> {"LMRE-E017", "some message
// text"}; collected from the file's leading comment block.
std::vector<std::pair<std::string, std::string>> expectations(
    const std::string& source) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream lines(source);
  std::string line;
  const std::string tag = "# expect: ";
  while (std::getline(lines, line)) {
    if (line.rfind(tag, 0) != 0) continue;
    std::string rest = line.substr(tag.size());
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed expect line: " << line;
      continue;
    }
    out.emplace_back(rest.substr(0, space), rest.substr(space + 1));
  }
  return out;
}

TEST(SymbolicReject, CorpusDeclinesWithStableDiagnostics) {
  fs::path dir = corpus_dir();
  ASSERT_FALSE(dir.empty()) << "tests/bad_loops/symbolic not found from cwd";

  AnalysisSession session;
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".loop") continue;
    ++files;
    std::string source = read_file(entry.path());
    ASSERT_FALSE(source.empty()) << entry.path();
    std::vector<std::pair<std::string, std::string>> want = expectations(source);
    ASSERT_FALSE(want.empty())
        << entry.path() << " has no '# expect:' header lines";

    AnalysisRequest req;
    req.source = source;
    req.file = entry.path().filename().string();
    req.set_kind(AnalysisRequest::Kind::kSymbolic);
    AnalysisResult res = session.run(req);

    EXPECT_EQ(res.status, ExitCode::kDiagnostics) << entry.path();
    for (const auto& [id, message] : want) {
      EXPECT_NE(res.payload.find(id), std::string::npos)
          << entry.path() << ": payload lacks " << id << "\n" << res.payload;
      EXPECT_NE(res.payload.find(message), std::string::npos)
          << entry.path() << ": payload lacks \"" << message << "\"\n"
          << res.payload;
    }
  }
  EXPECT_GE(files, 4u) << "symbolic decline corpus shrank unexpectedly";
}

}  // namespace
}  // namespace lmre
