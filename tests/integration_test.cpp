// End-to-end integration: the full pipeline from DSL text to a sized,
// verified memory system, crossing every major module boundary.

#include <gtest/gtest.h>

#include "alloc/scratchpad.h"
#include "analysis/report.h"
#include "cachesim/cache.h"
#include "dependence/dependence.h"
#include "energy/model.h"
#include "exact/oracle.h"
#include "exact/stack_distance.h"
#include "ir/parser.h"
#include "layout/spatial.h"
#include "program/fusion.h"
#include "transform/minimizer.h"
#include "transform/parallel.h"
#include "transform/tiling.h"
#include "transform/transformed.h"
#include "transform/unimodular.h"

namespace lmre {
namespace {

TEST(Integration, DslToSizedScratchpad) {
  // Parse -> analyze -> optimize -> allocate -> verify with a cache.
  LoopNest nest = parse_nest(R"(
    for i = 1 to 30
      for j = 1 to 12
        X[3*i + 4*j] = X[3*i + 4*j + 5];
  )");

  MemoryReport before = analyze_memory(nest);
  ASSERT_TRUE(before.mws_exact_total.has_value());

  OptimizeResult opt = optimize_locality(nest);
  TransformedNest tn(nest, opt.transform);
  Int after = tn.simulate().mws_total;
  EXPECT_LE(after, *before.mws_exact_total);

  // Allocation in the transformed order achieves exactly the new window.
  Allocation alloc = allocate_scratchpad(nest, &opt.transform);
  EXPECT_TRUE(alloc.verified);
  EXPECT_EQ(alloc.slots, after);

  // A cache of that size (plus LRU headroom) eliminates capacity misses in
  // the transformed order.
  StackDistanceProfile profile = stack_distances(nest, &opt.transform);
  EXPECT_EQ(profile.lru_misses(profile.max_distance()), profile.cold_accesses);

  // And the energy model prices the win.
  SizingComparison cmp = compare_sizing(nest, after);
  EXPECT_GT(cmp.energy_saving(), 0.0);
}

TEST(Integration, ProgramFusionThenAnalysis) {
  Program p = parse_program(R"(
    array T[40];
    phase build {
      for i = 1 to 40
        T[i] = 0;
    }
    phase consume {
      for i = 1 to 40
        out[i] = T[i];
    }
  )");
  ProgramStats staged = p.simulate();
  EXPECT_EQ(staged.handoff[1], 40);

  auto fused = fuse_phases(p, 0);
  ASSERT_TRUE(fused.has_value());
  ProgramStats merged = fused->simulate();
  EXPECT_LE(merged.mws_total, 1);
  EXPECT_EQ(merged.distinct_total, staged.distinct_total);

  // The fused nest flows through the standard single-nest analyses.
  const LoopNest& nest = fused->phase_nest(0);
  Allocation alloc = allocate_scratchpad(nest);
  EXPECT_EQ(alloc.slots, simulate(nest).mws_total);
}

TEST(Integration, TilingAfterOptimization) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 25
      for j = 1 to 10
        X[2*i + 5*j + 1] = X[2*i + 5*j + 5];
  )");
  auto res = minimize_mws_2d(nest);
  ASSERT_TRUE(res.has_value());
  auto deps = analyze_dependences(nest).distance_vectors(true);
  ASSERT_TRUE(is_tileable(res->transform, deps));
  TilingReport rep = analyze_tiling(nest, res->transform, {4, 4});
  EXPECT_EQ(rep.stats.distinct_total, simulate(nest).distinct_total);
  EXPECT_GT(rep.tiles, 1);
  // Block transfers: every tile's footprint fits a small buffer.
  EXPECT_LE(rep.max_tile_footprint, 24);
}

TEST(Integration, LayoutAndLinesAfterTransform) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 16
      for j = 1 to 16
        A[i][j] = A[i-1][j];
  )");
  OptimizeResult opt = optimize_locality(nest);
  LayoutChoice choice = choose_layouts(nest, 4, &opt.transform);
  SpatialStats lines = simulate_lines(nest, choice.layouts, 4, &opt.transform);
  // Element window is 1 after interchange; line window stays small with the
  // matching layout.
  EXPECT_LE(lines.mws_lines, 3);
}

TEST(Integration, ParallelismReportAfterOptimization) {
  LoopNest nest = parse_nest(R"(
    for i = 1 to 12
      for j = 1 to 12
        A[i][j] = A[i-1][j];
  )");
  OptimizeResult opt = optimize_locality(nest);
  auto par = parallel_loops_after(nest, opt.transform);
  // The chosen transform (interchange) exposes an outer parallel loop.
  EXPECT_EQ(outer_parallel_depth(par), 1);
}

TEST(Integration, StridedDslThroughWholePipeline) {
  LoopNest nest = parse_nest(R"(
    for i = 2 to 40 step 2
      for j = 1 to 6
        B[i + j] = B[i + j - 2];
  )");
  MemoryReport rep = analyze_memory(nest);
  ASSERT_TRUE(rep.mws_exact_total.has_value());
  Allocation alloc = allocate_scratchpad(nest);
  EXPECT_EQ(alloc.slots, *rep.mws_exact_total);
  OptimizeResult opt = optimize_locality(nest);
  EXPECT_LE(simulate_transformed(nest, opt.transform).mws_total,
            *rep.mws_exact_total);
}

}  // namespace
}  // namespace lmre
