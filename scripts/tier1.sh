#!/usr/bin/env bash
# Tier-1 gate: the standard build + full ctest run, then two sanitizer
# passes -- ThreadSanitizer over the parallel-search suites and
# ASan+UBSan over the parser / lint / CLI suites (the layers that chew on
# untrusted input).  Run from the repo root:
#
#   scripts/tier1.sh
#
# The sanitizer stages build into build-tsan/ and build-asan/ so they
# never disturb the primary build tree.  All stages must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tier 1: ThreadSanitizer pass over the parallel suites =="
cmake -B build-tsan -S . -DLMRE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_search_test property_parallel_test
./build-tsan/tests/parallel_search_test
./build-tsan/tests/property_parallel_test

echo "== tier 1: ASan+UBSan pass over the input-handling suites =="
cmake -B build-asan -S . -DLMRE_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target parser_test lint_test cli_tool_test
./build-asan/tests/parser_test
./build-asan/tests/lint_test
./build-asan/tests/cli_tool_test

echo "tier 1 OK"
