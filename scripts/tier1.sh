#!/usr/bin/env bash
# Tier-1 gate: the standard build + full ctest run, then two sanitizer
# passes -- ThreadSanitizer over the parallel-search suites and
# ASan+UBSan over the parser / lint / CLI suites (the layers that chew on
# untrusted input).  Run from the repo root:
#
#   scripts/tier1.sh
#
# The sanitizer stages build into build-tsan/ and build-asan/ so they
# never disturb the primary build tree.  All stages must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tier 1: batch smoke (cold + warm cache, metrics emission) =="
# Run the batch verb twice against one cache dir: the cold run populates
# it, the warm run must serve from it, and both runs must agree byte for
# byte.  The metrics snapshot lands in BENCH_runtime.json (gitignored);
# the gate fails if it is missing or malformed.
BATCH_CACHE="$(mktemp -d)"
trap 'rm -rf "$BATCH_CACHE"' EXIT
./build/tools/lmre batch --json --cache-dir="$BATCH_CACHE" examples/loops \
  > "$BATCH_CACHE/cold.json"
./build/tools/lmre batch --json --cache-dir="$BATCH_CACHE" \
  --metrics=BENCH_runtime.json examples/loops > "$BATCH_CACHE/warm.json"
cmp "$BATCH_CACHE/cold.json" "$BATCH_CACHE/warm.json" \
  || { echo "FAIL: warm batch output differs from cold"; exit 1; }
[ -s BENCH_runtime.json ] \
  || { echo "FAIL: BENCH_runtime.json missing or empty"; exit 1; }
grep -q '"schema_version"' BENCH_runtime.json \
  || { echo "FAIL: BENCH_runtime.json lacks the versioned envelope"; exit 1; }
grep -q '"cache.hit_rate": 1' BENCH_runtime.json \
  || { echo "FAIL: warm batch did not hit the cache for every file"; exit 1; }

echo "== tier 1: ThreadSanitizer pass over the parallel suites =="
cmake -B build-tsan -S . -DLMRE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_search_test property_parallel_test
./build-tsan/tests/parallel_search_test
./build-tsan/tests/property_parallel_test

echo "== tier 1: ASan+UBSan pass over the input-handling suites =="
cmake -B build-asan -S . -DLMRE_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target parser_test lint_test cli_tool_test
./build-asan/tests/parser_test
./build-asan/tests/lint_test
./build-asan/tests/cli_tool_test

echo "tier 1 OK"
