#!/usr/bin/env bash
# Tier-1 gate: the standard build + full ctest run, a static-analysis
# stage (clang-tidy when available + -Werror strict rebuild with a verify
# smoke), a batch smoke, a serve smoke (socket round trips byte-identical
# to batch, overload shedding, single-flight coalescing, graceful SIGTERM
# drain), a serve-load smoke (CLI TCP round trip byte-identical to the
# Unix transport + the bench_server --check load-harness gate), then two
# sanitizer passes --
# ThreadSanitizer over the parallel-search + shared-cache/server suites
# and ASan+UBSan over the parser / lint / CLI suites (the layers that
# chew on untrusted input) -- plus a symbolic-smoke stage (closed forms
# differential vs the oracle under ASan, golden + decline corpora), the
# oracle perf gate, a codegen smoke (ASan emission, system-cc compile
# + execute round trip, bench_codegen --check latency gate), and an
# mrc-smoke stage (ASan property subset, pinned curve envelopes, the
# Example 10 knee, bench_mrc --check sampling-error gate).  Run from
# the repo root:
#
#   scripts/tier1.sh
#
# The sanitizer stages build into build-tsan/ and build-asan/ so they
# never disturb the primary build tree.  All stages must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tier 1: static analysis (clang-tidy + -Werror strict build) =="
# Full rebuild with warnings promoted to errors and clang-tidy running
# alongside the compiler (profile in .clang-tidy, WarningsAsErrors there
# too).  When the container lacks a clang-tidy binary the CMake option
# degrades to a -Werror-only gate with a warning -- still a hard stop for
# any compiler diagnostic.  Builds into build-strict/ so the primary tree
# keeps its plain flags, then runs the verify smoke against the strict
# binary: the prover must certify the optimizer's Example 8 plan and
# refute the hand-built reversal with a checker-validated witness.
cmake -B build-strict -S . -DLMRE_WERROR=ON -DLMRE_CLANG_TIDY=ON >/dev/null
cmake --build build-strict -j "$JOBS"
./build-strict/tools/lmre verify examples/loops/example8.loop >/dev/null \
  || { echo "FAIL: strict-build verify audit of example8 did not certify"; exit 1; }
if ./build-strict/tools/lmre verify --plan="-1 0; 0 1" \
    examples/loops/example8.loop > /tmp/lmre_strict_verify.out; then
  echo "FAIL: strict-build verify certified an illegal reversal plan"; exit 1
fi
grep -q 'LMRE-E019' /tmp/lmre_strict_verify.out \
  || { echo "FAIL: refuted plan carried no LMRE-E019 witness"; exit 1; }
grep -q 'checker: ok' /tmp/lmre_strict_verify.out \
  || { echo "FAIL: independent checker rejected the verify certificate"; exit 1; }

echo "== tier 1: batch smoke (cold + warm cache, metrics emission) =="
# Run the batch verb twice against one cache dir: the cold run populates
# it, the warm run must serve from it, and both runs must agree byte for
# byte.  The metrics snapshot lands in BENCH_runtime.json (gitignored);
# the gate fails if it is missing or malformed.
BATCH_CACHE="$(mktemp -d)"
trap 'rm -rf "$BATCH_CACHE"' EXIT
./build/tools/lmre batch --json --cache-dir="$BATCH_CACHE" examples/loops \
  > "$BATCH_CACHE/cold.json"
./build/tools/lmre batch --json --cache-dir="$BATCH_CACHE" \
  --metrics=BENCH_runtime.json examples/loops > "$BATCH_CACHE/warm.json"
cmp "$BATCH_CACHE/cold.json" "$BATCH_CACHE/warm.json" \
  || { echo "FAIL: warm batch output differs from cold"; exit 1; }
[ -s BENCH_runtime.json ] \
  || { echo "FAIL: BENCH_runtime.json missing or empty"; exit 1; }
grep -q '"schema_version"' BENCH_runtime.json \
  || { echo "FAIL: BENCH_runtime.json lacks the versioned envelope"; exit 1; }
grep -q '"cache.hit_rate": 1' BENCH_runtime.json \
  || { echo "FAIL: warm batch did not hit the cache for every file"; exit 1; }

echo "== tier 1: serve smoke (socket round trips, overload, graceful stop) =="
# Start a server, prove a cold and a warm request return byte-identical
# payloads that also appear verbatim in `lmre batch` output for the same
# file, probe load-shedding at queue depth 1 over the stdio transport, and
# check SIGTERM drains cleanly (exit 0) and flushes the metrics snapshot.
SERVE_SOCK="$BATCH_CACHE/serve.sock"
./build/tools/lmre serve "$SERVE_SOCK" --workers=2 \
  --metrics="$BATCH_CACHE/serve_metrics.json" &
SERVE_PID=$!
for _ in $(seq 50); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "FAIL: serve socket never appeared"; exit 1; }
./build/tools/lmre request "$SERVE_SOCK" examples/loops/fir.loop --raw \
  > "$BATCH_CACHE/serve_cold.json"
./build/tools/lmre request "$SERVE_SOCK" examples/loops/fir.loop --raw \
  > "$BATCH_CACHE/serve_warm.json"
cmp "$BATCH_CACHE/serve_cold.json" "$BATCH_CACHE/serve_warm.json" \
  || { echo "FAIL: warm serve response differs from cold"; exit 1; }
./build/tools/lmre batch --json examples/loops/fir.loop \
  > "$BATCH_CACHE/serve_batch.json"
grep -qF "$(cat "$BATCH_CACHE/serve_cold.json")" "$BATCH_CACHE/serve_batch.json" \
  || { echo "FAIL: serve payload not byte-identical to lmre batch"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: serve did not exit 0 on SIGTERM"; exit 1; }
grep -q '"serve.completed": 2' "$BATCH_CACHE/serve_metrics.json" \
  || { echo "FAIL: serve metrics snapshot missing request counts"; exit 1; }
grep -q '"serve.latency_ms"' "$BATCH_CACHE/serve_metrics.json" \
  || { echo "FAIL: serve metrics snapshot lacks the latency histogram"; exit 1; }
# Overload probe: one worker, queue depth 1, three back-to-back identical
# requests over stdio with coalescing disabled.  The single worker holds
# the first (heavy) request while the later lines arrive, so the bounded
# queue must shed at least one of them with "overloaded" -- and every line
# still gets a response.
OVERLOAD_OUT="$BATCH_CACHE/serve_overload.out"
OVERLOAD_SRC="$(grep -v '^#' examples/loops/matmult.loop | tr '\n' ' ')"
{ for i in 1 2 3; do
    printf '{"id":%d,"source":"%s"}\n' "$i" "$OVERLOAD_SRC"
  done
} | ./build/tools/lmre serve --stdio --workers=1 --queue-depth=1 \
  --no-coalesce > "$OVERLOAD_OUT"
[ "$(wc -l < "$OVERLOAD_OUT")" -eq 3 ] \
  || { echo "FAIL: stdio serve did not answer every request line"; exit 1; }
grep -q '"overloaded"' "$OVERLOAD_OUT" \
  || { echo "FAIL: full queue did not shed with an overloaded response"; exit 1; }
# The same three identical lines WITH coalescing (the default): the queue
# never fills because duplicates park on the in-flight computation, so all
# three answer successfully and the snapshot counts two coalesced fans.
COALESCE_OUT="$BATCH_CACHE/serve_coalesce.out"
{ for i in 1 2 3; do
    printf '{"id":%d,"source":"%s"}\n' "$i" "$OVERLOAD_SRC"
  done
} | ./build/tools/lmre serve --stdio --workers=1 --queue-depth=1 \
  --metrics="$BATCH_CACHE/serve_coalesce_metrics.json" > "$COALESCE_OUT"
[ "$(wc -l < "$COALESCE_OUT")" -eq 3 ] \
  || { echo "FAIL: coalescing stdio serve did not answer every line"; exit 1; }
grep -q '"overloaded"' "$COALESCE_OUT" \
  && { echo "FAIL: coalescing serve shed an identical duplicate"; exit 1; }
grep -q '"serve.coalesced": 2' "$BATCH_CACHE/serve_coalesce_metrics.json" \
  || { echo "FAIL: metrics snapshot did not count 2 coalesced responses"; exit 1; }

echo "== tier 1: serve-load smoke (TCP transport + load harness gate) =="
# CLI TCP round trip: an ephemeral port announced on stdout, one request
# over --tcp whose payload must be byte-identical to the Unix-socket
# payload above, SIGTERM drain, and the metrics snapshot carrying the TCP
# connection gauges and the shard configuration.
TCP_OUT="$BATCH_CACHE/serve_tcp.out"
./build/tools/lmre serve --tcp=127.0.0.1:0 --workers=2 --cache-shards=4 \
  --metrics="$BATCH_CACHE/serve_tcp_metrics.json" > "$TCP_OUT" &
TCP_PID=$!
for _ in $(seq 50); do grep -q 'listening on' "$TCP_OUT" 2>/dev/null && break; sleep 0.1; done
TCP_PORT="$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$TCP_OUT")"
[ -n "$TCP_PORT" ] \
  || { echo "FAIL: serve --tcp never announced its port"; exit 1; }
./build/tools/lmre request --tcp=127.0.0.1:"$TCP_PORT" --raw \
  examples/loops/fir.loop > "$BATCH_CACHE/tcp_cold.json"
cmp "$BATCH_CACHE/tcp_cold.json" "$BATCH_CACHE/serve_cold.json" \
  || { echo "FAIL: TCP serve payload differs from the Unix-socket payload"; exit 1; }
kill -TERM "$TCP_PID"
wait "$TCP_PID" \
  || { echo "FAIL: serve --tcp did not exit 0 on SIGTERM"; exit 1; }
grep -q '"serve.tcp_conns_opened": 1' "$BATCH_CACHE/serve_tcp_metrics.json" \
  || { echo "FAIL: TCP metrics snapshot missing the connection gauges"; exit 1; }
grep -q '"cache.shards": 4' "$BATCH_CACHE/serve_tcp_metrics.json" \
  || { echo "FAIL: metrics snapshot missing the cache shard config"; exit 1; }
# Load-harness regression gate at reduced scale: sharded-cache replay,
# a 200-connection TCP storm over mixed request kinds, the single-flight
# exactly-one-computation proof, and the overload shed demo.  Runs in the
# temp dir so its check-mode BENCH_server.json never clobbers the full-run
# snapshot at the repo root.
(cd "$BATCH_CACHE" && exec "$OLDPWD/build/bench/bench_server" --check) \
  || { echo "FAIL: bench_server --check load gate"; exit 1; }

echo "== tier 1: ThreadSanitizer pass over the parallel suites =="
cmake -B build-tsan -S . -DLMRE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_search_test property_parallel_test cache_stress_test \
  server_test
./build-tsan/tests/parallel_search_test
./build-tsan/tests/property_parallel_test
./build-tsan/tests/cache_stress_test
./build-tsan/tests/server_test

echo "== tier 1: ASan+UBSan pass over the input-handling suites =="
cmake -B build-asan -S . -DLMRE_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target parser_test lint_test cli_tool_test
./build-asan/tests/parser_test
./build-asan/tests/lint_test
./build-asan/tests/cli_tool_test

echo "== tier 1: symbolic-smoke (ASan differential subset + golden check) =="
# The symbolic closed forms must stay oracle-exact under ASan+UBSan: run
# the paper-kernel + clamping-edge differential subset (the full 300-nest
# sweep stays in the plain ctest pass, where the `symbolic` ctest label
# covers it at 1 and N threads), then re-pin the golden envelopes for the
# paper's Example 6 (decline) and Example 10 (Sections 3.2 / 4.3).
cmake --build build-asan -j "$JOBS" --target property_symbolic_test \
  golden_symbolic_test symbolic_reject_test
./build-asan/tests/property_symbolic_test \
  --gtest_filter='PropertySymbolic.PaperKernels:PropertySymbolic.Example10ClampingEdges:PropertySymbolic.LoopCorpus'
./build-asan/tests/golden_symbolic_test
./build-asan/tests/symbolic_reject_test
(cd build && ctest -L symbolic --output-on-failure -j "$JOBS") \
  || { echo "FAIL: symbolic-labeled ctest subset"; exit 1; }
# Latency gate: an lmre analyze --symbolic request must answer in under
# 10 ms even at 10^18-iteration bounds (writes BENCH_symbolic.json).
./build/bench/bench_symbolic --check \
  || { echo "FAIL: symbolic path missed the 10 ms budget or the oracle"; exit 1; }

echo "== tier 1: oracle smoke (dense vs reference differential + perf gate) =="
# The dense-address trace engine must stay bit-identical to the retained
# hash-map reference under ASan+UBSan (the differential property suite), and
# bench_oracle --check fails if the dense engine is ever slower than 2x the
# reference on any bench kernel or on the minimizer's verify loop.
cmake --build build-asan -j "$JOBS" --target property_oracle_test
./build-asan/tests/property_oracle_test
./build/bench/bench_oracle --check \
  || { echo "FAIL: dense oracle engine regressed past the perf gate"; exit 1; }

echo "== tier 1: codegen smoke (ASan emission + system-cc round trip) =="
# The C backend under ASan+UBSan emits two paper kernels end to end --
# fir.loop under the optimizer's plan and example8.loop in identity order
# -- and the system cc compiles and executes each generated unit, whose
# embedded self-check must report bit-identity, the predicted window and
# clean traffic (status 0).  When the container has no C compiler the
# round trip is skipped VISIBLY; emission still runs.  bench_codegen
# --check then gates emit latency (< 100 ms per kernel) and re-runs the
# whole Figure-2 + corpus table against the plain build.
cmake --build build-asan -j "$JOBS" --target lmre_cli codegen_test
./build-asan/tests/codegen_test
if command -v cc >/dev/null; then
  for KERNEL in "examples/loops/fir.loop --plan" "examples/loops/example8.loop"; do
    # shellcheck disable=SC2086  # intentional word split: file + flags
    ./build-asan/tools/lmre codegen --run --json $KERNEL \
      > "$BATCH_CACHE/codegen_smoke.json" \
      || { echo "FAIL: codegen --run exited nonzero on $KERNEL"; exit 1; }
    grep -q '"identical": true' "$BATCH_CACHE/codegen_smoke.json" \
      || { echo "FAIL: generated code not bit-identical on $KERNEL"; exit 1; }
    grep -q '"status": 0' "$BATCH_CACHE/codegen_smoke.json" \
      || { echo "FAIL: generated self-check failed on $KERNEL"; exit 1; }
  done
else
  echo "SKIP: no system C compiler on PATH; codegen round trip not run"
  ./build-asan/tools/lmre codegen examples/loops/example8.loop >/dev/null \
    || { echo "FAIL: codegen emission failed without a compiler"; exit 1; }
fi
./build/bench/bench_codegen --check \
  || { echo "FAIL: codegen emit latency or self-check gate"; exit 1; }

echo "== tier 1: mrc-smoke (ASan subset + goldens + sampling error gate) =="
# The MRC subsystem under ASan+UBSan: the exact-path property subset (the
# full 256-case sweep stays in the plain ctest pass under the `mrc` ctest
# label) plus the pinned `lmre mrc --json` envelopes for the paper
# examples.  A CLI smoke pins Example 10's LRU knee at 687 -- the paper's
# MWS is 540; the forward-window policy is strictly tighter than LRU --
# and bench_mrc --check gates the sampled estimator against its declared
# error bound (and the exact path against a generous latency ceiling).
cmake --build build-asan -j "$JOBS" --target property_mrc_test golden_mrc_test
./build-asan/tests/property_mrc_test \
  --gtest_filter='Sweep/MrcProperty.*/1:Sweep/MrcProperty.*/2:Sweep/MrcSampledProperty.*/1:MrcSession.*:MrcObjective.*'
./build-asan/tests/golden_mrc_test
(cd build && ctest -L mrc --output-on-failure -j "$JOBS") \
  || { echo "FAIL: mrc-labeled ctest subset"; exit 1; }
./build/tools/lmre mrc --capacities=540,687 tests/golden/example10.loop \
  > "$BATCH_CACHE/mrc_smoke.out"
grep -q 'knee.*687' "$BATCH_CACHE/mrc_smoke.out" \
  || { echo "FAIL: Example 10 LRU knee is not 687"; exit 1; }
./build/bench/bench_mrc --check \
  || { echo "FAIL: sampled MRC missed its declared error bound"; exit 1; }

echo "tier 1 OK"
