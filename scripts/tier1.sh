#!/usr/bin/env bash
# Tier-1 gate: the standard build + full ctest run, then a ThreadSanitizer
# pass over the parallel-search test suites.  Run from the repo root:
#
#   scripts/tier1.sh
#
# The TSan stage builds into build-tsan/ so it never disturbs the primary
# build tree.  Both stages must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tier 1: ThreadSanitizer pass over the parallel suites =="
cmake -B build-tsan -S . -DLMRE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target parallel_search_test property_parallel_test
./build-tsan/tests/parallel_search_test
./build-tsan/tests/property_parallel_test

echo "tier 1 OK"
