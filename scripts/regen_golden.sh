#!/usr/bin/env bash
# Regenerates the golden files pinned by the test suite.  Run from the repo
# root after an intentional output-schema change, then review the diff:
#
#   ./scripts/regen_golden.sh [build-dir]
#
# Covers tests/golden/batch_loops.json, the byte-exact document
# `lmre batch --json examples/loops` must produce (golden_batch_test);
# tests/golden/symbolic_example{6,10}.json, the `lmre analyze --symbolic
# --json` envelopes pinned by golden_symbolic_test; and
# tests/golden/verify_example{10,6,8_witness}.json, the `lmre verify
# --json` certificates pinned by golden_verify_test; the codegen documents
# pinned by golden_codegen_test; and tests/golden/mrc_example*.json, the
# `lmre mrc --json` envelopes pinned by golden_mrc_test.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LMRE="$BUILD/tools/lmre"
if [[ ! -x "$LMRE" ]]; then
  echo "error: $LMRE not built (cmake -B $BUILD -S . && cmake --build $BUILD)" >&2
  exit 1
fi

mkdir -p tests/golden
"$LMRE" batch --json examples/loops > tests/golden/batch_loops.json
echo "wrote tests/golden/batch_loops.json"

# Symbolic closed forms for the paper's Example 10 (Section 3.2 / 4.3
# formulas) and Example 6 (non-uniform decline, exits 3 -- that is the
# pinned behavior, not a regen failure).
"$LMRE" analyze --symbolic --json tests/golden/example10.loop \
  > tests/golden/symbolic_example10.json
echo "wrote tests/golden/symbolic_example10.json"
"$LMRE" analyze --symbolic --json tests/golden/example6.loop \
  > tests/golden/symbolic_example6.json || true
echo "wrote tests/golden/symbolic_example6.json"

# Legality certificates (src/verify).  Example 10: the optimizer's own plan,
# certified in audit mode.  Example 6: non-uniform references force the
# direction-vector path (LMRE-W020).  Example 8 with a hand-built i-reversal
# plan: refuted with concrete iteration-pair witnesses (LMRE-E019, exits 3
# -- pinned behavior, not a regen failure).
"$LMRE" verify --json tests/golden/example10.loop \
  > tests/golden/verify_example10.json
echo "wrote tests/golden/verify_example10.json"
"$LMRE" verify --json --plan="0 1; 1 0" tests/golden/example6.loop \
  > tests/golden/verify_example6.json
echo "wrote tests/golden/verify_example6.json"
"$LMRE" verify --json --plan="-1 0; 0 1" examples/loops/example8.loop \
  > tests/golden/verify_example8_witness.json || true
echo "wrote tests/golden/verify_example8_witness.json"

# Codegen documents (src/codegen): identity-order lowering of the paper's
# Examples 6, 8 and 10 -- window accounting, buffer plans, and the full
# generated C unit.  Deterministic, so the whole envelope is pinned
# (golden_codegen_test).
"$LMRE" codegen --json tests/golden/example6.loop \
  > tests/golden/codegen_example6.json
echo "wrote tests/golden/codegen_example6.json"
"$LMRE" codegen --json examples/loops/example8.loop \
  > tests/golden/codegen_example8.json
echo "wrote tests/golden/codegen_example8.json"
"$LMRE" codegen --json tests/golden/example10.loop \
  > tests/golden/codegen_example10.json
echo "wrote tests/golden/codegen_example10.json"

# Miss-ratio curves (src/mrc): exact reuse-distance histograms + curves for
# the paper's Examples 6, 8 and 10 under the identity order, plus the
# optimizer's plan for Examples 8 and 10 (golden_mrc_test).  Example 10
# pins the LRU knee at 687 -- every reuse spans exactly 687 distinct
# elements under the identity order -- against the paper's MWS of 540
# (the forward-window policy is strictly tighter than LRU).
"$LMRE" mrc --json tests/golden/example6.loop \
  > tests/golden/mrc_example6.json
echo "wrote tests/golden/mrc_example6.json"
"$LMRE" mrc --json examples/loops/example8.loop \
  > tests/golden/mrc_example8.json
echo "wrote tests/golden/mrc_example8.json"
"$LMRE" mrc --json --plan examples/loops/example8.loop \
  > tests/golden/mrc_example8_plan.json
echo "wrote tests/golden/mrc_example8_plan.json"
"$LMRE" mrc --json --capacities=1,64,128,540,687,1024 \
  tests/golden/example10.loop > tests/golden/mrc_example10.json
echo "wrote tests/golden/mrc_example10.json"
"$LMRE" mrc --json --plan --capacities=1,64,128,540,687,1024 \
  tests/golden/example10.loop > tests/golden/mrc_example10_plan.json
echo "wrote tests/golden/mrc_example10_plan.json"
