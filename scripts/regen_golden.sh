#!/usr/bin/env bash
# Regenerates the golden files pinned by the test suite.  Run from the repo
# root after an intentional output-schema change, then review the diff:
#
#   ./scripts/regen_golden.sh [build-dir]
#
# Currently covers tests/golden/batch_loops.json, the byte-exact document
# `lmre batch --json examples/loops` must produce (golden_batch_test).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LMRE="$BUILD/tools/lmre"
if [[ ! -x "$LMRE" ]]; then
  echo "error: $LMRE not built (cmake -B $BUILD -S . && cmake --build $BUILD)" >&2
  exit 1
fi

mkdir -p tests/golden
"$LMRE" batch --json examples/loops > tests/golden/batch_loops.json
echo "wrote tests/golden/batch_loops.json"
