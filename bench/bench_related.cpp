// Related-work comparison bench (Section 6 / Section 4 claims):
//  A. per-dependence windows (Gannon/Eisenbeis) vs the paper's per-array
//     window: summing per-dependence windows overcounts shared elements;
//  B. Wolf-Lam style bounds-free permutation ranking vs our bound-aware
//     optimizer;
//  C. Li-Pingali access-matrix completion vs our legal-row search
//     (Examples 7 and 8).

#include <iostream>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "analysis/distinct.h"
#include "exact/oracle.h"
#include "related/ferrante.h"
#include "related/li_pingali.h"
#include "related/refwindow.h"
#include "related/wolf_lam.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== A: per-dependence windows vs per-array window ===\n\n";
  TextTable a;
  a.header({"loop", "deps", "sum of per-dep windows", "per-array exact MWS",
            "overcount"});
  for (auto [name, nest] : {std::pair{"example 2", codes::example_2()},
                            std::pair{"example 4", codes::example_4()},
                            std::pair{"example 7", codes::example_7()},
                            std::pair{"example 8", codes::example_8()},
                            std::pair{"sor", codes::kernel_sor(16)}}) {
    auto windows = dependence_windows(nest);
    Int sum = per_dependence_cost(nest);
    Int exact = simulate(nest).mws_total;
    a.row({name, std::to_string(windows.size()), std::to_string(sum),
           std::to_string(exact),
           exact > 0 ? percent(double(sum) / double(exact) - 1.0) : "-"});
  }
  std::cout << a.render()
            << "=> \"the resultant need to approximate the combination of\n"
               "   these windows results in a loss of precision\" (Sec. 6).\n\n";

  std::cout << "=== B: bounds-free permutation ranking vs bound-aware search ===\n\n";
  TextTable b;
  b.header({"kernel", "MWS before", "Wolf-Lam pick", "ours", "ours method"});
  for (auto& e : codes::figure2_suite()) {
    auto wl = wolf_lam_best_permutation(e.nest);
    Int before = simulate(e.nest).mws_total;
    Int wl_mws = wl ? simulate_transformed(e.nest, *wl).mws_total : before;
    OptimizeResult ours = optimize_locality(e.nest);
    Int our_mws = simulate_transformed(e.nest, ours.transform).mws_total;
    b.row({e.name, std::to_string(before), std::to_string(wl_mws),
           std::to_string(our_mws), ours.method});
  }
  std::cout << b.render()
            << "=> permutations alone (and bounds-free scores) leave window\n"
               "   reductions on the table that compound transforms capture.\n\n";

  std::cout << "=== C2: dependence-free estimates (Ferrante et al.) ===\n\n";
  {
    TextTable f;
    f.header({"loop", "Ferrante (no deps)", "paper formula", "exact"});
    for (auto [name, nest] : {std::pair{"example 2", codes::example_2()},
                              std::pair{"example 3", codes::example_3()},
                              std::pair{"example 4", codes::example_4()},
                              std::pair{"example 5", codes::example_5()},
                              std::pair{"example 8", codes::example_8()}}) {
      FerranteEstimate fe = ferrante_estimate(nest, 0);
      Int ours = estimate_distinct(nest, 0).distinct;
      Int exact = simulate(nest).distinct_total;
      f.row({name, std::to_string(fe.distinct), std::to_string(ours),
             std::to_string(exact)});
    }
    std::cout << f.render()
              << "=> without dependence information, multiple references and\n"
                 "   coupled subscripts are mispriced (Sec. 6: \"arbitrary\n"
                 "   correction factors\"); the dependence-based formulas\n"
                 "   track the exact counts.\n\n";
  }

  std::cout << "=== C: Li-Pingali completion vs our legal-row search ===\n\n";
  TextTable c;
  c.header({"loop", "Li-Pingali", "MWS", "ours", "MWS"});
  for (auto [name, nest] : {std::pair{"example 7", codes::example_7()},
                            std::pair{"example 8", codes::example_8()}}) {
    auto lp = li_pingali_transform(nest, 0);
    auto ours = minimize_mws_2d(nest);
    std::string lp_t = lp ? lp->transform.str() : "no legal completion";
    std::string lp_m =
        lp ? std::to_string(simulate_transformed(nest, lp->transform).mws_total) : "-";
    std::string our_t = ours ? ours->transform.str() : "-";
    std::string our_m =
        ours ? std::to_string(simulate_transformed(nest, ours->transform).mws_total)
             : "-";
    c.row({name, lp_t, lp_m, our_t, our_m});
  }
  std::cout << c.render()
            << "=> on Example 8 any transformation seeded with (2,5) or (-2,5)\n"
               "   violates a flow/anti dependence (the paper's argument); the\n"
               "   row search still finds [2 3; 1 1] and MWS 21.\n";
  return 0;
}
