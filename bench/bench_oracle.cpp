// Oracle engine bench: retained hash-map reference engine vs the dense
// linearized-address engine on the 13-kernel suite (figure2 + extra), at
// 1/4/8 worker threads, plus the minimize_mws_2d-style verify loop (k
// candidate transforms re-scored through one reused TraceArena).  Prints
// per-kernel speedup tables and writes BENCH_oracle.json (enveloped) into
// the current directory.
//
// With --check the bench turns into a perf gate: it exits nonzero if the
// dense engine is ever slower than 2x the reference on any kernel/thread
// combination (or on the verify loop).  scripts/tier1.sh runs that gate.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "exact/reference.h"
#include "exact/trace_engine.h"
#include "support/json.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

namespace {

constexpr int kReps = 3;              // best-of timing, min over reps
constexpr double kCheckSlowdown = 2.0;  // --check: new must stay under 2x ref

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// Minimum wall-clock over kReps calls of `fn`.
template <typename Fn>
double best_of(Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = ms_since(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

std::vector<std::pair<std::string, LoopNest>> suite() {
  std::vector<std::pair<std::string, LoopNest>> kernels;
  for (auto& e : codes::figure2_suite()) kernels.emplace_back(e.name, e.nest);
  for (auto& [name, nest] : codes::extra_suite()) kernels.emplace_back(name, nest);
  return kernels;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

std::string fmt_x(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", x);
  return buf;
}

bool same(const TraceStats& a, const TraceStats& b) {
  return a.iterations == b.iterations && a.total_accesses == b.total_accesses &&
         a.distinct_total == b.distinct_total && a.distinct == b.distinct &&
         a.reuse_total == b.reuse_total && a.reuse == b.reuse &&
         a.mws_total == b.mws_total && a.mws == b.mws;
}

/// The candidate set the optimize_locality verify loop re-scores for a
/// depth-2 nest: every signed permutation plus the row-minimizer winner.
std::vector<IntMat> verify_candidates(const LoopNest& nest) {
  std::vector<IntMat> set;
  const size_t n = nest.depth();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  do {
    for (unsigned signs = 0; signs < (1u << n); ++signs) {
      IntMat t(n, n);
      for (size_t r = 0; r < n; ++r) t(r, perm[r]) = (signs >> r) & 1 ? -1 : 1;
      set.push_back(t);
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (auto res = minimize_mws_2d(nest)) {
    if (std::find(set.begin(), set.end(), res->transform) == set.end()) {
      set.push_back(res->transform);
    }
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const std::vector<int> thread_counts = {1, 4, 8};
  auto kernels = suite();
  bool ok = true;
  Json kernel_rows = Json::array();

  std::cout << "=== exact oracle: reference hash-map vs dense-address engine ===\n";
  for (int threads : thread_counts) {
    TextTable t;
    t.header({"kernel", "iters", "ref (ms)", "dense (ms)", "speedup"});
    double ref_total = 0.0;
    double new_total = 0.0;
    for (auto& [name, nest] : kernels) {
      TraceStats ref_stats, new_stats;
      double ref_ms = best_of([&] { ref_stats = reference::simulate(nest, threads); });
      double new_ms = best_of([&] {
        TraceArena arena;  // fresh per rep: cold-run cost, no warm reuse
        new_stats = simulate(nest, threads, arena);
      });
      if (!same(ref_stats, new_stats)) {
        std::cout << "MISMATCH on " << name << " at threads=" << threads << '\n';
        ok = false;
      }
      ref_total += ref_ms;
      new_total += new_ms;
      double speedup = new_ms > 0.0 ? ref_ms / new_ms : 0.0;
      if (check && new_ms > kCheckSlowdown * ref_ms) {
        std::cout << "CHECK FAIL: " << name << " threads=" << threads
                  << " dense " << fmt_ms(new_ms) << "ms > " << kCheckSlowdown
                  << "x ref " << fmt_ms(ref_ms) << "ms\n";
        ok = false;
      }
      t.row({name, std::to_string(nest.iteration_count()), fmt_ms(ref_ms),
             fmt_ms(new_ms), fmt_x(speedup)});
      kernel_rows.push(Json::object()
                           .set("kernel", name)
                           .set("threads", Int{threads})
                           .set("iterations", nest.iteration_count())
                           .set("ref_ms", ref_ms)
                           .set("dense_ms", new_ms)
                           .set("speedup", speedup));
    }
    t.row({"TOTAL", "", fmt_ms(ref_total), fmt_ms(new_total),
           fmt_x(new_total > 0.0 ? ref_total / new_total : 0.0)});
    std::cout << "-- threads=" << threads << " --\n" << t.render();
    kernel_rows.push(Json::object()
                         .set("kernel", "TOTAL")
                         .set("threads", Int{threads})
                         .set("ref_ms", ref_total)
                         .set("dense_ms", new_total)
                         .set("speedup",
                              new_total > 0.0 ? ref_total / new_total : 0.0));
  }

  // Verify-loop bench: the largest depth-2 kernel stands in for the
  // minimize_mws_2d verify workload -- every candidate transform simulated
  // through one arena (the candidate-reuse path) vs per-candidate hash maps.
  const LoopNest* verify_nest = nullptr;
  std::string verify_name;
  for (auto& [name, nest] : kernels) {
    if (nest.depth() != 2) continue;
    if (!verify_nest || nest.iteration_count() > verify_nest->iteration_count()) {
      verify_nest = &nest;
      verify_name = name;
    }
  }
  Json verify_doc = Json::object();
  if (verify_nest) {
    std::vector<IntMat> set = verify_candidates(*verify_nest);
    std::vector<Int> ref_mws, new_mws;
    double ref_ms = best_of([&] {
      ref_mws.clear();
      for (const IntMat& t : set) {
        ref_mws.push_back(reference::simulate_transformed(*verify_nest, t).mws_total);
      }
    });
    double new_ms = best_of([&] {
      new_mws.clear();
      TraceArena arena;  // one arena across all candidates, as the minimizer does
      for (const IntMat& t : set) {
        new_mws.push_back(simulate_transformed(*verify_nest, t, arena).mws_total);
      }
    });
    if (ref_mws != new_mws) {
      std::cout << "MISMATCH in verify-loop mws on " << verify_name << '\n';
      ok = false;
    }
    if (check && new_ms > kCheckSlowdown * ref_ms) {
      std::cout << "CHECK FAIL: verify loop dense " << fmt_ms(new_ms)
                << "ms > " << kCheckSlowdown << "x ref " << fmt_ms(ref_ms)
                << "ms\n";
      ok = false;
    }
    double speedup = new_ms > 0.0 ? ref_ms / new_ms : 0.0;
    TextTable t;
    t.header({"verify kernel", "candidates", "ref (ms)", "dense (ms)", "speedup"});
    t.row({verify_name, std::to_string(set.size()), fmt_ms(ref_ms),
           fmt_ms(new_ms), fmt_x(speedup)});
    std::cout << "-- minimize_mws_2d verify loop (arena candidate-reuse) --\n"
              << t.render();
    verify_doc.set("kernel", verify_name)
        .set("candidates", static_cast<Int>(set.size()))
        .set("ref_ms", ref_ms)
        .set("dense_ms", new_ms)
        .set("speedup", speedup);
  }

  Json doc = Json::object();
  doc.set("kernels", std::move(kernel_rows));
  doc.set("verify", std::move(verify_doc));
  doc.set("reps", Int{kReps});
  doc.set("check_slowdown_bound", kCheckSlowdown);
  doc.set("results_identical", ok);
  std::ofstream("BENCH_oracle.json")
      << json_envelope("bench-oracle", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_oracle.json\n";

  return ok ? 0 : 1;
}
