// Server bench: a socket load generator against the lmre serve subsystem.
// For each worker-pool size (1, 4, 8) it drives the builder-kernel corpus
// through a Unix-domain socket twice -- a cold pass (every request
// computes) and a warm pass (every request is a cache hit) -- plus one
// isolated warm request as the single-request latency baseline.  Prints a
// table and writes BENCH_server.json (throughput, client-side p50/p95/p99
// tail latency, cold/warm hit rates, and warm p99 as a multiple of the
// single-request latency) into the current directory; scripts/tier1.sh
// smoke-checks the file.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "ir/parser.h"
#include "server/server.h"
#include "server/wire.h"
#include "support/json.h"
#include "support/text.h"

using namespace lmre;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  auto add = [&](const std::string& name, const std::string& source) {
    Json req = Json::object();
    req.set("id", name);
    req.set("kind", "full");
    req.set("source", source);
    lines.push_back(req.dump(0));
  };
  for (auto& e : codes::figure2_suite()) add(e.name, to_dsl(e.nest));
  for (auto& [name, nest] : codes::extra_suite()) add(name, to_dsl(nest));
  return lines;
}

// Persistent-connection client: one socket, one outstanding request at a
// time.  Keeping the connection open measures server-side queueing rather
// than per-request connect + reader-thread setup, which is how a real
// latency-sensitive caller would drive the server.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  /// Sends `line`, blocks for the matching response line.
  bool request(const std::string& line) {
    if (fd_ < 0) return false;
    std::string framed = line + '\n';
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    buffer_.erase(0, buffer_.find('\n') + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

struct PassStats {
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double hit_rate = 0.0;
  long requests = 0;
};

Json pass_json(const PassStats& s) {
  return Json::object()
      .set("requests", static_cast<Int>(s.requests))
      .set("wall_ms", s.wall_ms)
      .set("throughput_rps", s.throughput_rps)
      .set("p50_ms", s.p50)
      .set("p95_ms", s.p95)
      .set("p99_ms", s.p99)
      .set("hit_rate", s.hit_rate);
}

// Drives `lines` (repeated `repeat` times) from `clients` threads, each
// request a one-shot connection; latencies are client-side wall times.
PassStats run_pass(const std::string& path, const std::vector<std::string>& lines,
                   int clients, int repeat, const ResultCache& cache) {
  const Int hits0 = cache.hits(), misses0 = cache.misses();
  std::vector<std::string> work;
  for (int r = 0; r < repeat; ++r) {
    work.insert(work.end(), lines.begin(), lines.end());
  }
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(path)) return;
      for (size_t i = static_cast<size_t>(c); i < work.size();
           i += static_cast<size_t>(clients)) {
        auto r0 = std::chrono::steady_clock::now();
        if (client.request(work[i])) {
          latencies[static_cast<size_t>(c)].push_back(ms_since(r0));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  PassStats s;
  s.wall_ms = ms_since(t0);
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  s.requests = static_cast<long>(all.size());
  s.throughput_rps =
      s.wall_ms > 0 ? 1000.0 * static_cast<double>(all.size()) / s.wall_ms : 0.0;
  s.p50 = quantile(all, 0.50);
  s.p95 = quantile(all, 0.95);
  s.p99 = quantile(all, 0.99);
  const Int dh = (cache.hits() - hits0), dm = (cache.misses() - misses0);
  s.hit_rate = dh + dm > 0 ? static_cast<double>(dh) / static_cast<double>(dh + dm) : 0.0;
  return s;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  std::vector<std::string> lines = corpus_lines();
  const int kClients = 4;
  const int kWarmRepeat = 24;  // hundreds of samples for a stable warm tail

  TextTable t;
  t.header({"workers", "pass", "req", "rps", "p50 ms", "p95 ms", "p99 ms",
            "hit rate"});
  Json configs = Json::array();
  bool ok = true;

  for (int workers : {1, 4, 8}) {
    std::string path = "bench_server_" + std::to_string(workers) + ".sock";
    ::unlink(path.c_str());
    ServerOptions opts;
    opts.workers = workers;
    opts.queue_depth = 64;
    AnalysisServer server(opts);
    std::thread serving([&] { server.serve_socket(path); });
    // Wait for the listener (the probe also pre-computes lines[0]).
    {
      Client probe;
      for (int i = 0; i < 500 && !probe.connect(path); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      probe.request(lines[0]);
    }

    PassStats cold = run_pass(path, lines, kClients, 1, server.cache());
    PassStats warm = run_pass(path, lines, kClients, kWarmRepeat, server.cache());

    // Unloaded warm single-request latency: p99 over a run of sequential
    // requests on one idle connection -- the floor the loaded warm tail
    // is compared against (acceptance: warm p99 < 10x single at 8
    // workers).  A p99-vs-p99 comparison keeps one scheduler hiccup in
    // either measurement from dominating the ratio.
    double single_ms = 0.0;
    {
      Client solo;
      if (solo.connect(path)) {
        std::vector<double> singles;
        for (int i = 0; i < 200; ++i) {
          auto s0 = std::chrono::steady_clock::now();
          if (solo.request(lines[static_cast<size_t>(i) % lines.size()])) {
            singles.push_back(ms_since(s0));
          }
        }
        single_ms = quantile(singles, 0.99);
      }
    }
    double p99_over_single = single_ms > 0 ? warm.p99 / single_ms : 0.0;

    server.request_stop();
    serving.join();
    ::unlink(path.c_str());

    t.row({std::to_string(workers), "cold", std::to_string(cold.requests),
           fmt(cold.throughput_rps), fmt(cold.p50), fmt(cold.p95),
           fmt(cold.p99), fmt(cold.hit_rate)});
    t.row({std::to_string(workers), "warm", std::to_string(warm.requests),
           fmt(warm.throughput_rps), fmt(warm.p50), fmt(warm.p95),
           fmt(warm.p99), fmt(warm.hit_rate)});

    ok = ok && cold.requests == static_cast<long>(lines.size()) &&
         warm.requests == static_cast<long>(lines.size()) * kWarmRepeat &&
         warm.hit_rate == 1.0;

    configs.push(Json::object()
                     .set("workers", workers)
                     .set("queue_depth", static_cast<Int>(opts.queue_depth))
                     .set("clients", kClients)
                     .set("cold", pass_json(cold))
                     .set("warm", pass_json(warm))
                     .set("warm_single_ms", single_ms)
                     .set("p99_over_single", p99_over_single));
  }

  std::cout << "=== lmre serve: socket load generator ===\n"
            << t.render() << "all passes complete: " << (ok ? "yes" : "NO")
            << '\n';

  Json doc = Json::object();
  doc.set("corpus_files", static_cast<Int>(lines.size()));
  doc.set("configs", std::move(configs));
  std::ofstream out("BENCH_server.json", std::ios::trunc);
  out << json_envelope("bench-server", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_server.json\n";
  return ok ? 0 : 1;
}
