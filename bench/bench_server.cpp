// Server load harness for the lmre serve subsystem.  Five sections:
//
//   unix_pool      the original socket generator: worker pools (1, 4, 8)
//                  driven cold then warm over a Unix-domain socket;
//                  throughput, client-side p50/p95/p99, hit rates, and
//                  warm p99 as a multiple of the single-request floor.
//   shard_scaling  the sharded ResultCache replayed directly: a warm
//                  mixed-kind key set with real serve payloads, hammered
//                  by 8 threads, shards=1 (one global mutex) vs
//                  shards=16.  Gate: sharded throughput >= 2x the
//                  single-mutex baseline -- armed only on hosts with
//                  >= 4 cores, since on a single-core machine sharding
//                  cannot buy wall-clock parallelism to measure.
//   tcp_load       end-to-end TCP: serve_tcp with 8 workers under a
//                  poll-multiplexed client driving ~1000 concurrent
//                  connections of warm mixed-kind requests (analyze /
//                  symbolic / mrc / verify); throughput, tail latency,
//                  shed rate.
//   coalesce       N connections firing the SAME heavy cold request at
//                  once: single-flight must compute exactly once, answer
//                  every connection byte-identically, and count N-1
//                  coalesced responses.
//   overload       workers=1, queue_depth=4, distinct cold requests from
//                  64 connections: the queue must shed (overloaded) yet
//                  answer every line and keep serving afterwards.
//
// Writes BENCH_server.json (table + per-section stats + gate verdicts)
// into the current directory and exits non-zero if any armed gate fails.
// `--check` runs the same sections at reduced scale as a fast regression
// gate for scripts/tier1.sh.

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <cerrno>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "ir/parser.h"
#include "runtime/session.h"
#include "server/server.h"
#include "server/tcp.h"
#include "server/wire.h"
#include "support/json.h"
#include "support/text.h"

using namespace lmre;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

std::string request_json(const std::string& id, const std::string& kind,
                         const std::string& source) {
  Json req = Json::object();
  req.set("id", id);
  req.set("kind", kind);
  req.set("source", source);
  return req.dump(0);
}

std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  for (auto& e : codes::figure2_suite()) {
    lines.push_back(request_json(e.name, "full", to_dsl(e.nest)));
  }
  for (auto& [name, nest] : codes::extra_suite()) {
    lines.push_back(request_json(name, "full", to_dsl(nest)));
  }
  return lines;
}

// The mixed-kind fleet workload: every corpus nest through the four
// serve-heavy request kinds.  Used both as TCP traffic and -- via the
// session below -- as real (key, payload) pairs for the cache replay.
struct MixedRequest {
  std::string line;               // wire request
  AnalysisRequest::Kind kind;     // same request for a direct session
  std::string source;
};

std::vector<MixedRequest> mixed_kind_requests() {
  const std::pair<const char*, AnalysisRequest::Kind> kinds[] = {
      {"analyze", AnalysisRequest::Kind::kAnalyze},
      {"symbolic", AnalysisRequest::Kind::kSymbolic},
      {"mrc", AnalysisRequest::Kind::kMrc},
      {"verify", AnalysisRequest::Kind::kVerify},
  };
  std::vector<std::pair<std::string, std::string>> nests;
  for (auto& e : codes::figure2_suite()) nests.emplace_back(e.name, to_dsl(e.nest));
  for (auto& [name, nest] : codes::extra_suite()) {
    nests.emplace_back(name, to_dsl(nest));
  }
  std::vector<MixedRequest> reqs;
  for (auto& [name, source] : nests) {
    for (auto& [kname, kenum] : kinds) {
      reqs.push_back(
          {request_json(name + "/" + kname, kname, source), kenum, source});
    }
  }
  return reqs;
}

// ---------------------------------------------------------------------------
// Unix-socket client (persistent connection, one outstanding request).

class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  /// Sends `line`, blocks for the matching response line.
  bool request(const std::string& line) {
    if (fd_ < 0) return false;
    std::string framed = line + '\n';
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    buffer_.erase(0, buffer_.find('\n') + 1);
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

struct PassStats {
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double hit_rate = 0.0;
  long requests = 0;
};

Json pass_json(const PassStats& s) {
  return Json::object()
      .set("requests", static_cast<Int>(s.requests))
      .set("wall_ms", s.wall_ms)
      .set("throughput_rps", s.throughput_rps)
      .set("p50_ms", s.p50)
      .set("p95_ms", s.p95)
      .set("p99_ms", s.p99)
      .set("hit_rate", s.hit_rate);
}

// Drives `lines` (repeated `repeat` times) from `clients` threads over
// persistent Unix connections; latencies are client-side wall times.
PassStats run_pass(const std::string& path,
                   const std::vector<std::string>& lines, int clients,
                   int repeat, const ResultCache& cache) {
  const Int hits0 = cache.hits(), misses0 = cache.misses();
  std::vector<std::string> work;
  for (int r = 0; r < repeat; ++r) {
    work.insert(work.end(), lines.begin(), lines.end());
  }
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(path)) return;
      for (size_t i = static_cast<size_t>(c); i < work.size();
           i += static_cast<size_t>(clients)) {
        auto r0 = std::chrono::steady_clock::now();
        if (client.request(work[i])) {
          latencies[static_cast<size_t>(c)].push_back(ms_since(r0));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  PassStats s;
  s.wall_ms = ms_since(t0);
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  s.requests = static_cast<long>(all.size());
  s.throughput_rps =
      s.wall_ms > 0 ? 1000.0 * static_cast<double>(all.size()) / s.wall_ms
                    : 0.0;
  s.p50 = quantile(all, 0.50);
  s.p95 = quantile(all, 0.95);
  s.p99 = quantile(all, 0.99);
  const Int dh = (cache.hits() - hits0), dm = (cache.misses() - misses0);
  s.hit_rate = dh + dm > 0
                   ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                   : 0.0;
  return s;
}

// ---------------------------------------------------------------------------
// Poll-multiplexed TCP driver: one thread, N concurrent connections, one
// outstanding request per connection (pipelining would blur latency
// attribution).  Each connection walks its own schedule of request lines.

struct TcpLoad {
  long requests = 0;   ///< lines scheduled across all connections
  long answered = 0;   ///< response lines received
  long connected = 0;  ///< connections that reached the server
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Json tcp_load_json(const TcpLoad& l) {
  return Json::object()
      .set("connections", static_cast<Int>(l.connected))
      .set("requests", static_cast<Int>(l.requests))
      .set("answered", static_cast<Int>(l.answered))
      .set("wall_ms", l.wall_ms)
      .set("throughput_rps", l.throughput_rps)
      .set("p50_ms", l.p50)
      .set("p95_ms", l.p95)
      .set("p99_ms", l.p99);
}

/// Runs `schedules[i]` over its own connection to 127.0.0.1:`port`.  When
/// `capture` is non-null, every response line is appended per connection
/// (used by the coalescing section's byte-identity check).
TcpLoad drive_tcp(int port, const std::vector<std::vector<std::string>>& schedules,
                  std::vector<std::vector<std::string>>* capture = nullptr) {
  struct Conn {
    int fd = -1;
    std::deque<std::string> pending;  // unsent request lines
    std::string out;                  // current line, framed
    size_t out_pos = 0;
    std::string in;
    bool awaiting = false;
    std::chrono::steady_clock::time_point sent_at;
  };

  TcpLoad load;
  std::vector<Conn> conns(schedules.size());
  if (capture) capture->assign(schedules.size(), {});
  for (size_t i = 0; i < schedules.size(); ++i) {
    load.requests += static_cast<long>(schedules[i].size());
    std::string err;
    int fd = tcp_connect("127.0.0.1", port, &err);
    if (fd < 0) continue;
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    conns[i].fd = fd;
    for (auto& line : schedules[i]) conns[i].pending.push_back(line + '\n');
    load.connected += 1;
  }

  auto stage_next = [](Conn& c) {
    c.out = std::move(c.pending.front());
    c.pending.pop_front();
    c.out_pos = 0;
    c.awaiting = true;
    c.sent_at = std::chrono::steady_clock::now();
  };
  for (auto& c : conns) {
    if (c.fd >= 0 && !c.pending.empty()) stage_next(c);
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(load.requests));
  auto t0 = std::chrono::steady_clock::now();
  const double kDeadlineMs = 120000.0;  // whole-run safety net

  long open = load.connected;
  std::vector<pollfd> fds;
  std::vector<size_t> owner;
  while (open > 0 && ms_since(t0) < kDeadlineMs) {
    fds.clear();
    owner.clear();
    for (size_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      if (c.fd < 0) continue;
      short events = POLLIN;
      if (c.out_pos < c.out.size()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
      owner.push_back(i);
    }
    if (fds.empty()) break;
    if (::poll(fds.data(), fds.size(), 1000) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (size_t p = 0; p < fds.size(); ++p) {
      Conn& c = conns[owner[p]];
      if (c.fd < 0) continue;
      bool drop = (fds[p].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  (fds[p].revents & POLLIN) == 0;
      if (fds[p].revents & POLLOUT) {
        while (c.out_pos < c.out.size()) {
          ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_pos += static_cast<size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            drop = true;
            break;
          }
        }
      }
      if (fds[p].revents & POLLIN) {
        char chunk[16384];
        for (;;) {
          ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
          if (n > 0) {
            c.in.append(chunk, static_cast<size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            drop = true;  // EOF or error with nothing outstanding
            break;
          }
        }
        size_t nl;
        while ((nl = c.in.find('\n')) != std::string::npos) {
          if (capture) (*capture)[owner[p]].push_back(c.in.substr(0, nl));
          c.in.erase(0, nl + 1);
          if (c.awaiting) {
            latencies.push_back(ms_since(c.sent_at));
            load.answered += 1;
            c.awaiting = false;
          }
          if (!c.pending.empty()) {
            stage_next(c);
          } else {
            drop = true;  // schedule complete
          }
        }
        if (!drop && c.awaiting) drop = false;
      }
      if (drop) {
        ::close(c.fd);
        c.fd = -1;
        open -= 1;
      }
    }
  }
  for (auto& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }

  load.wall_ms = ms_since(t0);
  load.throughput_rps =
      load.wall_ms > 0
          ? 1000.0 * static_cast<double>(load.answered) / load.wall_ms
          : 0.0;
  load.p50 = quantile(latencies, 0.50);
  load.p95 = quantile(latencies, 0.95);
  load.p99 = quantile(latencies, 0.99);
  return load;
}

/// Starts serve_tcp on an ephemeral port, runs `body(port)`, then drains.
/// Returns false if the listener never came up.
bool with_tcp_server(const ServerOptions& opts,
                     const std::function<void(AnalysisServer&, int)>& body) {
  AnalysisServer server(opts);
  std::thread serving([&] { server.serve_tcp("127.0.0.1", 0); });
  int port = -1;
  for (int i = 0; i < 1000 && port < 0; ++i) {
    port = server.tcp_port();
    if (port < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (port >= 0) body(server, port);
  server.request_stop();
  serving.join();
  return port >= 0;
}

// ---------------------------------------------------------------------------

struct Gate {
  std::string name;
  bool pass = false;
  bool armed = true;  ///< false: recorded but not enforced (with reason)
  std::string detail;
};

Json gates_json(const std::vector<Gate>& gates) {
  Json arr = Json::array();
  for (const Gate& g : gates) {
    arr.push(Json::object()
                 .set("name", g.name)
                 .set("pass", g.pass)
                 .set("armed", g.armed)
                 .set("detail", g.detail));
  }
  return arr;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
  }
  // Headroom for the 2x (client + server) fd fan-out of the TCP section.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const int kTcpConns = check ? 200 : 1000;
  const int kCoalesceConns = check ? 32 : 64;
  const int kWarmRepeat = check ? 6 : 24;
  const int kReplayRounds = check ? 200 : 800;

  std::vector<Gate> gates;
  std::vector<std::string> lines = corpus_lines();
  std::vector<MixedRequest> mixed = mixed_kind_requests();
  Json doc = Json::object();
  doc.set("mode", check ? "check" : "full");
  doc.set("host_cores", static_cast<Int>(cores));
  doc.set("corpus_files", static_cast<Int>(lines.size()));
  doc.set("mixed_kind_requests", static_cast<Int>(mixed.size()));

  // ------------------------------------------------------------------
  // Section 1: unix_pool -- the original worker-pool socket generator.
  std::cout << "=== lmre serve load harness ("
            << (check ? "check" : "full") << " mode, " << cores
            << " core(s)) ===\n\n[1/5] unix_pool\n";
  {
    TextTable t;
    t.header({"workers", "pass", "req", "rps", "p50 ms", "p95 ms", "p99 ms",
              "hit rate"});
    Json configs = Json::array();
    bool ok = true;
    const int kClients = 4;
    for (int workers : {1, 4, 8}) {
      std::string path = "bench_server_" + std::to_string(workers) + ".sock";
      ::unlink(path.c_str());
      ServerOptions opts;
      opts.workers = workers;
      opts.queue_depth = 64;
      opts.session.cache_shards = 8;
      AnalysisServer server(opts);
      std::thread serving([&] { server.serve_socket(path); });
      {
        Client probe;  // waits for the listener; pre-computes lines[0]
        for (int i = 0; i < 500 && !probe.connect(path); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        probe.request(lines[0]);
      }

      PassStats cold = run_pass(path, lines, kClients, 1, server.cache());
      PassStats warm =
          run_pass(path, lines, kClients, kWarmRepeat, server.cache());

      // Unloaded warm single-request p99: the floor the loaded warm tail
      // is compared against.
      double single_ms = 0.0;
      {
        Client solo;
        if (solo.connect(path)) {
          std::vector<double> singles;
          for (int i = 0; i < 200; ++i) {
            auto s0 = std::chrono::steady_clock::now();
            if (solo.request(lines[static_cast<size_t>(i) % lines.size()])) {
              singles.push_back(ms_since(s0));
            }
          }
          single_ms = quantile(singles, 0.99);
        }
      }
      double p99_over_single = single_ms > 0 ? warm.p99 / single_ms : 0.0;

      server.request_stop();
      serving.join();
      ::unlink(path.c_str());

      t.row({std::to_string(workers), "cold", std::to_string(cold.requests),
             fmt(cold.throughput_rps), fmt(cold.p50), fmt(cold.p95),
             fmt(cold.p99), fmt(cold.hit_rate)});
      t.row({std::to_string(workers), "warm", std::to_string(warm.requests),
             fmt(warm.throughput_rps), fmt(warm.p50), fmt(warm.p95),
             fmt(warm.p99), fmt(warm.hit_rate)});

      ok = ok && cold.requests == static_cast<long>(lines.size()) &&
           warm.requests == static_cast<long>(lines.size()) * kWarmRepeat &&
           warm.hit_rate == 1.0;

      configs.push(Json::object()
                       .set("workers", workers)
                       .set("queue_depth", static_cast<Int>(opts.queue_depth))
                       .set("clients", kClients)
                       .set("cold", pass_json(cold))
                       .set("warm", pass_json(warm))
                       .set("warm_single_ms", single_ms)
                       .set("p99_over_single", p99_over_single));
    }
    std::cout << t.render();
    doc.set("unix_pool", std::move(configs));
    gates.push_back({"unix_pool_complete", ok, true,
                     ok ? "every pass answered every request, warm all hits"
                        : "lost requests or cold entries in the warm pass"});
  }

  // ------------------------------------------------------------------
  // Section 2: shard_scaling -- the cache replayed directly, 8 threads.
  std::cout << "\n[2/5] shard_scaling\n";
  {
    // Real keys and payloads: the exact (request_key, payload) pairs the
    // serve cache would hold after a warm mixed-kind pass.
    AnalysisSession session(SessionOptions{});
    std::vector<std::pair<std::uint64_t, CachedEntry>> entries;
    for (const MixedRequest& r : mixed) {
      AnalysisRequest req(r.source, "<bench>", r.kind);
      AnalysisResult res = session.run(req);
      entries.emplace_back(
          session.request_key(req),
          CachedEntry{static_cast<int>(res.status), res.payload});
    }

    const int kThreads = 8;
    double rps[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      ResultCacheConfig cfg;
      cfg.capacity = entries.size() * 2;
      cfg.shards = pass == 0 ? 1 : 16;
      ResultCache cache(cfg);
      for (auto& [key, entry] : entries) cache.put(key, entry);

      auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          // Thread-specific stride: heavy overlap, different orders.
          for (int r = 0; r < kReplayRounds; ++r) {
            for (size_t i = 0; i < entries.size(); ++i) {
              size_t at = (i * static_cast<size_t>(2 * t + 1) +
                           static_cast<size_t>(t)) %
                          entries.size();
              cache.get(entries[at].first);
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      double wall = ms_since(t0);
      double probes = static_cast<double>(kThreads) * kReplayRounds *
                      static_cast<double>(entries.size());
      rps[pass] = wall > 0 ? 1000.0 * probes / wall : 0.0;
    }
    double ratio = rps[0] > 0 ? rps[1] / rps[0] : 0.0;
    std::cout << "  shards=1:  " << fmt(rps[0] / 1e6) << " Mops/s\n"
              << "  shards=16: " << fmt(rps[1] / 1e6) << " Mops/s  ("
              << fmt(ratio) << "x)\n";

    doc.set("shard_scaling",
            Json::object()
                .set("threads", kThreads)
                .set("entries", static_cast<Int>(entries.size()))
                .set("replay_rounds", kReplayRounds)
                .set("single_mutex_ops_per_s", rps[0])
                .set("sharded16_ops_per_s", rps[1])
                .set("speedup", ratio));
    const bool armed = cores >= 4;
    gates.push_back(
        {"shard_scaling_2x", ratio >= 2.0, armed,
         armed ? fmt(ratio) + "x sharded over single mutex (need >= 2.0x)"
               : "not armed: " + std::to_string(cores) +
                     " core(s); sharding cannot show wall-clock parallelism "
                     "below 4 cores (ratio recorded: " +
                     fmt(ratio) + "x)"});
  }

  // ------------------------------------------------------------------
  // Section 3: tcp_load -- 1000-connection mixed-kind warm load.
  std::cout << "\n[3/5] tcp_load (" << kTcpConns << " connections)\n";
  {
    ServerOptions opts;
    opts.workers = 8;
    opts.queue_depth = 4096;
    opts.session.cache_shards = 16;
    TcpLoad load;
    Int shed = 0, completed = 0;
    bool up = with_tcp_server(opts, [&](AnalysisServer& server, int port) {
      // Warm the cache through the wire first (single connection), so the
      // measured storm is the steady-state fleet shape: all hits.
      std::vector<std::vector<std::string>> warmup(1);
      for (const MixedRequest& r : mixed) warmup[0].push_back(r.line);
      drive_tcp(port, warmup);

      std::vector<std::vector<std::string>> schedules(
          static_cast<size_t>(kTcpConns));
      for (size_t i = 0; i < schedules.size(); ++i) {
        schedules[i].push_back(mixed[i % mixed.size()].line);
        schedules[i].push_back(mixed[(i + 7) % mixed.size()].line);
      }
      load = drive_tcp(port, schedules);
      shed = server.metrics().counter("serve.overloaded");
      completed = server.metrics().counter("serve.completed");
    });
    double shed_rate =
        load.requests > 0
            ? static_cast<double>(shed) / static_cast<double>(load.requests)
            : 0.0;
    std::cout << "  " << load.connected << " conns, " << load.answered << "/"
              << load.requests << " answered, " << fmt(load.throughput_rps)
              << " rps, p50 " << fmt(load.p50) << " ms, p95 " << fmt(load.p95)
              << " ms, p99 " << fmt(load.p99) << " ms, shed " << shed << "\n";

    doc.set("tcp_load", tcp_load_json(load)
                            .set("workers", opts.workers)
                            .set("queue_depth",
                                 static_cast<Int>(opts.queue_depth))
                            .set("shed", shed)
                            .set("shed_rate", shed_rate)
                            .set("server_completed", completed));
    bool ok = up && load.connected == kTcpConns &&
              load.answered == load.requests && load.p99 > 0.0;
    gates.push_back(
        {"tcp_load_all_answered", ok, true,
         std::to_string(load.answered) + "/" + std::to_string(load.requests) +
             " answered over " + std::to_string(load.connected) +
             " connections, p99 " + fmt(load.p99) + " ms"});
  }

  // ------------------------------------------------------------------
  // Section 4: coalesce -- N identical cold requests, one computation.
  std::cout << "\n[4/5] coalesce (" << kCoalesceConns
            << " identical cold requests)\n";
  {
    // Heavy enough (3-deep nest, full pipeline with optimize search) that
    // every connection is admitted while the leader is still computing.
    const std::string heavy =
        "array C[28][28];\narray A[28][28];\narray B[28][28];\n"
        "for i = 1 to 28\n  for j = 1 to 28\n    for k = 1 to 28\n"
        "      {\n        C[i][j] = C[i][j] + A[i][k] + B[k][j];\n      }\n";
    const std::string line = request_json("hot", "full", heavy);

    ServerOptions opts;
    opts.workers = 2;
    opts.queue_depth = static_cast<size_t>(kCoalesceConns) + 8;
    TcpLoad load;
    Int computed = 0, total = 0, coalesced = 0;
    bool identical = false;
    bool up = with_tcp_server(opts, [&](AnalysisServer& server, int port) {
      std::vector<std::vector<std::string>> schedules(
          static_cast<size_t>(kCoalesceConns), {line});
      std::vector<std::vector<std::string>> responses;
      load = drive_tcp(port, schedules, &responses);
      computed = server.metrics().counter("runs.computed");
      total = server.metrics().counter("runs.total");
      coalesced = server.metrics().counter("serve.coalesced");
      identical = !responses.empty() && !responses[0].empty();
      for (auto& r : responses) {
        identical = identical && r.size() == 1 && r[0] == responses[0][0];
      }
    });
    std::cout << "  computed " << computed << " (runs.total " << total
              << "), coalesced " << coalesced << ", byte-identical: "
              << (identical ? "yes" : "NO") << "\n";

    doc.set("coalesce", Json::object()
                            .set("connections", static_cast<Int>(kCoalesceConns))
                            .set("answered", static_cast<Int>(load.answered))
                            .set("runs_computed", computed)
                            .set("runs_total", total)
                            .set("coalesced_responses", coalesced)
                            .set("byte_identical", identical)
                            .set("wall_ms", load.wall_ms));
    bool ok = up && computed == 1 &&
              coalesced == static_cast<Int>(kCoalesceConns - 1) &&
              load.answered == kCoalesceConns && identical;
    gates.push_back(
        {"coalesce_single_compute", ok, true,
         std::to_string(computed) + " computation(s) for " +
             std::to_string(kCoalesceConns) + " identical requests, " +
             std::to_string(coalesced) + " coalesced"});
  }

  // ------------------------------------------------------------------
  // Section 5: overload -- a tiny queue must shed, answer, and survive.
  std::cout << "\n[5/5] overload (workers=1, queue_depth=4)\n";
  {
    ServerOptions opts;
    opts.workers = 1;
    opts.queue_depth = 4;
    opts.coalesce = false;  // distinct sources anyway; keep the path pure
    TcpLoad load;
    Int shed = 0;
    long followup_answered = 0;
    bool up = with_tcp_server(opts, [&](AnalysisServer& server, int port) {
      const int kStorm = 64;
      std::vector<std::vector<std::string>> schedules(
          static_cast<size_t>(kStorm));
      for (int i = 0; i < kStorm; ++i) {
        // Distinct cold sources: no cache or coalescing relief.
        std::string src = "array a[" + std::to_string(64 + i) +
                          "];\nfor i = 1 to " + std::to_string(63 + i) +
                          "\n  {\n    a[i] = a[i] + a[i + 1];\n  }\n";
        schedules[static_cast<size_t>(i)].push_back(
            request_json("s" + std::to_string(i), "analyze", src));
      }
      load = drive_tcp(port, schedules);
      shed = server.metrics().counter("serve.overloaded");
      // The server must still serve after the storm.
      std::vector<std::vector<std::string>> after(1);
      after[0].push_back(lines[0]);
      followup_answered = drive_tcp(port, after).answered;
    });
    double shed_rate =
        load.requests > 0
            ? static_cast<double>(shed) / static_cast<double>(load.requests)
            : 0.0;
    std::cout << "  " << load.answered << "/" << load.requests
              << " answered, " << shed << " shed ("
              << fmt(100.0 * shed_rate) << "%), follow-up answered: "
              << (followup_answered == 1 ? "yes" : "NO") << "\n";

    doc.set("overload", Json::object()
                            .set("requests", static_cast<Int>(load.requests))
                            .set("answered", static_cast<Int>(load.answered))
                            .set("shed", shed)
                            .set("shed_rate", shed_rate)
                            .set("followup_answered",
                                 followup_answered == 1));
    bool ok = up && shed > 0 && load.answered == load.requests &&
              followup_answered == 1;
    gates.push_back({"overload_sheds_and_survives", ok, true,
                     std::to_string(shed) + " of " +
                         std::to_string(load.requests) +
                         " shed, every line answered, server kept serving"});
  }

  // ------------------------------------------------------------------
  doc.set("gates", gates_json(gates));
  bool all_pass = true;
  std::cout << "\ngates:\n";
  for (const Gate& g : gates) {
    std::cout << "  " << (g.pass ? "PASS" : (g.armed ? "FAIL" : "skip"))
              << "  " << g.name << " -- " << g.detail << "\n";
    if (g.armed && !g.pass) all_pass = false;
  }

  std::ofstream out("BENCH_server.json", std::ios::trunc);
  out << json_envelope("bench-server", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_server.json\n";
  return all_pass ? 0 : 1;
}
