// MRC bench: exact reuse-distance histograms vs SHARDS-style sampling on
// bound ladders of three kernels.  Two questions per row:
//
//   * wall-clock -- what does the full-curve product cost next to the
//     sampled estimate at rates 0.1 and 0.01 (same dense engine, same
//     Fenwick pass, fewer tracked elements)?
//   * accuracy -- the measured max displacement-aware curve error
//     (mrc_curve_error, DESIGN.md §14) over the exact curve's capacity
//     sweep, printed next to the DECLARED error bound each sampled result
//     carries.  The raw pointwise max |sampled - exact| also lands in the
//     JSON: at a step of the exact curve it approaches the step height
//     (capacity-axis jitter), which is exactly why the contract metric
//     lets the capacity flex before measuring vertically.
//
// Writes BENCH_mrc.json (enveloped) into the current directory.  With
// --check the bench exits nonzero if any measured curve error exceeds the
// declared bound, or if any exact run takes 30 s or longer (a generous
// ceiling: the whole ladder fits in well under a second today).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "codes/kernels.h"
#include "exact/trace_engine.h"
#include "ir/builder.h"
#include "mrc/mrc.h"
#include "support/json.h"
#include "support/text.h"

using namespace lmre;

namespace {

constexpr int kReps = 3;  // best-of timing, min over reps
constexpr double kExactBudgetMs = 30'000.0;
constexpr double kRates[] = {0.1, 0.01};

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = ms_since(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct SampledCol {
  double rate = 0.0;
  double ms = 0.0;
  double max_error = 0.0;      // max mrc_curve_error over the sweep
  double max_pointwise = 0.0;  // max raw |sampled - exact| (informational)
  double bound = 0.0;          // the result's declared error bound
  Int elements = 0;            // raw sampled distinct count
};

struct Row {
  std::string kernel;
  std::string bounds;
  Int accesses = 0;
  Int distinct = 0;
  Int knee = 0;
  double exact_ms = 0.0;
  std::vector<SampledCol> sampled;
};

// The ladders: the paper's Example 10 shape at growing scale factors (one
// array, one reference, the 687-span reuse), a 2-point stencil (short
// distances, deep reuse), and matmult (three arrays, mixed distances).
LoopNest example10_scaled(Int s) {
  NestBuilder b;
  b.loop("i", 1, 10 * s).loop("j", 1, 20 * s).loop("k", 1, 30 * s);
  ArrayId a = b.array("A", {3 * 10 * s + 30 * s + 1, 20 * s + 30 * s + 1});
  b.statement().read(a, {{3, 0, 1}, {0, 1, 1}}, {0, 0});
  return b.build();
}

LoopNest two_point(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId a = b.array("A", {n + 1, n + 1});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 0});
  return b.build();
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

  std::vector<std::pair<std::string, std::vector<LoopNest>>> ladders;
  ladders.emplace_back("example10",
                       std::vector<LoopNest>{example10_scaled(1),
                                             example10_scaled(2),
                                             example10_scaled(4)});
  ladders.emplace_back(
      "2point", std::vector<LoopNest>{two_point(64), two_point(256)});
  ladders.emplace_back("matmult",
                       std::vector<LoopNest>{codes::kernel_matmult(16),
                                             codes::kernel_matmult(48)});

  bool ok = true;
  std::vector<Row> rows;
  TraceArena arena;

  for (auto& [name, nests] : ladders) {
    for (const LoopNest& nest : nests) {
      Row row;
      row.kernel = name;
      {
        std::ostringstream os;
        for (size_t k = 0; k < nest.depth(); ++k) {
          os << (k ? "x" : "") << nest.bounds().range(k).trip_count();
        }
        row.bounds = os.str();
      }

      MrcResult exact;
      row.exact_ms = best_of([&] { exact = compute_mrc(nest, {}, arena); });
      row.accesses = static_cast<Int>(exact.aggregate.total);
      row.distinct = static_cast<Int>(exact.aggregate.cold);
      row.knee = exact.knee;
      if (check && row.exact_ms >= kExactBudgetMs) {
        std::cout << "CHECK FAIL: exact " << fmt(row.exact_ms, 1)
                  << "ms >= " << kExactBudgetMs << "ms on " << name << " "
                  << row.bounds << '\n';
        ok = false;
      }

      // The error sweep covers the exact curve's own capacity list plus 0
      // (the all-miss end) -- the same sweep the property suite uses.
      std::vector<Int> caps = default_mrc_capacities(exact);
      caps.insert(caps.begin(), 0);

      for (double rate : kRates) {
        SampledCol col;
        col.rate = rate;
        MrcOptions mo;
        mo.sample_rate = rate;
        MrcResult sampled;
        col.ms = best_of([&] { sampled = compute_mrc(nest, mo, arena); });
        col.bound = sampled.error_bound;
        col.elements = sampled.sampled_elements;
        Int worst_cap = 0;
        for (Int c : caps) {
          const double e = mrc_curve_error(sampled, exact, c);
          if (e > col.max_error) {
            col.max_error = e;
            worst_cap = c;
          }
          col.max_pointwise =
              std::max(col.max_pointwise,
                       std::abs(sampled.aggregate.miss_ratio(c) -
                                exact.aggregate.miss_ratio(c)));
        }
        if (check && col.max_error > col.bound) {
          std::cout << "CHECK FAIL: rate " << fmt(rate, 2) << " error "
                    << fmt(col.max_error, 4) << " > declared bound "
                    << fmt(col.bound, 4) << " at capacity " << worst_cap
                    << " on " << name << " " << row.bounds << '\n';
          ok = false;
        }
        row.sampled.push_back(col);
      }
      rows.push_back(std::move(row));
    }
  }

  TextTable t;
  t.header({"kernel", "bounds", "accesses", "knee", "exact (ms)",
            "s=0.1 (ms)", "err/bound", "s=0.01 (ms)", "err/bound"});
  Json jrows = Json::array();
  for (const Row& r : rows) {
    std::vector<std::string> cells = {r.kernel, r.bounds,
                                      with_commas(r.accesses),
                                      with_commas(r.knee), fmt(r.exact_ms, 3)};
    for (const SampledCol& c : r.sampled) {
      cells.push_back(fmt(c.ms, 3));
      cells.push_back(fmt(c.max_error, 3) + "/" + fmt(c.bound, 3));
    }
    t.row(cells);

    Json jr = Json::object();
    jr.set("kernel", r.kernel)
        .set("bounds", r.bounds)
        .set("accesses", r.accesses)
        .set("distinct", r.distinct)
        .set("knee", r.knee)
        .set("exact_ms", r.exact_ms);
    Json jsampled = Json::array();
    for (const SampledCol& c : r.sampled) {
      Json jc = Json::object();
      jc.set("rate", Json::number(c.rate))
          .set("ms", c.ms)
          .set("sampled_elements", c.elements)
          .set("max_curve_error", c.max_error)
          .set("max_pointwise_error", c.max_pointwise)
          .set("declared_bound", c.bound);
      jsampled.push(std::move(jc));
    }
    jr.set("sampled", std::move(jsampled));
    jrows.push(std::move(jr));
  }
  std::cout << "-- exact miss-ratio curves vs hash-threshold sampling --\n"
            << t.render();

  Json doc = Json::object();
  doc.set("exact_budget_ms", kExactBudgetMs);
  doc.set("reps", kReps);
  doc.set("rows", std::move(jrows));
  std::ofstream("BENCH_mrc.json")
      << json_envelope("bench-mrc", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_mrc.json\n";

  if (check) std::cout << (ok ? "CHECK OK\n" : "CHECK FAILED\n");
  return ok ? 0 : 1;
}
