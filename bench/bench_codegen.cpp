// Codegen bench: emit latency, compile+run wall clock and footprint
// ratios for the C backend (src/codegen) across the paper's Figure-2
// suite and the examples/loops corpus, each lowered in identity order
// plus -- for the Figure-2 rows -- under the optimizer's certified plan.
// Prints a table and writes BENCH_codegen.json (enveloped) into the
// current directory so the footprint trajectory is machine-readable.
//
// With --check the bench exits nonzero if any emission takes 100 ms or
// longer, any footprint ratio leaves (0, 1], or -- when a system C
// compiler exists -- any compiled kernel fails its embedded self-check
// (bit-identity, window, traffic).  Without a compiler the run columns
// print "-" and the check degrades to the emission gates.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/codegen.h"
#include "codegen/driver.h"
#include "codes/kernels.h"
#include "ir/parser.h"
#include "linalg/mat.h"
#include "support/error.h"
#include "support/json.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "verify/verify.h"

using namespace lmre;

namespace {

constexpr int kReps = 3;                  // best-of timing, min over reps
constexpr double kEmitBudgetMs = 100.0;   // --check: emission must stay under

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = ms_since(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct Row {
  std::string kernel;
  std::string plan;  // "identity" or the optimizer's transform
  Int iterations = 0;
  double emit_ms = 0.0;
  double compile_ms = -1.0;  // < 0: no compiler on PATH
  double run_ms = -1.0;
  Int declared_cells = 0;
  Int window_cells = 0;
  double ratio = 0.0;
  bool identical = false;  // meaningful only when run_ms >= 0
};

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << r;
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The bench runs from <build>/bench (ctest smoke) or the repo root
// (tier1.sh); probe plausible source roots for the .loop corpus.
std::string corpus_root() {
  namespace fs = std::filesystem;
  for (const char* base : {"", "../", "../../", "../../../"}) {
    std::error_code ec;
    if (fs::is_directory(std::string(base) + "examples/loops", ec)) {
      return base;
    }
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;
  const std::string cc = find_cc();
  bool ok = true;

  struct Job {
    std::string name;
    LoopNest nest;
    bool try_optimizer = false;
  };
  std::vector<Job> jobs;
  for (auto& entry : codes::figure2_suite()) {
    jobs.push_back({entry.name, entry.nest, /*try_optimizer=*/true});
  }
  std::string root = corpus_root();
  size_t corpus_files = 0, corpus_skipped = 0;
  if (root != "?") {
    namespace fs = std::filesystem;
    std::vector<fs::path> paths;
    for (const auto& e : fs::directory_iterator(root + "examples/loops")) {
      if (e.path().extension() == ".loop") paths.push_back(e.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      Program program = parse_program(read_file(p.string()));
      if (program.phase_count() != 1) {
        ++corpus_skipped;  // multi-phase sources sit outside the fragment
        continue;
      }
      jobs.push_back({p.filename().string(), program.phase_nest(0), false});
      ++corpus_files;
    }
  } else {
    std::cout << "note: examples/loops not found from cwd; corpus rows "
                 "skipped\n";
  }

  std::vector<Row> rows;
  auto bench_one = [&](const std::string& name, const LoopNest& nest,
                       const VerifyPlan& plan, const std::string& plan_name) {
    Row row;
    row.kernel = name;
    row.plan = plan_name;
    row.iterations = nest.iteration_count();
    CodegenResult cg;
    try {
      row.emit_ms = best_of([&] { cg = emit_c(nest, plan); });
    } catch (const Error& err) {
      std::cout << "EMIT FAIL on " << name << ": " << err.what() << '\n';
      ok = false;
      return;
    }
    row.declared_cells = cg.original_cells;
    row.window_cells = cg.window_cells;
    row.ratio = cg.footprint_ratio();
    if (!(row.ratio > 0.0) || row.ratio > 1.0) {
      std::cout << "CHECK FAIL: footprint ratio " << fmt_ratio(row.ratio)
                << " outside (0, 1] on " << name << '\n';
      ok = false;
    }
    if (check && row.emit_ms >= kEmitBudgetMs) {
      std::cout << "CHECK FAIL: emit " << fmt_ms(row.emit_ms)
                << "ms >= " << kEmitBudgetMs << "ms on " << name << '\n';
      ok = false;
    }
    if (!cc.empty()) {
      RunVerdict v = compile_and_run(cg.c_source, cc, name);
      row.compile_ms = v.compile_ms;
      row.run_ms = v.run_ms;
      row.identical = v.identical;
      if (!v.ok()) {
        std::cout << "RUN FAIL on " << name << " (status " << v.status
                  << "): " << v.detail << '\n';
        ok = false;
      }
    }
    rows.push_back(std::move(row));
  };

  for (const Job& job : jobs) {
    bench_one(job.name, job.nest, VerifyPlan{}, "identity");
    if (!job.try_optimizer) continue;
    // The optimizer's own plan, certified-gated exactly like `lmre
    // codegen --plan`; skip the row when the winner is the identity.
    OptimizeResult res = optimize_locality(job.nest);
    if (res.transform == IntMat::identity(job.nest.depth())) continue;
    VerifyPlan plan;
    plan.steps = {res.transform};
    if (!verify_plan(job.nest, plan).certified) continue;
    bench_one(job.name, job.nest, plan, plan.str());
  }

  TextTable t;
  t.header({"kernel", "plan", "emit (ms)", "compile (ms)", "run (ms)",
            "declared", "window", "ratio"});
  Json jrows = Json::array();
  for (const Row& r : rows) {
    t.row({r.kernel, r.plan, fmt_ms(r.emit_ms),
           r.compile_ms < 0 ? "-" : fmt_ms(r.compile_ms),
           r.run_ms < 0 ? "-" : fmt_ms(r.run_ms),
           with_commas(r.declared_cells), with_commas(r.window_cells),
           fmt_ratio(r.ratio)});
    Json jr = Json::object();
    jr.set("kernel", r.kernel)
        .set("plan", r.plan)
        .set("iterations", r.iterations)
        .set("emit_ms", r.emit_ms)
        .set("declared_cells", r.declared_cells)
        .set("window_cells", r.window_cells)
        .set("footprint_ratio", r.ratio);
    if (r.compile_ms >= 0) {
      jr.set("compile_ms", r.compile_ms)
          .set("run_ms", r.run_ms)
          .set("identical", r.identical);
    }
    jrows.push(std::move(jr));
  }
  std::cout << "-- C backend: emit latency + footprint vs declared --\n"
            << t.render();
  if (cc.empty()) {
    std::cout << "note: no system C compiler on PATH; compile/run columns "
                 "skipped\n";
  }

  Json doc = Json::object();
  doc.set("emit_budget_ms", kEmitBudgetMs);
  doc.set("cc", cc.empty() ? "none" : cc);
  doc.set("corpus_files", static_cast<Int>(corpus_files));
  doc.set("corpus_skipped", static_cast<Int>(corpus_skipped));
  doc.set("rows", std::move(jrows));
  std::ofstream("BENCH_codegen.json")
      << json_envelope("bench-codegen", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_codegen.json\n";

  if (check) std::cout << (ok ? "CHECK OK\n" : "CHECK FAILED\n");
  return ok ? 0 : 1;
}
