// Runtime bench: cold vs warm AnalysisSession over the builder-kernel
// corpus, demonstrating what memoization buys on a full-pipeline batch.
// Prints a table and writes BENCH_runtime.json (enveloped: timings plus
// the session's metrics snapshot) into the current directory so perf
// trajectories are machine-readable; scripts/tier1.sh smoke-checks the
// file.

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "codes/extra_kernels.h"
#include "codes/kernels.h"
#include "ir/parser.h"
#include "runtime/session.h"
#include "support/json.h"
#include "support/text.h"

using namespace lmre;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

std::vector<AnalysisRequest> corpus() {
  std::vector<AnalysisRequest> reqs;
  for (auto& e : codes::figure2_suite()) {
    reqs.push_back({to_dsl(e.nest), e.name + ".loop",
                    AnalysisRequest::Kind::kFull});
  }
  for (auto& [name, nest] : codes::extra_suite()) {
    reqs.push_back({to_dsl(nest), name + ".loop", AnalysisRequest::Kind::kFull});
  }
  return reqs;
}

}  // namespace

int main() {
  std::vector<AnalysisRequest> reqs = corpus();

  SessionOptions opts;
  opts.run.threads = 0;  // all cores; results are thread-count independent
  AnalysisSession session(opts);

  auto t0 = std::chrono::steady_clock::now();
  std::vector<AnalysisResult> cold = session.run_batch(reqs);
  double cold_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  std::vector<AnalysisResult> warm = session.run_batch(reqs);
  double warm_ms = ms_since(t0);

  bool identical = true;
  int hits = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    identical = identical && cold[i].payload == warm[i].payload;
    hits += warm[i].cache_hit ? 1 : 0;
  }

  TextTable t;
  t.header({"run", "files", "time (ms)", "cache hits"});
  t.row({"cold", std::to_string(reqs.size()),
         std::to_string(static_cast<Int>(cold_ms)), "0"});
  t.row({"warm", std::to_string(reqs.size()),
         std::to_string(static_cast<Int>(warm_ms)), std::to_string(hits)});
  std::cout << "=== batch runtime: cold vs warm session ===\n"
            << t.render() << "payloads identical: "
            << (identical ? "yes" : "NO") << '\n';

  Json doc = Json::object();
  doc.set("files", static_cast<Int>(reqs.size()));
  doc.set("cold_ms", cold_ms);
  doc.set("warm_ms", warm_ms);
  doc.set("warm_hits", Int{hits});
  doc.set("payloads_identical", identical);
  doc.set("metrics", session.metrics_json());
  std::ofstream("BENCH_runtime.json")
      << json_envelope("bench-runtime", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_runtime.json\n";

  return identical && hits == static_cast<int>(reqs.size()) ? 0 : 1;
}
