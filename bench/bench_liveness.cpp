// Liveness bench: the paper's window (MWS) against Zhao-Malik style exact
// value liveness (reference [20], the work the introduction positions
// against) and the declared sizes, on the Figure-2 suite.
//
// The two metrics answer different questions:
//   * MWS  = buffer that captures ALL reuse (any re-touched location);
//   * live = minimum memory holding every value still needed.
// Both sit far below the declared sizes, which is the paper's point.

#include <chrono>
#include <iostream>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/liveness.h"
#include "exact/oracle.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== MWS vs exact value liveness (Zhao-Malik [20]) ===\n\n";
  TextTable t;
  t.header({"code", "default", "MWS", "live values", "inputs", "MWS red.",
            "live red."});
  for (auto& e : codes::figure2_suite()) {
    Int def = e.nest.default_memory();
    Int mws = simulate(e.nest).mws_total;
    LivenessStats live = min_memory_liveness(e.nest);
    t.row({e.name, with_commas(def), with_commas(mws), with_commas(live.max_live),
           with_commas(live.input_elements), percent(1.0 - double(mws) / def),
           percent(1.0 - double(live.max_live) / def)});
  }
  std::cout << t.render() << '\n';

  std::cout << "=== Transformations shrink both metrics (Example 8) ===\n\n";
  LoopNest nest = codes::example_8();
  auto res = minimize_mws_2d(nest);
  TextTable u;
  u.header({"order", "MWS", "live values"});
  u.row({"as written", std::to_string(simulate(nest).mws_total),
         std::to_string(min_memory_liveness(nest).max_live)});
  if (res) {
    u.row({"transformed " + res->transform.str(),
           std::to_string(simulate_transformed(nest, res->transform).mws_total),
           std::to_string(min_memory_liveness(nest, &res->transform).max_live)});
  }
  std::cout << u.render()
            << "\n=> estimating memory from value liveness alone (as [20] does)\n"
               "   misses that loop transformations can change it: the paper's\n"
               "   contribution is exactly that optimization step.\n";

  // Slab-parallel oracle timing: the chunked simulate splits the outer loop
  // into per-worker slabs and merges the per-slab traces; every statistic
  // must equal the serial run (the merge is exact, not approximate).
  std::cout << "\n=== serial vs slab-parallel exact oracle (example 8, 300x300) ===\n\n";
  LoopNest big = codes::example_8(300, 300);
  TraceStats serial_stats{};
  TextTable w;
  w.header({"threads", "wall time", "MWS", "distinct", "identical"});
  for (int threads : {1, 2, 4, 0}) {
    auto start = std::chrono::steady_clock::now();
    TraceStats s = simulate(big, threads);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    if (threads == 1) serial_stats = s;
    bool same = s.mws_total == serial_stats.mws_total &&
                s.distinct_total == serial_stats.distinct_total &&
                s.reuse_total == serial_stats.reuse_total &&
                s.iterations == serial_stats.iterations;
    w.row({threads == 0 ? "all" : std::to_string(threads),
           std::to_string(us) + " us", with_commas(s.mws_total),
           with_commas(s.distinct_total), same ? "yes" : "NO"});
  }
  std::cout << w.render()
            << "(single-core hosts see pool overhead instead of speedup;\n"
               " the identical column is the point being demonstrated)\n";
  return 0;
}
