// E5 -- Section 4, Example 7: the transformation ladder of Eisenbeis et al.
// (interchange/reversal only) against the compound unimodular transformation,
// which drives the maximum window size to 1.

#include <iostream>

#include "analysis/window.h"
#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"
#include "transform/unimodular.h"

using namespace lmre;

int main() {
  LoopNest nest = codes::example_7();
  std::cout << "=== E5: Example 7 -- X[2i-3j] over [1,20]x[1,30] ===\n\n"
            << print_nest(nest) << '\n';

  auto res = minimize_mws_2d(nest);
  TextTable t;
  t.header({"transformation", "T", "eq.(2) estimate", "exact MWS", "paper cost"});
  auto row = [&](const std::string& name, const IntMat& tm, const std::string& paper) {
    Rational est = mws2_estimate(IntVec{2, -3}, nest.bounds(), tm(0, 0), tm(0, 1));
    Int exact = simulate_transformed(nest, tm).mws_total;
    t.row({name, tm.str(), est.str(), std::to_string(exact), paper});
  };
  row("original", IntMat::identity(2), "89");
  row("interchange", interchange(2, 0, 1), "41");
  row("reversal (inner)", reversal(2, 1), "86");
  row("reversed interchange", IntMat{{0, 1}, {-1, 0}}, "36");
  if (res) row("compound (ours)", res->transform, "1");
  std::cout << t.render() << '\n';

  if (res) {
    std::cout << "compound transformation found by the minimizer:\n"
              << "  T = " << res->transform.str() << "  (eq.(2) objective "
              << res->predicted_mws.str() << ")\n\n"
              << "transformed loop:\n"
              << TransformedNest(nest, res->transform).print()
            << "\nEvery access to an element of X now falls on consecutive\n"
               "iterations of the inner loop: the window never holds more\n"
               "than one element.\n";
  }
  return 0;
}
