// E2/E3/E4 -- Section 3: distinct-access estimation.
// Regenerates every number in Examples 2-6: the closed-form estimates, the
// paper's printed values, and the exact oracle counts.

#include <iostream>

#include "analysis/distinct.h"
#include "analysis/nonuniform.h"
#include "analysis/symbolic.h"
#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "support/text.h"

using namespace lmre;

namespace {

void uniform_row(TextTable& t, const std::string& name, const LoopNest& nest,
                 const std::string& paper_reuse, const std::string& paper_distinct) {
  DistinctEstimate e = estimate_distinct(nest, 0);
  TraceStats x = simulate(nest);
  t.row({name, to_string(e.method), paper_reuse, std::to_string(e.reuse),
         paper_distinct, std::to_string(e.distinct), std::to_string(x.distinct_total),
         e.exact_claimed ? "yes" : "no"});
}

}  // namespace

int main() {
  std::cout << "=== E2/E3: Section 3.1-3.2 -- distinct accesses, uniform refs ===\n\n";
  TextTable t;
  t.header({"example", "method", "reuse paper", "reuse ours", "distinct paper",
            "distinct ours", "distinct exact", "exact claimed"});
  uniform_row(t, "ex2 (A[i][j], A[i-1][j+2])", codes::example_2(), "72", "128");
  uniform_row(t, "ex3 (4 reads)", codes::example_3(), "261", "139");
  uniform_row(t, "ex4 (A[2i+5j+1])", codes::example_4(), "120", "80");
  uniform_row(t, "ex5 (A[3i+k][j+k])", codes::example_5(), "4131", "1869");
  uniform_row(t, "ex8 (2 refs, 1-d)", codes::example_8(), "-", "-");
  std::cout << t.render() << '\n';
  std::cout << "note: ex3's paper estimate (139) intentionally ignores triple\n"
               "overlaps; the true union is 121 (exact column).  Our\n"
               "inclusion-exclusion closed form (2^r box volumes, no\n"
               "enumeration) returns the true union: "
            << distinct_exact_inclusion_exclusion(codes::example_3(), 0)
            << ".\n\n";

  std::cout << "symbolic forms (valid for ALL bounds, not just the instances):\n"
            << "  ex2 reuse    = " << symbolic_reuse(IntVec{1, -2}).str() << '\n'
            << "  ex2 distinct = "
            << symbolic_distinct_full_dim(2, 2, {IntVec{1, -2}}).str() << '\n'
            << "  ex4 distinct = " << symbolic_distinct_kernel(IntVec{5, -2}).str()
            << '\n'
            << "  ex5 distinct = " << symbolic_distinct_kernel(IntVec{1, 3, -3}).str()
            << "\n\n";

  std::cout << "=== E4: Section 3.2 -- non-uniformly generated references ===\n\n";
  std::cout << print_nest(codes::example_6()) << '\n';
  NonUniformBounds b = nonuniform_bounds(codes::example_6(), 0);
  TraceStats x = simulate(codes::example_6());
  TextTable nu;
  nu.header({"quantity", "paper", "ours"});
  nu.row({"LB_min", "0", std::to_string(b.lb_min)});
  nu.row({"UB_max", "190", std::to_string(b.ub_max)});
  nu.row({"upper bound", "191", std::to_string(b.upper)});
  nu.row({"lower bound (paper rule)", "179", std::to_string(b.lower_paper)});
  nu.row({"lower bound (conservative)", "-", std::to_string(b.lower_conservative)});
  nu.row({"actual distinct", "181", std::to_string(x.distinct_total)});
  std::cout << nu.render();
  std::cout << "\nnote: the paper quotes 181 accesses for this loop; our oracle\n"
               "measures 182 -- within [lower, upper] either way.\n";
  return 0;
}
