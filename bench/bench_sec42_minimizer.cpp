// E7 -- Section 4.2: the worked minimization example.
// Shows the tiling-legality constraint system, the candidate rows the search
// examines, the winning row's analytic estimate (22) against the exact
// optimum (21), and the unimodular completion of the winner.

#include <chrono>
#include <iostream>

#include "analysis/window.h"
#include "codes/examples.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/unimodular.h"

using namespace lmre;

int main() {
  LoopNest nest = codes::example_8();
  std::cout << "=== E7: Section 4.2 worked example (minimizing eq. (2)) ===\n\n";

  auto deps = analyze_dependences(nest).distance_vectors(true);
  std::cout << "tiling-legality constraints on the first row (a, b):\n";
  for (const auto& d : deps) {
    std::cout << "  " << d[0] << "*a + (" << d[1] << ")*b >= 0   (dependence "
              << d.str() << ")\n";
  }
  std::cout << "(paper: 3a-2b >= 0, 2a >= 0, 5a-2b >= 0)\n\n";

  // Candidate table for small rows: the objective landscape of eq. (2).
  std::cout << "feasible candidate rows (|a|,|b| <= 4) and their estimates:\n";
  TextTable t;
  t.header({"(a, b)", "w = |5a-2b|", "maxspan", "eq.(2) estimate", "exact after T"});
  for (Int a = -4; a <= 4; ++a) {
    for (Int b = -4; b <= 4; ++b) {
      if ((a == 0 && b == 0) || gcd(a, b) != 1) continue;
      bool ok = true;
      for (const auto& d : deps) {
        if (a * d[0] + b * d[1] < 0) ok = false;
      }
      if (!ok) continue;
      Rational est = mws2_estimate(IntVec{2, 5}, nest.bounds(), a, b);
      if (est > Rational(60)) continue;  // keep the table readable
      Rational span = maxspan2(nest.bounds(), a, b);
      // Complete and measure when possible.
      MinimizerOptions opts;
      std::string exact = "-";
      // Reuse the library's completion by running the minimizer restricted
      // to this row via a tiny local search: simulate the completed matrix.
      Int x, y;
      if (extended_gcd(a, b, x, y) == 1) {
        for (auto base : {std::pair<Int, Int>{-y, x}, std::pair<Int, Int>{y, -x}}) {
          IntMat cand{{a, b}, {base.first, base.second}};
          if (cand.is_unimodular() && is_tileable(cand, deps)) {
            exact = std::to_string(simulate_transformed(nest, cand).mws_total);
            break;
          }
        }
      }
      t.row({"(" + std::to_string(a) + ", " + std::to_string(b) + ")",
             std::to_string(checked_abs(5 * a - 2 * b)), span.str(), est.str(), exact});
    }
  }
  std::cout << t.render() << '\n';

  auto res = minimize_mws_2d(nest);
  if (res) {
    std::cout << "minimizer result:\n"
              << "  first row        : " << res->transform.row(0).str()
              << "   (paper: (2, 3))\n"
              << "  analytic estimate: " << res->predicted_mws.str()
              << "        (paper: 22)\n"
              << "  completion       : " << res->transform.str() << '\n'
              << "  exact MWS after  : "
              << simulate_transformed(nest, res->transform).mws_total
              << "        (paper: actual minimum 21)\n"
              << "  rows examined    : " << res->candidates << '\n';
  }

  // Serial vs parallel search on an enlarged configuration: widen the
  // coefficient grid so the scoring loop dominates, then sweep the worker
  // count.  The result columns must agree for every thread count -- the
  // parallel reduction is ordered (DESIGN.md, "Determinism contract") --
  // so the table doubles as a determinism check.
  std::cout << "\n=== serial vs parallel row search (coeff_bound = 96) ===\n\n";
  MinimizerOptions large;
  large.coeff_bound = 96;
  std::optional<MinimizerResult> reference;
  TextTable timing;
  timing.header({"threads", "wall time", "first row", "estimate", "rows", "identical"});
  for (int threads : {1, 2, 4, 0}) {
    MinimizerOptions opts = large;
    opts.threads = threads;
    auto start = std::chrono::steady_clock::now();
    auto run = minimize_mws_2d(nest, opts);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    if (!run) continue;
    if (!reference) reference = run;
    bool same = run->transform == reference->transform &&
                run->predicted_mws == reference->predicted_mws &&
                run->candidates == reference->candidates;
    timing.row({threads == 0 ? "all" : std::to_string(threads),
                std::to_string(us) + " us", run->transform.row(0).str(),
                run->predicted_mws.str(), std::to_string(run->candidates),
                same ? "yes" : "NO"});
  }
  std::cout << timing.render()
            << "(speedup scales with available cores; on a single-core host\n"
               " the parallel rows mostly measure the pool's overhead)\n";
  return 0;
}
