// Tiling bench: the payoff of the Section-4.1 tiling-legality requirement.
// For a tileable transformed nest, sweep tile sizes and report the per-tile
// footprint (the block a DMA would stage) against the cross-tile window.

#include <iostream>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/tiling.h"

using namespace lmre;

namespace {

void sweep(const std::string& name, const LoopNest& nest, const IntMat& t,
           const std::vector<std::vector<Int>>& tilings) {
  std::cout << "--- " << name << " (T = " << t.str() << ") ---\n";
  TextTable table;
  table.header({"tile", "tiles", "max tile iters", "max tile footprint",
                "MWS (tiled order)"});
  for (const auto& sizes : tilings) {
    TilingReport rep = analyze_tiling(nest, t, sizes);
    std::string label;
    for (size_t k = 0; k < sizes.size(); ++k) {
      if (k) label += "x";
      label += std::to_string(sizes[k]);
    }
    table.row({label, std::to_string(rep.tiles), std::to_string(rep.max_tile_iterations),
               std::to_string(rep.max_tile_footprint), std::to_string(rep.mws_tiled)});
  }
  std::cout << table.render() << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Tiling: block footprints under tileable transforms ===\n\n";

  {
    LoopNest nest = codes::example_8();
    auto res = minimize_mws_2d(nest);
    if (res) {
      std::cout << "Example 8, untransformed exact MWS "
                << simulate(nest).mws_total << ", transformed "
                << simulate_transformed(nest, res->transform).mws_total << "\n\n";
      sweep("example 8 under the paper transform", nest, res->transform,
            {{2, 2}, {4, 4}, {8, 8}, {16, 16}});
    }
  }

  {
    LoopNest nest = codes::kernel_matmult(16);
    std::cout << "matmult 16x16x16: untiled MWS " << simulate(nest).mws_total
              << " (one operand fully live)\n\n";
    sweep("matmult identity order", nest, IntMat::identity(3),
          {{16, 16, 16}, {8, 8, 8}, {4, 4, 4}, {2, 2, 2}});
    std::cout << "=> the per-tile footprint is the classic 3*b^2 blocked\n"
                 "   working set; the tiled-order window shows how much state\n"
                 "   persists across blocks.\n";
  }
  return 0;
}
