// E10 -- the "quick and accurate" claim (Sections 1 and 5):
// google-benchmark timings of the closed-form estimator against the exact
// enumeration oracle (our stand-in for the Clauss/Pugh exact counting the
// paper cites as "more expensive but exact").  The estimator's cost is
// near-constant in the loop bounds; the oracle's grows with the iteration
// count.

#include <benchmark/benchmark.h>

#include "analysis/distinct.h"
#include "analysis/window.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "transform/minimizer.h"

using namespace lmre;

static void BM_EstimateDistinct_Example8(benchmark::State& state) {
  LoopNest nest = codes::example_8(state.range(0), state.range(0) / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_distinct(nest, 0).distinct);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EstimateDistinct_Example8)->RangeMultiplier(4)->Range(16, 1024);

static void BM_OracleDistinct_Example8(benchmark::State& state) {
  LoopNest nest = codes::example_8(state.range(0), state.range(0) / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nest).distinct_total);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OracleDistinct_Example8)->RangeMultiplier(4)->Range(16, 1024);

static void BM_EstimateMws_Example8(benchmark::State& state) {
  LoopNest nest = codes::example_8(state.range(0), state.range(0) / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_mws_total(nest));
  }
}
BENCHMARK(BM_EstimateMws_Example8)->RangeMultiplier(4)->Range(16, 1024);

static void BM_OracleMws_Example8(benchmark::State& state) {
  LoopNest nest = codes::example_8(state.range(0), state.range(0) / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nest).mws_total);
  }
}
BENCHMARK(BM_OracleMws_Example8)->RangeMultiplier(4)->Range(16, 1024);

static void BM_DistinctEstimator_Matmult(benchmark::State& state) {
  LoopNest nest = codes::kernel_matmult(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_distinct_total(nest));
  }
}
BENCHMARK(BM_DistinctEstimator_Matmult)->RangeMultiplier(2)->Range(8, 64);

static void BM_Oracle_Matmult(benchmark::State& state) {
  LoopNest nest = codes::kernel_matmult(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nest).distinct_total);
  }
}
BENCHMARK(BM_Oracle_Matmult)->RangeMultiplier(2)->Range(8, 32);

static void BM_MinimizerSearch_Example8(benchmark::State& state) {
  LoopNest nest = codes::example_8();
  MinimizerOptions opts;
  opts.coeff_bound = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize_mws_2d(nest, opts));
  }
}
BENCHMARK(BM_MinimizerSearch_Example8)->DenseRange(4, 16, 4);

static void BM_OptimizeLocality_Figure2(benchmark::State& state) {
  auto suite = codes::figure2_suite();
  auto& entry = suite[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_locality(entry.nest).predicted_mws);
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_OptimizeLocality_Figure2)->DenseRange(0, 6);
