// Memory-system bench: the window analysis meets a concrete memory.
//  1. Cache-capacity sweep: misses collapse to cold misses exactly when the
//     cache reaches the maximum window size (the crossover the sizing
//     argument predicts), and the optimized order moves that crossover.
//  2. Energy/latency/area model: what window-based sizing buys on the
//     Figure-2 suite (the paper's Section-1 motivation, quantified).

#include <iostream>

#include "cachesim/cache.h"
#include "exact/stack_distance.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "energy/model.h"
#include "exact/oracle.h"
#include "layout/spatial.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== 1. Cache-capacity sweep (example 8, MWS 44 -> 21) ===\n\n";
  {
    LoopNest nest = codes::example_8();
    auto res = minimize_mws_2d(nest);
    auto layouts = default_layouts(nest);
    TextTable t;
    t.header({"cache cells", "misses (as written)", "misses (transformed)",
              "cold misses"});
    for (Int cap : {4, 8, 16, 22, 32, 45, 64}) {
      CacheConfig cfg{cap, 1, 0};
      CacheStats before = simulate_cache(nest, layouts, cfg);
      CacheStats after = res ? simulate_cache(nest, layouts, cfg, &res->transform)
                             : before;
      t.row({std::to_string(cap), std::to_string(before.misses),
             std::to_string(after.misses), std::to_string(before.cold_misses)});
    }
    std::cout << t.render()
              << "=> the window is the OPTIMAL-replacement bound; LRU needs a\n"
                 "   little headroom above it (transformed: cold-only by 32\n"
                 "   cells vs window 21; original: by 64 vs window 44).  The\n"
                 "   transformation moves the crossover by exactly the window\n"
                 "   ratio either way.\n\n";
  }

  std::cout << "=== 2. Full LRU miss curves from one stack-distance pass ===\n\n";
  {
    LoopNest nest = codes::kernel_matmult(12);
    StackDistanceProfile p = stack_distances(nest);
    TextTable t;
    t.header({"capacity", "misses", "hit rate"});
    for (Int c = 1; c <= p.max_distance() * 2; c *= 2) {
      Int m = p.lru_misses(c);
      t.row({with_commas(c), with_commas(m),
             percent(1.0 - double(m) / double(p.total_accesses))});
    }
    t.row({with_commas(p.max_distance()), with_commas(p.cold_accesses),
           percent(1.0 - double(p.cold_accesses) / double(p.total_accesses))});
    std::cout << "matmult 12x12x12 (window " << simulate(nest).mws_total
              << ", knee " << p.max_distance() << "):\n"
              << t.render()
              << "=> the exact reuse-distance histogram yields the miss count\n"
                 "   of EVERY fully-associative LRU size in one pass; the knee\n"
                 "   sits at the full-operand reuse the window identifies.\n\n";
  }

  std::cout << "=== 3. Energy/latency/area of window-based sizing ===\n\n";
  {
    MemoryModel model;
    TextTable t;
    t.header({"code", "declared", "window (opt)", "energy saving",
              "latency ratio", "area ratio"});
    for (auto& e : codes::figure2_suite()) {
      OptimizeResult opt = optimize_locality(e.nest);
      Int window = simulate_transformed(e.nest, opt.transform).mws_total;
      SizingComparison cmp = compare_sizing(e.nest, window, model);
      t.row({e.name, with_commas(cmp.declared_cells), with_commas(cmp.window_cells),
             percent(cmp.energy_saving()),
             pad_left(std::to_string(cmp.latency_ratio).substr(0, 4), 4),
             percent(cmp.area_ratio)});
    }
    std::cout << t.render()
              << "\nmodel: E(s) = 1 + 0.1*sqrt(s) per access, t(s) = 1 +\n"
                 "0.05*sqrt(s), A(s) = s (ratios, not joules); see\n"
                 "src/energy/model.h for the scaling argument.\n";
  }
  return 0;
}
