// E1 -- Figure 1 & Examples 1(a)/1(b) (Section 2.2):
// the reused area of the iteration space for a dependence (d1, d2) is
// (N1 - |d1|)(N2 - |d2|); both example loops share reuse 56.

#include <iostream>

#include "analysis/distinct.h"
#include "analysis/reuse.h"
#include "codes/examples.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "support/text.h"

using namespace lmre;

int main() {
  std::cout << "=== E1: Figure 1 / Examples 1(a), 1(b) -- reuse region ===\n\n";
  std::cout << "Example 1(a):\n" << print_nest(codes::example_1a()) << '\n';
  std::cout << "Example 1(b):\n" << print_nest(codes::example_1b()) << '\n';

  TextTable t;
  t.header({"loop", "dependence", "reuse (paper)", "reuse (ours)",
            "distinct est", "distinct exact"});
  for (auto [name, nest] : {std::pair{"example 1(a)", codes::example_1a()},
                            std::pair{"example 1(b)", codes::example_1b()}}) {
    auto deps = analyze_dependences(nest).distance_vectors(true);
    DistinctEstimate e = estimate_distinct(nest, 0);
    TraceStats x = simulate(nest);
    t.row({name, deps.empty() ? "-" : deps[0].str(), "56",
           std::to_string(e.reuse), std::to_string(e.distinct),
           std::to_string(x.distinct_total)});
  }
  std::cout << t.render() << '\n';

  // The shaded-region formula as a sweep over dependence vectors in a
  // 10 x 10 space (the figure's geometry).
  std::cout << "reuse volume (N1-|d1|)(N2-|d2|) over a 10x10 space:\n";
  TextTable sweep;
  sweep.header({"d", "reuse", "comment"});
  IntBox box = IntBox::from_upper_bounds({10, 10});
  for (IntVec d : {IntVec{3, -2}, IntVec{3, 2}, IntVec{1, 0}, IntVec{0, 1},
                   IntVec{9, 9}, IntVec{10, 0}}) {
    Int r = reuse_volume(d, box);
    sweep.row({d.str(), std::to_string(r),
               r == 56 ? "the paper's value" : (r == 0 ? "out of range" : "")});
  }
  std::cout << sweep.render();
  return 0;
}
