// Symbolic-path bench: closed-form analysis (src/symbolic) vs the trace
// oracle on bound ladders of three paper kernels, through the same
// AnalysisSession path `lmre analyze --symbolic` uses (parse + lint +
// derive + eval).  The point of the table: the oracle's cost grows with
// the iteration volume while the symbolic path is flat -- at N = 10^6 per
// axis (10^12..10^18 iterations) only the symbolic column exists, and it
// must answer in under 10 ms.  Writes BENCH_symbolic.json (enveloped)
// into the current directory.
//
// With --check the bench exits nonzero if any symbolic request takes
// 10 ms or longer, or if symbolic and oracle values disagree on any row
// small enough for both to run.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "runtime/session.h"
#include "support/json.h"
#include "support/text.h"
#include "symbolic/derive.h"

using namespace lmre;

namespace {

constexpr int kReps = 3;                 // best-of timing, min over reps
constexpr double kCheckBudgetMs = 10.0;  // --check: symbolic must stay under
constexpr Int kOracleCap = 8'000'000;    // skip the oracle past this volume

double ms_since(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = ms_since(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct Row {
  std::string kernel;
  std::string bounds;
  Int iterations = 0;
  double symbolic_ms = 0.0;
  double oracle_ms = -1.0;  // < 0: skipped (volume past kOracleCap)
  Int symbolic_window = -1;
  Int oracle_window = -1;
};

// The ladders: each kernel rebuilt at growing per-axis bounds.  The
// shapes cover the single-pair window regime (2point), the Section 3.2
// kernel regime (Example 5 / 10), and a three-array nest (matmult).
LoopNest two_point(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId a = b.array("A", {n + 1, n + 1});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 0});
  return b.build();
}

LoopNest example5_scaled(Int s) {
  NestBuilder b;
  b.loop("i", 1, 10 * s).loop("j", 1, 20 * s).loop("k", 1, 30 * s);
  ArrayId a = b.array("A", {3 * 10 * s + 30 * s + 1, 20 * s + 30 * s + 1});
  b.statement().read(a, {{3, 0, 1}, {0, 1, 1}}, {0, 0});
  return b.build();
}

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

  std::vector<std::pair<std::string, std::vector<LoopNest>>> ladders;
  ladders.emplace_back(
      "2point", std::vector<LoopNest>{two_point(64), two_point(1024),
                                      two_point(1'000'000)});
  ladders.emplace_back(
      "example10",
      std::vector<LoopNest>{example5_scaled(1), example5_scaled(8),
                            example5_scaled(50'000)});
  ladders.emplace_back(
      "matmult",
      std::vector<LoopNest>{codes::kernel_matmult(16),
                            codes::kernel_matmult(128),
                            codes::kernel_matmult(1'000'000)});

  bool ok = true;
  std::vector<Row> rows;
  AnalysisSession session;
  int rep_serial = 0;  // appended as a comment so no rep is a cache hit

  for (auto& [name, nests] : ladders) {
    for (const LoopNest& nest : nests) {
      Row row;
      row.kernel = name;
      {
        std::ostringstream os;
        for (size_t k = 0; k < nest.depth(); ++k) {
          os << (k ? "x" : "") << nest.bounds().range(k).trip_count();
        }
        row.bounds = os.str();
      }
      row.iterations = nest.iteration_count();

      // End-to-end symbolic request: DSL text through the session (parse,
      // lint, derive, evaluate, serialize) -- what the CLI flag costs.
      const std::string base_source = to_dsl(nest);
      row.symbolic_ms = best_of([&] {
        AnalysisRequest req;
        req.source =
            base_source + "# rep " + std::to_string(rep_serial++) + "\n";
        req.set_kind(AnalysisRequest::Kind::kSymbolic);
        AnalysisResult res = session.run(req);
        if (res.status != ExitCode::kSuccess) {
          std::cout << "symbolic request failed on " << name << '\n';
          ok = false;
        }
      });
      SymbolicResult sym = symbolic_analysis(nest);
      if (sym.window_total) {
        row.symbolic_window = sym.window_total->eval(sym.bound_values);
      }

      if (nest.iteration_count() <= kOracleCap) {
        TraceStats st;
        row.oracle_ms = best_of([&] { st = simulate(nest); });
        row.oracle_window = st.mws_total;
        if (row.symbolic_window >= 0 &&
            row.symbolic_window != row.oracle_window) {
          std::cout << "MISMATCH on " << name << " " << row.bounds << ": sym "
                    << row.symbolic_window << " vs oracle " << row.oracle_window
                    << '\n';
          ok = false;
        }
      }
      if (check && row.symbolic_ms >= kCheckBudgetMs) {
        std::cout << "CHECK FAIL: symbolic " << fmt_ms(row.symbolic_ms)
                  << "ms >= " << kCheckBudgetMs << "ms on " << name << " "
                  << row.bounds << '\n';
        ok = false;
      }
      rows.push_back(std::move(row));
    }
  }

  TextTable t;
  t.header({"kernel", "bounds", "iterations", "symbolic (ms)", "oracle (ms)",
            "window"});
  Json jrows = Json::array();
  for (const Row& r : rows) {
    t.row({r.kernel, r.bounds, with_commas(r.iterations),
           fmt_ms(r.symbolic_ms),
           r.oracle_ms < 0 ? "-" : fmt_ms(r.oracle_ms),
           r.symbolic_window < 0 ? "-" : with_commas(r.symbolic_window)});
    Json jr = Json::object();
    jr.set("kernel", r.kernel)
        .set("bounds", r.bounds)
        .set("iterations", r.iterations)
        .set("symbolic_ms", r.symbolic_ms);
    if (r.oracle_ms >= 0) jr.set("oracle_ms", r.oracle_ms);
    if (r.symbolic_window >= 0) jr.set("symbolic_window", r.symbolic_window);
    if (r.oracle_window >= 0) jr.set("oracle_window", r.oracle_window);
    jrows.push(std::move(jr));
  }
  std::cout << "-- symbolic closed forms vs trace oracle --\n" << t.render();

  Json doc = Json::object();
  doc.set("budget_ms", kCheckBudgetMs);
  doc.set("oracle_cap_iterations", kOracleCap);
  doc.set("rows", std::move(jrows));
  std::ofstream("BENCH_symbolic.json")
      << json_envelope("bench-symbolic", std::move(doc)).dump(2) << '\n';
  std::cout << "wrote BENCH_symbolic.json\n";

  if (check) std::cout << (ok ? "CHECK OK\n" : "CHECK FAILED\n");
  return ok ? 0 : 1;
}
