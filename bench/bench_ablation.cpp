// Ablation bench: design choices DESIGN.md calls out.
//  A. Minimizer strategy: exhaustive eq.(2) scoring vs the paper's cheaper
//     "minimize |a2 a - a1 b|" heuristic.
//  B. Oracle verification of the driver's top candidates: on vs off.
//  C. Legality constraint set: with vs without input (read-read) reuse.
//  D. Schedule sensitivity: frame-major vs tap-major RASTA filtering.

#include <iostream>

#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

namespace {

// A small family of 1-d-array stream loops for the strategy ablation.
std::vector<std::pair<std::string, LoopNest>> stream_family() {
  std::vector<std::pair<std::string, LoopNest>> fam;
  fam.emplace_back("example 7", codes::example_7());
  fam.emplace_back("example 8", codes::example_8());
  struct Spec {
    Int a1, a2, c1, c2, n1, n2;
  };
  for (Spec s : {Spec{3, 4, 0, 5, 20, 15}, Spec{1, 6, 0, 3, 30, 12},
                 Spec{4, -5, 0, 2, 18, 18}, Spec{5, 2, 1, 7, 16, 24}}) {
    NestBuilder b;
    b.loop("i", 1, s.n1).loop("j", 1, s.n2);
    ArrayId x = b.array("X", {400});
    b.statement()
        .write(x, IntMat{{s.a1, s.a2}}, IntVec{s.c1 + 150})
        .read(x, IntMat{{s.a1, s.a2}}, IntVec{s.c2 + 150});
    fam.emplace_back("X[" + std::to_string(s.a1) + "i+" + std::to_string(s.a2) +
                         "j] " + std::to_string(s.n1) + "x" + std::to_string(s.n2),
                     b.build());
  }
  return fam;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A: minimizer strategies ===\n"
               "exhaustive eq.(2) scoring vs the paper's greedy |a2*a - a1*b|\n"
               "vs the paper's branch-and-bound (w-ordered shells, pruned)\n\n";
  TextTable a;
  a.header({"loop", "MWS before", "exhaustive (rows)", "greedy-w", "B&B (rows)",
            "greedy penalty"});
  for (auto& [name, nest] : stream_family()) {
    Int before = simulate(nest).mws_total;
    MinimizerOptions ex;
    MinimizerOptions gw;
    gw.strategy = MinimizerOptions::Strategy::kGreedyW;
    MinimizerOptions bb;
    bb.strategy = MinimizerOptions::Strategy::kBranchAndBound;
    auto rex = minimize_mws_2d(nest, ex);
    auto rgw = minimize_mws_2d(nest, gw);
    auto rbb = minimize_mws_2d(nest, bb);
    if (!rex || !rgw || !rbb) continue;
    Int mex = simulate_transformed(nest, rex->transform).mws_total;
    Int mgw = simulate_transformed(nest, rgw->transform).mws_total;
    Int mbb = simulate_transformed(nest, rbb->transform).mws_total;
    a.row({name, std::to_string(before),
           std::to_string(mex) + " (" + std::to_string(rex->candidates) + ")",
           std::to_string(mgw),
           std::to_string(mbb) + " (" + std::to_string(rbb->candidates) + ")",
           mgw > mex ? "+" + std::to_string(mgw - mex) : "0"});
  }
  std::cout << a.render()
            << "=> B&B reaches the exhaustive optimum while examining a\n"
               "   fraction of the rows; the greedy shortcut can lose 2x.\n\n";

  std::cout << "=== Ablation B: driver with vs without oracle verification ===\n\n";
  TextTable b;
  b.header({"kernel", "MWS before", "estimate-only pick", "verified pick"});
  Int verify_gain = 0;
  for (auto& e : codes::figure2_suite()) {
    MinimizerOptions no_verify;
    no_verify.verify_top_k = 0;
    MinimizerOptions verify;  // default: verify top 8
    Int before = simulate(e.nest).mws_total;
    Int plain =
        simulate_transformed(e.nest, optimize_locality(e.nest, no_verify).transform)
            .mws_total;
    Int ver = simulate_transformed(e.nest, optimize_locality(e.nest, verify).transform)
                  .mws_total;
    verify_gain += plain - ver;
    b.row({e.name, std::to_string(before), std::to_string(plain), std::to_string(ver)});
  }
  std::cout << b.render();
  if (verify_gain > 0) {
    std::cout << "=> verification recovered " << verify_gain
              << " window slots the analytic ranking missed.\n\n";
  } else {
    std::cout << "=> with the distinct-count caps, the analytic ranking already\n"
                 "   picks the oracle-best candidate on this suite; verification\n"
                 "   is the safety net for nests the formulas rank poorly.\n\n";
  }

  std::cout << "=== Ablation C: legality constraints with/without input reuse ===\n\n";
  TextTable c;
  c.header({"loop", "rows feasible (with input)", "rows feasible (memory only)"});
  for (auto& [name, nest] : stream_family()) {
    MinimizerOptions with;
    MinimizerOptions without;
    without.include_input_reuse = false;
    auto rw = minimize_mws_2d(nest, with);
    auto ro = minimize_mws_2d(nest, without);
    c.row({name, rw ? std::to_string(rw->candidates) : "-",
           ro ? std::to_string(ro->candidates) : "-"});
  }
  std::cout << c.render()
            << "=> dropping input reuse enlarges the legal search space (the\n"
               "   paper keeps it, as in Example 7's read-only loop).\n\n";

  std::cout << "=== Ablation D: schedule sensitivity of RASTA filtering ===\n\n";
  TextTable d;
  d.header({"schedule", "default", "MWS exact", "% of default live"});
  for (auto [name, nest] : {std::pair{"frame-major (i,j,k)", codes::kernel_rasta_flt()},
                            std::pair{"tap-major (k,i,j)",
                                      codes::kernel_rasta_flt_tap_major()}}) {
    Int def = nest.default_memory();
    Int mws = simulate(nest).mws_total;
    d.row({name, with_commas(def), with_commas(mws),
           percent(double(mws) / double(def))});
  }
  std::cout << d.render()
            << "=> the same filter needs ~47x more live storage under the\n"
               "   tap-major schedule; window analysis exposes this before\n"
               "   committing a memory size.\n";
  return 0;
}
