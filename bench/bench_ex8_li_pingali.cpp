// E6 -- Section 4, Example 8: the Li-Pingali comparison.
// Their completion method must start from rows (2,5) or (-2,5) (the access
// row), both of which violate a dependence; the paper's search instead finds
// a legal tileable T that cuts the window from 50 (estimate; 44 exact) to 21.

#include <iostream>

#include "analysis/window.h"
#include "codes/examples.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"

using namespace lmre;

int main() {
  LoopNest nest = codes::example_8();
  std::cout << "=== E6: Example 8 -- X[2i+5j+1] = X[2i+5j+5] over [1,25]x[1,10] ===\n\n"
            << print_nest(nest) << '\n';

  DependenceInfo info = analyze_dependences(nest);
  std::cout << "dependences (paper: flow (3,-2), anti (2,0), output (5,-2)):\n";
  for (const auto& d : info.deps) {
    std::cout << "  " << to_string(d.kind) << ' ' << d.distance.str() << '\n';
  }

  auto deps = info.distance_vectors(true);
  std::cout << "\nLi-Pingali candidate first rows (from the access row (2,5)):\n";
  TextTable lp;
  lp.header({"first row", "violated dependence", "row . dep"});
  for (IntVec row : {IntVec{2, 5}, IntVec{-2, 5}}) {
    for (const auto& d : deps) {
      Int dot = row.dot(d);
      if (dot < 0) {
        lp.row({row.str(), d.str(), std::to_string(dot)});
        break;
      }
    }
  }
  std::cout << lp.render();
  std::cout << "=> no completion of either row is legal (paper's argument).\n\n";

  auto res = minimize_mws_2d(nest);
  TextTable t;
  t.header({"quantity", "paper", "ours"});
  t.row({"MWS before (eq.2 estimate)", "50",
         mws2_estimate(IntVec{2, 5}, nest.bounds(), 1, 0).str()});
  t.row({"MWS before (exact)", "-", std::to_string(simulate(nest).mws_total)});
  if (res) {
    t.row({"chosen first row", "(2, 3)", res->transform.row(0).str()});
    t.row({"analytic MWS of chosen row", "22", res->predicted_mws.str()});
    t.row({"MWS after (exact)", "21",
           std::to_string(simulate_transformed(nest, res->transform).mws_total)});
    t.row({"T", "[[2,3],[c,d]]", res->transform.str()});
  }
  std::cout << t.render() << '\n';

  if (res) {
    std::cout << "transformed loop:\n"
              << TransformedNest(nest, res->transform).print();
  }
  return 0;
}
