// Non-rectangular nests: the exact machinery (distinct counts, windows) on
// triangular and banded iteration spaces -- shapes outside the paper's box
// formulas, handled through the polyhedral scanner.

#include <iostream>

#include "codes/general_kernels.h"
#include "exact/oracle.h"
#include "support/text.h"

using namespace lmre;

int main() {
  std::cout << "=== Exact analysis on non-rectangular iteration spaces ===\n\n";
  TextTable t;
  t.header({"kernel", "space", "iterations", "default", "distinct", "MWS",
            "% of default live"});
  for (auto& [name, nest] : codes::general_suite()) {
    TraceStats s = simulate_general(nest);
    std::string shape = name == "band_mv" ? "band |i-j|<=1" : "lower triangle";
    t.row({name, shape, with_commas(s.iterations), with_commas(nest.default_memory()),
           with_commas(s.distinct_total), with_commas(s.mws_total),
           percent(double(s.mws_total) / double(nest.default_memory()))});
  }
  std::cout << t.render()
            << "\n=> the windows of triangular solves are dominated by the\n"
               "   vector operand (x stays live across rows), while the\n"
               "   banded product's window is O(band width): the same sizing\n"
               "   story the paper tells for boxes, now on general spaces.\n";
  return 0;
}
