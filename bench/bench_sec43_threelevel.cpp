// E8 -- Section 4.3: maximum window size for 3-deep nests (Example 10) and
// the access-matrix-embedding transformation that collapses it to 1.

#include <iostream>

#include "analysis/symbolic.h"
#include "analysis/window.h"
#include "codes/examples.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "linalg/kernel.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"

using namespace lmre;

int main() {
  LoopNest nest = codes::example_5();  // Example 10 uses the same loop
  std::cout << "=== E8: Section 4.3 / Example 10 -- A[3i+k][j+k] ===\n\n"
            << print_nest(nest) << '\n';

  auto v = reuse_direction(nest.all_refs()[0].access);
  std::cout << "reuse (null-space) vector: " << v->str()
            << "   (paper: (1,3,-3); level " << v->level() << ")\n";
  std::cout << "symbolic window formula:   MWS(N1,N2,N3) = "
            << symbolic_mws(*v).str()
            << "\n  (the paper's d1(N2-|d2|)(N3-|d3|) + |d2|(N3-|d3|) + 1, expanded)\n\n";

  TextTable t;
  t.header({"quantity", "paper", "ours"});
  t.row({"MWS 3-level formula", "540 (printed, no +1)",
         std::to_string(mws3_paper(*v, nest.bounds())) + " (with +1)"});
  t.row({"MWS generalized formula", "-",
         std::to_string(mws_from_reuse_vector(*v, nest.bounds()))});
  t.row({"MWS exact (oracle)", "-", std::to_string(simulate(nest).mws_total)});
  std::cout << t.render() << '\n';

  auto emb = embedding_transform(nest, 0);
  if (emb) {
    std::cout << "embedding transformation (first rows = access matrix):\n"
              << "  T = " << emb->str() << '\n';
    IntVec tv = ((*emb) * (*v)).primitive();
    std::cout << "  transformed reuse vector: " << tv.str() << "  level "
              << tv.level() << "   (paper: (0,0,1), level 3)\n";
    std::cout << "  exact MWS after T: "
              << simulate_transformed(nest, *emb).mws_total
              << "   (paper: reduces to one)\n\n";
    std::cout << "transformed loop:\n" << TransformedNest(nest, *emb).print() << '\n';
  }

  // Formula sweep: window size as the reuse vector's leading entries move
  // inward -- the paper's point that inner-carried reuse is cheap.
  std::cout << "window of reuse vector families over [1,10]x[1,20]x[1,30]:\n";
  TextTable sweep;
  sweep.header({"reuse vector", "level", "MWS formula"});
  for (IntVec d : {IntVec{1, 3, -3}, IntVec{1, 0, 0}, IntVec{0, 3, -3},
                   IntVec{0, 1, 0}, IntVec{0, 0, 3}, IntVec{0, 0, 1}}) {
    sweep.row({d.str(), std::to_string(d.level()),
               std::to_string(mws_from_reuse_vector(d, nest.bounds()))});
  }
  std::cout << sweep.render()
            << "\n=> raising the reuse level (carrying the dependence in an"
               "\n   inner loop) shrinks the window by orders of magnitude.\n";
  return 0;
}
