// E9 -- Figure 2 (the paper's main evaluation table):
// per-kernel default (declared) memory vs the maximum window size before
// and after optimization, with the percentage reductions and the averages.
//
// Paper columns are printed alongside ours.  Paper defaults / MWS_unopt were
// partially lost to OCR and reconstructed from the surviving percentages
// (EXPERIMENTS.md documents each reconstruction); kernel loop bounds are our
// choices, so the reproduction target is the SHAPE: large reductions from
// estimation alone, larger after transformation, matmult unimproved.

#include <iostream>

#include "analysis/report.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== E9: Figure 2 -- default vs MWS_unopt vs MWS_opt ===\n\n";

  TextTable t;
  t.header({"code", "default", "MWS_unopt", "(red)", "MWS_opt", "(red)", "method",
            "| paper default", "paper unopt", "(red)", "paper opt", "(red)"});
  double sum_unopt = 0, sum_opt = 0, paper_sum_unopt = 0, paper_sum_opt = 0;
  auto suite = codes::figure2_suite();
  for (auto& e : suite) {
    Int def = e.nest.default_memory();
    Int unopt = simulate(e.nest).mws_total;
    OptimizeResult res = optimize_locality(e.nest);
    Int opt = simulate_transformed(e.nest, res.transform).mws_total;
    double red_unopt = 1.0 - double(unopt) / double(def);
    double red_opt = 1.0 - double(opt) / double(def);
    sum_unopt += red_unopt;
    sum_opt += red_opt;
    paper_sum_unopt += e.paper_reduction_unopt;
    paper_sum_opt += e.paper_reduction_opt;
    t.row({e.name, with_commas(def), with_commas(unopt), percent(red_unopt),
           with_commas(opt), percent(red_opt), res.method,
           "| " + with_commas(e.paper_default), with_commas(e.paper_mws_unopt),
           percent(e.paper_reduction_unopt), with_commas(e.paper_mws_opt),
           percent(e.paper_reduction_opt)});
  }
  std::cout << t.render() << '\n';
  std::cout << "Average reduction (ours):  unopt " << percent(sum_unopt / suite.size())
            << "   opt " << percent(sum_opt / suite.size()) << '\n';
  std::cout << "Average reduction (paper): unopt "
            << percent(paper_sum_unopt / suite.size()) << "   opt "
            << percent(paper_sum_opt / suite.size()) << "   (81.9% / 92.3%)\n\n";

  std::cout << "Per-kernel memory reports (estimates vs oracle):\n\n";
  for (auto& e : suite) {
    std::cout << "--- " << e.name << " ---\n" << render(analyze_memory(e.nest)) << '\n';
  }
  return 0;
}
