// Generality bench: the full pipeline (estimate -> exact -> optimize ->
// allocate) on six kernels OUTSIDE the paper's evaluation, showing the
// analysis is not tuned to Figure 2.

#include <iostream>

#include "alloc/scratchpad.h"
#include "analysis/distinct.h"
#include "analysis/window.h"
#include "codes/extra_kernels.h"
#include "exact/oracle.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== Extended suite: fir, iir, conv2d, transpose_mm, jacobi,"
               " row_sum ===\n\n";
  TextTable t;
  t.header({"kernel", "default", "distinct est", "distinct exact", "MWS est",
            "MWS exact", "MWS opt", "method", "slots==MWS"});
  for (auto& [name, nest] : codes::extra_suite()) {
    Int def = nest.default_memory();
    Int dist_est = estimate_distinct_total(nest);
    TraceStats x = simulate(nest);
    auto mws_est = estimate_mws_total(nest);
    OptimizeResult opt = optimize_locality(nest);
    Int after = simulate_transformed(nest, opt.transform).mws_total;
    Allocation alloc = allocate_scratchpad(nest);
    t.row({name, with_commas(def), with_commas(dist_est),
           with_commas(x.distinct_total),
           mws_est ? with_commas(*mws_est) : "-", with_commas(x.mws_total),
           with_commas(after), opt.method,
           alloc.slots == x.mws_total && alloc.verified ? "yes" : "NO"});
  }
  std::cout << t.render()
            << "\n=> distinct estimates stay exact or near-exact, windows are\n"
               "   tracked within a few elements, allocation always achieves\n"
               "   the bound, and the optimizer only transforms when it wins\n"
               "   (iir's recurrence and row_sum's accumulator are already\n"
               "   minimal).\n";
  return 0;
}
