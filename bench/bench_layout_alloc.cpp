// Layout & allocation bench:
//  1. spatial windows: peak live memory LINES under row-/column-major
//     layouts and several line sizes (the paper's announced layout
//     extension);
//  2. scratchpad allocation: MWS is achieved exactly by linear-scan slot
//     assignment, and nearly by a cheap modulo (circular) buffer.

#include <iostream>

#include "alloc/scratchpad.h"
#include "codes/examples.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "layout/spatial.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main() {
  std::cout << "=== Spatial windows: layout x line size ===\n\n";
  TextTable s;
  s.header({"kernel", "line", "row-major lines", "col-major lines", "best choice"});
  for (auto& e : codes::figure2_suite()) {
    if (e.nest.depth() > 3) continue;  // keep the sweep quick
    for (Int line : {4, 8}) {
      std::map<ArrayId, LayoutSpec> row, col;
      for (ArrayId id = 0; id < e.nest.arrays().size(); ++id) {
        if (e.nest.refs_to(id).empty()) continue;
        row.emplace(id, LayoutSpec::fit(e.nest, id, LayoutKind::kRowMajor));
        col.emplace(id, LayoutSpec::fit(e.nest, id, LayoutKind::kColMajor));
      }
      Int rw = simulate_lines(e.nest, row, line).mws_lines;
      Int cw = simulate_lines(e.nest, col, line).mws_lines;
      LayoutChoice choice = choose_layouts(e.nest, line);
      std::string best;
      for (auto& [id, spec] : choice.layouts) {
        if (!best.empty()) best += ", ";
        best += e.nest.array(id).name + ":" +
                (spec.kind() == LayoutKind::kRowMajor ? "row" : "col");
      }
      s.row({e.name, std::to_string(line), std::to_string(rw), std::to_string(cw),
             best + " (" + std::to_string(choice.stats.mws_lines) + ")"});
    }
  }
  std::cout << s.render() << '\n';

  std::cout << "=== Scratchpad allocation: the window bound is achievable ===\n\n";
  TextTable a;
  a.header({"loop", "declared", "MWS (lower bound)", "greedy slots", "verified",
            "modulo buffer"});
  auto add_row = [&](const std::string& name, const LoopNest& nest,
                     const IntMat* t) {
    Allocation alloc = allocate_scratchpad(nest, t);
    ModuloBuffer mb = min_modulo_buffer(nest, default_layouts(nest), t);
    a.row({name, with_commas(nest.default_memory()), with_commas(mb.lower_bound),
           with_commas(alloc.slots), alloc.verified ? "yes" : "NO",
           mb.found ? with_commas(mb.modulus) : "-"});
  };
  add_row("example 8 (as written)", codes::example_8(), nullptr);
  {
    LoopNest nest = codes::example_8();
    auto res = minimize_mws_2d(nest);
    if (res) add_row("example 8 (transformed)", nest, &res->transform);
  }
  for (auto& e : codes::figure2_suite()) {
    if (e.nest.iteration_count() > 200000) continue;
    add_row(e.name, e.nest, nullptr);
  }
  std::cout << a.render()
            << "\n=> greedy slots == exact MWS on every loop (interval graphs\n"
               "   are perfect); the circular buffer pays a small premium for\n"
               "   its trivial addressing.\n";
  return 0;
}
