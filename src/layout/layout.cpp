#include "layout/layout.h"

#include <sstream>

#include "analysis/nonuniform.h"
#include "support/error.h"

namespace lmre {

std::string to_string(LayoutKind k) {
  switch (k) {
    case LayoutKind::kRowMajor: return "row-major";
    case LayoutKind::kColMajor: return "col-major";
    case LayoutKind::kBlocked: return "blocked";
  }
  return "?";
}

LayoutSpec::LayoutSpec(LayoutKind kind, IntVec origin, std::vector<Int> extents,
                       std::vector<Int> block)
    : kind_(kind),
      origin_(std::move(origin)),
      extents_(std::move(extents)),
      block_(std::move(block)) {
  require(origin_.size() == extents_.size(), "LayoutSpec: origin/extent mismatch");
  for (Int e : extents_) require(e >= 1, "LayoutSpec: extents must be >= 1");
  if (kind_ == LayoutKind::kBlocked) {
    require(block_.size() == extents_.size(), "LayoutSpec: block rank mismatch");
    for (Int b : block_) require(b >= 1, "LayoutSpec: block sizes must be >= 1");
  }
}

LayoutSpec LayoutSpec::row_major(IntVec origin, std::vector<Int> extents) {
  return LayoutSpec(LayoutKind::kRowMajor, std::move(origin), std::move(extents), {});
}

LayoutSpec LayoutSpec::col_major(IntVec origin, std::vector<Int> extents) {
  return LayoutSpec(LayoutKind::kColMajor, std::move(origin), std::move(extents), {});
}

LayoutSpec LayoutSpec::blocked(IntVec origin, std::vector<Int> extents,
                               std::vector<Int> block) {
  return LayoutSpec(LayoutKind::kBlocked, std::move(origin), std::move(extents),
                    std::move(block));
}

LayoutSpec LayoutSpec::fit(const LoopNest& nest, ArrayId array, LayoutKind kind,
                           std::vector<Int> block) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "LayoutSpec::fit: array is not referenced");
  const size_t d = nest.array(array).dims();
  IntVec origin(d);
  std::vector<Int> extents(d, 1);
  for (size_t dim = 0; dim < d; ++dim) {
    bool first = true;
    Int lo = 0, hi = 0;
    for (const auto& r : refs) {
      auto [rl, rh] = subscript_range(r.access.row(dim), r.offset[dim], nest.bounds());
      lo = first ? rl : std::min(lo, rl);
      hi = first ? rh : std::max(hi, rh);
      first = false;
    }
    origin[dim] = lo;
    extents[dim] = checked_add(checked_sub(hi, lo), 1);
  }
  switch (kind) {
    case LayoutKind::kRowMajor:
      return row_major(std::move(origin), std::move(extents));
    case LayoutKind::kColMajor:
      return col_major(std::move(origin), std::move(extents));
    case LayoutKind::kBlocked:
      if (block.empty()) block.assign(d, 4);
      return blocked(std::move(origin), std::move(extents), std::move(block));
  }
  throw InvalidArgument("LayoutSpec::fit: unknown kind");
}

Int LayoutSpec::size() const {
  Int s = 1;
  for (Int e : extents_) s = checked_mul(s, e);
  return s;
}

Int LayoutSpec::address(const IntVec& index) const {
  require(index.size() == extents_.size(), "LayoutSpec::address rank mismatch");
  const size_t d = extents_.size();
  IntVec rel(d);
  for (size_t k = 0; k < d; ++k) {
    rel[k] = checked_sub(index[k], origin_[k]);
    require(rel[k] >= 0 && rel[k] < extents_[k],
            "LayoutSpec::address: index outside the layout region");
  }
  switch (kind_) {
    case LayoutKind::kRowMajor: {
      Int addr = 0;
      for (size_t k = 0; k < d; ++k) {
        addr = checked_add(checked_mul(addr, extents_[k]), rel[k]);
      }
      return addr;
    }
    case LayoutKind::kColMajor: {
      Int addr = 0;
      for (size_t k = d; k-- > 0;) {
        addr = checked_add(checked_mul(addr, extents_[k]), rel[k]);
      }
      return addr;
    }
    case LayoutKind::kBlocked: {
      // Address = (block row-major index) * block_volume + in-block
      // row-major index.  Edge blocks are padded (addresses stay unique).
      Int block_index = 0, in_block = 0, block_volume = 1;
      for (size_t k = 0; k < d; ++k) {
        Int blocks_k = ceil_div(extents_[k], block_[k]);
        block_index = checked_add(checked_mul(block_index, blocks_k),
                                  floor_div(rel[k], block_[k]));
        in_block = checked_add(checked_mul(in_block, block_[k]),
                               mod_floor(rel[k], block_[k]));
        block_volume = checked_mul(block_volume, block_[k]);
      }
      return checked_add(checked_mul(block_index, block_volume), in_block);
    }
  }
  throw InternalError("LayoutSpec::address: unknown kind");
}

std::string LayoutSpec::str() const {
  std::ostringstream os;
  os << to_string(kind_) << ' ';
  for (size_t k = 0; k < extents_.size(); ++k) {
    if (k) os << 'x';
    os << extents_[k];
  }
  os << " @ " << origin_.str();
  if (kind_ == LayoutKind::kBlocked) {
    os << " blocks ";
    for (size_t k = 0; k < block_.size(); ++k) {
      if (k) os << 'x';
      os << block_[k];
    }
  }
  return os.str();
}

}  // namespace lmre
