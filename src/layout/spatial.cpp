#include "layout/spatial.h"

#include <optional>
#include <unordered_map>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

SpatialStats simulate_lines(const LoopNest& nest,
                            const std::map<ArrayId, LayoutSpec>& layouts,
                            Int line_size, const IntMat* transform) {
  require(line_size >= 1, "simulate_lines: line size must be >= 1");
  struct FirstLast {
    Int first, last;
  };
  // Key: array id * 2^40 + line index would overflow composability; use a
  // pair-keyed hash map instead.
  struct Key {
    ArrayId array;
    Int line;
    bool operator==(const Key& o) const { return array == o.array && line == o.line; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<size_t>()(k.array) * 1000003u ^ std::hash<Int>()(k.line);
    }
  };
  std::unordered_map<Key, FirstLast, KeyHash> touch;

  Int iterations = 0;
  visit_iterations(nest, transform, [&](Int ordinal, const IntVec& iter) {
    iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        const LayoutSpec& layout = layouts.at(ref.array);
        Int addr = layout.address(ref.index_at(iter));
        Key key{ref.array, floor_div(addr, line_size)};
        auto [it, inserted] = touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (!inserted) it->second.last = ordinal;
      }
    }
  });

  SpatialStats stats;
  stats.line_size = line_size;
  stats.distinct_lines = static_cast<Int>(touch.size());
  const size_t horizon = static_cast<size_t>(iterations) + 1;
  std::vector<Int> delta_total(horizon, 0);
  std::map<ArrayId, std::vector<Int>> delta;
  for (const auto& [key, fl] : touch) {
    if (fl.first == fl.last) continue;
    auto& d = delta[key.array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(fl.first)] += 1;
    d[static_cast<size_t>(fl.last)] -= 1;
    delta_total[static_cast<size_t>(fl.first)] += 1;
    delta_total[static_cast<size_t>(fl.last)] -= 1;
  }
  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    stats.mws_lines_per_array[array] = best;
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    stats.mws_lines = std::max(stats.mws_lines, cur);
  }
  return stats;
}

std::map<ArrayId, LayoutSpec> default_layouts(const LoopNest& nest) {
  std::map<ArrayId, LayoutSpec> layouts;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    layouts.emplace(id, LayoutSpec::fit(nest, id, LayoutKind::kRowMajor));
  }
  return layouts;
}

LayoutChoice choose_layouts(const LoopNest& nest, Int line_size,
                            const IntMat* transform) {
  std::vector<ArrayId> arrays;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (!nest.refs_to(id).empty()) arrays.push_back(id);
  }
  require(arrays.size() <= 16, "choose_layouts: too many arrays for exhaustion");

  std::optional<LayoutChoice> best;
  for (unsigned mask = 0; mask < (1u << arrays.size()); ++mask) {
    std::map<ArrayId, LayoutSpec> layouts;
    for (size_t a = 0; a < arrays.size(); ++a) {
      LayoutKind kind =
          (mask >> a) & 1 ? LayoutKind::kColMajor : LayoutKind::kRowMajor;
      layouts.emplace(arrays[a], LayoutSpec::fit(nest, arrays[a], kind));
    }
    SpatialStats stats = simulate_lines(nest, layouts, line_size, transform);
    if (!best || stats.mws_lines < best->stats.mws_lines) {
      best = LayoutChoice{std::move(layouts), stats};
    }
  }
  ensure(best.has_value(), "choose_layouts examined no combination");
  return *best;
}

}  // namespace lmre
