#pragma once

// Spatial (memory-line granularity) window analysis.
//
// With arrays laid out in linear memory and data moved in lines of L cells,
// the quantity that sizes buffers and DMA transfers is the peak number of
// *lines* live at once, not elements.  This measures exactly that: the
// element-level trace is re-keyed to (array, address / L) under a chosen
// LayoutSpec per array, and the same first/last-touch sweep yields the
// line-window.  Layout choice (row- vs column-major vs blocked) changes the
// answer; choose_layouts searches the per-array layout combination that
// minimizes it.

#include <map>
#include <vector>

#include "ir/nest.h"
#include "layout/layout.h"
#include "linalg/mat.h"

namespace lmre {

struct SpatialStats {
  Int line_size = 1;
  Int distinct_lines = 0;  ///< lines ever touched
  Int mws_lines = 0;       ///< peak simultaneously-live lines
  std::map<ArrayId, Int> mws_lines_per_array;
};

/// Measures line-granularity windows for the nest under the given layouts
/// (one LayoutSpec per referenced array) and execution order (`transform`
/// nullptr = original).
SpatialStats simulate_lines(const LoopNest& nest,
                            const std::map<ArrayId, LayoutSpec>& layouts,
                            Int line_size, const IntMat* transform = nullptr);

/// Fitted row-major layouts for every referenced array (the baseline).
std::map<ArrayId, LayoutSpec> default_layouts(const LoopNest& nest);

struct LayoutChoice {
  std::map<ArrayId, LayoutSpec> layouts;
  SpatialStats stats;
};

/// Exhaustively tries row-/column-major per referenced array (2^arrays
/// combinations) and returns the combination minimizing the line-window.
LayoutChoice choose_layouts(const LoopNest& nest, Int line_size,
                            const IntMat* transform = nullptr);

}  // namespace lmre
