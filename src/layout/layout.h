#pragma once

// Memory layouts of arrays: mapping d-dimensional indices to linear
// addresses.
//
// The paper closes with "work is in progress to extend our techniques to
// include the effects of memory layouts of arrays"; this module supplies
// that extension.  A LayoutSpec fixes a storage order (row-major,
// column-major, or blocked) over a rectangular index region; the spatial
// analysis in spatial.h then measures windows in units of memory lines.

#include <string>
#include <vector>

#include "ir/nest.h"

namespace lmre {

enum class LayoutKind { kRowMajor, kColMajor, kBlocked };

std::string to_string(LayoutKind k);

/// Storage mapping for one array: the index region it covers (origin +
/// extents per dimension) and the traversal order.
class LayoutSpec {
 public:
  /// Row-major (last dimension contiguous) over [origin, origin+extent).
  static LayoutSpec row_major(IntVec origin, std::vector<Int> extents);

  /// Column-major (first dimension contiguous).
  static LayoutSpec col_major(IntVec origin, std::vector<Int> extents);

  /// Blocked: the region is partitioned into blocks of the given edge
  /// lengths, blocks stored row-major, elements inside a block row-major.
  static LayoutSpec blocked(IntVec origin, std::vector<Int> extents,
                            std::vector<Int> block);

  /// Derives origin/extents from the index ranges the nest actually touches
  /// for `array` (subscript interval arithmetic), so out-of-declaration
  /// offsets (negative indices etc.) are covered.
  static LayoutSpec fit(const LoopNest& nest, ArrayId array,
                        LayoutKind kind = LayoutKind::kRowMajor,
                        std::vector<Int> block = {});

  LayoutKind kind() const { return kind_; }
  const IntVec& origin() const { return origin_; }
  const std::vector<Int>& extents() const { return extents_; }

  /// Number of addressable cells in the region.
  Int size() const;

  /// Linear address of an index (throws InvalidArgument outside the region).
  Int address(const IntVec& index) const;

  std::string str() const;

 private:
  LayoutSpec(LayoutKind kind, IntVec origin, std::vector<Int> extents,
             std::vector<Int> block);

  LayoutKind kind_;
  IntVec origin_;
  std::vector<Int> extents_;
  std::vector<Int> block_;  // used by kBlocked
};

}  // namespace lmre
