#include "dependence/directions.h"

#include "linalg/diophantine.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {

std::string to_string(Dir d) {
  switch (d) {
    case Dir::kAny: return "*";
    case Dir::kLt: return "<";
    case Dir::kEq: return "=";
    case Dir::kGt: return ">";
  }
  return "?";
}

std::string direction_vector_string(const std::vector<Dir>& dirs) {
  std::string out = "(";
  for (size_t k = 0; k < dirs.size(); ++k) {
    if (k) out += ", ";
    out += to_string(dirs[k]);
  }
  return out + ")";
}

bool depends_with_directions(const ArrayRef& a, const ArrayRef& b, const IntBox& box,
                             const std::vector<Dir>& dirs) {
  require(a.array == b.array, "directions: references to different arrays");
  const size_t n = box.dims();
  require(dirs.size() == n, "directions: direction vector rank mismatch");
  const size_t d = a.access.rows();

  // Subscript equality system over z = (I, J).
  IntMat m(d, 2 * n);
  IntVec c(d);
  for (size_t dim = 0; dim < d; ++dim) {
    for (size_t k = 0; k < n; ++k) {
      m(dim, k) = a.access(dim, k);
      m(dim, n + k) = checked_neg(b.access(dim, k));
    }
    c[dim] = checked_sub(b.offset[dim], a.offset[dim]);
  }
  auto sol = solve_diophantine(m, c);
  if (!sol) return false;

  const size_t kdim = sol->kernel.size();
  // z_i(t) = particular_i + sum_j kernel_j[i] * t_j; constraints below are
  // affine in t.
  auto coord_expr = [&](size_t i) {
    IntVec row(kdim);
    for (size_t j = 0; j < kdim; ++j) row[j] = sol->kernel[j][i];
    return AffineExpr(row, sol->particular[i]);
  };

  ConstraintSystem sys(std::max<size_t>(kdim, 1));
  auto add = [&](const AffineExpr& e) {
    if (kdim == 0) {
      // Constant feasibility check.
      if (e.constant() < 0) throw UnsupportedError("__infeasible__");
      return;
    }
    sys.add(e);
  };

  try {
    for (size_t k = 0; k < n; ++k) {
      const Range& r = box.range(k);
      AffineExpr ik = kdim == 0 ? AffineExpr(IntVec(1), sol->particular[k])
                                : coord_expr(k);
      AffineExpr jk = kdim == 0 ? AffineExpr(IntVec(1), sol->particular[n + k])
                                : coord_expr(n + k);
      add(ik - r.lo);
      add(-(ik) + r.hi);
      add(jk - r.lo);
      add(-(jk) + r.hi);
      switch (dirs[k]) {
        case Dir::kAny:
          break;
        case Dir::kLt:  // I_k < J_k
          add(jk - ik - 1);
          break;
        case Dir::kEq:
          add(jk - ik);
          add(ik - jk);
          break;
        case Dir::kGt:
          add(ik - jk - 1);
          break;
      }
    }
  } catch (const UnsupportedError&) {
    return false;  // a constant constraint failed (kdim == 0 path)
  }

  if (kdim == 0) return true;  // all constant constraints held

  bool found = false;
  scan(sys, [&](const IntVec&) { found = true; });
  return found;
}

namespace {

void refine(const ArrayRef& a, const ArrayRef& b, const IntBox& box,
            std::vector<Dir>& dirs, size_t level,
            std::vector<std::vector<Dir>>& out) {
  if (!depends_with_directions(a, b, box, dirs)) return;  // prune
  if (level == dirs.size()) {
    out.push_back(dirs);
    return;
  }
  for (Dir d : {Dir::kLt, Dir::kEq, Dir::kGt}) {
    dirs[level] = d;
    refine(a, b, box, dirs, level + 1, out);
  }
  dirs[level] = Dir::kAny;
}

}  // namespace

std::vector<std::vector<Dir>> feasible_direction_vectors(const ArrayRef& a,
                                                         const ArrayRef& b,
                                                         const IntBox& box) {
  std::vector<Dir> dirs(box.dims(), Dir::kAny);
  std::vector<std::vector<Dir>> out;
  refine(a, b, box, dirs, 0, out);
  return out;
}

std::vector<std::vector<Dir>> source_first_directions(const ArrayRef& a,
                                                      const ArrayRef& b,
                                                      const IntBox& box) {
  std::vector<std::vector<Dir>> out;
  for (std::vector<Dir>& dirs : feasible_direction_vectors(a, b, box)) {
    for (Dir d : dirs) {
      if (d == Dir::kEq) continue;
      if (d == Dir::kLt) out.push_back(std::move(dirs));
      break;  // first non-'=' decides the orientation
    }
  }
  return out;
}

}  // namespace lmre
