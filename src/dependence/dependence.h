#pragma once

// Data dependence analysis for perfect affine nests (Section 2.1/4.2).
//
// For uniformly generated reference pairs the analysis produces constant
// distance vectors: the lexicographically smallest positive realizable
// solution per ordered pair, plus the primitive reuse generators of
// self-dependences.  Non-uniformly generated pairs are flagged; the
// estimator falls back to range bounds for those (Section 3.2).

#include <optional>
#include <string>
#include <vector>

#include "ir/nest.h"

namespace lmre {

enum class DepKind { kFlow, kAnti, kOutput, kInput };

std::string to_string(DepKind k);

/// One constant-distance dependence edge between two references
/// (indices into nest.all_refs(), source executes first).
struct Dependence {
  size_t src_ref = 0;
  size_t dst_ref = 0;
  DepKind kind = DepKind::kFlow;
  IntVec distance;  ///< lexicographically positive (never the zero vector)

  /// 1-based index of the first nonzero distance entry -- the loop that
  /// carries the dependence.
  int level() const { return distance.level(); }
};

/// Result of analyzing one nest.
struct DependenceInfo {
  std::vector<Dependence> deps;

  /// Arrays for which some reference pair is NOT uniformly generated; the
  /// constant-distance machinery does not apply to those pairs.
  std::vector<ArrayId> nonuniform_arrays;

  bool has_nonuniform() const { return !nonuniform_arrays.empty(); }

  /// Deduplicated distance vectors, optionally restricted to memory
  /// dependences (flow/anti/output); input (read-read) reuse vectors are
  /// included when `include_input` -- the paper's transformation legality
  /// uses the full set (Examples 7 and 8).
  std::vector<IntVec> distance_vectors(bool include_input = true) const;
};

/// Classifies an edge by the access kinds at its endpoints.
DepKind classify(AccessKind src, AccessKind dst);

/// Classic direction-vector rendering of a distance vector: '<' for a
/// positive component (forward), '=' for zero, '>' for negative,
/// e.g. (3,-2) -> "(<, >)".
std::string direction_string(const IntVec& distance);

/// One-line-per-edge textual summary of a nest's dependences, e.g.
/// "flow (3, -2) (<, >) level 1" -- for reports and tools.
std::string summarize_dependences(const DependenceInfo& info);

/// Computes all constant-distance dependences of the nest.
///
/// For every ordered pair of uniformly generated references (r_i, r_j) the
/// edge set contains the lex-min positive realizable distance for each
/// orientation; for self pairs and equal-offset pairs the generators of the
/// kernel lattice (primitive, lex-positive, realizable) are used, so e.g.
/// X[2i+5j+1] = X[2i+5j+5] (Example 8) yields exactly
/// (3,-2) flow, (2,0) anti, (5,-2) output [+ (5,-2) input].
DependenceInfo analyze_dependences(const LoopNest& nest);

}  // namespace lmre
