#pragma once

// Direction-vector constrained dependence testing (the classic (<, =, >)
// hierarchy of parallelizing compilers).
//
// A dependence test under a direction vector asks: is there a pair (I, J)
// touching a common element with the prescribed per-level relation between
// I_k and J_k?  Refining 'any' entries level by level yields exactly the set
// of feasible direction vectors -- the summary parallelizers consume when
// constant distances do not exist (non-uniform pairs).

#include <string>
#include <vector>

#include "ir/nest.h"
#include "polyhedra/box.h"

namespace lmre {

enum class Dir { kAny, kLt, kEq, kGt };  // relation of I_k to J_k

std::string to_string(Dir d);
std::string direction_vector_string(const std::vector<Dir>& dirs);

/// Exact test: does some pair (I, J) in box x box with I_k <dir_k> J_k for
/// every level touch a common element of the two references?
bool depends_with_directions(const ArrayRef& a, const ArrayRef& b, const IntBox& box,
                             const std::vector<Dir>& dirs);

/// All fully-refined feasible direction vectors (no kAny entries), obtained
/// by hierarchical refinement with pruning: a prefix that admits no solution
/// is never expanded.
std::vector<std::vector<Dir>> feasible_direction_vectors(const ArrayRef& a,
                                                         const ArrayRef& b,
                                                         const IntBox& box);

/// Feasible direction vectors restricted to source-first order: exactly
/// those whose first non-'=' entry is '<' (the instance of `a` executes
/// before the instance of `b` it shares an element with).  The reverse
/// orientation is obtained by calling with the arguments swapped; the
/// all-'=' vector (loop-independent) is excluded because statement order
/// within the body is never changed by an iteration-space transform.
std::vector<std::vector<Dir>> source_first_directions(const ArrayRef& a,
                                                      const ArrayRef& b,
                                                      const IntBox& box);

}  // namespace lmre
