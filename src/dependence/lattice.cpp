#include "dependence/lattice.h"

#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {

std::vector<IntVec> realizable_solutions(const IntMat& a, const IntVec& c,
                                         const IntBox& box) {
  require(a.cols() == box.dims(), "realizable_solutions: shape mismatch");
  std::vector<IntVec> out;
  auto sol = solve_diophantine(a, c);
  if (!sol) return out;

  const size_t n = box.dims();
  const size_t kdim = sol->kernel.size();

  auto realizable = [&](const IntVec& d) {
    for (size_t k = 0; k < n; ++k) {
      if (checked_abs(d[k]) > box.range(k).trip_count() - 1) return false;
    }
    return true;
  };

  if (kdim == 0) {
    if (realizable(sol->particular)) out.push_back(sol->particular);
    return out;
  }

  // d = particular + K t ; constrain each component into
  // [-(trip_k - 1), trip_k - 1] and scan the resulting polytope over t.
  ConstraintSystem sys(kdim);
  for (size_t k = 0; k < n; ++k) {
    IntVec row(kdim);
    for (size_t j = 0; j < kdim; ++j) row[j] = sol->kernel[j][k];
    AffineExpr expr(row, sol->particular[k]);
    Int m = box.range(k).trip_count() - 1;
    sys.add_range(expr, -m, m);
  }
  scan(sys, [&](const IntVec& t) {
    IntVec d = sol->particular;
    for (size_t j = 0; j < kdim; ++j) d = d + sol->kernel[j] * t[j];
    ensure(realizable(d), "lattice scan produced unrealizable distance");
    out.push_back(d);
  });
  return out;
}

std::optional<IntVec> lexmin_positive_solution(const IntMat& a, const IntVec& c,
                                               const IntBox& box) {
  std::optional<IntVec> best;
  for (const IntVec& d : realizable_solutions(a, c, box)) {
    if (!d.lex_positive()) continue;
    if (!best || d.lex_less(*best)) best = d;
  }
  return best;
}

}  // namespace lmre
