#pragma once

// Conservative dependence tests for arbitrary reference pairs.
//
// The paper's constant-distance machinery needs uniformly generated
// references; for everything else compilers fall back on screens: the GCD
// test (divisibility of the offset difference) and the Banerjee bounds
// (value-range feasibility).  Both are conservative -- "false" proves
// independence, "true" means *maybe*.  For small iteration spaces an exact
// decision procedure (Diophantine solve + bounded scan over the kernel
// lattice, a miniature Omega test) settles the question.

#include "ir/nest.h"
#include "polyhedra/box.h"

namespace lmre {

/// GCD screen on  Aa*I - Ab*J == offb - offa : returns false when some
/// dimension's equation has no integer solution at all (independent).
bool gcd_test_may_depend(const ArrayRef& a, const ArrayRef& b);

/// Banerjee screen: returns false when some dimension's equation cannot be
/// satisfied by any real-valued I, J inside the box (value ranges disjoint).
bool banerjee_may_depend(const ArrayRef& a, const ArrayRef& b, const IntBox& box);

struct ExactDependence {
  bool any = false;              ///< some (I, J) touches a common element
  bool cross_iteration = false;  ///< some such pair has I != J
};

/// Exact decision: solves the 2n-variable system and scans the kernel
/// lattice for solutions inside box x box.  Exponential only in the kernel
/// dimension; intended for the embedded-scale spaces this library targets.
ExactDependence depends_exact(const ArrayRef& a, const ArrayRef& b, const IntBox& box);

/// Combined three-valued answer for reporting: 0 = independent (proved by a
/// screen), 1 = dependent (proved exactly), 2 = maybe (screens passed, exact
/// skipped because the space exceeds `exact_limit` candidate solutions).
enum class DepAnswer { kIndependent, kDependent, kMaybe };
DepAnswer may_depend(const ArrayRef& a, const ArrayRef& b, const IntBox& box,
                     Int exact_limit = 1 << 22);

}  // namespace lmre
