#include "dependence/dependence.h"

#include <algorithm>
#include <map>
#include <set>

#include "dependence/lattice.h"
#include "linalg/kernel.h"
#include "support/error.h"

namespace lmre {

std::string to_string(DepKind k) {
  switch (k) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
    case DepKind::kInput: return "input";
  }
  return "?";
}

std::string direction_string(const IntVec& distance) {
  std::string out = "(";
  for (size_t k = 0; k < distance.size(); ++k) {
    if (k) out += ", ";
    out += distance[k] > 0 ? '<' : (distance[k] < 0 ? '>' : '=');
  }
  out += ')';
  return out;
}

DepKind classify(AccessKind src, AccessKind dst) {
  if (src == AccessKind::kWrite) {
    return dst == AccessKind::kRead ? DepKind::kFlow : DepKind::kOutput;
  }
  return dst == AccessKind::kWrite ? DepKind::kAnti : DepKind::kInput;
}

std::vector<IntVec> DependenceInfo::distance_vectors(bool include_input) const {
  std::vector<IntVec> out;
  for (const auto& d : deps) {
    if (!include_input && d.kind == DepKind::kInput) continue;
    if (std::find(out.begin(), out.end(), d.distance) == out.end())
      out.push_back(d.distance);
  }
  return out;
}

std::string summarize_dependences(const DependenceInfo& info) {
  std::string out;
  for (const auto& d : info.deps) {
    out += to_string(d.kind) + " " + d.distance.str() + " " +
           direction_string(d.distance) + " level " + std::to_string(d.level()) +
           "\n";
  }
  if (info.has_nonuniform()) {
    out += "(some references are non-uniformly generated)\n";
  }
  return out;
}

DependenceInfo analyze_dependences(const LoopNest& nest) {
  DependenceInfo info;
  const std::vector<ArrayRef> refs = nest.all_refs();
  const IntBox& box = nest.bounds();

  // Group reference indices by array.
  std::map<ArrayId, std::vector<size_t>> by_array;
  for (size_t i = 0; i < refs.size(); ++i) by_array[refs[i].array].push_back(i);

  std::set<std::tuple<size_t, size_t, int, std::vector<Int>>> seen;
  auto add_edge = [&](size_t src, size_t dst, DepKind kind, const IntVec& dist) {
    ensure(dist.lex_positive(), "dependence distance must be lex-positive");
    auto key = std::make_tuple(src, dst, static_cast<int>(kind), dist.data());
    if (seen.insert(key).second) info.deps.push_back(Dependence{src, dst, kind, dist});
  };

  for (const auto& [array, members] : by_array) {
    // Uniformity check: the paper's constant-distance machinery applies only
    // when every pair of references to the array shares one access matrix.
    bool uniform = true;
    for (size_t a = 0; a + 1 < members.size() && uniform; ++a) {
      if (!(refs[members[a]].access == refs[members[a + 1]].access)) uniform = false;
    }
    if (!uniform) {
      info.nonuniform_arrays.push_back(array);
      continue;
    }
    if (members.empty()) continue;
    const IntMat& acc = refs[members.front()].access;

    // Self-reuse: primitive kernel generators (realizable, lex-positive).
    std::vector<IntVec> generators;
    for (const IntVec& k : integer_kernel_basis(acc)) {
      IntVec g = k.primitive();
      if (!g.lex_positive()) g = -g;
      bool realizable = true;
      for (size_t lev = 0; lev < box.dims(); ++lev) {
        if (checked_abs(g[lev]) > box.range(lev).trip_count() - 1) realizable = false;
      }
      if (realizable) generators.push_back(g);
    }
    for (size_t i : members) {
      for (const IntVec& g : generators) {
        add_edge(i, i, classify(refs[i].kind, refs[i].kind), g);
      }
    }

    // Cross-reference dependences: lex-min positive distance per orientation.
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        size_t i = members[a], j = members[b];
        IntVec cij = refs[i].offset - refs[j].offset;
        // ref_i at the earlier iteration, ref_j at the later: A d == c_ij.
        if (auto d = lexmin_positive_solution(acc, cij, box)) {
          add_edge(i, j, classify(refs[i].kind, refs[j].kind), *d);
        }
        if (auto d = lexmin_positive_solution(acc, -cij, box)) {
          add_edge(j, i, classify(refs[j].kind, refs[i].kind), *d);
        }
      }
    }
  }
  return info;
}

}  // namespace lmre
