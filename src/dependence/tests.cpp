#include "dependence/tests.h"

#include <algorithm>

#include "linalg/diophantine.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {

namespace {

void check_pair(const ArrayRef& a, const ArrayRef& b) {
  require(a.array == b.array, "dependence test: references to different arrays");
  require(a.access.rows() == b.access.rows() && a.access.cols() == b.access.cols(),
          "dependence test: access shape mismatch");
}

// Combined coefficient row for dimension d of  Aa*I - Ab*J == c_d.
IntVec combined_row(const ArrayRef& a, const ArrayRef& b, size_t d) {
  const size_t n = a.access.cols();
  IntVec row(2 * n);
  for (size_t k = 0; k < n; ++k) {
    row[k] = a.access(d, k);
    row[n + k] = checked_neg(b.access(d, k));
  }
  return row;
}

}  // namespace

bool gcd_test_may_depend(const ArrayRef& a, const ArrayRef& b) {
  check_pair(a, b);
  for (size_t d = 0; d < a.access.rows(); ++d) {
    IntVec row = combined_row(a, b, d);
    Int g = row.content();
    Int c = checked_sub(b.offset[d], a.offset[d]);
    if (g == 0) {
      if (c != 0) return false;  // 0 == c unsatisfiable
      continue;
    }
    if (c % g != 0) return false;
  }
  return true;
}

bool banerjee_may_depend(const ArrayRef& a, const ArrayRef& b, const IntBox& box) {
  check_pair(a, b);
  require(a.access.cols() == box.dims(), "banerjee: box dimension mismatch");
  const size_t n = box.dims();
  for (size_t d = 0; d < a.access.rows(); ++d) {
    IntVec row = combined_row(a, b, d);
    Int c = checked_sub(b.offset[d], a.offset[d]);
    // Range of row . (I, J) over box x box.
    Int lo = 0, hi = 0;
    for (size_t k = 0; k < 2 * n; ++k) {
      const Range& r = box.range(k % n);
      Int coef = row[k];
      if (coef >= 0) {
        lo = checked_add(lo, checked_mul(coef, r.lo));
        hi = checked_add(hi, checked_mul(coef, r.hi));
      } else {
        lo = checked_add(lo, checked_mul(coef, r.hi));
        hi = checked_add(hi, checked_mul(coef, r.lo));
      }
    }
    if (c < lo || c > hi) return false;
  }
  return true;
}

ExactDependence depends_exact(const ArrayRef& a, const ArrayRef& b, const IntBox& box) {
  check_pair(a, b);
  const size_t n = box.dims();
  const size_t d = a.access.rows();
  IntMat m(d, 2 * n);
  IntVec c(d);
  for (size_t dim = 0; dim < d; ++dim) {
    IntVec row = combined_row(a, b, dim);
    for (size_t k = 0; k < 2 * n; ++k) m(dim, k) = row[k];
    c[dim] = checked_sub(b.offset[dim], a.offset[dim]);
  }
  auto sol = solve_diophantine(m, c);
  ExactDependence result;
  if (!sol) return result;

  const size_t kdim = sol->kernel.size();
  auto inspect = [&](const IntVec& z) {
    bool inside = true;
    for (size_t k = 0; k < 2 * n; ++k) {
      const Range& r = box.range(k % n);
      if (z[k] < r.lo || z[k] > r.hi) {
        inside = false;
        break;
      }
    }
    if (!inside) return;
    result.any = true;
    for (size_t k = 0; k < n; ++k) {
      if (z[k] != z[n + k]) {
        result.cross_iteration = true;
        break;
      }
    }
  };

  if (kdim == 0) {
    inspect(sol->particular);
    return result;
  }
  ConstraintSystem sys(kdim);
  for (size_t k = 0; k < 2 * n; ++k) {
    IntVec row(kdim);
    for (size_t j = 0; j < kdim; ++j) row[j] = sol->kernel[j][k];
    AffineExpr expr(row, sol->particular[k]);
    const Range& r = box.range(k % n);
    sys.add_range(expr, r.lo, r.hi);
  }
  scan(sys, [&](const IntVec& t) {
    IntVec z = sol->particular;
    for (size_t j = 0; j < kdim; ++j) z = z + sol->kernel[j] * t[j];
    inspect(z);
  });
  return result;
}

DepAnswer may_depend(const ArrayRef& a, const ArrayRef& b, const IntBox& box,
                     Int exact_limit) {
  if (!gcd_test_may_depend(a, b)) return DepAnswer::kIndependent;
  if (!banerjee_may_depend(a, b, box)) return DepAnswer::kIndependent;
  // The exact scan costs at most the squared iteration count; compare
  // without forming vol^2 (it can overflow for huge spaces).
  Int vol = box.volume();
  if (vol <= exact_limit / std::max<Int>(vol, 1)) {
    ExactDependence e = depends_exact(a, b, box);
    return e.any ? DepAnswer::kDependent : DepAnswer::kIndependent;
  }
  return DepAnswer::kMaybe;
}

}  // namespace lmre
