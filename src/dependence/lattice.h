#pragma once

// Enumeration of realizable dependence distances.
//
// For uniformly generated references the distance vectors are the integer
// solutions of  A d == c  (a coset of the kernel lattice of A) that are
// "realizable" in the iteration box: some iteration I has both I and I+d
// inside the box, i.e. |d_k| <= trip_k - 1 for every level of a
// constant-bound nest.

#include <optional>
#include <vector>

#include "linalg/diophantine.h"
#include "polyhedra/box.h"

namespace lmre {

/// All solutions of A d == c with |d_k| <= trip_k(box) - 1, enumerated by
/// scanning the (bounded) coefficient space of the kernel lattice.
/// Exact; intended for the small kernel dimensions (0..2) of DSP nests.
std::vector<IntVec> realizable_solutions(const IntMat& a, const IntVec& c,
                                         const IntBox& box);

/// Lexicographically smallest *positive* realizable solution, if any:
/// the paper's "dependence vector of interest" (Section 4.2).
std::optional<IntVec> lexmin_positive_solution(const IntMat& a, const IntVec& c,
                                               const IntBox& box);

}  // namespace lmre
