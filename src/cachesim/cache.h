#pragma once

// A small set-associative cache simulator.
//
// The window analysis predicts how much local memory captures all reuse;
// this substrate checks the prediction against a concrete memory system:
// feed the nest's address stream (under a chosen layout and execution
// order) through an LRU cache and count hits.  When the cache holds at
// least the maximum window, every reuse hits; squeeze it below the window
// and misses reappear -- the crossover the paper's sizing argument relies
// on.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ir/nest.h"
#include "layout/layout.h"
#include "linalg/mat.h"

namespace lmre {

struct CacheConfig {
  Int capacity = 256;       ///< total cells (elements)
  Int line_size = 1;        ///< cells per line (power of two not required)
  Int associativity = 0;    ///< ways per set; 0 = fully associative
};

struct CacheStats {
  Int accesses = 0;
  Int hits = 0;
  Int misses = 0;
  Int cold_misses = 0;  ///< first-ever touch of a line

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  double hit_rate() const { return accesses == 0 ? 0.0 : 1.0 - miss_rate(); }
};

/// LRU set-associative cache over abstract cell addresses.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Touches the cell address; returns true on hit.
  bool access(Int address);

  const CacheStats& stats() const { return stats_; }
  Int sets() const { return sets_; }
  Int ways() const { return ways_; }

 private:
  CacheConfig config_;
  Int sets_, ways_;
  // Per set: resident line tags ordered most-recently-used first.
  std::vector<std::vector<Int>> sets_lru_;
  std::set<Int> ever_seen_;  // lines ever touched (cold-miss detection)
  CacheStats stats_;
};

/// Runs the nest's access stream (per-array layouts with disjoint address
/// ranges, optional transformed order) through a cache.
CacheStats simulate_cache(const LoopNest& nest,
                          const std::map<ArrayId, LayoutSpec>& layouts,
                          const CacheConfig& config,
                          const IntMat* transform = nullptr);

}  // namespace lmre
