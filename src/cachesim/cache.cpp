#include "cachesim/cache.h"

#include <algorithm>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

Cache::Cache(const CacheConfig& config) : config_(config) {
  require(config_.capacity >= 1, "Cache: capacity must be >= 1");
  require(config_.line_size >= 1, "Cache: line size must be >= 1");
  Int total_lines = std::max<Int>(config_.capacity / config_.line_size, 1);
  if (config_.associativity <= 0 || config_.associativity >= total_lines) {
    // Fully associative.
    sets_ = 1;
    ways_ = total_lines;
  } else {
    ways_ = config_.associativity;
    sets_ = std::max<Int>(total_lines / ways_, 1);
  }
  sets_lru_.resize(static_cast<size_t>(sets_));
}

bool Cache::access(Int address) {
  Int line = floor_div(address, config_.line_size);
  Int set = mod_floor(line, sets_);
  auto& lru = sets_lru_[static_cast<size_t>(set)];

  ++stats_.accesses;
  auto it = std::find(lru.begin(), lru.end(), line);
  if (it != lru.end()) {
    // Hit: move to the MRU position.
    lru.erase(it);
    lru.insert(lru.begin(), line);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  if (ever_seen_.insert(line).second) ++stats_.cold_misses;
  lru.insert(lru.begin(), line);
  if (static_cast<Int>(lru.size()) > ways_) lru.pop_back();
  return false;
}

CacheStats simulate_cache(const LoopNest& nest,
                          const std::map<ArrayId, LayoutSpec>& layouts,
                          const CacheConfig& config, const IntMat* transform) {
  // Give every array a disjoint address range (line-aligned bases so arrays
  // never share a cache line).
  std::map<ArrayId, Int> base;
  Int next = 0;
  for (const auto& [id, layout] : layouts) {
    base[id] = next;
    Int span = layout.size();
    Int aligned = checked_mul(ceil_div(span, config.line_size), config.line_size);
    next = checked_add(next, aligned);
  }

  Cache cache(config);
  visit_iterations(nest, transform, [&](Int, const IntVec& iter) {
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        const LayoutSpec& layout = layouts.at(ref.array);
        Int addr = checked_add(base.at(ref.array), layout.address(ref.index_at(iter)));
        cache.access(addr);
      }
    }
  });
  return cache.stats();
}

}  // namespace lmre
