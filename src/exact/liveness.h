#pragma once

// Zhao-Malik style exact minimum-memory measurement (the paper's reference
// [20], its stated point of comparison).
//
// Zhao & Malik size memory by VALUE liveness: a location is live while it
// holds a value that is still needed -- from a write to the last read before
// the next write (or from program start for values the loop only reads).
// The paper's reference window counts a superset: any element touched
// before and after the current iteration, whether or not a value is carried
// (e.g. an element that is re-WRITTEN later is in the window but holds no
// live value if never read in between).  Comparing the two on the same
// trace quantifies the difference between "buffer that captures all reuse"
// (MWS) and "minimum correct memory" (liveness).

#include <map>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

class TraceArena;  // exact/trace_engine.h: reusable dense-engine storage

struct LivenessStats {
  Int max_live = 0;                  ///< peak number of live values
  std::map<ArrayId, Int> per_array;  ///< independent per-array peaks
  Int input_elements = 0;            ///< elements read before any write
};

/// Exact value-liveness sweep in original (`transform == nullptr`) or
/// transformed order.  A value is live from its defining write (or, for
/// upward-exposed reads of input data, from its first use -- just-in-time
/// staging from a backing store) until its last read before the next write
/// of the same location.
LivenessStats min_memory_liveness(const LoopNest& nest,
                                  const IntMat* transform = nullptr);

/// min_memory_liveness reusing the caller's TraceArena (one allocation
/// footprint across repeated sweeps); results identical to the overload
/// above.
LivenessStats min_memory_liveness(const LoopNest& nest, const IntMat* transform,
                                  TraceArena& arena);

}  // namespace lmre
