#include "exact/trace_engine.h"

#include <algorithm>

namespace lmre {

namespace {

// Address-space ceiling: volumes and per-level address coefficients are
// kept below 2^61 so the drivers' one-add innermost stepping (which may
// overshoot a row's last valid address by a single step) can never overflow
// int64.  Nests beyond this take the reference engine.
constexpr Int kAddrBound = Int{1} << 61;

// Dense-path policy: a store is dense when its box has at least a few
// thousand elements of headroom, is no larger than kDenseAccessFactor x the
// accesses that will be traced into it (so the reset cost stays
// proportional to the work), and the per-slab copies fit the flat budget.
constexpr Int kDenseMinElems = 4096;
constexpr Int kDenseAccessFactor = 8;
constexpr Int kDenseCapElems = Int{1} << 23;

// Affine range of one subscript row over the iteration box (interval
// arithmetic; exact for boxes).
void subscript_range(const IntVec& row, Int offset, const IntBox& box,
                     Int* lo, Int* hi) {
  Int l = offset, h = offset;
  for (size_t k = 0; k < box.dims(); ++k) {
    const Int a = row[k];
    if (a >= 0) {
      l = checked_add(l, checked_mul(a, box.range(k).lo));
      h = checked_add(h, checked_mul(a, box.range(k).hi));
    } else {
      l = checked_add(l, checked_mul(a, box.range(k).hi));
      h = checked_add(h, checked_mul(a, box.range(k).lo));
    }
  }
  *lo = l;
  *hi = h;
}

size_t next_pow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void OracleStats::absorb(const OracleStats& o) {
  runs += o.runs;
  fallback_runs += o.fallback_runs;
  dense_stores += o.dense_stores;
  sparse_stores += o.sparse_stores;
  elements += o.elements;
  accesses += o.accesses;
  sparse_probes += o.sparse_probes;
  sparse_ops += o.sparse_ops;
  table_occupancy_peak = std::max(table_occupancy_peak, o.table_occupancy_peak);
  arena_bytes = std::max(arena_bytes, o.arena_bytes);
  arena_high_water_bytes =
      std::max(arena_high_water_bytes, o.arena_high_water_bytes);
}

std::optional<AddressPlan> AddressPlan::build(const LoopNest& nest,
                                              const IntMat* t_inv,
                                              bool liveness_order, int slabs) {
  const IntBox& box = nest.bounds();
  const size_t n = nest.depth();
  AddressPlan plan;
  plan.depth = n;
  plan.iterations = n == 0 ? 0 : box.volume();
  const bool empty = plan.iterations == 0;

  // One store per referenced array, in ArrayId order.
  std::vector<int> store_of(nest.arrays().size(), -1);
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    store_of[id] = static_cast<int>(plan.stores.size());
    Store st;
    st.array = id;
    plan.stores.push_back(std::move(st));
  }

  try {
    // Pass 1: per-array bounding boxes (union of every subscript's affine
    // range over the iteration box) and traced-access counts.
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        Store& st = plan.stores[static_cast<size_t>(store_of[ref.array])];
        st.accesses = checked_add(st.accesses, plan.iterations);
        const size_t d = ref.access.rows();
        if (st.lo.empty()) {
          st.lo.assign(d, 0);
          st.stride.assign(d, 0);  // extents staged here until pass 1 ends
        }
        for (size_t r = 0; r < d; ++r) {
          Int lo = 0, hi = 0;
          if (!empty) subscript_range(ref.access.row(r), ref.offset[r], box, &lo, &hi);
          if (st.accesses == plan.iterations) {  // first ref to this array
            st.lo[r] = lo;
            st.stride[r] = hi;  // staged: per-dim hi
          } else {
            st.lo[r] = std::min(st.lo[r], lo);
            st.stride[r] = std::max(st.stride[r], hi);
          }
        }
      }
    }

    // Finalize boxes: staged his become extents, then row-major strides.
    for (Store& st : plan.stores) {
      const size_t d = st.lo.size();
      std::vector<Int> extent(d);
      for (size_t r = 0; r < d; ++r) {
        extent[r] = checked_add(checked_sub(st.stride[r], st.lo[r]), 1);
      }
      Int vol = 1;
      for (size_t r = d; r-- > 0;) {
        st.stride[r] = vol;
        vol = checked_mul(vol, extent[r]);
      }
      if (vol > kAddrBound) return std::nullopt;
      st.volume = empty ? 0 : vol;
      const Int budget =
          std::max(kDenseMinElems,
                   checked_mul(kDenseAccessFactor, st.accesses));
      const Int slab_cap = kDenseCapElems / std::max(1, slabs);
      st.dense = st.volume <= std::min(budget, slab_cap);
    }

    // Pass 2: per-ref affine address coefficients in scan coordinates.
    for (const auto& stmt : nest.statements()) {
      auto add_ref = [&](const ArrayRef& ref) {
        const Store& st = plan.stores[static_cast<size_t>(store_of[ref.array])];
        Ref pr;
        pr.store = static_cast<size_t>(store_of[ref.array]);
        pr.is_write = ref.is_write();
        IntVec coef;
        ref.linearize(st.lo, st.stride, &coef, &pr.c0);
        if (t_inv != nullptr) {
          // Compose through T^-1: address(u) = coef . (T^-1 u) + c0.
          IntVec composed(n);
          for (size_t k = 0; k < n; ++k) {
            Int v = 0;
            for (size_t j = 0; j < n; ++j) {
              v = checked_add(v, checked_mul(coef[j], (*t_inv)(j, k)));
            }
            composed[k] = v;
          }
          coef = std::move(composed);
        }
        for (size_t k = 0; k < n; ++k) {
          if (checked_abs(coef[k]) > kAddrBound) throw OverflowError("coef");
        }
        pr.coef.assign(coef.data().begin(), coef.data().end());
        plan.refs.push_back(std::move(pr));
      };
      if (liveness_order) {
        // Reads before writes within a statement: the value-liveness order
        // ("A[i] = A[i] + ..." consumes the old value first).
        for (const auto& ref : stmt.refs) {
          if (!ref.is_write()) add_ref(ref);
        }
        for (const auto& ref : stmt.refs) {
          if (ref.is_write()) add_ref(ref);
        }
      } else {
        for (const auto& ref : stmt.refs) add_ref(ref);
      }
    }
  } catch (const OverflowError&) {
    return std::nullopt;
  }
  return plan;
}

namespace trace_detail {

void grow_table(TraceArena::StoreBuf& s) {
  const size_t old_cap = s.keys.size();
  const size_t cap = old_cap * 2;
  std::vector<std::uint64_t> keys(cap, 0);
  std::vector<Int> kfirst(cap), klast(cap);
  std::vector<unsigned char> ktag;
  if (s.with_state) ktag.assign(cap, 0);
  const std::uint64_t mask = cap - 1;
  for (size_t i = 0; i < old_cap; ++i) {
    if (s.keys[i] == 0) continue;
    std::uint64_t j = mix_addr(s.keys[i] - 1) & mask;
    while (keys[j] != 0) j = (j + 1) & mask;
    keys[j] = s.keys[i];
    kfirst[j] = s.kfirst[i];
    klast[j] = s.klast[i];
    if (s.with_state) ktag[j] = s.ktag[i];
  }
  s.keys = std::move(keys);
  s.kfirst = std::move(kfirst);
  s.klast = std::move(klast);
  s.ktag = std::move(ktag);
  s.mask = mask;
}

}  // namespace trace_detail

void TraceArena::prepare(const AddressPlan& plan, size_t slabs,
                         bool with_state) {
  if (slabs_.size() < slabs) slabs_.resize(slabs);
  for (size_t slab = 0; slab < slabs; ++slab) {
    auto& set = slabs_[slab];
    if (set.size() < plan.stores.size()) set.resize(plan.stores.size());
    for (size_t si = 0; si < plan.stores.size(); ++si) {
      const AddressPlan::Store& ps = plan.stores[si];
      StoreBuf& s = set[si];
      s.dense = ps.dense;
      s.volume = ps.volume;
      s.with_state = with_state;
      s.touched = 0;
      s.probes = 0;
      s.probe_ops = 0;
      if (ps.dense) {
        s.first.assign(static_cast<size_t>(ps.volume), kUntouchedFirst);
        s.last.assign(static_cast<size_t>(ps.volume), kUntouchedLast);
        if (with_state) s.tag.assign(static_cast<size_t>(ps.volume), 0);
        s.keys.clear();
        s.kfirst.clear();
        s.klast.clear();
        s.ktag.clear();
        s.mask = 0;
      } else {
        // Start at twice the expected occupancy (capped by the box) so the
        // common case never rehashes; the table still grows on demand.
        const Int expect = std::min(ps.volume, ps.accesses);
        const size_t cap = next_pow2(static_cast<size_t>(
            std::min<Int>(std::max<Int>(Int{64}, expect * 2), kDenseCapElems)));
        s.keys.assign(cap, 0);
        s.kfirst.resize(cap);
        s.klast.resize(cap);
        if (with_state) {
          s.ktag.assign(cap, 0);
        } else {
          s.ktag.clear();
        }
        s.mask = cap - 1;
        s.first.clear();
        s.last.clear();
        s.tag.clear();
      }
    }
  }
}

void TraceArena::merge_slabs(const AddressPlan& plan, size_t slabs) {
  for (size_t si = 0; si < plan.stores.size(); ++si) {
    StoreBuf& dst = slabs_[0][si];
    for (size_t slab = 1; slab < slabs; ++slab) {
      StoreBuf& src = slabs_[slab][si];
      if (dst.dense) {
        // Sentinels make the merge branch-free elementwise min/max.
        const size_t vol = static_cast<size_t>(dst.volume);
        for (size_t a = 0; a < vol; ++a) {
          dst.first[a] = std::min(dst.first[a], src.first[a]);
        }
        for (size_t a = 0; a < vol; ++a) {
          dst.last[a] = std::max(dst.last[a], src.last[a]);
        }
      } else {
        for (size_t i = 0; i < src.keys.size(); ++i) {
          if (src.keys[i] == 0) continue;
          const Int addr = static_cast<Int>(src.keys[i] - 1);
          bool inserted = false;
          const size_t slot = trace_detail::upsert_slot(dst, addr, &inserted);
          dst.kfirst[slot] = std::min(dst.kfirst[slot], src.kfirst[i]);
          dst.klast[slot] = std::max(dst.klast[slot], src.klast[i]);
        }
      }
    }
    if (dst.dense && slabs > 1) {
      Int touched = 0;
      for (size_t a = 0; a < static_cast<size_t>(dst.volume); ++a) {
        if (dst.last[a] >= 0) ++touched;
      }
      dst.touched = touched;
    }
  }
}

void TraceArena::finish_run(const AddressPlan& plan, size_t slabs) {
  ++stats_.runs;
  Int bytes = 0;
  for (const auto& set : slabs_) {
    for (const StoreBuf& s : set) {
      bytes += static_cast<Int>(s.first.capacity() + s.last.capacity() +
                                s.kfirst.capacity() + s.klast.capacity()) *
               static_cast<Int>(sizeof(Int));
      bytes += static_cast<Int>(s.keys.capacity() * sizeof(std::uint64_t));
      bytes += static_cast<Int>(s.tag.capacity() + s.ktag.capacity());
    }
  }
  stats_.arena_bytes = bytes;
  stats_.arena_high_water_bytes = std::max(stats_.arena_high_water_bytes, bytes);
  for (size_t si = 0; si < plan.stores.size(); ++si) {
    if (plan.stores[si].dense) {
      ++stats_.dense_stores;
    } else {
      ++stats_.sparse_stores;
    }
    stats_.elements += slabs_[0][si].touched;
    stats_.accesses += plan.stores[si].accesses;
    for (size_t slab = 0; slab < slabs; ++slab) {
      const StoreBuf& s = slabs_[slab][si];
      stats_.sparse_probes += s.probes;
      stats_.sparse_ops += s.probe_ops;
      if (!s.dense && !s.keys.empty()) {
        stats_.table_occupancy_peak =
            std::max(stats_.table_occupancy_peak,
                     static_cast<double>(s.touched) /
                         static_cast<double>(s.keys.size()));
      }
    }
  }
}

}  // namespace lmre
