#pragma once

// The exact oracle: ground truth by enumeration.
//
// This plays the role the paper assigns to the "more expensive but exact"
// techniques of Clauss and Pugh: execute the nest (in original or
// transformed order), record every touched element, and compute the exact
// number of distinct accesses and the exact maximum window size (MWS).
//
// The reference window W_X(I) is the set of elements of X referenced at some
// iteration J1 <= I that are also referenced at some J2 > I (Section 2.3);
// MWS is max_I |W_X(I)|, and for multiple arrays max_I of the sum.

#include <functional>
#include <map>
#include <vector>

#include "ir/general.h"
#include "ir/nest.h"
#include "linalg/mat.h"
#include "support/options.h"

namespace lmre {

class TraceArena;  // exact/trace_engine.h: reusable dense-engine storage

/// Visits every iteration of the nest in the chosen execution order
/// (`transform == nullptr` means original lexicographic order), calling
/// body(ordinal, iteration).  The building block under every simulation in
/// this module; exposed so other granularities (memory lines, tiles) can
/// reuse the exact ordering.
void visit_iterations(const LoopNest& nest, const IntMat* transform,
                      const std::function<void(Int, const IntVec&)>& body);

/// Chunked variant for rectangular nests in original order: the outermost
/// loop is split into contiguous slabs of full inner subspaces and the slabs
/// are visited concurrently on at most resolve_threads(threads) workers.
/// `body(slab, ordinal, iter)` receives the *global* lexicographic ordinal
/// (identical to visit_iterations), so per-slab state merged in slab order
/// reproduces the serial trace exactly.  `slab` is always smaller than
/// resolve_threads(threads); body runs concurrently for distinct slabs and
/// must only touch slab-local state.
void visit_iterations_chunked(const LoopNest& nest, int threads,
                              const std::function<void(size_t, Int, const IntVec&)>& body);

/// Exact per-nest measurements from one simulated execution.
struct TraceStats {
  Int iterations = 0;      ///< number of iterations executed
  Int total_accesses = 0;  ///< iterations x refs (per executed statement)

  Int distinct_total = 0;                 ///< distinct (array, element) pairs
  std::map<ArrayId, Int> distinct;        ///< per array
  Int reuse_total = 0;                    ///< total_accesses - distinct_total
  std::map<ArrayId, Int> reuse;           ///< per array

  Int mws_total = 0;                      ///< max_I sum_X |W_X(I)|
  std::map<ArrayId, Int> mws;             ///< per array: max_I |W_X(I)|
};

/// Executes the nest in original lexicographic order.
TraceStats simulate(const LoopNest& nest);

/// Parallel simulation over outer-loop slabs (visit_iterations_chunked):
/// each slab keeps its own touch map, maps are merged at slab boundaries
/// (first = min, last = max), and the window sweep runs on the merged trace.
/// Bit-identical to simulate(nest) for every thread count; threads <= 1
/// takes the serial path.
TraceStats simulate(const LoopNest& nest, int threads);

/// simulate reusing the caller's TraceArena: repeated runs against the same
/// nest (candidate scoring, verify loops) touch one allocation footprint
/// instead of rebuilding storage per call.  Results are identical to the
/// arena-free overloads.
TraceStats simulate(const LoopNest& nest, int threads, TraceArena& arena);

/// simulate under the shared pipeline options: worker count from
/// run.threads (the result does not depend on it).  Callers are expected
/// to gate on run.verify_limit themselves -- the oracle always runs when
/// called.
TraceStats simulate(const LoopNest& nest, const RunOptions& run);

/// Executes the nest under the unimodular transformation `t`: iterations are
/// visited in lexicographic order of u = t * i (the transformed loop), each
/// mapped back through t^-1 to evaluate the body's references.
TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t);

/// simulate_transformed reusing the caller's TraceArena (see above).
TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t,
                                TraceArena& arena);

/// Executes a general (non-rectangular) nest in lexicographic order of its
/// constraint space.
TraceStats simulate_general(const GeneralNest& nest);

/// Executes the nest visiting iterations in exactly the given order (each
/// entry an original-space iteration vector).  The caller is responsible for
/// the order being a permutation of the iteration space; used by the tiling
/// machinery to model blocked execution.
TraceStats simulate_order(const LoopNest& nest, const std::vector<IntVec>& order);

/// Total-window-size time series |sum_X W_X| per iteration ordinal, in the
/// given execution order (identity transform = original order).  Useful for
/// plotting/inspecting the dynamic behaviour of the window.
std::vector<Int> window_series(const LoopNest& nest, const IntMat& t);

/// window_series reusing the caller's TraceArena.
std::vector<Int> window_series(const LoopNest& nest, const IntMat& t,
                               TraceArena& arena);

/// Exact per-element lifetime statistics.  The lifetime of an element is
/// the number of iterations between its first and last access (0 when it is
/// touched in a single iteration only) -- Section 1's "time between the
/// first and last accesses to a given array location".
struct LifetimeStats {
  Int elements = 0;       ///< distinct elements
  Int live_elements = 0;  ///< elements with lifetime > 0
  Int max_lifetime = 0;
  Int total_lifetime = 0;  ///< sum over elements

  double mean_lifetime() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(total_lifetime) /
                               static_cast<double>(elements);
  }
};

struct LifetimeReport {
  std::map<ArrayId, LifetimeStats> per_array;
  LifetimeStats total;
};

/// Measures lifetimes in original order.
LifetimeReport lifetime_report(const LoopNest& nest);

/// lifetime_report reusing the caller's TraceArena.
LifetimeReport lifetime_report(const LoopNest& nest, TraceArena& arena);

/// Measures lifetimes in transformed execution order.
LifetimeReport lifetime_report_transformed(const LoopNest& nest, const IntMat& t);

/// lifetime_report_transformed reusing the caller's TraceArena.
LifetimeReport lifetime_report_transformed(const LoopNest& nest,
                                           const IntMat& t, TraceArena& arena);

}  // namespace lmre
