#include "exact/oracle.h"

#include <functional>
#include <unordered_map>

#include "polyhedra/scanner.h"
#include "support/error.h"
#include "support/parallel_for.h"

namespace lmre {

namespace {

// Key for one touched element: array id + full index vector.
struct ElementKey {
  ArrayId array;
  std::vector<Int> index;
  bool operator==(const ElementKey& o) const {
    return array == o.array && index == o.index;
  }
};

struct ElementKeyHash {
  size_t operator()(const ElementKey& k) const {
    size_t h = std::hash<size_t>()(k.array);
    for (Int v : k.index) {
      h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct FirstLast {
  Int first;
  Int last;
};

}  // namespace

void visit_iterations(const LoopNest& nest, const IntMat* t,
                      const std::function<void(Int, const IntVec&)>& body) {
  Int ordinal = 0;
  if (t == nullptr) {
    scan(nest.bounds().to_constraints(), [&](const IntVec& iter) {
      body(ordinal++, iter);
    });
    return;
  }
  require(t->rows() == nest.depth() && t->cols() == nest.depth(),
          "simulate_transformed: transform shape mismatch");
  require(t->is_unimodular(), "simulate_transformed: transform not unimodular");
  IntMat t_inv = t->inverse_unimodular();
  // u ranges over the image T * box; the constraints are the box bounds
  // applied to i = T^-1 u.
  const IntBox& box = nest.bounds();
  const size_t n = nest.depth();
  ConstraintSystem sys(n);
  for (size_t k = 0; k < n; ++k) {
    AffineExpr expr(t_inv.row(k), 0);
    sys.add_range(expr, box.range(k).lo, box.range(k).hi);
  }
  scan(sys, [&](const IntVec& u) {
    IntVec iter = t_inv * u;
    ensure(box.contains(iter), "transformed scan left the iteration space");
    body(ordinal++, iter);
  });
}

void visit_iterations_chunked(const LoopNest& nest, int threads,
                              const std::function<void(size_t, Int, const IntVec&)>& body) {
  const size_t n = nest.depth();
  if (n == 0) return;
  const IntBox& box = nest.bounds();
  const Int outer_trips = box.range(0).trip_count();
  if (outer_trips <= 0) return;
  Int inner_volume = 1;
  for (size_t k = 1; k < n; ++k) {
    inner_volume = checked_mul(inner_volume, box.range(k).trip_count());
  }
  parallel_chunks(outer_trips, threads, /*grain=*/1,
                  [&](size_t slab, Int begin, Int end) {
    // The slab is the sub-box with the outer index restricted to
    // [lo + begin, lo + end - 1]; its first iteration has global ordinal
    // begin * inner_volume because every earlier outer value contributes a
    // full inner subspace.
    std::vector<Range> ranges = box.ranges();
    ranges[0] = Range{box.range(0).lo + begin, box.range(0).lo + end - 1};
    IntBox sub(std::move(ranges));
    Int ordinal = checked_mul(begin, inner_volume);
    scan(sub.to_constraints(), [&](const IntVec& iter) {
      body(slab, ordinal++, iter);
    });
  });
}

namespace {

// Shared trace pass: computes first/last touch per element and the access
// counters; window statistics are derived from the event sweep.
struct Trace {
  std::unordered_map<ElementKey, FirstLast, ElementKeyHash> touch;
  Int iterations = 0;
  Int total_accesses = 0;
  std::map<ArrayId, Int> distinct;

  void touch_iteration(const LoopNest& nest, Int ordinal, const IntVec& iter) {
    if (ordinal + 1 > iterations) iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++total_accesses;
        IntVec idx = ref.index_at(iter);
        ElementKey key{ref.array, idx.data()};
        auto [it, inserted] = touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
  }

  void run(const LoopNest& nest, const IntMat* t) {
    visit_iterations(nest, t, [&](Int ordinal, const IntVec& iter) {
      touch_iteration(nest, ordinal, iter);
    });
  }

  /// Folds another trace (a later slab of the same execution) into this one.
  /// first/last merge as min/max, so the merge is order-independent; the
  /// distinct counters are recomputed by the caller once all slabs are in.
  void absorb(Trace&& o) {
    iterations = std::max(iterations, o.iterations);
    total_accesses = checked_add(total_accesses, o.total_accesses);
    for (auto& [key, fl] : o.touch) {
      auto [it, inserted] = touch.try_emplace(key, fl);
      if (!inserted) {
        it->second.first = std::min(it->second.first, fl.first);
        it->second.last = std::max(it->second.last, fl.last);
      }
    }
  }

  void recount_distinct() {
    distinct.clear();
    for (const auto& [key, fl] : touch) {
      (void)fl;
      ++distinct[key.array];
    }
  }
};

}  // namespace

static TraceStats stats_from_trace(const LoopNest& nest, Trace& trace) {
  TraceStats s;
  s.iterations = trace.iterations;
  s.total_accesses = trace.total_accesses;
  s.distinct = trace.distinct;
  for (const auto& [array, count] : s.distinct) {
    s.distinct_total = checked_add(s.distinct_total, count);
  }
  s.reuse_total = checked_sub(s.total_accesses, s.distinct_total);

  // Per-array access counts, to fill reuse per array.
  std::map<ArrayId, Int> accesses;
  for (const auto& stmt : nest.statements()) {
    for (const auto& ref : stmt.refs) {
      accesses[ref.array] = checked_add(accesses[ref.array], s.iterations);
    }
  }
  for (const auto& [array, count] : accesses) {
    s.reuse[array] = checked_sub(count, s.distinct.count(array) ? s.distinct[array] : 0);
  }

  // Window sweep: an element is in the window at ordinal t iff
  // first <= t < last.  Delta events: +1 at `first`, -1 at `last`.
  const size_t horizon = static_cast<size_t>(s.iterations) + 1;
  std::map<ArrayId, std::vector<Int>> delta;
  std::vector<Int> delta_total(horizon, 0);
  for (const auto& [key, fl] : trace.touch) {
    if (fl.first == fl.last) continue;  // never live across iterations
    auto& d = delta[key.array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(fl.first)] += 1;
    d[static_cast<size_t>(fl.last)] -= 1;
    delta_total[static_cast<size_t>(fl.first)] += 1;
    delta_total[static_cast<size_t>(fl.last)] -= 1;
  }
  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    s.mws[array] = best;
  }
  // Arrays touched but never live across iterations still get an entry.
  for (const auto& [array, count] : s.distinct) {
    (void)count;
    s.mws.try_emplace(array, 0);
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    s.mws_total = std::max(s.mws_total, cur);
  }
  return s;
}

TraceStats simulate(const LoopNest& nest) {
  Trace trace;
  trace.run(nest, nullptr);
  return stats_from_trace(nest, trace);
}

TraceStats simulate(const LoopNest& nest, int threads) {
  const int workers = resolve_threads(threads);
  if (workers <= 1 || nest.depth() == 0 ||
      nest.bounds().range(0).trip_count() < 2) {
    return simulate(nest);
  }
  // One trace per possible slab; visit_iterations_chunked guarantees slab
  // indices below the resolved worker count and gives each slab global
  // ordinals, so merging in any order reproduces the serial trace.
  std::vector<Trace> slabs(static_cast<size_t>(workers));
  visit_iterations_chunked(nest, threads,
                           [&](size_t slab, Int ordinal, const IntVec& iter) {
    slabs[slab].touch_iteration(nest, ordinal, iter);
  });
  Trace merged = std::move(slabs[0]);
  for (size_t s = 1; s < slabs.size(); ++s) merged.absorb(std::move(slabs[s]));
  merged.recount_distinct();
  return stats_from_trace(nest, merged);
}

TraceStats simulate(const LoopNest& nest, const RunOptions& run) {
  return simulate(nest, run.threads);
}

TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  return stats_from_trace(nest, trace);
}

TraceStats simulate_general(const GeneralNest& nest) {
  Trace trace;
  Int ordinal = 0;
  scan(nest.space(), [&](const IntVec& iter) {
    trace.iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++trace.total_accesses;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        auto [it, inserted] = trace.touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++trace.distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
    ++ordinal;
  });
  // The window sweep is recomputed directly (stats_from_trace wants a
  // rectangular LoopNest for its per-array reuse bookkeeping).
  TraceStats s;
  s.iterations = trace.iterations;
  s.total_accesses = trace.total_accesses;
  s.distinct = trace.distinct;
  for (const auto& [array, count] : s.distinct) {
    s.distinct_total = checked_add(s.distinct_total, count);
  }
  s.reuse_total = checked_sub(s.total_accesses, s.distinct_total);
  const size_t horizon = static_cast<size_t>(s.iterations) + 1;
  std::map<ArrayId, std::vector<Int>> delta;
  std::vector<Int> delta_total(horizon, 0);
  for (const auto& [key, fl] : trace.touch) {
    if (fl.first == fl.last) continue;
    auto& d = delta[key.array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(fl.first)] += 1;
    d[static_cast<size_t>(fl.last)] -= 1;
    delta_total[static_cast<size_t>(fl.first)] += 1;
    delta_total[static_cast<size_t>(fl.last)] -= 1;
  }
  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    s.mws[array] = best;
  }
  for (const auto& [array, count] : s.distinct) {
    (void)count;
    s.mws.try_emplace(array, 0);
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    s.mws_total = std::max(s.mws_total, cur);
  }
  return s;
}

TraceStats simulate_order(const LoopNest& nest, const std::vector<IntVec>& order) {
  Trace trace;
  Int ordinal = 0;
  for (const IntVec& iter : order) {
    require(nest.bounds().contains(iter),
            "simulate_order: iteration outside the nest bounds");
    trace.iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++trace.total_accesses;
        IntVec idx = ref.index_at(iter);
        ElementKey key{ref.array, idx.data()};
        auto [it, inserted] = trace.touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++trace.distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
    ++ordinal;
  }
  return stats_from_trace(nest, trace);
}

namespace {

LifetimeReport lifetimes_from_trace(const Trace& trace) {
  LifetimeReport rep;
  for (const auto& [key, fl] : trace.touch) {
    Int life = fl.last - fl.first;
    auto bump = [&](LifetimeStats& s) {
      s.elements += 1;
      if (life > 0) s.live_elements += 1;
      s.max_lifetime = std::max(s.max_lifetime, life);
      s.total_lifetime = checked_add(s.total_lifetime, life);
    };
    bump(rep.per_array[key.array]);
    bump(rep.total);
  }
  return rep;
}

}  // namespace

LifetimeReport lifetime_report(const LoopNest& nest) {
  Trace trace;
  trace.run(nest, nullptr);
  return lifetimes_from_trace(trace);
}

LifetimeReport lifetime_report_transformed(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  return lifetimes_from_trace(trace);
}

std::vector<Int> window_series(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  std::vector<Int> delta(static_cast<size_t>(trace.iterations) + 1, 0);
  for (const auto& [key, fl] : trace.touch) {
    (void)key;
    if (fl.first == fl.last) continue;
    delta[static_cast<size_t>(fl.first)] += 1;
    delta[static_cast<size_t>(fl.last)] -= 1;
  }
  std::vector<Int> series;
  series.reserve(delta.size());
  Int cur = 0;
  for (Int v : delta) {
    cur += v;
    series.push_back(cur);
  }
  if (!series.empty()) series.pop_back();  // last entry is past the end
  return series;
}

}  // namespace lmre
