#include "exact/oracle.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "exact/reference.h"
#include "exact/trace_engine.h"
#include "polyhedra/scanner.h"
#include "support/error.h"
#include "support/parallel_for.h"

namespace lmre {

void visit_iterations(const LoopNest& nest, const IntMat* t,
                      const std::function<void(Int, const IntVec&)>& body) {
  Int ordinal = 0;
  if (t == nullptr) {
    scan(nest.bounds().to_constraints(), [&](const IntVec& iter) {
      body(ordinal++, iter);
    });
    return;
  }
  require(t->rows() == nest.depth() && t->cols() == nest.depth(),
          "simulate_transformed: transform shape mismatch");
  require(t->is_unimodular(), "simulate_transformed: transform not unimodular");
  IntMat t_inv = t->inverse_unimodular();
  // u ranges over the image T * box; the constraints are the box bounds
  // applied to i = T^-1 u.
  const IntBox& box = nest.bounds();
  const size_t n = nest.depth();
  ConstraintSystem sys(n);
  for (size_t k = 0; k < n; ++k) {
    AffineExpr expr(t_inv.row(k), 0);
    sys.add_range(expr, box.range(k).lo, box.range(k).hi);
  }
  scan(sys, [&](const IntVec& u) {
    IntVec iter = t_inv * u;
    ensure(box.contains(iter), "transformed scan left the iteration space");
    body(ordinal++, iter);
  });
}

void visit_iterations_chunked(const LoopNest& nest, int threads,
                              const std::function<void(size_t, Int, const IntVec&)>& body) {
  const size_t n = nest.depth();
  if (n == 0) return;
  const IntBox& box = nest.bounds();
  const Int outer_trips = box.range(0).trip_count();
  if (outer_trips <= 0) return;
  Int inner_volume = 1;
  for (size_t k = 1; k < n; ++k) {
    inner_volume = checked_mul(inner_volume, box.range(k).trip_count());
  }
  parallel_chunks(outer_trips, threads, /*grain=*/1,
                  [&](size_t slab, Int begin, Int end) {
    // The slab is the sub-box with the outer index restricted to
    // [lo + begin, lo + end - 1]; its first iteration has global ordinal
    // begin * inner_volume because every earlier outer value contributes a
    // full inner subspace.
    std::vector<Range> ranges = box.ranges();
    ranges[0] = Range{box.range(0).lo + begin, box.range(0).lo + end - 1};
    IntBox sub(std::move(ranges));
    Int ordinal = checked_mul(begin, inner_volume);
    scan(sub.to_constraints(), [&](const IntVec& iter) {
      body(slab, ordinal++, iter);
    });
  });
}

namespace {

// Per-ref pointers into one slab's store set, hoisted out of the touch
// callback so the innermost loop is one add + one store update per access.
std::vector<TraceArena::StoreBuf*> ref_bufs(const AddressPlan& plan,
                                            TraceArena& arena, size_t slab) {
  std::vector<TraceArena::StoreBuf*> bufs(plan.refs.size());
  for (size_t r = 0; r < plan.refs.size(); ++r) {
    bufs[r] = &arena.store(slab, plan.refs[r].store);
  }
  return bufs;
}

// Derives TraceStats from slab 0 of a finished first/last run.  The math
// mirrors the reference engine's stats_from_trace exactly: same map keys,
// same delta-sweep horizons, same counter arithmetic.
TraceStats stats_from_stores(const AddressPlan& plan, TraceArena& arena,
                             Int iterations) {
  TraceStats s;
  s.iterations = iterations;
  s.total_accesses =
      checked_mul(iterations, static_cast<Int>(plan.refs.size()));

  std::vector<Int> ref_count(plan.stores.size(), 0);
  for (const auto& r : plan.refs) ++ref_count[r.store];

  const size_t horizon = static_cast<size_t>(iterations) + 1;
  std::vector<Int> delta_total(horizon, 0);
  std::vector<Int> d;
  for (size_t si = 0; si < plan.stores.size(); ++si) {
    const ArrayId array = plan.stores[si].array;
    const TraceArena::StoreBuf& b = arena.store(0, si);
    if (b.touched > 0) {
      s.distinct[array] = b.touched;
      s.distinct_total = checked_add(s.distinct_total, b.touched);
    }
    s.reuse[array] =
        checked_sub(checked_mul(ref_count[si], iterations), b.touched);
    d.clear();
    trace_detail::for_each_touched(b, [&](Int first, Int last) {
      if (first == last) return;  // never live across iterations
      if (d.empty()) d.assign(horizon, 0);
      d[static_cast<size_t>(first)] += 1;
      d[static_cast<size_t>(last)] -= 1;
      delta_total[static_cast<size_t>(first)] += 1;
      delta_total[static_cast<size_t>(last)] -= 1;
    });
    if (!d.empty()) {
      Int cur = 0, best = 0;
      for (Int v : d) {
        cur += v;
        best = std::max(best, cur);
      }
      s.mws[array] = best;
    } else if (b.touched > 0) {
      // Touched but never live across iterations still gets an entry.
      s.mws[array] = 0;
    }
  }
  s.reuse_total = checked_sub(s.total_accesses, s.distinct_total);
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    s.mws_total = std::max(s.mws_total, cur);
  }
  return s;
}

LifetimeReport lifetimes_from_stores(const AddressPlan& plan,
                                     TraceArena& arena) {
  LifetimeReport rep;
  for (size_t si = 0; si < plan.stores.size(); ++si) {
    const TraceArena::StoreBuf& b = arena.store(0, si);
    if (b.touched == 0) continue;
    LifetimeStats& per = rep.per_array[plan.stores[si].array];
    trace_detail::for_each_touched(b, [&](Int first, Int last) {
      Int life = last - first;
      auto bump = [&](LifetimeStats& st) {
        st.elements += 1;
        if (life > 0) st.live_elements += 1;
        st.max_lifetime = std::max(st.max_lifetime, life);
        st.total_lifetime = checked_add(st.total_lifetime, life);
      };
      bump(per);
      bump(rep.total);
    });
  }
  return rep;
}

// Serial original-order first/last run into slab 0.
void run_serial(const LoopNest& nest, const AddressPlan& plan,
                TraceArena& arena) {
  arena.prepare(plan, 1, /*with_state=*/false);
  auto bufs = ref_bufs(plan, arena, 0);
  drive_box(plan, nest.bounds(), /*ordinal0=*/0,
            [&](size_t r, Int ordinal, Int addr) {
    trace_detail::touch_first_last(*bufs[r], addr, ordinal);
  });
  arena.finish_run(plan, 1);
}

// Transformed-order first/last run into slab 0; returns iterations visited.
Int run_transformed(const LoopNest& nest, const AddressPlan& plan,
                    const IntMat& t_inv, TraceArena& arena) {
  arena.prepare(plan, 1, /*with_state=*/false);
  auto bufs = ref_bufs(plan, arena, 0);
  Int iters = drive_transformed(plan, nest, t_inv,
                                [&](size_t r, Int ordinal, Int addr) {
    trace_detail::touch_first_last(*bufs[r], addr, ordinal);
  });
  arena.finish_run(plan, 1);
  return iters;
}

}  // namespace

TraceStats simulate(const LoopNest& nest) {
  TraceArena arena;
  return simulate(nest, 1, arena);
}

TraceStats simulate(const LoopNest& nest, int threads, TraceArena& arena) {
  const int workers = resolve_threads(threads);
  const bool parallel = workers > 1 && nest.depth() > 0 &&
                        nest.bounds().range(0).trip_count() >= 2;
  const int slabs = parallel ? workers : 1;
  auto plan = AddressPlan::build(nest, nullptr, /*liveness_order=*/false, slabs);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return parallel ? reference::simulate(nest, threads)
                    : reference::simulate(nest);
  }
  if (!parallel) {
    run_serial(nest, *plan, arena);
    return stats_from_stores(*plan, arena, plan->iterations);
  }
  // Outer-loop slabs with global ordinals (the visit_iterations_chunked
  // contract): each slab drives its sub-box into its own store set; dense
  // first/last merge as elementwise min/max afterwards.
  arena.prepare(*plan, static_cast<size_t>(slabs), /*with_state=*/false);
  const IntBox& box = nest.bounds();
  const size_t n = nest.depth();
  Int inner_volume = 1;
  for (size_t k = 1; k < n; ++k) {
    inner_volume = checked_mul(inner_volume, box.range(k).trip_count());
  }
  parallel_chunks(box.range(0).trip_count(), threads, /*grain=*/1,
                  [&](size_t slab, Int begin, Int end) {
    std::vector<Range> ranges = box.ranges();
    ranges[0] = Range{box.range(0).lo + begin, box.range(0).lo + end - 1};
    IntBox sub(std::move(ranges));
    auto bufs = ref_bufs(*plan, arena, slab);
    drive_box(*plan, sub, checked_mul(begin, inner_volume),
              [&](size_t r, Int ordinal, Int addr) {
      trace_detail::touch_first_last(*bufs[r], addr, ordinal);
    });
  });
  arena.merge_slabs(*plan, static_cast<size_t>(slabs));
  arena.finish_run(*plan, static_cast<size_t>(slabs));
  return stats_from_stores(*plan, arena, plan->iterations);
}

TraceStats simulate(const LoopNest& nest, int threads) {
  TraceArena arena;
  return simulate(nest, threads, arena);
}

TraceStats simulate(const LoopNest& nest, const RunOptions& run) {
  return simulate(nest, run.threads);
}

TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t,
                                TraceArena& arena) {
  require(t.rows() == nest.depth() && t.cols() == nest.depth(),
          "simulate_transformed: transform shape mismatch");
  require(t.is_unimodular(), "simulate_transformed: transform not unimodular");
  IntMat t_inv = t.inverse_unimodular();
  auto plan = AddressPlan::build(nest, &t_inv, /*liveness_order=*/false, 1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return reference::simulate_transformed(nest, t);
  }
  Int iters = run_transformed(nest, *plan, t_inv, arena);
  return stats_from_stores(*plan, arena, iters);
}

TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t) {
  TraceArena arena;
  return simulate_transformed(nest, t, arena);
}

TraceStats simulate_order(const LoopNest& nest,
                          const std::vector<IntVec>& order) {
  auto plan = AddressPlan::build(nest, nullptr, /*liveness_order=*/false, 1);
  if (!plan) return reference::simulate_order(nest, order);
  TraceArena arena;
  arena.prepare(*plan, 1, /*with_state=*/false);
  auto bufs = ref_bufs(*plan, arena, 0);
  Int ordinal = 0;
  for (const IntVec& iter : order) {
    require(nest.bounds().contains(iter),
            "simulate_order: iteration outside the nest bounds");
    for (size_t r = 0; r < plan->refs.size(); ++r) {
      trace_detail::touch_first_last(
          *bufs[r], trace_detail::plan_address(plan->refs[r], iter), ordinal);
    }
    ++ordinal;
  }
  arena.finish_run(*plan, 1);
  return stats_from_stores(*plan, arena, ordinal);
}

LifetimeReport lifetime_report(const LoopNest& nest, TraceArena& arena) {
  auto plan = AddressPlan::build(nest, nullptr, /*liveness_order=*/false, 1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return reference::lifetime_report(nest);
  }
  run_serial(nest, *plan, arena);
  return lifetimes_from_stores(*plan, arena);
}

LifetimeReport lifetime_report(const LoopNest& nest) {
  TraceArena arena;
  return lifetime_report(nest, arena);
}

LifetimeReport lifetime_report_transformed(const LoopNest& nest,
                                           const IntMat& t,
                                           TraceArena& arena) {
  require(t.rows() == nest.depth() && t.cols() == nest.depth(),
          "simulate_transformed: transform shape mismatch");
  require(t.is_unimodular(), "simulate_transformed: transform not unimodular");
  IntMat t_inv = t.inverse_unimodular();
  auto plan = AddressPlan::build(nest, &t_inv, /*liveness_order=*/false, 1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return reference::lifetime_report_transformed(nest, t);
  }
  run_transformed(nest, *plan, t_inv, arena);
  return lifetimes_from_stores(*plan, arena);
}

LifetimeReport lifetime_report_transformed(const LoopNest& nest,
                                           const IntMat& t) {
  TraceArena arena;
  return lifetime_report_transformed(nest, t, arena);
}

std::vector<Int> window_series(const LoopNest& nest, const IntMat& t,
                               TraceArena& arena) {
  require(t.rows() == nest.depth() && t.cols() == nest.depth(),
          "simulate_transformed: transform shape mismatch");
  require(t.is_unimodular(), "simulate_transformed: transform not unimodular");
  IntMat t_inv = t.inverse_unimodular();
  auto plan = AddressPlan::build(nest, &t_inv, /*liveness_order=*/false, 1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return reference::window_series(nest, t);
  }
  Int iters = run_transformed(nest, *plan, t_inv, arena);
  std::vector<Int> delta(static_cast<size_t>(iters) + 1, 0);
  for (size_t si = 0; si < plan->stores.size(); ++si) {
    trace_detail::for_each_touched(arena.store(0, si), [&](Int first, Int last) {
      if (first == last) return;
      delta[static_cast<size_t>(first)] += 1;
      delta[static_cast<size_t>(last)] -= 1;
    });
  }
  std::vector<Int> series;
  series.reserve(delta.size());
  Int cur = 0;
  for (Int v : delta) {
    cur += v;
    series.push_back(cur);
  }
  if (!series.empty()) series.pop_back();  // last entry is past the end
  return series;
}

std::vector<Int> window_series(const LoopNest& nest, const IntMat& t) {
  TraceArena arena;
  return window_series(nest, t, arena);
}

}  // namespace lmre
