#include "exact/liveness.h"

#include <algorithm>
#include <map>
#include <vector>

#include "exact/reference.h"
#include "exact/trace_engine.h"
#include "support/error.h"

namespace lmre {

namespace {

// Streaming value-liveness over the dense engine: instead of buffering the
// full per-element access history and segmenting it afterwards (the
// reference engine), each element carries a 3-state machine
//   0 = unseen, 1 = input value live (reads only so far), 2 = written
// plus the open segment's [birth, last_read] in the store's first/last
// slots.  Segments are emitted into the same delta arrays the reference's
// add_interval fills, in a per-element order that only permutes commutative
// +1/-1 events, so the sweep results are byte-identical.
struct LivenessSweep {
  const AddressPlan& plan;
  TraceArena& arena;
  LivenessStats stats;
  size_t horizon;
  std::vector<Int> delta_total;
  std::map<ArrayId, std::vector<Int>> delta;

  LivenessSweep(const AddressPlan& p, TraceArena& a, Int iterations)
      : plan(p),
        arena(a),
        horizon(static_cast<size_t>(iterations) + 2),
        delta_total(horizon, 0) {}

  void add_interval(ArrayId array, Int birth, Int last_use) {
    if (last_use < birth) return;  // dead value
    auto& d = delta[array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(birth)] += 1;
    d[static_cast<size_t>(last_use) + 1] -= 1;
    delta_total[static_cast<size_t>(birth)] += 1;
    delta_total[static_cast<size_t>(last_use) + 1] -= 1;
  }

  // One access to `addr` of store `s` (owned by `array`) at `ordinal`.
  void touch(TraceArena::StoreBuf& s, ArrayId array, bool is_write, Int ordinal,
             Int addr) {
    Int* birth;
    Int* last_read;
    unsigned char* tag;
    if (s.dense) {
      const size_t i = static_cast<size_t>(addr);
      birth = &s.first[i];
      last_read = &s.last[i];
      tag = &s.tag[i];
      if (*tag == 0) ++s.touched;
    } else {
      bool inserted = false;
      const size_t i = trace_detail::upsert_slot(s, addr, &inserted);
      birth = &s.kfirst[i];
      last_read = &s.klast[i];
      tag = &s.ktag[i];
    }
    switch (*tag) {
      case 0:  // unseen
        if (is_write) {
          *tag = 2;
          *birth = ordinal;
          *last_read = ordinal - 1;  // empty unless a read follows
        } else {
          // Upward-exposed input value, staged just in time.
          ++stats.input_elements;
          *tag = 1;
          *birth = ordinal;
          *last_read = ordinal;
        }
        break;
      case 1:  // input segment open
        if (is_write) {
          add_interval(array, *birth, *last_read);  // last_read >= birth
          *tag = 2;
          *birth = ordinal;
          *last_read = ordinal - 1;
        } else {
          *last_read = ordinal;
        }
        break;
      default:  // 2: write segment open
        if (is_write) {
          add_interval(array, *birth, *last_read);
          *birth = ordinal;
          *last_read = ordinal - 1;
        } else {
          *last_read = ordinal;
        }
        break;
    }
  }

  // Emits every element's still-open segment.
  void flush() {
    for (size_t si = 0; si < plan.stores.size(); ++si) {
      const ArrayId array = plan.stores[si].array;
      const TraceArena::StoreBuf& s = arena.store(0, si);
      if (s.dense) {
        for (size_t a = 0; a < static_cast<size_t>(s.volume); ++a) {
          if (s.tag[a] != 0) add_interval(array, s.first[a], s.last[a]);
        }
      } else {
        for (size_t i = 0; i < s.keys.size(); ++i) {
          if (s.keys[i] != 0 && s.ktag[i] != 0) {
            add_interval(array, s.kfirst[i], s.klast[i]);
          }
        }
      }
    }
  }

  LivenessStats finish() {
    flush();
    for (auto& [array, d] : delta) {
      Int cur = 0, best = 0;
      for (Int v : d) {
        cur += v;
        best = std::max(best, cur);
      }
      stats.per_array[array] = best;
    }
    Int cur = 0;
    for (Int v : delta_total) {
      cur += v;
      stats.max_live = std::max(stats.max_live, cur);
    }
    return stats;
  }
};

}  // namespace

LivenessStats min_memory_liveness(const LoopNest& nest, const IntMat* transform,
                                  TraceArena& arena) {
  std::optional<IntMat> t_inv;
  if (transform != nullptr) {
    require(transform->rows() == nest.depth() &&
                transform->cols() == nest.depth(),
            "simulate_transformed: transform shape mismatch");
    require(transform->is_unimodular(),
            "simulate_transformed: transform not unimodular");
    t_inv = transform->inverse_unimodular();
  }
  auto plan = AddressPlan::build(nest, t_inv ? &*t_inv : nullptr,
                                 /*liveness_order=*/true, 1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    return reference::min_memory_liveness(nest, transform);
  }
  arena.prepare(*plan, 1, /*with_state=*/true);
  std::vector<TraceArena::StoreBuf*> bufs(plan->refs.size());
  std::vector<ArrayId> arrays(plan->refs.size());
  for (size_t r = 0; r < plan->refs.size(); ++r) {
    bufs[r] = &arena.store(0, plan->refs[r].store);
    arrays[r] = plan->stores[plan->refs[r].store].array;
  }
  Int iterations = plan->iterations;
  LivenessSweep sweep(*plan, arena, iterations);
  auto touch = [&](size_t r, Int ordinal, Int addr) {
    sweep.touch(*bufs[r], arrays[r], plan->refs[r].is_write, ordinal, addr);
  };
  if (t_inv) {
    drive_transformed(*plan, nest, *t_inv, touch);
  } else {
    drive_box(*plan, nest.bounds(), /*ordinal0=*/0, touch);
  }
  arena.finish_run(*plan, 1);
  return sweep.finish();
}

LivenessStats min_memory_liveness(const LoopNest& nest, const IntMat* transform) {
  TraceArena arena;
  return min_memory_liveness(nest, transform, arena);
}

}  // namespace lmre
