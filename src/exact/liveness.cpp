#include "exact/liveness.h"

#include <unordered_map>
#include <vector>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

namespace {

struct ElementKey {
  ArrayId array;
  std::vector<Int> index;
  bool operator==(const ElementKey& o) const {
    return array == o.array && index == o.index;
  }
};

struct ElementKeyHash {
  size_t operator()(const ElementKey& k) const {
    size_t h = std::hash<size_t>()(k.array);
    for (Int v : k.index) {
      h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct Access {
  Int ordinal;
  bool is_write;
};

}  // namespace

LivenessStats min_memory_liveness(const LoopNest& nest, const IntMat* transform) {
  std::unordered_map<ElementKey, std::vector<Access>, ElementKeyHash> history;
  Int iterations = 0;
  visit_iterations(nest, transform, [&](Int ordinal, const IntVec& iter) {
    iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      // Reads before writes within a statement: the RHS is consumed before
      // the store happens, so "A[i] = A[i] + ..." reads the OLD value.
      for (const auto& ref : stmt.refs) {
        if (ref.is_write()) continue;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        history[key].push_back(Access{ordinal, false});
      }
      for (const auto& ref : stmt.refs) {
        if (!ref.is_write()) continue;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        history[key].push_back(Access{ordinal, true});
      }
    }
  });

  // Live intervals (inclusive of the final use: the value must be present
  // when it is read).  Events: +1 at birth, -1 at last_use + 1.
  LivenessStats stats;
  const size_t horizon = static_cast<size_t>(iterations) + 2;
  std::vector<Int> delta_total(horizon, 0);
  std::map<ArrayId, std::vector<Int>> delta;
  auto add_interval = [&](ArrayId array, Int birth, Int last_use) {
    if (last_use < birth) return;  // dead value
    auto& d = delta[array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(birth)] += 1;
    d[static_cast<size_t>(last_use) + 1] -= 1;
    delta_total[static_cast<size_t>(birth)] += 1;
    delta_total[static_cast<size_t>(last_use) + 1] -= 1;
  };

  for (auto& [key, accesses] : history) {
    // Accesses arrive in execution order already (visit order), but within
    // one iteration a write can precede reads in statement order; that
    // granularity is below the iteration-level model, so ordering inside an
    // ordinal follows statement order as recorded.
    size_t i = 0;
    const size_t n = accesses.size();
    // Upward-exposed input value: staged just in time from the backing
    // store, so live from its FIRST use to its last read before the first
    // write.
    if (!accesses[0].is_write) {
      Int first_read = accesses[0].ordinal;
      Int last_read = accesses[0].ordinal;
      size_t j = 0;
      while (j < n && !accesses[j].is_write) {
        last_read = accesses[j].ordinal;
        ++j;
      }
      stats.input_elements += 1;
      add_interval(key.array, first_read, last_read);
      i = j;
    }
    // Each write starts a value; it lives until the last read before the
    // next write.
    while (i < n) {
      ensure(accesses[i].is_write, "liveness walk must be at a write");
      Int birth = accesses[i].ordinal;
      Int last_read = birth - 1;  // empty unless a read follows
      size_t j = i + 1;
      while (j < n && !accesses[j].is_write) {
        last_read = accesses[j].ordinal;
        ++j;
      }
      add_interval(key.array, birth, last_read);
      i = j;
    }
  }

  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    stats.per_array[array] = best;
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    stats.max_live = std::max(stats.max_live, cur);
  }
  return stats;
}

}  // namespace lmre
