#include "exact/reference.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "polyhedra/scanner.h"
#include "support/error.h"
#include "support/parallel_for.h"

namespace lmre {

namespace {

// Key for one touched element: array id + full index vector.
struct ElementKey {
  ArrayId array;
  std::vector<Int> index;
  bool operator==(const ElementKey& o) const {
    return array == o.array && index == o.index;
  }
};

struct ElementKeyHash {
  size_t operator()(const ElementKey& k) const {
    size_t h = std::hash<size_t>()(k.array);
    for (Int v : k.index) {
      h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct FirstLast {
  Int first;
  Int last;
};

// Shared trace pass: computes first/last touch per element and the access
// counters; window statistics are derived from the event sweep.
struct Trace {
  std::unordered_map<ElementKey, FirstLast, ElementKeyHash> touch;
  Int iterations = 0;
  Int total_accesses = 0;
  std::map<ArrayId, Int> distinct;

  void touch_iteration(const LoopNest& nest, Int ordinal, const IntVec& iter) {
    if (ordinal + 1 > iterations) iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++total_accesses;
        IntVec idx = ref.index_at(iter);
        ElementKey key{ref.array, idx.data()};
        auto [it, inserted] = touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
  }

  void run(const LoopNest& nest, const IntMat* t) {
    visit_iterations(nest, t, [&](Int ordinal, const IntVec& iter) {
      touch_iteration(nest, ordinal, iter);
    });
  }

  /// Folds another trace (a later slab of the same execution) into this one.
  /// first/last merge as min/max, so the merge is order-independent; the
  /// distinct counters are recomputed by the caller once all slabs are in.
  void absorb(Trace&& o) {
    iterations = std::max(iterations, o.iterations);
    total_accesses = checked_add(total_accesses, o.total_accesses);
    for (auto& [key, fl] : o.touch) {
      auto [it, inserted] = touch.try_emplace(key, fl);
      if (!inserted) {
        it->second.first = std::min(it->second.first, fl.first);
        it->second.last = std::max(it->second.last, fl.last);
      }
    }
  }

  void recount_distinct() {
    distinct.clear();
    for (const auto& [key, fl] : touch) {
      (void)fl;
      ++distinct[key.array];
    }
  }
};

TraceStats stats_from_trace(const LoopNest& nest, Trace& trace) {
  TraceStats s;
  s.iterations = trace.iterations;
  s.total_accesses = trace.total_accesses;
  s.distinct = trace.distinct;
  for (const auto& [array, count] : s.distinct) {
    s.distinct_total = checked_add(s.distinct_total, count);
  }
  s.reuse_total = checked_sub(s.total_accesses, s.distinct_total);

  // Per-array access counts, to fill reuse per array.
  std::map<ArrayId, Int> accesses;
  for (const auto& stmt : nest.statements()) {
    for (const auto& ref : stmt.refs) {
      accesses[ref.array] = checked_add(accesses[ref.array], s.iterations);
    }
  }
  for (const auto& [array, count] : accesses) {
    s.reuse[array] = checked_sub(count, s.distinct.count(array) ? s.distinct[array] : 0);
  }

  // Window sweep: an element is in the window at ordinal t iff
  // first <= t < last.  Delta events: +1 at `first`, -1 at `last`.
  const size_t horizon = static_cast<size_t>(s.iterations) + 1;
  std::map<ArrayId, std::vector<Int>> delta;
  std::vector<Int> delta_total(horizon, 0);
  for (const auto& [key, fl] : trace.touch) {
    if (fl.first == fl.last) continue;  // never live across iterations
    auto& d = delta[key.array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(fl.first)] += 1;
    d[static_cast<size_t>(fl.last)] -= 1;
    delta_total[static_cast<size_t>(fl.first)] += 1;
    delta_total[static_cast<size_t>(fl.last)] -= 1;
  }
  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    s.mws[array] = best;
  }
  // Arrays touched but never live across iterations still get an entry.
  for (const auto& [array, count] : s.distinct) {
    (void)count;
    s.mws.try_emplace(array, 0);
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    s.mws_total = std::max(s.mws_total, cur);
  }
  return s;
}

LifetimeReport lifetimes_from_trace(const Trace& trace) {
  LifetimeReport rep;
  for (const auto& [key, fl] : trace.touch) {
    Int life = fl.last - fl.first;
    auto bump = [&](LifetimeStats& s) {
      s.elements += 1;
      if (life > 0) s.live_elements += 1;
      s.max_lifetime = std::max(s.max_lifetime, life);
      s.total_lifetime = checked_add(s.total_lifetime, life);
    };
    bump(rep.per_array[key.array]);
    bump(rep.total);
  }
  return rep;
}

}  // namespace

namespace reference {

TraceStats simulate(const LoopNest& nest) {
  Trace trace;
  trace.run(nest, nullptr);
  return stats_from_trace(nest, trace);
}

TraceStats simulate(const LoopNest& nest, int threads) {
  const int workers = resolve_threads(threads);
  if (workers <= 1 || nest.depth() == 0 ||
      nest.bounds().range(0).trip_count() < 2) {
    return reference::simulate(nest);  // qualified: ADL also sees lmre::simulate
  }
  // One trace per possible slab; visit_iterations_chunked guarantees slab
  // indices below the resolved worker count and gives each slab global
  // ordinals, so merging in any order reproduces the serial trace.
  std::vector<Trace> slabs(static_cast<size_t>(workers));
  visit_iterations_chunked(nest, threads,
                           [&](size_t slab, Int ordinal, const IntVec& iter) {
    slabs[slab].touch_iteration(nest, ordinal, iter);
  });
  Trace merged = std::move(slabs[0]);
  for (size_t s = 1; s < slabs.size(); ++s) merged.absorb(std::move(slabs[s]));
  merged.recount_distinct();
  return stats_from_trace(nest, merged);
}

TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  return stats_from_trace(nest, trace);
}

TraceStats simulate_order(const LoopNest& nest, const std::vector<IntVec>& order) {
  Trace trace;
  Int ordinal = 0;
  for (const IntVec& iter : order) {
    require(nest.bounds().contains(iter),
            "simulate_order: iteration outside the nest bounds");
    trace.iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++trace.total_accesses;
        IntVec idx = ref.index_at(iter);
        ElementKey key{ref.array, idx.data()};
        auto [it, inserted] = trace.touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++trace.distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
    ++ordinal;
  }
  return stats_from_trace(nest, trace);
}

std::vector<Int> window_series(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  std::vector<Int> delta(static_cast<size_t>(trace.iterations) + 1, 0);
  for (const auto& [key, fl] : trace.touch) {
    (void)key;
    if (fl.first == fl.last) continue;
    delta[static_cast<size_t>(fl.first)] += 1;
    delta[static_cast<size_t>(fl.last)] -= 1;
  }
  std::vector<Int> series;
  series.reserve(delta.size());
  Int cur = 0;
  for (Int v : delta) {
    cur += v;
    series.push_back(cur);
  }
  if (!series.empty()) series.pop_back();  // last entry is past the end
  return series;
}

LifetimeReport lifetime_report(const LoopNest& nest) {
  Trace trace;
  trace.run(nest, nullptr);
  return lifetimes_from_trace(trace);
}

LifetimeReport lifetime_report_transformed(const LoopNest& nest, const IntMat& t) {
  Trace trace;
  trace.run(nest, &t);
  return lifetimes_from_trace(trace);
}

namespace {

struct Access {
  Int ordinal;
  bool is_write;
};

}  // namespace

LivenessStats min_memory_liveness(const LoopNest& nest, const IntMat* transform) {
  std::unordered_map<ElementKey, std::vector<Access>, ElementKeyHash> history;
  Int iterations = 0;
  visit_iterations(nest, transform, [&](Int ordinal, const IntVec& iter) {
    iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      // Reads before writes within a statement: the RHS is consumed before
      // the store happens, so "A[i] = A[i] + ..." reads the OLD value.
      for (const auto& ref : stmt.refs) {
        if (ref.is_write()) continue;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        history[key].push_back(Access{ordinal, false});
      }
      for (const auto& ref : stmt.refs) {
        if (!ref.is_write()) continue;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        history[key].push_back(Access{ordinal, true});
      }
    }
  });

  // Live intervals (inclusive of the final use: the value must be present
  // when it is read).  Events: +1 at birth, -1 at last_use + 1.
  LivenessStats stats;
  const size_t horizon = static_cast<size_t>(iterations) + 2;
  std::vector<Int> delta_total(horizon, 0);
  std::map<ArrayId, std::vector<Int>> delta;
  auto add_interval = [&](ArrayId array, Int birth, Int last_use) {
    if (last_use < birth) return;  // dead value
    auto& d = delta[array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(birth)] += 1;
    d[static_cast<size_t>(last_use) + 1] -= 1;
    delta_total[static_cast<size_t>(birth)] += 1;
    delta_total[static_cast<size_t>(last_use) + 1] -= 1;
  };

  for (auto& [key, accesses] : history) {
    // Accesses arrive in execution order already (visit order), but within
    // one iteration a write can precede reads in statement order; that
    // granularity is below the iteration-level model, so ordering inside an
    // ordinal follows statement order as recorded.
    size_t i = 0;
    const size_t n = accesses.size();
    // Upward-exposed input value: staged just in time from the backing
    // store, so live from its FIRST use to its last read before the first
    // write.
    if (!accesses[0].is_write) {
      Int first_read = accesses[0].ordinal;
      Int last_read = accesses[0].ordinal;
      size_t j = 0;
      while (j < n && !accesses[j].is_write) {
        last_read = accesses[j].ordinal;
        ++j;
      }
      stats.input_elements += 1;
      add_interval(key.array, first_read, last_read);
      i = j;
    }
    // Each write starts a value; it lives until the last read before the
    // next write.
    while (i < n) {
      ensure(accesses[i].is_write, "liveness walk must be at a write");
      Int birth = accesses[i].ordinal;
      Int last_read = birth - 1;  // empty unless a read follows
      size_t j = i + 1;
      while (j < n && !accesses[j].is_write) {
        last_read = accesses[j].ordinal;
        ++j;
      }
      add_interval(key.array, birth, last_read);
      i = j;
    }
  }

  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    stats.per_array[array] = best;
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    stats.max_live = std::max(stats.max_live, cur);
  }
  return stats;
}

}  // namespace reference

// The general-nest oracle stays on the enumeration engine: general spaces
// have no rectangular box to linearize against, and the entry point is cold
// (lint-sized inputs only).
TraceStats simulate_general(const GeneralNest& nest) {
  Trace trace;
  Int ordinal = 0;
  scan(nest.space(), [&](const IntVec& iter) {
    trace.iterations = ordinal + 1;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++trace.total_accesses;
        ElementKey key{ref.array, ref.index_at(iter).data()};
        auto [it, inserted] = trace.touch.try_emplace(key, FirstLast{ordinal, ordinal});
        if (inserted) {
          ++trace.distinct[ref.array];
        } else {
          it->second.last = ordinal;
        }
      }
    }
    ++ordinal;
  });
  // The window sweep is recomputed directly (stats_from_trace wants a
  // rectangular LoopNest for its per-array reuse bookkeeping).
  TraceStats s;
  s.iterations = trace.iterations;
  s.total_accesses = trace.total_accesses;
  s.distinct = trace.distinct;
  for (const auto& [array, count] : s.distinct) {
    s.distinct_total = checked_add(s.distinct_total, count);
  }
  s.reuse_total = checked_sub(s.total_accesses, s.distinct_total);
  const size_t horizon = static_cast<size_t>(s.iterations) + 1;
  std::map<ArrayId, std::vector<Int>> delta;
  std::vector<Int> delta_total(horizon, 0);
  for (const auto& [key, fl] : trace.touch) {
    if (fl.first == fl.last) continue;
    auto& d = delta[key.array];
    if (d.empty()) d.assign(horizon, 0);
    d[static_cast<size_t>(fl.first)] += 1;
    d[static_cast<size_t>(fl.last)] -= 1;
    delta_total[static_cast<size_t>(fl.first)] += 1;
    delta_total[static_cast<size_t>(fl.last)] -= 1;
  }
  for (auto& [array, d] : delta) {
    Int cur = 0, best = 0;
    for (Int v : d) {
      cur += v;
      best = std::max(best, cur);
    }
    s.mws[array] = best;
  }
  for (const auto& [array, count] : s.distinct) {
    (void)count;
    s.mws.try_emplace(array, 0);
  }
  Int cur = 0;
  for (Int v : delta_total) {
    cur += v;
    s.mws_total = std::max(s.mws_total, cur);
  }
  return s;
}

}  // namespace lmre
