#pragma once

// Dense-address trace engine: the shared machinery under the exact oracle.
//
// Instead of hashing a heap-allocated (array, index-vector) key per access,
// the engine precomputes, per array, a rectangular bounding box of every
// subscript's affine range over the iteration box and maps each touched
// element to a single row-major uint64 address inside that box.  Because
// subscripts are affine in the iteration vector, the linearized address is
// itself an affine function of the scan coordinates: per reference the plan
// stores its coefficient vector, and the scan drivers advance the address
// with ONE add per access in the innermost loop (incremental affine
// stepping).  Per-element state (first/last-touch ordinals, liveness
// machine state) lives in flat SoA storage -- dense vectors when the box is
// small relative to the trace, a flat linear-probe table keyed by the u64
// address when sparse.  See DESIGN.md section 10.
//
// A TraceArena owns the flat storage and is reusable across runs: evaluating
// k candidate transforms against one nest touches one allocation footprint
// instead of rebuilding hash maps per candidate.  When a nest cannot be
// linearized (address-space products overflow the engine's bounds), plan
// construction fails and callers fall back to the retained hash-map engine
// in exact/reference.h -- behaviour is identical either way.

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"
#include "polyhedra/scanner.h"
#include "support/checked.h"
#include "support/error.h"

namespace lmre {

/// Cumulative engine instrumentation, owned by a TraceArena and exported
/// through the runtime Metrics registry (`oracle.*` names) by the session.
struct OracleStats {
  Int runs = 0;            ///< dense-engine runs (simulate/liveness/... calls)
  Int fallback_runs = 0;   ///< linearization failed; reference engine used
  Int dense_stores = 0;    ///< per-array stores that took the dense path
  Int sparse_stores = 0;   ///< per-array stores that took the probe table
  Int elements = 0;        ///< distinct elements touched across runs
  Int accesses = 0;        ///< accesses traced across runs
  Int sparse_probes = 0;   ///< linear-probe steps over all table operations
  Int sparse_ops = 0;      ///< table operations (probe-length denominator)
  double table_occupancy_peak = 0.0;  ///< max touched/capacity over tables
  Int arena_bytes = 0;             ///< current allocated store footprint
  Int arena_high_water_bytes = 0;  ///< peak footprint over the arena's life

  /// Folds another arena's counters into this one (peaks merge as max).
  void absorb(const OracleStats& o);
};

/// Linearization plan for one (nest, execution order) pair: per-array
/// address boxes and per-reference affine address coefficients in the scan
/// coordinates (iteration space, or the transformed u-space when built with
/// the transform's inverse).
struct AddressPlan {
  struct Store {
    ArrayId array = 0;
    std::vector<Int> lo;      ///< per-dimension box lower bound
    std::vector<Int> stride;  ///< row-major strides over the box
    Int volume = 0;           ///< product of box extents
    bool dense = true;        ///< flat vectors vs linear-probe table
    Int accesses = 0;         ///< traced accesses to this array
  };
  struct Ref {
    size_t store = 0;   ///< index into stores
    bool is_write = false;
    std::vector<Int> coef;  ///< address coefficients over scan coordinates
    Int c0 = 0;             ///< address constant term
  };

  std::vector<Store> stores;  ///< one per referenced array, ArrayId ascending
  std::vector<Ref> refs;      ///< per-iteration access order
  size_t depth = 0;
  Int iterations = 0;  ///< iteration-space volume (0 for depth-0 nests)

  /// Builds the plan.  `t_inv` is the inverse of the scan transform (null
  /// for original order): address coefficients are composed through it so
  /// stepping happens directly in u-space.  `liveness_order` lists each
  /// statement's reads before its writes (the value-liveness access order);
  /// otherwise refs appear in statement order.  `slabs` scales the dense
  /// budget down so a parallel run's per-slab copies stay bounded.
  /// Returns nullopt when any address-space product overflows the engine's
  /// bounds -- callers then use the reference engine.
  static std::optional<AddressPlan> build(const LoopNest& nest,
                                          const IntMat* t_inv,
                                          bool liveness_order, int slabs);
};

/// Reusable flat storage for trace runs plus cumulative OracleStats.  Not
/// thread-safe; parallel runs give each slab its own store set inside one
/// arena and merge at the end (dense first/last merge as vectorizable
/// min/max).
class TraceArena {
 public:
  OracleStats& stats() { return stats_; }
  const OracleStats& stats() const { return stats_; }

  /// Engine-internal per-array store buffer (exposed for the inline touch
  /// helpers and the drivers; not part of the public surface).
  struct StoreBuf {
    bool dense = true;
    Int volume = 0;
    // Dense SoA: first/last-touch ordinals (liveness reuses them as
    // birth/last-read).  first inits to kUntouchedFirst and last to
    // kUntouchedLast so slab merges are plain elementwise min/max.
    std::vector<Int> first, last;
    std::vector<unsigned char> tag;  ///< liveness machine state (dense)
    // Sparse: open-addressing linear-probe table, key = address + 1
    // (0 marks an empty slot), power-of-two capacity.
    std::vector<std::uint64_t> keys;
    std::vector<Int> kfirst, klast;
    std::vector<unsigned char> ktag;
    std::uint64_t mask = 0;  ///< capacity - 1
    bool with_state = false;
    Int touched = 0;
    Int probes = 0;     ///< per-run probe steps
    Int probe_ops = 0;  ///< per-run table operations
  };

  static constexpr Int kUntouchedFirst = INT64_MAX;
  static constexpr Int kUntouchedLast = -1;

  /// Resets (and, when needed, grows) `slabs` store sets for the plan,
  /// reusing previously allocated buffers.  `with_state` additionally
  /// prepares the liveness tag storage.
  void prepare(const AddressPlan& plan, size_t slabs, bool with_state);

  StoreBuf& store(size_t slab, size_t idx) { return slabs_[slab][idx]; }

  /// Merges slabs 1..slabs-1 into slab 0: dense first/last as elementwise
  /// min/max, sparse by re-upserting every occupied slot.  Recounts slab
  /// 0's touched totals.  first/last runs only (liveness is serial).
  void merge_slabs(const AddressPlan& plan, size_t slabs);

  /// Folds the finished run's instrumentation (elements, probe counts,
  /// store kinds, occupancy, footprint high-water) into stats().
  void finish_run(const AddressPlan& plan, size_t slabs);

 private:
  std::vector<std::vector<StoreBuf>> slabs_;
  OracleStats stats_;
};

namespace trace_detail {

/// splitmix64 finalizer: the bucket hash of the sparse tables.
inline std::uint64_t mix_addr(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Doubles a sparse table's capacity and rehashes every occupied slot.
void grow_table(TraceArena::StoreBuf& s);

/// Finds the slot for `addr`, inserting an empty entry (first/last
/// untouched, tag 0) when absent.  Returns the slot index; sets *inserted.
inline size_t upsert_slot(TraceArena::StoreBuf& s, Int addr, bool* inserted) {
  const std::uint64_t key = static_cast<std::uint64_t>(addr) + 1;
  std::uint64_t i = mix_addr(static_cast<std::uint64_t>(addr)) & s.mask;
  Int probes = 1;
  while (s.keys[i] != 0 && s.keys[i] != key) {
    i = (i + 1) & s.mask;
    ++probes;
  }
  s.probes += probes;
  ++s.probe_ops;
  if (s.keys[i] == key) {
    *inserted = false;
    return static_cast<size_t>(i);
  }
  s.keys[i] = key;
  s.kfirst[i] = TraceArena::kUntouchedFirst;
  s.klast[i] = TraceArena::kUntouchedLast;
  if (s.with_state) s.ktag[i] = 0;
  ++s.touched;
  *inserted = true;
  if (s.touched * 10 > static_cast<Int>(s.mask + 1) * 7) {
    grow_table(s);
    // Re-locate after the rehash so the caller's slot index stays valid.
    std::uint64_t j = mix_addr(static_cast<std::uint64_t>(addr)) & s.mask;
    while (s.keys[j] != key) j = (j + 1) & s.mask;
    return static_cast<size_t>(j);
  }
  return static_cast<size_t>(i);
}

/// Records a first/last touch at `addr` with ordinal `ordinal`.
inline void touch_first_last(TraceArena::StoreBuf& s, Int addr, Int ordinal) {
  if (s.dense) {
    if (s.last[static_cast<size_t>(addr)] < 0) {
      s.first[static_cast<size_t>(addr)] = ordinal;
      s.last[static_cast<size_t>(addr)] = ordinal;
      ++s.touched;
    } else {
      s.last[static_cast<size_t>(addr)] = ordinal;
    }
    return;
  }
  bool inserted = false;
  size_t slot = upsert_slot(s, addr, &inserted);
  if (inserted) s.kfirst[slot] = ordinal;
  s.klast[slot] = ordinal;
}

/// Visits every touched element of a store as fn(first, last).
template <class Fn>
void for_each_touched(const TraceArena::StoreBuf& s, Fn&& fn) {
  if (s.dense) {
    for (size_t a = 0; a < static_cast<size_t>(s.volume); ++a) {
      if (s.last[a] >= 0) fn(s.first[a], s.last[a]);
    }
    return;
  }
  for (size_t i = 0; i < s.keys.size(); ++i) {
    if (s.keys[i] != 0) fn(s.kfirst[i], s.klast[i]);
  }
}

/// Evaluates a plan ref's address at an arbitrary scan point (the
/// non-incremental path: simulate_order and row bases).  128-bit
/// accumulation; the result is a valid in-box address, so it fits Int.
inline Int plan_address(const AddressPlan::Ref& r, const IntVec& point) {
  __int128 a = r.c0;
  for (size_t k = 0; k < r.coef.size(); ++k) {
    a += static_cast<__int128>(r.coef[k]) * point[k];
  }
  return static_cast<Int>(a);
}

}  // namespace trace_detail

/// Drives the original-order scan of a rectangular (sub-)box with
/// incremental affine stepping: per innermost row, each reference's base
/// address is evaluated once and then advanced by its innermost coefficient
/// per iteration.  `touch(ref_index, ordinal, addr)` runs per access;
/// ordinals start at `ordinal0` (the caller supplies the slab's global
/// base).
template <class TouchFn>
void drive_box(const AddressPlan& plan, const IntBox& box, Int ordinal0,
               TouchFn&& touch) {
  const size_t n = box.dims();
  if (n == 0) return;
  for (size_t k = 0; k < n; ++k) {
    if (box.range(k).trip_count() <= 0) return;
  }
  const size_t nrefs = plan.refs.size();
  const Int inner_trip = box.range(n - 1).trip_count();
  IntVec point(n);
  for (size_t k = 0; k < n; ++k) point[k] = box.range(k).lo;
  std::vector<Int> addr(nrefs);
  std::vector<Int> step(nrefs);
  for (size_t r = 0; r < nrefs; ++r) step[r] = plan.refs[r].coef[n - 1];
  Int ordinal = ordinal0;
  while (true) {
    for (size_t r = 0; r < nrefs; ++r) {
      addr[r] = trace_detail::plan_address(plan.refs[r], point);
    }
    for (Int j = 0; j < inner_trip; ++j) {
      for (size_t r = 0; r < nrefs; ++r) {
        touch(r, ordinal, addr[r]);
        addr[r] += step[r];  // one overshoot per row; bounded by the plan
      }
      ++ordinal;
    }
    if (n == 1) break;
    size_t k = n - 2;
    while (true) {
      if (point[k] < box.range(k).hi) {
        ++point[k];
        break;
      }
      if (k == 0) return;
      point[k] = box.range(k).lo;
      --k;
    }
  }
}

/// Drives the transformed-order scan: u ranges over T * box in
/// lexicographic order, rows come from the polyhedral scanner, and each
/// row's addresses step incrementally in u-space (the plan's coefficients
/// are already composed through T^-1).  Row endpoints are mapped back
/// through `t_inv` and checked against the box -- the box is convex, so
/// endpoint containment covers the whole row.  Returns the number of
/// iterations visited.
template <class TouchFn>
Int drive_transformed(const AddressPlan& plan, const LoopNest& nest,
                      const IntMat& t_inv, TouchFn&& touch) {
  const IntBox& box = nest.bounds();
  const size_t n = nest.depth();
  if (n == 0) return 0;
  ConstraintSystem sys(n);
  for (size_t k = 0; k < n; ++k) {
    AffineExpr expr(t_inv.row(k), 0);
    sys.add_range(expr, box.range(k).lo, box.range(k).hi);
  }
  const size_t nrefs = plan.refs.size();
  std::vector<Int> addr(nrefs);
  std::vector<Int> step(nrefs);
  for (size_t r = 0; r < nrefs; ++r) step[r] = plan.refs[r].coef[n - 1];
  Int ordinal = 0;
  scan_rows(sys, [&](const IntVec& u, Int lo, Int hi) {
    IntVec endpoint = u;  // u[n-1] == lo
    ensure(box.contains(t_inv * endpoint),
           "transformed scan left the iteration space");
    endpoint[n - 1] = hi;
    ensure(box.contains(t_inv * endpoint),
           "transformed scan left the iteration space");
    for (size_t r = 0; r < nrefs; ++r) {
      addr[r] = trace_detail::plan_address(plan.refs[r], u);
    }
    for (Int j = lo; j <= hi; ++j) {
      for (size_t r = 0; r < nrefs; ++r) {
        touch(r, ordinal, addr[r]);
        addr[r] += step[r];
      }
      ++ordinal;
    }
  });
  return ordinal;
}

}  // namespace lmre
