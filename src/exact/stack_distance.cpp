#include "exact/stack_distance.h"

#include <algorithm>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

Int StackDistanceProfile::lru_misses(Int capacity) const {
  require(capacity >= 0, "lru_misses: negative capacity");
  Int misses = cold_accesses;
  for (const auto& [d, count] : histogram) {
    if (d > capacity) misses = checked_add(misses, count);
  }
  return misses;
}

Int StackDistanceProfile::max_distance() const {
  return histogram.empty() ? 0 : histogram.rbegin()->first;
}

StackDistanceProfile stack_distances(const LoopNest& nest, const IntMat* transform) {
  struct Key {
    ArrayId array;
    std::vector<Int> index;
    bool operator==(const Key& o) const {
      return array == o.array && index == o.index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<size_t>()(k.array);
      for (Int v : k.index) {
        h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };

  // Classic stack algorithm: a list ordered most-recent-first; the distance
  // of a re-access is its 1-based position in the list.
  std::list<Key> stack;
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> where;

  StackDistanceProfile profile;
  visit_iterations(nest, transform, [&](Int, const IntVec& iter) {
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++profile.total_accesses;
        Key key{ref.array, ref.index_at(iter).data()};
        auto it = where.find(key);
        if (it == where.end()) {
          ++profile.cold_accesses;
          stack.push_front(key);
          where[key] = stack.begin();
          continue;
        }
        // Distance = position of the element in the stack (1-based).
        Int distance = 1;
        for (auto walk = stack.begin(); walk != it->second; ++walk) ++distance;
        profile.histogram[distance] += 1;
        stack.erase(it->second);
        stack.push_front(key);
        it->second = stack.begin();
      }
    }
  });
  return profile;
}

}  // namespace lmre
