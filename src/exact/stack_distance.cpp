#include "exact/stack_distance.h"

#include <algorithm>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exact/oracle.h"
#include "exact/trace_engine.h"
#include "support/checked.h"
#include "support/error.h"

namespace lmre {

Int StackDistanceProfile::lru_misses(Int capacity) const {
  require(capacity >= 0, "lru_misses: negative capacity");
  Int misses = cold_accesses;
  for (const auto& [d, count] : histogram) {
    if (d > capacity) misses = checked_add(misses, count);
  }
  return misses;
}

Int StackDistanceProfile::max_distance() const {
  return histogram.empty() ? 0 : histogram.rbegin()->first;
}

namespace {

// Fenwick (binary indexed) tree over access ordinals.  Bit t stays set
// while the element whose most recent access happened at ordinal t has not
// been touched again, so the number of set bits in (p, t) is exactly the
// number of distinct elements accessed between two accesses to one element
// -- its stack distance minus one.  add/prefix are O(log accesses); the
// counts fit 32 bits because a subtree never holds more set bits than the
// trace has accesses (callers volume-gate long before 2^31).
class OrdinalFenwick {
 public:
  void reset(size_t n) { tree_.assign(n + 1, 0); }

  void add(Int pos, std::int32_t delta) {
    for (size_t i = static_cast<size_t>(pos) + 1; i < tree_.size();
         i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Number of set ordinals in [0, pos]; pos == -1 yields 0.
  Int prefix(Int pos) const {
    Int sum = 0;
    for (size_t i = static_cast<size_t>(pos + 1); i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

 private:
  std::vector<std::int32_t> tree_;
};

/// Keep an element iff hash < rate * 2^64.  Callers gate rate >= 1 as
/// "exhaustive" first, so the product stays strictly below 2^64 and the
/// cast is exact.
std::uint64_t sample_threshold(double rate) {
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

/// Swaps the element's last-touch ordinal for `ordinal`, returning the
/// previous one (kUntouchedLast == -1 on a first touch).  Mirrors
/// trace_detail::touch_first_last but surfaces the old ordinal, which is
/// what the Fenwick update needs.
Int exchange_last(TraceArena::StoreBuf& s, Int addr, Int ordinal) {
  if (s.dense) {
    Int& last = s.last[static_cast<size_t>(addr)];
    const Int prev = last;
    if (prev < 0) {
      s.first[static_cast<size_t>(addr)] = ordinal;
      ++s.touched;
    }
    last = ordinal;
    return prev;
  }
  bool inserted = false;
  const size_t slot = trace_detail::upsert_slot(s, addr, &inserted);
  const Int prev = inserted ? TraceArena::kUntouchedLast : s.klast[slot];
  if (inserted) s.kfirst[slot] = ordinal;
  s.klast[slot] = ordinal;
  return prev;
}

void dense_visit(const LoopNest& nest, const AddressPlan& plan,
                 const IntMat* t_inv, const DistanceVisitOptions& opts,
                 TraceArena& arena,
                 const std::function<void(size_t, Int)>& visit) {
  const size_t nrefs = plan.refs.size();
  if (nrefs == 0 || plan.iterations == 0) return;
  arena.prepare(plan, 1, /*with_state=*/false);
  std::vector<TraceArena::StoreBuf*> bufs(nrefs);
  for (size_t r = 0; r < nrefs; ++r) bufs[r] = &arena.store(0, plan.refs[r].store);

  // Per-store salts decorrelate the sample across arrays whose boxes share
  // address ranges; references to ONE array share a salt so the sampling
  // decision is a property of the element, not of the reference.
  const bool exhaustive = opts.sample_rate >= 1.0;
  const std::uint64_t threshold =
      exhaustive ? 0 : sample_threshold(opts.sample_rate);
  std::vector<std::uint64_t> salt(nrefs);
  for (size_t r = 0; r < nrefs; ++r) {
    salt[r] = trace_detail::mix_addr(
        opts.seed + 0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(plan.refs[r].store + 1));
  }

  const Int accesses = checked_mul(plan.iterations, static_cast<Int>(nrefs));
  OrdinalFenwick fen;
  fen.reset(static_cast<size_t>(accesses));
  // Global access ordinal: iteration ordinal (execution order) * refs per
  // iteration + reference slot.  Unsampled accesses still consume ordinals;
  // gaps are harmless because only sampled ordinals ever set bits.
  auto touch = [&](size_t r, Int ordinal, Int addr) {
    if (!exhaustive &&
        trace_detail::mix_addr(static_cast<std::uint64_t>(addr) ^ salt[r]) >=
            threshold) {
      return;
    }
    const Int t = ordinal * static_cast<Int>(nrefs) + static_cast<Int>(r);
    const Int prev = exchange_last(*bufs[r], addr, t);
    if (prev < 0) {
      visit(r, 0);
    } else {
      visit(r, fen.prefix(t - 1) - fen.prefix(prev) + 1);
      fen.add(prev, -1);
    }
    fen.add(t, +1);
  };
  if (t_inv != nullptr) {
    drive_transformed(plan, nest, *t_inv, touch);
  } else {
    drive_box(plan, nest.bounds(), 0, touch);
  }
  arena.finish_run(plan, 1);
}

struct Key {
  ArrayId array;
  std::vector<Int> index;
  bool operator==(const Key& o) const {
    return array == o.array && index == o.index;
  }
};
struct KeyHash {
  size_t operator()(const Key& k) const {
    size_t h = std::hash<size_t>()(k.array);
    for (Int v : k.index) {
      h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Hash-map fallback for nests the engine cannot linearize: same Fenwick
/// distance structure, element identity by (array, index-vector) key.
/// Sampling hashes the key hash rather than a linear address, so SAMPLED
/// results are not comparable across the two paths (exhaustive ones are).
void reference_visit(const LoopNest& nest, const DistanceVisitOptions& opts,
                     const std::function<void(size_t, Int)>& visit) {
  size_t nrefs = 0;
  for (const auto& stmt : nest.statements()) nrefs += stmt.refs.size();
  if (nrefs == 0) return;
  const bool exhaustive = opts.sample_rate >= 1.0;
  const std::uint64_t threshold =
      exhaustive ? 0 : sample_threshold(opts.sample_rate);
  const Int accesses =
      checked_mul(nest.iteration_count(), static_cast<Int>(nrefs));
  OrdinalFenwick fen;
  fen.reset(static_cast<size_t>(accesses));
  std::unordered_map<Key, Int, KeyHash> last;  // element -> last ordinal
  Int t = 0;
  visit_iterations(nest, opts.transform, [&](Int, const IntVec& iter) {
    size_t r = 0;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        const Int here = t++;
        const size_t ref_index = r++;
        Key key{ref.array, ref.index_at(iter).data()};
        if (!exhaustive &&
            trace_detail::mix_addr(KeyHash{}(key) ^ opts.seed) >= threshold) {
          continue;
        }
        auto [it, inserted] = last.try_emplace(key, here);
        if (inserted) {
          visit(ref_index, 0);
        } else {
          const Int prev = it->second;
          visit(ref_index, fen.prefix(here - 1) - fen.prefix(prev) + 1);
          fen.add(prev, -1);
          it->second = here;
        }
        fen.add(here, +1);
      }
    }
  });
}

}  // namespace

void visit_stack_distances(const LoopNest& nest, const DistanceVisitOptions& opts,
                           TraceArena& arena,
                           const std::function<void(size_t, Int)>& visit) {
  require(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
          "visit_stack_distances: sample rate must be in (0, 1]");
  std::optional<IntMat> t_inv;
  if (opts.transform != nullptr) {
    require(opts.transform->is_unimodular(),
            "visit_stack_distances: transform must be unimodular");
    t_inv = opts.transform->inverse_unimodular();
  }
  std::optional<AddressPlan> plan = AddressPlan::build(
      nest, t_inv ? &*t_inv : nullptr, /*liveness_order=*/false, /*slabs=*/1);
  if (!plan) {
    ++arena.stats().fallback_runs;
    reference_visit(nest, opts, visit);
    return;
  }
  dense_visit(nest, *plan, t_inv ? &*t_inv : nullptr, opts, arena, visit);
}

StackDistanceProfile stack_distances(const LoopNest& nest,
                                     const IntMat* transform,
                                     TraceArena& arena) {
  StackDistanceProfile profile;
  DistanceVisitOptions opts;
  opts.transform = transform;
  visit_stack_distances(nest, opts, arena, [&](size_t, Int distance) {
    ++profile.total_accesses;
    if (distance == 0) {
      ++profile.cold_accesses;
    } else {
      profile.histogram[distance] += 1;
    }
  });
  return profile;
}

StackDistanceProfile stack_distances(const LoopNest& nest,
                                     const IntMat* transform) {
  TraceArena arena;
  return stack_distances(nest, transform, arena);
}

StackDistanceProfile stack_distances_reference(const LoopNest& nest,
                                               const IntMat* transform) {
  // Classic stack algorithm: a list ordered most-recent-first; the distance
  // of a re-access is its 1-based position in the list.
  std::list<Key> stack;
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> where;

  StackDistanceProfile profile;
  visit_iterations(nest, transform, [&](Int, const IntVec& iter) {
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        ++profile.total_accesses;
        Key key{ref.array, ref.index_at(iter).data()};
        auto it = where.find(key);
        if (it == where.end()) {
          ++profile.cold_accesses;
          stack.push_front(key);
          where[key] = stack.begin();
          continue;
        }
        // Distance = position of the element in the stack (1-based).
        Int distance = 1;
        for (auto walk = stack.begin(); walk != it->second; ++walk) ++distance;
        profile.histogram[distance] += 1;
        stack.erase(it->second);
        stack.push_front(key);
        it->second = stack.begin();
      }
    }
  });
  return profile;
}

}  // namespace lmre
