#pragma once

// Exact LRU stack (reuse) distances.
//
// The stack distance of an access is the number of distinct elements
// touched since the previous access to the same element.  Its histogram
// yields, in one pass, the hit count of EVERY fully-associative LRU cache
// size at once: a cache of capacity C hits exactly the accesses with stack
// distance <= C.  This links the paper's window analysis to miss curves:
// the curve flattens to cold misses once C covers the reuse the window
// describes.
//
// Two engines compute the same profile.  The primary path rides the dense
// trace engine (linearized u64 addresses in a TraceArena) and answers each
// access in O(log n) with a Fenwick tree over last-access ordinals: bit t
// is set while the element last touched at ordinal t has not been touched
// again, so the number of set bits between two accesses to one element is
// exactly the number of distinct elements in between.  The pre-engine
// MRU-list implementation (O(n) per access) is retained verbatim as
// stack_distances_reference -- the differential ground truth.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

class TraceArena;

struct StackDistanceProfile {
  /// histogram[d] = number of accesses with stack distance d (d >= 1);
  /// distance 0 is unused.
  std::map<Int, Int> histogram;
  Int cold_accesses = 0;  ///< first touches (infinite distance)
  Int total_accesses = 0;

  /// Misses of a fully-associative LRU cache with `capacity` elements:
  /// cold misses plus accesses with stack distance > capacity.
  Int lru_misses(Int capacity) const;

  /// Largest finite stack distance (the capacity beyond which only cold
  /// misses remain).
  Int max_distance() const;
};

/// Options for the generalized distance pass.
struct DistanceVisitOptions {
  const IntMat* transform = nullptr;  ///< execution order (unimodular) or null

  /// Hash-threshold spatial sampling over ELEMENTS (SHARDS): an element is
  /// in the sample iff a fixed hash of its address falls under
  /// rate * 2^64, so one element is kept or dropped at every access it
  /// receives, deterministically.  Distances are counted among sampled
  /// elements only (callers rescale by 1/rate); 1.0 visits everything.
  double sample_rate = 1.0;
  std::uint64_t seed = 0;  ///< salts the sampling hash; same seed, same sample
};

/// Calls visit(ref_index, distance) for every access to a sampled element,
/// in execution order.  `ref_index` indexes the nest's references in
/// statement order (the order of LoopNest::all_refs()); `distance` is 0
/// for a first touch (cold miss) and otherwise the 1-based LRU stack
/// distance among sampled elements.  Uses the dense trace engine through
/// `arena` and falls back to the hash-map path (counted in
/// arena.stats().fallback_runs) when the nest cannot be linearized.
void visit_stack_distances(const LoopNest& nest, const DistanceVisitOptions& opts,
                           TraceArena& arena,
                           const std::function<void(size_t, Int)>& visit);

/// Computes the exact element-granularity stack-distance profile of the
/// nest in original (`transform == nullptr`) or transformed order.
StackDistanceProfile stack_distances(const LoopNest& nest,
                                     const IntMat* transform = nullptr);

/// Same, reusing the caller's arena across runs (the minimizer/session
/// pattern: k candidates, one allocation footprint).
StackDistanceProfile stack_distances(const LoopNest& nest,
                                     const IntMat* transform, TraceArena& arena);

/// The pre-dense-engine implementation (MRU list + hash map, O(n) per
/// access), retained as the differential ground truth for the engine path.
StackDistanceProfile stack_distances_reference(const LoopNest& nest,
                                               const IntMat* transform = nullptr);

}  // namespace lmre
