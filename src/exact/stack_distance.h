#pragma once

// Exact LRU stack (reuse) distances.
//
// The stack distance of an access is the number of distinct elements
// touched since the previous access to the same element.  Its histogram
// yields, in one pass, the hit count of EVERY fully-associative LRU cache
// size at once: a cache of capacity C hits exactly the accesses with stack
// distance <= C.  This links the paper's window analysis to miss curves:
// the curve flattens to cold misses once C covers the reuse the window
// describes.

#include <map>
#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

struct StackDistanceProfile {
  /// histogram[d] = number of accesses with stack distance d (d >= 1);
  /// distance 0 is unused.
  std::map<Int, Int> histogram;
  Int cold_accesses = 0;  ///< first touches (infinite distance)
  Int total_accesses = 0;

  /// Misses of a fully-associative LRU cache with `capacity` elements:
  /// cold misses plus accesses with stack distance > capacity.
  Int lru_misses(Int capacity) const;

  /// Largest finite stack distance (the capacity beyond which only cold
  /// misses remain).
  Int max_distance() const;
};

/// Computes the exact element-granularity stack-distance profile of the
/// nest in original (`transform == nullptr`) or transformed order.
StackDistanceProfile stack_distances(const LoopNest& nest,
                                     const IntMat* transform = nullptr);

}  // namespace lmre
