#pragma once

// Retained reference implementation of the exact oracle.
//
// This is the original hash-map trace engine: one heap-allocated
// (array, index-vector) key per touched element, first/last-touch stored in
// an unordered_map, liveness reconstructed from full per-element access
// histories.  It is the semantic ground truth the dense-address engine in
// exact/trace_engine.h is differentially tested against
// (property_oracle_test), and the fallback the public entry points take
// when a nest cannot be linearized (address-space overflow).  Results are
// identical to the dense engine by construction; only speed differs.

#include <vector>

#include "exact/liveness.h"
#include "exact/oracle.h"

namespace lmre {
namespace reference {

/// Hash-map simulate in original lexicographic order.
TraceStats simulate(const LoopNest& nest);

/// Hash-map parallel simulate over outer-loop slabs (bit-identical to the
/// serial result for every thread count).
TraceStats simulate(const LoopNest& nest, int threads);

/// Hash-map simulate under a unimodular transformation.
TraceStats simulate_transformed(const LoopNest& nest, const IntMat& t);

/// Hash-map simulate visiting iterations in exactly the given order.
TraceStats simulate_order(const LoopNest& nest, const std::vector<IntVec>& order);

/// Hash-map total-window time series under transformation `t`.
std::vector<Int> window_series(const LoopNest& nest, const IntMat& t);

/// Hash-map lifetime statistics in original order.
LifetimeReport lifetime_report(const LoopNest& nest);

/// Hash-map lifetime statistics in transformed order.
LifetimeReport lifetime_report_transformed(const LoopNest& nest, const IntMat& t);

/// Access-history value-liveness sweep (original or transformed order).
LivenessStats min_memory_liveness(const LoopNest& nest,
                                  const IntMat* transform = nullptr);

}  // namespace reference
}  // namespace lmre
