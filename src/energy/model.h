#pragma once

// First-order energy/latency/area model for on-chip data memories.
//
// The paper's Section 1 motivates window minimization with three costs of
// oversized memories: "per access energy consumption of a memory module
// increases with its size", "large memory modules tend to incur large
// delays", and "large memories by definition occupy more chip space".
// This model makes those statements quantitative with standard first-order
// SRAM scaling: bitline/wordline lengths grow with the square root of the
// cell count, so per-access energy and latency scale as
//     E(s) = e0 * (1 + alpha * sqrt(s)),   t(s) = t0 * (1 + beta * sqrt(s)),
// and area scales linearly, A(s) = a0 * s.  The constants are normalized
// (e0 = t0 = a0 = 1 for a 1-cell memory) -- the model is for RATIOS between
// sizing choices, not absolute joules.

#include <string>

#include "ir/nest.h"

namespace lmre {

struct MemoryModel {
  double alpha = 0.1;    ///< dynamic energy growth per sqrt(cell)
  double beta = 0.05;    ///< latency growth per sqrt(cell)
  double leakage = 0.0;  ///< static power per cell per access-time unit

  /// Relative energy of one access to a memory of `cells` cells.
  double energy_per_access(Int cells) const;

  /// Relative latency of one access.
  double latency(Int cells) const;

  /// Relative area.
  double area(Int cells) const;

  /// Total relative energy of `accesses` accesses: dynamic plus leakage
  /// (leakage integrates cell count over the run's duration, approximated
  /// by accesses x latency).
  double total_energy(Int cells, Int accesses) const;
};

/// Comparison of provisioning choices for one nest: the same access stream
/// served by memories sized at the declared footprint vs the (optimized)
/// maximum window.
struct SizingComparison {
  Int accesses = 0;
  Int declared_cells = 0;
  Int window_cells = 0;

  double energy_declared = 0;  ///< total relative energy, declared sizing
  double energy_window = 0;    ///< total relative energy, window sizing
  double area_ratio = 0;       ///< window area / declared area
  double latency_ratio = 0;    ///< window latency / declared latency

  double energy_saving() const {
    return energy_declared == 0 ? 0.0 : 1.0 - energy_window / energy_declared;
  }
};

/// Evaluates the model for a nest given its measured window.  Every access
/// is served from the sized memory (the window guarantee); refills from the
/// backing store are not charged to either side, keeping the comparison
/// conservative.
SizingComparison compare_sizing(const LoopNest& nest, Int window_cells,
                                const MemoryModel& model = {});

}  // namespace lmre
