#include "energy/model.h"

#include <cmath>

#include "support/error.h"

namespace lmre {

double MemoryModel::energy_per_access(Int cells) const {
  require(cells >= 1, "energy_per_access: cells must be >= 1");
  return 1.0 + alpha * std::sqrt(static_cast<double>(cells));
}

double MemoryModel::latency(Int cells) const {
  require(cells >= 1, "latency: cells must be >= 1");
  return 1.0 + beta * std::sqrt(static_cast<double>(cells));
}

double MemoryModel::area(Int cells) const {
  require(cells >= 1, "area: cells must be >= 1");
  return static_cast<double>(cells);
}

double MemoryModel::total_energy(Int cells, Int accesses) const {
  require(accesses >= 0, "total_energy: negative access count");
  double dynamic = static_cast<double>(accesses) * energy_per_access(cells);
  double duration = static_cast<double>(accesses) * latency(cells);
  double standby = leakage * static_cast<double>(cells) * duration;
  return dynamic + standby;
}

SizingComparison compare_sizing(const LoopNest& nest, Int window_cells,
                                const MemoryModel& model) {
  SizingComparison cmp;
  cmp.declared_cells = nest.default_memory();
  cmp.window_cells = std::max<Int>(window_cells, 1);
  // One access per reference per iteration.
  Int refs = static_cast<Int>(nest.all_refs().size());
  cmp.accesses = checked_mul(nest.iteration_count(), refs);

  cmp.energy_declared =
      static_cast<double>(cmp.accesses) * model.energy_per_access(cmp.declared_cells);
  cmp.energy_window =
      static_cast<double>(cmp.accesses) * model.energy_per_access(cmp.window_cells);
  cmp.area_ratio = model.area(cmp.window_cells) / model.area(cmp.declared_cells);
  cmp.latency_ratio = model.latency(cmp.window_cells) / model.latency(cmp.declared_cells);
  return cmp;
}

}  // namespace lmre
