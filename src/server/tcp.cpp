#include "server/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace lmre {

namespace {

void set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}

/// Resolves the textual host to an IPv4 address (no DNS: the serve
/// transport is for loopback and rack-local fleets, where numeric
/// addresses are the norm and a resolver dependency is pure liability).
bool resolve_ipv4(const std::string& host, in_addr* out, std::string* error) {
  std::string name = host.empty() ? "0.0.0.0" : host;
  if (name == "localhost") name = "127.0.0.1";
  if (::inet_pton(AF_INET, name.c_str(), out) == 1) return true;
  set_error(error, "unresolvable host '" + host +
                       "' (use a numeric IPv4 address or 'localhost')");
  return false;
}

}  // namespace

std::optional<HostPort> parse_host_port(const std::string& spec,
                                        std::string* error) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    set_error(error, "expected HOST:PORT, got '" + spec + "'");
    return std::nullopt;
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  const char* first = spec.data() + colon + 1;
  const char* last = spec.data() + spec.size();
  auto [ptr, ec] = std::from_chars(first, last, hp.port);
  if (ec != std::errc() || ptr != last || hp.port < 0 || hp.port > 65535) {
    set_error(error, "bad port in '" + spec + "' (want 0..65535)");
    return std::nullopt;
  }
  in_addr probe{};
  if (!resolve_ipv4(hp.host, &probe, error)) return std::nullopt;
  return hp;
}

int tcp_listen(const std::string& host, int port, int* bound_port,
               std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (!resolve_ipv4(host, &addr.sin_addr, error)) return -1;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_error(error, "bind " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 1024) < 0) {
    set_error(error, std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    *bound_port = ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0
                      ? ntohs(bound.sin_port)
                      : port;
  }
  return fd;
}

int tcp_connect(const std::string& host, int port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  std::string target = host.empty() ? "127.0.0.1" : host;
  if (target == "0.0.0.0") target = "127.0.0.1";  // wildcard bind -> loopback
  if (!resolve_ipv4(target, &addr.sin_addr, error)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_error(error, "connect " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace lmre
