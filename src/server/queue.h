#pragma once

// A bounded MPMC queue with explicit admission failure.
//
// The serve frontend calls try_push: when the queue is at capacity the
// push FAILS immediately and the caller sheds the request with an
// `overloaded` response.  There is deliberately no blocking push -- the
// whole point of admission control is that backlog is bounded and excess
// load is refused, never buffered (ISSUE: "never unbounded growth").
// pop blocks, because workers idling on an empty queue is fine.
//
// close() wakes every blocked pop; pops then drain whatever is still
// queued and finally return nullopt.  This is the graceful-drain
// primitive: stop admitting, close, join workers.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lmre {

template <typename T>
class BoundedQueue {
 public:
  /// `depth`: max queued items (>= 1 enforced).
  explicit BoundedQueue(size_t depth) : depth_(depth == 0 ? 1 : depth) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `item` unless the queue is full or closed; never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= depth_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND empty
  /// (drain semantics: queued work survives close).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission and wakes all blocked pops.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t depth() const { return depth_; }

 private:
  const size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lmre
