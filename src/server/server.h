#pragma once

// lmre serve: a long-running concurrent analysis daemon.
//
// One AnalysisServer owns a fixed pool of worker threads, each running its
// own AnalysisSession over ONE shared ResultCache and ONE shared Metrics
// registry -- so every client warms the cache for every other client, and
// one snapshot describes the whole process.  Requests arrive as
// newline-delimited JSON (server/wire.h) over any transport:
//
//  * serve_tcp(host, port): a TCP listener driven by a poll-based event
//    loop (server/epoll_loop.h) -- one thread owns every socket, workers
//    only ever append response bytes to per-connection buffers, so dead
//    clients and slow readers cost the loop an errno, never a worker,
//  * serve_socket(path): a Unix-domain stream socket; each accepted
//    connection gets a reader thread (joined as soon as its client goes
//    away, not at shutdown), responses go back over the same connection
//    (interleaved across requests, correlated by id), and
//  * serve_streams(in, out): stdin/stdout framing for tests and scripts.
//
// Admission control: a BoundedQueue between the readers and the pool.  A
// full queue sheds the request immediately with an `overloaded` error --
// backlog is bounded by construction, never buffered.  Deadlines: a
// request with options.deadline_ms is abandoned (without computing) if it
// is still queued when the deadline passes, and reported `timeout` if the
// deadline passed during computation; computation is never preempted
// mid-stage, and a late result is still cached for the next client.
//
// Single-flight coalescing (server/coalesce.h, on by default): while a
// request for key K is queued or computing, any further request hashing
// to K parks as a waiter instead of being queued.  The one computation's
// serialized result answers the whole group, so a thundering herd of
// identical cold requests costs one `runs.total`, one queue slot, and M
// byte-identical response lines.
//
// Shutdown: request_stop() is async-signal-safe (one atomic store).  The
// transport loop notices within its poll interval, stops admitting, wakes
// the connection readers, drains in-flight work, flushes metrics, and
// exits cleanly -- every admitted request gets a response.
//
// The determinism contract extends to the wire: a serve response's result
// payload is byte-identical to what `lmre batch` embeds for the same
// source and kind (workers run with threads=1, and the payload is spliced
// verbatim -- never re-encoded).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/session.h"
#include "server/coalesce.h"
#include "server/queue.h"
#include "server/wire.h"
#include "support/error.h"
#include "support/json.h"

namespace lmre {

struct ServerOptions {
  int workers = 1;           ///< pool size (>= 1 enforced)
  size_t queue_depth = 256;  ///< bounded backlog (>= 1 enforced)
  bool coalesce = true;      ///< single-flight identical-request coalescing
  SessionOptions session;    ///< cache policy + run options
  std::string metrics_file;  ///< snapshot written on drain; "" = none
};

/// Where a response line goes (one per client connection / stream).
/// write_line is thread-safe per sink: workers and the reader interleave
/// whole lines, never bytes.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void write_line(const std::string& line) = 0;
};

class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions opts);

  /// Drains and joins the pool if still running.
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Stdio transport: reads request lines from `in` until EOF or
  /// request_stop, writes response lines to `out`, then drains (every
  /// admitted request is answered before returning).
  void serve_streams(std::istream& in, std::ostream& out);

  /// Unix-domain socket transport: binds `path` (replacing a stale
  /// socket file), accepts until request_stop(), then drains.  Returns
  /// kFailure when the socket cannot be created/bound.
  ExitCode serve_socket(const std::string& path);

  /// TCP transport: binds host:port (port 0 = kernel-assigned; see
  /// tcp_port()) and runs the poll-based event loop on the calling thread
  /// until request_stop(), then drains and flushes every buffered
  /// response before returning.  kFailure when binding fails (reason in
  /// *error when given).
  ExitCode serve_tcp(const std::string& host, int port,
                     std::string* error = nullptr);

  /// The port serve_tcp actually bound, or -1 before binding.  Readable
  /// from other threads (tests bind port 0 and discover the port here).
  int tcp_port() const { return tcp_port_.load(std::memory_order_acquire); }

  /// Parses, admits, coalesces, or sheds one request line; any immediate
  /// error (bad_request / overloaded) is written to `sink` before
  /// returning.  Exposed for tests; transports call this per line.
  void admit_line(const std::string& line,
                  const std::shared_ptr<ResponseSink>& sink);

  /// Stops accepting new work.  Async-signal-safe (atomic store only);
  /// transports notice and begin the drain.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// Closes the queue, finishes in-flight requests, joins the pool, and
  /// writes options().metrics_file when set.  Idempotent.
  void drain();

  /// Metrics snapshot with shared-cache counters folded in as gauges
  /// (same shape as AnalysisSession::metrics_json).
  Json metrics_json();

  Metrics& metrics() { return *metrics_; }
  const ResultCache& cache() const { return *cache_; }
  const ServerOptions& options() const { return opts_; }

  /// Requests currently waiting in the bounded queue (not in-flight ones).
  /// Tests use this to stage deterministic overload scenarios.
  size_t queued() const { return queue_.size(); }

 private:
  struct Job {
    ServerRequest request;
    std::shared_ptr<ResponseSink> sink;
    std::uint64_t key = 0;  ///< content hash; the coalescing identity
    std::chrono::steady_clock::time_point admitted;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void worker_loop(AnalysisSession& session);
  void respond(const Job& job, const std::string& line);
  /// Deadline-checks, records latency/counters, and writes the response
  /// for one member of a result group (`coalesced` marks waiters).
  void respond_result(const Job& job, const AnalysisResult& result,
                      bool coalesced);
  void write_metrics_file();

  ServerOptions opts_;
  std::shared_ptr<ResultCache> cache_;
  std::shared_ptr<Metrics> metrics_;
  std::vector<std::unique_ptr<AnalysisSession>> sessions_;
  BoundedQueue<Job> queue_;
  SingleFlight<Job> flights_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<int> tcp_port_{-1};
  std::atomic<size_t> queue_peak_{0};  ///< high-water mark of queued jobs
  bool drained_ = false;
  std::mutex drain_mu_;  ///< serializes drain() callers
};

}  // namespace lmre
