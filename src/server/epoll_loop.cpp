#include "server/epoll_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace lmre {

namespace {

/// A request line with no newline after this many bytes is not a client,
/// it is a leak; the connection is dropped.
constexpr size_t kMaxLineBytes = 16u << 20;

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

TcpSink::~TcpSink() {
  if (!closed_ && fd_ >= 0) ::close(fd_);
}

void TcpSink::write_line(const std::string& line) {
  EventLoop* loop = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // client reaped: responses degrade to a drop
    out_.append(line);
    out_.push_back('\n');
    loop = loop_;
  }
  if (loop) loop->wake();
}

EventLoop::EventLoop(int listen_fd, LineHandler on_line)
    : listen_fd_(listen_fd), on_line_(std::move(on_line)) {
  set_nonblocking(listen_fd_);
  if (::pipe(wake_pipe_) == 0) {
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
}

EventLoop::~EventLoop() {
  stop_accepting();
  for (auto& conn : conns_) close_conn(*conn);
  conns_.clear();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void EventLoop::wake() {
  if (wake_pipe_[1] < 0) return;
  char byte = 0;
  // A full pipe already guarantees a pending wake; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::stop_accepting() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventLoop::shutdown_reads() {
  admit_lines_ = false;
  for (auto& conn : conns_) {
    if (!conn->dead && !conn->read_eof) ::shutdown(conn->fd, SHUT_RD);
  }
}

bool EventLoop::flushed() const {
  for (const auto& conn : conns_) {
    if (conn->dead) continue;
    std::lock_guard<std::mutex> lock(conn->sink->mu_);
    if (conn->sink->out_pos_ < conn->sink->out_.size()) return false;
  }
  return true;
}

void EventLoop::step(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 2);
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  size_t listen_slot = 0;
  if (listen_fd_ >= 0) {
    listen_slot = fds.size();
    fds.push_back({listen_fd_, POLLIN, 0});
  }
  const size_t conn_base = fds.size();
  for (auto& conn : conns_) {
    short events = 0;
    if (!conn->read_eof && admit_lines_) events |= POLLIN;
    {
      std::lock_guard<std::mutex> lock(conn->sink->mu_);
      if (conn->sink->out_pos_ < conn->sink->out_.size()) events |= POLLOUT;
    }
    // events == 0 still surfaces POLLERR/POLLHUP, so a vanished client is
    // noticed even when nothing is queued for it.
    fds.push_back({conn->fd, events, 0});
  }

  int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (ready < 0 && errno != EINTR) return;

  if (fds[0].revents & POLLIN) {
    char soff[64];
    while (::read(wake_pipe_[0], soff, sizeof soff) > 0) {
    }
  }
  if (listen_fd_ >= 0 && (fds[listen_slot].revents & POLLIN)) accept_ready();

  for (size_t i = 0; i < conns_.size() && conn_base + i < fds.size(); ++i) {
    Conn& conn = *conns_[i];
    short re = fds[conn_base + i].revents;
    if (re & (POLLERR | POLLNVAL)) {
      conn.dead = true;
      continue;
    }
    if (re & (POLLIN | POLLHUP)) read_ready(conn);
    if (!conn.dead) flush(conn);
  }
  reap();
}

void EventLoop::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN: drained the backlog
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->sink = std::make_shared<TcpSink>(this, fd);
    conns_.push_back(std::move(conn));
    ++conns_opened_;
  }
}

void EventLoop::read_ready(Conn& conn) {
  char chunk[16384];
  for (;;) {
    ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      bytes_in_ += static_cast<std::uint64_t>(n);
      conn.in.append(chunk, static_cast<size_t>(n));
      if (conn.in.size() > kMaxLineBytes) {
        conn.dead = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      conn.read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dead = true;
    return;
  }
  size_t start = 0;
  for (size_t nl = conn.in.find('\n', start); nl != std::string::npos;
       nl = conn.in.find('\n', start)) {
    std::string line = conn.in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && admit_lines_ && on_line_) on_line_(line, conn.sink);
  }
  conn.in.erase(0, start);
}

void EventLoop::flush(Conn& conn) {
  TcpSink& sink = *conn.sink;
  std::lock_guard<std::mutex> lock(sink.mu_);
  while (sink.out_pos_ < sink.out_.size()) {
    ssize_t n = ::send(conn.fd, sink.out_.data() + sink.out_pos_,
                       sink.out_.size() - sink.out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      sink.out_pos_ += static_cast<size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: keep the remainder, retry on POLLOUT.
      ++partial_writes_;
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET / anything else: the client is gone.  Only this
    // connection's bytes are dropped; the loop and workers carry on.
    conn.dead = true;
    return;
  }
  sink.out_.clear();
  sink.out_pos_ = 0;
}

void EventLoop::reap() {
  for (size_t i = 0; i < conns_.size();) {
    Conn& conn = *conns_[i];
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(conn.sink->mu_);
      drained = conn.sink->out_pos_ >= conn.sink->out_.size();
    }
    // use_count() == 1 (the loop's own reference): no queued or in-flight
    // job can still answer on this connection.
    if (conn.dead ||
        (conn.read_eof && drained && conn.sink.use_count() == 1)) {
      close_conn(conn);
      ++conns_closed_;
      conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void EventLoop::close_conn(Conn& conn) {
  std::lock_guard<std::mutex> lock(conn.sink->mu_);
  if (!conn.sink->closed_) {
    ::close(conn.fd);
    conn.sink->closed_ = true;
    conn.sink->fd_ = -1;
    conn.sink->loop_ = nullptr;  // the sink may outlive this loop
  }
}

}  // namespace lmre
