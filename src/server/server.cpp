#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <utility>

namespace lmre {

namespace {

/// Response sink over a std::ostream (stdio transport, tests).
class StreamSink : public ResponseSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(out) {}

  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    out_ << line << '\n';
    out_.flush();
  }

 private:
  std::mutex mu_;
  std::ostream& out_;
};

/// Response sink over a connected socket; owns the fd (closed when the
/// last job / reader reference is gone).
class FdSink : public ResponseSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  ~FdSink() override { ::close(fd_); }

  int fd() const { return fd_; }

  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string framed = line + '\n';
    size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a client that hung up costs us an EPIPE errno, not
      // a process-killing SIGPIPE.
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return;  // client gone; drop the response
      sent += static_cast<size_t>(n);
    }
  }

 private:
  std::mutex mu_;
  int fd_;
};

}  // namespace

AnalysisServer::AnalysisServer(ServerOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.queue_depth == 0 ? 1 : opts_.queue_depth) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_depth == 0) opts_.queue_depth = 1;
  cache_ = std::make_shared<ResultCache>(opts_.session.cache_capacity,
                                         opts_.session.cache_dir);
  metrics_ = std::make_shared<Metrics>();
  metrics_->gauge("serve.workers", static_cast<double>(opts_.workers));
  metrics_->gauge("serve.queue_depth", static_cast<double>(opts_.queue_depth));
  sessions_.reserve(static_cast<size_t>(opts_.workers));
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    // Workers always analyze with threads=1: one request never fans out
    // inside the pool (concurrency comes from the pool itself), and
    // threads is not part of the cache key, so single-threaded results
    // are bit-identical to any batch run.
    SessionOptions wopts = opts_.session;
    wopts.run.threads = 1;
    sessions_.push_back(
        std::make_unique<AnalysisSession>(wopts, cache_, metrics_));
  }
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*sessions_[static_cast<size_t>(i)]); });
  }
}

AnalysisServer::~AnalysisServer() { drain(); }

void AnalysisServer::respond(const Job& job, const std::string& line) {
  if (job.sink) job.sink->write_line(line);
}

void AnalysisServer::worker_loop(AnalysisSession& session) {
  while (std::optional<Job> job = queue_.pop()) {
    auto now = std::chrono::steady_clock::now();
    if (job->has_deadline && now >= job->deadline) {
      // Expired while queued: abandon before spending any work on it.
      metrics_->count("serve.timeout");
      metrics_->count("serve.abandoned");
      respond(*job, serve_error(job->request.id_json, ServeStatus::kTimeout,
                                "deadline expired before dispatch"));
      continue;
    }
    AnalysisRequest areq = job->request.analysis;
    areq.file = "<serve>";
    AnalysisResult result = session.run(areq);
    now = std::chrono::steady_clock::now();
    if (job->has_deadline && now >= job->deadline) {
      // Computed too late: the client gets `timeout`, but the result was
      // cached, so the next request for this source is a warm hit.
      metrics_->count("serve.timeout");
      respond(*job, serve_error(job->request.id_json, ServeStatus::kTimeout,
                                "deadline expired during analysis"));
      continue;
    }
    std::chrono::duration<double, std::milli> latency = now - job->admitted;
    metrics_->observe_latency("serve.latency_ms", latency.count());
    metrics_->count("serve.completed");
    respond(*job, serve_response(job->request.id_json,
                                 serve_status(result.status), result.payload));
  }
}

void AnalysisServer::admit_line(const std::string& line,
                                const std::shared_ptr<ResponseSink>& sink) {
  metrics_->count("serve.requests");
  Job job;
  job.sink = sink;
  std::string error;
  if (!parse_request(line, &job.request, &error)) {
    metrics_->count("serve.bad_request");
    if (sink) {
      sink->write_line(
          serve_error(job.request.id_json, ServeStatus::kBadRequest, error));
    }
    return;
  }
  job.admitted = std::chrono::steady_clock::now();
  if (job.request.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline =
        job.admitted + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               job.request.deadline_ms));
  }
  std::string id_json = job.request.id_json;  // job is moved by try_push
  if (!queue_.try_push(std::move(job))) {
    metrics_->count("serve.overloaded");
    if (sink) {
      sink->write_line(serve_error(id_json, ServeStatus::kOverloaded,
                                   "request queue full"));
    }
    return;
  }
  size_t depth = queue_.size();
  size_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
}

void AnalysisServer::serve_streams(std::istream& in, std::ostream& out) {
  auto sink = std::make_shared<StreamSink>(out);
  std::string line;
  while (!stopped() && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive no-ops
    admit_line(line, sink);
  }
  drain();
}

ExitCode AnalysisServer::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return ExitCode::kFailure;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return ExitCode::kFailure;
  ::unlink(path.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    ::close(listen_fd);
    return ExitCode::kFailure;
  }

  std::mutex conns_mu;
  std::vector<std::weak_ptr<FdSink>> conns;
  std::vector<std::thread> readers;

  // Accept loop: poll with a short timeout so request_stop() (one atomic
  // store, possibly from a signal handler) is noticed within ~100ms.
  while (!stopped()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto sink = std::make_shared<FdSink>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(sink);
    }
    readers.emplace_back([this, sink] {
      // Per-connection reader: split the byte stream into lines, admit
      // each.  The sink keeps the fd alive for any in-flight responses
      // after this thread exits.
      std::string buffer;
      char chunk[4096];
      while (true) {
        ssize_t n = ::recv(sink->fd(), chunk, sizeof chunk, 0);
        if (n <= 0) break;  // EOF, error, or shutdown(SHUT_RD) on drain
        buffer.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
             nl = buffer.find('\n', start)) {
          std::string line = buffer.substr(start, nl - start);
          start = nl + 1;
          if (!line.empty()) admit_line(line, sink);
        }
        buffer.erase(0, start);
      }
    });
  }

  ::close(listen_fd);
  ::unlink(path.c_str());
  {
    // Wake readers blocked in recv: half-close the read side only, so
    // responses for in-flight requests still go out below.
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto& weak : conns) {
      if (auto sink = weak.lock()) ::shutdown(sink->fd(), SHUT_RD);
    }
  }
  for (std::thread& t : readers) t.join();
  drain();  // finish everything admitted; every request gets its response
  return ExitCode::kSuccess;
}

void AnalysisServer::drain() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drained_) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  drained_ = true;
  if (!opts_.metrics_file.empty()) {
    std::ofstream mf(opts_.metrics_file, std::ios::trunc);
    if (mf) {
      mf << json_envelope("serve-metrics", metrics_json()).dump(2) << '\n';
    }
  }
}

Json AnalysisServer::metrics_json() {
  const Int hits = cache_->hits(), misses = cache_->misses();
  metrics_->gauge("cache.hits", static_cast<double>(hits));
  metrics_->gauge("cache.misses", static_cast<double>(misses));
  metrics_->gauge("cache.disk_hits", static_cast<double>(cache_->disk_hits()));
  metrics_->gauge("cache.evictions", static_cast<double>(cache_->evictions()));
  metrics_->gauge("cache.size", static_cast<double>(cache_->size()));
  metrics_->gauge("cache.hit_rate",
                  hits + misses == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses));
  metrics_->gauge("serve.queue_peak",
                  static_cast<double>(queue_peak_.load(std::memory_order_relaxed)));
  return metrics_->to_json();
}

}  // namespace lmre
