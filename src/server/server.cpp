#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <list>
#include <mutex>
#include <ostream>
#include <utility>

#include "server/epoll_loop.h"
#include "server/tcp.h"

namespace lmre {

namespace {

/// Response sink over a std::ostream (stdio transport, tests).
class StreamSink : public ResponseSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(out) {}

  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    out_ << line << '\n';
    out_.flush();
  }

 private:
  std::mutex mu_;
  std::ostream& out_;
};

/// Response sink over a connected Unix socket; owns the fd (closed when
/// the last job / reader reference is gone).
class FdSink : public ResponseSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  ~FdSink() override { ::close(fd_); }

  int fd() const { return fd_; }

  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string framed = line + '\n';
    size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a client that hung up costs us an EPIPE errno, not
      // a process-killing SIGPIPE.  Only this connection's response is
      // dropped; every other client's lines are written by their own
      // sink, so one dead client never loses another's answer.
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return;  // client gone; drop the response
      sent += static_cast<size_t>(n);
    }
  }

 private:
  std::mutex mu_;
  int fd_;
};

}  // namespace

AnalysisServer::AnalysisServer(ServerOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.queue_depth == 0 ? 1 : opts_.queue_depth) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_depth == 0) opts_.queue_depth = 1;
  cache_ = std::make_shared<ResultCache>(opts_.session.cache_config());
  metrics_ = std::make_shared<Metrics>();
  metrics_->gauge("serve.workers", static_cast<double>(opts_.workers));
  metrics_->gauge("serve.queue_depth", static_cast<double>(opts_.queue_depth));
  metrics_->gauge("serve.coalesce", opts_.coalesce ? 1.0 : 0.0);
  sessions_.reserve(static_cast<size_t>(opts_.workers));
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    // Workers always analyze with threads=1: one request never fans out
    // inside the pool (concurrency comes from the pool itself), and
    // threads is not part of the cache key, so single-threaded results
    // are bit-identical to any batch run.
    SessionOptions wopts = opts_.session;
    wopts.run.threads = 1;
    sessions_.push_back(
        std::make_unique<AnalysisSession>(wopts, cache_, metrics_));
  }
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*sessions_[static_cast<size_t>(i)]); });
  }
}

AnalysisServer::~AnalysisServer() { drain(); }

void AnalysisServer::respond(const Job& job, const std::string& line) {
  if (job.sink) job.sink->write_line(line);
}

void AnalysisServer::respond_result(const Job& job,
                                    const AnalysisResult& result,
                                    bool coalesced) {
  auto now = std::chrono::steady_clock::now();
  if (job.has_deadline && now >= job.deadline) {
    // Computed too late for this client: it gets `timeout`, but the
    // result was cached, so the next request for this source is warm.
    metrics_->count("serve.timeout");
    respond(job, serve_error(job.request.id_json, ServeStatus::kTimeout,
                             "deadline expired during analysis"));
    return;
  }
  std::chrono::duration<double, std::milli> latency = now - job.admitted;
  metrics_->observe_latency("serve.latency_ms", latency.count());
  metrics_->count("serve.completed");
  if (coalesced) metrics_->count("serve.coalesced");
  respond(job, serve_response(job.request.id_json,
                              serve_status(result.status), result.payload));
}

void AnalysisServer::worker_loop(AnalysisSession& session) {
  while (std::optional<Job> job = queue_.pop()) {
    auto now = std::chrono::steady_clock::now();
    if (job->has_deadline && now >= job->deadline) {
      // The leader expired while queued: abandon it before spending any
      // work.  Its flight must still be settled -- waiters with live
      // deadlines joined on the promise of a result.
      metrics_->count("serve.timeout");
      metrics_->count("serve.abandoned");
      respond(*job, serve_error(job->request.id_json, ServeStatus::kTimeout,
                                "deadline expired before dispatch"));
      std::vector<Job> waiters =
          opts_.coalesce ? flights_.finish(job->key) : std::vector<Job>{};
      bool any_live = false;
      for (const Job& w : waiters) {
        if (!w.has_deadline || now < w.deadline) {
          any_live = true;
          break;
        }
      }
      if (any_live) {
        // Compute after all for the waiters' sake.  The flight is already
        // closed, so a late identical arrival re-computes -- acceptable
        // on this exceptional path, and the cache makes it a warm hit.
        AnalysisRequest areq = job->request.analysis;
        areq.file = "<serve>";
        AnalysisResult result = session.run(areq);
        for (const Job& w : waiters) respond_result(w, result, true);
      } else {
        for (const Job& w : waiters) {
          metrics_->count("serve.timeout");
          respond(w, serve_error(w.request.id_json, ServeStatus::kTimeout,
                                 "deadline expired before dispatch"));
        }
      }
      continue;
    }
    AnalysisRequest areq = job->request.analysis;
    areq.file = "<serve>";
    AnalysisResult result = session.run(areq);
    // Close the flight only after the result exists: every identical
    // request admitted during the computation window is in `waiters` and
    // is answered below from the same serialized bytes.
    std::vector<Job> waiters =
        opts_.coalesce ? flights_.finish(job->key) : std::vector<Job>{};
    respond_result(*job, result, false);
    for (const Job& w : waiters) respond_result(w, result, true);
  }
}

void AnalysisServer::admit_line(const std::string& line,
                                const std::shared_ptr<ResponseSink>& sink) {
  metrics_->count("serve.requests");
  Job job;
  job.sink = sink;
  std::string error;
  if (!parse_request(line, &job.request, &error)) {
    metrics_->count("serve.bad_request");
    if (sink) {
      sink->write_line(
          serve_error(job.request.id_json, ServeStatus::kBadRequest, error));
    }
    return;
  }
  job.admitted = std::chrono::steady_clock::now();
  if (job.request.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline =
        job.admitted + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               job.request.deadline_ms));
  }
  // The coalescing identity is the cache key: same canonicalized source,
  // kind, and options => same flight, regardless of id or deadline.
  job.key = sessions_.front()->request_key(job.request.analysis);
  if (opts_.coalesce && !flights_.lead_or_wait(job.key, &job)) {
    // A leader for this key is queued or computing; the job is parked in
    // the flight and its worker will answer it.  No queue slot consumed.
    return;
  }
  const std::uint64_t key = job.key;
  std::string id_json = job.request.id_json;  // job is moved by try_push
  if (!queue_.try_push(std::move(job))) {
    metrics_->count("serve.overloaded");
    if (sink) {
      sink->write_line(serve_error(id_json, ServeStatus::kOverloaded,
                                   "request queue full"));
    }
    if (opts_.coalesce) {
      // The leader never made it in; shed any waiters that raced onto
      // the flight between registration and this push.
      for (const Job& w : flights_.finish(key)) {
        metrics_->count("serve.overloaded");
        respond(w, serve_error(w.request.id_json, ServeStatus::kOverloaded,
                               "request queue full"));
      }
    }
    return;
  }
  size_t depth = queue_.size();
  size_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
}

void AnalysisServer::serve_streams(std::istream& in, std::ostream& out) {
  auto sink = std::make_shared<StreamSink>(out);
  std::string line;
  while (!stopped() && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive no-ops
    admit_line(line, sink);
  }
  drain();
}

ExitCode AnalysisServer::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return ExitCode::kFailure;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return ExitCode::kFailure;
  ::unlink(path.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    ::close(listen_fd);
    return ExitCode::kFailure;
  }

  std::mutex conns_mu;
  std::vector<std::weak_ptr<FdSink>> conns;
  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Reader> readers;

  // Accept loop: poll with a short timeout so request_stop() (one atomic
  // store, possibly from a signal handler) is noticed within ~100ms.
  while (!stopped()) {
    // Reap readers whose clients already left: a long-lived server must
    // not accumulate one parked thread per connection it ever served.
    for (auto it = readers.begin(); it != readers.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        metrics_->count("serve.conn_closed");
        it = readers.erase(it);
      } else {
        ++it;
      }
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    metrics_->count("serve.conn_opened");
    auto sink = std::make_shared<FdSink>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(sink);
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    readers.push_back(Reader{
        std::thread([this, sink, done] {
          // Per-connection reader: split the byte stream into lines,
          // admit each.  The sink keeps the fd alive for any in-flight
          // responses after this thread exits.
          std::string buffer;
          char chunk[4096];
          while (true) {
            ssize_t n = ::recv(sink->fd(), chunk, sizeof chunk, 0);
            if (n <= 0) break;  // EOF, error, or shutdown(SHUT_RD) on drain
            buffer.append(chunk, static_cast<size_t>(n));
            size_t start = 0;
            for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
                 nl = buffer.find('\n', start)) {
              std::string line = buffer.substr(start, nl - start);
              start = nl + 1;
              if (!line.empty()) admit_line(line, sink);
            }
            buffer.erase(0, start);
          }
          done->store(true, std::memory_order_release);
        }),
        done});
  }

  ::close(listen_fd);
  ::unlink(path.c_str());
  {
    // Wake readers blocked in recv: half-close the read side only, so
    // responses for in-flight requests still go out below.
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto& weak : conns) {
      if (auto sink = weak.lock()) ::shutdown(sink->fd(), SHUT_RD);
    }
  }
  for (Reader& r : readers) {
    r.thread.join();
    metrics_->count("serve.conn_closed");
  }
  drain();  // finish everything admitted; every request gets its response
  return ExitCode::kSuccess;
}

ExitCode AnalysisServer::serve_tcp(const std::string& host, int port,
                                   std::string* error) {
  int bound_port = 0;
  int listen_fd = tcp_listen(host, port, &bound_port, error);
  if (listen_fd < 0) return ExitCode::kFailure;
  tcp_port_.store(bound_port, std::memory_order_release);

  EventLoop loop(listen_fd,
                 [this](const std::string& line,
                        const std::shared_ptr<ResponseSink>& sink) {
                   admit_line(line, sink);
                 });
  while (!stopped()) loop.step(100);

  // Drain: stop admitting, then run the queue dry on a side thread while
  // this thread keeps the loop flushing -- in-flight responses are only
  // bytes in per-connection buffers until the loop pushes them out.
  loop.stop_accepting();
  loop.shutdown_reads();
  std::atomic<bool> drained{false};
  std::thread drainer([this, &drained, &loop] {
    drain();
    drained.store(true, std::memory_order_release);
    loop.wake();
  });
  while (!drained.load(std::memory_order_acquire)) loop.step(50);
  // Bounded final flush: clients that linger without reading cannot hold
  // shutdown hostage.
  for (int i = 0; i < 100 && !loop.flushed(); ++i) loop.step(10);
  drainer.join();

  metrics_->gauge("serve.tcp_conns_opened",
                  static_cast<double>(loop.conns_opened()));
  metrics_->gauge("serve.tcp_conns_closed",
                  static_cast<double>(loop.conns_closed()));
  metrics_->gauge("serve.tcp_partial_writes",
                  static_cast<double>(loop.partial_writes()));
  metrics_->gauge("serve.tcp_bytes_in", static_cast<double>(loop.bytes_in()));
  metrics_->gauge("serve.tcp_bytes_out", static_cast<double>(loop.bytes_out()));
  // drain() already wrote the snapshot, but without the loop gauges
  // above (the loop was still flushing); rewrite the complete picture.
  write_metrics_file();
  return ExitCode::kSuccess;
}

void AnalysisServer::drain() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drained_) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  drained_ = true;
  write_metrics_file();
}

void AnalysisServer::write_metrics_file() {
  if (opts_.metrics_file.empty()) return;
  std::ofstream mf(opts_.metrics_file, std::ios::trunc);
  if (mf) {
    mf << json_envelope("serve-metrics", metrics_json()).dump(2) << '\n';
  }
}

Json AnalysisServer::metrics_json() {
  export_cache_gauges(*metrics_, *cache_);
  metrics_->gauge("serve.queue_peak",
                  static_cast<double>(queue_peak_.load(std::memory_order_relaxed)));
  return metrics_->to_json();
}

}  // namespace lmre
