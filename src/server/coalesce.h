#pragma once

// Single-flight request coalescing for the serve pool.
//
// Concurrent misses on one cache key should compute once: the first
// admission with a given key becomes the *leader* and is queued for a
// worker; every later admission while that flight is open becomes a
// *waiter* -- parked here, never queued, never probing the cache or a
// session.  When the leader's worker finishes it closes the flight and
// fans the one serialized result out to leader and waiters alike, so the
// byte-identical-payload contract holds trivially: all M responses splice
// the same payload text.
//
// Registering at admission (rather than at the worker, after a cache
// miss) makes "M concurrent identical cold requests -> exactly one
// runs.total" deterministic: the flight exists from the moment the leader
// is admitted until its worker responds, so any request admitted in that
// window attaches -- there is no race where a second copy slips into the
// queue between the leader's pop and its cache insert.  Waiters also cost
// no queue slots, so a thundering herd on one key cannot shed unrelated
// work.
//
// The template is generic over the parked job type so tests can stress
// the flight table without dragging in the server.

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lmre {

template <typename Job>
class SingleFlight {
 public:
  /// Registers `key`.  Returns true when the caller is the leader (keep
  /// the job, queue it); returns false when a flight is already open --
  /// `*job` has been moved into the flight's waiter list and the caller
  /// must NOT queue or answer it.
  bool lead_or_wait(std::uint64_t key, Job* job) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = flights_.try_emplace(key);
    if (inserted) return true;
    it->second.push_back(std::move(*job));
    return false;
  }

  /// Closes the flight and returns the parked waiters (possibly empty).
  /// The caller (the leader's worker, or the leader's admitter when
  /// queueing failed) answers every one of them with the same result.
  std::vector<Job> finish(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return {};
    std::vector<Job> waiters = std::move(it->second);
    flights_.erase(it);
    return waiters;
  }

  /// Open flights right now (leaders whose workers have not finished).
  size_t open() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flights_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Job>> flights_;
};

}  // namespace lmre
