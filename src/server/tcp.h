#pragma once

// Small TCP socket helpers shared by the serve transport
// (server/epoll_loop), the CLI client (`lmre request --tcp=...`), and the
// load bench.  Everything here is plain blocking/bound-socket plumbing;
// the event loop flips accepted fds non-blocking itself.

#include <optional>
#include <string>

namespace lmre {

/// "HOST:PORT" -> parts.  Accepts numeric IPv4 dotted quads and the
/// literal "localhost"; port must be 0..65535 (0 = kernel-assigned, the
/// bound port is reported back by tcp_listen).  Returns nullopt, with a
/// human-readable reason in *error when given, for anything else.
struct HostPort {
  std::string host;
  int port = 0;
};
std::optional<HostPort> parse_host_port(const std::string& spec,
                                        std::string* error = nullptr);

/// Creates a listening TCP socket bound to host:port with SO_REUSEADDR
/// (fast restart across TIME_WAIT).  On success returns the fd and stores
/// the actually-bound port (interesting when port was 0) in *bound_port;
/// on failure returns -1 with the reason in *error when given.
int tcp_listen(const std::string& host, int port, int* bound_port,
               std::string* error = nullptr);

/// Connects a blocking TCP socket to host:port; -1 on failure.
int tcp_connect(const std::string& host, int port,
                std::string* error = nullptr);

}  // namespace lmre
