#include "server/wire.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "support/json.h"

namespace lmre {

const WireValue* WireValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

// Recursive-descent reader over the input; every parsed value remembers
// the exact byte range it was decoded from (WireValue::raw).
class Reader {
 public:
  Reader(std::string_view input, std::string* error)
      : input_(input), error_(error) {}

  std::optional<WireValue> parse() {
    skip_ws();
    std::optional<WireValue> v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != input_.size()) {
      return fail("trailing bytes after JSON value");
    }
    return v;
  }

 private:
  std::optional<WireValue> fail(const std::string& message) {
    if (error_ && error_->empty()) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<WireValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= input_.size()) return fail("unexpected end of input");
    size_t start = pos_;
    std::optional<WireValue> v;
    switch (input_[pos_]) {
      case '{':
        v = parse_object(depth);
        break;
      case '[':
        v = parse_array(depth);
        break;
      case '"':
        v = parse_string_value();
        break;
      case 't':
      case 'f':
        v = parse_bool();
        break;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        v = WireValue{};
        break;
      default:
        v = parse_number();
        break;
    }
    if (v) v->raw = std::string(input_.substr(start, pos_ - start));
    return v;
  }

  std::optional<WireValue> parse_bool() {
    WireValue v;
    v.kind = WireValue::Kind::kBool;
    if (literal("true")) {
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.boolean = false;
      return v;
    }
    return fail("invalid literal");
  }

  std::optional<WireValue> parse_number() {
    size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    size_t digits = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits) return fail("invalid number");
    if (pos_ < input_.size() && input_[pos_] == '.') {
      ++pos_;
      size_t frac = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return fail("invalid number");
    }
    if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) return fail("invalid number");
    }
    WireValue v;
    v.kind = WireValue::Kind::kNumber;
    std::string text(input_.substr(start, pos_ - start));
    v.number = std::strtod(text.c_str(), nullptr);
    if (!std::isfinite(v.number)) return fail("number out of range");
    return v;
  }

  bool append_utf8(unsigned code, std::string* out) {
    if (code <= 0x7f) {
      out->push_back(static_cast<char>(code));
    } else if (code <= 0x7ff) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code <= 0xffff) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
    return true;
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > input_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = input_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  std::optional<std::string> parse_string_body() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (pos_ >= input_.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      char c = input_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      char e = input_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (!literal("\\u")) {
              fail("unpaired surrogate");
              return std::nullopt;
            }
            unsigned low = 0;
            if (!parse_hex4(&low) || low < 0xdc00 || low > 0xdfff) {
              fail("unpaired surrogate");
              return std::nullopt;
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired surrogate");
            return std::nullopt;
          }
          append_utf8(code, &out);
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
  }

  std::optional<WireValue> parse_string_value() {
    std::optional<std::string> body = parse_string_body();
    if (!body) return std::nullopt;
    WireValue v;
    v.kind = WireValue::Kind::kString;
    v.text = std::move(*body);
    return v;
  }

  std::optional<WireValue> parse_object(int depth) {
    consume('{');
    WireValue v;
    v.kind = WireValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string_body();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      std::optional<WireValue> member = parse_value(depth + 1);
      if (!member) return std::nullopt;
      v.members.emplace_back(std::move(*key), std::move(*member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return v;
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<WireValue> parse_array(int depth) {
    consume('[');
    WireValue v;
    v.kind = WireValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      skip_ws();
      std::optional<WireValue> element = parse_value(depth + 1);
      if (!element) return std::nullopt;
      v.elements.push_back(std::move(*element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return v;
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<WireValue> parse_wire_json(std::string_view input,
                                         std::string* error) {
  if (error) error->clear();
  Reader reader(input, error);
  std::optional<WireValue> v = reader.parse();
  if (!v && error && error->empty()) *error = "malformed JSON";
  return v;
}

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kSuccess: return "success";
    case ServeStatus::kFailure: return "failure";
    case ServeStatus::kUsage: return "usage";
    case ServeStatus::kDiagnostics: return "diagnostics";
    case ServeStatus::kOverflow: return "overflow";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kTimeout: return "timeout";
    case ServeStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

ServeStatus serve_status(ExitCode code) {
  return static_cast<ServeStatus>(to_int(code));
}

namespace {

/// Reads a string-valued member into *out; absent is fine, any other type
/// is a schema error.
bool read_string(const WireValue& obj, std::string_view key, std::string* out,
                 std::string* error) {
  const WireValue* v = obj.find(key);
  if (!v) return true;
  if (v->kind != WireValue::Kind::kString) {
    if (error) *error = "\"" + std::string(key) + "\" must be a string";
    return false;
  }
  *out = v->text;
  return true;
}

bool read_bool(const WireValue& obj, std::string_view key, bool* out,
               std::string* error) {
  const WireValue* v = obj.find(key);
  if (!v) return true;
  if (v->kind != WireValue::Kind::kBool) {
    if (error) *error = "\"" + std::string(key) + "\" must be a boolean";
    return false;
  }
  *out = v->boolean;
  return true;
}

}  // namespace

bool parse_request(const std::string& line, ServerRequest* req,
                   std::string* error) {
  *req = ServerRequest{};
  std::optional<WireValue> root = parse_wire_json(line, error);
  if (!root) return false;
  if (root->kind != WireValue::Kind::kObject) {
    if (error) *error = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even schema errors can be correlated.
  if (const WireValue* id = root->find("id")) {
    switch (id->kind) {
      case WireValue::Kind::kString:
      case WireValue::Kind::kNumber:
      case WireValue::Kind::kNull:
        req->id_json = id->raw;
        break;
      default:
        if (error) *error = "\"id\" must be a string, number, or null";
        return false;
    }
  }
  if (const WireValue* version = root->find("schema_version")) {
    // Absent = v1 (the key predates versioned requests).  Anything in the
    // supported window parses; the future is an explicit refusal, not a
    // silent misread.
    double v = version->kind == WireValue::Kind::kNumber ? version->number : -1;
    if (v != static_cast<double>(static_cast<Int>(v)) ||
        v < static_cast<double>(kJsonSchemaVersionMin) ||
        v > static_cast<double>(kJsonSchemaVersion)) {
      if (error) {
        *error = "\"schema_version\" must be an integer in [" +
                 std::to_string(kJsonSchemaVersionMin) + ", " +
                 std::to_string(kJsonSchemaVersion) + "]";
      }
      return false;
    }
  }
  const WireValue* source = root->find("source");
  if (!source || source->kind != WireValue::Kind::kString) {
    if (error) *error = "missing string field \"source\"";
    return false;
  }
  req->analysis.source = source->text;
  if (const WireValue* kind = root->find("kind")) {
    std::optional<AnalysisRequest::Kind> parsed =
        kind->kind == WireValue::Kind::kString
            ? kind_from_string(kind->text)
            : std::nullopt;
    if (!parsed) {
      if (error) *error = "\"kind\" must be one of " + kind_names_joined();
      return false;
    }
    req->analysis.set_kind(*parsed);
  }
  // v1 compatibility: the plan spec used to be a top-level key.  It only
  // ever applied to verify; options.plan (v2) wins when both are present.
  std::string plan;
  if (!read_string(*root, "plan", &plan, error)) return false;
  if (const WireValue* options = root->find("options")) {
    if (options->kind != WireValue::Kind::kObject) {
      if (error) *error = "\"options\" must be an object";
      return false;
    }
    if (const WireValue* deadline = options->find("deadline_ms")) {
      if (deadline->kind != WireValue::Kind::kNumber ||
          deadline->number < 0) {
        if (error) *error = "\"deadline_ms\" must be a non-negative number";
        return false;
      }
      req->deadline_ms = deadline->number;
    }
    if (!read_string(*options, "plan", &plan, error)) return false;
    if (AnalysisRequest::Codegen* cg =
            std::get_if<AnalysisRequest::Codegen>(&req->analysis.options)) {
      if (!read_bool(*options, "run", &cg->run, error)) return false;
      if (!read_string(*options, "cc", &cg->cc, error)) return false;
    }
    if (AnalysisRequest::Optimize* op =
            std::get_if<AnalysisRequest::Optimize>(&req->analysis.options)) {
      if (!read_string(*options, "objective", &op->objective, error)) {
        return false;
      }
    }
    if (AnalysisRequest::Mrc* m =
            std::get_if<AnalysisRequest::Mrc>(&req->analysis.options)) {
      if (const WireValue* rate = options->find("sample_rate")) {
        if (rate->kind != WireValue::Kind::kNumber || !(rate->number > 0) ||
            rate->number > 1) {
          if (error) *error = "\"sample_rate\" must be a number in (0, 1]";
          return false;
        }
        m->sample_rate = rate->number;
      }
      if (const WireValue* caps = options->find("capacities")) {
        if (caps->kind != WireValue::Kind::kArray) {
          if (error) *error = "\"capacities\" must be an array of integers";
          return false;
        }
        for (const WireValue& c : caps->elements) {
          if (c.kind != WireValue::Kind::kNumber ||
              c.number != static_cast<double>(static_cast<Int>(c.number)) ||
              c.number < 0) {
            if (error) {
              *error = "\"capacities\" entries must be non-negative integers";
            }
            return false;
          }
          m->capacities.push_back(static_cast<Int>(c.number));
        }
      }
    }
    // Keys the kind does not define are ignored (forward compatibility).
  }
  if (AnalysisRequest::Verify* v =
          std::get_if<AnalysisRequest::Verify>(&req->analysis.options)) {
    v->plan = plan;
  } else if (AnalysisRequest::Codegen* cg =
                 std::get_if<AnalysisRequest::Codegen>(&req->analysis.options)) {
    cg->plan = plan;
  } else if (AnalysisRequest::Mrc* m =
                 std::get_if<AnalysisRequest::Mrc>(&req->analysis.options)) {
    m->plan = plan;
  }
  return true;
}

namespace {

std::string serve_line(const std::string& id_json, ServeStatus status,
                       const std::string& body_key,
                       Json body_value) {
  Json result = Json::object();
  result.set("id", Json::raw(id_json));
  result.set("status", static_cast<int>(status));
  result.set("status_name", to_string(status));
  result.set(body_key, std::move(body_value));
  return json_envelope("serve", std::move(result)).dump(0);
}

}  // namespace

std::string serve_response(const std::string& id_json, ServeStatus status,
                           const std::string& payload_json) {
  return serve_line(id_json, status, "result", Json::raw(payload_json));
}

std::string serve_error(const std::string& id_json, ServeStatus status,
                        const std::string& message) {
  return serve_line(id_json, status, "error", Json::string(message));
}

}  // namespace lmre
