#pragma once

// The serve wire protocol: newline-delimited JSON.
//
// Each request is one line holding a JSON object
//   {"id": <string|number>, "schema_version": 2,
//    "kind": "lint|analyze|optimize|full|symbolic|verify|codegen|mrc",
//    "source": "<DSL text>",
//    "options": {"deadline_ms": <number>,
//                "plan": "<plan spec>",          (verify, codegen, mrc)
//                "run": <bool>, "cc": "<path>",  (codegen)
//                "objective": "<spec>",          (optimize)
//                "sample_rate": <number>,        (mrc)
//                "capacities": [<number>...]}}   (mrc)
// The "options" object mixes wire-level knobs (deadline_ms) with the
// per-kind knobs of the typed AnalysisRequest; keys a kind does not
// define are ignored.  "schema_version" may be omitted (= v1) or any
// version in [kJsonSchemaVersionMin, kJsonSchemaVersion]; v1 requests
// carried the verify plan spec as a top-level "plan" key, which still
// parses (options.plan wins when both appear).
// Each response is one line holding the common versioned envelope
// ({schema_version, tool, command: "serve", result: ...}) whose result
// carries the echoed id, a wire status, and -- for computed requests --
// the exact payload `lmre batch` would embed for the same source and
// options.  The determinism contract extends to the wire: the payload is
// spliced byte-for-byte from the runtime's serialized result, never
// re-encoded.
//
// lmre otherwise only EMITS JSON (support/json.h has no parser); the
// reader here exists solely for the request side of this protocol.  It
// keeps, for every parsed value, the verbatim input slice (`raw`) so ids
// echo byte-identically and tests can extract response payloads without
// re-serializing them.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/session.h"
#include "support/error.h"

namespace lmre {

/// A parsed JSON value plus the verbatim input slice it came from.
struct WireValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< decoded string value (escapes resolved)
  std::vector<std::pair<std::string, WireValue>> members;  ///< objects, in input order
  std::vector<WireValue> elements;                         ///< arrays
  std::string raw;  ///< the exact input bytes of this value

  /// First member with `key` (objects only); nullptr when absent.
  const WireValue* find(std::string_view key) const;
};

/// Parses one complete JSON value (surrounding whitespace allowed,
/// nothing else).  Returns nullopt and sets *error on malformed input;
/// never throws.  Nesting is capped (64 levels) so hostile input cannot
/// blow the stack.
std::optional<WireValue> parse_wire_json(std::string_view input,
                                         std::string* error);

/// Statuses a serve response can carry.  0-4 mirror ExitCode (the payload
/// was computed, or recalled, with that status); 5-7 are wire-only: the
/// request never reached the pipeline.
enum class ServeStatus : int {
  kSuccess = 0,
  kFailure = 1,
  kUsage = 2,
  kDiagnostics = 3,
  kOverflow = 4,
  kOverloaded = 5,   ///< shed at admission: the bounded queue was full
  kTimeout = 6,      ///< deadline_ms elapsed before a result was delivered
  kBadRequest = 7,   ///< malformed request line (JSON or schema)
};

/// Stable lower-case name, e.g. "overloaded", "timeout".
const char* to_string(ServeStatus s);

/// The wire status for a computed result's exit code.
ServeStatus serve_status(ExitCode code);

/// One decoded request line: the typed AnalysisRequest it maps to (kind +
/// per-kind options already folded in; `file` is set by the server) plus
/// the wire-only envelope fields.
struct ServerRequest {
  std::string id_json = "null";  ///< raw JSON scalar, echoed verbatim
  AnalysisRequest analysis;      ///< source, kind and typed options
  double deadline_ms = 0.0;      ///< <= 0 means no deadline
};

/// Parses and validates one request line.  On failure returns false with a
/// message in *error; *req keeps any id that was readable so the error
/// response can still correlate.  Unknown option keys are ignored
/// (forward compatibility); unknown kinds and non-string sources are not.
bool parse_request(const std::string& line, ServerRequest* req,
                   std::string* error);

/// A computed-result response line (no trailing newline): the envelope
/// around {id, status, status_name, result} with `payload_json` spliced
/// verbatim as the result.
std::string serve_response(const std::string& id_json, ServeStatus status,
                           const std::string& payload_json);

/// An error response line: {id, status, status_name, error: <message>}.
std::string serve_error(const std::string& id_json, ServeStatus status,
                        const std::string& message);

}  // namespace lmre
