#pragma once

// Event-driven readiness loop for the TCP transport.
//
// One thread -- the one calling step() -- owns every socket: it accepts,
// reads, frames NDJSON lines, and flushes response bytes.  Readiness
// comes from poll(2) over non-blocking fds (the portable POSIX face of
// the epoll-style level-triggered model; the fd counts lmre serves are
// far below where poll's O(n) scan matters next to analysis cost).
// Replacing the old thread-per-connection readers, 10k idle connections
// now cost 10k pollfd entries instead of 10k blocked threads.
//
// Worker threads never see a socket.  Their half of a connection is the
// TcpSink: write_line appends to the connection's pending-output buffer
// under a small mutex and wakes the loop through a self-pipe; the loop
// flushes opportunistically, keeping whatever a full socket buffer or a
// slow client refuses (partial-write handling) until POLLOUT.  A client
// that vanished mid-response costs the loop an EPIPE errno on its own
// send -- it cannot kill or even block a worker, and the other
// connections' buffered responses are untouched.
//
// Connection lifetime: a connection is reaped when the client is gone
// (read error / reset), or when it has half-closed (EOF), its output has
// fully drained, AND no in-flight job still holds the sink (the sink's
// use_count is the in-flight reference count).  Reaping closes the fd
// and marks the sink closed so a late write_line from a finishing worker
// degrades to a silent drop, exactly like the Unix transport.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/server.h"

namespace lmre {

class EventLoop;

/// ResponseSink over one TCP connection.  Thread-safe; never blocks on
/// the network (see file comment).
class TcpSink : public ResponseSink {
 public:
  TcpSink(EventLoop* loop, int fd) : loop_(loop), fd_(fd) {}
  ~TcpSink() override;

  void write_line(const std::string& line) override;

 private:
  friend class EventLoop;

  std::mutex mu_;
  std::string out_;     ///< response bytes not yet accepted by the socket
  size_t out_pos_ = 0;  ///< sent prefix of out_ (compacted when drained)
  bool closed_ = false; ///< fd reaped (or loop gone): drop further writes
  EventLoop* loop_;
  int fd_;
};

class EventLoop {
 public:
  /// Called once per complete request line (without the newline), with
  /// the connection's sink.  The handler may answer synchronously or hand
  /// the sink to a worker; either way response bytes travel through
  /// TcpSink::write_line.
  using LineHandler = std::function<void(const std::string& line,
                                         const std::shared_ptr<ResponseSink>& sink)>;

  /// Takes ownership of the listening fd (closed on stop_accepting or
  /// destruction).
  EventLoop(int listen_fd, LineHandler on_line);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// One readiness round: waits up to timeout_ms for activity, then
  /// accepts, reads + frames + dispatches lines, flushes pending output,
  /// and reaps finished connections.  Returns promptly on wake().
  void step(int timeout_ms);

  /// Interrupts a blocked step() from any thread (self-pipe write;
  /// async-signal-safe).
  void wake();

  /// Closes the listening socket; existing connections live on.
  void stop_accepting();

  /// Half-closes every connection's read side and stops dispatching
  /// lines -- the drain barrier: nothing new is admitted, buffered
  /// responses still flush.  Loop-thread only.
  void shutdown_reads();

  /// True when every live connection's output buffer has fully drained.
  bool flushed() const;

  size_t connections() const { return conns_.size(); }
  std::uint64_t conns_opened() const { return conns_opened_; }
  std::uint64_t conns_closed() const { return conns_closed_; }
  /// Sends that could not take the whole buffer in one call (kept bytes
  /// were retried on POLLOUT).
  std::uint64_t partial_writes() const { return partial_writes_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;  ///< bytes read but not yet framed into lines
    std::shared_ptr<TcpSink> sink;
    bool read_eof = false;  ///< client half-closed (or shutdown_reads)
    bool dead = false;      ///< client gone; reap unconditionally
  };

  void accept_ready();
  void read_ready(Conn& conn);
  void flush(Conn& conn);
  void reap();
  void close_conn(Conn& conn);

  int listen_fd_;
  int wake_pipe_[2] = {-1, -1};
  LineHandler on_line_;
  std::vector<std::unique_ptr<Conn>> conns_;
  bool admit_lines_ = true;
  std::uint64_t conns_opened_ = 0;
  std::uint64_t conns_closed_ = 0;
  std::uint64_t partial_writes_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace lmre
