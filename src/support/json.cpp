#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace lmre {

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.value_ = std::move(s);
  return j;
}

Json Json::number(Int v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::raw(std::string json_text) {
  Json j;
  j.value_ = Raw{std::move(json_text)};
  return j;
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

Json& Json::set(const std::string& key, Json v) {
  require(is_object(), "Json::set on a non-object");
  (*std::get<std::shared_ptr<Object>>(value_))[key] = std::move(v);
  return *this;
}

Json& Json::set(const std::string& key, const std::string& v) {
  return set(key, Json::string(v));
}

Json& Json::set(const std::string& key, const char* v) {
  return set(key, Json::string(v));
}

Json& Json::set(const std::string& key, Int v) { return set(key, Json::number(v)); }

Json& Json::set(const std::string& key, double v) { return set(key, Json::number(v)); }

Json& Json::set(const std::string& key, bool v) { return set(key, Json::boolean(v)); }

Json& Json::push(Json v) {
  require(is_array(), "Json::push on a non-array");
  std::get<std::shared_ptr<Array>>(value_)->push_back(std::move(v));
  return *this;
}

Json& Json::push(const std::string& v) { return push(Json::string(v)); }

Json& Json::push(Int v) { return push(Json::number(v)); }

size_t Json::size() const {
  if (is_object()) return std::get<std::shared_ptr<Object>>(value_)->size();
  if (is_array()) return std::get<std::shared_ptr<Array>>(value_)->size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<Int>(value_)) {
    out += std::to_string(std::get<Int>(value_));
  } else if (std::holds_alternative<double>(value_)) {
    double v = std::get<double>(value_);
    ensure(std::isfinite(v), "Json: non-finite double");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  } else if (std::holds_alternative<std::string>(value_)) {
    out += '"';
    out += escape(std::get<std::string>(value_));
    out += '"';
  } else if (std::holds_alternative<Raw>(value_)) {
    out += std::get<Raw>(value_).text;
  } else if (is_object()) {
    const Object& obj = *std::get<std::shared_ptr<Object>>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      out += '"';
      out += escape(k);
      out += indent > 0 ? "\": " : "\":";
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  } else {
    const Array& arr = *std::get<std::shared_ptr<Array>>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json json_envelope(const std::string& command, Json result) {
  return Json::object()
      .set("schema_version", kJsonSchemaVersion)
      .set("tool", "lmre")
      .set("command", command)
      .set("result", std::move(result));
}

}  // namespace lmre
