#pragma once

// Small text-formatting helpers used by printers, benches and examples.

#include <sstream>
#include <string>
#include <vector>

namespace lmre {

/// Joins the string forms of `items` with `sep` between elements.
template <typename Range>
std::string join(const Range& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Repeats `s` `n` times.
std::string repeat(const std::string& s, int n);

/// Left-pads `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, int width);

/// Right-pads `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, int width);

/// Formats `value` with thousands separators, e.g. 5152 -> "5,152".
std::string with_commas(long long value);

/// Formats a ratio as a percentage with one decimal, e.g. 0.819 -> "81.9%".
std::string percent(double ratio);

/// A minimal fixed-column text table for bench/report output.
class TextTable {
 public:
  /// Sets the header row; column count is fixed from here on.
  void header(std::vector<std::string> cells);

  /// Appends a data row; must match the header's column count.
  void row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

}  // namespace lmre
