#pragma once

// Minimal command-line flag parser for the example binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms.
// Unknown flags raise InvalidArgument so examples fail loudly on typos.

#include <map>
#include <string>
#include <vector>

#include "support/checked.h"

namespace lmre {

class Cli {
 public:
  /// Declares an integer flag with a default value and help text.
  void flag_int(const std::string& name, Int default_value, const std::string& help);

  /// Declares a boolean flag (false unless passed) with help text.
  void flag_bool(const std::string& name, const std::string& help);

  /// Declares a string flag with a default value and help text.
  void flag_string(const std::string& name, const std::string& default_value,
                   const std::string& help);

  /// Parses argv; returns false (after printing usage) when --help is given.
  bool parse(int argc, char** argv);

  Int get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Renders the usage/help text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kBool, kString };
  struct Flag {
    Kind kind;
    std::string value;  // textual form; parsed on access
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;

  const Flag& find(const std::string& name, Kind kind) const;
};

}  // namespace lmre
