#pragma once

// Error hierarchy for the lmre library.
//
// All lmre components report failure by throwing one of these exception
// types.  The hierarchy distinguishes caller mistakes (InvalidArgument),
// arithmetic that would silently wrap (OverflowError), inputs outside the
// analyzable fragment (UnsupportedError), and internal invariant violations
// (InternalError).

#include <stdexcept>
#include <string>

namespace lmre {

/// Root of the lmre exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller passed an argument violating a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An exact integer computation would overflow the working type.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// The input program is outside the affine fragment the analysis handles.
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated (a bug in lmre itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `what` when `cond` is false.
void require(bool cond, const std::string& what);

/// Throws InternalError with `what` when `cond` is false.
void ensure(bool cond, const std::string& what);

/// Process exit codes shared by every lmre tool entry point (the CLI
/// subcommands, run_cli, and the batch session).  The numeric values are a
/// stable part of the CLI contract -- scripts match on them -- and are
/// asserted by cli_tool_test.
enum class ExitCode : int {
  kSuccess = 0,      ///< success / lint clean
  kFailure = 1,      ///< command failure (unreadable file, unsupported shape)
  kUsage = 2,        ///< usage error (bad flags or arguments)
  kDiagnostics = 3,  ///< input rejected with diagnostics (parse/lint errors)
  kOverflow = 4,     ///< arithmetic outside 64-bit range (OverflowError)
};

/// The process exit status for `c` (the enum's underlying value).
constexpr int to_int(ExitCode c) { return static_cast<int>(c); }

/// One row of the exit-code registry: the code, its stable name, and the
/// one-line meaning the CLI usage text prints.
struct ExitCodeInfo {
  ExitCode code;
  const char* name;
  const char* meaning;
};

/// Single source of truth for every exit code.  to_string(ExitCode), the
/// CLI usage table and the wire-status mapping all derive from this list;
/// registry_test pins it against the enum so a new code cannot be added
/// to one surface and silently missed in another.
inline constexpr ExitCodeInfo kExitCodes[] = {
    {ExitCode::kSuccess, "success", "success / lint clean / plan certified"},
    {ExitCode::kFailure, "failure",
     "command failed (unreadable file, unsupported shape, miscompare)"},
    {ExitCode::kUsage, "usage", "usage error (bad flags or arguments)"},
    {ExitCode::kDiagnostics, "diagnostics",
     "input rejected with diagnostics (parse/lint/verify errors)"},
    {ExitCode::kOverflow, "overflow",
     "arithmetic outside the exact 64-bit range"},
};

inline constexpr size_t kExitCodeCount =
    sizeof(kExitCodes) / sizeof(kExitCodes[0]);

/// Stable lower-case name, e.g. "success", "diagnostics" (registry row).
const char* to_string(ExitCode c);

}  // namespace lmre
