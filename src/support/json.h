#pragma once

// A minimal JSON value tree + serializer for machine-readable tool output.
//
// Build values with the static constructors and chained setters, then
// dump().  Strings are escaped per RFC 8259; numbers are emitted as 64-bit
// integers or shortest-round-trip doubles.  No parser -- lmre only ever
// EMITS JSON.

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/checked.h"

namespace lmre {

class Json {
 public:
  /// null
  Json() : value_(nullptr) {}

  static Json object();
  static Json array();
  static Json string(std::string s);
  static Json number(Int v);
  static Json number(double v);
  static Json boolean(bool v);

  /// Pre-serialized JSON spliced verbatim into the output at dump time.
  /// The caller guarantees `json_text` is a well-formed JSON value; it is
  /// emitted exactly as given (no re-indenting).  This is how the batch
  /// runtime embeds cached result payloads without a JSON parser.
  static Json raw(std::string json_text);

  bool is_object() const;
  bool is_array() const;

  /// Object setter (creates/overwrites); returns *this for chaining.
  Json& set(const std::string& key, Json v);
  Json& set(const std::string& key, const std::string& v);
  Json& set(const std::string& key, const char* v);
  Json& set(const std::string& key, Int v);
  Json& set(const std::string& key, int v) { return set(key, static_cast<Int>(v)); }
  Json& set(const std::string& key, double v);
  Json& set(const std::string& key, bool v);

  /// Array appenders.
  Json& push(Json v);
  Json& push(const std::string& v);
  Json& push(Int v);

  /// Number of object keys / array elements.
  size_t size() const;

  /// Serialization; indent == 0 emits compact single-line JSON.
  std::string dump(int indent = 0) const;

  /// Escapes a string per JSON rules (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  using Object = std::map<std::string, Json>;
  using Array = std::vector<Json>;
  struct Raw {
    std::string text;
  };
  std::variant<std::nullptr_t, bool, Int, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>, Raw>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Version of the envelope every `--json` emitter wraps its payload in.
/// Bump when the envelope itself (not a command's result schema) changes.
/// v2: typed per-kind request options on the serve/batch wire ("options"
/// object replaces the top-level "plan" key) and the "codegen" kind.
inline constexpr Int kJsonSchemaVersion = 2;

/// Oldest request schema the serve/batch wire still accepts.  v1 requests
/// (no "schema_version", or 1, with a top-level "plan") parse unchanged.
inline constexpr Int kJsonSchemaVersionMin = 1;

/// The common machine-readable envelope:
///   {"schema_version": 1, "tool": "lmre", "command": <command>,
///    "result": <result>}
/// Built in one place so every emitter (analyze, lint, optimize, batch,
/// metrics files) stays structurally identical.
Json json_envelope(const std::string& command, Json result);

}  // namespace lmre
