#include "support/error.h"

namespace lmre {

void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

void ensure(bool cond, const std::string& what) {
  if (!cond) throw InternalError(what);
}

const char* to_string(ExitCode c) {
  for (const ExitCodeInfo& info : kExitCodes) {
    if (info.code == c) return info.name;
  }
  return "unknown";
}

}  // namespace lmre
