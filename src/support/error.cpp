#include "support/error.h"

namespace lmre {

void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

void ensure(bool cond, const std::string& what) {
  if (!cond) throw InternalError(what);
}

}  // namespace lmre
