#include "support/error.h"

namespace lmre {

void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

void ensure(bool cond, const std::string& what) {
  if (!cond) throw InternalError(what);
}

const char* to_string(ExitCode c) {
  switch (c) {
    case ExitCode::kSuccess: return "success";
    case ExitCode::kFailure: return "failure";
    case ExitCode::kUsage: return "usage";
    case ExitCode::kDiagnostics: return "diagnostics";
    case ExitCode::kOverflow: return "overflow";
  }
  return "unknown";
}

}  // namespace lmre
