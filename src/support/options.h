#pragma once

// Shared run options for the analysis pipeline.
//
// Historically every stage grew its own knobs: minimize_mws_2d and
// optimize_locality took `MinimizerOptions::threads` plus a
// `verify_iteration_limit`, the exact oracle took a bare `threads` int, and
// the CLI re-plumbed each one separately.  RunOptions is the one struct a
// caller fills once and hands to every stage (directly, or via the
// per-stage overloads in transform/minimizer.h, exact/oracle.h and
// analysis/report.h); runtime/session.h threads it through the whole
// parse -> lint -> estimate -> MWS -> optimize pipeline.
//
// None of these fields may change a stage's *result* except by disabling
// work outright (verify_limit) or tightening acceptance (strict):
// `threads` is bit-identity-preserving everywhere (DESIGN.md,
// "Determinism contract"), which is why the result cache excludes it from
// its content hash.

#include "support/checked.h"

namespace lmre {

struct RunOptions {
  /// Worker threads for every parallel stage: 0 = hardware concurrency,
  /// 1 = the serial legacy path, n = at most n workers.  Never affects
  /// results, only wall-clock time.
  int threads = 1;

  /// Iteration budget for exact (enumerating) analyses: the oracle runs
  /// only when the nest's iteration count -- or a candidate's transformed
  /// scan volume -- stays within this.  Matches the historical
  /// MinimizerOptions::verify_iteration_limit default.
  Int verify_limit = 2'000'000;

  /// Treat lint warnings like errors (the CLI's --strict).
  bool strict = false;
};

}  // namespace lmre
