#include "support/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/error.h"
#include "support/text.h"

namespace lmre {

void Cli::flag_int(const std::string& name, Int default_value, const std::string& help) {
  require(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{Kind::kInt, std::to_string(default_value), help};
  order_.push_back(name);
}

void Cli::flag_bool(const std::string& name, const std::string& help) {
  require(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{Kind::kBool, "0", help};
  order_.push_back(name);
}

void Cli::flag_string(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  require(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{Kind::kString, default_value, help};
  order_.push_back(name);
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    require(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    require(it != flags_.end(), "unknown flag --" + arg);
    if (it->second.kind == Kind::kBool) {
      it->second.value = has_value ? value : "1";
    } else {
      if (!has_value) {
        require(i + 1 < argc, "flag --" + arg + " needs a value");
        value = argv[++i];
      }
      it->second.value = value;
    }
  }
  return true;
}

const Cli::Flag& Cli::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  require(it != flags_.end(), "undeclared flag --" + name);
  require(it->second.kind == kind, "flag --" + name + " accessed with wrong type");
  return it->second;
}

Int Cli::get_int(const std::string& name) const {
  const Flag& f = find(name, Kind::kInt);
  return static_cast<Int>(std::strtoll(f.value.c_str(), nullptr, 10));
}

bool Cli::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "1";
}

const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  " << pad_right("--" + name, 20) << f.help;
    if (f.kind != Kind::kBool) os << " (default: " << f.value << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace lmre
