#include "support/checked.h"

#include <limits>

#include "support/error.h"

namespace lmre {

Int checked_add(Int a, Int b) {
  Int r;
  if (__builtin_add_overflow(a, b, &r)) throw OverflowError("checked_add overflow");
  return r;
}

Int checked_sub(Int a, Int b) {
  Int r;
  if (__builtin_sub_overflow(a, b, &r)) throw OverflowError("checked_sub overflow");
  return r;
}

Int checked_mul(Int a, Int b) {
  Int r;
  if (__builtin_mul_overflow(a, b, &r)) throw OverflowError("checked_mul overflow");
  return r;
}

Int checked_neg(Int a) {
  if (a == std::numeric_limits<Int>::min()) throw OverflowError("checked_neg overflow");
  return -a;
}

Int checked_abs(Int a) { return a < 0 ? checked_neg(a) : a; }

Int gcd(Int a, Int b) {
  a = checked_abs(a);
  b = checked_abs(b);
  while (b != 0) {
    Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  Int g = gcd(a, b);
  return checked_mul(checked_abs(a) / g, checked_abs(b));
}

Int extended_gcd(Int a, Int b, Int& x, Int& y) {
  // Iterative extended Euclid on absolute values, signs fixed afterwards.
  Int old_r = a, r = b;
  Int old_x = 1, cur_x = 0;
  Int old_y = 0, cur_y = 1;
  while (r != 0) {
    Int q = old_r / r;
    Int t;
    t = checked_sub(old_r, checked_mul(q, r)); old_r = r; r = t;
    t = checked_sub(old_x, checked_mul(q, cur_x)); old_x = cur_x; cur_x = t;
    t = checked_sub(old_y, checked_mul(q, cur_y)); old_y = cur_y; cur_y = t;
  }
  if (old_r < 0) {
    old_r = checked_neg(old_r);
    old_x = checked_neg(old_x);
    old_y = checked_neg(old_y);
  }
  x = old_x;
  y = old_y;
  return old_r;
}

Int floor_div(Int a, Int b) {
  require(b != 0, "floor_div by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

Int ceil_div(Int a, Int b) {
  require(b != 0, "ceil_div by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

Int mod_floor(Int a, Int b) {
  require(b != 0, "mod_floor by zero");
  Int m = a % b;
  if (m < 0) m = checked_add(m, checked_abs(b));
  return m;
}

int sign(Int a) { return a < 0 ? -1 : (a > 0 ? 1 : 0); }

}  // namespace lmre
