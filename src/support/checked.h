#pragma once

// Overflow-checked 64-bit integer arithmetic.
//
// Every exact computation in lmre (determinants, normal forms, window-size
// formulas) goes through these helpers so that overflow raises
// OverflowError instead of silently wrapping.

#include <cstdint>

namespace lmre {

/// Scalar type used throughout lmre for exact integer arithmetic.
using Int = std::int64_t;

/// Returns a + b, throwing OverflowError when the sum does not fit in Int.
Int checked_add(Int a, Int b);

/// Returns a - b, throwing OverflowError when the difference does not fit.
Int checked_sub(Int a, Int b);

/// Returns a * b, throwing OverflowError when the product does not fit.
Int checked_mul(Int a, Int b);

/// Returns -a, throwing OverflowError for the INT64_MIN corner case.
Int checked_neg(Int a);

/// Returns |a|, throwing OverflowError for the INT64_MIN corner case.
Int checked_abs(Int a);

/// Greatest common divisor; gcd(0,0) == 0, result is non-negative.
Int gcd(Int a, Int b);

/// Least common multiple (non-negative); throws OverflowError if it
/// does not fit in Int.  lcm(0, x) == 0.
Int lcm(Int a, Int b);

/// Extended Euclid: returns g = gcd(a,b) >= 0 and sets x, y so that
/// a*x + b*y == g.
Int extended_gcd(Int a, Int b, Int& x, Int& y);

/// Floor division: largest q with q*b <= a.  b must be nonzero.
Int floor_div(Int a, Int b);

/// Ceiling division: smallest q with q*b >= a.  b must be nonzero.
Int ceil_div(Int a, Int b);

/// Euclidean modulus: the residue of a modulo |b|, always in [0, |b|).
Int mod_floor(Int a, Int b);

/// Sign of a: -1, 0, or +1.
int sign(Int a);

}  // namespace lmre
