#include "support/text.h"

#include <algorithm>
#include <cstdio>

#include "support/error.h"

namespace lmre {

std::string repeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

std::string pad_left(const std::string& s, int width) {
  if (static_cast<int>(s.size()) >= width) return s;
  return std::string(static_cast<size_t>(width) - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, int width) {
  if (static_cast<int>(s.size()) >= width) return s;
  return s + std::string(static_cast<size_t>(width) - s.size(), ' ');
}

std::string with_commas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
  return buf;
}

void TextTable::header(std::vector<std::string> cells) {
  require(rows_.empty(), "TextTable::header must be called first");
  rows_.push_back(std::move(cells));
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  if (!rows_.empty()) {
    require(cells.size() == rows_.front().size(),
            "TextTable::row column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  if (rows_.empty()) return "";
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  std::ostringstream os;
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t c = 0; c < rows_[i].size(); ++c) {
      os << pad_right(rows_[i][c], static_cast<int>(widths[c]));
      if (c + 1 != rows_[i].size()) os << "  ";
    }
    os << '\n';
    if (i == 0 && has_header_) {
      for (size_t c = 0; c < widths.size(); ++c) {
        os << std::string(widths[c], '-');
        if (c + 1 != widths.size()) os << "  ";
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace lmre
