#pragma once

// Bounded threading layer with deterministic ordered reduction.
//
// Every parallel sweep in lmre (candidate-row scoring, oracle re-scoring,
// slab-chunked simulation) is built on parallel_chunks(): the index range
// [0, n) is split into contiguous chunks, each chunk runs on a pool worker,
// and callers reduce per-chunk results *in chunk order*.  Because a chunk is
// a contiguous slice of the serial iteration order, a left-to-right merge of
// chunk-local results reproduces the serial scan bit for bit -- see the
// "Determinism contract" section of DESIGN.md.
//
// threads semantics everywhere in lmre:
//   0  -> std::thread::hardware_concurrency()
//   1  -> serial legacy path (no pool, no chunking; byte-identical code path)
//   n  -> at most n workers

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/checked.h"

namespace lmre {

/// Resolves a user-facing thread count: 0 means hardware concurrency
/// (at least 1), anything else is clamped to >= 1.
int resolve_threads(int requested);

/// A bounded pool of worker threads draining a FIFO task queue.
/// Tasks must not throw (parallel_chunks wraps user callbacks and captures
/// exceptions); wait() blocks until the queue is empty and all workers idle.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  void wait();
  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;  ///< signalled when work arrives / on stop
  std::condition_variable cv_done_;  ///< signalled when a task finishes
  size_t active_ = 0;
  bool stop_ = false;
};

/// Chunk callback: receives the chunk index and the half-open index range
/// [begin, end) it owns.  Chunk 0 owns the lowest indices; chunks partition
/// [0, n) in order, so per-chunk results merged by ascending chunk index
/// reduce exactly like the serial left-to-right scan.
using ChunkFn = std::function<void(size_t chunk, Int begin, Int end)>;

/// Runs `fn` over [0, n) split into contiguous chunks on at most
/// resolve_threads(threads) workers.  Chunks hold at least `grain` indices;
/// when the range is too small to split (or threads resolves to 1) the
/// single chunk runs inline on the caller's thread -- the serial path.
/// The first exception thrown by the lowest-indexed failing chunk is
/// rethrown on the caller's thread after all chunks finish.
void parallel_chunks(Int n, int threads, Int grain, const ChunkFn& fn);

/// Ordered map: results[i] = fn(i) for i in [0, n), computed on the pool.
/// The output order is by index, independent of scheduling; `fn` must be
/// safe to call concurrently on distinct indices.
template <class T, class Fn>
std::vector<T> parallel_map(Int n, int threads, const Fn& fn) {
  std::vector<T> results(static_cast<size_t>(n));
  parallel_chunks(n, threads, /*grain=*/1, [&](size_t, Int begin, Int end) {
    for (Int i = begin; i < end; ++i) {
      results[static_cast<size_t>(i)] = fn(i);
    }
  });
  return results;
}

}  // namespace lmre
