#include "support/parallel_for.h"

#include <algorithm>
#include <exception>

#include "support/error.h"

namespace lmre {

int resolve_threads(int requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(requested, 1);
}

ThreadPool::ThreadPool(int threads) {
  int n = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void parallel_chunks(Int n, int threads, Int grain, const ChunkFn& fn) {
  if (n <= 0) return;
  require(grain >= 1, "parallel_chunks: grain must be >= 1");
  const int workers = resolve_threads(threads);
  // How many chunks the range supports at the requested grain.
  const Int max_chunks = std::max<Int>(n / std::max<Int>(grain, 1), 1);
  const int chunks = static_cast<int>(std::min<Int>(workers, max_chunks));
  if (chunks <= 1) {
    fn(0, 0, n);  // serial path: caller's thread, no pool
    return;
  }

  // Contiguous partition of [0, n): chunk c owns [c*n/chunks, (c+1)*n/chunks).
  std::vector<std::exception_ptr> errors(static_cast<size_t>(chunks));
  ThreadPool pool(chunks);
  for (int c = 0; c < chunks; ++c) {
    const Int begin = n * c / chunks;
    const Int end = n * (c + 1) / chunks;
    pool.submit([&fn, &errors, c, begin, end] {
      try {
        fn(static_cast<size_t>(c), begin, end);
      } catch (...) {
        errors[static_cast<size_t>(c)] = std::current_exception();
      }
    });
  }
  pool.wait();
  // Deterministic propagation: the lowest-indexed failure wins, mirroring
  // where the serial scan would have thrown first.
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace lmre
