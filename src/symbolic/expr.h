#pragma once

// Clamped-product symbolic expressions.
//
// The trace oracle (src/exact) counts distinct accesses, reuse, and window
// sizes over a *finite* iteration box, so every closed form that claims to
// match it must reproduce the clamping the box imposes: a reuse volume
// prod_k (N_k - |d_k|) is zero -- not negative -- once any |d_k| >= N_k.
// A plain polynomial cannot express that, which is why the exact symbolic
// path is built on sums of *clamped products*
//
//     expr  =  sum_t  c_t * prod_f  clamp(N_{var(f)} - sub(f))
//
// where clamp(x) = max(x, 0) for ordinary factors and min(max(x, 0), 1)
// for indicator factors (rendered "[Nk > s]").  In the interior of the
// bound space (all factors positive) an expression IS the paper's
// polynomial; interior() drops the clamps and returns that Poly for
// display and JSON.  eval() keeps the clamps and is exact everywhere,
// using checked 64-bit arithmetic throughout.

#include <map>
#include <string>
#include <vector>

#include "analysis/symbolic.h"
#include "support/checked.h"
#include "support/json.h"

namespace lmre {

/// One factor of a clamped product over the symbolic bounds N1..Nn.
/// Ordinary factor: max(N_{var+1} - sub, 0).  Indicator factor:
/// min(max(N_{var+1} - sub, 0), 1), i.e. the Iverson bracket
/// [N_{var+1} > sub].
struct SymbolicFactor {
  size_t var = 0;          ///< 0-based bound index (variable N_{var+1})
  Int sub = 0;             ///< subtracted constant
  bool indicator = false;  ///< cap the clamped value at 1

  friend bool operator==(const SymbolicFactor& a, const SymbolicFactor& b) {
    return a.var == b.var && a.sub == b.sub && a.indicator == b.indicator;
  }
  friend bool operator<(const SymbolicFactor& a, const SymbolicFactor& b) {
    if (a.var != b.var) return a.var < b.var;
    if (a.sub != b.sub) return a.sub < b.sub;
    return a.indicator < b.indicator;
  }
};

/// Sum of coefficient-weighted clamped products.  Canonical form: factors
/// within a term are sorted, redundant indicators are dropped (an
/// indicator [Nk > s] is implied by any ordinary factor (Nk - s') with
/// s' >= s in the same term, since the term vanishes anyway when that
/// factor clamps to zero), like terms are merged, and zero terms removed,
/// so structural equality (==) is semantic equality of canonical forms.
class SymbolicExpr {
 public:
  explicit SymbolicExpr(size_t vars) : vars_(vars) {}

  static SymbolicExpr constant(size_t vars, Int c);
  /// prod_k max(N_k - subs[k], 0), scaled by coef.
  static SymbolicExpr clamped_product(const std::vector<Int>& subs, Int coef = 1);

  size_t vars() const { return vars_; }
  bool is_zero() const { return terms_.empty(); }

  /// Adds coef * prod(factors) to the sum (canonicalizing the factors).
  void add_term(Int coef, std::vector<SymbolicFactor> factors);

  SymbolicExpr& operator+=(const SymbolicExpr& o);
  SymbolicExpr operator+(const SymbolicExpr& o) const;
  SymbolicExpr operator-(const SymbolicExpr& o) const;
  SymbolicExpr operator*(Int s) const;
  bool operator==(const SymbolicExpr& o) const {
    return vars_ == o.vars_ && terms_ == o.terms_;
  }

  /// Exact evaluation at concrete bounds (one value per variable), with
  /// per-factor clamping and checked arithmetic.
  Int eval(const std::vector<Int>& bounds) const;

  /// The interior polynomial: clamps dropped, indicators replaced by 1.
  /// Valid wherever every ordinary factor is positive and every indicator
  /// holds -- i.e. for bounds comfortably larger than the distances.
  Poly interior() const;

  /// Factored rendering, e.g. "3*N2*(N3 - 2)*[N1 > 1] + 2".  Parenthesized
  /// factors are implicitly clamped at zero (see file comment).
  std::string str() const;

  /// {"rendered": str(), "polynomial": interior().str(), "terms": [...]}
  /// where terms lists the interior polynomial's {coef, exps} pairs.
  Json to_json() const;

 private:
  // canonical factor list -> coefficient; zero coefficients never stored.
  std::map<std::vector<SymbolicFactor>, Int> terms_;
  size_t vars_;
};

/// Exact symbolic maximum window size of a single reuse chain: the
/// pointwise minimum of a short list of clamped-product sums (one branch
/// per prefix of the chain's positive components; see
/// symbolic_chain_window in derive.h for the derivation).  The *last*
/// branch is the paper's Section 4.3 summation; the earlier branches cap
/// it by partial box volumes so the minimum is exact even when some
/// |d_k| >= N_k.
class SymbolicWindow {
 public:
  static SymbolicWindow zero(size_t vars);
  explicit SymbolicWindow(SymbolicExpr first) { branches_.push_back(std::move(first)); }

  void add_branch(SymbolicExpr e);
  const std::vector<SymbolicExpr>& branches() const { return branches_; }
  size_t vars() const { return branches_.front().vars(); }
  bool is_zero() const;

  /// min over branch evaluations (exact, checked).
  Int eval(const std::vector<Int>& bounds) const;

  /// Interior polynomial of the final (summation) branch.
  Poly interior() const;

  /// "min(a, b, ...)", or the single branch's rendering.
  std::string str() const;

  /// Like SymbolicExpr::to_json, plus "branches": [rendered, ...].
  Json to_json() const;

 private:
  std::vector<SymbolicExpr> branches_;
};

}  // namespace lmre
