#include "symbolic/derive.h"

#include <algorithm>
#include <sstream>

#include "analysis/window.h"
#include "linalg/diophantine.h"
#include "linalg/kernel.h"
#include "support/error.h"

namespace lmre {

namespace {

// Inclusion-exclusion enumerates 2^r subsets per overlap class; past this
// many distinct offsets the closed form is still exact but no longer
// cheap-to-derive, so the engine declines instead.
constexpr size_t kMaxSymbolicRefs = 12;

// How window-carrying distances compose through a transform plan: for a
// signed permutation, distances map through `t` and loop level k of the
// transformed nest iterates the original bound variable axes[k].
struct WindowPlan {
  const IntMat* t = nullptr;     // null: identity (untransformed)
  std::vector<size_t> axes;      // level -> bound variable
  bool exact = true;             // false: general plan, windows decline
};

std::vector<size_t> identity_axes(size_t n) {
  std::vector<size_t> axes(n);
  for (size_t k = 0; k < n; ++k) axes[k] = k;
  return axes;
}

SymbolicExpr full_volume(size_t n, Int scale) {
  return SymbolicExpr::clamped_product(std::vector<Int>(n, 0), scale);
}

// prod_k max(N_k - |d_k|, 0): the exact number of iteration pairs
// (J, J + d) with both endpoints in the bounds box.
SymbolicExpr reuse_volume_expr(const IntVec& d) {
  std::vector<Int> subs(d.size());
  for (size_t k = 0; k < d.size(); ++k) subs[k] = checked_abs(d[k]);
  return SymbolicExpr::clamped_product(subs);
}

IntVec lex_abs(const IntVec& d) { return d.lex_positive() ? d : -d; }

// References to one array grouped by lattice reachability: two offsets land
// in the same class when their difference is in the image lattice of the
// (injective) access matrix, i.e. the refs can touch common elements.
struct OverlapClass {
  IntVec base_offset;
  std::vector<IntVec> shifts;  // iteration-space shift of each member
};

std::vector<OverlapClass> overlap_classes(const IntMat& access,
                                          const std::vector<IntVec>& offsets) {
  std::vector<OverlapClass> classes;
  for (const IntVec& off : offsets) {
    bool placed = false;
    for (OverlapClass& cls : classes) {
      if (auto sol = solve_diophantine(access, off - cls.base_offset)) {
        cls.shifts.push_back(sol->particular);
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({off, {IntVec(access.cols())}});
  }
  return classes;
}

// Exact distinct count of an injective uniformly generated group by
// inclusion-exclusion: classes have disjoint images, and within a class
// the S-fold image intersection is a box of side max(N_k - width_k, 0).
SymbolicExpr distinct_inclusion_exclusion(size_t n,
                                          const std::vector<OverlapClass>& classes) {
  SymbolicExpr out(n);
  for (const OverlapClass& cls : classes) {
    const size_t m = cls.shifts.size();
    for (size_t mask = 1; mask < (size_t{1} << m); ++mask) {
      std::vector<Int> width(n, 0);
      std::vector<Int> lo, hi;
      int members = 0;
      for (size_t i = 0; i < m; ++i) {
        if (!(mask & (size_t{1} << i))) continue;
        const IntVec& s = cls.shifts[i];
        if (members == 0) {
          lo.assign(n, 0);
          hi.assign(n, 0);
          for (size_t k = 0; k < n; ++k) lo[k] = hi[k] = s[k];
        } else {
          for (size_t k = 0; k < n; ++k) {
            lo[k] = std::min(lo[k], s[k]);
            hi[k] = std::max(hi[k], s[k]);
          }
        }
        ++members;
      }
      for (size_t k = 0; k < n; ++k) width[k] = checked_sub(hi[k], lo[k]);
      out += SymbolicExpr::clamped_product(width, members % 2 == 1 ? 1 : -1);
    }
  }
  return out;
}

SymbolicWindow chain_window_under_plan(const IntVec& d, size_t vars,
                                       const WindowPlan& plan) {
  if (plan.t == nullptr) return symbolic_chain_window(d, vars, plan.axes);
  return symbolic_chain_window(*plan.t * d, vars, plan.axes);
}

SymbolicArrayResult derive_array(const LoopNest& nest, ArrayId id,
                                 const WindowPlan& plan) {
  const size_t n = nest.depth();
  SymbolicArrayResult out;
  out.id = id;
  out.name = nest.array(id).name;
  std::vector<ArrayRef> refs = nest.refs_to(id);
  out.ref_count = static_cast<Int>(refs.size());

  for (const ArrayRef& r : refs) {
    if (!r.uniformly_generated_with(refs.front())) {
      out.notes.push_back("references are not uniformly generated");
      return out;
    }
  }
  const IntMat& access = refs.front().access;

  // Duplicate offsets touch the same element at the same iteration; they
  // add accesses (hence reuse) but change neither the distinct set nor the
  // per-iteration liveness picture.
  std::vector<IntVec> offsets;
  for (const ArrayRef& r : refs) {
    if (std::find(offsets.begin(), offsets.end(), r.offset) == offsets.end()) {
      offsets.push_back(r.offset);
    }
  }

  const std::vector<IntVec> kernel = integer_kernel_basis(access);

  if (kernel.empty()) {
    // Injective access: every element is touched by at most one iteration
    // per reference.
    std::vector<OverlapClass> classes = overlap_classes(access, offsets);
    if (offsets.size() <= kMaxSymbolicRefs) {
      SymbolicExpr distinct = distinct_inclusion_exclusion(n, classes);
      out.reuse = full_volume(n, out.ref_count) - distinct;
      out.distinct = std::move(distinct);
    } else {
      out.notes.push_back("more than " + std::to_string(kMaxSymbolicRefs) +
                          " distinct references (inclusion-exclusion declined)");
    }

    std::vector<IntVec> pair_distances;
    for (const OverlapClass& cls : classes) {
      if (cls.shifts.size() < 2) continue;
      IntVec anchor = cls.shifts.front();
      for (const IntVec& s : cls.shifts) {
        if (anchor.lex_less(s)) anchor = s;
      }
      for (const IntVec& s : cls.shifts) {
        if (s == anchor) continue;
        IntVec d = anchor - s;
        out.dependences.push_back({d, reuse_volume_expr(d)});
        pair_distances.push_back(d);
      }
    }

    // Window: elements of a size-2 class live exactly from their first to
    // their second touch, a single chain of length one; singleton classes
    // never stay live across iterations.  Three or more overlapping refs
    // (or several reusing pairs) produce piecewise first/last-touch
    // regions with no product form.
    if (pair_distances.empty()) {
      out.window = SymbolicWindow::zero(n);
    } else if (pair_distances.size() == 1 &&
               std::all_of(classes.begin(), classes.end(),
                           [](const OverlapClass& c) { return c.shifts.size() <= 2; })) {
      if (plan.exact) {
        out.window = chain_window_under_plan(pair_distances.front(), n, plan);
      } else {
        out.notes.push_back("window under a non-permutation plan (estimate only)");
      }
    } else {
      out.notes.push_back("overlapping reuse from " +
                          std::to_string(pair_distances.size()) +
                          " reference pairs (window declined)");
    }
  } else if (kernel.size() == 1) {
    const IntVec g = lex_abs(kernel.front());
    out.dependences.push_back({g, reuse_volume_expr(g)});
    if (offsets.size() == 1) {
      // Section 3.2: every element's touches form one chain along g.
      SymbolicExpr distinct = full_volume(n, 1) - reuse_volume_expr(g);
      out.reuse = full_volume(n, out.ref_count) - distinct;
      out.distinct = std::move(distinct);
      if (plan.exact) {
        out.window = chain_window_under_plan(g, n, plan);
      } else {
        out.notes.push_back("window under a non-permutation plan (estimate only)");
      }
    } else {
      out.notes.push_back(
          "multiple offsets reuse along a nontrivial kernel "
          "(Frobenius-like overlap; no closed form)");
    }
  } else {
    out.notes.push_back("kernel dimension " + std::to_string(kernel.size()) +
                        " >= 2 (reuse spans a lattice; no closed form)");
  }
  return out;
}

SymbolicResult analyze_under_plan(const LoopNest& nest, const WindowPlan& plan) {
  const size_t n = nest.depth();
  SymbolicResult res;
  res.vars = n;
  for (size_t k = 0; k < n; ++k) res.bound_names.push_back("N" + std::to_string(k + 1));
  for (size_t k = 0; k < n; ++k) res.bound_values.push_back(nest.bounds().range(k).trip_count());

  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    res.arrays.push_back(derive_array(nest, id, plan));
  }

  // Totals.  Distinct/reuse sum over arrays (element sets are disjoint).
  bool all_distinct = !res.arrays.empty();
  for (const SymbolicArrayResult& a : res.arrays) {
    if (!a.distinct) all_distinct = false;
  }
  if (all_distinct) {
    SymbolicExpr dist(n), reuse(n);
    for (const SymbolicArrayResult& a : res.arrays) {
      dist += *a.distinct;
      reuse += *a.reuse;
    }
    res.distinct_total = std::move(dist);
    res.reuse_total = std::move(reuse);
  }
  // The oracle's combined window maximizes the SUM of live counts over
  // time, which equals the per-array form only when at most one array is
  // ever live.
  size_t live_arrays = 0;
  bool all_windows = !res.arrays.empty();
  const SymbolicWindow* only = nullptr;
  for (const SymbolicArrayResult& a : res.arrays) {
    if (!a.window) {
      all_windows = false;
    } else if (!a.window->is_zero()) {
      ++live_arrays;
      only = &*a.window;
    }
  }
  if (all_windows && live_arrays <= 1) {
    res.window_total = only ? *only : SymbolicWindow::zero(n);
  }

  DiagnosticEngine diags;
  for (const SymbolicArrayResult& a : res.arrays) {
    for (const std::string& note : a.notes) {
      diags.note("LMRE-N018", "array '" + a.name + "': " + note +
                                  "; the trace oracle remains exact here");
    }
  }
  if (!res.usable()) {
    std::string why = res.arrays.empty() ? "the nest references no arrays"
                                         : "no supported regime applies";
    diags.error("LMRE-E017",
                "symbolic analysis declined: " + why +
                    " (no closed form is emitted rather than a wrong one)");
  }
  res.diagnostics = diags.take();
  return res;
}

}  // namespace

bool SymbolicResult::usable() const {
  for (const SymbolicArrayResult& a : arrays) {
    if (a.distinct || a.window) return true;
  }
  return false;
}

SymbolicWindow symbolic_chain_window(const IntVec& d, size_t vars) {
  return symbolic_chain_window(d, vars, identity_axes(d.size()));
}

SymbolicWindow symbolic_chain_window(const IntVec& d, size_t vars,
                                     const std::vector<size_t>& axes) {
  const size_t n = d.size();
  if (axes.size() != n) throw InvalidArgument("symbolic_chain_window: axes size mismatch");
  if (d.is_zero()) return SymbolicWindow::zero(vars);
  const IntVec dd = lex_abs(d);

  auto factor = [&](size_t j) {
    return SymbolicFactor{axes[j], checked_abs(dd[j]), false};
  };

  // The chain of positive components: consume the leading positive entry
  // of each remaining suffix while that suffix stays lex-positive.
  std::vector<size_t> chain;
  size_t p = dd.first_nonzero();
  while (true) {
    chain.push_back(p);
    size_t q = p + 1;
    while (q < n && dd[q] == 0) ++q;
    if (q == n || dd[q] < 0) break;
    p = q;
  }

  SymbolicWindow win = SymbolicWindow::zero(vars);
  bool first = true;
  for (size_t i = 0; i <= chain.size(); ++i) {
    SymbolicExpr branch(vars);
    for (size_t t = 0; t < i; ++t) {
      std::vector<SymbolicFactor> fs;
      for (size_t j = chain[t] + 1; j < n; ++j) fs.push_back(factor(j));
      branch.add_term(dd[chain[t]], std::move(fs));
    }
    if (i < chain.size()) {
      // Cap: the whole tail volume from this chain position on -- the
      // window cannot see past the box once d_k >= the remaining extent.
      std::vector<SymbolicFactor> fs;
      for (size_t j = chain[i]; j < n; ++j) fs.push_back(factor(j));
      branch.add_term(1, std::move(fs));
    }
    if (first) {
      win = SymbolicWindow(std::move(branch));
      first = false;
    } else {
      win.add_branch(std::move(branch));
    }
  }
  return win;
}

bool is_signed_permutation(const IntMat& t) {
  if (t.rows() != t.cols()) return false;
  const size_t n = t.rows();
  std::vector<int> col_used(n, 0);
  for (size_t r = 0; r < n; ++r) {
    int nonzero = 0;
    for (size_t c = 0; c < n; ++c) {
      Int v = t(r, c);
      if (v == 0) continue;
      if (v != 1 && v != -1) return false;
      ++nonzero;
      ++col_used[c];
    }
    if (nonzero != 1) return false;
  }
  for (size_t c = 0; c < n; ++c) {
    if (col_used[c] != 1) return false;
  }
  return true;
}

SymbolicResult symbolic_analysis(const LoopNest& nest) {
  WindowPlan plan;
  plan.axes = identity_axes(nest.depth());
  return analyze_under_plan(nest, plan);
}

SymbolicResult symbolic_analysis_transformed(const LoopNest& nest, const IntMat& t) {
  const size_t n = nest.depth();
  if (t.rows() != n || t.cols() != n || !t.is_unimodular()) {
    throw InvalidArgument("symbolic_analysis_transformed: plan must be a "
                          "unimodular n x n matrix");
  }
  WindowPlan plan;
  if (is_signed_permutation(t)) {
    plan.t = &t;
    plan.axes.assign(n, 0);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        if (t(r, c) != 0) plan.axes[r] = c;
      }
    }
  } else {
    plan.exact = false;
    plan.axes = identity_axes(n);
  }
  SymbolicResult res = analyze_under_plan(nest, plan);
  res.plan = t;

  if (!plan.exact && n == 2) {
    // The paper's eq. (2) estimate for 2-deep uniformly generated 1-d
    // array references under first row (a, b).
    for (const SymbolicArrayResult& a : res.arrays) {
      const std::vector<ArrayRef> refs = nest.refs_to(a.id);
      if (refs.empty() || refs.front().access.rows() != 1) continue;
      bool uniform = true;
      for (const ArrayRef& r : refs) {
        uniform = uniform && r.uniformly_generated_with(refs.front());
      }
      if (!uniform) continue;
      const IntVec alpha = refs.front().access.row(0);
      const Int ta = t(0, 0), tb = t(0, 1);
      if (ta == 0 && tb == 0) continue;
      const Int w = checked_abs(
          checked_sub(checked_mul(alpha[1], ta), checked_mul(alpha[0], tb)));
      const Rational est = mws2_estimate(alpha, nest.bounds(), ta, tb);
      std::ostringstream os;
      os << "(min(";
      bool wrote = false;
      if (tb != 0) {
        os << "(N1 - 1)/" << checked_abs(tb);
        wrote = true;
      }
      if (ta != 0) {
        if (wrote) os << ", ";
        os << "(N2 - 1)/" << checked_abs(ta);
      }
      os << ") + 1) * " << w << " = " << est.str() << " (estimate)";
      res.window_estimate = os.str();
      break;
    }
  }
  return res;
}

namespace {

Json expr_value_json(const SymbolicExpr& e, const std::vector<Int>& at) {
  Json j = e.to_json();
  j.set("value", e.eval(at));
  return j;
}

Json window_value_json(const SymbolicWindow& w, const std::vector<Int>& at) {
  Json j = w.to_json();
  j.set("value", w.eval(at));
  return j;
}

}  // namespace

Json symbolic_json(const SymbolicResult& r) {
  Json doc = Json::object();
  Json bounds = Json::array();
  for (size_t k = 0; k < r.vars; ++k) {
    bounds.push(Json::object()
                    .set("name", r.bound_names[k])
                    .set("value", r.bound_values[k]));
  }
  doc.set("bounds", std::move(bounds));
  doc.set("usable", r.usable());

  Json arrays = Json::array();
  for (const SymbolicArrayResult& a : r.arrays) {
    Json ja = Json::object();
    ja.set("name", a.name).set("refs", a.ref_count);
    if (a.distinct) ja.set("distinct", expr_value_json(*a.distinct, r.bound_values));
    if (a.reuse) ja.set("reuse", expr_value_json(*a.reuse, r.bound_values));
    if (a.window) ja.set("window", window_value_json(*a.window, r.bound_values));
    Json deps = Json::array();
    for (const SymbolicDependence& d : a.dependences) {
      Json dist = Json::array();
      for (size_t k = 0; k < d.distance.size(); ++k) dist.push(d.distance[k]);
      deps.push(Json::object()
                    .set("distance", std::move(dist))
                    .set("volume", expr_value_json(d.volume, r.bound_values)));
    }
    ja.set("dependences", std::move(deps));
    if (!a.notes.empty()) {
      Json notes = Json::array();
      for (const std::string& note : a.notes) notes.push(note);
      ja.set("notes", std::move(notes));
    }
    arrays.push(std::move(ja));
  }
  doc.set("arrays", std::move(arrays));

  if (r.distinct_total) {
    doc.set("distinct_total", expr_value_json(*r.distinct_total, r.bound_values));
  }
  if (r.reuse_total) {
    doc.set("reuse_total", expr_value_json(*r.reuse_total, r.bound_values));
  }
  if (r.window_total) {
    doc.set("window_total", window_value_json(*r.window_total, r.bound_values));
  }
  if (r.plan) {
    Json rows = Json::array();
    for (size_t i = 0; i < r.plan->rows(); ++i) {
      Json row = Json::array();
      for (size_t j = 0; j < r.plan->cols(); ++j) row.push((*r.plan)(i, j));
      rows.push(std::move(row));
    }
    doc.set("plan", std::move(rows));
  }
  if (r.window_estimate) doc.set("window_estimate", *r.window_estimate);

  Json diags = Json::array();
  for (const Diagnostic& d : r.diagnostics) {
    diags.push(Json::object()
                   .set("id", d.id)
                   .set("severity", to_string(d.severity))
                   .set("message", d.message));
  }
  doc.set("diagnostics", std::move(diags));
  return doc;
}

}  // namespace lmre
