#pragma once

// Closed-form symbolic analysis of uniform-dependence nests.
//
// Derives distinct-access counts, per-dependence reuse volumes, and maximum
// window sizes as clamped-product expressions in the symbolic bounds
// N1..Nn, exactly equal to the trace oracle (src/exact) wherever a formula
// is emitted.  The derivation is bound-independent: the same SymbolicResult
// answers every instantiation of the nest's bounds, which is what makes
// O(1) answers for huge problem sizes possible.
//
// Supported regimes (per referenced array, after deduplicating references
// with identical offsets):
//
//   * injective access matrix (trivial integer kernel): distinct counts by
//     inclusion-exclusion over the lattice-reachable offset classes; the
//     window is exact for at most one reusing pair (a single shift d).
//   * one-dimensional kernel, single reference: the paper's Section 3.2
//     kernel form for distinct counts and the exact chain window along the
//     kernel generator.
//
// Anything else -- non-uniformly generated references, kernels of dimension
// >= 2, multi-reference kernel reuse (the Frobenius-like Example 8 shape),
// three-way overlapping windows -- is *declined* with a stable diagnostic
// (LMRE-E017 when the whole nest yields nothing, LMRE-N018 notes for
// per-quantity gaps) instead of risking a wrong formula; callers fall back
// to the trace oracle.
//
// Transform plans: distinct/reuse formulas survive any unimodular
// reordering unchanged (the iteration set is permuted, not altered).
// Windows compose exactly through signed-permutation plans (d' = T d with
// permuted bound variables); for general 2-D unimodular plans the paper's
// eq. (2) estimate is rendered instead, clearly marked as an estimate.

#include <optional>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "ir/nest.h"
#include "symbolic/expr.h"

namespace lmre {

/// One reuse-carrying dependence of an array: a constant distance and the
/// paper's Section 2.2 reuse volume prod_k max(N_k - |d_k|, 0), i.e. the
/// exact number of iteration pairs (J, J + distance) inside the box.
struct SymbolicDependence {
  IntVec distance;
  SymbolicExpr volume;
};

/// Symbolic formulas for a single referenced array.  Absent optionals are
/// declined quantities; `notes` records why, one entry per gap.
struct SymbolicArrayResult {
  ArrayId id = 0;
  std::string name;
  Int ref_count = 0;  ///< references per iteration (duplicates included)

  std::optional<SymbolicExpr> distinct;  ///< == oracle distinct[id]
  std::optional<SymbolicExpr> reuse;     ///< == oracle reuse[id]
  std::optional<SymbolicWindow> window;  ///< == oracle mws[id]
  std::vector<SymbolicDependence> dependences;
  std::vector<std::string> notes;
};

/// Whole-nest symbolic analysis: per-array formulas, derived totals, and
/// the decline diagnostics.  Totals are emitted only when exact: distinct
/// and reuse totals need every array covered; the window total needs at
/// most one array with a nonzero window (the oracle maximizes the *sum* of
/// live counts over time, which only collapses to per-array form then).
struct SymbolicResult {
  size_t vars = 0;                      ///< nest depth n
  std::vector<std::string> bound_names; ///< "N1".."Nn"
  std::vector<Int> bound_values;        ///< the nest's own trip counts

  std::vector<SymbolicArrayResult> arrays;
  std::optional<SymbolicExpr> distinct_total;
  std::optional<SymbolicExpr> reuse_total;
  std::optional<SymbolicWindow> window_total;

  /// Transform plan the result was composed through (absent: identity).
  std::optional<IntMat> plan;
  /// For general 2-D unimodular plans: the paper's eq. (2) window estimate
  /// as a rendered formula (NOT differential-tested; marked "estimate").
  std::optional<std::string> window_estimate;

  std::vector<Diagnostic> diagnostics;

  /// True when at least one distinct or window formula was derived.
  bool usable() const;
};

/// Exact symbolic maximum window size of a single reuse chain with
/// constant distance d (normalized lex-positive internally): the pointwise
/// minimum over prefix branches
///     min_i ( sum_{t<i} d_{k_t} * prod_{j>k_t} M_j  +  prod_{j>=k_i} M_j )
/// with M_j = max(N_j - |d_j|, 0) and k_1 < k_2 < ... the chain of
/// positive components reached before the remaining suffix turns
/// lex-negative.  The final branch (the full sum) is the paper's Section
/// 4.3 formula; the earlier volume-capped branches make the minimum exact
/// at clamping edges (|d_k| >= N_k and window-wider-than-box cases).
/// `axes[k]` maps loop level k to the bound variable the formulas are
/// written in (identity when omitted) -- this is how signed-permutation
/// plans compose.
SymbolicWindow symbolic_chain_window(const IntVec& d, size_t vars);
SymbolicWindow symbolic_chain_window(const IntVec& d, size_t vars,
                                     const std::vector<size_t>& axes);

/// True when t is a signed permutation matrix (exactly one +-1 per row and
/// column): the class of transforms window formulas compose through.
bool is_signed_permutation(const IntMat& t);

/// Symbolic analysis of the nest as written.
SymbolicResult symbolic_analysis(const LoopNest& nest);

/// Symbolic analysis of the nest under unimodular transform plan t.
/// Distinct/reuse formulas are plan-invariant; windows are exact for
/// signed permutations and reported as the eq. (2) estimate for general
/// 2-D plans.  Throws InvalidArgument when t is not unimodular n x n.
SymbolicResult symbolic_analysis_transformed(const LoopNest& nest, const IntMat& t);

/// JSON document for a SymbolicResult: bounds, per-array formulas
/// (rendered string + interior polynomial terms), totals, evaluated values
/// at the nest's own bounds, and the decline diagnostics.
Json symbolic_json(const SymbolicResult& r);

}  // namespace lmre
