#include "symbolic/expr.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace lmre {

namespace {

// Canonicalizes a factor list in place: sort, dedupe repeated indicators,
// and drop indicators implied by an ordinary factor on the same variable
// with an equal or larger subtrahend (if that factor clamps to zero the
// whole term is zero regardless of the indicator; if it is positive the
// indicator is 1).  Indicators with sub <= 0 are dropped outright: trip
// counts are >= 1, so [Nk > s] with s <= 0 always holds.
void canonicalize(std::vector<SymbolicFactor>& fs) {
  std::sort(fs.begin(), fs.end());
  std::vector<SymbolicFactor> out;
  out.reserve(fs.size());
  for (size_t i = 0; i < fs.size(); ++i) {
    const SymbolicFactor& f = fs[i];
    if (f.indicator) {
      if (f.sub <= 0) continue;
      if (!out.empty() && out.back() == f) continue;  // duplicate indicator
      bool implied = false;
      for (const SymbolicFactor& g : fs) {
        if (!g.indicator && g.var == f.var && g.sub >= f.sub) {
          implied = true;
          break;
        }
      }
      if (implied) continue;
    }
    out.push_back(f);
  }
  fs = std::move(out);
}

Int factor_value(const SymbolicFactor& f, const std::vector<Int>& bounds) {
  Int v = checked_sub(bounds[f.var], f.sub);
  if (v < 0) v = 0;
  if (f.indicator && v > 1) v = 1;
  return v;
}

std::string factor_str(const SymbolicFactor& f) {
  std::ostringstream os;
  std::string name = "N" + std::to_string(f.var + 1);
  if (f.indicator) {
    os << '[' << name << " > " << f.sub << ']';
  } else if (f.sub == 0) {
    os << name;
  } else if (f.sub > 0) {
    os << '(' << name << " - " << f.sub << ')';
  } else {
    os << '(' << name << " + " << checked_neg(f.sub) << ')';
  }
  return os.str();
}

}  // namespace

SymbolicExpr SymbolicExpr::constant(size_t vars, Int c) {
  SymbolicExpr e(vars);
  e.add_term(c, {});
  return e;
}

SymbolicExpr SymbolicExpr::clamped_product(const std::vector<Int>& subs, Int coef) {
  SymbolicExpr e(subs.size());
  std::vector<SymbolicFactor> fs;
  fs.reserve(subs.size());
  for (size_t k = 0; k < subs.size(); ++k) fs.push_back({k, subs[k], false});
  e.add_term(coef, std::move(fs));
  return e;
}

void SymbolicExpr::add_term(Int coef, std::vector<SymbolicFactor> factors) {
  if (coef == 0) return;
  for (const SymbolicFactor& f : factors)
    require(f.var < vars_, "SymbolicExpr factor variable out of range");
  canonicalize(factors);
  auto it = terms_.find(factors);
  if (it == terms_.end()) {
    terms_.emplace(std::move(factors), coef);
    return;
  }
  it->second = checked_add(it->second, coef);
  if (it->second == 0) terms_.erase(it);
}

SymbolicExpr& SymbolicExpr::operator+=(const SymbolicExpr& o) {
  require(vars_ == o.vars_, "SymbolicExpr arity mismatch");
  for (const auto& [fs, c] : o.terms_) add_term(c, fs);
  return *this;
}

SymbolicExpr SymbolicExpr::operator+(const SymbolicExpr& o) const {
  SymbolicExpr out = *this;
  out += o;
  return out;
}

SymbolicExpr SymbolicExpr::operator-(const SymbolicExpr& o) const {
  return *this + o * -1;
}

SymbolicExpr SymbolicExpr::operator*(Int s) const {
  SymbolicExpr out(vars_);
  if (s == 0) return out;
  for (const auto& [fs, c] : terms_) out.add_term(checked_mul(c, s), fs);
  return out;
}

Int SymbolicExpr::eval(const std::vector<Int>& bounds) const {
  require(bounds.size() == vars_, "SymbolicExpr::eval arity mismatch");
  Int total = 0;
  for (const auto& [fs, c] : terms_) {
    Int term = c;
    for (const SymbolicFactor& f : fs) {
      Int v = factor_value(f, bounds);
      if (v == 0) {
        term = 0;
        break;
      }
      term = checked_mul(term, v);
    }
    total = checked_add(total, term);
  }
  return total;
}

Poly SymbolicExpr::interior() const {
  Poly out(vars_);
  for (const auto& [fs, c] : terms_) {
    Poly term = Poly::constant(vars_, c);
    for (const SymbolicFactor& f : fs) {
      if (f.indicator) continue;
      term = term * (Poly::variable(vars_, f.var) - f.sub);
    }
    out = out + term;
  }
  return out;
}

std::string SymbolicExpr::str() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [fs, c] : terms_) {
    Int coef = c;
    if (first) {
      if (coef < 0) {
        os << '-';
        coef = checked_neg(coef);
      }
    } else {
      os << (coef < 0 ? " - " : " + ");
      coef = checked_abs(coef);
    }
    first = false;
    if (fs.empty()) {
      os << coef;
      continue;
    }
    bool wrote = false;
    if (coef != 1) {
      os << coef;
      wrote = true;
    }
    for (const SymbolicFactor& f : fs) {
      if (wrote) os << '*';
      os << factor_str(f);
      wrote = true;
    }
  }
  return os.str();
}

Json SymbolicExpr::to_json() const {
  Poly p = interior();
  Json terms = Json::array();
  for (const PolyTerm& t : p.terms()) {
    Json exps = Json::array();
    for (Int e : t.exps) exps.push(e);
    terms.push(Json::object().set("coef", t.coef).set("exps", std::move(exps)));
  }
  return Json::object()
      .set("rendered", str())
      .set("polynomial", p.str())
      .set("terms", std::move(terms));
}

SymbolicWindow SymbolicWindow::zero(size_t vars) {
  return SymbolicWindow(SymbolicExpr(vars));
}

void SymbolicWindow::add_branch(SymbolicExpr e) {
  require(e.vars() == vars(), "SymbolicWindow arity mismatch");
  branches_.push_back(std::move(e));
}

bool SymbolicWindow::is_zero() const {
  // Window branches are sums of nonnegative clamped products, so a single
  // identically-zero branch pins the minimum at zero.
  for (const SymbolicExpr& b : branches_)
    if (b.is_zero()) return true;
  return false;
}

Int SymbolicWindow::eval(const std::vector<Int>& bounds) const {
  Int best = branches_.front().eval(bounds);
  for (size_t i = 1; i < branches_.size(); ++i) {
    Int v = branches_[i].eval(bounds);
    if (v < best) best = v;
  }
  return best;
}

Poly SymbolicWindow::interior() const { return branches_.back().interior(); }

std::string SymbolicWindow::str() const {
  if (branches_.size() == 1) return branches_.front().str();
  std::ostringstream os;
  os << "min(";
  for (size_t i = 0; i < branches_.size(); ++i) {
    if (i) os << ", ";
    os << branches_[i].str();
  }
  os << ')';
  return os.str();
}

Json SymbolicWindow::to_json() const {
  Json j = branches_.back().to_json();
  j.set("rendered", str());
  Json bs = Json::array();
  for (const SymbolicExpr& b : branches_) bs.push(b.str());
  j.set("branches", std::move(bs));
  return j;
}

}  // namespace lmre
