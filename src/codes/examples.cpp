#include "codes/examples.h"

#include "ir/builder.h"

namespace lmre::codes {

LoopNest example_1a() {
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId a = b.array("A", {14, 13});  // covers i-3 in [-2,10], j+2 in [3,12]
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-3, 2});
  return b.build();
}

LoopNest example_1b() {
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId a = b.array("A", {51});  // 2i+3j in [5,50]
  b.statement().read(a, {{2, 3}}, {0});
  return b.build();
}

LoopNest example_2(Int n1, Int n2) {
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId a = b.array("A", {n1 + 1, n2 + 2});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})    // S1: A[i][j]
      .read(a, {{1, 0}, {0, 1}}, {-1, 2});   // S2: A[i-1][j+2]
  return b.build();
}

LoopNest example_3() {
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 10);
  ArrayId a = b.array("A", {11, 11});
  b.statement()
      .read(a, {{1, 0}, {0, 1}}, {0, 0})     // S1: A[i][j]
      .read(a, {{1, 0}, {0, 1}}, {-1, 0})    // S2: A[i-1][j]
      .read(a, {{1, 0}, {0, 1}}, {0, -1})    // S3: A[i][j-1]
      .read(a, {{1, 0}, {0, 1}}, {-1, -1});  // S4: A[i-1][j-1]
  return b.build();
}

LoopNest example_4() {
  NestBuilder b;
  b.loop("i", 1, 20).loop("j", 1, 10);
  ArrayId a = b.array("A", {92});  // 2i+5j+1 in [8,91]
  b.statement().read(a, {{2, 5}}, {1});
  return b.build();
}

LoopNest example_5() {
  NestBuilder b;
  b.loop("i", 1, 10).loop("j", 1, 20).loop("k", 1, 30);
  ArrayId a = b.array("A", {61, 51});  // 3i+k in [4,60], j+k in [2,50]
  b.statement().read(a, {{3, 0, 1}, {0, 1, 1}}, {0, 0});
  return b.build();
}

LoopNest example_6() {
  NestBuilder b;
  b.loop("i", 1, 20).loop("j", 1, 20);
  ArrayId a = b.array("A", {191});  // values span [0, 190]
  b.statement().read(a, {{3, 7}}, {-10});   // S1: A[3i+7j-10]
  b.statement().read(a, {{4, -3}}, {60});   // S2: A[4i-3j+60]
  return b.build();
}

LoopNest example_7() {
  NestBuilder b;
  b.loop("i", 1, 20).loop("j", 1, 30);
  ArrayId x = b.array("X", {129});  // 2i-3j in [-88,37]; any cover works
  b.statement().read(x, {{2, -3}}, {0});
  return b.build();
}

LoopNest example_8(Int n1, Int n2) {
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId x = b.array("X", {static_cast<Int>(2 * n1 + 5 * n2 + 6)});
  b.statement()
      .write(x, {{2, 5}}, {1})   // X[2i+5j+1] =
      .read(x, {{2, 5}}, {5});   //   X[2i+5j+5]
  return b.build();
}

LoopNest example_sec23(Int n1, Int n2) {
  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  ArrayId x = b.array("X", {static_cast<Int>(2 * n1 + 3 * n2 + 4)});
  ArrayId y = b.array("Y", {static_cast<Int>(n1 + n2 + 2)});
  b.statement()
      .write(x, {{2, 3}}, {2})   // X[2i+3j+2] =
      .read(y, {{1, 1}}, {0});   //   Y[i+j]
  b.statement()
      .write(y, {{1, 1}}, {1})   // Y[i+j+1] =
      .read(x, {{2, 3}}, {3});   //   X[2i+3j+3]
  return b.build();
}

}  // namespace lmre::codes
