#include "codes/kernels.h"

#include "ir/builder.h"

namespace lmre::codes {

LoopNest kernel_two_point(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId a = b.array("A", {n, n});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 0});
  return b.build();
}

LoopNest kernel_three_point(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId in = b.array("A", {n + 2, n});
  ArrayId out = b.array("B", {n, n});
  b.statement()
      .write(out, {{1, 0}, {0, 1}}, {0, 0})
      .read(in, {{1, 0}, {0, 1}}, {-1, 0})
      .read(in, {{1, 0}, {0, 1}}, {0, 0})
      .read(in, {{1, 0}, {0, 1}}, {1, 0});
  return b.build();
}

LoopNest kernel_sor(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId a = b.array("A", {n + 2, n + 2});
  b.statement()
      .write(a, {{1, 0}, {0, 1}}, {0, 0})
      .read(a, {{1, 0}, {0, 1}}, {-1, 0})
      .read(a, {{1, 0}, {0, 1}}, {1, 0})
      .read(a, {{1, 0}, {0, 1}}, {0, -1})
      .read(a, {{1, 0}, {0, 1}}, {0, 1});
  return b.build();
}

LoopNest kernel_matmult(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n).loop("k", 1, n);
  ArrayId c = b.array("C", {n, n});
  ArrayId a = b.array("A", {n, n});
  ArrayId bm = b.array("B", {n, n});
  b.statement()
      .write(c, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(c, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(a, {{1, 0, 0}, {0, 0, 1}}, {0, 0})
      .read(bm, {{0, 0, 1}, {0, 1, 0}}, {0, 0});
  return b.build();
}

LoopNest kernel_three_step_log(Int block, Int shift) {
  NestBuilder b;
  b.loop("c", -shift, shift).loop("i", 1, block).loop("j", 1, block);
  ArrayId cur = b.array("cur", {block, block});
  ArrayId ref = b.array("ref", {block + 2 * shift, block + 2 * shift});
  b.statement()
      .read(cur, {{0, 1, 0}, {0, 0, 1}}, {0, 0})
      .read(ref, {{1, 1, 0}, {1, 0, 1}}, {0, 0});  // ref[i+c][j+c]
  return b.build();
}

LoopNest kernel_full_search(Int block, Int search) {
  NestBuilder b;
  b.loop("u", -search, search)
      .loop("v", -search, search)
      .loop("i", 1, block)
      .loop("j", 1, block);
  ArrayId cur = b.array("cur", {block, block});
  ArrayId ref = b.array("ref", {block + 2 * search, block + 2 * search});
  b.statement()
      .read(cur, {{0, 0, 1, 0}, {0, 0, 0, 1}}, {0, 0})
      .read(ref, {{1, 0, 1, 0}, {0, 1, 0, 1}}, {0, 0});  // ref[i+u][j+v]
  return b.build();
}

LoopNest kernel_rasta_flt(Int frames, Int bands, Int taps) {
  NestBuilder b;
  b.loop("i", 1, frames).loop("j", 1, bands).loop("k", 1, taps);
  ArrayId in = b.array("in", {frames + taps, bands});
  ArrayId out = b.array("out", {frames, bands});
  ArrayId coef = b.array("coef", {taps});
  b.statement()
      .write(out, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(out, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(in, {{1, 0, -1}, {0, 1, 0}}, {0, 0})  // in[i-k][j]
      .read(coef, {{0, 0, 1}}, {0});
  return b.build();
}

LoopNest kernel_rasta_flt_tap_major(Int frames, Int bands, Int taps) {
  // Tap-major accumulation: one tap's contribution is swept across the whole
  // signal before the next tap, so `out` (and `in`) stay live across every
  // sweep -- a naive schedule whose window is ~47x the frame-major one.
  // Used by the scheduling example and the ablation bench.
  NestBuilder b;
  b.loop("k", 1, taps).loop("i", 1, frames).loop("j", 1, bands);
  ArrayId in = b.array("in", {frames + taps, bands});
  ArrayId out = b.array("out", {frames, bands});
  ArrayId coef = b.array("coef", {taps});
  b.statement()
      .write(out, {{0, 1, 0}, {0, 0, 1}}, {0, 0})
      .read(out, {{0, 1, 0}, {0, 0, 1}}, {0, 0})
      .read(in, {{-1, 1, 0}, {0, 0, 1}}, {0, 0})  // in[i-k][j]
      .read(coef, {{1, 0, 0}}, {0});
  return b.build();
}

std::vector<Figure2Entry> figure2_suite() {
  // Paper Figure 2 rows.  The OCR preserved all percentages, the MWS_opt
  // column, and rasta_flt's full row; the remaining default / MWS_unopt
  // magnitudes (marked by *_unopt == 0 below where fully lost) are
  // reconstructed from the surviving percentages in EXPERIMENTS.md.
  std::vector<Figure2Entry> suite;
  suite.push_back({"2point", kernel_two_point(), 4096, 66, 3, 0.984, 0.999});
  suite.push_back({"3point", kernel_three_point(), 1024, 69, 35, 0.933, 0.965});
  suite.push_back({"sor", kernel_sor(), 1024, 66, 35, 0.936, 0.965});
  suite.push_back({"matmult", kernel_matmult(), 768, 273, 273, 0.644, 0.644});
  suite.push_back({"3step_log", kernel_three_step_log(16, 12), 2048, 508, 122, 0.752, 0.940});
  suite.push_back({"full_search", kernel_full_search(16, 12), 2048, 250, 60, 0.878, 0.971});
  suite.push_back({"rasta_flt", kernel_rasta_flt(), 5152, 2040, 127, 0.604, 0.975});
  return suite;
}

}  // namespace lmre::codes
