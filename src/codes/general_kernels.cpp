#include "codes/general_kernels.h"

namespace lmre::codes {

namespace {

ArrayRef read2(ArrayId a, IntMat acc, IntVec off) {
  return ArrayRef{a, AccessKind::kRead, std::move(acc), std::move(off)};
}

ArrayRef write2(ArrayId a, IntMat acc, IntVec off) {
  return ArrayRef{a, AccessKind::kWrite, std::move(acc), std::move(off)};
}

}  // namespace

GeneralNest kernel_forward_subst(Int n) {
  // Space { (i, j) : 2 <= i <= n, 1 <= j <= i-1 }.
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 2, n);
  sys.add(AffineExpr::variable(2, 1) - 1);
  sys.add(AffineExpr::variable(2, 0) - AffineExpr::variable(2, 1) - 1);  // j <= i-1
  std::vector<Array> arrays{Array{"x", {n}}, Array{"L", {n, n}}};
  Statement stmt;
  stmt.refs.push_back(write2(0, IntMat{{1, 0}}, IntVec{0}));       // x[i] =
  stmt.refs.push_back(read2(0, IntMat{{1, 0}}, IntVec{0}));        //   x[i]
  stmt.refs.push_back(read2(1, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}));  // L[i][j]
  stmt.refs.push_back(read2(0, IntMat{{0, 1}}, IntVec{0}));        //   x[j]
  return GeneralNest({"i", "j"}, sys, arrays, {stmt});
}

GeneralNest kernel_syr_lower(Int n) {
  std::vector<Array> arrays{Array{"A", {n, n}}, Array{"v", {n}}};
  Statement stmt;
  stmt.refs.push_back(write2(0, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}));
  stmt.refs.push_back(read2(0, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}));
  stmt.refs.push_back(read2(1, IntMat{{1, 0}}, IntVec{0}));
  stmt.refs.push_back(read2(1, IntMat{{0, 1}}, IntVec{0}));
  return GeneralNest({"i", "j"}, lower_triangle_space(n), arrays, {stmt});
}

GeneralNest kernel_band_mv(Int n) {
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 1, n);
  sys.add_range(AffineExpr::variable(2, 1), 1, n);
  sys.add_range(AffineExpr::variable(2, 0) - AffineExpr::variable(2, 1), -1, 1);
  std::vector<Array> arrays{Array{"y", {n}}, Array{"M", {n, n}}, Array{"x", {n}}};
  Statement stmt;
  stmt.refs.push_back(write2(0, IntMat{{1, 0}}, IntVec{0}));
  stmt.refs.push_back(read2(0, IntMat{{1, 0}}, IntVec{0}));
  stmt.refs.push_back(read2(1, IntMat{{1, 0}, {0, 1}}, IntVec{0, 0}));
  stmt.refs.push_back(read2(2, IntMat{{0, 1}}, IntVec{0}));
  return GeneralNest({"i", "j"}, sys, arrays, {stmt});
}

std::vector<std::pair<std::string, GeneralNest>> general_suite() {
  std::vector<std::pair<std::string, GeneralNest>> suite;
  suite.emplace_back("forward_subst", kernel_forward_subst());
  suite.emplace_back("syr_lower", kernel_syr_lower());
  suite.emplace_back("band_mv", kernel_band_mv());
  return suite;
}

}  // namespace lmre::codes
