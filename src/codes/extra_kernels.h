#pragma once

// Kernels beyond the paper's Figure-2 suite, exercising the analysis on the
// wider embedded/DSP idiom space: 1-d FIR and IIR filters, 2-d convolution
// (depth-4), matrix transpose-multiply (DCT-like), Jacobi two-array
// relaxation, and a row-sum reduction.

#include <string>
#include <vector>

#include "ir/nest.h"

namespace lmre::codes {

/// y[i] = sum_k h[k] * x[i+k]  over samples x taps (depth 2).
LoopNest kernel_fir(Int samples = 256, Int taps = 8);

/// y[i] = x[i] + a*y[i-1] + b*y[i-2]: a recurrence -- the output feeds back,
/// so the window carries the feedback state.
LoopNest kernel_iir(Int samples = 256);

/// out[i][j] += img[i+u][j+v] * k[u][v]  (depth 4: image x kernel).
LoopNest kernel_conv2d(Int image = 16, Int kernel = 3);

/// C[i][j] += A[k][i] * B[k][j]: transpose-multiply (the DCT's A^T * B
/// shape); A is walked column-wise.
LoopNest kernel_transpose_mm(Int n = 12);

/// B[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1] (Jacobi sweep,
/// two arrays -- unlike the in-place Gauss-Seidel `kernel_sor`).
LoopNest kernel_jacobi(Int n = 24);

/// s[i] += M[i][j]: row reduction; one accumulator live at a time.
LoopNest kernel_row_sum(Int n = 32);

/// The extended suite with names, for the generality bench.
std::vector<std::pair<std::string, LoopNest>> extra_suite();

}  // namespace lmre::codes
