#pragma once

// The seven image/video-processing kernels of the paper's evaluation
// (Figure 2): 2point, 3point, sor, matmult, 3step_log, full_search,
// rasta_flt.
//
// The paper gives the kernels' names but not their exact loop bounds or
// array sizes; the shapes here follow standard formulations of each kernel
// and the bounds are chosen so the "default" (declared-size) column lands in
// the same range as Figure 2 (e.g. matmult with N=16 declares 3*256 = 768
// elements and has an untransformed window of N^2+N+1 = 273, matching the
// paper's 273 exactly).  See EXPERIMENTS.md for the per-kernel mapping.

#include <string>
#include <utility>
#include <vector>

#include "ir/nest.h"

namespace lmre::codes {

/// Two-point (column) stencil, in place:  A[i][j] = A[i-1][j].
/// Untransformed, a written element stays live for a full row (~n);
/// interchange drops that to O(1).
LoopNest kernel_two_point(Int n = 64);

/// Three-point stencil, previous-row to current-row:
/// B[i][j] = A[i-1][j] + A[i][j] + A[i+1][j].
/// Rows of A stay live across two i-iterations (~2n) untransformed.
LoopNest kernel_three_point(Int n = 32);

/// Gauss-Seidel successive over-relaxation sweep, in place:
/// A[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1].
LoopNest kernel_sor(Int n = 32);

/// Matrix multiply C[i][j] += A[i][k] * B[k][j] (i, j, k order).
/// One operand array is always fully live (~n^2 + n + 1 = 273 for n=16);
/// no loop permutation improves it -- the paper's only unimproved kernel.
LoopNest kernel_matmult(Int n = 16);

/// Three-step logarithmic motion estimation (diagonal-shift model):
/// for shift c, block pixel (i,j):  use cur[i][j] and ref[i+c][j+c].
/// The current block is fully live across candidate shifts untransformed.
LoopNest kernel_three_step_log(Int block = 16, Int shift = 8);

/// Full-search motion estimation: for displacement (u,v), block pixel
/// (i,j):  use cur[i][j] and ref[i+u][j+v]  (a depth-4 nest).
LoopNest kernel_full_search(Int block = 16, Int search = 4);

/// RASTA filtering (MediaBench): FIR across frames per critical band:
/// out[i][j] += coef[k] * in[i-k][j]  over frames x bands x taps.
LoopNest kernel_rasta_flt(Int frames = 100, Int bands = 23, Int taps = 5);

/// Tap-major (k outermost) schedule of the same filter: out and in stay
/// live across every tap sweep; used to demonstrate schedule-driven window
/// blow-up (examples/filter_scheduling, ablation bench).
LoopNest kernel_rasta_flt_tap_major(Int frames = 100, Int bands = 23, Int taps = 5);

/// The Figure-2 suite in paper order, with the paper's reported numbers
/// attached for side-by-side reporting.
struct Figure2Entry {
  std::string name;
  LoopNest nest;
  /// Paper's Figure 2 row (reconstructed where the OCR lost digits; see
  /// EXPERIMENTS.md): declared size, MWS before and after optimization.
  Int paper_default = 0;
  Int paper_mws_unopt = 0;  ///< 0 when the OCR lost the value
  Int paper_mws_opt = 0;
  double paper_reduction_unopt = 0.0;
  double paper_reduction_opt = 0.0;
};

std::vector<Figure2Entry> figure2_suite();

}  // namespace lmre::codes
