#include "codes/extra_kernels.h"

#include "ir/builder.h"

namespace lmre::codes {

LoopNest kernel_fir(Int samples, Int taps) {
  NestBuilder b;
  b.loop("i", 1, samples).loop("k", 1, taps);
  ArrayId y = b.array("y", {samples});
  ArrayId x = b.array("x", {samples + taps});
  ArrayId h = b.array("h", {taps});
  b.statement()
      .write(y, {{1, 0}}, {0})
      .read(y, {{1, 0}}, {0})
      .read(x, {{1, 1}}, {0})   // x[i+k]
      .read(h, {{0, 1}}, {0});
  return b.build();
}

LoopNest kernel_iir(Int samples) {
  NestBuilder b;
  b.loop("i", 3, samples);
  ArrayId y = b.array("y", {samples + 1});
  ArrayId x = b.array("x", {samples + 1});
  b.statement()
      .write(y, {{1}}, {0})
      .read(x, {{1}}, {0})
      .read(y, {{1}}, {-1})
      .read(y, {{1}}, {-2});
  return b.build();
}

LoopNest kernel_conv2d(Int image, Int kernel) {
  NestBuilder b;
  b.loop("i", 1, image).loop("j", 1, image).loop("u", 1, kernel).loop("v", 1, kernel);
  ArrayId out = b.array("out", {image, image});
  ArrayId img = b.array("img", {image + kernel, image + kernel});
  ArrayId k = b.array("k", {kernel, kernel});
  b.statement()
      .write(out, {{1, 0, 0, 0}, {0, 1, 0, 0}}, {0, 0})
      .read(out, {{1, 0, 0, 0}, {0, 1, 0, 0}}, {0, 0})
      .read(img, {{1, 0, 1, 0}, {0, 1, 0, 1}}, {0, 0})  // img[i+u][j+v]
      .read(k, {{0, 0, 1, 0}, {0, 0, 0, 1}}, {0, 0});
  return b.build();
}

LoopNest kernel_transpose_mm(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n).loop("k", 1, n);
  ArrayId c = b.array("C", {n, n});
  ArrayId a = b.array("A", {n, n});
  ArrayId bm = b.array("B", {n, n});
  b.statement()
      .write(c, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(c, {{1, 0, 0}, {0, 1, 0}}, {0, 0})
      .read(a, {{0, 0, 1}, {1, 0, 0}}, {0, 0})   // A[k][i]
      .read(bm, {{0, 0, 1}, {0, 1, 0}}, {0, 0});  // B[k][j]
  return b.build();
}

LoopNest kernel_jacobi(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId in = b.array("A", {n + 2, n + 2});
  ArrayId out = b.array("B", {n, n});
  b.statement()
      .write(out, {{1, 0}, {0, 1}}, {0, 0})
      .read(in, {{1, 0}, {0, 1}}, {-1, 0})
      .read(in, {{1, 0}, {0, 1}}, {1, 0})
      .read(in, {{1, 0}, {0, 1}}, {0, -1})
      .read(in, {{1, 0}, {0, 1}}, {0, 1});
  return b.build();
}

LoopNest kernel_row_sum(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId s = b.array("s", {n});
  ArrayId m = b.array("M", {n, n});
  b.statement()
      .write(s, {{1, 0}}, {0})
      .read(s, {{1, 0}}, {0})
      .read(m, {{1, 0}, {0, 1}}, {0, 0});
  return b.build();
}

std::vector<std::pair<std::string, LoopNest>> extra_suite() {
  std::vector<std::pair<std::string, LoopNest>> suite;
  suite.emplace_back("fir", kernel_fir());
  suite.emplace_back("iir", kernel_iir());
  suite.emplace_back("conv2d", kernel_conv2d());
  suite.emplace_back("transpose_mm", kernel_transpose_mm());
  suite.emplace_back("jacobi", kernel_jacobi());
  suite.emplace_back("row_sum", kernel_row_sum());
  return suite;
}

}  // namespace lmre::codes
