#pragma once

// Non-rectangular kernels (GeneralNest spaces): triangular solves and
// banded sweeps -- shapes the paper's box formulas exclude but the exact
// machinery handles.

#include <string>
#include <utility>
#include <vector>

#include "ir/general.h"

namespace lmre::codes {

/// Forward substitution: for i = 1..n, j = 1..i-1:
///   x[i] = x[i] - L[i][j] * x[j]   (plus the diagonal scale, folded in).
/// Triangular space { 1 <= j < i <= n }.
GeneralNest kernel_forward_subst(Int n = 16);

/// Symmetric rank-1 update on the lower triangle:
///   A[i][j] = A[i][j] + v[i] * v[j]  over { 1 <= j <= i <= n }.
GeneralNest kernel_syr_lower(Int n = 16);

/// Tridiagonal (banded) matrix-vector product:
///   y[i] = y[i] + M[i][j] * x[j]  over { |i - j| <= 1 } in an n x n box.
GeneralNest kernel_band_mv(Int n = 24);

/// The suite, named.
std::vector<std::pair<std::string, GeneralNest>> general_suite();

}  // namespace lmre::codes
