#pragma once

// The numbered example loops of the paper, as LoopNest builders.
//
// OCR note: the paper's text drops minus signs inside subscripts; the
// versions here are reconstructed so that every derived quantity (dependence
// vectors, reuse counts, distinct counts, window sizes) matches the numbers
// printed in the paper.  See DESIGN.md section 4.

#include "ir/nest.h"

namespace lmre::codes {

/// Example 1(a): for i,j in [1,10]^2:  A[i][j] = A[i-3][j+2]
/// (d == n, r == 2, dependence (3,-2), reuse 56).
LoopNest example_1a();

/// Example 1(b): for i,j in [1,10]^2:  use A[2i+3j]
/// (d == n-1, reuse vector (3,-2), reuse 56).
LoopNest example_1b();

/// Example 2: for i in [1,n1], j in [1,n2]:  A[i][j] = A[i-1][j+2]
/// (dependence (1,-2), reuse (n1-1)(n2-2)).
LoopNest example_2(Int n1 = 10, Int n2 = 10);

/// Example 3: 10x10, four reads A[i][j], A[i-1][j], A[i][j-1], A[i-1][j-1]
/// (anchor reuse 261, paper's distinct estimate 139).
LoopNest example_3();

/// Example 4: for i in [1,20], j in [1,10]:  use A[2i+5j+1]
/// (reuse vector (5,-2), reuse 120, distinct 80).
LoopNest example_4();

/// Example 5 / Example 10: for i in [1,10], j in [1,20], k in [1,30]:
/// use A[3i+k][j+k]  (reuse vector (1,3,-3), reuse 4131, distinct 1869;
/// MWS formula value 540(+1) in Section 4.3).
LoopNest example_5();

/// Example 6: for i,j in [1,20]^2: reads A[3i+7j-10] and A[4i-3j+60]
/// (non-uniform; UB 191, paper LB 179, actual 181).
LoopNest example_6();

/// Example 7: for i in [1,20], j in [1,30]:  use X[2i-3j]
/// (Eisenbeis et al. cost 89; interchange 41, reversal 86, both 36;
/// compound transformation drives MWS to 1).
LoopNest example_7();

/// Example 8: for i in [1,25], j in [1,10]:  X[2i+5j+1] = X[2i+5j+5]
/// (distances (3,-2),(2,0),(5,-2); MWS 50 -> 21 under T = [[2,3],[1,1]];
/// Li-Pingali rows (2,5)/(-2,5) are illegal here).
LoopNest example_8(Int n1 = 25, Int n2 = 10);

/// Section 2.3's uniformly generated pair of arrays:
/// X[-2i+3j+2] = Y[i+j];  Y[i+j+1] = X[-2i+3j+3].
LoopNest example_sec23(Int n1 = 10, Int n2 = 10);

}  // namespace lmre::codes
