#pragma once

// Exact counting of 1-d affine images without full enumeration.
//
// The paper cites Clauss (Ehrhart polynomials) and Pugh (Presburger
// counting) as "more expensive but exact" alternatives to its closed forms.
// This module supplies the exact middle ground for linearized (1-d)
// subscripts: membership of a value in the image of  a1*i1 + ... + an*in + c
// over a box is decidable with one extended-gcd and an interval
// intersection, so the number of distinct elements touched by any set of
// 1-d references is countable in O(value-range x references) time --
// linear in the data size rather than in the iteration count.

#include <vector>

#include "linalg/vec.h"
#include "polyhedra/box.h"

namespace lmre {

/// One linearized subscript function coeffs . I + c.
struct AffineForm1D {
  IntVec coeffs;
  Int c = 0;
};

/// True when some iteration I in `box` has form(I) == value.  Exact.
/// Depth 1 and 2 are solved arithmetically; deeper nests enumerate the
/// outer dimensions and solve the innermost two arithmetically.
bool image_contains(const AffineForm1D& form, const IntBox& box, Int value);

/// Exact number of distinct values the forms take over the box (the size of
/// the union of their images) -- the quantity Section 3.2 brackets with its
/// upper/lower bounds for non-uniformly generated references.
Int count_image_union(const std::vector<AffineForm1D>& forms, const IntBox& box);

/// Exact image size of a single form (convenience wrapper).
Int count_image(const AffineForm1D& form, const IntBox& box);

}  // namespace lmre
