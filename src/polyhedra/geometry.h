#pragma once

// Exact 2-d lattice geometry: Pick's theorem and polygon utilities.
//
// The image of a 2-deep iteration box under a unimodular T is a lattice
// parallelogram; questions like "how many iterations does the transformed
// loop execute" or "how wide can the inner loop get" have closed-form
// answers through Pick's theorem
//     points = Area + Boundary/2 + 1
// instead of enumeration.  This is the 2-d slice of the Ehrhart-style
// counting the paper cites (Clauss).

#include <vector>

#include "linalg/mat.h"
#include "linalg/rational.h"
#include "polyhedra/box.h"

namespace lmre {

/// A lattice polygon given by its vertices in order (either orientation);
/// must be simple (non-self-intersecting).
struct LatticePolygon {
  std::vector<IntVec> vertices;  ///< 2-d integer points

  /// Twice the signed area (shoelace); sign encodes orientation.
  Int twice_signed_area() const;

  /// |area| as a rational (can be half-integral for lattice polygons).
  Rational area() const;

  /// Number of lattice points on the boundary (gcd sum over edges).
  Int boundary_points() const;

  /// Total lattice points inside or on the polygon, via Pick's theorem.
  /// Exact for simple lattice polygons.
  Int lattice_points() const;

  /// Interior lattice points (Pick's I = A - B/2 + 1).
  Int interior_points() const;
};

/// Image of a 2-d box's corner rectangle under a (not necessarily
/// unimodular) integer matrix: the parallelogram T * box, vertices in
/// traversal order.
LatticePolygon transform_box(const IntBox& box, const IntMat& t);

/// Closed-form iteration count of the transformed 2-deep nest: for
/// unimodular T this equals the box volume (checked cheaply via Pick
/// instead of scanning).
Int transformed_point_count(const IntBox& box, const IntMat& t);

}  // namespace lmre
