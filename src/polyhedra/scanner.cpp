#include "polyhedra/scanner.h"

namespace lmre {

namespace {

void scan_level(const LoopBounds& bounds, size_t level, IntVec& point,
                const PointVisitor& visit) {
  if (level == bounds.depth()) {
    visit(point);
    return;
  }
  Int lo, hi;
  if (!bounds.range(level, point, lo, hi)) return;
  for (Int v = lo; v <= hi; ++v) {
    point[level] = v;
    scan_level(bounds, level + 1, point, visit);
  }
  point[level] = 0;
}

void scan_rows_level(const LoopBounds& bounds, size_t level, IntVec& point,
                     const RowVisitor& visit) {
  Int lo, hi;
  if (!bounds.range(level, point, lo, hi)) return;
  if (level + 1 == bounds.depth()) {
    if (lo > hi) return;
    point[level] = lo;
    visit(point, lo, hi);
    point[level] = 0;
    return;
  }
  for (Int v = lo; v <= hi; ++v) {
    point[level] = v;
    scan_rows_level(bounds, level + 1, point, visit);
  }
  point[level] = 0;
}

}  // namespace

void scan(const LoopBounds& bounds, const PointVisitor& visit) {
  if (bounds.known_empty || bounds.depth() == 0) return;
  IntVec point(bounds.depth());
  scan_level(bounds, 0, point, visit);
}

void scan(const ConstraintSystem& system, const PointVisitor& visit) {
  scan(extract_loop_bounds(system), visit);
}

void scan_rows(const LoopBounds& bounds, const RowVisitor& visit) {
  if (bounds.known_empty || bounds.depth() == 0) return;
  IntVec point(bounds.depth());
  scan_rows_level(bounds, 0, point, visit);
}

void scan_rows(const ConstraintSystem& system, const RowVisitor& visit) {
  scan_rows(extract_loop_bounds(system), visit);
}

Int count_points(const ConstraintSystem& system) {
  Int n = 0;
  scan(system, [&n](const IntVec&) { ++n; });
  return n;
}

namespace {

enum class SearchState { kNotFound, kFound, kBudget };

SearchState first_point_level(const LoopBounds& bounds, size_t level,
                              IntVec& point, Int& budget) {
  if (level == bounds.depth()) return SearchState::kFound;
  Int lo, hi;
  if (!bounds.range(level, point, lo, hi)) return SearchState::kNotFound;
  for (Int v = lo; v <= hi; ++v) {
    if (budget-- <= 0) return SearchState::kBudget;
    point[level] = v;
    SearchState s = first_point_level(bounds, level + 1, point, budget);
    if (s != SearchState::kNotFound) return s;
  }
  point[level] = 0;
  return SearchState::kNotFound;
}

}  // namespace

FirstPointResult first_point(const ConstraintSystem& system, Int step_budget,
                             size_t max_constraints) {
  FirstPointResult result;
  LoopBounds bounds = extract_loop_bounds(system, max_constraints);
  if (bounds.known_empty || bounds.depth() == 0) return result;
  IntVec point(bounds.depth());
  Int budget = step_budget;
  switch (first_point_level(bounds, 0, point, budget)) {
    case SearchState::kFound:
      result.point = point;
      break;
    case SearchState::kNotFound:
      break;
    case SearchState::kBudget:
      result.complete = false;
      break;
  }
  return result;
}

std::optional<IntVec> lexicographic_min(const ConstraintSystem& system) {
  // The first visited point is the lexicographic minimum; we stop the scan
  // by unwinding with a sentinel exception-free approach: track and compare.
  std::optional<IntVec> best;
  scan(system, [&best](const IntVec& p) {
    if (!best) best = p;
  });
  return best;
}

}  // namespace lmre
