#include "polyhedra/fourier_motzkin.h"

#include <string>

#include "support/error.h"

namespace lmre {

Int Bound::eval(const IntVec& outer, bool lower) const {
  // The bound expression may mention only outer variables; `outer` carries
  // the full-width prefix (entries at and beyond this level must be zero in
  // the coefficients, which extraction guarantees).
  Int num = expr.eval(outer);
  return lower ? ceil_div(num, divisor) : floor_div(num, divisor);
}

bool LoopBounds::range(size_t k, const IntVec& outer, Int& lo, Int& hi) const {
  require(k < depth(), "LoopBounds::range level out of range");
  if (lowers[k].empty() || uppers[k].empty()) return false;
  bool first = true;
  for (const auto& b : lowers[k]) {
    Int v = b.eval(outer, /*lower=*/true);
    lo = first ? v : std::max(lo, v);
    first = false;
  }
  first = true;
  for (const auto& b : uppers[k]) {
    Int v = b.eval(outer, /*lower=*/false);
    hi = first ? v : std::min(hi, v);
    first = false;
  }
  return true;
}

ConstraintSystem eliminate_variable(const ConstraintSystem& system, size_t var) {
  require(var < system.dims(), "eliminate_variable: var out of range");
  ConstraintSystem out(system.dims());
  std::vector<Constraint> lowers, uppers;
  for (const auto& c : system.constraints()) {
    Int a = c.expr.coeff(var);
    if (a > 0) {
      lowers.push_back(c);  // a*x + f >= 0  =>  x >= -f/a
    } else if (a < 0) {
      uppers.push_back(c);  // -q*x + g >= 0  =>  x <= g/q
    } else {
      out.add(c.expr);
    }
  }
  // Combine every (lower, upper) pair:  x >= -f/p  and  x <= g/q  imply
  // q*f + p*g >= 0.
  for (const auto& l : lowers) {
    Int p = l.expr.coeff(var);
    for (const auto& u : uppers) {
      Int q = checked_neg(u.expr.coeff(var));
      AffineExpr combined = l.expr * q + u.expr * p;
      ensure(combined.coeff(var) == 0, "FM combination kept the variable");
      out.add(combined);
    }
  }
  return out;
}

namespace {

// Shared growth guard: FM combination can square the constraint count per
// eliminated variable, so pathological systems explode long before any
// per-point search budget applies.  Refusing loudly lets callers degrade
// to "undecided" instead of stalling.
void check_growth(const ConstraintSystem& cur, size_t max_constraints) {
  if (max_constraints != 0 && cur.size() > max_constraints) {
    throw UnsupportedError(
        "fourier-motzkin elimination grew past " +
        std::to_string(max_constraints) + " constraints");
  }
}

}  // namespace

LoopBounds extract_loop_bounds(const ConstraintSystem& system,
                               size_t max_constraints) {
  const size_t n = system.dims();
  LoopBounds lb;
  lb.lowers.resize(n);
  lb.uppers.resize(n);

  ConstraintSystem cur = system;
  for (size_t k = n; k-- > 0;) {
    // Record the bounds on variable k before eliminating it; at this point
    // `cur` only mentions variables 0..k.
    for (const auto& c : cur.constraints()) {
      Int a = c.expr.coeff(k);
      if (a > 0) {
        // a*x_k + f >= 0  =>  x_k >= ceil(-f / a)
        AffineExpr f = c.expr;
        f.set_coeff(k, 0);
        lb.lowers[k].push_back(Bound{-f, a});
      } else if (a < 0) {
        // a*x_k + f >= 0  =>  x_k <= floor(f / -a)
        AffineExpr f = c.expr;
        f.set_coeff(k, 0);
        lb.uppers[k].push_back(Bound{f, checked_neg(a)});
      }
    }
    if (lb.lowers[k].empty() || lb.uppers[k].empty()) {
      throw UnsupportedError("extract_loop_bounds: variable " + std::to_string(k) +
                             " is unbounded");
    }
    cur = eliminate_variable(cur, k);
    if (cur.trivially_empty()) {
      lb.known_empty = true;
      return lb;
    }
    check_growth(cur, max_constraints);
  }
  return lb;
}

bool rationally_feasible(const ConstraintSystem& system,
                         size_t max_constraints) {
  ConstraintSystem cur = system;
  if (cur.trivially_empty()) return false;
  for (size_t k = cur.dims(); k-- > 0;) {
    cur = eliminate_variable(cur, k);
    if (cur.trivially_empty()) return false;
    check_growth(cur, max_constraints);
  }
  // All variables eliminated: only constant constraints remain and none is
  // negative (trivially_empty checked after each round).
  return true;
}

ConstraintSystem remove_redundant(const ConstraintSystem& system) {
  // Greedy: drop any constraint whose negation is infeasible against the
  // (current) rest.  Over the rationals "!c" for c: expr >= 0 is expr < 0;
  // we test the closed relaxation expr <= -1 scaled -- sound for the
  // integer scans we feed these systems to, and exact when coefficients are
  // integral (expr < 0 over Q admits a solution iff expr <= -eps does; with
  // integer points downstream, expr <= -1 is the right test).
  std::vector<Constraint> kept(system.constraints().begin(),
                               system.constraints().end());
  for (size_t i = kept.size(); i-- > 0;) {
    ConstraintSystem rest(system.dims());
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) rest.add(kept[j].expr);
    }
    // negation: -expr - 1 >= 0  (expr <= -1).
    rest.add(-(kept[i].expr) - 1);
    if (!rationally_feasible(rest)) {
      kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  ConstraintSystem out(system.dims());
  for (const auto& c : kept) out.add(c.expr);
  return out;
}

}  // namespace lmre
