#include "polyhedra/geometry.h"

#include "support/error.h"

namespace lmre {

Int LatticePolygon::twice_signed_area() const {
  require(vertices.size() >= 3, "LatticePolygon: need at least 3 vertices");
  Int acc = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const IntVec& p = vertices[i];
    const IntVec& q = vertices[(i + 1) % vertices.size()];
    require(p.size() == 2 && q.size() == 2, "LatticePolygon: vertices must be 2-d");
    acc = checked_add(acc, checked_sub(checked_mul(p[0], q[1]), checked_mul(p[1], q[0])));
  }
  return acc;
}

Rational LatticePolygon::area() const {
  return Rational(checked_abs(twice_signed_area()), 2);
}

Int LatticePolygon::boundary_points() const {
  require(vertices.size() >= 3, "LatticePolygon: need at least 3 vertices");
  Int total = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const IntVec& p = vertices[i];
    const IntVec& q = vertices[(i + 1) % vertices.size()];
    Int dx = checked_sub(q[0], p[0]);
    Int dy = checked_sub(q[1], p[1]);
    Int g = gcd(dx, dy);
    // Each edge contributes gcd(|dx|,|dy|) points, counting its endpoint
    // once (degenerate zero-length edges contribute nothing).
    total = checked_add(total, g);
  }
  return total;
}

Int LatticePolygon::lattice_points() const {
  // Pick: points = A + B/2 + 1; 2A and B are both integers and 2A + B is
  // even for lattice polygons, so the division below is exact.
  Int twice_area = checked_abs(twice_signed_area());
  Int b = boundary_points();
  Int twice_points = checked_add(checked_add(twice_area, b), 2);
  ensure(twice_points % 2 == 0, "Pick's theorem parity violated");
  return twice_points / 2;
}

Int LatticePolygon::interior_points() const {
  return checked_sub(lattice_points(), boundary_points());
}

LatticePolygon transform_box(const IntBox& box, const IntMat& t) {
  require(box.dims() == 2, "transform_box: box must be 2-d");
  require(t.rows() == 2 && t.cols() == 2, "transform_box: T must be 2x2");
  const Range& r0 = box.range(0);
  const Range& r1 = box.range(1);
  std::vector<IntVec> corners = {IntVec{r0.lo, r1.lo}, IntVec{r0.lo, r1.hi},
                                 IntVec{r0.hi, r1.hi}, IntVec{r0.hi, r1.lo}};
  LatticePolygon poly;
  for (const auto& c : corners) poly.vertices.push_back(t * c);
  return poly;
}

Int transformed_point_count(const IntBox& box, const IntMat& t) {
  require(t.determinant() != 0, "transformed_point_count: singular transform");
  LatticePolygon poly = transform_box(box, t);
  // For unimodular T the map is a lattice bijection: count points in the
  // image polygon directly.  For |det| > 1 the image points are sparser
  // than the polygon's lattice; only the unimodular case is exposed.
  require(t.is_unimodular(), "transformed_point_count: T must be unimodular");
  return poly.lattice_points();
}

}  // namespace lmre
