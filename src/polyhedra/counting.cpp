#include "polyhedra/counting.h"

#include <algorithm>

#include "support/error.h"

namespace lmre {

namespace {

struct ActiveDim {
  Int coef;
  Range range;
};

std::vector<ActiveDim> active_dims(const AffineForm1D& form, const IntBox& box) {
  require(form.coeffs.size() == box.dims(), "counting: dimension mismatch");
  std::vector<ActiveDim> dims;
  for (size_t k = 0; k < box.dims(); ++k) {
    if (form.coeffs[k] != 0) dims.push_back(ActiveDim{form.coeffs[k], box.range(k)});
  }
  return dims;
}

// t-interval for  lo <= base + step * t <= hi  (step != 0).
bool t_interval(Int base, Int step, Int lo, Int hi, Int& tmin, Int& tmax) {
  // lo - base <= step*t <= hi - base
  Int a = checked_sub(lo, base), b = checked_sub(hi, base);
  if (step > 0) {
    tmin = ceil_div(a, step);
    tmax = floor_div(b, step);
  } else {
    tmin = ceil_div(b, step);
    tmax = floor_div(a, step);
  }
  return tmin <= tmax;
}

bool contains_rec(const std::vector<ActiveDim>& dims, size_t from, Int target) {
  const size_t left = dims.size() - from;
  if (left == 0) return target == 0;
  if (left == 1) {
    const auto& d = dims[from];
    if (target % d.coef != 0) return false;
    Int x = target / d.coef;
    return x >= d.range.lo && x <= d.range.hi;
  }
  if (left == 2) {
    // a*x + b*y == target with x, y boxed: one extended gcd + interval
    // intersection over the kernel parameter.
    const auto& dx = dims[from];
    const auto& dy = dims[from + 1];
    Int u, v;
    Int g = extended_gcd(dx.coef, dy.coef, u, v);
    if (target % g != 0) return false;
    Int scale = target / g;
    Int x0 = checked_mul(u, scale), y0 = checked_mul(v, scale);
    Int step_x = dy.coef / g, step_y = checked_neg(dx.coef / g);
    Int t1min, t1max, t2min, t2max;
    if (!t_interval(x0, step_x, dx.range.lo, dx.range.hi, t1min, t1max)) return false;
    if (!t_interval(y0, step_y, dy.range.lo, dy.range.hi, t2min, t2max)) return false;
    return std::max(t1min, t2min) <= std::min(t1max, t2max);
  }
  // Deeper: enumerate the first active dimension.
  const auto& d = dims[from];
  for (Int x = d.range.lo; x <= d.range.hi; ++x) {
    if (contains_rec(dims, from + 1, checked_sub(target, checked_mul(d.coef, x)))) {
      return true;
    }
  }
  return false;
}

std::pair<Int, Int> form_range(const AffineForm1D& form, const IntBox& box) {
  Int lo = form.c, hi = form.c;
  for (size_t k = 0; k < box.dims(); ++k) {
    Int a = form.coeffs[k];
    if (a >= 0) {
      lo = checked_add(lo, checked_mul(a, box.range(k).lo));
      hi = checked_add(hi, checked_mul(a, box.range(k).hi));
    } else {
      lo = checked_add(lo, checked_mul(a, box.range(k).hi));
      hi = checked_add(hi, checked_mul(a, box.range(k).lo));
    }
  }
  return {lo, hi};
}

}  // namespace

bool image_contains(const AffineForm1D& form, const IntBox& box, Int value) {
  return contains_rec(active_dims(form, box), 0, checked_sub(value, form.c));
}

Int count_image_union(const std::vector<AffineForm1D>& forms, const IntBox& box) {
  require(!forms.empty(), "count_image_union: no forms");
  bool first = true;
  Int lo = 0, hi = 0;
  for (const auto& f : forms) {
    auto [flo, fhi] = form_range(f, box);
    lo = first ? flo : std::min(lo, flo);
    hi = first ? fhi : std::max(hi, fhi);
    first = false;
  }
  std::vector<std::vector<ActiveDim>> dims;
  std::vector<Int> consts;
  for (const auto& f : forms) {
    dims.push_back(active_dims(f, box));
    consts.push_back(f.c);
  }
  Int count = 0;
  for (Int v = lo; v <= hi; ++v) {
    for (size_t f = 0; f < forms.size(); ++f) {
      if (contains_rec(dims[f], 0, checked_sub(v, consts[f]))) {
        ++count;
        break;
      }
    }
  }
  return count;
}

Int count_image(const AffineForm1D& form, const IntBox& box) {
  return count_image_union({form}, box);
}

}  // namespace lmre
