#pragma once

// Linear inequality constraints and systems of them.
//
// A Constraint is  expr >= 0 ; a ConstraintSystem is a conjunction over a
// fixed set of variables.  Iteration spaces (original and transformed) are
// represented this way and handed to Fourier-Motzkin for bound extraction.

#include <iosfwd>
#include <string>
#include <vector>

#include "polyhedra/affine.h"

namespace lmre {

/// The inequality expr >= 0.
struct Constraint {
  AffineExpr expr;

  /// True when x satisfies the constraint.
  bool satisfied_by(const IntVec& x) const { return expr.eval(x) >= 0; }

  /// Divides all coefficients and the constant by their gcd (the constant is
  /// floor-divided, which is sound and tightening for integer points).
  Constraint normalized() const;

  bool operator==(const Constraint& o) const { return expr == o.expr; }
};

std::ostream& operator<<(std::ostream& os, const Constraint& c);

class ConstraintSystem {
 public:
  explicit ConstraintSystem(size_t dims) : dims_(dims) {}

  size_t dims() const { return dims_; }
  const std::vector<Constraint>& constraints() const { return cs_; }
  size_t size() const { return cs_.size(); }

  /// Adds expr >= 0 (normalized; exact duplicates and constraints strictly
  /// dominated by an existing one with identical coefficients are dropped).
  void add(const AffineExpr& expr);

  /// Adds lo <= expr <= hi as two constraints.
  void add_range(const AffineExpr& expr, Int lo, Int hi);

  /// Adds expr == value as two inequalities.
  void add_equality(const AffineExpr& expr, Int value);

  /// True when x satisfies all constraints.
  bool contains(const IntVec& x) const;

  /// True when a constant constraint is negative (system trivially empty).
  bool trivially_empty() const;

  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  size_t dims_;
  std::vector<Constraint> cs_;
};

std::ostream& operator<<(std::ostream& os, const ConstraintSystem& s);

}  // namespace lmre
