#include "polyhedra/box.h"

#include <ostream>
#include <sstream>

#include "support/error.h"

namespace lmre {

IntBox IntBox::from_upper_bounds(const std::vector<Int>& n) {
  std::vector<Range> ranges;
  ranges.reserve(n.size());
  for (Int hi : n) ranges.push_back(Range{1, hi});
  return IntBox(std::move(ranges));
}

const Range& IntBox::range(size_t i) const {
  require(i < ranges_.size(), "IntBox::range out of range");
  return ranges_[i];
}

Int IntBox::volume() const {
  Int v = 1;
  for (const auto& r : ranges_) v = checked_mul(v, r.trip_count());
  return v;
}

bool IntBox::contains(const IntVec& p) const {
  if (p.size() != ranges_.size()) return false;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (p[i] < ranges_[i].lo || p[i] > ranges_[i].hi) return false;
  }
  return true;
}

ConstraintSystem IntBox::to_constraints() const {
  ConstraintSystem sys(dims());
  for (size_t i = 0; i < dims(); ++i) {
    sys.add_range(AffineExpr::variable(dims(), i), ranges_[i].lo, ranges_[i].hi);
  }
  return sys;
}

std::string IntBox::str() const {
  std::ostringstream os;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i) os << " x ";
    os << '[' << ranges_[i].lo << ',' << ranges_[i].hi << ']';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntBox& b) { return os << b.str(); }

}  // namespace lmre
