#pragma once

// Fourier-Motzkin elimination and loop-bound extraction.
//
// Given a constraint system over the iteration variables, this produces, for
// each nesting level k, the set of affine lower/upper bounds on variable k
// in terms of variables 0..k-1 -- exactly what a compiler emits as the
// transformed loop's bounds after a unimodular transformation.

#include <vector>

#include "linalg/rational.h"
#include "polyhedra/constraint.h"

namespace lmre {

/// One bound on a variable:  var >= ceil(expr / divisor)  (lower) or
/// var <= floor(expr / divisor)  (upper); divisor > 0 and expr only uses
/// variables of outer levels.
struct Bound {
  AffineExpr expr;
  Int divisor = 1;

  /// Evaluates the bound at outer values, rounding per `lower`.
  Int eval(const IntVec& outer, bool lower) const;
};

/// Per-level bounds for lexicographic scanning of a polyhedron.
struct LoopBounds {
  /// lowers[k] / uppers[k]: bounds on variable k using variables 0..k-1.
  std::vector<std::vector<Bound>> lowers;
  std::vector<std::vector<Bound>> uppers;

  /// Set when elimination proved the polyhedron empty; scanners must visit
  /// no points (outer-level bound lists may be incomplete in that case).
  bool known_empty = false;

  size_t depth() const { return lowers.size(); }

  /// Tightest lower bound on variable k given the outer iteration prefix.
  /// Returns false when some lower bound set is empty (unbounded) -- this
  /// never happens for systems derived from bounded iteration spaces.
  bool range(size_t k, const IntVec& outer, Int& lo, Int& hi) const;
};

/// Eliminates variable `var` (index into 0..dims-1) from the system,
/// returning the projection onto the remaining variables (same dimension
/// indexing; the eliminated variable no longer appears).
ConstraintSystem eliminate_variable(const ConstraintSystem& system, size_t var);

/// Extracts per-level scanning bounds by eliminating variables innermost
/// first.  Throws UnsupportedError when some variable has no lower or no
/// upper bound (unbounded polyhedron), or -- with a nonzero
/// `max_constraints` -- when an elimination round grows past that many
/// constraints (each round can square the count; the cap turns the
/// worst-case doubly-exponential blow-up into a reported refusal that
/// budget-aware callers such as src/verify treat as "undecided").
LoopBounds extract_loop_bounds(const ConstraintSystem& system,
                               size_t max_constraints = 0);

/// True when the system has a RATIONAL solution (Fourier-Motzkin is exact
/// over the rationals).  A "false" answer also proves integer emptiness.
/// Nonzero `max_constraints` caps elimination growth as above.
bool rationally_feasible(const ConstraintSystem& system,
                         size_t max_constraints = 0);

/// Removes constraints that are implied by the others (rational redundancy:
/// c is redundant iff (system \ c) && !c is infeasible).  The result
/// describes the same rational polyhedron with a minimal-ish subset.
ConstraintSystem remove_redundant(const ConstraintSystem& system);

}  // namespace lmre
