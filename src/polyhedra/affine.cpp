#include "polyhedra/affine.h"

#include <ostream>
#include <sstream>

#include "support/error.h"

namespace lmre {

AffineExpr AffineExpr::constant_expr(size_t dims, Int c) {
  AffineExpr e(dims);
  e.constant_ = c;
  return e;
}

AffineExpr AffineExpr::variable(size_t dims, size_t i) {
  require(i < dims, "AffineExpr::variable out of range");
  AffineExpr e(dims);
  e.coeffs_[i] = 1;
  return e;
}

void AffineExpr::set_coeff(size_t i, Int v) {
  require(i < coeffs_.size(), "AffineExpr::set_coeff out of range");
  coeffs_[i] = v;
}

Int AffineExpr::eval(const IntVec& x) const {
  return checked_add(coeffs_.dot(x), constant_);
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  return AffineExpr(coeffs_ + o.coeffs_, checked_add(constant_, o.constant_));
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return AffineExpr(coeffs_ - o.coeffs_, checked_sub(constant_, o.constant_));
}

AffineExpr AffineExpr::operator-() const {
  return AffineExpr(-coeffs_, checked_neg(constant_));
}

AffineExpr AffineExpr::operator*(Int s) const {
  return AffineExpr(coeffs_ * s, checked_mul(constant_, s));
}

AffineExpr AffineExpr::operator+(Int c) const {
  return AffineExpr(coeffs_, checked_add(constant_, c));
}

AffineExpr AffineExpr::operator-(Int c) const {
  return AffineExpr(coeffs_, checked_sub(constant_, c));
}

std::string AffineExpr::str(const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool wrote = false;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    Int a = coeffs_[i];
    if (a == 0) continue;
    std::string var = i < names.size() ? names[i] : "i" + std::to_string(i);
    if (wrote) {
      os << (a > 0 ? " + " : " - ");
      a = checked_abs(a);
    } else if (a < 0) {
      os << '-';
      a = checked_abs(a);
    }
    if (a != 1) os << a << '*';
    os << var;
    wrote = true;
  }
  if (constant_ != 0 || !wrote) {
    if (wrote) {
      os << (constant_ >= 0 ? " + " : " - ") << checked_abs(constant_);
    } else {
      os << constant_;
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AffineExpr& e) { return os << e.str(); }

}  // namespace lmre
