#pragma once

// Rectangular integer boxes (the iteration spaces of untransformed,
// constant-bound loop nests).

#include <iosfwd>
#include <string>
#include <vector>

#include "polyhedra/constraint.h"

namespace lmre {

/// Per-dimension closed integer range [lo, hi].
struct Range {
  Int lo = 1;
  Int hi = 1;

  Int trip_count() const { return hi >= lo ? hi - lo + 1 : 0; }
  bool operator==(const Range& o) const { return lo == o.lo && hi == o.hi; }
};

class IntBox {
 public:
  IntBox() = default;
  explicit IntBox(std::vector<Range> ranges) : ranges_(std::move(ranges)) {}

  /// Box [1,N1] x [1,N2] x ... (the paper's canonical loop bounds).
  static IntBox from_upper_bounds(const std::vector<Int>& n);

  size_t dims() const { return ranges_.size(); }
  const Range& range(size_t i) const;
  const std::vector<Range>& ranges() const { return ranges_; }

  /// Total number of integer points (product of trip counts).
  Int volume() const;

  bool contains(const IntVec& p) const;

  /// The box as a constraint system (lo <= x_i <= hi for each i).
  ConstraintSystem to_constraints() const;

  std::string str() const;

 private:
  std::vector<Range> ranges_;
};

std::ostream& operator<<(std::ostream& os, const IntBox& b);

}  // namespace lmre
