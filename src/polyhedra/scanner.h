#pragma once

// Lexicographic enumeration of the integer points of a polyhedron.
//
// This is what "executing the loop nest" means to the exact oracle: visit
// every integer point of the (possibly transformed) iteration space in
// lexicographic order.

#include <functional>
#include <optional>

#include "polyhedra/constraint.h"
#include "polyhedra/fourier_motzkin.h"

namespace lmre {

/// Visitor invoked once per integer point, in lexicographic order.
using PointVisitor = std::function<void(const IntVec&)>;

/// Scans all integer points described by per-level bounds.
void scan(const LoopBounds& bounds, const PointVisitor& visit);

/// Convenience: extracts bounds from the system and scans.
void scan(const ConstraintSystem& system, const PointVisitor& visit);

/// Row visitor: invoked once per non-empty innermost row.  `point` has the
/// outer levels set to the row's prefix and the innermost level set to
/// `lo`; the innermost variable ranges over [lo, hi] inclusive.  Rows
/// arrive in the same lexicographic order scan() would visit their points,
/// letting callers step innermost-affine quantities incrementally instead
/// of re-evaluating them per point (the dense trace engine's hot path).
using RowVisitor = std::function<void(const IntVec& point, Int lo, Int hi)>;

/// Scans per-level bounds one innermost row at a time.
void scan_rows(const LoopBounds& bounds, const RowVisitor& visit);

/// Convenience: extracts bounds from the system and scans rows.
void scan_rows(const ConstraintSystem& system, const RowVisitor& visit);

/// Number of integer points in the polyhedron (exact, by enumeration).
Int count_points(const ConstraintSystem& system);

/// Lexicographically smallest integer point, if any.
std::optional<IntVec> lexicographic_min(const ConstraintSystem& system);

}  // namespace lmre
