#pragma once

// Lexicographic enumeration of the integer points of a polyhedron.
//
// This is what "executing the loop nest" means to the exact oracle: visit
// every integer point of the (possibly transformed) iteration space in
// lexicographic order.

#include <functional>
#include <optional>

#include "polyhedra/constraint.h"
#include "polyhedra/fourier_motzkin.h"

namespace lmre {

/// Visitor invoked once per integer point, in lexicographic order.
using PointVisitor = std::function<void(const IntVec&)>;

/// Scans all integer points described by per-level bounds.
void scan(const LoopBounds& bounds, const PointVisitor& visit);

/// Convenience: extracts bounds from the system and scans.
void scan(const ConstraintSystem& system, const PointVisitor& visit);

/// Number of integer points in the polyhedron (exact, by enumeration).
Int count_points(const ConstraintSystem& system);

/// Lexicographically smallest integer point, if any.
std::optional<IntVec> lexicographic_min(const ConstraintSystem& system);

}  // namespace lmre
