#pragma once

// Lexicographic enumeration of the integer points of a polyhedron.
//
// This is what "executing the loop nest" means to the exact oracle: visit
// every integer point of the (possibly transformed) iteration space in
// lexicographic order.

#include <functional>
#include <optional>

#include "polyhedra/constraint.h"
#include "polyhedra/fourier_motzkin.h"

namespace lmre {

/// Visitor invoked once per integer point, in lexicographic order.
using PointVisitor = std::function<void(const IntVec&)>;

/// Scans all integer points described by per-level bounds.
void scan(const LoopBounds& bounds, const PointVisitor& visit);

/// Convenience: extracts bounds from the system and scans.
void scan(const ConstraintSystem& system, const PointVisitor& visit);

/// Row visitor: invoked once per non-empty innermost row.  `point` has the
/// outer levels set to the row's prefix and the innermost level set to
/// `lo`; the innermost variable ranges over [lo, hi] inclusive.  Rows
/// arrive in the same lexicographic order scan() would visit their points,
/// letting callers step innermost-affine quantities incrementally instead
/// of re-evaluating them per point (the dense trace engine's hot path).
using RowVisitor = std::function<void(const IntVec& point, Int lo, Int hi)>;

/// Scans per-level bounds one innermost row at a time.
void scan_rows(const LoopBounds& bounds, const RowVisitor& visit);

/// Convenience: extracts bounds from the system and scans rows.
void scan_rows(const ConstraintSystem& system, const RowVisitor& visit);

/// Number of integer points in the polyhedron (exact, by enumeration).
Int count_points(const ConstraintSystem& system);

/// Lexicographically smallest integer point, if any.
std::optional<IntVec> lexicographic_min(const ConstraintSystem& system);

/// Result of a budget-capped point search (see first_point).
struct FirstPointResult {
  /// Lexicographically smallest integer point, when one was found.
  std::optional<IntVec> point;

  /// True when the search is authoritative: either a point was found or the
  /// whole polyhedron was exhausted within budget.  False means the budget
  /// ran out first -- absence of a point proves nothing.
  bool complete = true;
};

/// Lexicographically smallest integer point with an early exit and a step
/// budget (each candidate value tried at any level costs one step).  Unlike
/// lexicographic_min, this never enumerates past the first point found, and
/// it abandons pathological scans -- rationally feasible but integer-empty
/// systems can force exponentially many blind alleys -- once `step_budget`
/// is spent.  A nonzero `max_constraints` additionally caps the internal
/// Fourier-Motzkin bound extraction (see extract_loop_bounds): elimination
/// growth past the cap throws UnsupportedError instead of stalling.  The
/// legality prover (src/verify) runs all witness searches through this
/// entry point.
FirstPointResult first_point(const ConstraintSystem& system, Int step_budget,
                             size_t max_constraints = 0);

}  // namespace lmre
