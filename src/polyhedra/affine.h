#pragma once

// Affine expressions over loop index variables.
//
// An AffineExpr is  coeffs . x + constant  for an iteration vector x.  It is
// the common currency between subscripts, loop bounds and constraints.

#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/vec.h"

namespace lmre {

class AffineExpr {
 public:
  AffineExpr() = default;

  /// Expression over `dims` variables, initially the zero expression.
  explicit AffineExpr(size_t dims) : coeffs_(dims), constant_(0) {}

  AffineExpr(IntVec coeffs, Int constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// The constant expression `c` over `dims` variables.
  static AffineExpr constant_expr(size_t dims, Int c);

  /// The expression `x_i` over `dims` variables.
  static AffineExpr variable(size_t dims, size_t i);

  size_t dims() const { return coeffs_.size(); }
  const IntVec& coeffs() const { return coeffs_; }
  Int coeff(size_t i) const { return coeffs_.at(i); }
  Int constant() const { return constant_; }

  void set_coeff(size_t i, Int v);
  void set_constant(Int v) { constant_ = v; }

  /// Evaluates at the integer point x (overflow-checked).
  Int eval(const IntVec& x) const;

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator-() const;
  AffineExpr operator*(Int s) const;
  AffineExpr operator+(Int c) const;
  AffineExpr operator-(Int c) const;

  bool operator==(const AffineExpr& o) const {
    return coeffs_ == o.coeffs_ && constant_ == o.constant_;
  }

  bool is_constant() const { return coeffs_.is_zero(); }

  /// Renders like "2*i0 - 3*i1 + 5" with the given variable names (defaults
  /// to i0, i1, ...).
  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  IntVec coeffs_;
  Int constant_ = 0;
};

std::ostream& operator<<(std::ostream& os, const AffineExpr& e);

}  // namespace lmre
