#include "polyhedra/constraint.h"

#include <ostream>
#include <sstream>

#include "support/error.h"

namespace lmre {

Constraint Constraint::normalized() const {
  Int g = expr.coeffs().content();
  if (g <= 1) return *this;
  IntVec c(expr.dims());
  for (size_t i = 0; i < expr.dims(); ++i) c[i] = expr.coeff(i) / g;
  // expr >= 0  <=>  coeffs/g . x >= -constant/g ; floor on the negated
  // constant keeps all integer solutions and may cut fractional ones.
  return Constraint{AffineExpr(std::move(c), floor_div(expr.constant(), g))};
}

std::ostream& operator<<(std::ostream& os, const Constraint& c) {
  return os << c.expr.str() << " >= 0";
}

void ConstraintSystem::add(const AffineExpr& expr) {
  require(expr.dims() == dims_, "ConstraintSystem::add dims mismatch");
  Constraint c = Constraint{expr}.normalized();
  for (auto& existing : cs_) {
    if (existing.expr.coeffs() == c.expr.coeffs()) {
      // Same left-hand side: keep the tighter (smaller) constant.
      if (c.expr.constant() < existing.expr.constant()) existing = c;
      return;
    }
  }
  cs_.push_back(c);
}

void ConstraintSystem::add_range(const AffineExpr& expr, Int lo, Int hi) {
  add(expr - lo);        // expr - lo >= 0
  add(-(expr) + hi);     // hi - expr >= 0
}

void ConstraintSystem::add_equality(const AffineExpr& expr, Int value) {
  add_range(expr, value, value);
}

bool ConstraintSystem::contains(const IntVec& x) const {
  for (const auto& c : cs_)
    if (!c.satisfied_by(x)) return false;
  return true;
}

bool ConstraintSystem::trivially_empty() const {
  for (const auto& c : cs_) {
    if (c.expr.is_constant() && c.expr.constant() < 0) return true;
  }
  return false;
}

std::string ConstraintSystem::str(const std::vector<std::string>& names) const {
  std::ostringstream os;
  for (size_t i = 0; i < cs_.size(); ++i) {
    if (i) os << " && ";
    os << cs_[i].expr.str(names) << " >= 0";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ConstraintSystem& s) {
  return os << s.str();
}

}  // namespace lmre
