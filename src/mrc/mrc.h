#pragma once

// Reuse-distance histograms and miss-ratio curves (MRC) as a first-class
// analysis product.
//
// The paper sizes a scratchpad from one number -- the minimum working-set
// window -- but the same exact trace machinery yields LRU stack distances,
// whose histogram answers EVERY fully-associative LRU capacity at once: a
// cache of C elements hits exactly the accesses with distance <= C.  This
// module turns the generalized distance pass (exact/stack_distance.h) into
// a product surface:
//
//   * compute_mrc    -- per-array + aggregate histograms for a nest under
//                       any unimodular execution order, exact or sampled.
//   * Sampling mode  -- deterministic SHARDS-style spatial sampling: an
//                       element is in the sample iff a fixed hash of its
//                       address falls under rate * 2^64, distances are
//                       measured among sampled elements and rescaled by
//                       1/rate, and every run with the same seed sees the
//                       same sample.  Each result carries a declared error
//                       bound on the miss-ratio curve (see DESIGN.md §14);
//                       the property suite measures the bound against the
//                       exact path.
//   * mrc_json       -- the envelope payload: exact bins up to a knee,
//                       log-spaced (power-of-two) buckets above it, the
//                       curve evaluated at a capacity list, and the
//                       cold/capacity miss split.
//   * optimize_miss_ratio -- the optimizer's second objective: re-score
//                       the analytically best candidate plans by exact
//                       miss ratio at a given capacity.
//
// MRC measures an execution order; it does not certify one.  Plans fed to
// compute_mrc should be validated with verify/verify.h when legality
// matters (the session and CLI do).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"
#include "support/json.h"
#include "transform/minimizer.h"

namespace lmre {

class TraceArena;

/// Default sampling seed: fixed so sampled results are reproducible across
/// runs, threads, and hosts unless the caller chooses otherwise.
inline constexpr std::uint64_t kMrcDefaultSeed = 0x6c6d72652d6d7263ULL;

/// Exact JSON bins are kept for distances up to this; larger distances
/// compress into power-of-two buckets (DESIGN.md §14).
inline constexpr Int kMrcExactBinLimit = 128;

/// A reuse-distance histogram with (possibly rescaled) sample weights.
/// In exact mode every weight is an integral access count; in sampled mode
/// bins hold 1/rate per sampled access and `total` is still the TRUE
/// access count (known exactly: iterations x references).
struct MrcHistogram {
  std::map<Int, double> bins;  ///< distance (>= 1) -> access weight
  double cold = 0;   ///< first touches == distinct elements (estimate when sampled)
  double total = 0;  ///< all accesses, sampled or not (exact)

  void add(Int distance, double weight);  ///< distance 0 records a cold touch

  /// Expected misses of a fully-associative LRU cache of `capacity`
  /// elements: cold plus the weight of distances > capacity, clamped to
  /// `total` (rescaled sampled weights can overshoot; real misses cannot).
  double misses(Int capacity) const;
  double miss_ratio(Int capacity) const;  ///< misses / total (0 when empty)
  Int max_distance() const;  ///< largest finite distance (0 when none)
};

/// One referenced array's slice of the curve.
struct MrcArrayCurve {
  std::string name;
  Int refs = 0;  ///< references to this array per iteration
  MrcHistogram hist;
};

struct MrcOptions {
  const IntMat* transform = nullptr;  ///< execution order (unimodular) or null
  double sample_rate = 1.0;           ///< (0, 1]; 1 = exact
  std::uint64_t seed = kMrcDefaultSeed;
};

struct MrcResult {
  MrcHistogram aggregate;
  std::vector<MrcArrayCurve> arrays;  ///< referenced arrays, ArrayId order
  double sample_rate = 1.0;
  Int sampled_elements = 0;  ///< raw sampled distinct count (error-bound input)

  /// Declared bound on the displacement-aware curve error (see
  /// mrc_curve_error below): 0 in exact mode, else 2.5 /
  /// sqrt(sampled_elements) clamped to 1 -- the SHARDS-style
  /// rate-vs-population tradeoff, measured (not derived) by
  /// property_mrc_test and gated by bench_mrc --check.
  double error_bound = 0.0;

  /// Largest finite (rescaled) distance: the capacity at which the curve
  /// reaches the cold-miss floor.
  Int knee = 0;
};

/// Computes histograms + curve for the nest under `opts`.  The arena
/// carries the dense-engine storage and instrumentation across runs.
MrcResult compute_mrc(const LoopNest& nest, const MrcOptions& opts,
                      TraceArena& arena);
MrcResult compute_mrc(const LoopNest& nest, const MrcOptions& opts = {});

/// Default capacity sweep for emission: powers of two from 1 to past the
/// knee, plus the knee itself.
std::vector<Int> default_mrc_capacities(const MrcResult& r);

/// The JSON payload shared by `lmre mrc --json`, the session's "mrc" kind,
/// and the goldens: histogram (exact bins <= kMrcExactBinLimit, power-of-
/// two buckets above), per-array slices, and the miss-ratio curve at
/// `capacities` with the cold/capacity split.  Exact-mode weights are
/// emitted as integers so envelopes stay byte-stable.
Json mrc_json(const MrcResult& r, const std::vector<Int>& capacities);

/// The declared-accuracy contract for sampled curves (DESIGN.md §14), used
/// by property_mrc_test and gated by `bench_mrc --check`.  Spatial sampling
/// has two error sources:
///
///   * population error -- too few sampled elements to represent the
///     weight split; bounded vertically by MrcResult::error_bound.
///   * displacement error -- a reuse of true distance d is measured among
///     sampled elements and rescaled by 1/rate, landing at d plus binomial
///     jitter with relative std sqrt((1-R)/(d*R)).  Where the exact curve
///     steps, this shifts the step sideways; no element count shrinks it.
///
/// The metric therefore allows the capacity axis to flex by three jitter
/// stds -- floored at one sampled unit (1/R), the estimator's resolution
/// -- before measuring vertically: the returned value is the distance from
/// sampled.miss_ratio(capacity) to the interval of exact ratios over
/// [c - half, c + half], half = max(3*sqrt(c(1-R)/R), 1/R).  Zero when the
/// sampled point sits inside the corridor; callers compare the result
/// against sampled.error_bound.
double mrc_curve_error(const MrcResult& sampled, const MrcResult& exact,
                       Int capacity);

/// An optimize objective: the default MWS, or miss ratio at a capacity.
struct ObjectiveSpec {
  bool miss_ratio = false;
  Int capacity = 0;  ///< meaningful when miss_ratio

  const char* name() const { return miss_ratio ? "miss-ratio" : "mws"; }
};

/// Parses "":/"mws" (default objective) or "miss-ratio:<capacity>" with a
/// non-negative integer capacity.  nullopt on malformed input.
std::optional<ObjectiveSpec> parse_objective_spec(const std::string& spec);

/// Result of re-scoring the optimizer's candidates by miss ratio.
struct MissRatioPlan {
  IntMat transform;
  std::string method;  ///< CandidatePlan vocabulary
  Int capacity = 0;
  double miss_ratio_before = 0.0;  ///< identity order at `capacity`
  double miss_ratio_after = 0.0;   ///< chosen plan at `capacity`
  Int candidates = 0;              ///< plans re-scored exactly
};

/// Re-scores the top verify_top_k candidate plans (plus the identity) by
/// EXACT miss ratio at `capacity`, reusing `arena` across candidates like
/// the MWS verify loop does.  Ties keep the analytically better candidate.
/// Returns nullopt when the nest's iteration volume exceeds
/// opts.verify_iteration_limit (no exhaustive trace is affordable).
std::optional<MissRatioPlan> optimize_miss_ratio(const LoopNest& nest,
                                                 Int capacity,
                                                 const MinimizerOptions& opts,
                                                 TraceArena& arena);

}  // namespace lmre
